// Reading structured traces back: a minimal JSON parser and the parsed
// counterpart of TraceEvent.
//
// The live pipeline hands obs::TraceEvent records straight to consumers
// (SpanIndex, the online monitor). Offline tooling — the cim_trace CLI, the
// Perfetto exporter, tests — re-reads the JSONL emitted by
// TraceSink::write_jsonl(). ParsedTraceEvent is the common denominator: one
// record per line, with typed field accessors mirroring TraceField kinds.
//
// The JSON parser is deliberately small (objects, arrays, strings, numbers,
// booleans, null; no \uXXXX surrogate pairs beyond pass-through) — enough
// for the schemas this repo emits, not a general-purpose library.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/ids.h"

namespace cim::obs {

/// One parsed JSON value. Numbers keep integer precision when the source
/// text is integral (trace timestamps exceed a double's 53-bit mantissa).
struct JsonValue {
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool b = false;
  std::int64_t i = 0;
  double d = 0.0;
  std::string s;
  std::vector<JsonValue> items;                           // arrays
  std::vector<std::pair<std::string, JsonValue>> members; // objects

  /// Object member lookup; null when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  bool is_number() const {
    return kind == Kind::kInt || kind == Kind::kDouble;
  }
  double as_double() const { return kind == Kind::kInt ? double(i) : d; }
  std::int64_t as_int() const {
    return kind == Kind::kDouble ? static_cast<std::int64_t>(d) : i;
  }
};

/// Parse one complete JSON document from `text` (trailing whitespace
/// allowed). Returns false and fills `error` (if non-null) on malformed
/// input.
bool parse_json(std::string_view text, JsonValue& out,
                std::string* error = nullptr);

/// One trace record read back from JSONL (docs/OBSERVABILITY.md, "Trace
/// record schema").
struct ParsedTraceEvent {
  int v = 0;                 // schema version
  std::uint64_t seq = 0;
  std::int64_t t = 0;        // virtual time, ns
  std::string cat;
  std::string name;
  JsonValue fields;          // the "f" object

  const JsonValue* field(std::string_view key) const {
    return fields.find(key);
  }
  /// Integer field with default (also reads numeric-looking doubles).
  std::int64_t field_int(std::string_view key, std::int64_t def = 0) const;
  std::uint64_t field_uint(std::string_view key,
                           std::uint64_t def = 0) const {
    return static_cast<std::uint64_t>(field_int(key, std::int64_t(def)));
  }
  /// String field; empty when absent.
  std::string_view field_str(std::string_view key) const;
  /// Proc field ("system.index"); returns false when absent or malformed.
  bool field_proc(std::string_view key, ProcId& out) const;
  /// The `wid` field as a WriteId (invalid when absent or zero).
  WriteId wid() const { return WriteId{field_uint("wid")}; }
};

/// Parse one JSONL line into a trace record. Returns false (with `error`)
/// when the line is not a well-formed trace record.
bool parse_trace_line(std::string_view line, ParsedTraceEvent& out,
                      std::string* error = nullptr);

/// Parse a whole JSONL stream, skipping blank lines. Returns the records in
/// file order; `errors` (if non-null) receives one message per bad line.
std::vector<ParsedTraceEvent> read_trace_jsonl(
    std::istream& in, std::vector<std::string>* errors = nullptr);

}  // namespace cim::obs

#include "mesh/ctrl_io.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <vector>

namespace cim::mesh {

using net::wire::ControlMsg;

const char* reject_reason_name(std::uint64_t reason) {
  switch (reason) {
    case kRejectWireVersion: return "wire version mismatch";
    case kRejectTopologyHash: return "topology hash mismatch";
    case kRejectNotANeighbor: return "not a neighbor";
    case kRejectDuplicateJoin: return "duplicate join";
    case kRejectStaleSession: return "stale session id";
    default: return "unknown reason";
  }
}

bool send_ctrl_fd(int fd, const ControlMsg& msg) {
  std::vector<std::uint8_t> buf;
  net::wire::encode(msg, buf);
  const std::uint8_t* p = buf.data();
  std::size_t left = buf.size();
  while (left > 0) {
    const ssize_t n = ::send(fd, p, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

bool send_ctrl_fd(int fd, std::uint8_t code, std::uint64_t a, std::uint64_t b) {
  ControlMsg msg;
  msg.code = code;
  msg.a = a;
  msg.b = b;
  return send_ctrl_fd(fd, msg);
}

const char* recv_ctrl_fd(int fd, int timeout_ms, ControlMsg& out) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  std::uint8_t frame[4 + 64];
  auto read_exact = [fd](std::uint8_t* dst, std::size_t len) -> const char* {
    while (len > 0) {
      const ssize_t n = ::read(fd, dst, len);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
          return "handshake timed out";
        return "handshake read failed";
      }
      if (n == 0) return "peer closed during handshake";
      dst += n;
      len -= static_cast<std::size_t>(n);
    }
    return nullptr;
  };
  if (const char* err = read_exact(frame, 4)) return err;
  std::uint32_t body_len = 0;
  for (int i = 0; i < 4; ++i)
    body_len |= static_cast<std::uint32_t>(frame[i]) << (8 * i);
  if (body_len > sizeof(frame) - 4)
    return "handshake frame is not a control message";
  if (const char* err = read_exact(frame + 4, body_len)) return err;

  net::wire::DecodeResult res = net::wire::decode(frame, 4 + body_len);
  if (!res.ok()) return res.error;
  auto* ctrl = dynamic_cast<ControlMsg*>(res.msg.get());
  if (ctrl == nullptr) return "handshake frame is not a control message";
  out = *ctrl;
  return nullptr;
}

}  // namespace cim::mesh

// The upcall interface between an MCS-process and its IS-process.
//
// Section 2: "the interface between each IS-process and its MCS-process is
// extended with two upcalls, sent by the MCS-process to the IS-process when
// local replicas of variables are updated. [...] the MCS-process sends a
// pre_update(x) upcall immediately before its replica of variable x is
// updated with some value v and a post_update(x, v) upcall immediately
// after. When the MCS-process sends an upcall, it must block until the
// IS-process replies with a response."
//
// Here "reply" is the `done` continuation: the MCS-process's apply pipeline
// stops until the handler invokes it. The handler may issue read operations
// on its MCS-process while processing the upcall; the MCS-process guarantees
// they complete (condition (b)) and return the pre-value s / the new value v
// respectively (condition (c)).
#pragma once

#include "common/ids.h"
#include "common/value.h"
#include "mcs/types.h"

namespace cim::mcs {

class UpcallHandler {
 public:
  virtual ~UpcallHandler() = default;

  /// Sent immediately before the replica of `var` is updated. The update is
  /// performed only after `done` is invoked. Only sent when pre-update
  /// upcalls are enabled (IS-protocol 2); IS-protocol 1 disables them.
  virtual void pre_update(VarId var, DoneFn done) = 0;

  /// Sent immediately after the replica of `var` was updated with `value`.
  /// `wid` identifies the originating write (WriteId{} when the protocol
  /// lost track of it); IS-processes propagate it on the outgoing pair so
  /// one write can be traced across systems.
  virtual void post_update(VarId var, Value value, WriteId wid,
                           DoneFn done) = 0;
};

}  // namespace cim::mcs

// Checker performance gate: wall-clock cost and storage footprint of the
// sparse dependency-graph checker on multi-million-op histories
// (docs/CHECKER.md, docs/BENCHMARKS.md).
//
// Histories are generated directly — no federation simulation — so the bench
// isolates the checker. Two generators:
//
//  * cbcast_history: a vector-clock causal-broadcast simulation. Every
//    write carries the issuer's dependency vector and is applied at a peer
//    only once all its dependencies are applied; reads return the replica's
//    current value. Each replica's apply order is a linearization of
//    causality, so the history is causal memory *by construction* and every
//    written value is distinct (the paper's regime: reads-from is
//    unambiguous, the check is pure phase A).
//
//  * dup_history: repeated written values. Each process cycles a small value
//    alphabet on a variable it alone writes (so every read of it has many
//    admissible writers) while also reading a monotone prefix of a shared
//    single-writer feed (cross-process edges). Exercises the residual
//    reads-from constraint search that replaced the old kDuplicateWrite
//    rejection.
//
// Rows (names are stable even under CIM_CHECKER_BENCH_OPS so baselines and
// smoke runs line up): cm_2m / cc_2m check the same 2e6-op broadcast history
// at levels kCM / kCC; dup_200k checks a 2e5-op repeated-value history at
// kCM. The acceptance bar for this PR: cm_2m under 10 s Release, and
// bytes_per_op at least 4x below History::struct_bytes_per_op().
//
// Environment:
//   CIM_CHECKER_BENCH_OPS=<n>  ops for the cm/cc rows (dup row: n/10);
//                              CI sanitizer smoke uses a small n.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_report.h"
#include "checker/causal_checker.h"
#include "checker/history.h"
#include "common/rng.h"
#include "stats/table.h"

namespace {

using namespace cim;

constexpr std::uint64_t kSeed = 20260809;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ProcId proc_id(std::size_t p) {
  return ProcId{SystemId{0}, static_cast<std::uint16_t>(p)};
}

// Causal-broadcast delivery simulation, distinct values throughout.
chk::History cbcast_history(std::size_t n_ops, std::size_t procs,
                            std::size_t vars, std::uint64_t seed) {
  struct WriteRec {
    std::uint32_t var;
    Value value;
    std::vector<std::uint32_t> dep;  // vector timestamp, dep[origin] = seq
  };
  std::vector<std::vector<WriteRec>> log(procs);  // per-origin publish order
  std::vector<std::vector<std::uint32_t>> vc(
      procs, std::vector<std::uint32_t>(procs, 0));
  std::vector<std::vector<Value>> store(
      procs, std::vector<Value>(vars, kInitValue));
  std::vector<std::vector<std::size_t>> next_idx(
      procs, std::vector<std::size_t>(procs, 0));

  chk::HistoryBuilder b;
  Rng rng(seed);
  std::int64_t t = 0;
  Value counter = 0;
  std::size_t issued = 0;
  while (issued < n_ops) {
    const std::size_t p = rng.uniform(0, procs - 1);
    if (rng.chance(0.5)) {
      // Delivery burst: apply up to a few causally-ready remote writes.
      const std::size_t burst = rng.uniform(1, 4);
      for (std::size_t k = 0; k < burst; ++k) {
        bool delivered = false;
        const std::size_t start = rng.uniform(0, procs - 1);
        for (std::size_t d = 0; d < procs && !delivered; ++d) {
          const std::size_t o = (start + d) % procs;
          if (o == p) continue;
          const std::size_t i = next_idx[p][o];
          if (i >= log[o].size()) continue;
          const WriteRec& w = log[o][i];
          bool ready = true;
          for (std::size_t r = 0; r < procs && ready; ++r) {
            if (r != o && vc[p][r] < w.dep[r]) ready = false;
          }
          if (!ready) continue;
          vc[p][o] = static_cast<std::uint32_t>(i + 1);
          next_idx[p][o] = i + 1;
          store[p][w.var] = w.value;
          delivered = true;
        }
        if (!delivered) break;
      }
      continue;
    }
    const auto var = static_cast<std::uint32_t>(rng.uniform(0, vars - 1));
    if (rng.chance(0.45)) {
      WriteRec w;
      w.var = var;
      w.value = ++counter;
      w.dep = vc[p];
      w.dep[p] = static_cast<std::uint32_t>(log[p].size() + 1);
      store[p][var] = w.value;
      ++vc[p][p];
      log[p].push_back(std::move(w));
      b.add(proc_id(p), false, chk::OpKind::kWrite, VarId{var}, counter,
            sim::Time{t}, sim::Time{t + 1});
    } else {
      b.add(proc_id(p), false, chk::OpKind::kRead, VarId{var}, store[p][var],
            sim::Time{t}, sim::Time{t + 1});
    }
    t += 2;
    ++issued;
  }
  return b.build();
}

// Repeated-value history: proc 0 publishes a distinct-value feed on var 0;
// every other proc cycles values 1..k on its private var (ambiguous
// reads-from) and reads a monotone prefix of the feed (cross edges).
chk::History dup_history(std::size_t n_ops, std::size_t procs,
                         std::uint64_t k, std::uint64_t seed) {
  std::vector<Value> feed;                      // proc 0's published values
  std::vector<std::size_t> feed_idx(procs, 0);  // delivered prefix per proc
  std::vector<std::uint64_t> own_cnt(procs, 0);
  std::vector<Value> own_val(procs, kInitValue);

  chk::HistoryBuilder b;
  Rng rng(seed);
  std::int64_t t = 0;
  for (std::size_t issued = 0; issued < n_ops; ++issued, t += 2) {
    const std::size_t p = rng.uniform(0, procs - 1);
    if (p == 0) {
      if (rng.chance(0.7)) {
        const Value v = 1'000'000 + static_cast<Value>(feed.size()) + 1;
        feed.push_back(v);
        b.add(proc_id(0), false, chk::OpKind::kWrite, VarId{0}, v,
              sim::Time{t}, sim::Time{t + 1});
      } else {
        const Value v = feed.empty() ? kInitValue : feed.back();
        b.add(proc_id(0), false, chk::OpKind::kRead, VarId{0}, v,
              sim::Time{t}, sim::Time{t + 1});
      }
      continue;
    }
    const auto var = static_cast<std::uint32_t>(p);
    const double r = rng.uniform01();
    if (r < 0.45) {
      const Value v = static_cast<Value>(own_cnt[p] % k) + 1;
      ++own_cnt[p];
      own_val[p] = v;
      b.add(proc_id(p), false, chk::OpKind::kWrite, VarId{var}, v,
            sim::Time{t}, sim::Time{t + 1});
    } else if (r < 0.55) {
      b.add(proc_id(p), false, chk::OpKind::kRead, VarId{var}, own_val[p],
            sim::Time{t}, sim::Time{t + 1});
    } else {
      const std::size_t avail = feed.size() - feed_idx[p];
      if (avail > 0) feed_idx[p] += rng.uniform(0, avail);
      const Value v = feed_idx[p] == 0 ? kInitValue : feed[feed_idx[p] - 1];
      b.add(proc_id(p), false, chk::OpKind::kRead, VarId{0}, v, sim::Time{t},
            sim::Time{t + 1});
    }
  }
  return b.build();
}

bool run_row(bench::JsonReport& report, stats::Table& table,
             const std::string& name, const chk::History& h, double build_ms,
             chk::Level level) {
  chk::CausalChecker checker;
  const double t0 = now_s();
  const chk::CheckResult res = checker.check(h, level);
  const double check_ms = (now_s() - t0) * 1e3;
  const double ops_per_sec =
      check_ms > 0 ? static_cast<double>(h.size()) / (check_ms / 1e3) : 0.0;

  report.row(name)
      .field("ops", static_cast<std::int64_t>(h.size()))
      .field("build_ms", build_ms)
      .field("check_ms", check_ms)
      .field("check_ops_per_sec", ops_per_sec)
      .field("bytes_per_op", h.bytes_per_op())
      .field("struct_bytes_per_op",
             static_cast<std::int64_t>(chk::History::struct_bytes_per_op()))
      .field("ambiguous_reads",
             static_cast<std::int64_t>(res.stats.ambiguous_reads))
      .field("assignments_tried",
             static_cast<std::int64_t>(res.stats.assignments_tried))
      .field("pattern", chk::to_string(res.pattern));

  char bpo[32], cms[32], bms[32], mops[32];
  std::snprintf(bpo, sizeof(bpo), "%.1f", h.bytes_per_op());
  std::snprintf(cms, sizeof(cms), "%.1f", check_ms);
  std::snprintf(bms, sizeof(bms), "%.1f", build_ms);
  std::snprintf(mops, sizeof(mops), "%.2f", ops_per_sec / 1e6);
  table.add_row(name, h.size(), bms, cms, mops, bpo,
                chk::to_string(res.pattern));

  if (!res.ok()) {
    std::fprintf(stderr, "bench_checker_perf: %s verdict %s: %s\n",
                 name.c_str(), chk::to_string(res.pattern),
                 res.detail.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main() {
  std::size_t ops = 2'000'000;
  if (const char* env = std::getenv("CIM_CHECKER_BENCH_OPS")) {
    const std::size_t n = std::strtoull(env, nullptr, 10);
    if (n > 0) ops = n;
  }
  const std::size_t dup_ops = std::max<std::size_t>(ops / 10, 2'000);

  bench::JsonReport report("checker");
  report.meta("seed", kSeed);
  report.meta("ops", static_cast<std::uint64_t>(ops));
  stats::Table table(
      {"row", "ops", "build ms", "check ms", "Mops/s", "bytes/op", "verdict"});

  bool ok = true;

  double t0 = now_s();
  const chk::History cm = cbcast_history(ops, 6, 24, kSeed);
  const double cm_build_ms = (now_s() - t0) * 1e3;
  ok &= run_row(report, table, "cm_2m", cm, cm_build_ms, chk::Level::kCM);
  ok &= run_row(report, table, "cc_2m", cm, cm_build_ms, chk::Level::kCC);

  t0 = now_s();
  const chk::History dup = dup_history(dup_ops, 8, 32, kSeed + 1);
  const double dup_build_ms = (now_s() - t0) * 1e3;
  ok &= run_row(report, table, "dup_200k", dup, dup_build_ms,
                chk::Level::kCM);

  table.print();

  // The columnar-footprint acceptance bar travels with the bench so a layout
  // regression fails loudly even without a blessed baseline.
  if (cm.bytes_per_op() * 4 > chk::History::struct_bytes_per_op()) {
    std::fprintf(stderr,
                 "bench_checker_perf: bytes_per_op %.1f is not 4x below the "
                 "struct footprint %zu\n",
                 cm.bytes_per_op(), chk::History::struct_bytes_per_op());
    ok = false;
  }
  return ok ? 0 : 1;
}

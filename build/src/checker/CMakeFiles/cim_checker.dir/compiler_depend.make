# Empty compiler generated dependencies file for cim_checker.
# This may be replaced when dependencies are built.

# Empty dependencies file for cim_net.
# This may be replaced when dependencies are built.

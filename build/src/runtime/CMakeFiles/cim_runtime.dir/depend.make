# Empty dependencies file for cim_runtime.
# This may be replaced when dependencies are built.

#include "protocols/cbcast_dsm.h"

#include <memory>
#include <utility>

#include "common/check.h"

namespace cim::proto {

CbcastDsmProcess::CbcastDsmProcess(const mcs::McsContext& ctx)
    : McsProcess(ctx),
      member_(ctx.local_index, ctx.num_procs, *this,
              [this](std::uint16_t sender, const mp::CbPayload& p) {
                on_deliver(sender, p);
              }) {}

Value CbcastDsmProcess::replica_value(VarId var) const {
  return store_.get(var);
}

void CbcastDsmProcess::handle_read(VarId var, mcs::ReadCallback cb) {
  cb(replica_value(var));
}

void CbcastDsmProcess::do_write(VarId var, Value value, WriteId wid,
                                mcs::WriteCallback cb) {
  note_update_issued(var, value, wid);
  if (observer() != nullptr) {
    observer()->on_write_issued(id(), var, value, simulator().now());
  }
  // Self-delivery applies it.
  member_.broadcast(mp::CbPayload{var, value, wid});
  cb();
}

void CbcastDsmProcess::send_to_member(std::uint16_t member,
                                      net::MessagePtr msg) {
  send_to(member, std::move(msg));
}

void CbcastDsmProcess::on_message(net::ChannelId, net::MessagePtr msg) {
  member_.on_network(std::move(msg));
  note_update_buffered(member_.buffered());
}

void CbcastDsmProcess::on_deliver(std::uint16_t sender,
                                  const mp::CbPayload& payload) {
  const bool own = sender == local_index();
  bool completed = false;
  apply_with_upcalls(
      payload.var, payload.value, payload.wid, own,
      /*apply=*/[this, &payload]() {
        store_.set(payload.var, payload.value);
        note_update_applied(payload.var, payload.value, payload.wid);
        if (observer() != nullptr) {
          observer()->on_apply(id(), payload.var, payload.value,
                               simulator().now());
        }
      },
      /*done=*/[&completed]() { completed = true; });
  // The substrate delivers synchronously from one event; the IS-protocol
  // handlers respond synchronously, so the dance completes inline.
  CIM_CHECK_MSG(completed, "cbcast-dsm requires synchronous upcall handlers");
}

mcs::ProtocolFactory cbcast_dsm_protocol() {
  return [](const mcs::McsContext& ctx) {
    return std::make_unique<CbcastDsmProcess>(ctx);
  };
}

}  // namespace cim::proto

// cim_bridge: one causal memory system per OS process, interconnected into
// a tree mesh over real TCP sockets — the paper's Corollary 1 (any tree of
// causal systems is causal) as a deployable federation (docs/BRIDGE.md).
//
// Mesh mode (scripts/mesh_smoke.sh): every process names its node id and
// the shared topology — a spec file or a generated shape:
//
//   cim_bridge --node 0 --shape btree --n 4 --base-port 9100
//              --history n0.hist --metrics n0.json &       (one command)
//   cim_bridge --node 1 --shape btree --n 4 --base-port 9100 ... &
//   ...
//
// Node i listens on base-port + i, dials its lower-id neighbors, accepts
// the higher ones, and the kHello/kJoin handshake (wire version + topology
// hash) makes mismatched launches fail fast. Each process drives a uniform
// workload with a disjoint value range, so `cat *.hist` is a checkable
// merged history: examples/trace_checker verifies the whole tree's
// computation is causal.
//
// Crash tolerance (scripts/mesh_chaos_smoke.sh): with `--state FILE` every
// session event spills to a write-ahead journal and `--history` streams to
// disk as operations record. A kill -9'd node restarts with the same flags
// plus `--resume`: it reloads the journal, rejoins its neighbors through
// the per-edge kRejoin handshake, and the merged history still checks out
// with zero duplicated and zero lost pair deliveries. While a peer is down
// the survivors degrade (heartbeat misses, bounded backpressure) instead of
// dying — see docs/BRIDGE.md "Failure behavior" and docs/FAULTS.md.
//
// Legacy two-process mode (scripts/bridge_smoke.sh) still works and is the
// same thing in a 2-node chain: `--side a --port P` is node 0 with
// base-port P, `--side b --port P` is node 1 dialing it.
//
// Mechanics — epoll transport, join protocol, link sessions, done/bye
// convergecast — live in mesh::MeshNode (src/mesh/mesh_node.h); this tool
// only parses flags and dumps history/metrics/trace files.
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "interconnect/topology.h"
#include "mesh/mesh_node.h"
#include "obs/metrics.h"

using namespace cim;

namespace {

struct Options {
  // Mesh mode.
  std::size_t node = SIZE_MAX;
  std::string topo_path;          // spec file…
  std::string shape;              // …or generated: chain|star|btree
  std::size_t n = 0;              // node count for --shape
  std::uint16_t base_port = 0;
  // Legacy two-process mode.
  char side = 0;                  // 'a' = node 0, 'b' = node 1
  std::uint16_t port = 0;
  // Common.
  std::string host = "127.0.0.1";
  std::uint16_t procs = 4;
  std::size_t ops = 25;
  std::uint64_t seed = 7;
  int join_timeout_ms = 10'000;
  std::string history_path;
  std::string metrics_path;
  std::string trace_path;
  // Crash tolerance (docs/BRIDGE.md "Failure behavior").
  std::string state_path;
  bool resume = false;
  int hb_interval_ms = 100;
  int liveness_timeout_ms = 2000;
  int degraded_timeout_ms = 0;
  int backoff_ms = 50;
  int backoff_max_ms = 1000;
  int reconnect_attempts = 40;
  int drain_timeout_ms = 10'000;
  // Observability plane (docs/OBSERVABILITY.md "Federation snapshot").
  int stats_interval_ms = 0;
  std::string fed_metrics_path;
};

int usage() {
  std::cerr
      << "usage: cim_bridge --node N (--topo FILE | --shape chain|star|btree"
         " --n N) --base-port P\n"
         "       cim_bridge --side a|b --port P            (legacy 2-process)\n"
         "       [--host H] [--procs N] [--ops N] [--seed N]"
         " [--join-timeout MS]\n"
         "       [--history FILE] [--metrics FILE] [--trace FILE]\n"
         "       [--state FILE] [--resume] [--hb-interval MS]"
         " [--liveness MS]\n"
         "       [--degraded-timeout MS] [--backoff MS] [--backoff-max MS]\n"
         "       [--reconnect-attempts N] [--drain-timeout MS]\n"
         "       [--stats-interval MS] [--fed-metrics FILE]  (node 0 only)\n";
  return 2;
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (std::strcmp(arg, "--node") == 0 && (v = next())) {
      opt.node = std::stoul(v);
    } else if (std::strcmp(arg, "--topo") == 0 && (v = next())) {
      opt.topo_path = v;
    } else if (std::strcmp(arg, "--shape") == 0 && (v = next())) {
      opt.shape = v;
    } else if (std::strcmp(arg, "--n") == 0 && (v = next())) {
      opt.n = std::stoul(v);
    } else if (std::strcmp(arg, "--base-port") == 0 && (v = next())) {
      opt.base_port = static_cast<std::uint16_t>(std::stoul(v));
    } else if (std::strcmp(arg, "--side") == 0 && (v = next())) {
      opt.side = v[0];
    } else if (std::strcmp(arg, "--port") == 0 && (v = next())) {
      opt.port = static_cast<std::uint16_t>(std::stoul(v));
    } else if (std::strcmp(arg, "--host") == 0 && (v = next())) {
      opt.host = v;
    } else if (std::strcmp(arg, "--procs") == 0 && (v = next())) {
      opt.procs = static_cast<std::uint16_t>(std::stoul(v));
    } else if (std::strcmp(arg, "--ops") == 0 && (v = next())) {
      opt.ops = std::stoul(v);
    } else if (std::strcmp(arg, "--seed") == 0 && (v = next())) {
      opt.seed = std::stoull(v);
    } else if (std::strcmp(arg, "--join-timeout") == 0 && (v = next())) {
      opt.join_timeout_ms = std::stoi(v);
    } else if (std::strcmp(arg, "--history") == 0 && (v = next())) {
      opt.history_path = v;
    } else if (std::strcmp(arg, "--metrics") == 0 && (v = next())) {
      opt.metrics_path = v;
    } else if (std::strcmp(arg, "--trace") == 0 && (v = next())) {
      opt.trace_path = v;
    } else if (std::strcmp(arg, "--state") == 0 && (v = next())) {
      opt.state_path = v;
    } else if (std::strcmp(arg, "--resume") == 0) {
      opt.resume = true;
    } else if (std::strcmp(arg, "--hb-interval") == 0 && (v = next())) {
      opt.hb_interval_ms = std::stoi(v);
    } else if (std::strcmp(arg, "--liveness") == 0 && (v = next())) {
      opt.liveness_timeout_ms = std::stoi(v);
    } else if (std::strcmp(arg, "--degraded-timeout") == 0 && (v = next())) {
      opt.degraded_timeout_ms = std::stoi(v);
    } else if (std::strcmp(arg, "--backoff") == 0 && (v = next())) {
      opt.backoff_ms = std::stoi(v);
    } else if (std::strcmp(arg, "--backoff-max") == 0 && (v = next())) {
      opt.backoff_max_ms = std::stoi(v);
    } else if (std::strcmp(arg, "--reconnect-attempts") == 0 && (v = next())) {
      opt.reconnect_attempts = std::stoi(v);
    } else if (std::strcmp(arg, "--drain-timeout") == 0 && (v = next())) {
      opt.drain_timeout_ms = std::stoi(v);
    } else if (std::strcmp(arg, "--stats-interval") == 0 && (v = next())) {
      opt.stats_interval_ms = std::stoi(v);
    } else if (std::strcmp(arg, "--fed-metrics") == 0 && (v = next())) {
      opt.fed_metrics_path = v;
    } else {
      return false;
    }
  }
  if (opt.resume && opt.state_path.empty()) {
    std::cerr << "--resume requires --state\n";
    return false;
  }
  if (opt.side != 0) {
    // Legacy mode maps onto a 2-node chain.
    if ((opt.side != 'a' && opt.side != 'b') || opt.port == 0) return false;
    opt.node = opt.side == 'a' ? 0 : 1;
    opt.base_port = opt.port;
    opt.shape = "chain";
    opt.n = 2;
    return true;
  }
  return opt.node != SIZE_MAX && opt.base_port != 0 &&
         (!opt.topo_path.empty() || (!opt.shape.empty() && opt.n > 0));
}

isc::TopologyResult load_topology(const Options& opt) {
  if (!opt.topo_path.empty()) {
    std::ifstream is(opt.topo_path);
    if (!is) {
      isc::TopologyResult res;
      res.error = "cannot read topology spec " + opt.topo_path;
      return res;
    }
    std::ostringstream text;
    text << is.rdbuf();
    return isc::parse_topology(text.str());
  }
  isc::Topology topo;
  if (opt.shape == "chain") {
    topo = isc::make_chain(opt.n);
  } else if (opt.shape == "star") {
    topo = isc::make_star(opt.n);
  } else if (opt.shape == "btree") {
    topo = isc::make_btree(opt.n);
  } else {
    isc::TopologyResult res;
    res.error = "unknown --shape " + opt.shape + " (chain|star|btree)";
    return res;
  }
  return isc::validate_topology(std::move(topo));
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return usage();
  const std::string tag = "[node" + std::to_string(opt.node) + "]";

  isc::TopologyResult topo = load_topology(opt);
  if (!topo.ok()) {
    std::cerr << tag << " " << topo.error << "\n";
    return 2;
  }

  mesh::MeshConfig cfg;
  cfg.node_id = opt.node;
  cfg.topo = std::move(topo.topo);
  cfg.base_port = opt.base_port;
  cfg.host = opt.host;
  cfg.procs = opt.procs;
  cfg.ops = opt.ops;
  cfg.seed = opt.seed;
  cfg.join_timeout_ms = opt.join_timeout_ms;
  cfg.trace = !opt.trace_path.empty();
  // The history streams to disk as it records (crash-durable) rather than
  // being dumped post-run: a kill -9'd node's writes are already on disk.
  cfg.history_path = opt.history_path;
  cfg.state_path = opt.state_path;
  cfg.resume = opt.resume;
  cfg.hb_interval_ms = opt.hb_interval_ms;
  cfg.liveness_timeout_ms = opt.liveness_timeout_ms;
  cfg.degraded_timeout_ms = opt.degraded_timeout_ms;
  cfg.backoff_initial_ms = opt.backoff_ms;
  cfg.backoff_max_ms = opt.backoff_max_ms;
  cfg.reconnect_attempts = opt.reconnect_attempts;
  cfg.drain_timeout_ms = opt.drain_timeout_ms;
  // --fed-metrics implies the stats plane: default its cadence on so a bare
  // `--fed-metrics fed.json` run still leaves a snapshot behind.
  cfg.stats_interval_ms = opt.stats_interval_ms;
  if (!opt.fed_metrics_path.empty() && cfg.stats_interval_ms == 0)
    cfg.stats_interval_ms = 250;
  cfg.fed_metrics_path = opt.fed_metrics_path;

  mesh::MeshNode node(std::move(cfg));
  if (!node.join()) {
    std::cerr << tag << " join failed: " << node.error() << "\n";
    return 1;
  }
  mesh::MeshResult res = node.run();
  if (!res.ok) {
    std::cerr << tag << " " << node.error() << "\n";
    return 1;
  }

  isc::Federation& fed = node.federation();
  if (!opt.trace_path.empty()) {
    std::ofstream os(opt.trace_path);
    if (!os) {
      std::cerr << tag << " cannot write " << opt.trace_path << "\n";
      return 1;
    }
    fed.observability().trace().write_jsonl(os);
  }
  if (!opt.metrics_path.empty()) {
    std::ofstream os(opt.metrics_path);
    if (!os) {
      std::cerr << tag << " cannot write " << opt.metrics_path << "\n";
      return 1;
    }
    obs::write_json(os, fed.metrics_snapshot());
  }

  std::cout << tag << " system " << opt.node << " gen " << node.generation()
            << ": " << res.ops_done << " ops, pairs sent " << res.pairs_sent
            << ", received " << res.pairs_received << ", links "
            << node.degree() << ", monitor violations " << res.violations
            << "\n";
  return res.violations > 0 ? 1 : 0;
}

file(REMOVE_RECURSE
  "CMakeFiles/tree_federation.dir/tree_federation.cpp.o"
  "CMakeFiles/tree_federation.dir/tree_federation.cpp.o.d"
  "tree_federation"
  "tree_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

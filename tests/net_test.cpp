// Unit tests: channels, delay models, availability schedules, counters.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/fabric.h"
#include "sim/simulator.h"

namespace cim::net {
namespace {

struct IntMsg final : Message {
  explicit IntMsg(int v) : value(v) {}
  int value;
  const char* type_name() const override { return "test.int"; }
  std::size_t wire_size() const override { return 10; }
};

struct Collector final : Receiver {
  std::vector<int> values;
  std::vector<sim::Time> times;
  sim::Simulator* sim = nullptr;

  void on_message(ChannelId, MessagePtr msg) override {
    values.push_back(static_cast<IntMsg&>(*msg).value);
    if (sim != nullptr) times.push_back(sim->now());
  }
};

ProcId proc(std::uint16_t sys, std::uint16_t idx) {
  return ProcId{SystemId{sys}, idx};
}

class FabricTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  Fabric fabric{sim, 42};
  Collector rx;

  ChannelId make_channel(DelayModelPtr delay = nullptr,
                         AvailabilityPtr avail = nullptr,
                         LinkClass cls = LinkClass::kIntraSystem) {
    rx.sim = &sim;
    ChannelConfig cc;
    cc.src = proc(0, 0);
    cc.dst = proc(0, 1);
    cc.receiver = &rx;
    cc.delay = std::move(delay);
    cc.availability = std::move(avail);
    cc.link_class = cls;
    return fabric.add_channel(std::move(cc));
  }
};

TEST_F(FabricTest, DeliversAfterFixedDelay) {
  auto ch = make_channel(std::make_unique<FixedDelay>(sim::milliseconds(3)));
  fabric.send(ch, std::make_unique<IntMsg>(1));
  sim.run();
  ASSERT_EQ(rx.values.size(), 1u);
  EXPECT_EQ(rx.times[0], sim::Time{} + sim::milliseconds(3));
}

TEST_F(FabricTest, FifoUnderFixedDelay) {
  auto ch = make_channel(std::make_unique<FixedDelay>(sim::milliseconds(1)));
  for (int i = 0; i < 20; ++i) fabric.send(ch, std::make_unique<IntMsg>(i));
  sim.run();
  ASSERT_EQ(rx.values.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rx.values[i], i);
}

// FIFO must hold even when later messages sample smaller delays.
class FabricFifoSeeds : public FabricTest,
                        public ::testing::WithParamInterface<std::uint64_t> {};

TEST_P(FabricFifoSeeds, FifoUnderJitter) {
  auto ch = make_channel(std::make_unique<UniformDelay>(
      sim::microseconds(1), sim::milliseconds(50)));
  Rng pace(GetParam());
  int sent = 0;
  std::function<void()> send_some = [&] {
    for (int k = 0; k < 3; ++k) fabric.send(ch, std::make_unique<IntMsg>(sent++));
    if (sent < 60) {
      sim.after(sim::Duration{static_cast<std::int64_t>(
                    pace.uniform(0, 2'000'000))},
                send_some);
    }
  };
  send_some();
  sim.run();
  ASSERT_EQ(rx.values.size(), 60u);
  for (int i = 0; i < 60; ++i) EXPECT_EQ(rx.values[i], i);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FabricFifoSeeds,
                         ::testing::Values(1, 2, 3, 4, 5, 17, 99, 12345));

TEST_F(FabricTest, CountsMessagesAndBytes) {
  auto ch = make_channel();
  fabric.send(ch, std::make_unique<IntMsg>(1));
  fabric.send(ch, std::make_unique<IntMsg>(2));
  sim.run();
  EXPECT_EQ(fabric.channel_stats(ch).messages, 2u);
  EXPECT_EQ(fabric.channel_stats(ch).bytes, 20u);
  EXPECT_EQ(fabric.total_messages(), 2u);
}

TEST_F(FabricTest, ClassStatsSeparateIntraAndInter) {
  auto intra = make_channel(nullptr, nullptr, LinkClass::kIntraSystem);
  Collector rx2;
  ChannelConfig cc;
  cc.src = proc(0, 2);
  cc.dst = proc(1, 0);
  cc.receiver = &rx2;
  cc.link_class = LinkClass::kInterSystem;
  auto inter = fabric.add_channel(std::move(cc));

  fabric.send(intra, std::make_unique<IntMsg>(1));
  fabric.send(inter, std::make_unique<IntMsg>(2));
  fabric.send(inter, std::make_unique<IntMsg>(3));
  sim.run();
  EXPECT_EQ(fabric.class_stats(LinkClass::kIntraSystem).messages, 1u);
  EXPECT_EQ(fabric.class_stats(LinkClass::kInterSystem).messages, 2u);
}

TEST_F(FabricTest, CrossSystemStatsCountBothDirections) {
  Collector rx2;
  ChannelConfig ab;
  ab.src = proc(0, 0);
  ab.dst = proc(1, 0);
  ab.receiver = &rx2;
  auto ch_ab = fabric.add_channel(std::move(ab));
  ChannelConfig ba;
  ba.src = proc(1, 0);
  ba.dst = proc(0, 0);
  ba.receiver = &rx2;
  auto ch_ba = fabric.add_channel(std::move(ba));

  fabric.send(ch_ab, std::make_unique<IntMsg>(1));
  fabric.send(ch_ba, std::make_unique<IntMsg>(2));
  sim.run();
  const auto cross = fabric.cross_system_stats(SystemId{0}, SystemId{1});
  EXPECT_EQ(cross.messages, 2u);
}

TEST_F(FabricTest, ResetStatsClearsCounters) {
  auto ch = make_channel();
  fabric.send(ch, std::make_unique<IntMsg>(1));
  sim.run();
  fabric.reset_stats();
  EXPECT_EQ(fabric.total_messages(), 0u);
}

TEST_F(FabricTest, DownLinkQueuesUntilNextUpWindow) {
  // Up during [0, 1ms), down until 10ms, up afterwards.
  std::vector<Windows::Window> windows{
      {sim::Time{0}, sim::Time{} + sim::milliseconds(1)}};
  auto ch = make_channel(
      std::make_unique<FixedDelay>(sim::microseconds(100)),
      std::make_unique<Windows>(windows, sim::Time{} + sim::milliseconds(10)));

  // Sent while up: delivered at 0.1ms.
  fabric.send(ch, std::make_unique<IntMsg>(1));
  // Sent at 5ms (down): transmission starts at 10ms, delivered 10.1ms.
  sim.at(sim::Time{} + sim::milliseconds(5),
         [&] { fabric.send(ch, std::make_unique<IntMsg>(2)); });
  sim.run();
  ASSERT_EQ(rx.values.size(), 2u);
  EXPECT_EQ(rx.times[0], sim::Time{} + sim::microseconds(100));
  EXPECT_EQ(rx.times[1],
            sim::Time{} + sim::milliseconds(10) + sim::microseconds(100));
}

TEST_F(FabricTest, DownLinkPreservesFifoAcrossOutage) {
  std::vector<Windows::Window> windows{
      {sim::Time{0}, sim::Time{} + sim::milliseconds(1)}};
  auto ch = make_channel(
      std::make_unique<UniformDelay>(sim::microseconds(10),
                                     sim::milliseconds(5)),
      std::make_unique<Windows>(windows, sim::Time{} + sim::milliseconds(10)));
  for (int i = 0; i < 10; ++i) {
    sim.at(sim::Time{} + sim::milliseconds(i),
           [&, i] { fabric.send(ch, std::make_unique<IntMsg>(i)); });
  }
  sim.run();
  ASSERT_EQ(rx.values.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rx.values[i], i);
}

TEST(Delay, FixedAlwaysSame) {
  Rng rng(1);
  FixedDelay d(sim::milliseconds(2));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(d.sample(rng), sim::milliseconds(2));
}

TEST(Delay, UniformWithinBounds) {
  Rng rng(1);
  UniformDelay d(sim::microseconds(10), sim::microseconds(50));
  for (int i = 0; i < 1000; ++i) {
    auto s = d.sample(rng);
    EXPECT_GE(s, sim::microseconds(10));
    EXPECT_LE(s, sim::microseconds(50));
  }
}

TEST(Delay, SpikeMixesBaseAndSpike) {
  Rng rng(1);
  SpikeDelay d(sim::microseconds(10), sim::milliseconds(5), 0.5);
  int spikes = 0;
  for (int i = 0; i < 1000; ++i) {
    auto s = d.sample(rng);
    if (s > sim::microseconds(10)) ++spikes;
  }
  EXPECT_GT(spikes, 300);
  EXPECT_LT(spikes, 700);
}

TEST(Availability, AlwaysUpIsUp) {
  AlwaysUp a;
  EXPECT_TRUE(a.is_up(sim::Time{123}));
  EXPECT_EQ(a.next_up(sim::Time{123}), sim::Time{123});
}

TEST(Availability, PeriodicDutyPhases) {
  PeriodicDuty duty(sim::milliseconds(10), sim::milliseconds(3));
  EXPECT_TRUE(duty.is_up(sim::Time{0}));
  EXPECT_TRUE(duty.is_up(sim::Time{} + sim::milliseconds(2)));
  EXPECT_FALSE(duty.is_up(sim::Time{} + sim::milliseconds(3)));
  EXPECT_FALSE(duty.is_up(sim::Time{} + sim::milliseconds(9)));
  EXPECT_TRUE(duty.is_up(sim::Time{} + sim::milliseconds(10)));
  EXPECT_EQ(duty.next_up(sim::Time{} + sim::milliseconds(4)),
            sim::Time{} + sim::milliseconds(10));
}

TEST(Availability, PeriodicDutyZeroUpNeverComesUp) {
  PeriodicDuty duty(sim::milliseconds(10), sim::milliseconds(0));
  EXPECT_FALSE(duty.is_up(sim::Time{5}));
  EXPECT_EQ(duty.next_up(sim::Time{5}), sim::kTimeMax);
}

TEST(Availability, PeriodicDutyOffsetShiftsWindow) {
  PeriodicDuty duty(sim::milliseconds(10), sim::milliseconds(3),
                    sim::milliseconds(5));
  EXPECT_FALSE(duty.is_up(sim::Time{0}));
  EXPECT_TRUE(duty.is_up(sim::Time{} + sim::milliseconds(5)));
  EXPECT_TRUE(duty.is_up(sim::Time{} + sim::milliseconds(7)));
  EXPECT_FALSE(duty.is_up(sim::Time{} + sim::milliseconds(8)));
}

// Pin the exact-boundary semantics documented on PeriodicDuty: the period
// start instant is up (when up > 0), the instant the up window closes is
// down, and next_up from there is the next period start.
TEST(Availability, PeriodicDutyExactPeriodBoundaries) {
  PeriodicDuty duty(sim::milliseconds(10), sim::milliseconds(3),
                    sim::milliseconds(5));
  for (int k = 0; k < 4; ++k) {
    const sim::Time start =
        sim::Time{} + sim::milliseconds(5) + sim::milliseconds(10 * k);
    EXPECT_TRUE(duty.is_up(start)) << "period " << k;
    // Last up instant vs first down instant of the window.
    EXPECT_TRUE(duty.is_up(start + (sim::milliseconds(3) - sim::Duration{1})));
    EXPECT_FALSE(duty.is_up(start + sim::milliseconds(3))) << "period " << k;
    // next_up from the window-close edge and from deep in the down part
    // both land exactly on the next period start.
    EXPECT_EQ(duty.next_up(start + sim::milliseconds(3)),
              start + sim::milliseconds(10));
    EXPECT_EQ(duty.next_up(start + (sim::milliseconds(10) - sim::Duration{1})),
              start + sim::milliseconds(10));
    // next_up at an up instant is the identity.
    EXPECT_EQ(duty.next_up(start), start);
  }
}

TEST(Availability, PeriodicDutyFullDutyAlwaysUp) {
  // up == period: the down part is empty, including at period boundaries.
  PeriodicDuty duty(sim::milliseconds(10), sim::milliseconds(10));
  for (int ms : {0, 9, 10, 15, 20, 100}) {
    const sim::Time t = sim::Time{} + sim::milliseconds(ms);
    EXPECT_TRUE(duty.is_up(t)) << ms << "ms";
    EXPECT_EQ(duty.next_up(t), t) << ms << "ms";
  }
}

TEST(Availability, PeriodicDutyBeforeFirstPeriodStart) {
  // The schedule extends periodically to times before the offset: with
  // period 10 / up 3 / offset 5, the prior window is [-5ms, -2ms).
  PeriodicDuty duty(sim::milliseconds(10), sim::milliseconds(3),
                    sim::milliseconds(5));
  EXPECT_TRUE(duty.is_up(sim::Time{-5'000'000}));
  EXPECT_TRUE(duty.is_up(sim::Time{-3'000'001}));
  EXPECT_FALSE(duty.is_up(sim::Time{-2'000'000}));
  EXPECT_FALSE(duty.is_up(sim::Time{0}));
  EXPECT_EQ(duty.next_up(sim::Time{0}), sim::Time{} + sim::milliseconds(5));
  EXPECT_EQ(duty.next_up(sim::Time{-2'000'000}),
            sim::Time{} + sim::milliseconds(5));
}

TEST(Availability, PeriodicDutyZeroUpNextUpFromAnyInstant) {
  // up == 0 must report kTimeMax from every instant, including exact period
  // starts (phase 0 is *not* inside an empty up window).
  PeriodicDuty duty(sim::milliseconds(10), sim::milliseconds(0),
                    sim::milliseconds(4));
  for (int ms : {0, 4, 14, 24}) {
    const sim::Time t = sim::Time{} + sim::milliseconds(ms);
    EXPECT_FALSE(duty.is_up(t)) << ms << "ms";
    EXPECT_EQ(duty.next_up(t), sim::kTimeMax) << ms << "ms";
  }
}

TEST(Availability, WindowsScheduleAndFinalUp) {
  std::vector<Windows::Window> w{
      {sim::Time{10}, sim::Time{20}},
      {sim::Time{50}, sim::Time{60}},
  };
  Windows a(w, sim::Time{100});
  EXPECT_FALSE(a.is_up(sim::Time{5}));
  EXPECT_TRUE(a.is_up(sim::Time{15}));
  EXPECT_FALSE(a.is_up(sim::Time{20}));  // end is exclusive
  EXPECT_TRUE(a.is_up(sim::Time{55}));
  EXPECT_FALSE(a.is_up(sim::Time{70}));
  EXPECT_TRUE(a.is_up(sim::Time{100}));
  EXPECT_EQ(a.next_up(sim::Time{5}), sim::Time{10});
  EXPECT_EQ(a.next_up(sim::Time{25}), sim::Time{50});
  EXPECT_EQ(a.next_up(sim::Time{70}), sim::Time{100});
}

}  // namespace
}  // namespace cim::net

// Reliable FIFO transport synthesized over a faulty channel (ARQ).
//
// The paper's IS-protocols are correct only if the single inter-IS channel is
// a *reliable FIFO* channel (Section 1.1, Theorem 1). A ReliableTransport
// endpoint restores that assumption on top of a lossy, reordering, or
// partitioned link: per-message sequence numbers, cumulative ACKs
// (piggybacked on data frames, or sent standalone after a short delay),
// retransmission timers with exponential backoff and jitter, duplicate and
// reorder suppression on receive, and a bounded send window with
// backpressure — payloads past the window queue at the sender, mirroring the
// paper's dial-up queuing.
//
// Topology: one endpoint per side of a link. Endpoint A sends data frames on
// the A→B channel and receives data + ACKs on the B→A channel (and vice
// versa), so every frame of the reverse direction carries a cumulative ACK
// for free. In-order payloads are handed to the upper Receiver with the
// *underlying* inbound ChannelId as `from`, so upper layers (IsProcess) need
// no transport-specific plumbing.
//
// Crash windows: set_down(true) models the owning host being crashed — every
// arriving frame is dropped (the peer's retransmissions recover them later)
// and all timers stop. Sequencing state (send/receive counters, the unacked
// queue, queued payloads) persists across the window, modelling the stable
// storage a real recovery log provides; see docs/FAULTS.md for the recovery
// invariants.
#pragma once

#include <cstdint>
#include <map>

#include "common/rng.h"
#include "common/vec_queue.h"
#include "net/fabric.h"
#include "obs/obs.h"

namespace cim::net {

struct TransportConfig {
  /// Maximum unacknowledged data frames in flight; further sends queue.
  std::size_t window = 32;
  /// Initial retransmission timeout; doubles (×backoff) per consecutive
  /// timeout without ACK progress, capped at rto_max.
  sim::Duration rto_initial = sim::milliseconds(20);
  sim::Duration rto_max = sim::milliseconds(400);
  double backoff = 2.0;
  /// Each armed retransmit timer stretches by a uniform factor in
  /// [1, 1 + jitter] so both endpoints never retransmit in lockstep.
  double jitter = 0.25;
  /// A received data frame with no outbound data to piggyback on is
  /// acknowledged standalone after this delay.
  sim::Duration ack_delay = sim::milliseconds(2);
  std::uint64_t seed = 1;
};

class ReliableTransport final : public Receiver {
 public:
  ReliableTransport(Fabric& fabric, TransportConfig config,
                    obs::Observability* obs = nullptr);
  ReliableTransport(const ReliableTransport&) = delete;
  ReliableTransport& operator=(const ReliableTransport&) = delete;

  /// Wire the endpoint: data+ACK frames go out on `out`; this endpoint must
  /// be registered as the Fabric receiver of `in`; in-order payloads are
  /// delivered to `upper` with `in` as the `from` channel.
  void wire(ChannelId out, ChannelId in, Receiver* upper);

  /// Send a payload reliably: delivered to the peer's upper receiver exactly
  /// once, in send order. Payloads must support Message::clone() (needed for
  /// retransmission).
  void send(MessagePtr payload);

  /// Crash window of the owning host: while down, arriving frames are lost
  /// (the ARQ recovers them) and no timer fires. Sequencing state persists.
  void set_down(bool down);
  bool down() const { return down_; }

  // ---- introspection -------------------------------------------------------
  std::size_t window_in_use() const { return unacked_.size(); }
  std::size_t queued() const { return queue_.size(); }
  /// Payloads handed to the upper receiver (exactly-once count).
  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t retransmits() const { return retransmits_; }
  std::uint64_t timeouts() const { return timeouts_; }
  std::uint64_t dups_suppressed() const { return dups_suppressed_; }
  std::uint64_t acks_sent() const { return acks_sent_; }
  /// Frames dropped because they arrived inside a crash window.
  std::uint64_t dropped_while_down() const { return dropped_while_down_; }
  /// All sent payloads acknowledged and nothing queued.
  bool drained() const { return unacked_.empty() && queue_.empty(); }

  // net::Receiver (frames from the peer endpoint).
  void on_message(ChannelId from, MessagePtr msg) override;

 private:
  struct Unacked {
    std::uint64_t seq = 0;
    MessagePtr payload;  // original; clones go on the wire
    std::uint32_t attempts = 0;
  };

  void admit_from_queue();
  void transmit(Unacked& entry);
  void handle_ack(std::uint64_t ack);
  void deliver_in_order(std::uint64_t seq, MessagePtr payload);
  void arm_retx_timer();
  void disarm_retx_timer() { ++retx_gen_; }
  void on_retx_timeout();
  void schedule_ack();
  void send_standalone_ack();

  Fabric& fabric_;
  sim::Simulator& sim_;
  TransportConfig cfg_;
  Rng rng_;
  ChannelId out_{};
  ChannelId in_{};
  Receiver* upper_ = nullptr;
  bool wired_ = false;
  bool down_ = false;

  // Sender state.
  std::uint64_t send_next_ = 0;        // next fresh sequence number
  VecQueue<Unacked> unacked_;          // in-flight window, seq ascending
  VecQueue<MessagePtr> queue_;         // backpressured payloads, no seq yet
  sim::Duration rto_;
  std::uint64_t retx_gen_ = 0;         // cancels stale timer events
  bool retx_armed_ = false;

  // Receiver state.
  std::uint64_t recv_next_ = 0;                 // cumulative-ACK value
  std::map<std::uint64_t, MessagePtr> reorder_; // out-of-order holdback
  bool ack_pending_ = false;
  std::uint64_t ack_gen_ = 0;

  std::uint64_t delivered_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t dups_suppressed_ = 0;
  std::uint64_t acks_sent_ = 0;
  std::uint64_t dropped_while_down_ = 0;

  // Cached instrument cells (null without observability).
  obs::TraceSink* trace_ = nullptr;
  obs::Counter* m_retx_sent_ = nullptr;
  obs::Counter* m_retx_timeouts_ = nullptr;
  obs::Counter* m_acks_ = nullptr;
  obs::Counter* m_dups_ = nullptr;
  obs::Counter* m_down_drops_ = nullptr;
  obs::ValueHistogram* h_window_ = nullptr;
};

/// The wire frame: a data payload (seq-numbered clone of the application
/// message) and/or a cumulative ACK. Standalone ACK frames carry no payload.
struct TransportFrame final : Message {
  std::uint64_t seq = 0;   // meaningful when payload != nullptr
  std::uint64_t ack = 0;   // cumulative: every seq < ack was received
  MessagePtr payload;      // null for standalone ACKs

  // Heartbeat timestamp triple (wire transport v2, all steady-clock ns in
  // the *sender's* clock unless noted). Zero on every data frame — only
  // mesh::LinkSession heartbeats stamp these, completing the NTP-style
  // four-timestamp exchange that yields per-edge RTT and pairwise clock
  // offset (docs/OBSERVABILITY.md "RTT and clock offset"):
  //   ts_orig — echo of the *peer's* most recent ts_tx (t1), 0 if none yet
  //   ts_rx   — local receive time of that peer heartbeat (t2)
  //   ts_tx   — local send time of this heartbeat (t3)
  std::uint64_t ts_orig = 0;
  std::uint64_t ts_rx = 0;
  std::uint64_t ts_tx = 0;

  const char* type_name() const override {
    return payload ? "tr.data" : "tr.ack";
  }
  std::size_t wire_size() const override {
    // seq + ack + flags, plus the payload when present.
    return 20 + (payload ? payload->wire_size() : 0);
  }
  WriteId wid() const override { return payload ? payload->wid() : WriteId{}; }
};

}  // namespace cim::net

file(REMOVE_RECURSE
  "CMakeFiles/cim_checker.dir/causal_checker.cpp.o"
  "CMakeFiles/cim_checker.dir/causal_checker.cpp.o.d"
  "CMakeFiles/cim_checker.dir/history.cpp.o"
  "CMakeFiles/cim_checker.dir/history.cpp.o.d"
  "CMakeFiles/cim_checker.dir/relation.cpp.o"
  "CMakeFiles/cim_checker.dir/relation.cpp.o.d"
  "CMakeFiles/cim_checker.dir/search_checker.cpp.o"
  "CMakeFiles/cim_checker.dir/search_checker.cpp.o.d"
  "CMakeFiles/cim_checker.dir/session_checker.cpp.o"
  "CMakeFiles/cim_checker.dir/session_checker.cpp.o.d"
  "CMakeFiles/cim_checker.dir/trace_io.cpp.o"
  "CMakeFiles/cim_checker.dir/trace_io.cpp.o.d"
  "libcim_checker.a"
  "libcim_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cim_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Threaded key-value store: the same interconnected causal memory driven by
// real std::threads through the blocking client API (the paper's
// "application process blocks until it receives the corresponding
// response").
//
// Two teams (one per system) collaborate on a small task board. Each member
// runs on its own OS thread; writes propagate through the IS link; the final
// history is verified causal.
#include <atomic>
#include <iostream>
#include <thread>
#include <vector>

#include "checker/causal_checker.h"
#include "interconnect/federation.h"
#include "protocols/anbkh.h"
#include "runtime/runtime.h"

using namespace cim;

int main() {
  isc::FederationConfig cfg;
  for (std::uint16_t s = 0; s < 2; ++s) {
    mcs::SystemConfig sys;
    sys.id = SystemId{s};
    sys.num_app_processes = 2;
    sys.protocol = proto::anbkh_protocol();
    sys.seed = 77 + s;
    sys.intra_delay = [] {
      return std::make_unique<net::FixedDelay>(sim::microseconds(200));
    };
    cfg.systems.push_back(std::move(sys));
  }
  isc::LinkSpec link;
  link.system_a = 0;
  link.system_b = 1;
  link.delay = [] {
    return std::make_unique<net::FixedDelay>(sim::milliseconds(1));
  };
  cfg.links.push_back(std::move(link));
  isc::Federation fed(std::move(cfg));

  rt::Runtime runtime(fed);
  runtime.start();

  const VarId task_list{0};   // last task id posted
  const VarId done_list{1};   // last task id completed

  // Team 0 posts tasks 1..5; team 1 picks each up and marks it done; a
  // reviewer in team 0 watches completions.
  std::atomic<bool> stop{false};

  std::thread poster([&] {
    rt::BlockingClient me(runtime, fed.system(0).app(0));
    for (Value task = 1; task <= 5; ++task) {
      me.write(task_list, task);
      std::cout << "[team0.poster]   posted task " << task << "\n";
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  std::thread worker([&] {
    rt::BlockingClient me(runtime, fed.system(1).app(0));
    Value last_done = 0;
    while (last_done < 5) {
      const Value task = me.read(task_list);
      if (task > last_done) {
        // Causal memory guarantees: once we see task N posted, marking it
        // done is causally after the posting.
        me.write(done_list, task);
        last_done = task;
        std::cout << "[team1.worker]   completed task " << task << "\n";
      }
      std::this_thread::yield();
    }
  });

  std::thread reviewer([&] {
    rt::BlockingClient me(runtime, fed.system(0).app(1));
    Value seen = 0;
    while (seen < 5) {
      const Value done = me.read(done_list);
      if (done > seen) {
        // Causality across two link crossings: if we see "done = N" we must
        // also see "posted >= N".
        const Value posted = me.read(task_list);
        std::cout << "[team0.reviewer] sees done=" << done
                  << ", posted=" << posted << (posted >= done ? "" : "  <- CAUSALITY BROKEN")
                  << "\n";
        seen = done;
      }
      std::this_thread::yield();
    }
  });

  poster.join();
  worker.join();
  reviewer.join();
  stop = true;
  runtime.stop();

  auto verdict = chk::CausalChecker{}.check(fed.federation_history());
  std::cout << "\nchecker verdict on the threaded execution: "
            << (verdict.ok() ? "causal" : verdict.detail) << "\n";
  return verdict.ok() ? 0 : 1;
}

file(REMOVE_RECURSE
  "CMakeFiles/bench_crosslink.dir/bench_crosslink.cpp.o"
  "CMakeFiles/bench_crosslink.dir/bench_crosslink.cpp.o.d"
  "bench_crosslink"
  "bench_crosslink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_crosslink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

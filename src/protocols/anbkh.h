// ANBKH causal memory protocol (Ahamad, Neiger, Burns, Kohli, Hutto,
// "Causal memory: definitions, implementation and programming", 1995) —
// the canonical propagation-based causal MCS-protocol the paper cites [2].
//
// Full replication with vector clocks:
//  * write(x, v): tick own clock entry, apply locally, broadcast the update
//    with the clock, acknowledge immediately (writes are local operations);
//  * read(x): return the local replica value immediately;
//  * a remote update from writer q stamped with clock w applies when it is
//    *causally ready*: w[q] == vt[q]+1 and w[j] <= vt[j] for j != q.
//
// Causal Updating (Property 1) holds: replicas apply causally ordered writes
// in causal order by the readiness rule, so the interconnect layer runs
// IS-protocol 1 (Fig. 1) on systems using this protocol.
#pragma once

#include <vector>

#include "common/vector_clock.h"
#include "common/var_store.h"
#include "mcs/mcs_process.h"
#include "protocols/update_msg.h"

namespace cim::proto {

class AnbkhProcess final : public mcs::McsProcess {
 public:
  explicit AnbkhProcess(const mcs::McsContext& ctx);

  void handle_read(VarId var, mcs::ReadCallback cb) override;
  void on_message(net::ChannelId from, net::MessagePtr msg) override;

  bool satisfies_causal_updating() const override { return true; }
  const char* protocol_name() const override { return "anbkh"; }

  const VectorClock& clock() const { return clock_; }
  /// Updates received but not yet causally ready.
  std::size_t pending_updates() const { return pending_.size(); }
  Value replica_value(VarId var) const;

 protected:
  void do_write(VarId var, Value value, WriteId wid,
                mcs::WriteCallback cb) override;

 private:
  void try_apply();
  void apply_step();

  VarStore store_;
  VectorClock clock_;
  // vector, not deque: mid-erase shifts preserve arrival order (which the
  // readiness scan depends on) and the retained capacity keeps the
  // steady-state buffer allocation-free.
  std::vector<TimestampedUpdate> pending_;
  bool applying_ = false;
};

/// Factory for mcs::SystemConfig::protocol.
mcs::ProtocolFactory anbkh_protocol();

}  // namespace cim::proto

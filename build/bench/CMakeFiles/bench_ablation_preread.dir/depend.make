# Empty dependencies file for bench_ablation_preread.
# This may be replaced when dependencies are built.

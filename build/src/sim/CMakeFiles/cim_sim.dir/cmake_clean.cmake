file(REMOVE_RECURSE
  "CMakeFiles/cim_sim.dir/simulator.cpp.o"
  "CMakeFiles/cim_sim.dir/simulator.cpp.o.d"
  "libcim_sim.a"
  "libcim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libcim_proto.a"
)

# Empty dependencies file for cim_stats.
# This may be replaced when dependencies are built.

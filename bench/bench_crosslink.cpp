// Experiment E2 (Section 6, the cross-link bottleneck).
//
// Paper: "if we have two systems, each one with n/2 processes and in
// different networks, in the global DSM system n/2 messages have to cross
// from one network to the other for each write operation, which can generate
// a bottleneck. With our protocol only one message has to cross."
//
// Global: one DSM system of n processes whose first half sits in LAN A and
// second half in LAN B; we count broadcast messages crossing the halves.
// Interconnected: two systems of n/2 processes joined by one IS link.
#include <iostream>

#include "bench_report.h"
#include "bench_util.h"
#include "stats/table.h"

namespace {

using namespace cim;

double global_cross_per_write(std::uint16_t n, std::uint64_t seed) {
  bench::FedParams params;
  params.num_systems = 1;
  params.procs_per_system = n;
  params.seed = seed;
  isc::Federation fed(bench::make_config(params));

  wl::UniformConfig wc;
  wc.ops_per_process = 10;
  wc.write_fraction = 1.0;
  wc.seed = seed + 3;
  auto runners = wl::install_uniform(fed, wc);
  fed.run();

  const std::uint16_t half = n / 2;
  const auto cross = fed.fabric().stats_where([half](ProcId src, ProcId dst) {
    return (src.index < half) != (dst.index < half);
  });
  const double writes = static_cast<double>(n) * 10;
  return static_cast<double>(cross.messages) / writes;
}

double interconnected_cross_per_write(std::uint16_t n, std::uint64_t seed) {
  bench::FedParams params;
  params.num_systems = 2;
  params.procs_per_system = static_cast<std::uint16_t>(n / 2);
  params.seed = seed;
  isc::Federation fed(bench::make_config(params));

  wl::UniformConfig wc;
  wc.ops_per_process = 10;
  wc.write_fraction = 1.0;
  wc.seed = seed + 3;
  auto runners = wl::install_uniform(fed, wc);
  fed.run();

  const auto cross = fed.fabric().cross_system_stats(SystemId{0}, SystemId{1});
  const double writes = static_cast<double>(n) * 10;
  return static_cast<double>(cross.messages) / writes;
}

}  // namespace

int main() {
  std::cout << "E2 — messages crossing the inter-network link per write "
               "(Section 6)\n"
            << "paper: global DSM n/2; interconnected systems 1\n\n";

  bench::JsonReport report("crosslink");
  stats::Table table({"n", "paper global (n/2)", "measured global",
                      "paper IS (1)", "measured IS"});
  for (std::uint16_t n : {4, 8, 16, 32, 64}) {
    const double global = global_cross_per_write(n, 5);
    const double interconnected = interconnected_cross_per_write(n, 5);
    table.add_row(n, n / 2.0, global, 1.0, interconnected);
    report.row("n" + std::to_string(n))
        .field("n", n)
        .field("paper_global_cross_per_write", n / 2.0)
        .field("measured_global_cross_per_write", global)
        .field("paper_is_cross_per_write", 1.0)
        .field("measured_is_cross_per_write", interconnected);
  }
  table.print();

  std::cout << "\nThe bottleneck grows linearly with n in the global system "
               "but stays constant\nunder the IS-protocols — the paper's "
               "motivation for consistency islands.\n";
  return 0;
}

// Tests for the scaled checker core: columnar history storage (column.h,
// HistoryBuilder), the sparse dependency graph (SCC, toposort, vector-clock
// reachability), adversarial history shapes, and the repeated-value
// (∃-assignment) semantics — cross-validated against the brute-force
// SearchChecker over 1000+ seeded random histories with duplicate values.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "checker/causal_checker.h"
#include "checker/column.h"
#include "checker/graph.h"
#include "checker/search_checker.h"
#include "checker/trace_history.h"
#include "common/rng.h"
#include "helpers.h"

namespace cim::chk {
namespace {

using test::H;
using test::X;
using test::Y;
using test::Z;

// ----------------------------------------------------------------- columns

TEST(Column, BitColumnRoundTrip) {
  col::BitColumn c;
  std::vector<bool> ref;
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const bool b = rng.chance(0.3);
    c.push_back(b);
    ref.push_back(b);
  }
  ASSERT_EQ(c.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_EQ(c[i], ref[i]);
  EXPECT_LE(c.bytes(), 1000 / 8 + 16u);
}

TEST(Column, I64ColumnHandlesOverflowValues) {
  col::I64Column c;
  const std::vector<std::int64_t> vals = {
      0, 1, -1, 1000, -1000, INT64_MAX, INT64_MIN, 42, INT64_MAX - 1, 0};
  for (auto v : vals) c.push_back(v);
  for (std::size_t i = 0; i < vals.size(); ++i) EXPECT_EQ(c[i], vals[i]);
  col::I64Column::Cursor cur(c);
  for (std::size_t i = 0; i < vals.size(); ++i) EXPECT_EQ(cur.next(), vals[i]);
}

TEST(Column, DeltaColumnMonotoneTimestampsStayCompact) {
  col::DeltaI64Column c;
  std::vector<std::int64_t> ref;
  Rng rng(11);
  std::int64_t t = 1'000'000'000'000LL;  // ~realistic ns timestamps
  for (int i = 0; i < 5000; ++i) {
    t += static_cast<std::int64_t>(rng.uniform(0, 100'000));
    c.push_back(t);
    ref.push_back(t);
  }
  for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_EQ(c[i], ref[i]);
  col::DeltaI64Column::Cursor cur(c);
  for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_EQ(cur.next(), ref[i]);
  // Deltas fit u32: ~4.5 B/entry (u32 slots + checkpoints), not 8.
  EXPECT_LT(static_cast<double>(c.bytes()) / 5000.0, 5.0);
}

TEST(Column, DeltaColumnHandlesNonMonotoneAndHugeJumps) {
  col::DeltaI64Column c;
  const std::vector<std::int64_t> vals = {100, 50, INT64_MAX / 2, 0, -5,
                                          INT64_MIN / 2, 7};
  for (auto v : vals) c.push_back(v);
  for (std::size_t i = 0; i < vals.size(); ++i) EXPECT_EQ(c[i], vals[i]);
}

TEST(Column, VarColumnPromotesPastU16) {
  col::VarColumn c;
  for (std::uint32_t v = 0; v < 70'000; ++v) c.push(VarId{v});
  EXPECT_EQ(c.num_vars(), 70'000u);
  EXPECT_EQ(c.var(65'999).value, 65'999u);
  EXPECT_EQ(c.var(69'999).value, 69'999u);
  EXPECT_EQ(c.dense(1234), 1234u);
}

// ------------------------------------------------------- columnar history

TEST(ColumnarHistory, BytesPerOpWellBelowStructFootprint) {
  HistoryBuilder b;
  Rng rng(3);
  std::int64_t t = 0;
  for (int i = 0; i < 100'000; ++i) {
    const ProcId proc{SystemId{0}, static_cast<std::uint16_t>(i % 8)};
    t += static_cast<std::int64_t>(rng.uniform(1, 2000));
    b.add(proc, false, i % 3 ? OpKind::kWrite : OpKind::kRead,
          VarId{static_cast<std::uint32_t>(i % 64)}, i, sim::Time{t},
          sim::Time{t + 500});
  }
  History h = b.build();
  ASSERT_EQ(h.size(), 100'000u);
  // The acceptance bar: >= 4x below the old per-Op footprint.
  EXPECT_LE(h.bytes_per_op(),
            static_cast<double>(History::struct_bytes_per_op()) / 4.0)
      << "bytes_per_op=" << h.bytes_per_op();
}

TEST(ColumnarHistory, BuilderMatchesOpVectorConstructor) {
  Rng rng(9);
  std::vector<Op> ops;
  HistoryBuilder b;
  std::map<ProcId, std::uint64_t> seq;
  for (int i = 0; i < 500; ++i) {
    Op op;
    op.proc = ProcId{SystemId{static_cast<std::uint16_t>(rng.uniform(0, 1))},
                     static_cast<std::uint16_t>(rng.uniform(0, 3))};
    op.kind = rng.chance(0.5) ? OpKind::kWrite : OpKind::kRead;
    op.is_isp = rng.chance(0.1);
    op.var = VarId{static_cast<std::uint32_t>(rng.uniform(0, 5))};
    op.value = static_cast<Value>(rng.uniform(0, 1'000'000));
    op.proc_seq = seq[op.proc]++;
    op.invoked = sim::Time{static_cast<std::int64_t>(rng.uniform(0, 1 << 30))};
    op.responded = sim::Time{op.invoked.ns + 17};
    ops.push_back(op);
    b.add(op);
  }
  History via_builder = b.build();
  History via_ctor{ops};
  ASSERT_EQ(via_builder.size(), via_ctor.size());
  EXPECT_EQ(via_builder.to_string(), via_ctor.to_string());
  for (std::size_t i = 0; i < via_builder.size(); ++i) {
    EXPECT_EQ(via_builder.invoked(i), via_ctor.invoked(i));
    EXPECT_EQ(via_builder.responded(i), via_ctor.responded(i));
    EXPECT_EQ(via_builder.is_isp(i), via_ctor.is_isp(i));
  }
}

TEST(ColumnarHistory, AccessorsMatchMaterializedOps) {
  auto h = H{}.wr(0, X, 7).rd(1, X, 7).wr(1, Y, 9).history();
  for (std::size_t i = 0; i < h.size(); ++i) {
    const Op op = h.op(i);
    EXPECT_EQ(h.kind(i), op.kind);
    EXPECT_EQ(h.var(i), op.var);
    EXPECT_EQ(h.value(i), op.value);
    EXPECT_EQ(h.proc(i), op.proc);
    EXPECT_EQ(h.proc_seq(i), op.proc_seq);
    EXPECT_EQ(h.is_isp(i), op.is_isp);
  }
  EXPECT_EQ(h.num_vars(), 2u);
  EXPECT_EQ(h.var_of_dense(h.var_dense(0)), h.var(0));
}

// ------------------------------------------------------------ sparse graph

History chain_history(std::size_t per_proc, std::size_t procs) {
  HistoryBuilder b;
  Value v = 1;
  for (std::size_t p = 0; p < procs; ++p) {
    for (std::size_t i = 0; i < per_proc; ++i) {
      b.add(ProcId{SystemId{0}, static_cast<std::uint16_t>(p)}, false,
            OpKind::kWrite, X, v++, sim::Time{}, sim::Time{});
    }
  }
  return b.build();
}

TEST(SparseGraph, TopoOrderRespectsPoAndEdges) {
  History h = chain_history(4, 2);  // ops 0-3 on p0, 4-7 on p1
  SparseGraph g(h);
  g.set_edges({{3, 4}});  // last of p0 -> first of p1
  std::vector<std::uint32_t> order;
  ASSERT_TRUE(g.topo_order(order, nullptr));
  std::vector<std::uint32_t> pos(h.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (std::uint32_t i = 0; i + 1 < 4; ++i) EXPECT_LT(pos[i], pos[i + 1]);
  EXPECT_LT(pos[3], pos[4]);
}

TEST(SparseGraph, CycleYieldsWitnessInsideScc) {
  History h = chain_history(2, 2);  // 0,1 | 2,3
  SparseGraph g(h);
  g.set_edges({{1, 2}, {3, 0}});  // 0->1->2->3->0
  std::vector<std::uint32_t> order;
  std::pair<std::uint32_t, std::uint32_t> w{99, 99};
  ASSERT_FALSE(g.topo_order(order, &w));
  // Both witnesses are in the cycle and mutually reachable.
  std::vector<std::uint32_t> comp;
  g.scc(comp);
  EXPECT_EQ(comp[w.first], comp[w.second]);
  EXPECT_NE(w.first, w.second);
}

TEST(SparseGraph, SccSeparatesComponents) {
  History h = chain_history(3, 2);  // 0,1,2 | 3,4,5
  SparseGraph g(h);
  g.set_edges({{4, 3}});  // 3<->4 cycle via po 3->4 and edge 4->3
  std::vector<std::uint32_t> comp;
  const std::size_t n_comp = g.scc(comp);
  EXPECT_EQ(n_comp, 5u);  // {0}{1}{2}{3,4}{5}
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[1]);
  EXPECT_NE(comp[3], comp[5]);
}

TEST(SparseGraph, ClockReachabilityMatchesDenseClosure) {
  // Random DAGs: clocks-based reaches() must equal dense transitive closure.
  Rng rng(21);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t procs = 1 + rng.uniform(0, 3);
    const std::size_t per_proc = 1 + rng.uniform(0, 5);
    History h = chain_history(per_proc, procs);
    const std::size_t n = h.size();
    SparseGraph g(h);
    // Random forward edges only (acyclic by construction).
    std::vector<Edge> edges;
    for (std::uint32_t a = 0; a < n; ++a) {
      for (std::uint32_t b = a + 1; b < n; ++b) {
        if (rng.chance(0.15)) edges.push_back({a, b});
      }
    }
    g.set_edges(edges);
    std::vector<std::uint32_t> order;
    ASSERT_TRUE(g.topo_order(order, nullptr));
    std::vector<std::uint32_t> clk;
    g.clocks(order, clk);
    // Dense reference over po ∪ edges.
    Relation r(n);
    for (const Edge& e : edges) r.set(e.from, e.to);
    for (std::size_t p = 0; p < h.num_processes(); ++p) {
      const History::Span s = h.process_span(p);
      for (std::size_t i = s.begin; i + 1 < s.end; ++i) r.set(i, i + 1);
    }
    auto closed = transitive_closure(r);
    ASSERT_FALSE(closed.cycle_witness.has_value());
    for (std::uint32_t a = 0; a < n; ++a) {
      for (std::uint32_t b = 0; b < n; ++b) {
        if (a == b) continue;
        EXPECT_EQ(g.reaches(clk, a, b), closed.closure.test(a, b))
            << a << "->" << b;
      }
    }
  }
}

// ----------------------------------------------------- adversarial shapes

TEST(CheckerAdversarial, LongSingleProcessChain) {
  HistoryBuilder b;
  const ProcId p{SystemId{0}, 0};
  for (int i = 0; i < 20'000; ++i) {
    b.add(p, false, OpKind::kWrite, X, i + 1, sim::Time{}, sim::Time{});
    b.add(p, false, OpKind::kRead, X, i + 1, sim::Time{}, sim::Time{});
  }
  EXPECT_TRUE(CausalChecker{}.check(b.build(), Level::kCM).ok());
}

TEST(CheckerAdversarial, WideAntiChainOfWriters) {
  // 300 processes, one concurrent write each, one reader seeing all of
  // them in some order: every pair of writes is concurrent, and the CM
  // derivation materializes the quadratic observed-order edge set.
  HistoryBuilder b;
  for (std::uint16_t p = 0; p < 300; ++p) {
    b.add(ProcId{SystemId{0}, p}, false, OpKind::kWrite, X, p + 1,
          sim::Time{}, sim::Time{});
  }
  const ProcId reader{SystemId{1}, 0};
  for (std::uint16_t p = 0; p < 300; ++p) {
    b.add(reader, false, OpKind::kRead, X, p + 1, sim::Time{}, sim::Time{});
  }
  EXPECT_TRUE(CausalChecker{}.check(b.build(), Level::kCM).ok());
}

TEST(CheckerAdversarial, AllSameValueWritesUnreadIsCausal) {
  // Maximal reads-from ambiguity with nothing to resolve: no reads at all.
  HistoryBuilder b;
  for (std::uint16_t p = 0; p < 50; ++p) {
    for (int i = 0; i < 40; ++i) {
      b.add(ProcId{SystemId{0}, p}, false, OpKind::kWrite, X, 1, sim::Time{},
            sim::Time{});
    }
  }
  auto res = CausalChecker{}.check(b.build(), Level::kCM);
  EXPECT_TRUE(res.ok()) << res.detail;
  EXPECT_EQ(res.stats.ambiguous_reads, 0u);
}

TEST(CheckerAdversarial, AllSameValueWithReadersExercisesResidualSearch) {
  // Every read of the single value is maximally ambiguous; the visible-
  // latest-first candidate ordering must find an admissible assignment
  // without blowing the budget.
  auto h = H{}
               .wr(0, X, 1)
               .wr(1, X, 1)
               .wr(2, X, 1)
               .rd(3, X, 1)
               .rd(3, X, 1)
               .rd(4, X, 1)
               .history();
  auto res = CausalChecker{}.check(h, Level::kCM);
  EXPECT_TRUE(res.ok()) << res.detail;
  EXPECT_EQ(res.stats.ambiguous_reads, 3u);
}

TEST(CheckerAdversarial, ResidualBudgetExhaustionReportsUnknown) {
  // Force an unsatisfiable residual problem wide enough that a budget of 1
  // cannot prove it either way: the verdict must be kResidualLimit, not a
  // wrong definite answer.
  H h;
  for (std::uint16_t p = 0; p < 4; ++p) h.wr(p, X, 1);
  h.wr(4, X, 2);
  // Reader sees 2 (which overwrote nothing po-wise) then flip-flops 1,2,1:
  // stale under every assignment, but finding out needs > 1 attempt.
  h.rd(5, X, 1).rd(5, X, 2).rd(5, X, 1);
  auto res = CausalChecker{CheckOptions{.residual_budget = 1}}.check(
      h.history(), Level::kCM);
  EXPECT_EQ(res.pattern, BadPattern::kResidualLimit) << res.detail;
  // With the default budget the same history gets a definite verdict.
  auto full = CausalChecker{}.check(h.history(), Level::kCM);
  EXPECT_NE(full.pattern, BadPattern::kResidualLimit);
}

// --------------------------------------- repeated-value property validation

// 1000+ seeded random histories with *repeated values*: the sparse
// ∃-assignment checker must agree with the brute-force SearchChecker.
class DuplicateValueCrossValidation
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DuplicateValueCrossValidation, SparseCheckerMatchesSearch) {
  Rng rng(GetParam() * 7919 + 13);
  for (int trial = 0; trial < 25; ++trial) {
    H h;
    const int num_ops = 3 + static_cast<int>(rng.uniform(0, 6));
    // Values drawn from a pool of just 3, so duplicate writes of the same
    // (var, value) pair are common.
    for (int i = 0; i < num_ops; ++i) {
      const auto proc = static_cast<std::uint16_t>(rng.uniform(0, 2));
      const VarId var{static_cast<std::uint32_t>(rng.uniform(0, 1))};
      const Value v = static_cast<Value>(rng.uniform(1, 3));
      if (rng.chance(0.55)) {
        h.wr(proc, var, v);
      } else {
        h.rd(proc, var, rng.chance(0.15) ? kInitValue : v);
      }
    }
    auto history = h.history();
    auto fast = CausalChecker{}.check(history, Level::kCM);
    if (fast.pattern == BadPattern::kResidualLimit) continue;  // unknown
    auto slow = SearchChecker{}.is_causal(history);
    if (!slow.has_value()) continue;  // search budget exceeded — skip
    EXPECT_EQ(fast.ok(), *slow)
        << "checkers disagree (" << to_string(fast.pattern) << " — "
        << fast.detail << " — vs search "
        << (*slow ? "causal" : "not causal") << ") on:\n"
        << history.to_string();
  }
}

// 48 seeds x 25 trials = 1200 repeated-value histories.
INSTANTIATE_TEST_SUITE_P(Seeds, DuplicateValueCrossValidation,
                         ::testing::Range<std::uint64_t>(1, 49));

// Same cross-validation at level kCC via the CC-subset property: if CM
// accepts, CC must accept (patterns are a superset).
TEST(DuplicateValues, CMImpliesCCWithRepeatedValues) {
  Rng rng(4242);
  for (int trial = 0; trial < 200; ++trial) {
    H h;
    const int num_ops = 3 + static_cast<int>(rng.uniform(0, 7));
    for (int i = 0; i < num_ops; ++i) {
      const auto proc = static_cast<std::uint16_t>(rng.uniform(0, 2));
      const VarId var{static_cast<std::uint32_t>(rng.uniform(0, 1))};
      const Value v = static_cast<Value>(rng.uniform(1, 2));
      if (rng.chance(0.55)) {
        h.wr(proc, var, v);
      } else {
        h.rd(proc, var, v);
      }
    }
    auto history = h.history();
    const auto cm = CausalChecker{}.check(history, Level::kCM);
    const auto cc = CausalChecker{}.check(history, Level::kCC);
    if (cm.pattern == BadPattern::kResidualLimit ||
        cc.pattern == BadPattern::kResidualLimit) {
      continue;
    }
    EXPECT_TRUE(!cm.ok() || cc.ok())
        << "CM ok but CC bad on:\n" << history.to_string();
  }
}

// ------------------------------------------------- repeated-value regression

TEST(DuplicateValues, FederationFullHistoryWithIspCopiesIsCheckable) {
  // Regression for the old silent rejection: the *full* recorder history of
  // a federation contains each propagated write twice (origin + ISP copy)
  // — same variable, same value. The old checker refused it outright with
  // kDuplicateWrite; it must now produce a real verdict.
  isc::Federation fed(test::two_systems(2, proto::anbkh_protocol(),
                                        proto::anbkh_protocol()));
  fed.system(0).app(0).write(X, 1);
  fed.system(0).app(0).write(Y, 2);
  fed.system(1).app(1).write(X, 3);
  fed.run();
  const History full = fed.recorder().full();
  // Sanity: the ISP copies really do duplicate (var, value) pairs.
  bool has_dup = false;
  for (std::size_t i = 0; i < full.size() && !has_dup; ++i) {
    for (std::size_t j = i + 1; j < full.size() && !has_dup; ++j) {
      has_dup = full.is_write(i) && full.is_write(j) &&
                full.var(i) == full.var(j) && full.value(i) == full.value(j);
    }
  }
  ASSERT_TRUE(has_dup);
  const auto res = CausalChecker{}.check(full, Level::kCM);
  EXPECT_NE(res.pattern, BadPattern::kResidualLimit);
  EXPECT_TRUE(res.ok()) << res.detail;
}

// -------------------------------------------------------- trace streaming

obs::ParsedTraceEvent mcs_event(const char* name, ProcId proc,
                                std::uint32_t var, Value val,
                                std::uint64_t wid, std::int64_t t) {
  std::ostringstream json;
  json << "{\"v\":2,\"seq\":1,\"t\":" << t << ",\"cat\":\"mcs\",\"ev\":\""
       << name << "\",\"f\":{\"proc\":\"" << proc.system.value << "."
       << proc.index << "\",\"var\":" << var << ",\"val\":" << val
       << ",\"wid\":" << wid << "}}";
  obs::ParsedTraceEvent ev;
  EXPECT_TRUE(obs::parse_trace_line(json.str(), ev, nullptr));
  return ev;
}

TEST(TraceHistory, MatchesIssueDonePairsAndFlagsIspCopies) {
  TraceHistoryBuilder b;
  const ProcId app0{SystemId{0}, 0};
  const ProcId isp1{SystemId{1}, 7};
  b.observe(mcs_event("write_issue", app0, 0, 5, 101, 10));
  b.observe(mcs_event("write_done", app0, 0, 5, 101, 20));
  // The ISP re-issues wid 101 into the sibling system: flagged is_isp.
  b.observe(mcs_event("write_issue", isp1, 0, 5, 101, 30));
  b.observe(mcs_event("write_done", isp1, 0, 5, 101, 40));
  b.observe(mcs_event("read_issue", app0, 0, 0, 0, 50));
  b.observe(mcs_event("read_done", app0, 0, 5, 0, 60));
  History h = b.build();
  ASSERT_EQ(h.size(), 3u);
  EXPECT_EQ(b.stats().ops, 3u);
  EXPECT_EQ(b.stats().isp_ops, 1u);
  std::size_t isp_count = 0;
  for (std::size_t i = 0; i < h.size(); ++i) isp_count += h.is_isp(i);
  EXPECT_EQ(isp_count, 1u);
  // The α^T projection is causal and the read carries its timestamps.
  History app = h.filter([](const Op& op) { return !op.is_isp; });
  EXPECT_TRUE(CausalChecker{}.check(app, Level::kCM).ok());
}

TEST(TraceHistory, DropsIncompleteAndOrphanRecords) {
  TraceHistoryBuilder b;
  const ProcId p{SystemId{0}, 0};
  b.observe(mcs_event("write_issue", p, 0, 1, 1, 10));  // done never arrives
  b.observe(mcs_event("read_done", p, 3, 9, 0, 20));    // no matching issue
  b.observe(mcs_event("read_issue", p, 1, 0, 0, 30));
  b.observe(mcs_event("read_done", p, 1, 0, 0, 40));
  History h = b.build();
  EXPECT_EQ(h.size(), 1u);
  EXPECT_EQ(b.stats().orphan_dones, 1u);
  EXPECT_GE(b.stats().pending, 1u);
  EXPECT_EQ(h.kind(0), OpKind::kRead);
  EXPECT_EQ(h.invoked(0), sim::Time{30});
  EXPECT_EQ(h.responded(0), sim::Time{40});
}

}  // namespace
}  // namespace cim::chk


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mcs/app_process.cpp" "src/mcs/CMakeFiles/cim_mcs.dir/app_process.cpp.o" "gcc" "src/mcs/CMakeFiles/cim_mcs.dir/app_process.cpp.o.d"
  "/root/repo/src/mcs/mcs_process.cpp" "src/mcs/CMakeFiles/cim_mcs.dir/mcs_process.cpp.o" "gcc" "src/mcs/CMakeFiles/cim_mcs.dir/mcs_process.cpp.o.d"
  "/root/repo/src/mcs/system.cpp" "src/mcs/CMakeFiles/cim_mcs.dir/system.cpp.o" "gcc" "src/mcs/CMakeFiles/cim_mcs.dir/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/checker/CMakeFiles/cim_checker.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

// Observability layer tests: metric/histogram semantics, trace-sink ring
// behaviour, exporter output shapes, and — crucially — the schema contract:
// every metric and trace-event name the instrumentation emits must appear in
// docs/OBSERVABILITY.md (see "Schemas are versioned" there).
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "helpers.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace cim {
namespace {

using obs::TraceCategory;

// ---- metrics ---------------------------------------------------------------

TEST(ObsMetrics, CounterAndGaugeSemantics) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("test.counter");
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);

  obs::Gauge& g = reg.gauge("test.gauge");
  g.set(-5);
  g.add(15);
  EXPECT_EQ(g.value(), 10);
}

TEST(ObsMetrics, UpsertReturnsStableAddresses) {
  obs::MetricsRegistry reg;
  obs::Counter* a = &reg.counter("test.counter");
  // Registering other metrics must not move existing cells: instrumented
  // code caches these pointers at construction.
  for (int i = 0; i < 100; ++i) {
    reg.counter("test.counter_" + std::to_string(i));
  }
  EXPECT_EQ(a, &reg.counter("test.counter"));
  a->inc();
  EXPECT_EQ(reg.counter("test.counter").value(), 1u);
}

TEST(ObsMetrics, HistogramExactAggregatesAndPercentiles) {
  obs::DurationHistogram h;
  std::vector<sim::Duration> samples;
  for (std::int64_t v : {30, 10, 50, 20, 40}) {
    h.observe(sim::Duration{v});
    samples.push_back(sim::Duration{v});
  }
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 150);

  const stats::DurationSummary got = h.summary();
  const stats::DurationSummary want = stats::summarize(samples);
  EXPECT_EQ(got.count, 5u);
  EXPECT_EQ(got.min.ns, 10);
  EXPECT_EQ(got.max.ns, 50);
  EXPECT_EQ(got.p50.ns, want.p50.ns);
  EXPECT_EQ(got.p90.ns, want.p90.ns);
  EXPECT_EQ(got.p99.ns, want.p99.ns);
  EXPECT_DOUBLE_EQ(got.mean_ns, 30.0);
}

TEST(ObsMetrics, HistogramDecimationKeepsExactAggregates) {
  obs::Int64Histogram h;
  h.set_max_samples(16);
  const std::int64_t n = 1000;
  for (std::int64_t v = 1; v <= n; ++v) h.observe(v);

  // Decimation bounds retained samples but count/sum/min/max stay exact.
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(n));
  EXPECT_EQ(h.sum(), n * (n + 1) / 2);
  const stats::DurationSummary s = h.summary();
  EXPECT_EQ(s.count, static_cast<std::size_t>(n));
  EXPECT_EQ(s.min.ns, 1);
  EXPECT_EQ(s.max.ns, n);
  EXPECT_DOUBLE_EQ(s.mean_ns, 500.5);
  // Percentiles are stride-sampled approximations; they must stay ordered
  // and inside the exact range.
  EXPECT_LE(s.min.ns, s.p50.ns);
  EXPECT_LE(s.p50.ns, s.p90.ns);
  EXPECT_LE(s.p90.ns, s.p99.ns);
  EXPECT_LE(s.p99.ns, s.max.ns);
}

TEST(ObsMetrics, HistogramDecimationAcrossDefaultCap) {
  // Cross the default 2^20 retained-sample cap with a linear ramp: the
  // aggregates must stay exact and the stride-sampled percentiles must stay
  // close to the true order statistics of the ramp.
  obs::Int64Histogram h;
  const std::int64_t n = (std::int64_t{1} << 20) + 300000;  // ~1.35M
  for (std::int64_t v = 1; v <= n; ++v) h.observe(v);

  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(n));
  EXPECT_EQ(h.sum(), n * (n + 1) / 2);
  const stats::DurationSummary s = h.summary();
  EXPECT_EQ(s.count, static_cast<std::size_t>(n));
  EXPECT_EQ(s.min.ns, 1);
  EXPECT_EQ(s.max.ns, n);
  EXPECT_DOUBLE_EQ(s.mean_ns, double(n + 1) / 2.0);
  // For a ramp the true pXX is XX% of n; allow 2% of n of stride error.
  const double tol = 0.02 * double(n);
  EXPECT_NEAR(double(s.p50.ns), 0.50 * double(n), tol);
  EXPECT_NEAR(double(s.p90.ns), 0.90 * double(n), tol);
  EXPECT_NEAR(double(s.p99.ns), 0.99 * double(n), tol);
  EXPECT_LE(s.min.ns, s.p50.ns);
  EXPECT_LE(s.p50.ns, s.p90.ns);
  EXPECT_LE(s.p90.ns, s.p99.ns);
  EXPECT_LE(s.p99.ns, s.max.ns);
}

TEST(ObsMetrics, SnapshotSortedByNameAndFindable) {
  obs::MetricsRegistry reg;
  reg.counter("z.last").inc(3);
  reg.gauge("a.first").set(-1);
  reg.histogram("m.middle").observe(sim::Duration{7});

  const obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.entries.size(), 3u);
  for (std::size_t i = 1; i < snap.entries.size(); ++i) {
    EXPECT_LT(snap.entries[i - 1].name, snap.entries[i].name);
  }
  const obs::MetricsSnapshot::Entry* e = snap.find("z.last");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind, obs::MetricsSnapshot::Kind::kCounter);
  EXPECT_EQ(e->value, 3);
  EXPECT_EQ(snap.find("no.such.metric"), nullptr);
}

TEST(ObsMetrics, JsonExporterShape) {
  obs::MetricsRegistry reg;
  reg.counter("a.count").inc(3);
  reg.gauge("b.gauge").set(-7);

  std::ostringstream os;
  obs::write_json(os, reg.snapshot());
  // v5: the meta header embeds the schema version and the build's git SHA
  // (the same CIM_GIT_SHA the bench reports carry).
#if defined(CIM_GIT_SHA)
  const std::string sha = CIM_GIT_SHA;
#else
  const std::string sha = "unknown";
#endif
  EXPECT_EQ(os.str(),
            "{\"schema\":\"cim.metrics.v1\",\"v\":5,"
            "\"meta\":{\"schema_version\":5,\"git_sha\":\"" + sha + "\"},"
            "\"metrics\":["
            "{\"name\":\"a.count\",\"kind\":\"counter\",\"value\":3},"
            "{\"name\":\"b.gauge\",\"kind\":\"gauge\",\"value\":-7}]}\n");
}

TEST(ObsMetrics, JsonExporterHistogramFields) {
  obs::MetricsRegistry reg;
  obs::DurationHistogram& h = reg.histogram("c.lat");
  h.observe(sim::Duration{10});
  h.observe(sim::Duration{20});

  std::ostringstream os;
  obs::write_json(os, reg.snapshot());
  const std::string json = os.str();
  // Histograms carry the documented aggregate fields, not "value".
  for (const char* key :
       {"\"count\":2", "\"sum\":30", "\"min\":10", "\"max\":20", "\"p50\":",
        "\"p90\":", "\"p99\":", "\"mean\":15", "\"kind\":\"histogram\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
  EXPECT_EQ(json.find("\"value\""), std::string::npos) << json;
}

TEST(ObsMetrics, CsvExporterShape) {
  obs::MetricsRegistry reg;
  reg.counter("a.count").inc(3);
  reg.histogram("c.lat").observe(sim::Duration{10});

  std::ostringstream os;
  obs::write_csv(os, reg.snapshot());
  std::istringstream lines(os.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "name,kind,value,count,sum,min,p50,p90,p99,max,mean");
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line.substr(0, 16), "a.count,counter,");
  ASSERT_TRUE(std::getline(lines, line));
  // Histogram rows leave the counter/gauge "value" cell empty.
  EXPECT_EQ(line.substr(0, 18), "c.lat,histogram,,1");
  EXPECT_FALSE(std::getline(lines, line));
}

TEST(ObsMetrics, CsvExporterGaugeAndValueHistogramRows) {
  obs::MetricsRegistry reg;
  reg.gauge("b.gauge").set(-7);
  reg.value_histogram("d.depth").observe(4);

  std::ostringstream os;
  obs::write_csv(os, reg.snapshot());
  std::istringstream lines(os.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));  // header
  ASSERT_TRUE(std::getline(lines, line));
  // Gauges carry a value and leave the histogram cells empty.
  EXPECT_EQ(line.substr(0, 16), "b.gauge,gauge,-7");
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line.substr(0, 8), "d.depth,");
  EXPECT_FALSE(std::getline(lines, line));
}

// ---- trace sink ------------------------------------------------------------

TEST(ObsTrace, DisabledSinkRecordsNothingAndAllocatesNothing) {
  obs::TraceSink sink;  // default: disabled
  EXPECT_FALSE(sink.enabled());
  EXPECT_FALSE(sink.buffer_allocated());

  int field_evals = 0;
  const auto expensive = [&field_evals] {
    ++field_evals;
    return std::int64_t{7};
  };
  CIM_TRACE(&sink, sim::Time{1}, TraceCategory::kNet, "send",
            {{"v", expensive()}});
  obs::TraceSink* null_sink = nullptr;
  CIM_TRACE(null_sink, sim::Time{1}, TraceCategory::kNet, "send",
            {{"v", expensive()}});

  // The macro must not construct fields, let alone record, when disabled.
  EXPECT_EQ(field_evals, 0);
  EXPECT_EQ(sink.recorded(), 0u);
  EXPECT_FALSE(sink.buffer_allocated());
  EXPECT_EQ(sink.category_count(TraceCategory::kNet), 0u);
}

TEST(ObsTrace, RingWraparoundKeepsNewestOldestFirst) {
  obs::TraceOptions opts;
  opts.enabled = true;
  opts.capacity = 4;
  obs::TraceSink sink(opts);
  EXPECT_TRUE(sink.buffer_allocated());

  for (std::int64_t i = 0; i < 10; ++i) {
    sink.record(sim::Time{i}, TraceCategory::kNet, "send", {{"i", i}});
  }
  EXPECT_EQ(sink.recorded(), 10u);
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.dropped(), 6u);
  EXPECT_EQ(sink.category_count(TraceCategory::kNet), 10u);

  std::vector<std::uint64_t> seqs;
  sink.for_each([&seqs](const obs::TraceEvent& ev) { seqs.push_back(ev.seq); });
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{6, 7, 8, 9}));
}

TEST(ObsTrace, CategoryMaskFiltersAtRecordTime) {
  obs::TraceOptions opts;
  opts.enabled = true;
  opts.capacity = 8;
  opts.category_mask = obs::category_bit(TraceCategory::kNet);
  obs::TraceSink sink(opts);

  EXPECT_TRUE(sink.enabled(TraceCategory::kNet));
  EXPECT_FALSE(sink.enabled(TraceCategory::kProto));
  sink.record(sim::Time{1}, TraceCategory::kNet, "send", {});
  sink.record(sim::Time{2}, TraceCategory::kProto, "update_issued", {});
  EXPECT_EQ(sink.recorded(), 1u);
  EXPECT_EQ(sink.category_count(TraceCategory::kNet), 1u);
  EXPECT_EQ(sink.category_count(TraceCategory::kProto), 0u);
}

TEST(ObsTrace, JsonlRendersEveryFieldType) {
  obs::TraceOptions opts;
  opts.enabled = true;
  opts.capacity = 8;
  obs::TraceSink sink(opts);

  sink.record(sim::Time{42}, TraceCategory::kIsc, "pair_in",
              {{"proc", ProcId{SystemId{1}, 4}},
               {"var", VarId{3}},
               {"lat", sim::Duration{-5}},
               {"rate", 0.5},
               {"type", "vc.update"}});

  std::ostringstream os;
  sink.write_jsonl(os);
  EXPECT_EQ(os.str(),
            "{\"v\":4,\"seq\":0,\"t\":42,\"cat\":\"isc\",\"ev\":\"pair_in\","
            "\"f\":{\"proc\":\"1.4\",\"var\":3,\"lat\":-5,\"rate\":0.5,"
            "\"type\":\"vc.update\"}}\n");
}

TEST(ObsTrace, ListenerSeesAcceptedEventsOnlyAndMayRecord) {
  obs::TraceOptions opts;
  opts.enabled = true;
  opts.capacity = 8;
  opts.category_mask = obs::category_bit(TraceCategory::kNet) |
                       obs::category_bit(TraceCategory::kChk);
  obs::TraceSink sink(opts);

  int seen = 0;
  sink.set_listener([&sink, &seen](const obs::TraceEvent& ev) {
    ++seen;
    // A listener may itself record (the online monitor emits `violation`);
    // guard on category exactly like the monitor to bound recursion.
    if (ev.cat != TraceCategory::kChk) {
      sink.record(ev.t, TraceCategory::kChk, "violation", {});
    }
  });
  ASSERT_TRUE(sink.has_listener());

  sink.record(sim::Time{1}, TraceCategory::kNet, "send", {});
  sink.record(sim::Time{2}, TraceCategory::kProto, "update_issued", {});  // masked
  // The net event and the listener's own chk event were both stored and
  // both delivered to the listener; the masked proto event was neither.
  EXPECT_EQ(seen, 2);
  EXPECT_EQ(sink.recorded(), 2u);
  EXPECT_EQ(sink.category_count(TraceCategory::kChk), 1u);

  sink.set_listener(nullptr);
  EXPECT_FALSE(sink.has_listener());
  sink.record(sim::Time{3}, TraceCategory::kNet, "send", {});
  EXPECT_EQ(seen, 2);
}

TEST(ObsTrace, ClearResetsCountersKeepsCapacity) {
  obs::TraceOptions opts;
  opts.enabled = true;
  opts.capacity = 4;
  obs::TraceSink sink(opts);
  sink.record(sim::Time{1}, TraceCategory::kMcs, "read_issue", {});
  ASSERT_EQ(sink.recorded(), 1u);

  sink.clear();
  EXPECT_EQ(sink.recorded(), 0u);
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.category_count(TraceCategory::kMcs), 0u);
  EXPECT_EQ(sink.capacity(), 4u);

  std::ostringstream os;
  sink.write_jsonl(os);
  EXPECT_TRUE(os.str().empty());
}

// ---- federation integration + schema contract ------------------------------

TEST(ObsFederation, TracingDisabledByDefault) {
  isc::Federation fed(test::two_systems(2, proto::anbkh_protocol(),
                                        proto::anbkh_protocol()));
  fed.system(0).app(0).write(VarId{0}, 1);
  fed.run();
  EXPECT_FALSE(fed.observability().trace().enabled());
  EXPECT_FALSE(fed.observability().trace().buffer_allocated());
  EXPECT_EQ(fed.observability().trace().recorded(), 0u);
  // Metrics, by contrast, are always on.
  const obs::MetricsSnapshot snap = fed.metrics_snapshot();
  const obs::MetricsSnapshot::Entry* sent = snap.find("net.messages_sent");
  ASSERT_NE(sent, nullptr);
  EXPECT_GT(sent->value, 0);
}

// Runs a small interconnected workload with tracing on and checks the schema
// contract: every metric name and every trace event name that the
// instrumentation actually emitted appears (backticked) in
// docs/OBSERVABILITY.md. Adding an undocumented metric or event fails here.
TEST(ObsFederation, EveryEmittedNameIsDocumented) {
  isc::FederationConfig cfg = test::two_systems(2, proto::anbkh_protocol(),
                                                proto::lazy_batch_protocol());
  cfg.obs.trace.enabled = true;
  isc::Federation fed(std::move(cfg));
  for (std::uint16_t s = 0; s < 2; ++s) {
    for (Value v = 1; v <= 5; ++v) {
      fed.system(s).app(0).write(VarId{static_cast<std::uint32_t>(v % 3)},
                                 10 * (s + 1) + v);
    }
    fed.system(s).app(1).read(VarId{0}, [](Value) {});
  }
  fed.run();

  std::ifstream doc_file(CIM_SOURCE_DIR "/docs/OBSERVABILITY.md");
  ASSERT_TRUE(doc_file.is_open()) << "docs/OBSERVABILITY.md missing";
  std::stringstream buf;
  buf << doc_file.rdbuf();
  const std::string doc = buf.str();

  // Per-instance metric families (net.channel.3.dropped) are documented once
  // with a placeholder (net.channel.<ch>.dropped): normalize every numeric
  // dotted segment before the doc lookup.
  const auto doc_name = [](const std::string& name) {
    std::string out;
    std::size_t pos = 0;
    while (pos < name.size()) {
      std::size_t dot = name.find('.', pos);
      if (dot == std::string::npos) dot = name.size();
      const std::string seg = name.substr(pos, dot - pos);
      const bool numeric =
          !seg.empty() && seg.find_first_not_of("0123456789") == std::string::npos;
      out += numeric ? "<ch>" : seg;
      if (dot < name.size()) out += '.';
      pos = dot + 1;
    }
    return out;
  };

  const obs::MetricsSnapshot snap = fed.metrics_snapshot();
  EXPECT_GE(snap.entries.size(), 20u);  // the full stack is instrumented
  for (const obs::MetricsSnapshot::Entry& e : snap.entries) {
    EXPECT_NE(doc.find("`" + doc_name(e.name) + "`"), std::string::npos)
        << "metric `" << e.name << "` is not documented in OBSERVABILITY.md";
  }

  const obs::TraceSink& trace = fed.observability().trace();
  EXPECT_GT(trace.recorded(), 0u);
  std::set<std::string> events;
  trace.for_each([&events](const obs::TraceEvent& ev) {
    events.insert(std::string("`") + ev.name + "`");
    events.insert(std::string("Category `") + obs::to_string(ev.cat) + "`");
  });
  EXPECT_GE(events.size(), 2u);
  for (const std::string& needle : events) {
    EXPECT_NE(doc.find(needle), std::string::npos)
        << needle << " is not documented in OBSERVABILITY.md";
  }

  // Spot-check that the key cross-layer metrics actually moved.
  for (const char* name : {"net.messages_sent", "mcs.writes",
                           "proto.updates_applied", "isc.pairs_sent",
                           "isc.pairs_received"}) {
    const obs::MetricsSnapshot::Entry* e = snap.find(name);
    ASSERT_NE(e, nullptr) << name;
    EXPECT_GT(e->value, 0) << name;
  }
  const obs::MetricsSnapshot::Entry* prop =
      snap.find("isc.propagation_latency");
  ASSERT_NE(prop, nullptr);
  EXPECT_GT(prop->summary.count, 0u);
}

}  // namespace
}  // namespace cim

#include "checker/search_checker.h"

#include <algorithm>
#include <map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "checker/causal_checker.h"
#include "checker/relation.h"

namespace cim::chk {

namespace {

// A scheduling problem: find a linear extension of `before` over `ops`
// (indices into a local array) such that every read is *legal* when placed:
// it returns the value of the most recently placed write to its variable, or
// the initial value if no write to it has been placed.
struct Problem {
  std::vector<Op> ops;       // local operations
  Relation before;           // precedence constraints (closed or not)
  std::uint64_t budget = 0;  // remaining node budget
};

struct SearchState {
  std::uint64_t scheduled = 0;                  // bitmask over <=64 ops
  std::map<VarId, std::size_t> last_write;      // var -> local op index
};

std::uint64_t state_key(const SearchState& s) {
  // Combine the mask with a hash of the variable state. Collisions merely
  // cause a (sound) re-exploration to be skipped only if the full key
  // matches, so we store full keys in a set of pairs folded into one hash —
  // to stay exact we fold conservatively: same mask AND same last-write map
  // produce the same key; different maps *may* collide, so we mix strongly.
  std::uint64_t h = s.scheduled * 0x9E3779B97F4A7C15ULL;
  for (const auto& [var, idx] : s.last_write) {
    h ^= (static_cast<std::uint64_t>(var.value) + 1) * 0xBF58476D1CE4E5B9ULL +
         idx * 0x94D049BB133111EBULL + (h << 7) + (h >> 3);
  }
  return h;
}

// Depth-first search for a legal linear extension. Returns true/false, or
// nullopt if the budget is exhausted.
std::optional<bool> solve(Problem& p) {
  const std::size_t n = p.ops.size();
  if (n > 64) return std::nullopt;
  if (n == 0) return true;

  // Precompute predecessor masks.
  std::vector<std::uint64_t> preds(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    p.before.for_successors(i, [&](std::size_t j) {
      preds[j] |= 1ULL << i;
    });
    if (p.before.test(i, i)) preds[i] |= 1ULL << i;  // self-loop: unsat
  }

  // Memoized states known to fail. Keyed by a strong hash of
  // (mask, last-write map); a hash collision could wrongly prune, which is
  // statistically negligible for test sizes but we accept it as this checker
  // is advisory (the polynomial checker is authoritative).
  std::unordered_set<std::uint64_t> failed;

  struct Frame {
    SearchState state;
    std::vector<std::size_t> candidates;
    std::size_t next = 0;
  };

  auto candidates_of = [&](const SearchState& s) {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t bit = 1ULL << i;
      if (s.scheduled & bit) continue;
      if ((preds[i] & ~s.scheduled) != 0) continue;  // unscheduled preds
      if (p.ops[i].kind == OpKind::kRead) {
        auto it = s.last_write.find(p.ops[i].var);
        if (it == s.last_write.end()) {
          if (p.ops[i].value != kInitValue) continue;  // init read only
        } else if (p.ops[it->second].value != p.ops[i].value) {
          continue;  // would read a stale/overwritten value
        }
      }
      out.push_back(i);
    }
    return out;
  };

  std::vector<Frame> stack;
  stack.push_back(Frame{SearchState{}, candidates_of(SearchState{}), 0});

  const std::uint64_t all = (n == 64) ? ~0ULL : ((1ULL << n) - 1);
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.state.scheduled == all) return true;
    if (f.next >= f.candidates.size()) {
      failed.insert(state_key(f.state));
      stack.pop_back();
      continue;
    }
    if (p.budget-- == 0) return std::nullopt;
    const std::size_t pick = f.candidates[f.next++];
    SearchState next = f.state;
    next.scheduled |= 1ULL << pick;
    if (p.ops[pick].kind == OpKind::kWrite) {
      next.last_write[p.ops[pick].var] = pick;
    }
    if (failed.count(state_key(next))) continue;
    auto cands = candidates_of(next);
    stack.push_back(Frame{std::move(next), std::move(cands), 0});
  }
  return false;
}

std::vector<Op> materialize(const History& h) {
  std::vector<Op> ops;
  ops.reserve(h.size());
  for (std::size_t i = 0; i < h.size(); ++i) ops.push_back(h.op(i));
  return ops;
}

// Decide causality of a history whose reads-from is a *function* (every
// value written at most once per variable) — the original distinct-value
// core: materialize co, then search a causal view per process.
std::optional<bool> is_causal_distinct(const History& history,
                                       std::uint64_t node_budget) {
  CausalChecker cc;
  std::optional<Relation> co = cc.causal_order(history);
  if (!co) return false;  // cyclic co or thin-air read

  const std::vector<Op> ops = materialize(history);

  for (ProcId proc : history.processes()) {
    // α_i: all writes plus this process's reads, with co restricted.
    std::vector<std::size_t> global_idx;
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].kind == OpKind::kWrite || ops[i].proc == proc) {
        global_idx.push_back(i);
      }
    }
    if (global_idx.size() > 64) return std::nullopt;

    Problem p;
    p.budget = node_budget;
    p.before = Relation(global_idx.size());
    for (std::size_t a = 0; a < global_idx.size(); ++a) {
      p.ops.push_back(ops[global_idx[a]]);
      for (std::size_t b = 0; b < global_idx.size(); ++b) {
        if (a != b && co->test(global_idx[a], global_idx[b])) {
          p.before.set(a, b);
        }
      }
    }
    std::optional<bool> result = solve(p);
    if (!result) return std::nullopt;  // budget exceeded
    if (!*result) return false;        // no causal view for this process
  }
  return true;
}

}  // namespace

std::optional<bool> SearchChecker::is_causal(const History& history,
                                             std::uint64_t node_budget) const {
  // Repeated values make reads-from a relation, not a function. The
  // definition quantifies existentially over admissible assignments, so we
  // enumerate them: bind every read of value v to one write of (var, v)
  // (reads of the initial value may also bind to ⊥), *rename* the written
  // values to the writer's index so each assignment becomes a distinct-value
  // history with the same legality structure, and accept iff some renamed
  // history is causal. This is the semantics the sparse CausalChecker's
  // residual-constraint phase implements; here it is decided by brute force.
  std::vector<Op> ops = materialize(history);

  std::map<std::pair<VarId, Value>, std::vector<std::size_t>> writers;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind == OpKind::kWrite) {
      writers[{ops[i].var, ops[i].value}].push_back(i);
    }
  }

  constexpr std::size_t kInitChoice = SIZE_MAX;
  struct Choice {
    std::size_t read;
    std::vector<std::size_t> cands;  // writer indices; kInitChoice for ⊥
  };
  std::vector<Choice> choices;
  std::vector<std::size_t> fixed(ops.size(), kInitChoice);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind != OpKind::kRead) continue;
    auto it = writers.find({ops[i].var, ops[i].value});
    const bool is_init = ops[i].value == kInitValue;
    if (it == writers.end()) {
      if (!is_init) return false;  // thin-air read: no legal view exists
      continue;                    // unambiguous ⊥
    }
    if (it->second.size() == 1 && !is_init) {
      fixed[i] = it->second[0];
      continue;
    }
    Choice c{i, it->second};
    if (is_init) c.cands.push_back(kInitChoice);
    choices.push_back(std::move(c));
  }

  // Cap the assignment space; histories this checker sees are small, so a
  // blowup means the caller should not trust a brute-force answer anyway.
  std::size_t total = 1;
  for (const Choice& c : choices) {
    if (total > 4096 / c.cands.size()) return std::nullopt;
    total *= c.cands.size();
  }

  std::vector<std::size_t> pos(choices.size(), 0);
  while (true) {
    // Rename under the current assignment: write i gets value i+1, each
    // read gets its writer's renamed value (kInitValue for ⊥).
    std::vector<Op> renamed = ops;
    for (std::size_t i = 0; i < renamed.size(); ++i) {
      if (renamed[i].kind == OpKind::kWrite) {
        renamed[i].value = static_cast<Value>(i + 1);
      } else if (fixed[i] != kInitChoice) {
        renamed[i].value = static_cast<Value>(fixed[i] + 1);
      }
      // Unambiguous ⊥ reads keep kInitValue; ambiguous reads are set below.
    }
    for (std::size_t k = 0; k < choices.size(); ++k) {
      const std::size_t w = choices[k].cands[pos[k]];
      renamed[choices[k].read].value =
          w == kInitChoice ? kInitValue : static_cast<Value>(w + 1);
    }
    std::optional<bool> r = is_causal_distinct(History(renamed), node_budget);
    if (!r) return std::nullopt;
    if (*r) return true;
    // Next assignment.
    std::size_t k = 0;
    for (; k < pos.size(); ++k) {
      if (++pos[k] < choices[k].cands.size()) break;
      pos[k] = 0;
    }
    if (k == pos.size()) return false;  // all assignments exhausted
  }
}

std::optional<bool> SearchChecker::is_sequential(
    const History& history, std::uint64_t node_budget) const {
  // Legality in solve() is value-based, so repeated values need no special
  // handling here: a read may legally follow any write of its value.
  const std::vector<Op> ops = materialize(history);
  if (ops.size() > 64) return std::nullopt;

  Problem p;
  p.budget = node_budget;
  p.ops = ops;
  p.before = Relation(ops.size());
  for (std::size_t pi = 0; pi < history.num_processes(); ++pi) {
    const History::Span s = history.process_span(pi);
    for (std::size_t i = s.begin + 1; i < s.end; ++i) {
      p.before.set(i - 1, i);
    }
  }
  return solve(p);
}

}  // namespace cim::chk

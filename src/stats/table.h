// Minimal aligned-table printer for the bench binaries: the benches print
// the same rows the paper's Section 6 reports, plus a measured column.
#pragma once

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace cim::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  template <typename... Cells>
  void add_row(const Cells&... cells) {
    std::vector<std::string> row;
    (row.push_back(cell_to_string(cells)), ...);
    rows_.push_back(std::move(row));
  }

  void print(std::ostream& os = std::cout) const;

 private:
  template <typename T>
  static std::string cell_to_string(const T& value) {
    std::ostringstream os;
    os << value;
    return os.str();
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cim::stats

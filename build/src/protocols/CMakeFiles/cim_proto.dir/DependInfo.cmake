
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocols/anbkh.cpp" "src/protocols/CMakeFiles/cim_proto.dir/anbkh.cpp.o" "gcc" "src/protocols/CMakeFiles/cim_proto.dir/anbkh.cpp.o.d"
  "/root/repo/src/protocols/aw_seq.cpp" "src/protocols/CMakeFiles/cim_proto.dir/aw_seq.cpp.o" "gcc" "src/protocols/CMakeFiles/cim_proto.dir/aw_seq.cpp.o.d"
  "/root/repo/src/protocols/cbcast_dsm.cpp" "src/protocols/CMakeFiles/cim_proto.dir/cbcast_dsm.cpp.o" "gcc" "src/protocols/CMakeFiles/cim_proto.dir/cbcast_dsm.cpp.o.d"
  "/root/repo/src/protocols/lazy_batch.cpp" "src/protocols/CMakeFiles/cim_proto.dir/lazy_batch.cpp.o" "gcc" "src/protocols/CMakeFiles/cim_proto.dir/lazy_batch.cpp.o.d"
  "/root/repo/src/protocols/partial_rep.cpp" "src/protocols/CMakeFiles/cim_proto.dir/partial_rep.cpp.o" "gcc" "src/protocols/CMakeFiles/cim_proto.dir/partial_rep.cpp.o.d"
  "/root/repo/src/protocols/tob_causal.cpp" "src/protocols/CMakeFiles/cim_proto.dir/tob_causal.cpp.o" "gcc" "src/protocols/CMakeFiles/cim_proto.dir/tob_causal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mcs/CMakeFiles/cim_mcs.dir/DependInfo.cmake"
  "/root/repo/build/src/msgpass/CMakeFiles/cim_msgpass.dir/DependInfo.cmake"
  "/root/repo/build/src/checker/CMakeFiles/cim_checker.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

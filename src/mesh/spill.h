// SpillJournal: the per-node crash journal behind `cim_bridge --resume`
// (docs/BRIDGE.md "Failure behavior", docs/FAULTS.md).
//
// A mesh node appends one small record per session event with a single
// ::write() each — the bytes land in the page cache immediately, which is
// exactly the durability kill -9 requires (the *process* dies, the kernel
// doesn't; no fsync needed for that fault model — a machine-level crash is
// out of scope, as is the paper's).
//
// Record stream (little-endian; varints as in docs/WIRE.md):
//
//   header  "CIMJ" u8 version u64 node_id u64 topo_hash u64 seed
//           u32 generation u32 n_links
//   'S' u32 link  u64 data_sent  u32 len  len bytes   sent frame (encoded)
//   'A' u32 link  u64 acked                           cumulative ack from peer
//   'D' u32 link  u64 recv_expected u64 data_delivered  frame delivered
//   'K' u32 link  u8 code  u64 a                      ctrl payload delivered
//   'L' u32 link  u8 code                             ctrl payload sent+acked
//
// 'S' records let a resumed node replay unacked frames ('A' trims them);
// 'D' records restore the receive cursor so replayed duplicates are dropped
// (zero-dup) and the generator knows how many pairs already applied; 'K'/'L'
// persist the done/bye convergecast flags, which live in atomics and would
// otherwise vanish with the process *without* being replayed (their frames
// were acked). Loading tolerates a torn final record — the tail of a
// mid-write crash is simply ignored, and the un-recorded event is either
// redelivered (peer's journal) or re-sent (ours).
//
// One file per node; resume rewrites it as a fresh generation+1 journal with
// the loaded state compacted into synthetic records, so journals do not grow
// across restarts.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace cim::mesh {

struct SpillLinkState {
  /// Unacked sent frames, in seq order (encoded bytes, ready to replay).
  std::vector<std::vector<std::uint8_t>> frames;
  std::uint64_t acked = 0;          // peer's cumulative ack (frames < acked)
  std::uint64_t send_next = 0;      // next seq to stamp
  std::uint64_t data_sent = 0;      // non-ctrl payload frames sent (done.a)
  std::uint64_t recv_expected = 0;  // next seq we will accept
  std::uint64_t data_delivered = 0; // non-ctrl payload frames delivered
  bool peer_done = false;           // 'K' kDone seen
  std::uint64_t peer_pairs = 0;     // its announced count (ctrl.a)
  bool peer_bye = false;            // 'K' kBye seen
  bool done_sent = false;           // 'L' kDone seen — resume must refuse
  bool bye_sent = false;            // 'L' kBye seen
};

struct SpillState {
  std::uint64_t node_id = 0;
  std::uint64_t topo_hash = 0;
  std::uint64_t seed = 0;
  std::uint32_t generation = 0;
  std::vector<SpillLinkState> links;
};

class SpillJournal {
 public:
  SpillJournal() = default;
  ~SpillJournal();
  SpillJournal(const SpillJournal&) = delete;
  SpillJournal& operator=(const SpillJournal&) = delete;

  /// Create/truncate the journal and write the header (+ compacted `prior`
  /// state as synthetic records, for a resume). False on I/O error.
  bool create(const std::string& path, const SpillState& state);

  /// Parse an existing journal. False (with error()) on a missing file or a
  /// corrupt header; a torn tail record is tolerated and ignored.
  static bool load(const std::string& path, SpillState& out,
                   std::string& error);

  // Appenders — one ::write each, thread-safe.
  void record_sent(std::size_t link, std::uint64_t data_sent,
                   const std::uint8_t* frame, std::size_t len);
  void record_acked(std::size_t link, std::uint64_t acked);
  void record_delivered(std::size_t link, std::uint64_t recv_expected,
                        std::uint64_t data_delivered);
  void record_ctrl_delivered(std::size_t link, std::uint8_t code,
                             std::uint64_t a);
  void record_ctrl_sent(std::size_t link, std::uint8_t code);

  void close();
  bool ok() const { return fd_ >= 0; }

 private:
  void append(const std::vector<std::uint8_t>& rec);

  std::mutex mutex_;
  int fd_ = -1;
};

}  // namespace cim::mesh

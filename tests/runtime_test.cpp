// Integration tests: the threaded runtime — real application threads
// issuing blocking calls against the interconnected systems.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "checker/causal_checker.h"
#include "helpers.h"
#include "runtime/runtime.h"

namespace cim::rt {
namespace {

using test::X;
using test::Y;

TEST(Runtime, BlockingReadAndWrite) {
  isc::Federation fed(
      test::two_systems(2, proto::anbkh_protocol(), proto::anbkh_protocol()));
  Runtime runtime(fed);
  runtime.start();

  BlockingClient writer(runtime, fed.system(0).app(0));
  BlockingClient reader(runtime, fed.system(1).app(0));

  writer.write(X, 7);
  // Poll until the write has crossed the interconnection.
  Value got = kInitValue;
  for (int i = 0; i < 1000 && got != 7; ++i) {
    got = reader.read(X);
    std::this_thread::yield();
  }
  EXPECT_EQ(got, 7);
  runtime.stop();
  EXPECT_FALSE(runtime.running());
}

TEST(Runtime, StopIsIdempotent) {
  isc::Federation fed(test::single_system(2, proto::anbkh_protocol()));
  Runtime runtime(fed);
  runtime.start();
  runtime.stop();
  runtime.stop();  // no-op
}

TEST(Runtime, PostAfterStopThrows) {
  isc::Federation fed(test::single_system(2, proto::anbkh_protocol()));
  Runtime runtime(fed);
  runtime.start();
  runtime.stop();
  EXPECT_THROW(runtime.post([] {}), InvariantViolation);
}

TEST(Runtime, ConcurrentClientsProduceCausalHistory) {
  isc::Federation fed(
      test::two_systems(3, proto::anbkh_protocol(), proto::anbkh_protocol()));
  Runtime runtime(fed);
  runtime.start();

  // One thread per application process, mixing reads and writes. Values are
  // partitioned per thread so the distinct-values assumption holds.
  std::vector<std::thread> threads;
  std::atomic<int> thread_no{0};
  for (std::size_t s = 0; s < 2; ++s) {
    for (std::uint16_t p = 0; p < 3; ++p) {
      threads.emplace_back([&, s, p] {
        const int tn = thread_no.fetch_add(1);
        BlockingClient client(runtime, fed.system(s).app(p));
        for (int i = 0; i < 25; ++i) {
          const VarId var{static_cast<std::uint32_t>((tn + i) % 4)};
          if (i % 2 == 0) {
            client.write(var, 1000 * (tn + 1) + i);
          } else {
            (void)client.read(var);
          }
        }
      });
    }
  }
  for (auto& t : threads) t.join();
  runtime.stop();

  auto history = fed.federation_history();
  EXPECT_EQ(history.size(), 6u * 25u);
  auto res = chk::CausalChecker{}.check(history);
  EXPECT_TRUE(res.ok()) << chk::to_string(res.pattern) << ": " << res.detail;
}

TEST(Runtime, WorkInjectedWhileIdleIsProcessed) {
  isc::Federation fed(test::single_system(2, proto::anbkh_protocol()));
  Runtime runtime(fed);
  runtime.start();
  // Let the engine go idle, then inject.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  BlockingClient client(runtime, fed.system(0).app(0));
  client.write(X, 3);
  EXPECT_EQ(client.read(X), 3);
  runtime.stop();
}

}  // namespace
}  // namespace cim::rt

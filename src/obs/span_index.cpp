#include "obs/span_index.h"

#include <algorithm>
#include <ostream>
#include <string_view>

#include "obs/json.h"

namespace cim::obs {

namespace {

const TraceField* find_field(const TraceEvent& ev, std::string_view key) {
  for (std::uint8_t k = 0; k < ev.num_fields; ++k) {
    const TraceField& f = ev.fields[k];
    if (f.key != nullptr && key == f.key) return &f;
  }
  return nullptr;
}

std::int64_t live_int(const TraceEvent& ev, std::string_view key,
                      std::int64_t def) {
  const TraceField* f = find_field(ev, key);
  if (f == nullptr) return def;
  switch (f->kind) {
    case TraceField::Kind::kInt: return f->i;
    case TraceField::Kind::kUint: return static_cast<std::int64_t>(f->u);
    default: return def;
  }
}

bool live_proc(const TraceEvent& ev, std::string_view key, ProcId& out) {
  const TraceField* f = find_field(ev, key);
  if (f == nullptr || f->kind != TraceField::Kind::kProc) return false;
  out = ProcId{SystemId{static_cast<std::uint16_t>(f->proc >> 16)},
               static_cast<std::uint16_t>(f->proc & 0xFFFF)};
  return true;
}

}  // namespace

std::int64_t WriteSpan::completion_t() const {
  std::int64_t t = std::max(issue_t, origin_done_t);
  for (const Apply& a : applies) t = std::max(t, a.t);
  for (const PairOut& p : pair_outs) t = std::max(t, p.t);
  for (const PairIn& p : pair_ins) t = std::max(t, p.t);
  return t;
}

WriteSpan& SpanIndex::span_for(WriteId wid) {
  auto [it, inserted] = by_wid_.try_emplace(wid, spans_.size());
  if (inserted) {
    spans_.emplace_back();
    spans_.back().wid = wid;
    order_.push_back(wid);
  }
  return spans_[it->second];
}

const WriteSpan* SpanIndex::span(WriteId wid) const {
  auto it = by_wid_.find(wid);
  return it == by_wid_.end() ? nullptr : &spans_[it->second];
}

void SpanIndex::on_write_issue(std::int64_t t, ProcId proc, WriteId wid,
                               VarId var, Value value) {
  WriteSpan& s = span_for(wid);
  s.var = var;
  s.value = value;
  // An IS-process re-issues foreign writes locally (Propagate_in); only the
  // issue at the minting process anchors the span's origin timeline.
  if (proc == wid.origin()) {
    s.origin_seen = true;
    s.issue_t = t;
  }
}

void SpanIndex::on_write_done(std::int64_t t, ProcId proc, WriteId wid) {
  WriteSpan& s = span_for(wid);
  if (proc == wid.origin()) s.origin_done_t = t;
}

void SpanIndex::on_update_applied(std::int64_t t, ProcId proc, WriteId wid,
                                  std::int64_t wait_ns) {
  span_for(wid).applies.push_back({proc, t, wait_ns});
}

void SpanIndex::on_pair_out(std::int64_t t, ProcId proc, WriteId wid,
                            std::uint64_t link) {
  span_for(wid).pair_outs.push_back({proc, t, link});
}

void SpanIndex::on_pair_in(std::int64_t t, ProcId proc, WriteId wid,
                           std::int64_t hop_ns, std::int64_t prop_ns) {
  span_for(wid).pair_ins.push_back({proc, t, hop_ns, prop_ns});
}

void SpanIndex::observe(const TraceEvent& ev) {
  ++events_seen_;
  const WriteId wid{static_cast<std::uint64_t>(live_int(ev, "wid", 0))};
  if (!wid.valid()) return;
  ProcId proc{};
  if (!live_proc(ev, "proc", proc)) return;
  const std::int64_t t = ev.t.ns;
  const std::string_view name = ev.name;
  switch (ev.cat) {
    case TraceCategory::kMcs:
      if (name == "write_issue") {
        on_write_issue(t, proc, wid, VarId{static_cast<std::uint32_t>(
                                         live_int(ev, "var", 0))},
                       live_int(ev, "val", 0));
      } else if (name == "write_done") {
        on_write_done(t, proc, wid);
      }
      break;
    case TraceCategory::kProto:
      if (name == "update_applied") {
        on_update_applied(t, proc, wid, live_int(ev, "wait_ns", -1));
      }
      break;
    case TraceCategory::kIsc:
      if (name == "pair_out") {
        on_pair_out(t, proc, wid,
                    static_cast<std::uint64_t>(live_int(ev, "link", 0)));
      } else if (name == "pair_in") {
        on_pair_in(t, proc, wid, live_int(ev, "hop_ns", 0),
                   live_int(ev, "prop_ns", 0));
      }
      break;
    default: break;
  }
}

void SpanIndex::observe(const ParsedTraceEvent& ev) {
  ++events_seen_;
  const WriteId wid = ev.wid();
  if (!wid.valid()) return;
  ProcId proc{};
  if (!ev.field_proc("proc", proc)) return;
  if (ev.cat == "mcs") {
    if (ev.name == "write_issue") {
      on_write_issue(ev.t, proc, wid,
                     VarId{static_cast<std::uint32_t>(ev.field_int("var"))},
                     ev.field_int("val"));
    } else if (ev.name == "write_done") {
      on_write_done(ev.t, proc, wid);
    }
  } else if (ev.cat == "proto") {
    if (ev.name == "update_applied") {
      on_update_applied(ev.t, proc, wid, ev.field_int("wait_ns", -1));
    }
  } else if (ev.cat == "isc") {
    if (ev.name == "pair_out") {
      on_pair_out(ev.t, proc, wid, ev.field_uint("link"));
    } else if (ev.name == "pair_in") {
      on_pair_in(ev.t, proc, wid, ev.field_int("hop_ns"),
                 ev.field_int("prop_ns"));
    }
  }
}

void SpanIndex::index(const TraceSink& sink) {
  sink.for_each([this](const TraceEvent& ev) { observe(ev); });
}

void SpanIndex::index(const std::vector<ParsedTraceEvent>& events) {
  for (const ParsedTraceEvent& ev : events) observe(ev);
}

SpanIndex::StageBreakdown SpanIndex::stages() const {
  StageBreakdown out;
  for (const WriteSpan& s : spans_) {
    const SystemId origin_sys = s.wid.origin().system;
    if (s.origin_seen && s.origin_done_t >= 0) {
      out.origin_apply.push_back(sim::Duration{s.origin_done_t - s.issue_t});
    }
    for (const WriteSpan::Apply& a : s.applies) {
      if (a.wait_ns >= 0) out.causal_wait.push_back(sim::Duration{a.wait_ns});
      if (!s.origin_seen || a.proc == s.wid.origin()) continue;
      const sim::Duration lat{a.t - s.issue_t};
      if (a.proc.system == origin_sys) {
        out.fanout_intra.push_back(lat);
      } else {
        out.remote_apply.push_back(lat);
      }
    }
    for (const WriteSpan::PairIn& p : s.pair_ins) {
      out.is_hop.push_back(sim::Duration{p.hop_ns});
      out.propagation.push_back(sim::Duration{p.prop_ns});
    }
  }
  return out;
}

void SpanIndex::write_spans_jsonl(std::ostream& os) const {
  for (WriteId wid : order_) {
    const WriteSpan& s = spans_[by_wid_.at(wid)];
    JsonWriter w(os);
    w.begin_object();
    w.kv("wid", s.wid.value);
    {
      const ProcId o = s.wid.origin();
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%u.%u", unsigned(o.system.value),
                    unsigned(o.index));
      w.kv("origin", std::string_view(buf));
    }
    w.kv("seq", std::uint64_t{s.wid.seq()});
    w.kv("var", std::uint64_t{s.var.value});
    w.kv("val", std::int64_t{s.value});
    if (s.origin_seen) w.kv("issue_t", s.issue_t);
    if (s.origin_done_t >= 0) w.kv("done_t", s.origin_done_t);
    w.kv("completion_t", s.completion_t());
    w.key("applies");
    w.begin_array();
    for (const WriteSpan::Apply& a : s.applies) {
      w.begin_object();
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%u.%u", unsigned(a.proc.system.value),
                    unsigned(a.proc.index));
      w.kv("proc", std::string_view(buf));
      w.kv("t", a.t);
      if (a.wait_ns >= 0) w.kv("wait_ns", a.wait_ns);
      w.end_object();
    }
    w.end_array();
    w.key("pair_outs");
    w.begin_array();
    for (const WriteSpan::PairOut& p : s.pair_outs) {
      w.begin_object();
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%u.%u", unsigned(p.proc.system.value),
                    unsigned(p.proc.index));
      w.kv("proc", std::string_view(buf));
      w.kv("t", p.t);
      w.kv("link", p.link);
      w.end_object();
    }
    w.end_array();
    w.key("pair_ins");
    w.begin_array();
    for (const WriteSpan::PairIn& p : s.pair_ins) {
      w.begin_object();
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%u.%u", unsigned(p.proc.system.value),
                    unsigned(p.proc.index));
      w.kv("proc", std::string_view(buf));
      w.kv("t", p.t);
      w.kv("hop_ns", p.hop_ns);
      w.kv("prop_ns", p.prop_ns);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    os << '\n';
  }
}

}  // namespace cim::obs

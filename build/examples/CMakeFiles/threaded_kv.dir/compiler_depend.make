# Empty compiler generated dependencies file for threaded_kv.
# This may be replaced when dependencies are built.

#include "obs/trace_read.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <istream>

namespace cim::obs {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

// Recursive-descent parser over a bounded view. Positions advance through
// `text_`; errors carry the offset for debuggability.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool parse(JsonValue& out, std::string* error) {
    skip_ws();
    if (!parse_value(out)) {
      if (error != nullptr) {
        *error = err_ + " at offset " + std::to_string(pos_);
      }
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error != nullptr) {
        *error = "trailing characters at offset " + std::to_string(pos_);
      }
      return false;
    }
    return true;
  }

 private:
  bool fail(const char* why) {
    if (err_.empty()) err_ = why;
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_value(JsonValue& out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': {
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.s);
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          out.kind = JsonValue::Kind::kBool;
          out.b = true;
          return true;
        }
        return fail("bad literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          out.kind = JsonValue::Kind::kBool;
          out.b = false;
          return true;
        }
        return fail("bad literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          out.kind = JsonValue::Kind::kNull;
          return true;
        }
        return fail("bad literal");
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !parse_string(key)) {
        return fail("expected object key");
      }
      skip_ws();
      if (!eat(':')) return fail("expected ':'");
      skip_ws();
      JsonValue member;
      if (!parse_value(member)) return false;
      out.members.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (eat('}')) return true;
      if (!eat(',')) return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      skip_ws();
      JsonValue item;
      if (!parse_value(item)) return false;
      out.items.push_back(std::move(item));
      skip_ws();
      if (eat(']')) return true;
      if (!eat(',')) return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= unsigned(h - '0');
            else if (h >= 'a' && h <= 'f') code |= unsigned(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= unsigned(h - 'A' + 10);
            else return fail("bad \\u escape");
          }
          // The emitter only escapes control characters; decode the ASCII
          // range and pass anything else through as UTF-8.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E') {
        integral = false;
        ++pos_;
      } else if ((c == '+' || c == '-') && !integral) {
        ++pos_;  // exponent sign
      } else {
        break;
      }
    }
    if (pos_ == start) return fail("expected value");
    const std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    if (integral) {
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        out.kind = JsonValue::Kind::kInt;
        out.i = v;
        return true;
      }
      // Overflow (e.g. a full-range u64 wid): fall through to double, and
      // also try unsigned so 64-bit wids keep exact integer precision.
      errno = 0;
      const unsigned long long u = std::strtoull(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        out.kind = JsonValue::Kind::kInt;
        out.i = static_cast<std::int64_t>(u);  // two's-complement round-trip
        return true;
      }
    }
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("bad number");
    out.kind = JsonValue::Kind::kDouble;
    out.d = d;
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string err_;
};

}  // namespace

bool parse_json(std::string_view text, JsonValue& out, std::string* error) {
  out = JsonValue{};
  return Parser(text).parse(out, error);
}

std::int64_t ParsedTraceEvent::field_int(std::string_view key,
                                         std::int64_t def) const {
  const JsonValue* v = fields.find(key);
  return v != nullptr && v->is_number() ? v->as_int() : def;
}

std::string_view ParsedTraceEvent::field_str(std::string_view key) const {
  const JsonValue* v = fields.find(key);
  return v != nullptr && v->kind == JsonValue::Kind::kString
             ? std::string_view(v->s)
             : std::string_view{};
}

bool ParsedTraceEvent::field_proc(std::string_view key, ProcId& out) const {
  const std::string_view s = field_str(key);
  const std::size_t dot = s.find('.');
  if (dot == std::string_view::npos || dot == 0 || dot + 1 >= s.size()) {
    return false;
  }
  unsigned sys = 0, idx = 0;
  for (char c : s.substr(0, dot)) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
    sys = sys * 10 + unsigned(c - '0');
  }
  for (char c : s.substr(dot + 1)) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
    idx = idx * 10 + unsigned(c - '0');
  }
  out = ProcId{SystemId{static_cast<std::uint16_t>(sys)},
               static_cast<std::uint16_t>(idx)};
  return true;
}

bool parse_trace_line(std::string_view line, ParsedTraceEvent& out,
                      std::string* error) {
  JsonValue root;
  if (!parse_json(line, root, error)) return false;
  if (root.kind != JsonValue::Kind::kObject) {
    if (error != nullptr) *error = "trace record is not an object";
    return false;
  }
  const JsonValue* cat = root.find("cat");
  const JsonValue* name = root.find("ev");
  if (cat == nullptr || cat->kind != JsonValue::Kind::kString ||
      name == nullptr || name->kind != JsonValue::Kind::kString) {
    if (error != nullptr) *error = "trace record misses cat/ev";
    return false;
  }
  out = ParsedTraceEvent{};
  if (const JsonValue* v = root.find("v"); v != nullptr && v->is_number()) {
    out.v = static_cast<int>(v->as_int());
  }
  if (const JsonValue* v = root.find("seq"); v != nullptr && v->is_number()) {
    out.seq = static_cast<std::uint64_t>(v->as_int());
  }
  if (const JsonValue* v = root.find("t"); v != nullptr && v->is_number()) {
    out.t = v->as_int();
  }
  out.cat = cat->s;
  out.name = name->s;
  if (const JsonValue* f = root.find("f");
      f != nullptr && f->kind == JsonValue::Kind::kObject) {
    out.fields = *f;
  }
  return true;
}

std::vector<ParsedTraceEvent> read_trace_jsonl(
    std::istream& in, std::vector<std::string>* errors) {
  std::vector<ParsedTraceEvent> events;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    ParsedTraceEvent ev;
    std::string err;
    if (parse_trace_line(line, ev, &err)) {
      events.push_back(std::move(ev));
    } else if (errors != nullptr) {
      errors->push_back("line " + std::to_string(lineno) + ": " + err);
    }
  }
  return events;
}

}  // namespace cim::obs

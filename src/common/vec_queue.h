// A vector-backed FIFO queue for hot-path work queues.
//
// std::deque pays a ~512-byte chunk allocation/deallocation every few dozen
// push/pop cycles even when the queue stays tiny, which breaks the
// steady-state allocation-free invariant (docs/ARCHITECTURE.md). VecQueue
// keeps elements in one std::vector with a head index: pushes append, pops
// advance the head, and storage is reclaimed by resetting when the queue
// drains (the common case — these queues empty between operations) or by an
// order-preserving compaction once the dead prefix dominates. Capacity is
// retained across drain cycles, so a warmed queue never allocates again.
//
// FIFO order is identical to std::deque's, so swapping one for the other
// cannot change any execution's event order.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/check.h"

namespace cim {

template <typename T>
class VecQueue {
 public:
  bool empty() const { return head_ == buf_.size(); }
  std::size_t size() const { return buf_.size() - head_; }

  void push_back(T value) { buf_.push_back(std::move(value)); }

  T& front() {
    CIM_DCHECK(!empty());
    return buf_[head_];
  }

  T& back() {
    CIM_DCHECK(!empty());
    return buf_.back();
  }

  void pop_front() {
    CIM_DCHECK(!empty());
    ++head_;
    if (head_ == buf_.size()) {
      // Drained: reuse the whole capacity from the start.
      buf_.clear();
      head_ = 0;
    } else if (head_ >= kCompactAt && head_ * 2 >= buf_.size()) {
      // The dead prefix dominates a queue that never fully drains; compact
      // in place (order-preserving) so memory stays proportional to size().
      buf_.erase(buf_.begin(),
                 buf_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
  }

  void clear() {
    buf_.clear();
    head_ = 0;
  }

  void reserve(std::size_t n) { buf_.reserve(n); }

  // Iteration covers the live elements, front to back.
  T* begin() { return buf_.data() + head_; }
  T* end() { return buf_.data() + buf_.size(); }
  const T* begin() const { return buf_.data() + head_; }
  const T* end() const { return buf_.data() + buf_.size(); }

 private:
  static constexpr std::size_t kCompactAt = 64;

  std::vector<T> buf_;
  std::size_t head_ = 0;
};

}  // namespace cim

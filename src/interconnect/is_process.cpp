#include "interconnect/is_process.h"

#include <memory>
#include <utility>

#include "common/check.h"

namespace cim::isc {

IsProcess::IsProcess(mcs::AppProcess& app, net::Fabric& fabric,
                     obs::Observability* obs)
    : app_(app), fabric_(fabric) {
  CIM_CHECK_MSG(app.is_isp(),
                "IsProcess must be attached to an IS-process slot");
  if (obs != nullptr) {
    trace_ = &obs->trace();
    obs::MetricsRegistry& m = obs->metrics();
    m_pairs_sent_ = &m.counter("isc.pairs_sent");
    m_pairs_received_ = &m.counter("isc.pairs_received");
    h_hop_latency_ = &m.histogram("isc.pair_hop_latency");
    h_propagation_ = &m.histogram("isc.propagation_latency");
    h_link_backlog_ = &m.value_histogram("isc.link_backlog");
  }
}

std::size_t IsProcess::add_link(net::LinkTransport* transport) {
  CIM_CHECK(transport != nullptr);
  out_links_.push_back(transport);
  pairs_sent_on_.push_back(0);
  pairs_received_on_.push_back(0);
  return out_links_.size() - 1;
}

void IsProcess::register_in_channel(net::ChannelId in, std::size_t link) {
  CIM_CHECK(link < out_links_.size());
  in_links_.emplace_back(in.value, link);
}

void IsProcess::activate(IsProtocolChoice choice) {
  CIM_CHECK_MSG(!activated_, "IS-process activated twice");
  activated_ = true;
  mcs::McsProcess& mcs = app_.mcs();
  switch (choice) {
    case IsProtocolChoice::kAuto:
      // "Each IS-process will choose which one to use depending on which
      // class of causal MCS-protocol its system is running."
      pre_reads_enabled_ = !mcs.satisfies_causal_updating();
      break;
    case IsProtocolChoice::kForceProtocol1:
      pre_reads_enabled_ = false;
      break;
    case IsProtocolChoice::kForceProtocol2:
      pre_reads_enabled_ = true;
      break;
  }
  mcs.attach_upcall_handler(this);
  // "In this first IS-protocol isp^k disables the MCS-process pre_update
  // upcalls, since it does not need them."
  mcs.set_pre_update_enabled(pre_reads_enabled_);
}

void IsProcess::crash() {
  CIM_CHECK_MSG(!crashed_, "IS-process crashed twice without restart");
  crashed_ = true;
  ++crash_count_;
  // Sever the link endpoints: an ARQ-backed transport drops frames arriving
  // while down and the peer's retransmission recovers them, never losing
  // them to the application. Transports without recovery machinery (raw
  // fabric channels) treat set_down as a no-op and simply lose pairs.
  for (net::LinkTransport* link : out_links_) link->set_down(true);
  CIM_TRACE(trace_, fabric_.simulator().now(), obs::TraceCategory::kIsc,
            "isp_crash", {{"proc", id()}});
}

void IsProcess::restart() {
  CIM_CHECK_MSG(crashed_, "restart of an IS-process that is not crashed");
  crashed_ = false;
  for (net::LinkTransport* link : out_links_) link->set_down(false);
  // Replay the upcalls parked during the outage, in arrival order. The
  // attached MCS-process's apply pipeline blocked on each upcall's `done`,
  // so at most one is parked and its replica state is exactly as it was at
  // crash time — the replayed read still satisfies condition (c).
  std::vector<ParkedUpcall> replay = std::move(parked_);
  parked_.clear();
  CIM_TRACE(trace_, fabric_.simulator().now(), obs::TraceCategory::kIsc,
            "isp_restart",
            {{"proc", id()},
             {"replayed", static_cast<std::uint64_t>(replay.size())}});
  for (ParkedUpcall& upcall : replay) {
    if (upcall.is_pre) {
      run_pre_update(upcall.var, std::move(upcall.done));
    } else {
      run_post_update(upcall.var, upcall.value, upcall.wid,
                      std::move(upcall.done));
    }
  }
}

void IsProcess::pre_update(VarId var, mcs::DoneFn done) {
  if (crashed_) {
    parked_.push_back(
        ParkedUpcall{true, var, kInitValue, WriteId{}, std::move(done)});
    return;
  }
  run_pre_update(var, std::move(done));
}

void IsProcess::run_pre_update(VarId var, mcs::DoneFn done) {
  // Task Pre_Propagate_out(x) (Fig. 2): read x, obtaining the previous
  // value s. The value is not used; the read's existence constrains the
  // causal order (Lemma 1).
  CIM_TRACE(trace_, fabric_.simulator().now(), obs::TraceCategory::kIsc,
            "pre_read", {{"proc", id()}, {"var", var}});
  app_.read_now(var, [done = std::move(done)](Value) { done(); });
}

void IsProcess::post_update(VarId var, Value value, WriteId wid,
                            mcs::DoneFn done) {
  if (crashed_) {
    parked_.push_back(ParkedUpcall{false, var, value, wid, std::move(done)});
    return;
  }
  run_post_update(var, value, wid, std::move(done));
}

void IsProcess::run_post_update(VarId var, Value value, WriteId wid,
                                mcs::DoneFn done) {
  // Task Propagate_out(x, v) (Fig. 1): read x — condition (c) guarantees the
  // read returns v — and send ⟨x, v⟩ to the peer IS-process on every link.
  app_.read_now(var,
                [this, var, value, wid, done = std::move(done)](Value read) {
    CIM_CHECK_MSG(read == value,
                  "condition (c) violated: post-update read must return v");
    const sim::Time origin = fabric_.simulator().now();
    for (std::size_t link = 0; link < out_links_.size(); ++link) {
      send_pair(link, var, read, wid, origin);
    }
    done();
  });
}

void IsProcess::send_pair(std::size_t link, VarId var, Value value,
                          WriteId wid, sim::Time origin_time) {
  const sim::Time now = fabric_.simulator().now();
  auto msg = std::make_unique<PairMsg>();
  msg->var = var;
  msg->value = value;
  msg->sent_at = now;
  msg->origin_time = origin_time;
  msg->write_id = wid;
  net::LinkTransport& out = *out_links_[link];
  out.send(std::move(msg));
  ++pairs_sent_;
  ++pairs_sent_on_[link];
  if (m_pairs_sent_ != nullptr) {
    m_pairs_sent_->inc();
    h_link_backlog_->observe(static_cast<std::int64_t>(out.backlog()));
  }
  CIM_TRACE(trace_, now, obs::TraceCategory::kIsc, "pair_out",
            {{"proc", id()},
             {"var", var},
             {"val", value},
             {"wid", wid},
             {"link", static_cast<std::uint64_t>(link)}});
}

void IsProcess::on_message(net::ChannelId from, net::MessagePtr msg) {
  std::size_t source_link = SIZE_MAX;
  for (const auto& [chan, link] : in_links_) {
    if (chan == from.value) source_link = link;
  }
  CIM_CHECK_MSG(source_link != SIZE_MAX, "pair on unregistered link");
  deliver_from_link(source_link, std::move(msg));
}

void IsProcess::deliver_from_link(std::size_t source_link,
                                  net::MessagePtr msg) {
  CIM_CHECK(source_link < out_links_.size());
  CIM_DCHECK_MSG(dynamic_cast<PairMsg*>(msg.get()) != nullptr,
                 "IS-process received a non-pair message");
  auto* pair = static_cast<PairMsg*>(msg.get());

  const sim::Time now = fabric_.simulator().now();
  if (crashed_) {
    // Only a raw (transport-less) link can deliver here while crashed — an
    // ARQ link's endpoint is down and shields us. The pair is lost, exactly
    // as a crashed host loses an in-flight datagram.
    CIM_TRACE(trace_, now, obs::TraceCategory::kIsc, "pair_lost_crashed",
              {{"proc", id()},
               {"var", pair->var},
               {"val", pair->value},
               {"wid", pair->write_id}});
    return;
  }
  ++pairs_received_;
  ++pairs_received_on_[source_link];

  if (m_pairs_received_ != nullptr) {
    m_pairs_received_->inc();
    h_hop_latency_->observe(now - pair->sent_at);
    h_propagation_->observe(now - pair->origin_time);
  }
  CIM_TRACE(trace_, now, obs::TraceCategory::kIsc, "pair_in",
            {{"proc", id()},
             {"var", pair->var},
             {"val", pair->value},
             {"wid", pair->write_id},
             {"hop_ns", now - pair->sent_at},
             {"prop_ns", now - pair->origin_time}});

  // Forward to every other link first (tree interconnection with a shared
  // IS-process: its own writes generate no upcalls, so forwarding must be
  // explicit), then apply locally: task Propagate_in(y, u) issues the write.
  for (std::size_t link = 0; link < out_links_.size(); ++link) {
    if (link != source_link) {
      send_pair(link, pair->var, pair->value, pair->write_id,
                pair->origin_time);
    }
  }
  // Re-issue under the *origin's* wid so the write keeps its identity as it
  // crosses systems.
  app_.write_with_wid(pair->var, pair->value, pair->write_id);
}

}  // namespace cim::isc

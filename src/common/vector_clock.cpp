#include "common/vector_clock.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace cim {

void VectorClock::merge(const VectorClock& other) {
  assert(counts_.size() == other.counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] = std::max(counts_[i], other.counts_[i]);
  }
}

bool VectorClock::leq(const VectorClock& other) const {
  assert(counts_.size() == other.counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] > other.counts_[i]) return false;
  }
  return true;
}

bool VectorClock::lt(const VectorClock& other) const {
  return leq(other) && counts_ != other.counts_;
}

bool VectorClock::concurrent_with(const VectorClock& other) const {
  return !leq(other) && !other.leq(*this);
}

bool VectorClock::ready_at(const VectorClock& replica_clock,
                           std::size_t writer) const {
  assert(counts_.size() == replica_clock.counts_.size());
  for (std::size_t j = 0; j < counts_.size(); ++j) {
    if (j == writer) {
      if (counts_[j] != replica_clock.counts_[j] + 1) return false;
    } else {
      if (counts_[j] > replica_clock.counts_[j]) return false;
    }
  }
  return true;
}

std::string VectorClock::to_string() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (i) os << ",";
    os << counts_[i];
  }
  os << "]";
  return os.str();
}

}  // namespace cim

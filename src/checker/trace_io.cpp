#include "checker/trace_io.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

namespace cim::chk {

void write_trace(const History& history, std::ostream& os) {
  os << "# cim trace v1: kind system proc var value invoked_ns responded_ns"
        " [isp]\n";
  // Interleave by invocation time so the file reads chronologically while
  // preserving per-process program order (stable for equal times).
  std::vector<const Op*> ops;
  ops.reserve(history.size());
  for (const Op& op : history.ops()) ops.push_back(&op);
  std::stable_sort(ops.begin(), ops.end(), [](const Op* a, const Op* b) {
    return a->invoked < b->invoked;
  });
  for (const Op* op : ops) {
    os << (op->kind == OpKind::kRead ? "r" : "w") << " "
       << op->proc.system.value << " " << op->proc.index << " "
       << op->var.value << " " << op->value << " " << op->invoked.ns << " "
       << op->responded.ns;
    if (op->is_isp) os << " isp";
    os << "\n";
  }
}

std::string to_trace(const History& history) {
  std::ostringstream os;
  write_trace(history, os);
  return os.str();
}

ParseResult read_trace(std::istream& is) {
  std::vector<Op> ops;
  std::map<ProcId, std::uint64_t> next_seq;
  std::string line;
  std::size_t line_no = 0;

  auto fail = [&](const std::string& msg) {
    ParseResult r;
    r.error = "line " + std::to_string(line_no) + ": " + msg;
    return r;
  };

  while (std::getline(is, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind)) continue;  // blank or comment-only line
    if (kind != "r" && kind != "w") {
      return fail("expected 'r' or 'w', got '" + kind + "'");
    }
    std::uint32_t system = 0, proc = 0, var = 0;
    std::int64_t value = 0;
    if (!(ls >> system >> proc >> var >> value)) {
      return fail("expected: kind system proc var value");
    }
    if (system > UINT16_MAX || proc > UINT16_MAX) {
      return fail("system/proc id out of range");
    }
    Op op;
    op.id = OpId{ops.size()};
    op.proc = ProcId{SystemId{static_cast<std::uint16_t>(system)},
                     static_cast<std::uint16_t>(proc)};
    op.kind = kind == "r" ? OpKind::kRead : OpKind::kWrite;
    op.var = VarId{var};
    op.value = value;
    op.proc_seq = next_seq[op.proc]++;

    std::int64_t invoked = 0, responded = 0;
    if (ls >> invoked) {
      if (!(ls >> responded)) return fail("invoked time without responded");
      op.invoked = sim::Time{invoked};
      op.responded = sim::Time{responded};
    }
    std::string flag;
    if (ls >> flag) {
      if (flag != "isp") return fail("unknown trailer '" + flag + "'");
      op.is_isp = true;
    }
    ops.push_back(op);
  }
  ParseResult r;
  r.history = History(std::move(ops));
  return r;
}

ParseResult parse_trace(const std::string& text) {
  std::istringstream is(text);
  return read_trace(is);
}

}  // namespace cim::chk

file(REMOVE_RECURSE
  "CMakeFiles/cim_net.dir/fabric.cpp.o"
  "CMakeFiles/cim_net.dir/fabric.cpp.o.d"
  "libcim_net.a"
  "libcim_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cim_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_dialup.dir/bench_dialup.cpp.o"
  "CMakeFiles/bench_dialup.dir/bench_dialup.cpp.o.d"
  "bench_dialup"
  "bench_dialup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dialup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "protocols/anbkh.h"

#include <memory>
#include <utility>

#include "common/check.h"

namespace cim::proto {

AnbkhProcess::AnbkhProcess(const mcs::McsContext& ctx)
    : McsProcess(ctx), clock_(ctx.num_procs) {}

Value AnbkhProcess::replica_value(VarId var) const {
  auto it = store_.find(var);
  return it == store_.end() ? kInitValue : it->second;
}

void AnbkhProcess::handle_read(VarId var, mcs::ReadCallback cb) {
  cb(replica_value(var));
}

void AnbkhProcess::do_write(VarId var, Value value, WriteId wid,
                            mcs::WriteCallback cb) {
  clock_.tick(local_index());
  store_[var] = value;
  note_update_issued(var, value, wid);
  if (observer() != nullptr) {
    observer()->on_write_issued(id(), var, value, simulator().now());
    observer()->on_apply(id(), var, value, simulator().now());
  }
  for (std::uint16_t j = 0; j < num_procs(); ++j) {
    if (j == local_index()) continue;
    auto msg = std::make_unique<TimestampedUpdate>();
    msg->var = var;
    msg->value = value;
    msg->clock = clock_;
    msg->writer = local_index();
    msg->write_id = wid;
    send_to(j, std::move(msg));
  }
  cb();
}

void AnbkhProcess::on_message(net::ChannelId from, net::MessagePtr msg) {
  auto* update = dynamic_cast<TimestampedUpdate*>(msg.get());
  CIM_CHECK_MSG(update != nullptr, "unexpected message type in ANBKH");
  CIM_CHECK(update->writer == sender_of(from));
  update->received_at = simulator().now();
  pending_.push_back(std::move(*update));
  note_update_buffered(pending_.size());
  try_apply();
}

void AnbkhProcess::try_apply() {
  if (applying_) return;  // an apply chain is already in progress
  applying_ = true;
  apply_step();
}

void AnbkhProcess::apply_step() {
  // Find the first causally ready pending update.
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (!it->clock.ready_at(clock_, it->writer)) continue;
    TimestampedUpdate update = std::move(*it);
    pending_.erase(it);

    const VarId var = update.var;
    const Value value = update.value;
    apply_with_upcalls(
        var, value, update.write_id, /*own_write=*/false,
        /*apply=*/[this, update = std::move(update)]() {
          clock_.set(update.writer, update.clock[update.writer]);
          store_[update.var] = update.value;
          note_update_applied(update.var, update.value, update.write_id,
                              update.received_at);
          if (observer() != nullptr) {
            observer()->on_apply(id(), update.var, update.value,
                                 simulator().now());
          }
        },
        /*done=*/[this]() {
          // Continue the chain in a fresh event to bound recursion depth.
          simulator().post([this]() { apply_step(); });
        });
    return;
  }
  applying_ = false;
}

mcs::ProtocolFactory anbkh_protocol() {
  return [](const mcs::McsContext& ctx) {
    return std::make_unique<AnbkhProcess>(ctx);
  };
}

}  // namespace cim::proto

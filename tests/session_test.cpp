// Tests: the session-guarantee checkers, on hand-written histories (each
// guarantee violated in isolation) and on protocol executions (all
// protocols satisfy all guarantees).
#include <gtest/gtest.h>

#include "checker/session_checker.h"
#include "helpers.h"
#include "protocols/partial_rep.h"

namespace cim::chk {
namespace {

using test::H;
using test::X;
using test::Y;

// ------------------------------------------------------- read-your-writes

TEST(SessionRyw, OwnWriteThenOwnReadOk) {
  auto h = H{}.wr(0, X, 1).rd(0, X, 1).history();
  EXPECT_TRUE(
      SessionChecker{}.check(h, SessionGuarantee::kReadYourWrites).ok);
}

TEST(SessionRyw, InitReadAfterOwnWriteViolates) {
  auto h = H{}.wr(0, X, 1).rd(0, X, kInitValue).history();
  auto r = SessionChecker{}.check(h, SessionGuarantee::kReadYourWrites);
  EXPECT_FALSE(r.ok);
}

TEST(SessionRyw, CausallyOlderValueAfterOwnWriteViolates) {
  // p1 observes 1, writes 2, then reads the strictly older 1 again.
  auto h = H{}
               .wr(0, X, 1)
               .rd(1, X, 1)
               .wr(1, X, 2)
               .rd(1, X, 1)
               .history();
  auto r = SessionChecker{}.check(h, SessionGuarantee::kReadYourWrites);
  EXPECT_FALSE(r.ok);
}

TEST(SessionRyw, ConcurrentOverwriteIsAllowed) {
  // p1 writes 2; a concurrent write 1 may overwrite it at p1's replica.
  auto h = H{}.wr(0, X, 1).wr(1, X, 2).rd(1, X, 1).history();
  EXPECT_TRUE(
      SessionChecker{}.check(h, SessionGuarantee::kReadYourWrites).ok);
}

// -------------------------------------------------------- monotonic reads

TEST(SessionMr, ForwardProgressOk) {
  auto h = H{}.wr(0, X, 1).wr(0, X, 2).rd(1, X, 1).rd(1, X, 2).history();
  EXPECT_TRUE(SessionChecker{}.check(h, SessionGuarantee::kMonotonicReads).ok);
}

TEST(SessionMr, CausalRegressionViolates) {
  auto h = H{}.wr(0, X, 1).wr(0, X, 2).rd(1, X, 2).rd(1, X, 1).history();
  EXPECT_FALSE(
      SessionChecker{}.check(h, SessionGuarantee::kMonotonicReads).ok);
}

TEST(SessionMr, RegressionToInitViolates) {
  auto h = H{}.wr(0, X, 1).rd(1, X, 1).rd(1, X, kInitValue).history();
  EXPECT_FALSE(
      SessionChecker{}.check(h, SessionGuarantee::kMonotonicReads).ok);
}

TEST(SessionMr, SwitchBetweenConcurrentValuesAllowed) {
  auto h = H{}.wr(0, X, 1).wr(1, X, 2).rd(2, X, 2).rd(2, X, 1).history();
  EXPECT_TRUE(SessionChecker{}.check(h, SessionGuarantee::kMonotonicReads).ok);
}

TEST(SessionMr, PerVariableIndependence) {
  auto h = H{}
               .wr(0, X, 1)
               .wr(0, Y, 2)
               .rd(1, X, 1)
               .rd(1, Y, kInitValue)  // different variable: not a regression
               .history();
  EXPECT_TRUE(SessionChecker{}.check(h, SessionGuarantee::kMonotonicReads).ok);
}

// ------------------------------------------------------- monotonic writes

TEST(SessionMw, ObservingWriterOrderOk) {
  auto h = H{}.wr(0, X, 1).wr(0, X, 2).rd(1, X, 1).rd(1, X, 2).history();
  EXPECT_TRUE(
      SessionChecker{}.check(h, SessionGuarantee::kMonotonicWrites).ok);
}

TEST(SessionMw, InvertedWriterOrderViolates) {
  auto h = H{}.wr(0, X, 1).wr(0, X, 2).rd(1, X, 2).rd(1, X, 1).history();
  EXPECT_FALSE(
      SessionChecker{}.check(h, SessionGuarantee::kMonotonicWrites).ok);
}

TEST(SessionMw, DifferentWritersDoNotTrigger) {
  auto h = H{}.wr(0, X, 1).wr(1, X, 2).rd(2, X, 2).rd(2, X, 1).history();
  EXPECT_TRUE(
      SessionChecker{}.check(h, SessionGuarantee::kMonotonicWrites).ok);
}

// ---------------------------------------------------------------- combined

TEST(SessionAll, ReportsGuaranteeNameInDetail) {
  auto h = H{}.wr(0, X, 1).rd(0, X, kInitValue).history();
  auto r = SessionChecker{}.check_all(h);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.detail.find("read-your-writes"), std::string::npos);
}

TEST(SessionAll, PreconditionFailuresReported) {
  // Duplicate writes alone are fine now; only a read that makes reads-from
  // ambiguous defeats the session analysis (which needs the unique source).
  auto dup = H{}.wr(0, X, 5).wr(1, X, 5).history();
  EXPECT_TRUE(SessionChecker{}.check_all(dup).ok);
  auto ambiguous = H{}.wr(0, X, 5).wr(1, X, 5).rd(2, X, 5).history();
  auto r = SessionChecker{}.check_all(ambiguous);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.detail.find("ambiguous reads-from"), std::string::npos);
  auto thin = H{}.rd(0, X, 77).history();
  EXPECT_FALSE(SessionChecker{}.check_all(thin).ok);
}

// Every protocol's executions satisfy every session guarantee.
struct ProtoParam {
  int which;
  std::uint64_t seed;
};

class SessionProtocols : public ::testing::TestWithParam<ProtoParam> {};

TEST_P(SessionProtocols, AllGuaranteesHoldOnRandomWorkloads) {
  mcs::ProtocolFactory factory;
  switch (GetParam().which) {
    case 0: factory = proto::anbkh_protocol(); break;
    case 1: {
      proto::LazyBatchConfig lc;
      lc.order = proto::BatchOrder::kShuffleVars;
      factory = proto::lazy_batch_protocol(lc);
      break;
    }
    case 2: factory = proto::aw_seq_protocol(); break;
    default: factory = proto::tob_causal_protocol(); break;
  }
  isc::FederationConfig cfg =
      test::two_systems(3, factory, factory, GetParam().seed);
  isc::Federation fed(std::move(cfg));
  wl::UniformConfig wc;
  wc.ops_per_process = 30;
  wc.num_vars = 4;
  wc.seed = GetParam().seed * 7 + GetParam().which;
  auto runners = wl::install_uniform(fed, wc);
  fed.run();
  auto r = SessionChecker{}.check_all(fed.federation_history());
  EXPECT_TRUE(r.ok) << r.detail;
}

std::vector<ProtoParam> session_params() {
  std::vector<ProtoParam> out;
  for (int w = 0; w < 4; ++w) {
    for (std::uint64_t s : {1, 2, 3}) out.push_back({w, s});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Grid, SessionProtocols,
                         ::testing::ValuesIn(session_params()));

}  // namespace
}  // namespace cim::chk

# Empty dependencies file for cim_sim.
# This may be replaced when dependencies are built.

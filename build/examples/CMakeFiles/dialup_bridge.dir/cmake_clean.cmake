file(REMOVE_RECURSE
  "CMakeFiles/dialup_bridge.dir/dialup_bridge.cpp.o"
  "CMakeFiles/dialup_bridge.dir/dialup_bridge.cpp.o.d"
  "dialup_bridge"
  "dialup_bridge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dialup_bridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

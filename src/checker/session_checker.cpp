#include "checker/session_checker.h"

#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "checker/causal_checker.h"
#include "checker/relation.h"

namespace cim::chk {

const char* to_string(SessionGuarantee g) {
  switch (g) {
    case SessionGuarantee::kReadYourWrites: return "read-your-writes";
    case SessionGuarantee::kMonotonicReads: return "monotonic-reads";
    case SessionGuarantee::kMonotonicWrites: return "monotonic-writes";
  }
  return "?";
}

namespace {

constexpr std::size_t kInit = SIZE_MAX;

struct Prepared {
  const History* history = nullptr;
  Relation co;                          // (po ∪ rf)+
  std::vector<std::size_t> rf_source;   // per read; kInit for initial value
  bool ok = false;
  std::string error;
};

Prepared prepare(const History& h) {
  Prepared p;
  p.history = &h;
  const auto& ops = h.ops();
  p.rf_source.assign(ops.size(), kInit);

  std::map<std::pair<VarId, Value>, std::size_t> writer;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind != OpKind::kWrite) continue;
    if (!writer.try_emplace({ops[i].var, ops[i].value}, i).second) {
      p.error = "duplicate write of " + ops[i].to_string();
      return p;
    }
  }
  Relation base(ops.size());
  for (ProcId proc : h.processes()) {
    const auto& seq = h.process_ops(proc);
    for (std::size_t k = 1; k < seq.size(); ++k) base.set(seq[k - 1], seq[k]);
  }
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind != OpKind::kRead || ops[i].value == kInitValue) continue;
    auto it = writer.find({ops[i].var, ops[i].value});
    if (it == writer.end()) {
      p.error = "thin-air read " + ops[i].to_string();
      return p;
    }
    p.rf_source[i] = it->second;
    base.set(it->second, i);
  }
  ClosureResult cr = transitive_closure(base);
  if (cr.cycle_witness) {
    p.error = "cyclic causal order";
    return p;
  }
  p.co = std::move(cr.closure);
  p.ok = true;
  return p;
}

SessionResult violation(const std::string& detail) {
  return SessionResult{false, detail};
}

SessionResult check_ryw(const Prepared& p) {
  const auto& h = *p.history;
  const auto& ops = h.ops();
  for (ProcId proc : h.processes()) {
    const auto& seq = h.process_ops(proc);
    for (std::size_t k = 0; k < seq.size(); ++k) {
      const std::size_t r = seq[k];
      if (ops[r].kind != OpKind::kRead) continue;
      const std::size_t src = p.rf_source[r];
      // The state served to the read must have contained every own prior
      // write to the variable. A *concurrent* remote value may legitimately
      // have overwritten it; only the initial value or a value strictly
      // causally OLDER than the own write is an observable violation.
      for (std::size_t j = 0; j < k; ++j) {
        const std::size_t w = seq[j];
        if (ops[w].kind != OpKind::kWrite || ops[w].var != ops[r].var) continue;
        const bool violated =
            src == kInit || (src != w && p.co.test(src, w));
        if (violated) {
          return violation(ops[r].to_string() + " predates own write " +
                           ops[w].to_string());
        }
      }
    }
  }
  return {};
}

SessionResult check_monotonic_reads(const Prepared& p) {
  const auto& h = *p.history;
  const auto& ops = h.ops();
  for (ProcId proc : h.processes()) {
    const auto& seq = h.process_ops(proc);
    // Track, per variable, the most recent non-init source read.
    std::map<VarId, std::size_t> last_src;
    std::map<VarId, std::size_t> last_read;
    for (std::size_t idx : seq) {
      if (ops[idx].kind != OpKind::kRead) continue;
      const VarId var = ops[idx].var;
      const std::size_t src = p.rf_source[idx];
      auto it = last_src.find(var);
      if (it != last_src.end()) {
        const std::size_t prev = it->second;
        const bool regressed =
            src == kInit || (src != prev && p.co.test(src, prev));
        if (regressed) {
          return violation(ops[idx].to_string() +
                           " is causally older than earlier " +
                           ops[last_read[var]].to_string());
        }
      }
      if (src != kInit) {
        last_src[var] = src;
        last_read[var] = idx;
      }
    }
  }
  return {};
}

SessionResult check_monotonic_writes(const Prepared& p) {
  const auto& h = *p.history;
  const auto& ops = h.ops();
  for (ProcId proc : h.processes()) {
    const auto& seq = h.process_ops(proc);
    std::map<VarId, std::size_t> last_src;  // per var, previous read's source
    std::map<VarId, std::size_t> last_read;
    for (std::size_t idx : seq) {
      if (ops[idx].kind != OpKind::kRead) continue;
      const VarId var = ops[idx].var;
      const std::size_t src = p.rf_source[idx];
      auto it = last_src.find(var);
      if (it != last_src.end() && src != kInit) {
        const std::size_t prev = it->second;
        // Same writer, inverted program order: the session observed the
        // writer's writes out of order.
        if (src != prev && ops[src].proc == ops[prev].proc &&
            ops[src].proc_seq < ops[prev].proc_seq) {
          return violation(ops[idx].to_string() + " observes " +
                           ops[src].to_string() + " after the later " +
                           ops[prev].to_string());
        }
      }
      if (src != kInit) {
        last_src[var] = src;
        last_read[var] = idx;
      }
    }
  }
  return {};
}

}  // namespace

SessionResult SessionChecker::check(const History& history,
                                    SessionGuarantee g) const {
  Prepared p = prepare(history);
  if (!p.ok) return violation(p.error);
  switch (g) {
    case SessionGuarantee::kReadYourWrites: return check_ryw(p);
    case SessionGuarantee::kMonotonicReads: return check_monotonic_reads(p);
    case SessionGuarantee::kMonotonicWrites: return check_monotonic_writes(p);
  }
  return {};
}

SessionResult SessionChecker::check_all(const History& history) const {
  Prepared p = prepare(history);
  if (!p.ok) return violation(p.error);
  for (SessionGuarantee g :
       {SessionGuarantee::kReadYourWrites, SessionGuarantee::kMonotonicReads,
        SessionGuarantee::kMonotonicWrites}) {
    SessionResult r;
    switch (g) {
      case SessionGuarantee::kReadYourWrites: r = check_ryw(p); break;
      case SessionGuarantee::kMonotonicReads:
        r = check_monotonic_reads(p);
        break;
      case SessionGuarantee::kMonotonicWrites:
        r = check_monotonic_writes(p);
        break;
    }
    if (!r.ok) {
      r.detail = std::string(to_string(g)) + ": " + r.detail;
      return r;
    }
  }
  return {};
}

}  // namespace cim::chk

#include "mcs/system.h"

#include <utility>

#include "common/check.h"

namespace cim::mcs {

System::System(sim::Simulator& simulator, net::Fabric& fabric,
               chk::Recorder& recorder, SystemConfig config,
               MemoryObserver* observer, obs::Observability* obs)
    : sim_(simulator), fabric_(fabric), recorder_(recorder),
      config_(std::move(config)), observer_(observer), obs_(obs) {
  CIM_CHECK_MSG(config_.protocol != nullptr, "system needs a protocol factory");
  CIM_CHECK_MSG(config_.num_app_processes >= 1,
                "system needs at least one application process");
  if (!config_.intra_delay) {
    config_.intra_delay = [] {
      return std::make_unique<net::FixedDelay>(sim::milliseconds(1));
    };
  }
}

ProcId System::add_isp_slot() {
  CIM_CHECK_MSG(!finalized_, "cannot add IS-process slot after finalize()");
  const std::uint16_t index =
      static_cast<std::uint16_t>(config_.num_app_processes + isp_slots_);
  ++isp_slots_;
  return ProcId{config_.id, index};
}

std::uint16_t System::num_processes() const {
  return static_cast<std::uint16_t>(config_.num_app_processes + isp_slots_);
}

bool System::is_isp_slot(std::uint16_t local_index) const {
  return local_index >= config_.num_app_processes &&
         local_index < num_processes();
}

void System::finalize() {
  CIM_CHECK_MSG(!finalized_, "finalize() called twice");
  finalized_ = true;

  const std::uint16_t n = num_processes();
  Rng seeder(config_.seed);

  // 1. Protocol processes.
  for (std::uint16_t i = 0; i < n; ++i) {
    McsContext ctx;
    ctx.id = ProcId{config_.id, i};
    ctx.local_index = i;
    ctx.num_procs = n;
    ctx.simulator = &sim_;
    ctx.fabric = &fabric_;
    ctx.rng_seed = seeder.next();
    ctx.observer = observer_;
    ctx.obs = obs_;
    mcs_.push_back(config_.protocol(ctx));
    CIM_CHECK(mcs_.back() != nullptr);
  }

  // 2. Full mesh of intra-system FIFO channels.
  for (std::uint16_t i = 0; i < n; ++i) {
    std::vector<net::ChannelId> out(n);
    for (std::uint16_t j = 0; j < n; ++j) {
      if (j == i) continue;
      net::ChannelConfig cc;
      cc.src = ProcId{config_.id, i};
      cc.dst = ProcId{config_.id, j};
      cc.receiver = mcs_[j].get();
      cc.delay = config_.intra_delay();
      cc.link_class = net::LinkClass::kIntraSystem;
      out[j] = fabric_.add_channel(std::move(cc));
      mcs_[j]->register_in_channel(out[j], i);
    }
    mcs_[i]->set_out_channels(std::move(out));
  }

  // 3. Application processes (IS-process slots flagged as such).
  for (std::uint16_t i = 0; i < n; ++i) {
    apps_.push_back(std::make_unique<AppProcess>(
        ProcId{config_.id, i}, is_isp_slot(i), *mcs_[i], recorder_, sim_,
        obs_));
  }
}

AppProcess& System::app(std::uint16_t local_index) {
  CIM_CHECK_MSG(finalized_, "finalize() the system first");
  CIM_CHECK(local_index < apps_.size());
  return *apps_[local_index];
}

McsProcess& System::mcs(std::uint16_t local_index) {
  CIM_CHECK_MSG(finalized_, "finalize() the system first");
  CIM_CHECK(local_index < mcs_.size());
  return *mcs_[local_index];
}

}  // namespace cim::mcs

# Empty dependencies file for cim_proto.
# This may be replaced when dependencies are built.

// Mesh topology specs for n-system federations (docs/BRIDGE.md).
//
// A Topology names the systems 0..n-1 and lists the interconnecting links as
// undirected edges. The paper's Corollary 1 makes trees the interesting
// class — any tree of causal systems is causal — so validate() requires a
// tree: connected, exactly n-1 edges, no self-loops or duplicates. The
// generators cover the three shapes the mesh tooling exercises (chain, star,
// balanced binary tree); parse() reads the on-disk spec format used by
// `cim_bridge --topo` and scripts/mesh_smoke.sh:
//
//     # comment
//     nodes 4
//     edge 0 1
//     edge 0 2
//     edge 1 3
//
// hash() is a canonical FNV-1a over the node count and the sorted edge list.
// Every node presents it in the kJoin handshake, so two processes launched
// with diverging spec files refuse to form a mesh instead of silently
// building a topology nobody asked for.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cim::isc {

struct TopologyEdge {
  std::size_t a = 0;  // normalized: a < b
  std::size_t b = 0;

  bool operator==(const TopologyEdge& o) const { return a == o.a && b == o.b; }
};

struct Topology {
  std::size_t nodes = 0;
  std::vector<TopologyEdge> edges;  // sorted by (a, b)

  /// Neighbor node ids of `node`, ascending.
  std::vector<std::size_t> neighbors(std::size_t node) const;

  /// Degree of `node` (number of incident edges).
  std::size_t degree(std::size_t node) const;

  /// Index into edges of the {min,max}(x,y) edge, or npos if absent.
  std::size_t edge_index(std::size_t x, std::size_t y) const;

  /// Canonical 64-bit FNV-1a of node count + sorted edges. Equal topologies
  /// hash equal regardless of spec-file edge order.
  std::uint64_t hash() const;

  /// Render in the spec-file format parse() accepts.
  std::string format() const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/// Chain 0-1-2-...-(n-1).
Topology make_chain(std::size_t n);

/// Star with hub 0.
Topology make_star(std::size_t n);

/// Balanced binary tree in heap order: node i links to 2i+1 and 2i+2.
Topology make_btree(std::size_t n);

/// Result of parse()/validate(): either a topology or a human-readable error.
struct TopologyResult {
  Topology topo;
  std::string error;  // empty on success

  bool ok() const { return error.empty(); }
};

/// Parse the spec format above. Validates (see validate_topology).
TopologyResult parse_topology(const std::string& text);

/// Tree check: node ids in range, no self-loops/duplicates, connected,
/// exactly n-1 edges. Returns the normalized (sorted, a<b) topology.
TopologyResult validate_topology(Topology topo);

}  // namespace cim::isc

// Causally ordered broadcast (CBCAST-style) — a message-passing substrate.
//
// Section 1.2 of the paper discusses the related pathway of building large
// causal systems at the message-passing level (Rodrigues & Verissimo; Adly &
// Nagi; Baldoni et al.) and notes that "a causal DSM system can be easily
// implemented on a causally ordered message-passing system [8]". This module
// provides that substrate: a broadcast group whose deliveries respect the
// causal order of broadcasts, implemented with vector clocks (ISIS CBCAST
// discipline). protocols/cbcast_dsm.h layers a causal DSM on top of it,
// demonstrating the pathway inside this repository.
//
// The member is transport-agnostic: it hands outgoing messages to a
// CbTransport (one per member) and is fed incoming messages through
// on_network(); the DSM layer adapts this to the MCS channel mesh.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/ids.h"
#include "common/value.h"
#include "common/vector_clock.h"
#include "net/message.h"
#include "sim/simulator.h"

namespace cim::mp {

/// Application payload of one broadcast. (Kept concrete — a variable/value
/// pair — because the only in-repo consumer is the DSM layer; a production
/// library would make this a template parameter.)
struct CbPayload {
  VarId var;
  Value value = kInitValue;
  // Instrumentation only, not wire data: the originating write's id.
  WriteId wid;
};

struct CbcastMsg final : net::Message {
  CbPayload payload;
  VectorClock clock;
  std::uint16_t sender = 0;

  const char* type_name() const override { return "cbcast.msg"; }
  std::size_t wire_size() const override {
    return 24 + 4 + 8 + 2 + 8 * clock.size();
  }
  WriteId wid() const override { return payload.wid; }
};

/// Outgoing fan-out, provided by the embedding layer.
class CbTransport {
 public:
  virtual ~CbTransport() = default;
  /// Send `msg` to group member `member` (never the local index).
  virtual void send_to_member(std::uint16_t member, net::MessagePtr msg) = 0;
};

class CbcastMember {
 public:
  /// `deliver` is invoked for every broadcast (own broadcasts deliver
  /// immediately; remote ones when causally ready), in causal order.
  using DeliverFn =
      std::function<void(std::uint16_t sender, const CbPayload& payload)>;

  CbcastMember(std::uint16_t index, std::uint16_t group_size,
               CbTransport& transport, DeliverFn deliver);

  /// Causally broadcast `payload` to the group (self-delivery included).
  void broadcast(const CbPayload& payload);

  /// Feed a message received from the network.
  void on_network(net::MessagePtr msg);

  const VectorClock& clock() const { return clock_; }
  std::size_t buffered() const { return pending_.size(); }
  std::uint64_t delivered() const { return delivered_; }

 private:
  void try_deliver();

  std::uint16_t index_;
  std::uint16_t group_size_;
  CbTransport& transport_;
  DeliverFn deliver_;
  VectorClock clock_;
  // vector, not deque: order-preserving erase keeps FIFO-per-sender scans
  // deterministic and the retained capacity keeps steady state allocation-free.
  std::vector<CbcastMsg> pending_;
  std::uint64_t delivered_ = 0;
};

}  // namespace cim::mp

file(REMOVE_RECURSE
  "CMakeFiles/cim_msgpass.dir/cbcast.cpp.o"
  "CMakeFiles/cim_msgpass.dir/cbcast.cpp.o.d"
  "libcim_msgpass.a"
  "libcim_msgpass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cim_msgpass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// The allocation-free steady-state invariant, enforced end to end.
//
// docs/ARCHITECTURE.md promises that once a federation is warmed up, the
// simulate -> send -> deliver -> apply loop performs zero heap allocations:
// event slots recycle, messages draw from BlockPool, clocks stay inline,
// and the per-replica stores are flat vectors. This file replaces the global
// operator new with a counting hook and runs a two_lans-shaped federation —
// two ANBKH systems over a point-to-point link, uniform workload — asserting
// that a mid-run steady-state window allocates nothing at all.
//
// The hook counts every allocation in the test binary; it is a strict probe
// (any std::function, deque chunk, or map node on the event path fails the
// test), which is exactly the point.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>

#include "common/ids.h"
#include "common/pool.h"
#include "common/small_fn.h"
#include "common/value.h"
#include "common/var_store.h"
#include "common/vector_clock.h"
#include "interconnect/federation.h"
#include "net/delay.h"
#include "protocols/anbkh.h"
#include "sim/time.h"
#include "workload/generator.h"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t n) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n == 0 ? 1 : n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n == 0 ? 1 : n);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace cim {
namespace {

std::uint64_t allocations() {
  return g_allocations.load(std::memory_order_relaxed);
}

TEST(AllocHook, CountsHeapAllocations) {
  const std::uint64_t before = allocations();
  auto p = std::make_unique<int>(1);
  EXPECT_GT(allocations(), before);
}

TEST(AllocFree, WarmVarStoreDoesNotAllocate) {
  VarStore store;
  for (std::uint32_t v = 0; v < 64; ++v) store.set(VarId{v}, 1);  // warm-up
  const std::uint64_t before = allocations();
  for (int round = 0; round < 1000; ++round) {
    for (std::uint32_t v = 0; v < 64; ++v) {
      store.set(VarId{v}, round);
      ASSERT_EQ(store.get(VarId{v}), round);
    }
  }
  EXPECT_EQ(allocations(), before);
}

TEST(AllocFree, InlineSmallFnDoesNotAllocate) {
  int sink = 0;
  sim::Simulator* null_sim = nullptr;
  const std::uint64_t before = allocations();
  for (int i = 0; i < 1000; ++i) {
    // A typical event closure: a pointer, two ids, a timestamp.
    SmallFn<void()> fn = [&sink, null_sim, i, t = sim::Time{9}] {
      sink += i + static_cast<int>(t.ns) + (null_sim ? 1 : 0);
    };
    SmallFn<void()> moved = std::move(fn);
    moved();
  }
  EXPECT_EQ(allocations(), before);
  EXPECT_NE(sink, 0);
}

TEST(AllocFree, InlineVectorClockDoesNotAllocate) {
  VectorClock a(VectorClock::kInline);
  VectorClock b(VectorClock::kInline);
  b.tick(3);
  const std::uint64_t before = allocations();
  for (int i = 0; i < 1000; ++i) {
    VectorClock copy(a);
    copy.merge(b);
    copy.tick(i % VectorClock::kInline);
    a = copy;
  }
  EXPECT_EQ(allocations(), before);
}

// The end-to-end check: a steady-state window of a two_lans-shaped run must
// fire thousands of events without a single heap allocation.
TEST(AllocFree, SteadyStateFederationWindowIsAllocationFree) {
#if defined(CIM_SANITIZE)
  GTEST_SKIP() << "BlockPool passes through to the heap under sanitizers";
#else
  constexpr std::uint16_t kProcs = 4;
  isc::FederationConfig cfg;
  for (std::uint16_t s = 0; s < 2; ++s) {
    mcs::SystemConfig sys;
    sys.id = SystemId{s};
    sys.num_app_processes = kProcs;
    sys.protocol = proto::anbkh_protocol();
    sys.seed = 7 + s;
    sys.intra_delay = [] {
      return std::make_unique<net::FixedDelay>(sim::microseconds(200));
    };
    cfg.systems.push_back(std::move(sys));
  }
  isc::LinkSpec link;
  link.system_a = 0;
  link.system_b = 1;
  link.delay = [] {
    return std::make_unique<net::FixedDelay>(sim::milliseconds(5));
  };
  cfg.links.push_back(std::move(link));
  isc::Federation fed(std::move(cfg));

  wl::UniformConfig wc;
  wc.ops_per_process = 400;
  wc.seed = 11;
  auto runners = wl::install_uniform(fed, wc);

  // Warm-up: run the first stretch so every queue, pool free list, store,
  // and stats node reaches steady-state capacity...
  fed.run_until(sim::Time{} + sim::milliseconds(150));
  // ...then pin the growable buffers that are *designed* to be pre-sized:
  // the op log gets a generous bound and histogram retention stops growing.
  fed.recorder().reserve(static_cast<std::size_t>(2) * kProcs * 400 * 8);
  fed.observability().metrics().set_histogram_max_samples(256);
  // Fund the pool's free lists past the run's live-block peak: the workload
  // only approaches peak concurrency gradually, and a first-time peak inside
  // the window would count as a (legitimate, one-off) warm-up miss.
  {
    constexpr int kDepth = 256;
    void* blocks[kDepth];
    for (std::size_t bytes : {64u, 128u, 256u, 512u, 1024u}) {
      for (int i = 0; i < kDepth; ++i) blocks[i] = BlockPool::allocate(bytes);
      for (int i = 0; i < kDepth; ++i) BlockPool::deallocate(blocks[i]);
    }
  }
  fed.run_until(sim::Time{} + sim::milliseconds(200));  // settle the new caps

  const std::uint64_t events_before = fed.simulator().events_fired();
  const std::uint64_t allocs_before = allocations();
  const std::uint64_t pool_misses_before = BlockPool::misses();

  fed.run_until(sim::Time{} + sim::milliseconds(600));  // the measured window

  const std::uint64_t events = fed.simulator().events_fired() - events_before;
  EXPECT_EQ(allocations() - allocs_before, 0u)
      << "heap allocations leaked into the steady-state event loop across "
      << events << " events";
  EXPECT_EQ(BlockPool::misses() - pool_misses_before, 0u)
      << "pool fell through to the heap mid-window";
  // The window must be real work, not an idle tail.
  EXPECT_GT(events, 1000u);

  fed.run();  // finish cleanly; completion bookkeeping may allocate
#endif
}

}  // namespace
}  // namespace cim

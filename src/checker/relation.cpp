#include "checker/relation.h"

#include <algorithm>

namespace cim::chk {

std::size_t Relation::edge_count() const {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    const std::uint64_t* r = row(i);
    for (std::size_t w = 0; w < words_per_row_; ++w) {
      count += static_cast<std::size_t>(__builtin_popcountll(r[w]));
    }
  }
  return count;
}

namespace {

// Iterative Tarjan SCC. Returns component id per node; components are
// numbered in reverse topological order (a component's successors have
// smaller ids).
struct SccResult {
  std::vector<std::size_t> comp;
  std::size_t num_comps = 0;
};

SccResult tarjan_scc(const Relation& rel) {
  const std::size_t n = rel.size();
  SccResult out;
  out.comp.assign(n, SIZE_MAX);

  std::vector<std::size_t> index(n, SIZE_MAX), lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> stack;
  std::size_t next_index = 0;

  struct Frame {
    std::size_t v;
    std::vector<std::size_t> succs;
    std::size_t next_succ = 0;
  };
  std::vector<Frame> call_stack;

  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] != SIZE_MAX) continue;
    call_stack.push_back(Frame{root, {}, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    rel.for_successors(root, [&](std::size_t j) {
      call_stack.back().succs.push_back(j);
    });

    while (!call_stack.empty()) {
      Frame& f = call_stack.back();
      if (f.next_succ < f.succs.size()) {
        const std::size_t w = f.succs[f.next_succ++];
        if (index[w] == SIZE_MAX) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          call_stack.push_back(Frame{w, {}, 0});
          rel.for_successors(w, [&](std::size_t j) {
            call_stack.back().succs.push_back(j);
          });
        } else if (on_stack[w]) {
          lowlink[f.v] = std::min(lowlink[f.v], index[w]);
        }
      } else {
        if (lowlink[f.v] == index[f.v]) {
          while (true) {
            const std::size_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            out.comp[w] = out.num_comps;
            if (w == f.v) break;
          }
          ++out.num_comps;
        }
        const std::size_t v = f.v;
        call_stack.pop_back();
        if (!call_stack.empty()) {
          Frame& parent = call_stack.back();
          lowlink[parent.v] = std::min(lowlink[parent.v], lowlink[v]);
        }
      }
    }
  }
  return out;
}

}  // namespace

ClosureResult transitive_closure(const Relation& rel) {
  const std::size_t n = rel.size();
  ClosureResult out;
  out.closure = Relation(n);
  if (n == 0) return out;

  const SccResult scc = tarjan_scc(rel);

  // Group nodes per component; find a cycle witness (component of size >= 2,
  // or a self-loop).
  std::vector<std::vector<std::size_t>> members(scc.num_comps);
  for (std::size_t v = 0; v < n; ++v) members[scc.comp[v]].push_back(v);
  for (std::size_t c = 0; c < scc.num_comps && !out.cycle_witness; ++c) {
    if (members[c].size() >= 2) {
      out.cycle_witness = std::make_pair(members[c][0], members[c][1]);
    }
  }
  if (!out.cycle_witness) {
    for (std::size_t v = 0; v < n && !out.cycle_witness; ++v) {
      if (rel.test(v, v)) out.cycle_witness = std::make_pair(v, v);
    }
  }

  // Per-component reachability, processed in topological order (Tarjan
  // numbers components in reverse topological order, so iterate ascending:
  // successors first).
  Relation comp_reach(scc.num_comps);
  for (std::size_t c = 0; c < scc.num_comps; ++c) {
    for (std::size_t v : members[c]) {
      rel.for_successors(v, [&](std::size_t w) {
        const std::size_t cw = scc.comp[w];
        comp_reach.set(c, cw);                 // reaches the component itself
        comp_reach.merge_row(c, cw);           // and everything it reaches
      });
    }
    if (members[c].size() >= 2) comp_reach.set(c, c);  // internal cycle
    for (std::size_t v : members[c]) {
      if (rel.test(v, v)) comp_reach.set(c, c);
    }
  }

  // Expand component reachability back to nodes.
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t cv = scc.comp[v];
    comp_reach.for_successors(cv, [&](std::size_t cw) {
      for (std::size_t w : members[cw]) out.closure.set(v, w);
    });
  }
  return out;
}

}  // namespace cim::chk

#include "checker/trace_history.h"

namespace cim::chk {

void TraceHistoryBuilder::observe(const obs::ParsedTraceEvent& ev) {
  const bool issue = ev.name == "read_issue" || ev.name == "write_issue";
  const bool done = ev.name == "read_done" || ev.name == "write_done";
  if (ev.cat != "mcs" || (!issue && !done)) {
    ++stats_.ignored;
    return;
  }
  ProcId proc;
  if (!ev.field_proc("proc", proc)) {
    ++stats_.ignored;
    return;
  }
  const bool is_write = ev.name[0] == 'w';
  const VarId var{static_cast<std::uint32_t>(ev.field_uint("var"))};

  PendingOp& slot = pending_[proc];
  if (issue) {
    if (slot.active) ++stats_.pending;  // overwritten: its done was dropped
    slot.kind = is_write ? OpKind::kWrite : OpKind::kRead;
    slot.var = var;
    slot.value = is_write ? ev.field_int("val") : kInitValue;
    slot.issued_ns = ev.t;
    slot.active = true;
    if (is_write) {
      // A wid reappearing on another issue is the IS-process re-issuing an
      // application write into the sibling system: the propagated copy.
      slot.is_isp = !seen_wids_.insert(ev.field_uint("wid")).second;
    } else {
      slot.is_isp = false;
    }
    return;
  }
  // A done record: must match the open slot in kind and variable.
  if (!slot.active || (slot.kind == OpKind::kWrite) != is_write ||
      slot.var != var) {
    ++stats_.orphan_dones;
    return;
  }
  const Value value = is_write ? slot.value : ev.field_int("val");
  builder_.add(proc, slot.is_isp, slot.kind, slot.var, value,
               sim::Time{slot.issued_ns}, sim::Time{ev.t});
  slot.active = false;
  ++stats_.ops;
  if (slot.is_isp) ++stats_.isp_ops;
}

History TraceHistoryBuilder::build() {
  for (const auto& [proc, slot] : pending_) {
    if (slot.active) ++stats_.pending;
  }
  pending_.clear();
  seen_wids_.clear();
  return builder_.build();
}

}  // namespace cim::chk

// Operation response-time statistics, computed from recorded histories
// (experiment E4: "our IS-protocols should not affect the response time a
// process observes when issuing a memory operation").
#pragma once

#include <cstdint>

#include "checker/history.h"

namespace cim::stats {

struct ResponseStats {
  std::uint64_t count = 0;
  double mean_ns = 0.0;
  std::int64_t max_ns = 0;
};

/// Response times of the operations of one kind in a history (IS-process
/// operations excluded — they are protocol machinery, not application ops).
ResponseStats response_stats(const chk::History& history, chk::OpKind kind);

}  // namespace cim::stats

// Supporting experiment: visibility-latency *distribution* under jitter.
//
// The Section-6 analysis gives worst-case bounds (l, 3l+2d); real links
// jitter. This bench runs the star interconnection with uniformly jittered
// delays (intra in [l/2, l], link in [d/2, d]) and reports the distribution
// of per-write visibility latency across all replicas, against the
// worst-case bound computed from the maxima.
#include <iostream>

#include "bench_report.h"
#include "bench_util.h"
#include "stats/summary.h"
#include "stats/table.h"
#include "stats/visibility.h"

namespace {

using namespace cim;

stats::DurationSummary run(std::size_t m, sim::Duration l, sim::Duration d,
                           std::uint64_t seed) {
  isc::FederationConfig cfg;
  cfg.seed = seed;
  cfg.isp_mode = isc::IspMode::kPerLink;
  for (std::size_t s = 0; s < m; ++s) {
    mcs::SystemConfig sc;
    sc.id = SystemId{static_cast<std::uint16_t>(s)};
    sc.num_app_processes = 2;
    sc.protocol = proto::anbkh_protocol();
    sc.seed = seed * 100 + s;
    sc.intra_delay = [l] {
      return std::make_unique<net::UniformDelay>(sim::Duration{l.ns / 2}, l);
    };
    cfg.systems.push_back(std::move(sc));
  }
  for (auto [a, b] : bench::edges_of(bench::Topology::kStar, m)) {
    isc::LinkSpec link;
    link.system_a = a;
    link.system_b = b;
    link.delay = [d] {
      return std::make_unique<net::UniformDelay>(sim::Duration{d.ns / 2}, d);
    };
    cfg.links.push_back(std::move(link));
  }
  isc::Federation fed(std::move(cfg));

  stats::VisibilityTracker vis;
  fed.add_observer(&vis);

  wl::UniformConfig wc;
  wc.ops_per_process = 25;
  wc.write_fraction = 1.0;
  wc.num_vars = 4;
  wc.think_max = sim::milliseconds(30);
  wc.seed = seed * 3 + 2;
  auto runners = wl::install_uniform(fed, wc);
  fed.run();

  return stats::summarize(vis.all_visibilities(bench::all_app_procs(fed)));
}

}  // namespace

int main() {
  std::cout << "Visibility-latency distribution, star of m systems, jittered "
               "delays\nintra in [l/2, l], link in [d/2, d]; paper worst case "
               "3l + 2d (per-link ISPs)\n\n";

  bench::JsonReport report("visibility_distribution");
  const sim::Duration l = sim::milliseconds(2);
  const sim::Duration d = sim::milliseconds(10);
  stats::Table table({"m", "writes", "p50", "p90", "p99", "max",
                      "bound 3l+2d", "within bound"});
  for (std::size_t m : {std::size_t{2}, std::size_t{3}, std::size_t{5},
                        std::size_t{8}}) {
    const auto s = run(m, l, d, 17);
    const sim::Duration bound = 3 * l + 2 * d;
    table.add_row(m, s.count, bench::ms_string(s.p50), bench::ms_string(s.p90),
                  bench::ms_string(s.p99), bench::ms_string(s.max),
                  bench::ms_string(bound), s.max <= bound ? "yes" : "NO");
    report.row("m" + std::to_string(m))
        .field("m", m)
        .field("samples", static_cast<std::int64_t>(s.count))
        .field_ns("p50", s.p50)
        .field_ns("p90", s.p90)
        .field_ns("p99", s.p99)
        .field_ns("max", s.max)
        .field_ns("bound", bound)
        .field("within_bound", s.max <= bound);
  }
  table.print();

  std::cout << "\nTypical visibility sits well below the worst case: only "
               "writes that cross the\nfull leaf-hub-leaf path at maximum "
               "jitter approach 3l + 2d.\n";
  return 0;
}

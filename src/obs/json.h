// Minimal JSON emission shared by the observability exporters and the bench
// report writer. The matching parser (used by the cim_trace CLI and the
// offline monitor to read trace JSONL back) lives in trace_read.h; the
// schemas are specified in docs/OBSERVABILITY.md and docs/BENCHMARKS.md and
// also consumed by external tooling (jq, python, Perfetto, ...).
#pragma once

#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string_view>
#include <vector>

namespace cim::obs {

/// Write `s` as a JSON string literal (quotes included, control characters
/// and quote/backslash escaped).
inline void json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Shortest %g rendering that still round-trips typical metric values.
inline void json_double(std::ostream& os, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  os << buf;
}

/// Comma-and-nesting bookkeeping for hand-emitted JSON. Usage:
///
///   JsonWriter w(os);
///   w.begin_object();
///   w.kv("v", 1);
///   w.key("rows"); w.begin_array(); ... w.end_array();
///   w.end_object();
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array() { open('['); }
  void end_array() { close(']'); }

  void key(std::string_view k) {
    comma();
    json_string(os_, k);
    os_ << ':';
    pending_value_ = true;
  }

  void value(std::string_view v) { comma(); json_string(os_, v); }
  void value(const char* v) { value(std::string_view(v)); }
  void value(bool v) { comma(); os_ << (v ? "true" : "false"); }
  void value(double v) { comma(); json_double(os_, v); }
  void value(std::int64_t v) { comma(); os_ << v; }
  void value(std::uint64_t v) { comma(); os_ << v; }
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }

  template <typename T>
  void kv(std::string_view k, const T& v) {
    key(k);
    value(v);
  }

 private:
  void open(char c) {
    comma();
    os_ << c;
    need_comma_.push_back(false);
  }
  void close(char c) {
    need_comma_.pop_back();
    os_ << c;
    mark_written();
  }
  void comma() {
    if (pending_value_) {
      pending_value_ = false;  // value follows its key, no comma
      return;
    }
    if (!need_comma_.empty() && need_comma_.back()) os_ << ',';
    mark_written();
  }
  void mark_written() {
    if (!need_comma_.empty()) need_comma_.back() = true;
  }

  std::ostream& os_;
  std::vector<bool> need_comma_;
  bool pending_value_ = false;
};

}  // namespace cim::obs

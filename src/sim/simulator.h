// Deterministic discrete-event simulator.
//
// All protocol code in this repository is event-driven; the simulator is the
// default executor. Events scheduled for the same instant fire in scheduling
// order (a monotone sequence number breaks ties), which makes every execution
// a deterministic function of the configuration and the RNG seeds.
//
// Hot-path layout (the allocation-free invariant, docs/ARCHITECTURE.md):
// Action is a cim::SmallFn — a 64-byte-inline, move-only callable — so a
// scheduled closure lives inside the event slot instead of behind a
// std::function heap allocation. The priority queue itself holds 24-byte
// {time, seq, slot} PODs; the actions sit in a side table of recycled slots,
// so heap sift-up/down moves trivially-copyable entries and a slot freed by
// step() is reused by the next at() without touching the allocator.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/small_fn.h"
#include "sim/time.h"

namespace cim::sim {

class Simulator {
 public:
  using Action = SmallFn<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedule `action` to run at absolute time `t` (must be >= now()).
  /// Inline: this is the single hottest call in the repository — every
  /// message delivery, timer and continuation passes through here.
  void at(Time t, Action action) {
    // Always-on: a past-dated event is reachable from protocol/config code
    // and would silently corrupt the causal order.
    CIM_CHECK_MSG(t >= now_,
                  "scheduling into the past: " << t << " < " << now_);
    const std::uint32_t slot = acquire_slot(std::move(action));
    heap_.push_back(HeapEntry{t, next_seq_++, slot});
    std::push_heap(heap_.begin(), heap_.end(), FiresAfter{});
    if (heap_.size() > max_pending_) max_pending_ = heap_.size();
  }

  /// Schedule `action` to run `d` after the current time.
  void after(Duration d, Action action) { at(now_ + d, std::move(action)); }

  /// Schedule `action` to run at the current time, after already-pending
  /// same-time events ("post to the end of the current instant").
  void post(Action action) { at(now_, std::move(action)); }

  /// Run until the event queue drains. Returns the number of events fired.
  std::uint64_t run();

  /// Run until the queue drains or simulated time would exceed `deadline`;
  /// events after the deadline remain queued and now() advances to the
  /// deadline if the queue drained first. Returns events fired.
  std::uint64_t run_until(Time deadline);

  /// Fire exactly one event if any is pending. Returns false if queue empty.
  bool step() {
    if (heap_.empty()) return false;
    std::pop_heap(heap_.begin(), heap_.end(), FiresAfter{});
    const HeapEntry ev = heap_.back();
    heap_.pop_back();
    now_ = ev.time;
    ++fired_;
    // Move the action out and recycle the slot *before* running it: the
    // action may schedule (and the recycled slot lets that schedule reuse
    // our storage).
    Action action = std::move(slots_[ev.slot]);
    free_slots_.push_back(ev.slot);
    action();
    return true;
  }

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

  /// High-water mark of the event queue since construction (the
  /// `sim.queue_depth_peak` gauge of docs/OBSERVABILITY.md).
  std::size_t max_pending() const { return max_pending_; }

  /// Time of the earliest pending event. Requires !empty().
  Time next_event_time() const { return heap_.front().time; }

  /// Total events fired since construction.
  std::uint64_t events_fired() const { return fired_; }

  /// Pre-size the queue for `n` simultaneous events so a run with a known
  /// bound never grows the heap mid-flight (alloc_test warm-up hook).
  void reserve(std::size_t n);

 private:
  // What the binary heap actually sorts: a trivially-copyable handle. The
  // action lives in slots_[slot] until the event fires.
  struct HeapEntry {
    Time time;
    std::uint64_t seq;  // tie-break: FIFO among same-time events
    std::uint32_t slot;
  };
  // Min-heap ordering: "a fires after b". A function object (not a function
  // pointer) so std::push_heap/pop_heap inline the comparison.
  struct FiresAfter {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::uint32_t acquire_slot(Action&& action) {
    if (!free_slots_.empty()) {
      const std::uint32_t slot = free_slots_.back();
      free_slots_.pop_back();
      slots_[slot] = std::move(action);
      return slot;
    }
    const std::uint32_t slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(std::move(action));
    return slot;
  }

  Time now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_ = 0;
  std::size_t max_pending_ = 0;
  std::vector<HeapEntry> heap_;
  std::vector<Action> slots_;        // event actions, indexed by HeapEntry::slot
  std::vector<std::uint32_t> free_slots_;  // recycled slot indices
};

}  // namespace cim::sim

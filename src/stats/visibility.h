// Visibility-latency tracking for the Section-6 experiments.
//
// The paper's latency `l` is "the time until a value written is visible in
// any other process". The tracker records, for every written value, the
// issue time and the first time each replica applied it; visibility latency
// towards a set of target replicas is the maximum apply time minus the issue
// time. With the FixedDelay models of bench_latency this reproduces the
// 3l + 2d worst case exactly.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "mcs/memory_observer.h"

namespace cim::stats {

class VisibilityTracker final : public mcs::MemoryObserver {
 public:
  void on_write_issued(ProcId writer, VarId var, Value value,
                       sim::Time t) override;
  void on_apply(ProcId replica, VarId var, Value value, sim::Time t) override;

  /// Issue time of the write of `value`; nullopt if not observed.
  std::optional<sim::Time> issue_time(Value value) const;

  /// First time `replica` applied `value`; nullopt if it never did.
  std::optional<sim::Time> apply_time(Value value, ProcId replica) const;

  /// Latency until `value` was visible at all `targets`; nullopt if some
  /// target never applied it.
  std::optional<sim::Duration> visibility(Value value,
                                          const std::vector<ProcId>& targets) const;

  /// Worst visibility latency over all observed writes; nullopt if any write
  /// never became visible everywhere (a liveness failure) or none observed.
  std::optional<sim::Duration> worst_visibility(
      const std::vector<ProcId>& targets) const;

  /// All per-write visibility latencies towards `targets` (only writes that
  /// reached every target).
  std::vector<sim::Duration> all_visibilities(
      const std::vector<ProcId>& targets) const;

  std::size_t writes_observed() const { return issues_.size(); }

 private:
  struct Issue {
    ProcId writer;
    sim::Time time;
  };
  std::map<Value, Issue> issues_;
  std::map<Value, std::map<ProcId, sim::Time>> applies_;  // first apply only
};

}  // namespace cim::stats

// Experiment E7: link outages ("dial-up" interconnection, Section 1.1).
// Updates queue while the inter-system link is down and drain in FIFO order
// when it comes up; causality and delivery are preserved throughout.
#include <gtest/gtest.h>

#include "checker/causal_checker.h"
#include "helpers.h"
#include "stats/visibility.h"

namespace cim::isc {
namespace {

using test::X;

FederationConfig dialup_config(std::uint64_t seed,
                               sim::Duration period, sim::Duration up) {
  FederationConfig cfg = test::two_systems(2, proto::anbkh_protocol(),
                                           proto::anbkh_protocol(), seed);
  cfg.links[0].delay = [] {
    return std::make_unique<net::FixedDelay>(sim::milliseconds(2));
  };
  cfg.links[0].availability = [period, up] {
    return std::make_unique<net::PeriodicDuty>(period, up);
  };
  return cfg;
}

TEST(Dialup, UpdateWaitsForUpWindow) {
  // Link up for 10ms in every 100ms. A write at t=20ms (down) crosses only
  // at the next window (t=100ms).
  Federation fed(dialup_config(1, sim::milliseconds(100),
                               sim::milliseconds(10)));
  auto& sim = fed.simulator();
  stats::VisibilityTracker vis;
  fed.add_observer(&vis);

  sim.at(sim::Time{} + sim::milliseconds(20),
         [&] { fed.system(0).app(0).write(X, 1); });
  fed.run();

  // Visible in S1 only after the 100ms window opened.
  const ProcId remote_reader{SystemId{1}, 0};
  auto applied = vis.apply_time(1, remote_reader);
  ASSERT_TRUE(applied.has_value());
  EXPECT_GE(*applied, sim::Time{} + sim::milliseconds(100));
  EXPECT_LE(*applied, sim::Time{} + sim::milliseconds(110));
}

TEST(Dialup, NothingIsLostAcrossOutages) {
  Federation fed(dialup_config(2, sim::milliseconds(50), sim::milliseconds(5)));
  auto& sim = fed.simulator();
  // 20 writes spread over several outage periods.
  for (int i = 0; i < 20; ++i) {
    sim.at(sim::Time{} + sim::milliseconds(7 * i),
           [&, i] { fed.system(0).app(0).write(VarId{0}, 100 + i); });
  }
  fed.run();
  // Every value reached S1's IS-process (FIFO: the last write is last).
  EXPECT_EQ(fed.interconnector().shared_isp(1).pairs_received(), 20u);
  auto& remote = dynamic_cast<proto::AnbkhProcess&>(fed.system(1).mcs(0));
  EXPECT_EQ(remote.replica_value(VarId{0}), 119);
}

class DialupSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DialupSweep, RandomWorkloadUnderOutagesIsCausal) {
  FederationConfig cfg = dialup_config(GetParam(), sim::milliseconds(40),
                                       sim::milliseconds(8));
  Federation fed(std::move(cfg));
  wl::UniformConfig wc;
  wc.ops_per_process = 30;
  wc.num_vars = 4;
  wc.think_max = sim::milliseconds(10);
  wc.seed = GetParam() * 17 + 9;
  auto runners = wl::install_uniform(fed, wc);
  fed.run();
  for (const auto& r : runners) ASSERT_TRUE(r->done());
  auto res = chk::CausalChecker{}.check(fed.federation_history());
  EXPECT_TRUE(res.ok()) << chk::to_string(res.pattern) << ": " << res.detail;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DialupSweep,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(Dialup, ExtremeDutyCycleStillDelivers) {
  // Up only 1ms in every 200ms: severe but functional.
  Federation fed(dialup_config(3, sim::milliseconds(200), sim::milliseconds(1)));
  fed.system(0).app(0).write(X, 7);
  fed.system(1).app(0).write(VarId{1}, 8);
  fed.run();
  Value x_in_1 = -1, y_in_0 = -1;
  fed.system(1).app(1).read(X, [&](Value v) { x_in_1 = v; });
  fed.system(0).app(1).read(VarId{1}, [&](Value v) { y_in_0 = v; });
  fed.run();
  EXPECT_EQ(x_in_1, 7);
  EXPECT_EQ(y_in_0, 8);
}

}  // namespace
}  // namespace cim::isc

// Strong identifier types used throughout the library.
//
// The paper's model has *systems* S^0, S^1, ..., each containing *application
// processes* attached 1:1 to *MCS-processes*. A process is therefore named by
// a (system, local index) pair. Variables of the shared memory are named by
// VarId. All identifiers are small integers wrapped in distinct types so that
// they cannot be accidentally interchanged.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

namespace cim {

/// Identifier of one DSM system (S^q in the paper).
struct SystemId {
  std::uint16_t value = 0;

  friend constexpr auto operator<=>(SystemId, SystemId) = default;
};

/// A process within a system: the pair (system, local index).
/// Application processes and IS-processes are both named this way; the
/// IS-process of a link occupies a dedicated local slot (see mcs::System).
struct ProcId {
  SystemId system;
  std::uint16_t index = 0;

  friend constexpr auto operator<=>(ProcId, ProcId) = default;
};

/// Identifier of a shared variable (an index into a variable table).
struct VarId {
  std::uint32_t value = 0;

  friend constexpr auto operator<=>(VarId, VarId) = default;
};

/// Globally unique identifier of a memory operation within one execution.
struct OpId {
  std::uint64_t value = 0;

  friend constexpr auto operator<=>(OpId, OpId) = default;
};

/// Globally unique identifier of a *write* within one execution: the origin
/// process packed with its per-process write sequence number. Minted once at
/// the origin application process and carried unchanged across protocol
/// update messages, interconnect pairs, and every lifecycle trace event, so a
/// single write can be followed end-to-end through the federation.
///
/// Layout: (origin system << 48) | (origin local index << 32) | seq.
/// Sequence numbers start at 1; value 0 is "no write id".
struct WriteId {
  std::uint64_t value = 0;

  static constexpr WriteId make(ProcId origin, std::uint32_t seq) {
    return WriteId{(static_cast<std::uint64_t>(origin.system.value) << 48) |
                   (static_cast<std::uint64_t>(origin.index) << 32) | seq};
  }
  constexpr bool valid() const { return value != 0; }
  constexpr ProcId origin() const {
    return ProcId{SystemId{static_cast<std::uint16_t>(value >> 48)},
                  static_cast<std::uint16_t>((value >> 32) & 0xFFFF)};
  }
  constexpr std::uint32_t seq() const {
    return static_cast<std::uint32_t>(value);
  }

  friend constexpr auto operator<=>(WriteId, WriteId) = default;
};

inline std::ostream& operator<<(std::ostream& os, SystemId s) {
  return os << "S" << s.value;
}
inline std::ostream& operator<<(std::ostream& os, ProcId p) {
  return os << "p(" << p.system.value << "," << p.index << ")";
}
inline std::ostream& operator<<(std::ostream& os, VarId v) {
  return os << "x" << v.value;
}
inline std::ostream& operator<<(std::ostream& os, OpId o) {
  return os << "op#" << o.value;
}
inline std::ostream& operator<<(std::ostream& os, WriteId w) {
  const ProcId o = w.origin();
  return os << "w(" << o.system.value << "," << o.index << ")#" << w.seq();
}

inline std::string to_string(ProcId p) {
  return "p(" + std::to_string(p.system.value) + "," + std::to_string(p.index) + ")";
}

}  // namespace cim

namespace std {
template <>
struct hash<cim::SystemId> {
  size_t operator()(cim::SystemId s) const noexcept {
    return std::hash<std::uint16_t>{}(s.value);
  }
};
template <>
struct hash<cim::ProcId> {
  size_t operator()(cim::ProcId p) const noexcept {
    return (static_cast<size_t>(p.system.value) << 16) ^ p.index;
  }
};
template <>
struct hash<cim::VarId> {
  size_t operator()(cim::VarId v) const noexcept {
    return std::hash<std::uint32_t>{}(v.value);
  }
};
template <>
struct hash<cim::OpId> {
  size_t operator()(cim::OpId o) const noexcept {
    return std::hash<std::uint64_t>{}(o.value);
  }
};
template <>
struct hash<cim::WriteId> {
  size_t operator()(cim::WriteId w) const noexcept {
    return std::hash<std::uint64_t>{}(w.value);
  }
};
}  // namespace std

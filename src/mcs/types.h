// Callback types of the memory-consistency-system (MCS) interface.
//
// An application process issues read/write *calls* to its MCS-process and
// blocks until the *response* arrives (Section 2). In this event-driven
// implementation the response is a callback; the blocking discipline is
// enforced by AppProcess, which serializes one outstanding operation per
// process.
#pragma once

#include <functional>

#include "common/ids.h"
#include "common/value.h"

namespace cim::mcs {

using ReadCallback = std::function<void(Value)>;
using WriteCallback = std::function<void()>;

}  // namespace cim::mcs

#include "checker/trace_io.h"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <sstream>
#include <vector>

namespace cim::chk {

void write_trace(const History& history, std::ostream& os) {
  os << "# cim trace v1: kind system proc var value invoked_ns responded_ns"
        " [isp]\n";
  // Interleave by invocation time so the file reads chronologically while
  // preserving per-process program order (stable for equal times). Sorting
  // an index array over a materialized timestamp column keeps this free of
  // per-Op structs.
  const std::size_t n = history.size();
  std::vector<std::int64_t> invoked(n);
  for (std::size_t i = 0; i < n; ++i) invoked[i] = history.invoked(i).ns;
  std::vector<std::uint32_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return invoked[a] < invoked[b];
                   });
  std::vector<ProcId> procs(n);
  for (std::size_t p = 0; p < history.num_processes(); ++p) {
    const History::Span s = history.process_span(p);
    for (std::size_t i = s.begin; i < s.end; ++i) {
      procs[i] = history.process(p);
    }
  }
  for (const std::uint32_t i : idx) {
    os << (history.kind(i) == OpKind::kRead ? "r" : "w") << " "
       << procs[i].system.value << " " << procs[i].index << " "
       << history.var(i).value << " " << history.value(i) << " " << invoked[i]
       << " " << history.responded(i).ns;
    if (history.is_isp(i)) os << " isp";
    os << "\n";
  }
}

std::string to_trace(const History& history) {
  std::ostringstream os;
  write_trace(history, os);
  return os.str();
}

ParseResult read_trace(std::istream& is) {
  // Stream straight into the columnar builder: per-process program order is
  // line order, which is exactly the order HistoryBuilder wants, so no Op
  // vector is ever materialized.
  HistoryBuilder b;
  std::string line;
  std::size_t line_no = 0;

  auto fail = [&](const std::string& msg) {
    ParseResult r;
    r.error = "line " + std::to_string(line_no) + ": " + msg;
    return r;
  };

  while (std::getline(is, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind)) continue;  // blank or comment-only line
    if (kind != "r" && kind != "w") {
      return fail("expected 'r' or 'w', got '" + kind + "'");
    }
    std::uint32_t system = 0, proc = 0, var = 0;
    std::int64_t value = 0;
    if (!(ls >> system >> proc >> var >> value)) {
      return fail("expected: kind system proc var value");
    }
    if (system > UINT16_MAX || proc > UINT16_MAX) {
      return fail("system/proc id out of range");
    }
    std::int64_t invoked = 0, responded = 0;
    if (ls >> invoked) {
      if (!(ls >> responded)) return fail("invoked time without responded");
    }
    bool is_isp = false;
    std::string flag;
    if (ls >> flag) {
      if (flag != "isp") return fail("unknown trailer '" + flag + "'");
      is_isp = true;
    }
    b.add(ProcId{SystemId{static_cast<std::uint16_t>(system)},
                 static_cast<std::uint16_t>(proc)},
          is_isp, kind == "r" ? OpKind::kRead : OpKind::kWrite, VarId{var},
          value, sim::Time{invoked}, sim::Time{responded});
  }
  ParseResult r;
  r.history = b.build();
  return r;
}

ParseResult parse_trace(const std::string& text) {
  std::istringstream is(text);
  return read_trace(is);
}

}  // namespace cim::chk

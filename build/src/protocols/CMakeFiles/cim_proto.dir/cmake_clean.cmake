file(REMOVE_RECURSE
  "CMakeFiles/cim_proto.dir/anbkh.cpp.o"
  "CMakeFiles/cim_proto.dir/anbkh.cpp.o.d"
  "CMakeFiles/cim_proto.dir/aw_seq.cpp.o"
  "CMakeFiles/cim_proto.dir/aw_seq.cpp.o.d"
  "CMakeFiles/cim_proto.dir/cbcast_dsm.cpp.o"
  "CMakeFiles/cim_proto.dir/cbcast_dsm.cpp.o.d"
  "CMakeFiles/cim_proto.dir/lazy_batch.cpp.o"
  "CMakeFiles/cim_proto.dir/lazy_batch.cpp.o.d"
  "CMakeFiles/cim_proto.dir/partial_rep.cpp.o"
  "CMakeFiles/cim_proto.dir/partial_rep.cpp.o.d"
  "CMakeFiles/cim_proto.dir/tob_causal.cpp.o"
  "CMakeFiles/cim_proto.dir/tob_causal.cpp.o.d"
  "libcim_proto.a"
  "libcim_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cim_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

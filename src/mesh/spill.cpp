#include "mesh/spill.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "net/reliable_transport.h"
#include "net/wire.h"

namespace cim::mesh {

namespace {

constexpr char kMagic[4] = {'C', 'I', 'M', 'J'};
constexpr std::uint8_t kJournalVersion = 1;

using Buf = std::vector<std::uint8_t>;

void put_u8(Buf& b, std::uint8_t v) { b.push_back(v); }

void put_u32(Buf& b, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(Buf& b, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

// Cursor over the loaded file. Unlike the wire Reader this one must
// distinguish "clean EOF at a record boundary" from "torn mid-record".
struct Cursor {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;
  bool torn = false;

  std::size_t remaining() const { return size - pos; }
  bool u8(std::uint8_t& v) {
    if (remaining() < 1) { torn = true; return false; }
    v = data[pos++];
    return true;
  }
  bool u32(std::uint32_t& v) {
    if (remaining() < 4) { torn = true; return false; }
    v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(data[pos + i]) << (8 * i);
    pos += 4;
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (remaining() < 8) { torn = true; return false; }
    v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(data[pos + i]) << (8 * i);
    pos += 8;
    return true;
  }
  bool bytes(std::uint8_t* dst, std::size_t n) {
    if (remaining() < n) { torn = true; return false; }
    std::memcpy(dst, data + pos, n);
    pos += n;
    return true;
  }
};

}  // namespace

SpillJournal::~SpillJournal() { close(); }

void SpillJournal::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void SpillJournal::append(const Buf& rec) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) return;
  const std::uint8_t* p = rec.data();
  std::size_t left = rec.size();
  while (left > 0) {
    const ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd_);  // a dead journal must not wedge the data path
      fd_ = -1;
      return;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

bool SpillJournal::create(const std::string& path, const SpillState& state) {
  close();
  const int fd =
      ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fd_ = fd;
  }

  Buf b;
  b.insert(b.end(), kMagic, kMagic + 4);
  put_u8(b, kJournalVersion);
  put_u64(b, state.node_id);
  put_u64(b, state.topo_hash);
  put_u64(b, state.seed);
  put_u32(b, state.generation);
  put_u32(b, static_cast<std::uint32_t>(state.links.size()));
  append(b);

  // Compact the prior generation's state into synthetic records so a resumed
  // node's journal carries everything a *second* crash would need.
  for (std::size_t e = 0; e < state.links.size(); ++e) {
    const SpillLinkState& l = state.links[e];
    if (l.recv_expected != 0 || l.data_delivered != 0)
      record_delivered(e, l.recv_expected, l.data_delivered);
    // data_sent must be on disk even with an empty journal window, and
    // replayable frames re-enter as 'S' records (data_sent repeats; the
    // loader takes the max).
    if (l.data_sent != 0 && l.frames.empty())
      record_sent(e, l.data_sent, nullptr, 0);
    for (const auto& f : l.frames)
      record_sent(e, l.data_sent, f.data(), f.size());
    if (l.acked != 0) record_acked(e, l.acked);
    if (l.peer_done)
      record_ctrl_delivered(e, net::wire::ControlMsg::kDone, l.peer_pairs);
    if (l.peer_bye)
      record_ctrl_delivered(e, net::wire::ControlMsg::kBye, 0);
    if (l.done_sent) record_ctrl_sent(e, net::wire::ControlMsg::kDone);
    if (l.bye_sent) record_ctrl_sent(e, net::wire::ControlMsg::kBye);
  }
  return ok();
}

void SpillJournal::record_sent(std::size_t link, std::uint64_t data_sent,
                               const std::uint8_t* frame, std::size_t len) {
  Buf b;
  put_u8(b, 'S');
  put_u32(b, static_cast<std::uint32_t>(link));
  put_u64(b, data_sent);
  put_u32(b, static_cast<std::uint32_t>(len));
  if (len > 0) b.insert(b.end(), frame, frame + len);
  append(b);
}

void SpillJournal::record_acked(std::size_t link, std::uint64_t acked) {
  Buf b;
  put_u8(b, 'A');
  put_u32(b, static_cast<std::uint32_t>(link));
  put_u64(b, acked);
  append(b);
}

void SpillJournal::record_delivered(std::size_t link,
                                    std::uint64_t recv_expected,
                                    std::uint64_t data_delivered) {
  Buf b;
  put_u8(b, 'D');
  put_u32(b, static_cast<std::uint32_t>(link));
  put_u64(b, recv_expected);
  put_u64(b, data_delivered);
  append(b);
}

void SpillJournal::record_ctrl_delivered(std::size_t link, std::uint8_t code,
                                         std::uint64_t a) {
  Buf b;
  put_u8(b, 'K');
  put_u32(b, static_cast<std::uint32_t>(link));
  put_u8(b, code);
  put_u64(b, a);
  append(b);
}

void SpillJournal::record_ctrl_sent(std::size_t link, std::uint8_t code) {
  Buf b;
  put_u8(b, 'L');
  put_u32(b, static_cast<std::uint32_t>(link));
  put_u8(b, code);
  append(b);
}

bool SpillJournal::load(const std::string& path, SpillState& out,
                        std::string& error) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    error = "cannot open journal '" + path + "': " + std::strerror(errno);
    return false;
  }
  std::vector<std::uint8_t> data;
  std::uint8_t chunk[1 << 16];
  ssize_t n;
  while ((n = ::read(fd, chunk, sizeof(chunk))) > 0)
    data.insert(data.end(), chunk, chunk + n);
  ::close(fd);

  Cursor c{data.data(), data.size()};
  std::uint8_t magic[4], version = 0;
  std::uint32_t n_links = 0, generation = 0;
  if (!c.bytes(magic, 4) || std::memcmp(magic, kMagic, 4) != 0) {
    error = "journal '" + path + "': bad magic";
    return false;
  }
  if (!c.u8(version) || version != kJournalVersion) {
    error = "journal '" + path + "': unknown version";
    return false;
  }
  if (!c.u64(out.node_id) || !c.u64(out.topo_hash) || !c.u64(out.seed) ||
      !c.u32(generation) || !c.u32(n_links)) {
    error = "journal '" + path + "': truncated header";
    return false;
  }
  if (n_links > 4096) {
    error = "journal '" + path + "': absurd link count";
    return false;
  }
  out.generation = generation;
  out.links.assign(n_links, SpillLinkState{});

  // Sent frames keyed by seq (decoded from the frame bytes) so 'A' trimming
  // and replay ordering are exact even if records interleave oddly.
  std::vector<std::vector<std::pair<std::uint64_t, Buf>>> sent(n_links);

  while (c.remaining() > 0 && !c.torn) {
    std::uint8_t tag;
    std::uint32_t link;
    if (!c.u8(tag) || !c.u32(link)) break;
    if (link >= n_links) {
      error = "journal '" + path + "': record for unknown link";
      return false;
    }
    SpillLinkState& l = out.links[link];
    switch (tag) {
      case 'S': {
        std::uint64_t data_sent;
        std::uint32_t len;
        if (!c.u64(data_sent) || !c.u32(len)) break;
        if (len > (std::uint32_t{1} << 21)) {
          error = "journal '" + path + "': absurd frame length";
          return false;
        }
        Buf frame(len);
        if (len > 0 && !c.bytes(frame.data(), len)) break;
        l.data_sent = std::max(l.data_sent, data_sent);
        if (len > 0) {
          net::wire::DecodeResult res =
              net::wire::decode(frame.data(), frame.size());
          if (!res.ok()) {
            error = "journal '" + path + "': undecodable sent frame";
            return false;
          }
          auto* tf = dynamic_cast<net::TransportFrame*>(res.msg.get());
          if (tf == nullptr) {
            error = "journal '" + path + "': sent record is not a frame";
            return false;
          }
          const std::uint64_t seq = tf->seq;
          l.send_next = std::max(l.send_next, seq + 1);
          sent[link].emplace_back(seq, std::move(frame));
        }
        break;
      }
      case 'A': {
        std::uint64_t acked;
        if (!c.u64(acked)) break;
        l.acked = std::max(l.acked, acked);
        break;
      }
      case 'D': {
        std::uint64_t recv_expected, data_delivered;
        if (!c.u64(recv_expected) || !c.u64(data_delivered)) break;
        l.recv_expected = std::max(l.recv_expected, recv_expected);
        l.data_delivered = std::max(l.data_delivered, data_delivered);
        break;
      }
      case 'K': {
        std::uint8_t code;
        std::uint64_t a;
        if (!c.u8(code) || !c.u64(a)) break;
        if (code == net::wire::ControlMsg::kDone) {
          l.peer_done = true;
          l.peer_pairs = a;
        } else if (code == net::wire::ControlMsg::kBye) {
          l.peer_bye = true;
        }
        break;
      }
      case 'L': {
        std::uint8_t code;
        if (!c.u8(code)) break;
        if (code == net::wire::ControlMsg::kDone) l.done_sent = true;
        if (code == net::wire::ControlMsg::kBye) l.bye_sent = true;
        break;
      }
      default:
        // Unknown tag: cannot know its length — treat like a torn tail.
        c.torn = true;
        break;
    }
  }

  for (std::uint32_t e = 0; e < n_links; ++e) {
    SpillLinkState& l = out.links[e];
    // Replay window: unacked frames in seq order, acked ones dropped,
    // duplicate seqs (shouldn't occur, but a journal is an input) collapsed.
    std::sort(sent[e].begin(), sent[e].end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::uint64_t prev_seq = ~std::uint64_t{0};
    for (auto& [seq, frame] : sent[e]) {
      if (seq < l.acked || seq == prev_seq) continue;
      prev_seq = seq;
      l.frames.push_back(std::move(frame));
    }
    l.send_next = std::max(l.send_next, l.acked);
  }
  return true;
}

}  // namespace cim::mesh

// Quickstart: interconnect two causal DSM systems and watch a write
// propagate.
//
//   $ ./quickstart
//
// Builds two systems of two application processes each (both running the
// ANBKH causal memory protocol), joins them with one IS link (Fig. 1 of the
// paper), performs a cross-system causal chain, and verifies the recorded
// computation with the causal-consistency checker.
#include <iostream>

#include "checker/causal_checker.h"
#include "interconnect/federation.h"
#include "protocols/anbkh.h"

using namespace cim;

int main() {
  // 1. Describe the federation: two systems, one link.
  isc::FederationConfig cfg;
  for (std::uint16_t s = 0; s < 2; ++s) {
    mcs::SystemConfig sys;
    sys.id = SystemId{s};
    sys.num_app_processes = 2;
    sys.protocol = proto::anbkh_protocol();
    sys.seed = 100 + s;
    cfg.systems.push_back(std::move(sys));
  }
  isc::LinkSpec link;
  link.system_a = 0;
  link.system_b = 1;
  cfg.links.push_back(link);

  // 2. Build it. The Interconnector reserves one IS-process per system,
  //    wires the reliable FIFO link, and picks the IS-protocol variant
  //    (protocol 1 here: ANBKH satisfies the Causal Updating Property).
  isc::Federation fed(std::move(cfg));
  std::cout << "IS-process of S0 uses pre-update reads? "
            << (fed.interconnector().shared_isp(0).pre_reads_enabled()
                    ? "yes (IS-protocol 2)"
                    : "no (IS-protocol 1)")
            << "\n";

  const VarId x{0}, y{1};

  // 3. A causal chain that crosses the interconnection twice:
  //    S0.p0 writes x=1; S1.p0 reads it and writes y=2; S0.p1 reads both.
  fed.system(0).app(0).write(x, 1);
  fed.run();  // propagate

  fed.system(1).app(0).read(x, [&](Value v) {
    std::cout << "S1.p0 read x = " << v << "\n";
    fed.system(1).app(0).write(y, 2);
  });
  fed.run();

  fed.system(0).app(1).read(y, [&](Value v) {
    std::cout << "S0.p1 read y = " << v << "\n";
  });
  fed.system(0).app(1).read(x, [&](Value v) {
    std::cout << "S0.p1 read x = " << v
              << "  (must be 1: w(x)1 causally precedes w(y)2)\n";
  });
  fed.run();

  // 4. Verify the whole computation α^T (Theorem 1 says it must be causal).
  auto verdict = chk::CausalChecker{}.check(fed.federation_history());
  std::cout << "checker verdict on S^T: "
            << (verdict.ok() ? "causal" : verdict.detail) << "\n";
  return verdict.ok() ? 0 : 1;
}

// Unit/integration tests: the lazy-batch protocol — a causal protocol that
// violates the Causal Updating Property.
#include <gtest/gtest.h>

#include "checker/causal_checker.h"
#include "helpers.h"

namespace cim::proto {
namespace {

using test::X;
using test::Y;

isc::FederationConfig lazy_system(std::uint16_t procs, LazyBatchConfig lc,
                                  std::uint64_t seed = 1) {
  return test::single_system(procs, lazy_batch_protocol(lc), seed);
}

TEST(LazyBatch, LocalWriteImmediatelyVisible) {
  isc::Federation fed(lazy_system(2, LazyBatchConfig{}));
  auto& app = fed.system(0).app(0);
  Value got = -1;
  app.write(X, 3);
  app.read(X, [&](Value v) { got = v; });
  fed.run();
  EXPECT_EQ(got, 3);
}

TEST(LazyBatch, RemoteVisibilityDelayedByBatchInterval) {
  LazyBatchConfig lc;
  lc.batch_interval = sim::milliseconds(20);
  isc::Federation fed(lazy_system(2, lc));
  auto& sim = fed.simulator();

  fed.system(0).app(0).write(X, 3);
  // Intra delay defaults to 1ms; before 21ms the remote replica is stale.
  Value at_10 = -1, at_30 = -1;
  sim.at(sim::Time{} + sim::milliseconds(10), [&] {
    fed.system(0).app(1).read(X, [&](Value v) { at_10 = v; });
  });
  sim.at(sim::Time{} + sim::milliseconds(30), [&] {
    fed.system(0).app(1).read(X, [&](Value v) { at_30 = v; });
  });
  fed.run();
  EXPECT_EQ(at_10, kInitValue);
  EXPECT_EQ(at_30, 3);
}

TEST(LazyBatch, DoesNotClaimCausalUpdating) {
  isc::Federation fed(lazy_system(2, LazyBatchConfig{}));
  EXPECT_FALSE(fed.system(0).mcs(0).satisfies_causal_updating());
  EXPECT_STREQ(fed.system(0).mcs(0).protocol_name(), "lazy-batch");
}

TEST(LazyBatch, ScramblesBatchesWithoutObservers) {
  // Two causally ordered writes to different variables arrive in one batch;
  // with kReverseVars the replica applies them in inverted order. The
  // scrambled_batches counter proves Causal Updating was violated.
  LazyBatchConfig lc;
  lc.batch_interval = sim::milliseconds(20);
  lc.order = BatchOrder::kReverseVars;
  isc::Federation fed(lazy_system(3, lc));
  auto& sim = fed.simulator();

  // Program order makes the causal chain: w(x)1 ⇝ w(y)2 at the same process.
  fed.system(0).app(0).write(X, 1);
  sim.at(sim::Time{} + sim::milliseconds(5), [&] {
    fed.system(0).app(0).write(Y, 2);
  });
  fed.run();

  auto& p2 = dynamic_cast<LazyBatchProcess&>(fed.system(0).mcs(2));
  EXPECT_GE(p2.scrambled_batches(), 1u);
  EXPECT_EQ(p2.replica_value(X), 1);
  EXPECT_EQ(p2.replica_value(Y), 2);

  // The execution is nevertheless causal: the scrambled intermediate state
  // was never observable.
  auto res = chk::CausalChecker{}.check(fed.federation_history());
  EXPECT_TRUE(res.ok()) << res.detail;
}

TEST(LazyBatch, SameVariableUpdatesKeepOrder) {
  // Convergence requires per-variable order even when scrambling.
  LazyBatchConfig lc;
  lc.batch_interval = sim::milliseconds(30);
  lc.order = BatchOrder::kReverseVars;
  isc::Federation fed(lazy_system(3, lc));
  auto& sim = fed.simulator();

  fed.system(0).app(0).write(X, 1);
  sim.at(sim::Time{} + sim::milliseconds(5), [&] {
    fed.system(0).app(0).write(X, 2);  // w(x)1 ⇝ w(x)2 (program order)
  });
  fed.run();
  auto& p2 = dynamic_cast<LazyBatchProcess&>(fed.system(0).mcs(2));
  EXPECT_EQ(p2.replica_value(X), 2);  // final value is the causally last
}

// Property: a lazy-batch system with scrambling is still causal for every
// seed and order mode (the scramble is unobservable inside one system).
struct LazyParam {
  std::uint64_t seed;
  BatchOrder order;
};

class LazyRandom : public ::testing::TestWithParam<LazyParam> {};

TEST_P(LazyRandom, RandomWorkloadIsCausal) {
  LazyBatchConfig lc;
  lc.batch_interval = sim::milliseconds(8);
  lc.order = GetParam().order;
  isc::FederationConfig cfg = lazy_system(4, lc, GetParam().seed);
  cfg.systems[0].intra_delay = [] {
    return std::make_unique<net::UniformDelay>(sim::microseconds(100),
                                               sim::milliseconds(10));
  };
  isc::Federation fed(std::move(cfg));
  wl::UniformConfig wc;
  wc.ops_per_process = 35;
  wc.num_vars = 5;
  wc.seed = GetParam().seed * 13 + 5;
  auto runners = wl::install_uniform(fed, wc);
  fed.run();
  for (const auto& r : runners) ASSERT_TRUE(r->done());

  auto res = chk::CausalChecker{}.check(fed.federation_history());
  EXPECT_TRUE(res.ok()) << chk::to_string(res.pattern) << ": " << res.detail;
}

std::vector<LazyParam> lazy_params() {
  std::vector<LazyParam> out;
  for (std::uint64_t seed : {1, 2, 3, 4, 5, 6}) {
    for (BatchOrder order : {BatchOrder::kCausal, BatchOrder::kReverseVars,
                             BatchOrder::kShuffleVars}) {
      out.push_back({seed, order});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(SeedsAndOrders, LazyRandom,
                         ::testing::ValuesIn(lazy_params()));

TEST(LazyBatch, ConvergenceUnderScrambling) {
  // Causal memory guarantees convergence only for causally ordered writes;
  // give each process a private variable (all its writes are program-
  // ordered) and check that every replica ends with the last value.
  LazyBatchConfig lc;
  lc.batch_interval = sim::milliseconds(6);
  lc.order = BatchOrder::kShuffleVars;
  isc::FederationConfig cfg = lazy_system(4, lc, 17);
  isc::Federation fed(std::move(cfg));

  std::vector<std::unique_ptr<wl::ScriptRunner>> runners;
  for (std::uint16_t p = 0; p < 4; ++p) {
    std::vector<wl::Step> script;
    for (int i = 0; i < 25; ++i) {
      script.push_back(wl::write_step(VarId{p}, 100 * (p + 1) + i));
    }
    runners.push_back(std::make_unique<wl::ScriptRunner>(
        fed.simulator(), fed.system(0).app(p), std::move(script),
        sim::milliseconds(0), sim::milliseconds(4), 900 + p));
    runners.back()->start();
  }
  fed.run();

  for (std::uint16_t writer = 0; writer < 4; ++writer) {
    const Value last = 100 * (writer + 1) + 24;
    for (std::uint16_t p = 0; p < 4; ++p) {
      auto& pp = dynamic_cast<LazyBatchProcess&>(fed.system(0).mcs(p));
      EXPECT_EQ(pp.replica_value(VarId{writer}), last)
          << "replica " << p << ", var " << writer;
    }
  }
}

}  // namespace
}  // namespace cim::proto

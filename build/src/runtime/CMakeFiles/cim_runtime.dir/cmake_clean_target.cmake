file(REMOVE_RECURSE
  "libcim_runtime.a"
)

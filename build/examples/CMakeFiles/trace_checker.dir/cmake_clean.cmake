file(REMOVE_RECURSE
  "CMakeFiles/trace_checker.dir/trace_checker.cpp.o"
  "CMakeFiles/trace_checker.dir/trace_checker.cpp.o.d"
  "trace_checker"
  "trace_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// ReliableTransport (ARQ) soak tests and the scripted-chaos federation test
// of docs/FAULTS.md: the transport must re-synthesize the paper's
// reliable-FIFO channel assumption over lossy, reordering, partitioned links
// and across IS-process crash windows — no payload lost, none duplicated,
// order preserved, causality intact.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "checker/causal_checker.h"
#include "helpers.h"
#include "net/reliable_transport.h"
#include "sim/faults.h"
#include "workload/generator.h"

namespace cim::net {
namespace {

struct SeqMsg final : Message {
  explicit SeqMsg(int v) : value(v) {}
  int value;
  const char* type_name() const override { return "test.seq"; }
  std::size_t wire_size() const override { return 12; }
  MessagePtr clone() const override { return std::make_unique<SeqMsg>(*this); }
};

struct Collector final : Receiver {
  std::vector<int> values;
  void on_message(ChannelId, MessagePtr msg) override {
    values.push_back(static_cast<SeqMsg&>(*msg).value);
  }
};

// A duplex ARQ link over deliberately hostile channels: `drop` base loss in
// both directions, non-FIFO delivery under heavy uniform jitter.
struct Harness {
  sim::Simulator sim;
  Fabric fabric;
  ReliableTransport ta;
  ReliableTransport tb;
  Collector at_a;  // payloads B → A
  Collector at_b;  // payloads A → B
  ChannelId ab;
  ChannelId ba;

  explicit Harness(std::uint64_t seed, double drop,
                   TransportConfig tc = TransportConfig{})
      : fabric(sim, seed),
        ta(fabric, with_seed(tc, seed + 1)),
        tb(fabric, with_seed(tc, seed + 2)) {
    ab = add_channel(0, 1, &tb, drop);
    ba = add_channel(1, 0, &ta, drop);
    ta.wire(ab, ba, &at_a);
    tb.wire(ba, ab, &at_b);
  }

  static TransportConfig with_seed(TransportConfig tc, std::uint64_t seed) {
    tc.seed = seed;
    return tc;
  }

  ChannelId add_channel(std::uint16_t src, std::uint16_t dst, Receiver* rx,
                        double drop) {
    ChannelConfig cc;
    cc.src = ProcId{SystemId{0}, src};
    cc.dst = ProcId{SystemId{0}, dst};
    cc.receiver = rx;
    cc.delay = std::make_unique<UniformDelay>(sim::microseconds(10),
                                              sim::milliseconds(15));
    cc.fifo = false;  // the transport must restore order itself
    cc.drop_probability = drop;
    return fabric.add_channel(std::move(cc));
  }
};

void expect_fifo_exactly_once(const std::vector<int>& got, int first,
                              int count) {
  ASSERT_EQ(got.size(), static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    ASSERT_EQ(got[i], first + i) << "at position " << i;
  }
}

TEST(TransportSoak, FifoExactlyOnceUnderLossAndReorder) {
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    Harness h(seed, 0.2);
    constexpr int kN = 200;
    // All sends up front: the window fills and the backpressure queue
    // drains over the whole run.
    for (int i = 0; i < kN; ++i) {
      h.ta.send(std::make_unique<SeqMsg>(i));
      h.tb.send(std::make_unique<SeqMsg>(1000 + i));
    }
    EXPECT_GT(h.ta.queued(), 0u);  // window (32) < kN: backpressure engaged
    h.sim.run();

    expect_fifo_exactly_once(h.at_b.values, 0, kN);
    expect_fifo_exactly_once(h.at_a.values, 1000, kN);
    EXPECT_TRUE(h.ta.drained());
    EXPECT_TRUE(h.tb.drained());
    EXPECT_EQ(h.ta.delivered(), static_cast<std::uint64_t>(kN));
    // 20% loss over 400+ frames: retransmission certainly happened, and
    // with it some duplicate deliveries to suppress.
    EXPECT_GT(h.ta.retransmits() + h.tb.retransmits(), 0u);
    EXPECT_GT(h.ta.timeouts() + h.tb.timeouts(), 0u);
  }
}

TEST(TransportSoak, SurvivesPartitionWindow) {
  Harness h(5, 0.0);
  constexpr int kN = 50;
  for (int i = 0; i < kN; ++i) {
    h.sim.at(sim::Time{} + sim::milliseconds(2 * i),
             [&h, i] { h.ta.send(std::make_unique<SeqMsg>(i)); });
  }
  // Sever both directions for 500ms in the middle of the stream.
  h.sim.at(sim::Time{} + sim::milliseconds(50), [&h] {
    h.fabric.set_partitioned(h.ab, true);
    h.fabric.set_partitioned(h.ba, true);
  });
  h.sim.at(sim::Time{} + sim::milliseconds(550), [&h] {
    h.fabric.set_partitioned(h.ab, false);
    h.fabric.set_partitioned(h.ba, false);
  });
  h.sim.run();

  expect_fifo_exactly_once(h.at_b.values, 0, kN);
  EXPECT_TRUE(h.ta.drained());
  // The partition ate data frames (and their would-be ACKs): the sender
  // must have timed out and retransmitted to get through.
  EXPECT_GT(h.ta.timeouts(), 0u);
  EXPECT_GT(h.fabric.channel_stats(h.ab).dropped, 0u);
}

TEST(TransportSoak, CrashWindowLosesNothing) {
  Harness h(9, 0.1);
  constexpr int kN = 80;
  for (int i = 0; i < kN; ++i) {
    h.sim.at(sim::Time{} + sim::milliseconds(3 * i),
             [&h, i] { h.ta.send(std::make_unique<SeqMsg>(i)); });
  }
  // The receiving host crashes mid-stream; everything arriving meanwhile is
  // dropped at its endpoint and must be recovered by ARQ after restart.
  h.sim.at(sim::Time{} + sim::milliseconds(30),
           [&h] { h.tb.set_down(true); });
  h.sim.at(sim::Time{} + sim::milliseconds(230),
           [&h] { h.tb.set_down(false); });
  h.sim.run();

  expect_fifo_exactly_once(h.at_b.values, 0, kN);
  EXPECT_TRUE(h.ta.drained());
  EXPECT_GT(h.tb.dropped_while_down(), 0u);
}

TEST(TransportSoak, BurstDropComposesWithBaseLoss) {
  Harness h(13, 0.05);
  constexpr int kN = 60;
  for (int i = 0; i < kN; ++i) {
    h.sim.at(sim::Time{} + sim::milliseconds(2 * i),
             [&h, i] { h.ta.send(std::make_unique<SeqMsg>(i)); });
  }
  h.sim.at(sim::Time{} + sim::milliseconds(20), [&h] {
    h.fabric.set_burst_drop(h.ab, 0.9);
    h.fabric.set_burst_drop(h.ba, 0.9);
  });
  h.sim.at(sim::Time{} + sim::milliseconds(120), [&h] {
    h.fabric.set_burst_drop(h.ab, 0.0);
    h.fabric.set_burst_drop(h.ba, 0.0);
  });
  h.sim.run();

  expect_fifo_exactly_once(h.at_b.values, 0, kN);
  EXPECT_TRUE(h.ta.drained());
  EXPECT_GT(h.ta.retransmits(), 0u);
}

}  // namespace
}  // namespace cim::net

namespace cim::isc {
namespace {

// The acceptance scenario of docs/FAULTS.md: a two-system federation whose
// single interconnection link runs the ARQ transport over a 20%-lossy,
// reordering channel, hit by a scripted 500ms partition and an IS-process
// crash/restart — and still completes with zero causal violations and zero
// lost or duplicated pairs, across multiple seeds.
TEST(ChaosFederation, CausalAndLosslessUnderLossPartitionCrash) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    FederationConfig cfg = test::two_systems(
        2, proto::anbkh_protocol(), proto::anbkh_protocol(), seed);
    LinkSpec& link = cfg.links[0];
    link.reliable = true;
    link.drop_probability = 0.2;
    link.fifo = false;
    link.delay = [] {
      return std::make_unique<net::UniformDelay>(sim::microseconds(100),
                                                 sim::milliseconds(12));
    };
    sim::FaultPlan::Partition part;
    part.link = 0;
    part.begin = sim::Time{} + sim::milliseconds(600);
    part.end = sim::Time{} + sim::milliseconds(1100);
    cfg.faults.partitions.push_back(part);
    sim::FaultPlan::CrashRestart crash;
    crash.system = 1;
    crash.crash_at = sim::Time{} + sim::milliseconds(300);
    crash.restart_at = sim::Time{} + sim::milliseconds(500);
    cfg.faults.crashes.push_back(crash);

    Federation fed(std::move(cfg));
    wl::UniformConfig wc;
    wc.ops_per_process = 40;
    wc.write_fraction = 0.6;
    wc.think_max = sim::milliseconds(30);
    wc.seed = seed * 1000 + 7;
    auto runners = wl::install_uniform(fed, wc);
    fed.run();

    // Exactly-once pair propagation across the link, both directions: the
    // ARQ recovered everything the partition, the loss, and the crash
    // window threw away.
    IsProcess& a = fed.interconnector().isp_a(0);
    IsProcess& b = fed.interconnector().isp_b(0);
    EXPECT_FALSE(a.crashed());
    EXPECT_FALSE(b.crashed());
    EXPECT_EQ(b.crash_count(), 1u) << "seed " << seed;
    EXPECT_EQ(a.pairs_sent(), b.pairs_received()) << "seed " << seed;
    EXPECT_EQ(b.pairs_sent(), a.pairs_received()) << "seed " << seed;
    EXPECT_GT(a.pairs_sent(), 0u);
    EXPECT_GT(b.pairs_sent(), 0u);
    auto [ta, tb] = fed.interconnector().link_transports(0);
    ASSERT_NE(ta, nullptr);
    ASSERT_NE(tb, nullptr);
    EXPECT_TRUE(ta->drained());
    EXPECT_TRUE(tb->drained());

    // The interconnected system is still a causal memory (Theorem 1, with
    // the channel premise re-established by the transport).
    auto res = chk::CausalChecker{}.check(fed.federation_history());
    EXPECT_TRUE(res.ok()) << "seed " << seed << ": " << res.detail;

    // The fault and transport instrumentation surfaced in the snapshot.
    const obs::MetricsSnapshot snap = fed.metrics_snapshot();
    const auto* injected = snap.find("faults.injected");
    ASSERT_NE(injected, nullptr);
    EXPECT_EQ(injected->value, 2) << "partition + crash";
    const auto* retx = snap.find("net.retx.sent");
    ASSERT_NE(retx, nullptr);
    EXPECT_GT(retx->value, 0) << "seed " << seed;
    const auto* timeouts = snap.find("net.retx.timeouts");
    ASSERT_NE(timeouts, nullptr);
    EXPECT_GT(timeouts->value, 0) << "seed " << seed;
    const auto* dropped = snap.find("net.channel.0.dropped");
    ASSERT_NE(dropped, nullptr);
  }
}

// Raw-link contrast: the same storm without the transport loses pairs.
// (Not a flake risk: a 500ms partition on a FIFO 10ms link is guaranteed
// to eat any pair sent inside [600ms, 1090ms).)
TEST(ChaosFederation, RawLinkLosesPairsUnderPartition) {
  FederationConfig cfg =
      test::two_systems(2, proto::anbkh_protocol(), proto::anbkh_protocol(), 4);
  sim::FaultPlan::Partition part;
  part.link = 0;
  part.begin = sim::Time{} + sim::milliseconds(100);
  part.end = sim::Time{} + sim::milliseconds(600);
  cfg.faults.partitions.push_back(part);

  Federation fed(std::move(cfg));
  wl::UniformConfig wc;
  wc.ops_per_process = 30;
  wc.write_fraction = 1.0;
  wc.think_max = sim::milliseconds(20);
  auto runners = wl::install_uniform(fed, wc);
  fed.run();

  IsProcess& a = fed.interconnector().isp_a(0);
  IsProcess& b = fed.interconnector().isp_b(0);
  EXPECT_LT(b.pairs_received(), a.pairs_sent())
      << "a raw partitioned link must lose pairs — that is the ablation";
}

}  // namespace
}  // namespace cim::isc

#include "interconnect/federation.h"

#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

#include "common/check.h"
#include "net/link_transport.h"
#include "net/reliable_transport.h"

namespace cim::isc {

namespace {

// FederationConfig::link_wire = kDefault defers to the environment so the
// whole test suite (and any example) can be flipped to bytes mode without
// code changes: CIM_LINK_WIRE=bytes ctest ... (see tests/CMakeLists.txt's
// bytes_mode suite).
LinkWire resolve_link_wire(LinkWire requested) {
  if (requested != LinkWire::kDefault) return requested;
  const char* env = std::getenv("CIM_LINK_WIRE");
  if (env != nullptr && std::strcmp(env, "bytes") == 0)
    return LinkWire::kLoopbackBytes;
  return LinkWire::kInMemory;
}

}  // namespace

Federation::Federation(FederationConfig config)
    : obs_(config.obs), fabric_(sim_, config.seed) {
  CIM_CHECK_MSG(!config.systems.empty(), "federation needs at least one system");
  if (config.monitor.enabled) {
    // The monitor rides the trace stream: force tracing on and make sure
    // the categories it consumes (and chk, which it emits) pass the mask.
    obs::TraceSink& trace = obs_.trace();
    trace.set_enabled(true);
    trace.set_category_mask(trace.category_mask() |
                            chk::OnlineMonitor::required_category_mask());
    monitor_ = std::make_unique<chk::OnlineMonitor>(config.monitor);
    monitor_->attach(&trace, &obs_.metrics());
  }
  fabric_.set_observability(&obs_);
  for (mcs::SystemConfig& sc : config.systems) {
    systems_.push_back(std::make_unique<mcs::System>(
        sim_, fabric_, recorder_, std::move(sc), &mux_, &obs_));
  }
  std::vector<mcs::System*> raw;
  raw.reserve(systems_.size());
  for (auto& s : systems_) raw.push_back(s.get());
  interconnector_ = std::make_unique<Interconnector>(
      fabric_, std::move(raw), std::move(config.links), config.isp_mode,
      &obs_, resolve_link_wire(config.link_wire),
      std::move(config.external_links));
  interconnector_->build();
  install_faults(config.faults);
}

void Federation::install_faults(const sim::FaultPlan& plan) {
  plan.validate();
  obs::MetricsRegistry& m = obs_.metrics();
  // Registered unconditionally: every snapshot carries the fault counters,
  // zero-valued on calm runs.
  obs::Counter* injected = &m.counter("faults.injected");
  obs::Counter* partitions = &m.counter("faults.partitions");
  obs::Counter* bursts = &m.counter("faults.bursts");
  obs::Counter* crashes = &m.counter("faults.crashes");
  obs::Counter* restarts = &m.counter("faults.restarts");
  if (plan.empty()) return;
  obs::TraceSink* trace = &obs_.trace();

  for (const sim::FaultPlan::Partition& p : plan.partitions) {
    CIM_CHECK_MSG(p.link < interconnector_->num_links(),
                  "fault plan partitions an unknown link");
    const auto [ab, ba] = interconnector_->link_channels(p.link);
    sim_.at(p.begin, [this, injected, partitions, trace, p, ab, ba] {
      fabric_.set_partitioned(ab, true);
      fabric_.set_partitioned(ba, true);
      injected->inc();
      partitions->inc();
      CIM_TRACE(trace, sim_.now(), obs::TraceCategory::kSim, "fault_partition",
                {{"link", static_cast<std::uint64_t>(p.link)}});
    });
    sim_.at(p.end, [this, trace, p, ab, ba] {
      fabric_.set_partitioned(ab, false);
      fabric_.set_partitioned(ba, false);
      CIM_TRACE(trace, sim_.now(), obs::TraceCategory::kSim, "fault_heal",
                {{"link", static_cast<std::uint64_t>(p.link)}});
    });
  }

  for (const sim::FaultPlan::BurstDrop& b : plan.bursts) {
    CIM_CHECK_MSG(b.link < interconnector_->num_links(),
                  "fault plan bursts an unknown link");
    const auto [ab, ba] = interconnector_->link_channels(b.link);
    sim_.at(b.begin, [this, injected, bursts, trace, b, ab, ba] {
      fabric_.set_burst_drop(ab, b.drop_probability);
      fabric_.set_burst_drop(ba, b.drop_probability);
      injected->inc();
      bursts->inc();
      CIM_TRACE(trace, sim_.now(), obs::TraceCategory::kSim, "fault_burst_begin",
                {{"link", static_cast<std::uint64_t>(b.link)},
                 {"drop", b.drop_probability}});
    });
    sim_.at(b.end, [this, trace, b, ab, ba] {
      fabric_.set_burst_drop(ab, 0.0);
      fabric_.set_burst_drop(ba, 0.0);
      CIM_TRACE(trace, sim_.now(), obs::TraceCategory::kSim, "fault_burst_end",
                {{"link", static_cast<std::uint64_t>(b.link)}});
    });
  }

  for (const sim::FaultPlan::CrashRestart& c : plan.crashes) {
    CIM_CHECK_MSG(c.system < systems_.size(),
                  "fault plan crashes an unknown system");
    const SystemId sid = systems_[c.system]->id();
    sim_.at(c.crash_at, [this, injected, crashes, trace, c, sid] {
      for (const auto& isp : interconnector_->isps()) {
        if (isp->id().system == sid) isp->crash();
      }
      injected->inc();
      crashes->inc();
      CIM_TRACE(trace, sim_.now(), obs::TraceCategory::kSim, "fault_crash",
                {{"system", static_cast<std::uint64_t>(c.system)}});
    });
    sim_.at(c.restart_at, [this, restarts, trace, c, sid] {
      for (const auto& isp : interconnector_->isps()) {
        if (isp->id().system == sid) isp->restart();
      }
      restarts->inc();
      CIM_TRACE(trace, sim_.now(), obs::TraceCategory::kSim, "fault_restart",
                {{"system", static_cast<std::uint64_t>(c.system)}});
    });
  }
}

obs::MetricsSnapshot Federation::metrics_snapshot() {
  obs::MetricsRegistry& m = obs_.metrics();
  m.gauge("sim.now_ns").set(sim_.now().ns);
  m.gauge("sim.events_fired").set(
      static_cast<std::int64_t>(sim_.events_fired()));
  m.gauge("sim.queue_depth").set(static_cast<std::int64_t>(sim_.pending()));
  m.gauge("sim.queue_depth_peak")
      .set(static_cast<std::int64_t>(sim_.max_pending()));
  m.gauge("net.in_flight")
      .set(static_cast<std::int64_t>(fabric_.total_in_flight()));
  // Per-channel loss and availability queueing, refreshed from the fabric's
  // ChannelStats (documented as net.channel.<ch>.* — the numeric channel id
  // substitutes for <ch>).
  for (std::size_t c = 0; c < fabric_.num_channels(); ++c) {
    const net::ChannelId id{static_cast<std::uint32_t>(c)};
    const net::ChannelStats& cs = fabric_.channel_stats(id);
    const std::string prefix = "net.channel." + std::to_string(c);
    m.gauge(prefix + ".dropped").set(static_cast<std::int64_t>(cs.dropped));
    m.gauge(prefix + ".availability_waits")
        .set(static_cast<std::int64_t>(cs.availability_waits));
  }
  for (std::size_t c = 0; c < obs::kNumTraceCategories; ++c) {
    const auto cat = static_cast<obs::TraceCategory>(c);
    m.gauge(std::string("trace.events.") + obs::to_string(cat))
        .set(static_cast<std::int64_t>(obs_.trace().category_count(cat)));
  }
  m.gauge("trace.dropped")
      .set(static_cast<std::int64_t>(obs_.trace().dropped()));
  // Unified per-link endpoint state across all transports (net.link.<l>.
  // <side>.* — the link index substitutes for <l>; side `a`/`b`, external
  // links single-sided as `a` and numbered after the in-federation links).
  // Every endpoint reports its backlog; ARQ-backed endpoints add the
  // transport gauges (schema v1 called these net.endpoint.<2l+side>.*);
  // serializing endpoints (bytes mode, TCP) add byte counts.
  const auto emit_endpoint = [&m](const std::string& prefix,
                                  const net::LinkTransport* ep) {
    if (ep == nullptr) return;
    m.gauge(prefix + ".backlog")
        .set(static_cast<std::int64_t>(ep->backlog()));
    if (const net::ReliableTransport* arq = ep->arq()) {
      m.gauge(prefix + ".retransmits")
          .set(static_cast<std::int64_t>(arq->retransmits()));
      m.gauge(prefix + ".timeouts")
          .set(static_cast<std::int64_t>(arq->timeouts()));
      m.gauge(prefix + ".dups_suppressed")
          .set(static_cast<std::int64_t>(arq->dups_suppressed()));
      m.gauge(prefix + ".acks_sent")
          .set(static_cast<std::int64_t>(arq->acks_sent()));
      m.gauge(prefix + ".down_drops")
          .set(static_cast<std::int64_t>(arq->dropped_while_down()));
      m.gauge(prefix + ".delivered")
          .set(static_cast<std::int64_t>(arq->delivered()));
      m.gauge(prefix + ".window_in_use")
          .set(static_cast<std::int64_t>(arq->window_in_use()));
      m.gauge(prefix + ".queued")
          .set(static_cast<std::int64_t>(arq->queued()));
    }
    if (ep->serializing()) {
      m.gauge(prefix + ".bytes_out")
          .set(static_cast<std::int64_t>(ep->wire_bytes_out()));
      m.gauge(prefix + ".bytes_in")
          .set(static_cast<std::int64_t>(ep->wire_bytes_in()));
    }
  };
  for (std::size_t l = 0; l < interconnector_->num_links(); ++l) {
    const auto [a, b] = interconnector_->link_endpoints(l);
    const std::string prefix = "net.link." + std::to_string(l);
    emit_endpoint(prefix + ".a", a);
    emit_endpoint(prefix + ".b", b);
  }
  for (std::size_t e = 0; e < interconnector_->num_external_links(); ++e) {
    const std::string prefix =
        "net.link." + std::to_string(interconnector_->num_links() + e);
    emit_endpoint(prefix + ".a", interconnector_->external_transport(e));
  }
  return m.snapshot();
}

chk::History Federation::system_history(std::size_t index) const {
  CIM_CHECK(index < systems_.size());
  return recorder_.system(systems_[index]->id());
}

}  // namespace cim::isc

// Pluggable link transports: how an IS-process's ⟨x, v⟩ pairs actually move.
//
// The paper assumes "a reliable FIFO channel" between the two IS-processes of
// a link and says nothing about its realization. This interface abstracts
// that realization so the interconnect layer wires link *endpoints* instead
// of fabric channels:
//
//  * FabricLinkTransport      — the historical in-sim path: messages are
//    handed pointer-style to a fabric channel (optionally through a
//    ReliableTransport ARQ endpoint). Zero-copy, allocation-free in steady
//    state, bit-identical traces: the default.
//  * LoopbackBytesTransport   — wraps another transport and round-trips every
//    message through the wire codec (encode → decode) before forwarding, so
//    the whole federation runs over real bytes while staying in-process.
//    Enabled federation-wide by FederationConfig::link_wire (or the
//    CIM_LINK_WIRE=bytes environment knob); reports net.wire.* metrics.
//  * TcpLinkTransport         — real sockets between OS processes
//    (net/tcp_link.h), used by tools/cim_bridge.
//
// A transport delivers *inbound* messages by whatever registration its
// construction implies (fabric receiver wiring, socket reader thread); this
// interface only models the outbound half plus the lifecycle and
// introspection hooks the interconnect and metrics layers need.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/fabric.h"
#include "net/message.h"
#include "net/reliable_transport.h"
#include "obs/obs.h"

namespace cim::net {

class LinkTransport {
 public:
  virtual ~LinkTransport() = default;

  /// Send one message to the peer endpoint (reliable FIFO semantics are the
  /// implementation's contract; see each class).
  virtual void send(MessagePtr msg) = 0;

  /// Messages queued toward the peer but not yet delivered (feeds the
  /// isc.link_backlog histogram). Best effort; 0 where unknowable.
  virtual std::size_t backlog() const { return 0; }

  /// Crash window of the owning host (see ReliableTransport::set_down).
  /// Default: no-op — transports without recovery machinery simply lose
  /// what arrives while the owner is crashed.
  virtual void set_down(bool down) { (void)down; }

  /// Stable label for diagnostics and docs: "fabric", "bytes", "tcp".
  virtual const char* kind() const = 0;

  /// True iff messages cross this link as encoded bytes (wire codec on the
  /// send path). Serializing transports report byte counters.
  virtual bool serializing() const { return false; }
  virtual std::uint64_t wire_bytes_out() const { return 0; }
  virtual std::uint64_t wire_bytes_in() const { return 0; }

  /// The ARQ endpoint carrying this link, if any (metrics unification:
  /// Federation reports net.link.<i>.<side>.* from it).
  virtual ReliableTransport* arq() const { return nullptr; }
};

/// The in-sim path: pointer handoff to a fabric channel, optionally through
/// a ReliableTransport endpoint (which must be wired to the same channel).
class FabricLinkTransport final : public LinkTransport {
 public:
  FabricLinkTransport(Fabric& fabric, ChannelId out,
                      ReliableTransport* arq = nullptr)
      : fabric_(fabric), out_(out), arq_(arq) {}

  void send(MessagePtr msg) override {
    if (arq_ != nullptr) {
      arq_->send(std::move(msg));
    } else {
      fabric_.send(out_, std::move(msg));
    }
  }

  std::size_t backlog() const override {
    return fabric_.channel_backlog(out_);
  }

  void set_down(bool down) override {
    if (arq_ != nullptr) arq_->set_down(down);
  }

  const char* kind() const override { return "fabric"; }
  ReliableTransport* arq() const override { return arq_; }
  ChannelId out_channel() const { return out_; }

 private:
  Fabric& fabric_;
  ChannelId out_;
  ReliableTransport* arq_;  // null: raw channel
};

/// Byte-exactness harness: every message is encoded to its wire frame and
/// decoded back before it continues down the wrapped transport, so the
/// payload the peer sees went through the full codec. Dropping or altering
/// any field on the wire would change checker verdicts / metrics and fail
/// the bytes-mode test suite.
class LoopbackBytesTransport final : public LinkTransport {
 public:
  /// `inner` is borrowed (the interconnector owns both).
  LoopbackBytesTransport(LinkTransport& inner, obs::Observability* obs);

  void send(MessagePtr msg) override;

  std::size_t backlog() const override { return inner_.backlog(); }
  void set_down(bool down) override { inner_.set_down(down); }
  const char* kind() const override { return "bytes"; }
  bool serializing() const override { return true; }
  std::uint64_t wire_bytes_out() const override { return bytes_out_; }
  std::uint64_t wire_bytes_in() const override { return bytes_in_; }
  ReliableTransport* arq() const override { return inner_.arq(); }

 private:
  LinkTransport& inner_;
  std::vector<std::uint8_t> scratch_;  // reused across sends
  std::uint64_t bytes_out_ = 0;
  std::uint64_t bytes_in_ = 0;

  // Cached instrument cells (null without observability).
  obs::Counter* m_bytes_out_ = nullptr;
  obs::Counter* m_bytes_in_ = nullptr;
  obs::DurationHistogram* h_encode_ns_ = nullptr;
  obs::DurationHistogram* h_decode_ns_ = nullptr;
};

}  // namespace cim::net

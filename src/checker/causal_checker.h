// Causal-consistency verification.
//
// The paper (Definitions 1-5) uses Ahamad et al.'s *causal memory* (CM):
// a computation α is causal iff for every process i there is a *causal view*
// β_i — a permutation of α_i (all writes plus i's reads) that is legal and
// preserves the causal order ⇝ (the transitive closure of program order and
// writes-into order).
//
// Deciding this directly involves searching for a permutation; under the
// paper's assumption that each value is written at most once per variable,
// CM admits a polynomial characterization by *bad patterns* (Bouajjani,
// Enea, Guerraoui, Hamza, "On verifying causal consistency", POPL 2017,
// Theorem for CM): α is causal iff it exhibits none of
//
//   CyclicCO         — co := (po ∪ rf)+ has a cycle
//   ThinAirRead      — a read returns a value never written to that variable
//   WriteCOInitRead  — a read returns the initial value although some write
//                      to the variable is co-before the read
//   WriteCORead      — a read returns the value of w1 although another write
//                      w2 to the same variable satisfies w1 →co w2 →co read
//   CyclicHB         — the per-process happens-before fixpoint is cyclic
//   WriteHBInitRead  — like WriteCOInitRead but under the per-process
//                      happens-before
//
// where, for process i, HB_i is the least transitive relation containing co
// restricted to (writes ∪ reads_i) and closed under: if r ∈ reads_i(x) reads
// from w2 and w1 is another write to x with (w1, r) ∈ HB_i, then
// (w1, w2) ∈ HB_i.
//
// SearchChecker (search_checker.h) decides the definition directly by
// backtracking; property tests cross-validate the two on random histories.
#pragma once

#include <optional>
#include <string>

#include "checker/history.h"
#include "checker/relation.h"

namespace cim::chk {

enum class BadPattern {
  kNone,
  kDuplicateWrite,   // precondition violation: a value written twice to a var
  kCyclicCO,
  kThinAirRead,
  kWriteCOInitRead,
  kWriteCORead,
  kCyclicHB,
  kWriteHBInitRead,
  kCyclicCF,         // CCv only: conflict/arbitration cycle
};

const char* to_string(BadPattern p);

/// Consistency model to verify.
enum class Level {
  kCC,   // weak causal consistency: first four patterns only
  kCM,   // causal memory (the paper's model): adds the per-process HB patterns
  kCCv,  // causal convergence: adds CyclicCF — all replicas must agree on one
         // arbitration of concurrent same-variable writes. None of the
         // protocols here implement arbitration, so CCv is expected to FAIL
         // on executions where readers order concurrent writes differently;
         // the level exists to demonstrate that separation.
};

struct CheckResult {
  BadPattern pattern = BadPattern::kNone;
  std::string detail;  // human-readable witness description

  bool ok() const { return pattern == BadPattern::kNone; }
  explicit operator bool() const { return ok(); }
};

class CausalChecker {
 public:
  /// Verify `history` against the model. O(n^2) bit-parallel for kCC;
  /// kCM adds per-process fixpoints (still polynomial).
  CheckResult check(const History& history, Level level = Level::kCM) const;

  /// The causal order co = (po ∪ rf)+ of a history, exposed for tests and
  /// for the latency experiments. Fails (returns nullopt) on ThinAirRead /
  /// DuplicateWrite preconditions.
  std::optional<Relation> causal_order(const History& history) const;
};

}  // namespace cim::chk

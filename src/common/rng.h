// Deterministic pseudo-random number generation.
//
// Every randomized component (delay models, workload generators, the
// scrambling lazy-batch protocol) draws from an Rng seeded explicitly, so any
// execution is reproducible from its seed. The generator is SplitMix64 —
// small, fast, and adequate for simulation randomness (not cryptography).
#pragma once

#include <cstdint>

namespace cim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed ^ 0x9E3779B97F4A7C15ULL) {}

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli trial with probability p of true.
  bool chance(double p) { return uniform01() < p; }

  /// Derive an independent child generator (for per-component streams).
  Rng split();

 private:
  std::uint64_t state_;
};

}  // namespace cim

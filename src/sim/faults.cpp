#include "sim/faults.h"

#include <algorithm>
#include <map>

#include "common/check.h"
#include "common/rng.h"

namespace cim::sim {

void FaultPlan::validate() const {
  for (const Partition& p : partitions) {
    CIM_CHECK_MSG(p.begin.ns >= 0, "partition begins before t=0");
    CIM_CHECK_MSG(p.begin < p.end, "partition window is empty");
  }
  for (const BurstDrop& b : bursts) {
    CIM_CHECK_MSG(b.begin.ns >= 0, "burst begins before t=0");
    CIM_CHECK_MSG(b.begin < b.end, "burst window is empty");
    CIM_CHECK_MSG(b.drop_probability >= 0.0 && b.drop_probability <= 1.0,
                  "burst drop probability outside [0, 1]");
  }
  std::map<std::size_t, std::vector<std::pair<Time, Time>>> by_system;
  for (const CrashRestart& c : crashes) {
    CIM_CHECK_MSG(c.crash_at.ns >= 0, "crash before t=0");
    CIM_CHECK_MSG(c.crash_at < c.restart_at, "crash window is empty");
    by_system[c.system].emplace_back(c.crash_at, c.restart_at);
  }
  for (auto& [system, windows] : by_system) {
    std::sort(windows.begin(), windows.end());
    for (std::size_t i = 1; i < windows.size(); ++i) {
      CIM_CHECK_MSG(windows[i - 1].second <= windows[i].first,
                    "overlapping crash windows for system " << system);
    }
  }
}

Time FaultPlan::horizon() const {
  Time h = kTimeZero;
  for (const Partition& p : partitions) h = std::max(h, p.end);
  for (const BurstDrop& b : bursts) h = std::max(h, b.end);
  for (const CrashRestart& c : crashes) h = std::max(h, c.restart_at);
  return h;
}

FaultPlan make_chaos_plan(const ChaosOptions& options, std::uint64_t seed) {
  CIM_CHECK_MSG(options.num_links > 0, "chaos plan needs at least one link");
  CIM_CHECK_MSG(options.num_systems > 0,
                "chaos plan needs at least one system");
  CIM_CHECK_MSG(options.horizon.ns > 0, "chaos horizon must be positive");
  Rng rng(seed);
  FaultPlan plan;

  const auto begin_before = [&](Duration length) {
    const std::int64_t latest = std::max<std::int64_t>(
        std::int64_t{1}, options.horizon.ns - length.ns);
    return Time{static_cast<std::int64_t>(
        rng.uniform(0, static_cast<std::uint64_t>(latest - 1)))};
  };

  for (std::size_t i = 0; i < options.num_partitions; ++i) {
    FaultPlan::Partition p;
    p.link = rng.uniform(0, options.num_links - 1);
    p.begin = begin_before(options.partition_length);
    p.end = p.begin + options.partition_length;
    plan.partitions.push_back(p);
  }
  for (std::size_t i = 0; i < options.num_bursts; ++i) {
    FaultPlan::BurstDrop b;
    b.link = rng.uniform(0, options.num_links - 1);
    b.begin = begin_before(options.burst_length);
    b.end = b.begin + options.burst_length;
    b.drop_probability = options.burst_drop;
    plan.bursts.push_back(b);
  }
  // Crashes round-robin over systems; windows of the same system are placed
  // in disjoint slices of the horizon so they can never overlap.
  for (std::size_t i = 0; i < options.num_crashes; ++i) {
    FaultPlan::CrashRestart c;
    c.system = i % options.num_systems;
    const std::size_t rounds =
        (options.num_crashes + options.num_systems - 1) / options.num_systems;
    const std::size_t round = i / options.num_systems;
    const Duration slice{options.horizon.ns /
                         static_cast<std::int64_t>(rounds)};
    const Time slice_begin{slice.ns * static_cast<std::int64_t>(round)};
    const std::int64_t slack =
        std::max<std::int64_t>(std::int64_t{1},
                               slice.ns - options.crash_length.ns);
    c.crash_at = slice_begin + Duration{static_cast<std::int64_t>(
                     rng.uniform(0, static_cast<std::uint64_t>(slack - 1)))};
    c.restart_at = c.crash_at + options.crash_length;
    plan.crashes.push_back(c);
  }
  plan.validate();
  return plan;
}

}  // namespace cim::sim

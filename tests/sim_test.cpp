// Unit tests: the discrete-event simulator.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "sim/simulator.h"

namespace cim::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), kTimeZero);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(Time{30}, [&] { order.push_back(3); });
  sim.at(Time{10}, [&] { order.push_back(1); });
  sim.at(Time{20}, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), Time{30});
}

TEST(Simulator, SameTimeEventsFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.at(Time{5}, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, AfterIsRelativeToNow) {
  Simulator sim;
  Time fired{};
  sim.after(Duration{7}, [&] {
    fired = sim.now();
    sim.after(Duration{5}, [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, Time{12});
}

TEST(Simulator, PostRunsAtCurrentInstantAfterPending) {
  Simulator sim;
  std::vector<int> order;
  sim.at(Time{5}, [&] {
    order.push_back(1);
    sim.post([&] { order.push_back(3); });
  });
  sim.at(Time{5}, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, SchedulingIntoThePastThrows) {
  Simulator sim;
  sim.at(Time{10}, [&] {
    EXPECT_THROW(sim.at(Time{5}, [] {}), InvariantViolation);
  });
  sim.run();
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.at(Time{10}, [&] { ++fired; });
  sim.at(Time{20}, [&] { ++fired; });
  sim.at(Time{30}, [&] { ++fired; });
  sim.run_until(Time{20});
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunUntilAdvancesTimeWhenQueueDrains) {
  Simulator sim;
  sim.at(Time{5}, [] {});
  sim.run_until(Time{100});
  EXPECT_EQ(sim.now(), Time{100});
}

TEST(Simulator, StepFiresExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.at(Time{1}, [&] { ++fired; });
  sim.at(Time{2}, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, EventsFiredCounter) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.at(Time{i}, [] {});
  sim.run();
  EXPECT_EQ(sim.events_fired(), 5u);
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.after(Duration{1}, recurse);
  };
  sim.after(Duration{1}, recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), Time{100});
}

TEST(Simulator, RecycledSlotsPreserveSameInstantFifo) {
  // step() frees an event's slot before invoking it, so a schedule made from
  // inside the action reuses that slot immediately. FIFO among same-instant
  // events must come from the sequence number, not slot identity.
  Simulator sim;
  std::vector<int> order;
  sim.at(Time{1}, [&] {
    order.push_back(1);
    sim.post([&] { order.push_back(4); });
  });
  sim.at(Time{1}, [&] {
    order.push_back(2);
    sim.post([&] { order.push_back(5); });
  });
  sim.at(Time{1}, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Simulator, MaxPendingIsHighWaterMark) {
  Simulator sim;
  for (int i = 0; i < 10; ++i) sim.at(Time{i + 1}, [] {});
  EXPECT_EQ(sim.max_pending(), 10u);
  sim.run();
  EXPECT_EQ(sim.max_pending(), 10u);  // draining does not lower the mark
  for (int i = 0; i < 3; ++i) sim.after(Duration{1}, [] {});
  sim.run();
  EXPECT_EQ(sim.max_pending(), 10u);  // smaller later peaks do not either
}

TEST(Simulator, RunUntilDeadlineIsInclusive) {
  Simulator sim;
  int fired = 0;
  sim.at(Time{10}, [&] { ++fired; });
  sim.at(Time{11}, [&] { ++fired; });
  EXPECT_EQ(sim.run_until(Time{10}), 1u);
  EXPECT_EQ(fired, 1);
  // Queue still holds the post-deadline event; now() stays at the last
  // fired instant, not the deadline.
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_EQ(sim.now(), Time{10});
}

TEST(Simulator, ReserveDoesNotChangeBehavior) {
  Simulator sim;
  sim.reserve(64);
  std::vector<int> order;
  sim.at(Time{2}, [&] { order.push_back(2); });
  sim.at(Time{1}, [&] { order.push_back(1); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.events_fired(), 2u);
}

// Reference executor for the golden-sequence test: a naive linear-scan
// min-(time, seq) queue with none of the slot pooling. Any ordering
// divergence between it and Simulator is a pooling bug.
class ReferenceSim {
 public:
  Time now() const { return now_; }

  void at(Time t, std::function<void()> f) {
    ASSERT_GE(t, now_);
    q_.push_back(Entry{t, next_seq_++, std::move(f)});
  }

  bool step() {
    if (q_.empty()) return false;
    std::size_t best = 0;
    for (std::size_t i = 1; i < q_.size(); ++i) {
      if (q_[i].t < q_[best].t ||
          (q_[i].t == q_[best].t && q_[i].seq < q_[best].seq)) {
        best = i;
      }
    }
    Entry e = std::move(q_[best]);
    q_.erase(q_.begin() + static_cast<std::ptrdiff_t>(best));
    now_ = e.t;
    e.f();
    return true;
  }

 private:
  struct Entry {
    Time t;
    std::uint64_t seq;
    std::function<void()> f;
  };
  Time now_;
  std::uint64_t next_seq_ = 0;
  std::vector<Entry> q_;
};

// Drive either executor through the same seeded random schedule: events
// record their id and respawn children at small (frequently tying) offsets.
// Heavy same-instant traffic plus interleaved schedule/fire churns the slot
// free list, which is exactly what the golden comparison needs to stress.
template <typename S>
std::vector<int> drive_random_schedule(S& s, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<int> fired;
  int next_id = 0;
  int budget = 400;  // total events, bounds the recursion
  std::function<void(int)> spawn = [&](int id) {
    fired.push_back(id);
    const int children = static_cast<int>(rng.uniform(0, 2));
    for (int c = 0; c < children && budget > 0; ++c) {
      --budget;
      const Time t = s.now() + Duration{static_cast<std::int64_t>(
                                   rng.uniform(0, 3))};
      const int child = next_id++;
      s.at(t, [&spawn, child] { spawn(child); });
    }
  };
  for (int i = 0; i < 32; ++i) {
    --budget;
    const Time t = Time{static_cast<std::int64_t>(rng.uniform(0, 4))};
    const int id = next_id++;
    s.at(t, [&spawn, id] { spawn(id); });
  }
  while (s.step()) {
  }
  return fired;
}

TEST(Simulator, GoldenSequenceMatchesReferenceExecutor) {
  for (std::uint64_t seed : {1u, 42u, 1234u}) {
    Simulator pooled;
    ReferenceSim reference;
    const std::vector<int> got = drive_random_schedule(pooled, seed);
    const std::vector<int> want = drive_random_schedule(reference, seed);
    EXPECT_EQ(got, want) << "seed " << seed;
    EXPECT_EQ(pooled.now(), reference.now()) << "seed " << seed;
  }
}

TEST(SimTime, DurationArithmetic) {
  EXPECT_EQ(milliseconds(2) + microseconds(500), nanoseconds(2'500'000));
  EXPECT_EQ(seconds(1) - milliseconds(1), nanoseconds(999'000'000));
  EXPECT_EQ(milliseconds(3) * 4, milliseconds(12));
  EXPECT_EQ(Time{100} + Duration{5}, Time{105});
  EXPECT_EQ(Time{100} - Time{40}, Duration{60});
}

}  // namespace
}  // namespace cim::sim

// Scripted chaos demo (docs/FAULTS.md): two causal systems interconnected
// over a *bad* link — 20% loss, reordering jitter — behind the ARQ reliable
// transport, hit by a seeded storm of partitions, loss bursts, and
// IS-process crash/restart windows sampled with make_chaos_plan.
//
// The run prints the storm, then shows that the interconnected system shrugs
// it off: every pair delivered exactly once, the causal checker passes, and
// the faults.* / net.retx.* metrics account for the damage absorbed.
//
//   chaos_federation [seed]        default seed 7; same seed, same storm
//   chaos_federation 7 --trace t.jsonl   also dump the structured trace
//   chaos_federation 7 --metrics m.json  also dump the metrics snapshot
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "checker/causal_checker.h"
#include "interconnect/federation.h"
#include "obs/metrics.h"
#include "protocols/anbkh.h"
#include "sim/faults.h"
#include "workload/generator.h"

using namespace cim;

int main(int argc, char** argv) {
  std::uint64_t seed = 7;
  std::string trace_path;
  std::string metrics_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else {
      seed = std::strtoull(argv[i], nullptr, 10);
    }
  }

  isc::FederationConfig cfg;
  cfg.seed = seed;
  for (std::uint16_t s = 0; s < 2; ++s) {
    mcs::SystemConfig sc;
    sc.id = SystemId{s};
    sc.num_app_processes = 3;
    // Both systems run ANBKH: its upcall discipline tolerates the deferred
    // `done` of a parked (crashed) IS-process upcall. lazy_batch applies
    // whole batches within one event and cannot (docs/FAULTS.md).
    sc.protocol = proto::anbkh_protocol();
    sc.seed = seed * 50 + s;
    cfg.systems.push_back(std::move(sc));
  }
  isc::LinkSpec link;
  link.system_a = 0;
  link.system_b = 1;
  link.reliable = true;        // the ARQ shield — try turning it off
  link.drop_probability = 0.2;
  link.fifo = false;
  link.delay = [] {
    return std::make_unique<net::UniformDelay>(sim::microseconds(500),
                                               sim::milliseconds(10));
  };
  cfg.links.push_back(std::move(link));

  sim::ChaosOptions chaos;
  chaos.horizon = sim::seconds(2);
  chaos.num_partitions = 1;
  chaos.partition_length = sim::milliseconds(500);
  chaos.num_bursts = 2;
  chaos.burst_drop = 0.8;
  chaos.num_crashes = 2;  // one crash/restart window per system
  chaos.num_links = cfg.links.size();
  chaos.num_systems = cfg.systems.size();
  cfg.faults = sim::make_chaos_plan(chaos, seed);
  cfg.obs.trace.enabled = !trace_path.empty();

  std::cout << "Chaos storm (seed " << seed << "):\n";
  for (const auto& p : cfg.faults.partitions) {
    std::cout << "  partition link " << p.link << "  [" << p.begin.ns / 1000000
              << "ms, " << p.end.ns / 1000000 << "ms)\n";
  }
  for (const auto& b : cfg.faults.bursts) {
    std::cout << "  burst p=" << b.drop_probability << " link " << b.link
              << "      [" << b.begin.ns / 1000000 << "ms, "
              << b.end.ns / 1000000 << "ms)\n";
  }
  for (const auto& c : cfg.faults.crashes) {
    std::cout << "  crash system " << c.system << "     ["
              << c.crash_at.ns / 1000000 << "ms, " << c.restart_at.ns / 1000000
              << "ms)\n";
  }

  isc::Federation fed(std::move(cfg));
  wl::UniformConfig wc;
  wc.ops_per_process = 80;
  wc.write_fraction = 0.6;
  wc.think_max = sim::milliseconds(25);
  wc.seed = seed + 13;
  auto runners = wl::install_uniform(fed, wc);
  fed.run();

  isc::IsProcess& a = fed.interconnector().shared_isp(0);
  isc::IsProcess& b = fed.interconnector().shared_isp(1);
  auto [ta, tb] = fed.interconnector().link_transports(0);
  const auto res = chk::CausalChecker{}.check(fed.federation_history());

  std::cout << "\nAfter the storm (" << fed.simulator().now().ns / 1000000
            << "ms of virtual time):\n"
            << "  pairs S0->S1        " << a.pairs_sent() << " sent, "
            << b.pairs_received() << " received\n"
            << "  pairs S1->S0        " << b.pairs_sent() << " sent, "
            << a.pairs_received() << " received\n"
            << "  retransmissions     " << ta->retransmits() + tb->retransmits()
            << " (timeouts " << ta->timeouts() + tb->timeouts() << ")\n"
            << "  dups suppressed     "
            << ta->dups_suppressed() + tb->dups_suppressed() << "\n"
            << "  crash windows       S0 " << a.crash_count() << ", S1 "
            << b.crash_count() << "\n"
            << "  causal (S^T)        " << (res.ok() ? "yes" : "VIOLATED")
            << "\n";

  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    fed.observability().trace().write_jsonl(out);
    std::cout << "  trace               " << trace_path << "\n";
    if (fed.observability().trace().dropped() > 0) {
      std::cerr << "chaos_federation: warning: trace ring dropped "
                << fed.observability().trace().dropped()
                << " events; raise cfg.obs.trace.capacity for a full trace\n";
    }
  }
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    obs::write_json(out, fed.metrics_snapshot());
    std::cout << "  metrics             " << metrics_path << "\n";
  }

  const bool lossless = a.pairs_sent() == b.pairs_received() &&
                        b.pairs_sent() == a.pairs_received();
  std::cout << "  exactly-once pairs  " << (lossless ? "yes" : "NO") << "\n";
  return res.ok() && lossless ? 0 : 1;
}

file(REMOVE_RECURSE
  "libcim_mcs.a"
)

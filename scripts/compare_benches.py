#!/usr/bin/env python3
"""Diff two directories of BENCH_*.json perf reports (schema cim.bench.v1).

Usage:
    scripts/compare_benches.py --baseline bench/baseline --candidate bench/out
                               [--threshold 0.10] [--cliff 0.25] [--warn-only]

Rows are matched by (bench, row name). Only fields with a known "direction"
are judged:

    higher is better:  *_per_sec, *_per_second
    lower is better:   wall_s, real_time_ns, cpu_time_ns, reconnect_ms, ...

A small INFORMATIONAL set overrides the suffix rules for metrics too noisy
to gate (see the comment at the definition).

A change worse than --threshold (default 10%) is a REGRESSION; with
--warn-only it only warns unless the change is worse than --cliff (default
25%), the hard-fail backstop for noisy shared runners. Improvements and
informational fields are printed but never fail the run.

Exit status: 0 clean (or warnings only), 1 regression, 2 usage/IO error.
"""

import argparse
import glob
import json
import os
import sys

HIGHER_BETTER = ("_per_sec", "_per_second")
LOWER_BETTER = {"wall_s", "real_time_ns", "cpu_time_ns", "bytes_per_msg",
                "syscalls_per_msg", "reconnect_ms", "check_ms",
                "bytes_per_op"}
# Fields exempt from the suffix rules: reported for the record but never
# judged. post_recovery_msgs_per_sec times the catch-up burst right after a
# rejoin, whose size depends on how much queued during the outage — a
# 100x run-to-run spread that no threshold can gate. The obs_overhead pair
# differences two noisy absolute throughputs (stats plane off vs on) to
# expose the plane's relative cost; the delta is the point, the absolutes
# swing with host load, so all three stay visible but ungated.
INFORMATIONAL = {"post_recovery_msgs_per_sec", "stats_off_msgs_per_sec",
                 "stats_on_msgs_per_sec", "overhead_pct"}
# Build-identity meta fields: differing values make the comparison
# apples-to-oranges, so they warn loudly.
IDENTITY_META = ("compiler", "compiler_version", "build_type", "sanitize")


def direction(field):
    if field in INFORMATIONAL:
        return 0
    if any(field.endswith(suf) for suf in HIGHER_BETTER):
        return +1
    if field in LOWER_BETTER:
        return -1
    return 0


def load_reports(directory):
    reports = {}
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        with open(path) as f:
            doc = json.load(f)
        reports[doc.get("bench", os.path.basename(path))] = doc
    return reports


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--candidate", required=True)
    ap.add_argument("--threshold", type=float, default=0.10)
    ap.add_argument("--cliff", type=float, default=0.25)
    ap.add_argument("--warn-only", action="store_true")
    args = ap.parse_args()

    base = load_reports(args.baseline)
    cand = load_reports(args.candidate)
    if not base:
        print(f"compare_benches: no BENCH_*.json in {args.baseline}",
              file=sys.stderr)
        return 2
    if not cand:
        print(f"compare_benches: no BENCH_*.json in {args.candidate}",
              file=sys.stderr)
        return 2

    regressions = warnings = improvements = compared = 0
    for bench, bdoc in sorted(base.items()):
        cdoc = cand.get(bench)
        if cdoc is None:
            print(f"[warn] {bench}: present in baseline, missing in candidate")
            warnings += 1
            continue

        bmeta, cmeta = bdoc.get("meta", {}), cdoc.get("meta", {})
        for key in IDENTITY_META:
            if key in bmeta and key in cmeta and bmeta[key] != cmeta[key]:
                print(f"[warn] {bench}: meta.{key} differs "
                      f"({bmeta[key]} -> {cmeta[key]}); comparison may be "
                      f"apples-to-oranges")
                warnings += 1

        brows = {r["row"]: r for r in bdoc.get("rows", [])}
        crows = {r["row"]: r for r in cdoc.get("rows", [])}
        for name, brow in sorted(brows.items()):
            crow = crows.get(name)
            if crow is None:
                print(f"[warn] {bench}/{name}: row missing in candidate")
                warnings += 1
                continue
            for field, bval in brow.items():
                sign = direction(field)
                if sign == 0 or not isinstance(bval, (int, float)) \
                        or isinstance(bval, bool):
                    continue
                cval = crow.get(field)
                if not isinstance(cval, (int, float)) or bval == 0:
                    continue
                compared += 1
                # Positive delta = better, for either direction.
                delta = sign * (cval - bval) / abs(bval)
                tag = f"{bench}/{name}.{field}"
                pct = f"{delta * +100:+.1f}%"
                if delta < -args.threshold:
                    hard = delta < -args.cliff or not args.warn_only
                    kind = "REGRESSION" if hard else "warn-regression"
                    print(f"[{kind}] {tag}: {bval:g} -> {cval:g} ({pct})")
                    if hard:
                        regressions += 1
                    else:
                        warnings += 1
                elif delta > args.threshold:
                    print(f"[improved] {tag}: {bval:g} -> {cval:g} ({pct})")
                    improvements += 1

    print(f"\ncompare_benches: {compared} metrics compared, "
          f"{improvements} improved, {warnings} warning(s), "
          f"{regressions} regression(s)")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())

// Unit tests: workload generators and the stats layer.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "helpers.h"
#include "stats/response.h"
#include "stats/table.h"
#include "stats/visibility.h"

namespace cim {
namespace {

using test::X;

TEST(UniqueValueSource, ValuesAreUniqueAndNonInitial) {
  wl::UniqueValueSource src;
  std::set<Value> seen;
  for (int i = 0; i < 1000; ++i) {
    const Value v = src.next();
    EXPECT_NE(v, kInitValue);
    EXPECT_TRUE(seen.insert(v).second);
  }
}

TEST(UniformScript, RespectsLengthAndWriteFraction) {
  wl::UniformConfig cfg;
  cfg.ops_per_process = 1000;
  cfg.write_fraction = 0.3;
  cfg.num_vars = 5;
  Rng rng(1);
  wl::UniqueValueSource values;
  auto script = wl::uniform_script(cfg, rng, values);
  ASSERT_EQ(script.size(), 1000u);
  int writes = 0;
  for (const auto& step : script) {
    EXPECT_LT(step.var.value, 5u);
    if (step.kind == chk::OpKind::kWrite) ++writes;
  }
  EXPECT_GT(writes, 220);
  EXPECT_LT(writes, 380);
}

TEST(UniformScript, HotspotSkewsWrites) {
  wl::UniformConfig cfg;
  cfg.ops_per_process = 2000;
  cfg.write_fraction = 1.0;
  cfg.num_vars = 10;
  cfg.hotspot = 0.8;
  Rng rng(2);
  wl::UniqueValueSource values;
  auto script = wl::uniform_script(cfg, rng, values);
  int hot = 0;
  for (const auto& step : script) {
    if (step.var == VarId{0}) ++hot;
  }
  EXPECT_GT(hot, 1400);
}

TEST(UniformScript, DeterministicForSameSeed) {
  wl::UniformConfig cfg;
  cfg.ops_per_process = 50;
  Rng r1(9), r2(9);
  wl::UniqueValueSource v1, v2;
  auto a = wl::uniform_script(cfg, r1, v1);
  auto b = wl::uniform_script(cfg, r2, v2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].var, b[i].var);
    EXPECT_EQ(a[i].value, b[i].value);
  }
}

TEST(ScriptRunner, RunsAllStepsAndSignalsCompletion) {
  isc::Federation fed(test::single_system(2, proto::anbkh_protocol()));
  std::vector<wl::Step> script{wl::write_step(X, 1), wl::read_step(X),
                               wl::write_step(X, 2)};
  wl::ScriptRunner runner(fed.simulator(), fed.system(0).app(0),
                          std::move(script), sim::milliseconds(1),
                          sim::milliseconds(2), 5);
  bool finished = false;
  runner.on_finished = [&] { finished = true; };
  runner.start();
  fed.run();
  EXPECT_TRUE(finished);
  EXPECT_TRUE(runner.done());
  EXPECT_EQ(runner.steps_completed(), 3u);
}

TEST(RelayDriver, FiresOnceTriggerObserved) {
  isc::Federation fed(test::single_system(2, proto::anbkh_protocol()));
  wl::RelayDriver relay(fed.simulator(), fed.system(0).app(1), X, 5, VarId{1},
                        6, sim::milliseconds(1));
  relay.start();
  fed.simulator().at(sim::Time{} + sim::milliseconds(10),
                     [&] { fed.system(0).app(0).write(X, 5); });
  fed.run();
  EXPECT_TRUE(relay.fired());
}

TEST(VisibilityTracker, TracksIssueAndFirstApply) {
  stats::VisibilityTracker vis;
  const ProcId w{SystemId{0}, 0};
  const ProcId r{SystemId{0}, 1};
  vis.on_write_issued(w, X, 1, sim::Time{100});
  vis.on_apply(w, X, 1, sim::Time{100});
  vis.on_apply(r, X, 1, sim::Time{400});
  vis.on_apply(r, X, 1, sim::Time{900});  // later re-apply ignored

  EXPECT_EQ(vis.issue_time(1), sim::Time{100});
  EXPECT_EQ(vis.apply_time(1, r), sim::Time{400});
  auto v = vis.visibility(1, {w, r});
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, sim::Duration{300});
}

TEST(VisibilityTracker, MissingTargetYieldsNullopt) {
  stats::VisibilityTracker vis;
  const ProcId w{SystemId{0}, 0};
  const ProcId r{SystemId{0}, 1};
  vis.on_write_issued(w, X, 1, sim::Time{0});
  vis.on_apply(w, X, 1, sim::Time{0});
  EXPECT_FALSE(vis.visibility(1, {r}).has_value());
  EXPECT_FALSE(vis.worst_visibility({r}).has_value());
}

TEST(VisibilityTracker, WorstVisibilityIsMaximum) {
  stats::VisibilityTracker vis;
  const ProcId w{SystemId{0}, 0};
  const ProcId r{SystemId{0}, 1};
  vis.on_write_issued(w, X, 1, sim::Time{0});
  vis.on_apply(w, X, 1, sim::Time{0});
  vis.on_apply(r, X, 1, sim::Time{50});
  vis.on_write_issued(w, X, 2, sim::Time{100});
  vis.on_apply(w, X, 2, sim::Time{100});
  vis.on_apply(r, X, 2, sim::Time{350});
  auto worst = vis.worst_visibility({r});
  ASSERT_TRUE(worst.has_value());
  EXPECT_EQ(*worst, sim::Duration{250});
  EXPECT_EQ(vis.all_visibilities({r}).size(), 2u);
}

TEST(ResponseStats, ComputesMeanAndMax) {
  chk::Recorder rec;
  const ProcId p{SystemId{0}, 0};
  auto w1 = rec.begin(p, false, chk::OpKind::kWrite, X, 1, sim::Time{0});
  rec.end_write(w1, sim::Time{10});
  auto w2 = rec.begin(p, false, chk::OpKind::kWrite, X, 2, sim::Time{20});
  rec.end_write(w2, sim::Time{50});
  auto r1 = rec.begin(p, false, chk::OpKind::kRead, X, 0, sim::Time{60});
  rec.end_read(r1, 2, sim::Time{61});

  auto ws = stats::response_stats(rec.full(), chk::OpKind::kWrite);
  EXPECT_EQ(ws.count, 2u);
  EXPECT_DOUBLE_EQ(ws.mean_ns, 20.0);
  EXPECT_EQ(ws.max_ns, 30);
  auto rs = stats::response_stats(rec.full(), chk::OpKind::kRead);
  EXPECT_EQ(rs.count, 1u);
  EXPECT_EQ(rs.max_ns, 1);
}

TEST(ResponseStats, ExcludesIspOps) {
  chk::Recorder rec;
  const ProcId isp{SystemId{0}, 9};
  auto w = rec.begin(isp, true, chk::OpKind::kWrite, X, 1, sim::Time{0});
  rec.end_write(w, sim::Time{1000});
  auto ws = stats::response_stats(rec.full(), chk::OpKind::kWrite);
  EXPECT_EQ(ws.count, 0u);
}

TEST(Table, AlignsColumns) {
  stats::Table t({"name", "value"});
  t.add_row("n", 4);
  t.add_row("latency", "3l+2d");
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name    | value |"), std::string::npos);
  EXPECT_NE(out.find("| latency | 3l+2d |"), std::string::npos);
}

}  // namespace
}  // namespace cim

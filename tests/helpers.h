// Shared test helpers: compact builders for systems, federations, and
// hand-written histories.
#pragma once

#include <memory>
#include <vector>

#include "checker/history.h"
#include "interconnect/federation.h"
#include "mcs/system.h"
#include "protocols/anbkh.h"
#include "protocols/aw_seq.h"
#include "protocols/lazy_batch.h"
#include "protocols/tob_causal.h"
#include "workload/generator.h"

namespace cim::test {

inline VarId X{0};
inline VarId Y{1};
inline VarId Z{2};

/// Build a history from (proc, kind, var, value) tuples; program order is
/// the order of mention per process.
struct H {
  std::vector<chk::Op> ops;
  std::map<ProcId, std::uint64_t> seq;

  H& rd(std::uint16_t proc, VarId var, Value value) {
    return add(proc, chk::OpKind::kRead, var, value);
  }
  H& wr(std::uint16_t proc, VarId var, Value value) {
    return add(proc, chk::OpKind::kWrite, var, value);
  }
  H& add(std::uint16_t proc, chk::OpKind kind, VarId var, Value value) {
    chk::Op op;
    op.id = OpId{ops.size()};
    op.proc = ProcId{SystemId{0}, proc};
    op.kind = kind;
    op.var = var;
    op.value = value;
    op.proc_seq = seq[op.proc]++;
    ops.push_back(op);
    return *this;
  }
  chk::History history() const { return chk::History(ops); }
};

/// One-system federation with `procs` application processes.
inline isc::FederationConfig single_system(std::uint16_t procs,
                                           mcs::ProtocolFactory protocol,
                                           std::uint64_t seed = 1) {
  isc::FederationConfig cfg;
  cfg.seed = seed;
  mcs::SystemConfig sc;
  sc.id = SystemId{0};
  sc.num_app_processes = procs;
  sc.protocol = std::move(protocol);
  sc.seed = seed + 100;
  cfg.systems.push_back(std::move(sc));
  return cfg;
}

/// Two systems of `procs` application processes each, joined by one link.
inline isc::FederationConfig two_systems(std::uint16_t procs,
                                         mcs::ProtocolFactory protocol_a,
                                         mcs::ProtocolFactory protocol_b,
                                         std::uint64_t seed = 1) {
  isc::FederationConfig cfg;
  cfg.seed = seed;
  for (std::uint16_t s = 0; s < 2; ++s) {
    mcs::SystemConfig sc;
    sc.id = SystemId{s};
    sc.num_app_processes = procs;
    sc.protocol = s == 0 ? protocol_a : protocol_b;
    sc.seed = seed + 100 + s;
    cfg.systems.push_back(std::move(sc));
  }
  isc::LinkSpec link;
  link.system_a = 0;
  link.system_b = 1;
  cfg.links.push_back(std::move(link));
  return cfg;
}

/// Chain of `m` systems: S0 - S1 - ... - S(m-1).
inline isc::FederationConfig chain_systems(std::size_t m, std::uint16_t procs,
                                           mcs::ProtocolFactory protocol,
                                           std::uint64_t seed = 1) {
  isc::FederationConfig cfg;
  cfg.seed = seed;
  for (std::size_t s = 0; s < m; ++s) {
    mcs::SystemConfig sc;
    sc.id = SystemId{static_cast<std::uint16_t>(s)};
    sc.num_app_processes = procs;
    sc.protocol = protocol;
    sc.seed = seed + 100 + s;
    cfg.systems.push_back(std::move(sc));
  }
  for (std::size_t s = 0; s + 1 < m; ++s) {
    isc::LinkSpec link;
    link.system_a = s;
    link.system_b = s + 1;
    cfg.links.push_back(std::move(link));
  }
  return cfg;
}

}  // namespace cim::test

// Unit tests: history recording, the relation utilities, and the causal /
// sequential consistency checkers on hand-crafted histories.
#include <gtest/gtest.h>

#include "checker/causal_checker.h"
#include "checker/relation.h"
#include "checker/search_checker.h"
#include "helpers.h"

namespace cim::chk {
namespace {

using test::H;
using test::X;
using test::Y;
using test::Z;

// ---------------------------------------------------------------- Relation

TEST(Relation, SetAndTest) {
  Relation r(4);
  EXPECT_FALSE(r.test(1, 2));
  r.set(1, 2);
  EXPECT_TRUE(r.test(1, 2));
  EXPECT_FALSE(r.test(2, 1));
  EXPECT_EQ(r.edge_count(), 1u);
}

TEST(Relation, SuccessorsIterate) {
  Relation r(70);  // spans multiple words
  r.set(3, 2);
  r.set(3, 65);
  std::vector<std::size_t> succ;
  r.for_successors(3, [&](std::size_t j) { succ.push_back(j); });
  EXPECT_EQ(succ, (std::vector<std::size_t>{2, 65}));
}

TEST(Relation, ClosureOfChain) {
  Relation r(4);
  r.set(0, 1);
  r.set(1, 2);
  r.set(2, 3);
  auto res = transitive_closure(r);
  EXPECT_FALSE(res.cycle_witness.has_value());
  EXPECT_TRUE(res.closure.test(0, 3));
  EXPECT_TRUE(res.closure.test(0, 2));
  EXPECT_TRUE(res.closure.test(1, 3));
  EXPECT_FALSE(res.closure.test(3, 0));
  EXPECT_FALSE(res.closure.test(0, 0));
}

TEST(Relation, ClosureDetectsCycle) {
  Relation r(3);
  r.set(0, 1);
  r.set(1, 2);
  r.set(2, 0);
  auto res = transitive_closure(r);
  ASSERT_TRUE(res.cycle_witness.has_value());
  EXPECT_TRUE(res.closure.test(0, 0));
  EXPECT_TRUE(res.closure.test(1, 0));
}

TEST(Relation, ClosureDetectsSelfLoop) {
  Relation r(2);
  r.set(1, 1);
  auto res = transitive_closure(r);
  ASSERT_TRUE(res.cycle_witness.has_value());
  EXPECT_EQ(res.cycle_witness->first, 1u);
}

TEST(Relation, ClosureOfDiamond) {
  Relation r(4);
  r.set(0, 1);
  r.set(0, 2);
  r.set(1, 3);
  r.set(2, 3);
  auto res = transitive_closure(r);
  EXPECT_FALSE(res.cycle_witness.has_value());
  EXPECT_TRUE(res.closure.test(0, 3));
  EXPECT_FALSE(res.closure.test(1, 2));
  EXPECT_FALSE(res.closure.test(2, 1));
}

// ----------------------------------------------------------------- History

TEST(History, GroupsOpsPerProcess) {
  auto h = H{}.wr(0, X, 1).rd(1, X, 1).wr(0, Y, 2).history();
  EXPECT_EQ(h.size(), 3u);
  ASSERT_EQ(h.processes().size(), 2u);
  EXPECT_EQ(h.span_of(ProcId{SystemId{0}, 0}).size(), 2u);
  EXPECT_EQ(h.span_of(ProcId{SystemId{0}, 1}).size(), 1u);
}

TEST(History, FilterDropsOps) {
  auto h = H{}.wr(0, X, 1).rd(1, X, 1).history();
  auto only_writes =
      h.filter([](const Op& op) { return op.kind == OpKind::kWrite; });
  EXPECT_EQ(only_writes.size(), 1u);
}

TEST(Recorder, RecordsCompletedOpsOnly) {
  Recorder rec;
  ProcId p{SystemId{0}, 0};
  OpId w = rec.begin(p, false, OpKind::kWrite, X, 7, sim::Time{1});
  rec.end_write(w, sim::Time{2});
  rec.begin(p, false, OpKind::kRead, X, 0, sim::Time{3});  // never responds
  auto h = rec.full();
  ASSERT_EQ(h.size(), 1u);
  EXPECT_EQ(h.op(0).value, 7);
  EXPECT_EQ(h.op(0).invoked, sim::Time{1});
  EXPECT_EQ(h.op(0).responded, sim::Time{2});
}

TEST(Recorder, SystemAndFederationViews) {
  Recorder rec;
  ProcId app0{SystemId{0}, 0};
  ProcId isp0{SystemId{0}, 1};
  ProcId app1{SystemId{1}, 0};
  rec.end_write(rec.begin(app0, false, OpKind::kWrite, X, 1, {}), {});
  rec.end_write(rec.begin(isp0, true, OpKind::kWrite, X, 2, {}), {});
  rec.end_write(rec.begin(app1, false, OpKind::kWrite, X, 3, {}), {});

  EXPECT_EQ(rec.system(SystemId{0}).size(), 2u);   // app0 + isp0
  EXPECT_EQ(rec.system(SystemId{1}).size(), 1u);
  EXPECT_EQ(rec.federation().size(), 2u);          // ISP ops excluded
}

TEST(Recorder, DoubleCompletionThrows) {
  Recorder rec;
  OpId w = rec.begin(ProcId{}, false, OpKind::kWrite, X, 1, {});
  rec.end_write(w, {});
  EXPECT_THROW(rec.end_write(w, {}), InvariantViolation);
}

// ------------------------------------------------------ CausalChecker: good

TEST(CausalChecker, EmptyHistoryIsCausal) {
  EXPECT_TRUE(CausalChecker{}.check(History{}).ok());
}

TEST(CausalChecker, SingleProcessSequentialIsCausal) {
  auto h = H{}.wr(0, X, 1).rd(0, X, 1).wr(0, X, 2).rd(0, X, 2).history();
  EXPECT_TRUE(CausalChecker{}.check(h).ok());
}

TEST(CausalChecker, ReadOfInitBeforeAnyWriteIsCausal) {
  auto h = H{}.rd(0, X, kInitValue).wr(1, X, 1).history();
  EXPECT_TRUE(CausalChecker{}.check(h).ok());
}

TEST(CausalChecker, ConcurrentWritesReadInDifferentOrdersIsCausal) {
  // The hallmark of causal (vs sequential) memory: two concurrent writes may
  // be observed in different orders by different readers.
  auto h = H{}
               .wr(0, X, 1)
               .wr(1, X, 2)
               .rd(2, X, 1)
               .rd(2, X, 2)
               .rd(3, X, 2)
               .rd(3, X, 1)
               .history();
  EXPECT_TRUE(CausalChecker{}.check(h).ok());
}

TEST(CausalChecker, CausallyOrderedWritesReadInOrderIsCausal) {
  auto h = H{}
               .wr(0, X, 1)
               .rd(1, X, 1)
               .wr(1, Y, 2)
               .rd(2, Y, 2)
               .rd(2, X, 1)
               .history();
  EXPECT_TRUE(CausalChecker{}.check(h).ok());
}

// ------------------------------------------------------- CausalChecker: bad

TEST(CausalChecker, DetectsThinAirRead) {
  auto h = H{}.rd(0, X, 42).history();
  auto res = CausalChecker{}.check(h);
  EXPECT_EQ(res.pattern, BadPattern::kThinAirRead);
}

TEST(CausalChecker, DuplicateWritesAreCheckedNotRejected) {
  // The old checker refused any history writing the same value twice to one
  // variable (kDuplicateWrite). Repeated values are now a constraint source:
  // this history is causal (nothing even reads the value).
  auto h = H{}.wr(0, X, 5).wr(1, X, 5).history();
  auto res = CausalChecker{}.check(h);
  EXPECT_TRUE(res.ok()) << res.detail;
}

TEST(CausalChecker, AmbiguousReadResolvedByResidualSearch) {
  // Both writes of x=5 are admissible sources for each read; each reader
  // can bind to either writer, so the history is causal — under the old
  // distinct-value precondition it was simply rejected.
  auto h = H{}
               .wr(0, X, 5)
               .wr(1, X, 5)
               .rd(2, X, 5)
               .rd(3, X, 5)
               .history();
  auto res = CausalChecker{}.check(h);
  EXPECT_TRUE(res.ok()) << res.detail;
  EXPECT_EQ(res.stats.ambiguous_reads, 2u);
  EXPECT_GE(res.stats.assignments_tried, 1u);
}

TEST(CausalChecker, RepeatedValueViolationStillDetected) {
  // Duplicate writes of x=1 exist, but EVERY assignment of r(x)1 leaves the
  // stale-read pattern: p2 sees x=2 (which causally overwrote both writes
  // of 1) and then reads 1 again.
  auto h = H{}
               .wr(0, X, 1)
               .wr(0, X, 1)
               .wr(0, X, 2)
               .rd(1, X, 2)
               .rd(1, X, 1)
               .history();
  auto res = CausalChecker{}.check(h);
  EXPECT_EQ(res.pattern, BadPattern::kWriteCORead) << res.detail;
}

TEST(CausalChecker, SameValueOnDifferentVarsIsFine) {
  auto h = H{}.wr(0, X, 5).wr(1, Y, 5).history();
  EXPECT_TRUE(CausalChecker{}.check(h).ok());
}

TEST(CausalChecker, DetectsStaleReadAfterCausalOverwrite) {
  // w(x)1 ⇝ w(x)2 (program order); reading 2 then 1 is the WriteCORead
  // pattern: p1 reads the causally overwritten value after the newer one.
  auto h = H{}
               .wr(0, X, 1)
               .wr(0, X, 2)
               .rd(1, X, 2)
               .rd(1, X, 1)
               .history();
  auto res = CausalChecker{}.check(h);
  EXPECT_EQ(res.pattern, BadPattern::kWriteCORead);
}

TEST(CausalChecker, DetectsInitReadAfterCausalWrite) {
  // p0 writes x then y; p1 sees y but then reads x as initial.
  auto h = H{}
               .wr(0, X, 1)
               .wr(0, Y, 2)
               .rd(1, Y, 2)
               .rd(1, X, kInitValue)
               .history();
  auto res = CausalChecker{}.check(h);
  EXPECT_EQ(res.pattern, BadPattern::kWriteCOInitRead);
}

TEST(CausalChecker, DetectsSection3Counterexample) {
  // The interconnection counterexample from Section 3 of the paper:
  // w(x)v is issued in S^k, propagated; a process j reads it and writes
  // w(y)u; if propagation inverts the order, a process l reads y=u and then
  // reads x as stale.
  auto h = H{}
               .wr(0, X, 1)   // w(x)v in S0
               .rd(1, X, 1)   // S1 process reads v
               .wr(1, Y, 2)   // ... and writes w(y)u
               .rd(2, Y, 2)   // S0 process l sees u
               .rd(2, X, kInitValue)  // ... but not v: violation
               .history();
  auto res = CausalChecker{}.check(h);
  EXPECT_EQ(res.pattern, BadPattern::kWriteCOInitRead);
}

TEST(CausalChecker, DetectsReadYourWritesViolation) {
  // A process must see its own writes: w(x)1 then r(x)init is bad.
  auto h = H{}.wr(0, X, 1).rd(0, X, kInitValue).history();
  auto res = CausalChecker{}.check(h);
  EXPECT_EQ(res.pattern, BadPattern::kWriteCOInitRead);
}

TEST(CausalChecker, DetectsCausalOrderCycleViaFutureRead) {
  // p0 reads a value before anyone wrote it (in program order the read
  // precedes the write that produced the value at the same process chain):
  // r(x)1 at p0, then p0 writes y=2; p1 reads y=2 then writes x=1.
  // co: w(x)1 -> r(x)1 -> w(y)2 -> r(y)2 -> w(x)1 — a cycle.
  auto h = H{}
               .rd(0, X, 1)
               .wr(0, Y, 2)
               .rd(1, Y, 2)
               .wr(1, X, 1)
               .history();
  auto res = CausalChecker{}.check(h);
  EXPECT_EQ(res.pattern, BadPattern::kCyclicCO);
}

TEST(CausalChecker, CMCatchesWhatCCMisses) {
  // Classic CM-vs-CC separating history (Bouajjani et al.): two processes
  // each write then read the other's variable twice with interleaved
  // overwrites, such that every per-process serialization needs the other's
  // write both before and after its own.
  //
  // p0: w(x)1 r(y)0 w(y)2 r(y)2
  // p1: w(y)1' ... read x stale after seeing evidence x was overwritten.
  //
  // We use the known pattern: p0: w(x)1; r(x)2; r(x)1  — reading x=1 again
  // after x=2 where w(x)1 ⇝ w(x)2 is already WriteCORead; instead craft the
  // HB case: the overwrite is only forced through p0's *own* earlier read.
  // p1: w(x)1, w(x)2 are concurrent (different processes);
  // p0 reads x=2 then x=1: fine for CC per-read, but CM requires a single
  // serialization for p0 in which both reads are legal — impossible when
  // both writes are co-ordered with ... (see test below for the accepted
  // concurrent version).
  auto h = H{}
               .wr(0, X, 1)
               .wr(1, X, 2)
               .rd(2, X, 2)
               .rd(2, X, 1)
               .rd(2, X, 2)  // x flip-flops back: no serialization for p2
               .history();
  auto cc = CausalChecker{}.check(h, Level::kCC);
  auto cm = CausalChecker{}.check(h, Level::kCM);
  EXPECT_TRUE(cc.ok());  // each read individually justifiable
  EXPECT_EQ(cm.pattern, BadPattern::kCyclicHB);
}

TEST(CausalChecker, CausalOrderExposed) {
  auto h = H{}.wr(0, X, 1).rd(1, X, 1).wr(1, Y, 2).history();
  auto co = CausalChecker{}.causal_order(h);
  ASSERT_TRUE(co.has_value());
  EXPECT_TRUE(co->test(0, 1));  // w -> r (reads-from)
  EXPECT_TRUE(co->test(1, 2));  // program order
  EXPECT_TRUE(co->test(0, 2));  // transitivity
}

// ----------------------------------------------------------- SearchChecker

TEST(SearchChecker, AgreesCausalOnGoodHistory) {
  auto h = H{}
               .wr(0, X, 1)
               .wr(1, X, 2)
               .rd(2, X, 1)
               .rd(2, X, 2)
               .rd(3, X, 2)
               .rd(3, X, 1)
               .history();
  auto res = SearchChecker{}.is_causal(h);
  ASSERT_TRUE(res.has_value());
  EXPECT_TRUE(*res);
}

TEST(SearchChecker, AgreesCausalOnBadHistory) {
  auto h = H{}
               .wr(0, X, 1)
               .wr(0, X, 2)
               .rd(1, X, 2)
               .rd(1, X, 1)
               .history();
  auto res = SearchChecker{}.is_causal(h);
  ASSERT_TRUE(res.has_value());
  EXPECT_FALSE(*res);
}

TEST(SearchChecker, SequentialAcceptsTotalOrderExecution) {
  auto h = H{}
               .wr(0, X, 1)
               .rd(1, X, 1)
               .wr(1, X, 2)
               .rd(0, X, 2)
               .history();
  auto res = SearchChecker{}.is_sequential(h);
  ASSERT_TRUE(res.has_value());
  EXPECT_TRUE(*res);
}

TEST(SearchChecker, SequentialRejectsOppositeReadOrders) {
  // Causal but not sequential: two readers see concurrent writes in
  // opposite orders.
  auto h = H{}
               .wr(0, X, 1)
               .wr(1, X, 2)
               .rd(2, X, 1)
               .rd(2, X, 2)
               .rd(3, X, 2)
               .rd(3, X, 1)
               .history();
  auto seq = SearchChecker{}.is_sequential(h);
  ASSERT_TRUE(seq.has_value());
  EXPECT_FALSE(*seq);
  auto causal = SearchChecker{}.is_causal(h);
  ASSERT_TRUE(causal.has_value());
  EXPECT_TRUE(*causal);
}

TEST(SearchChecker, SequentialRejectsNonCausalHistory) {
  auto h = H{}.wr(0, X, 1).rd(0, X, kInitValue).history();
  auto res = SearchChecker{}.is_sequential(h);
  ASSERT_TRUE(res.has_value());
  EXPECT_FALSE(*res);
}

// Property: the polynomial bad-pattern checker and the exhaustive search
// checker agree on random small histories.
class CheckerCrossValidation : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(CheckerCrossValidation, BadPatternsMatchSearch) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    // Random small history: 3 processes, up to 9 ops, 2 vars, values drawn
    // from a small pool so stale/overwritten reads occur frequently.
    H h;
    Value next_value = 1;
    const int num_ops = 3 + static_cast<int>(rng.uniform(0, 6));
    for (int i = 0; i < num_ops; ++i) {
      const auto proc = static_cast<std::uint16_t>(rng.uniform(0, 2));
      const VarId var{static_cast<std::uint32_t>(rng.uniform(0, 1))};
      if (rng.chance(0.5)) {
        h.wr(proc, var, next_value++);
      } else {
        // Read some plausible value: init or one of the written ones.
        const Value v = static_cast<Value>(
            rng.uniform(0, static_cast<std::uint64_t>(next_value - 1)));
        h.rd(proc, var, v);
      }
    }
    auto history = h.history();
    auto fast = CausalChecker{}.check(history, chk::Level::kCM);
    auto slow = SearchChecker{}.is_causal(history);
    if (!slow.has_value()) continue;  // budget exceeded — skip
    EXPECT_EQ(fast.ok(), *slow)
        << "checkers disagree (" << to_string(fast.pattern) << " vs search "
        << (*slow ? "causal" : "not causal") << ") on:\n"
        << history.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckerCrossValidation,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace cim::chk

file(REMOVE_RECURSE
  "libcim_workload.a"
)

// Order statistics over duration samples: the Section-6 formulas are
// worst-case bounds, so benches report full distributions under jitter to
// show where typical executions land relative to the bound.
#pragma once

#include <vector>

#include "sim/time.h"

namespace cim::stats {

struct DurationSummary {
  std::size_t count = 0;
  sim::Duration min{};
  sim::Duration p50{};
  sim::Duration p90{};
  sim::Duration p99{};
  sim::Duration max{};
  double mean_ns = 0.0;
};

/// Summarize a sample set (copied; input order irrelevant). Percentiles use
/// the nearest-rank method; empty input yields a zeroed summary.
DurationSummary summarize(std::vector<sim::Duration> samples);

}  // namespace cim::stats

// Experiment E7 (Section 1.1, dial-up links).
//
// Paper: "the reliable FIFO channel used does not need to be available all
// the time. If the channel is not available during some period of time, the
// variable updates can be queued up to be propagated at a later time. This
// makes the protocol practical even with dial-up connections."
//
// We sweep the link duty cycle and report worst-case cross-system
// visibility, pairs delivered, and the checker verdict: outages only delay
// propagation; nothing is lost and causality always holds.
#include <iostream>

#include "bench_util.h"
#include "checker/causal_checker.h"
#include "stats/table.h"
#include "stats/visibility.h"

namespace {

using namespace cim;

struct Outcome {
  sim::Duration worst{-1};
  std::uint64_t pairs = 0;
  bool causal = false;
};

Outcome run(double duty, std::uint64_t seed) {
  const sim::Duration period = sim::milliseconds(100);
  const auto up = sim::Duration{
      static_cast<std::int64_t>(static_cast<double>(period.ns) * duty)};

  isc::FederationConfig cfg;
  cfg.seed = seed;
  for (std::uint16_t s = 0; s < 2; ++s) {
    mcs::SystemConfig sc;
    sc.id = SystemId{s};
    sc.num_app_processes = 3;
    sc.protocol = proto::anbkh_protocol();
    sc.seed = seed * 50 + s;
    cfg.systems.push_back(std::move(sc));
  }
  isc::LinkSpec link;
  link.system_a = 0;
  link.system_b = 1;
  link.delay = [] {
    return std::make_unique<net::FixedDelay>(sim::milliseconds(2));
  };
  link.availability = [period, up] {
    return std::make_unique<net::PeriodicDuty>(period, up);
  };
  cfg.links.push_back(std::move(link));
  isc::Federation fed(std::move(cfg));

  stats::VisibilityTracker vis;
  fed.add_observer(&vis);

  wl::UniformConfig wc;
  wc.ops_per_process = 40;
  wc.think_max = sim::milliseconds(20);
  wc.seed = seed + 5;
  auto runners = wl::install_uniform(fed, wc);
  fed.run();

  Outcome out;
  out.worst = vis.worst_visibility(bench::all_app_procs(fed))
                  .value_or(sim::Duration{-1});
  out.pairs = fed.interconnector().shared_isp(0).pairs_received() +
              fed.interconnector().shared_isp(1).pairs_received();
  out.causal = chk::CausalChecker{}.check(fed.federation_history()).ok();
  return out;
}

}  // namespace

int main() {
  std::cout << "E7 — interconnection over an intermittently available "
               "(dial-up) link\nperiod 100ms, ANBKH systems, 2x3 processes\n\n";

  stats::Table table({"link duty cycle", "worst visibility", "pairs delivered",
                      "causal"});
  for (double duty : {1.0, 0.5, 0.2, 0.05}) {
    const Outcome o = run(duty, 11);
    char label[16];
    std::snprintf(label, sizeof(label), "%.0f%%", duty * 100);
    table.add_row(label, bench::ms_string(o.worst), o.pairs,
                  o.causal ? "yes" : "NO");
  }
  table.print();

  std::cout << "\nLower duty cycles stretch visibility latency (updates queue "
               "at the IS-process\nside of the link) but every update is "
               "delivered in order and S^T stays causal.\n";
  return 0;
}

#include "obs/metrics.h"

#include <algorithm>
#include <ostream>

#include "obs/json.h"

namespace cim::obs {

void Int64Histogram::decimate() {
  // Keep every 2nd retained sample and double the keep stride: memory is
  // bounded at max_samples_ while the retained set stays an (approximately)
  // uniform stride sample of the full observation stream.
  std::size_t out = 0;
  for (std::size_t in = 0; in < samples_.size(); in += 2) {
    samples_[out++] = samples_[in];
  }
  samples_.resize(out);
  stride_ *= 2;
}

stats::DurationSummary Int64Histogram::summary() const {
  std::vector<sim::Duration> durations;
  durations.reserve(samples_.size());
  for (std::int64_t v : samples_) durations.push_back(sim::Duration{v});
  stats::DurationSummary s = stats::summarize(std::move(durations));
  // Percentiles come from the (possibly decimated) retained samples; count,
  // mean, and the extremes are exact.
  s.count = static_cast<std::size_t>(count_);
  s.min = sim::Duration{min_};
  s.max = sim::Duration{max_};
  if (count_ > 0) s.mean_ns = static_cast<double>(sum_) / count_;
  return s;
}

const MetricsSnapshot::Entry* MetricsSnapshot::find(
    std::string_view name) const {
  for (const Entry& e : entries) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), Counter{}).first;
  }
  return it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), Gauge{}).first;
  }
  return it->second;
}

DurationHistogram& MetricsRegistry::histogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), DurationHistogram{}).first;
  }
  return it->second;
}

ValueHistogram& MetricsRegistry::value_histogram(std::string_view name) {
  auto it = value_histograms_.find(name);
  if (it == value_histograms_.end()) {
    it = value_histograms_.emplace(std::string(name), ValueHistogram{}).first;
  }
  return it->second;
}

void MetricsRegistry::set_histogram_max_samples(std::size_t n) {
  for (auto& [name, h] : histograms_) h.set_max_samples(n);
  for (auto& [name, h] : value_histograms_) h.set_max_samples(n);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  for (const auto& [name, c] : counters_) {
    MetricsSnapshot::Entry e;
    e.name = name;
    e.kind = MetricsSnapshot::Kind::kCounter;
    e.value = static_cast<std::int64_t>(c.value());
    out.entries.push_back(std::move(e));
  }
  for (const auto& [name, g] : gauges_) {
    MetricsSnapshot::Entry e;
    e.name = name;
    e.kind = MetricsSnapshot::Kind::kGauge;
    e.value = g.value();
    out.entries.push_back(std::move(e));
  }
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::Entry e;
    e.name = name;
    e.kind = MetricsSnapshot::Kind::kHistogram;
    e.summary = h.summary();
    e.sum = h.sum();
    out.entries.push_back(std::move(e));
  }
  for (const auto& [name, h] : value_histograms_) {
    MetricsSnapshot::Entry e;
    e.name = name;
    e.kind = MetricsSnapshot::Kind::kValueHistogram;
    e.summary = h.summary();
    e.sum = h.sum();
    out.entries.push_back(std::move(e));
  }
  std::sort(out.entries.begin(), out.entries.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  return out;
}

namespace {

const char* kind_name(MetricsSnapshot::Kind k) {
  switch (k) {
    case MetricsSnapshot::Kind::kCounter: return "counter";
    case MetricsSnapshot::Kind::kGauge: return "gauge";
    case MetricsSnapshot::Kind::kHistogram: return "histogram";
    case MetricsSnapshot::Kind::kValueHistogram: return "value_histogram";
  }
  return "?";
}

bool is_histogram(MetricsSnapshot::Kind k) {
  return k == MetricsSnapshot::Kind::kHistogram ||
         k == MetricsSnapshot::Kind::kValueHistogram;
}

}  // namespace

void write_json(std::ostream& os, const MetricsSnapshot& snapshot) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("schema", "cim.metrics.v1");
  w.kv("v", kMetricsSchemaVersion);
  // Provenance header (schema v5): lets an aggregator refuse or flag
  // snapshots from a different schema or build instead of silently merging
  // incomparable gauges.
  w.key("meta");
  w.begin_object();
  w.kv("schema_version", kMetricsSchemaVersion);
#if defined(CIM_GIT_SHA)
  w.kv("git_sha", CIM_GIT_SHA);
#else
  w.kv("git_sha", "unknown");
#endif
  w.end_object();
  w.key("metrics");
  w.begin_array();
  for (const MetricsSnapshot::Entry& e : snapshot.entries) {
    w.begin_object();
    w.kv("name", std::string_view(e.name));
    w.kv("kind", kind_name(e.kind));
    if (is_histogram(e.kind)) {
      w.kv("count", static_cast<std::uint64_t>(e.summary.count));
      w.kv("sum", e.sum);
      w.kv("min", e.summary.min.ns);
      w.kv("p50", e.summary.p50.ns);
      w.kv("p90", e.summary.p90.ns);
      w.kv("p99", e.summary.p99.ns);
      w.kv("max", e.summary.max.ns);
      w.kv("mean", e.summary.mean_ns);
    } else {
      w.kv("value", e.value);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

void write_csv(std::ostream& os, const MetricsSnapshot& snapshot) {
  os << "name,kind,value,count,sum,min,p50,p90,p99,max,mean\n";
  for (const MetricsSnapshot::Entry& e : snapshot.entries) {
    os << e.name << ',' << kind_name(e.kind) << ',';
    if (is_histogram(e.kind)) {
      os << ',' << e.summary.count << ',' << e.sum << ',' << e.summary.min.ns
         << ',' << e.summary.p50.ns << ',' << e.summary.p90.ns << ','
         << e.summary.p99.ns << ',' << e.summary.max.ns << ','
         << e.summary.mean_ns;
    } else {
      os << e.value << ",,,,,,,,";
    }
    os << '\n';
  }
}

}  // namespace cim::obs

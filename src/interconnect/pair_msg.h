// The ⟨x, v⟩ pairs exchanged between IS-processes (Fig. 1 of the paper).
// This is the entire inter-system wire format: the IS-protocols are
// protocol-agnostic, so no vector clocks or other MCS metadata cross the
// link — only variable/value pairs, in causal order.
#pragma once

#include "common/ids.h"
#include "common/value.h"
#include "net/message.h"
#include "sim/time.h"

namespace cim::isc {

struct PairMsg final : net::Message {
  VarId var;
  Value value = kInitValue;
  // Instrumentation only, not wire data (the pair stays the paper's entire
  // wire format): send time of this hop (isc.pair_hop_latency), the time the
  // originating IS-process first propagated the update — preserved across
  // tree forwarding, feeding isc.propagation_latency — and the originating
  // write's id, preserved likewise so the write can be traced end-to-end.
  sim::Time sent_at;
  sim::Time origin_time;
  WriteId write_id;

  const char* type_name() const override { return "is.pair"; }
  std::size_t wire_size() const override { return 24 + 4 + 8; }
  net::MessagePtr clone() const override {
    return std::make_unique<PairMsg>(*this);
  }
  WriteId wid() const override { return write_id; }
};

}  // namespace cim::isc

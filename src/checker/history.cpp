#include "checker/history.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace cim::chk {

std::string Op::to_string() const {
  std::ostringstream os;
  os << (kind == OpKind::kRead ? "r" : "w") << "(" << var << ")" << value
     << "@" << cim::to_string(proc) << (is_isp ? "[isp]" : "") << "#"
     << proc_seq;
  return os.str();
}

History::History(std::vector<Op> ops) : ops_(std::move(ops)) {
  std::stable_sort(ops_.begin(), ops_.end(), [](const Op& a, const Op& b) {
    if (a.proc != b.proc) return a.proc < b.proc;
    return a.proc_seq < b.proc_seq;
  });
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    auto [it, inserted] = by_proc_.try_emplace(ops_[i].proc);
    if (inserted) processes_.push_back(ops_[i].proc);
    it->second.push_back(i);
  }
  std::sort(processes_.begin(), processes_.end());
}

const std::vector<std::size_t>& History::process_ops(ProcId p) const {
  static const std::vector<std::size_t> kEmpty;
  auto it = by_proc_.find(p);
  return it == by_proc_.end() ? kEmpty : it->second;
}

std::string History::to_string() const {
  std::ostringstream os;
  for (ProcId p : processes_) {
    os << cim::to_string(p) << ":";
    for (std::size_t i : process_ops(p)) os << " " << ops_[i].to_string();
    os << "\n";
  }
  return os.str();
}

OpId Recorder::begin(ProcId proc, bool is_isp, OpKind kind, VarId var,
                     Value value, sim::Time now) {
  Op op;
  op.id = OpId{static_cast<std::uint64_t>(ops_.size())};
  op.proc = proc;
  op.is_isp = is_isp;
  op.kind = kind;
  op.var = var;
  op.value = value;
  op.proc_seq = next_seq_[proc]++;
  op.invoked = now;
  ops_.push_back(Pending{op, /*completed=*/false});
  if (listener_ && kind == OpKind::kWrite) listener_(op);
  return op.id;
}

void Recorder::end_read(OpId id, Value result, sim::Time now) {
  CIM_CHECK(id.value < ops_.size());
  Pending& p = ops_[id.value];
  CIM_CHECK_MSG(p.op.kind == OpKind::kRead, "end_read on a write op");
  CIM_CHECK_MSG(!p.completed, "operation completed twice");
  p.op.value = result;
  p.op.responded = now;
  p.completed = true;
  if (listener_) listener_(p.op);
}

void Recorder::end_write(OpId id, sim::Time now) {
  CIM_CHECK(id.value < ops_.size());
  Pending& p = ops_[id.value];
  CIM_CHECK_MSG(p.op.kind == OpKind::kWrite, "end_write on a read op");
  CIM_CHECK_MSG(!p.completed, "operation completed twice");
  p.op.responded = now;
  p.completed = true;
}

History Recorder::full() const {
  std::vector<Op> ops;
  for (const Pending& p : ops_) {
    if (p.completed) ops.push_back(p.op);
  }
  return History(std::move(ops));
}

History Recorder::system(SystemId sys) const {
  return full().filter([sys](const Op& op) { return op.proc.system == sys; });
}

History Recorder::federation() const {
  return full().filter([](const Op& op) { return !op.is_isp; });
}

}  // namespace cim::chk

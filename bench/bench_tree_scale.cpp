// Experiment E8 (Corollary 1 at scale): trees of m systems.
//
// Two tables:
//  * traffic — the n+m-1 messages-per-write formula holds for every tree
//    shape (it only depends on n and m, not on the topology);
//  * latency — the worst-case visibility generalizes the star's 3l+2d to
//    (h+1)l + h·d, where h is the hop-eccentricity of the writer's system in
//    the tree (per-link IS-processes, the paper's construction).
#include <iostream>

#include "bench_util.h"
#include "checker/causal_checker.h"
#include "stats/table.h"
#include "stats/visibility.h"

namespace {

using namespace cim;

double messages_per_write(bench::Topology topo, std::size_t m,
                          std::uint16_t procs) {
  bench::FedParams params;
  params.num_systems = m;
  params.procs_per_system = procs;
  params.topology = topo;
  isc::Federation fed(bench::make_config(params));

  wl::UniformConfig wc;
  wc.ops_per_process = 8;
  wc.write_fraction = 1.0;
  wc.seed = 23;
  auto runners = wl::install_uniform(fed, wc);
  fed.run();
  const double writes = static_cast<double>(m) * procs * 8;
  return static_cast<double>(fed.fabric().total_messages()) / writes;
}

sim::Duration worst_latency(bench::Topology topo, std::size_t m,
                            sim::Duration l, sim::Duration d) {
  bench::FedParams params;
  params.num_systems = m;
  params.procs_per_system = 2;
  params.topology = topo;
  params.intra_delay = l;
  params.link_delay = d;
  params.isp_mode = isc::IspMode::kPerLink;
  isc::Federation fed(bench::make_config(params));

  stats::VisibilityTracker vis;
  fed.add_observer(&vis);
  fed.system(0).app(0).write(VarId{0}, 1);
  fed.run();
  return vis.worst_visibility(bench::all_app_procs(fed))
      .value_or(sim::Duration{-1});
}

}  // namespace

int main() {
  std::cout << "E8 — scaling Corollary 1: trees of m interconnected systems\n\n";

  const std::uint16_t procs = 2;
  std::cout << "Traffic (shared IS-processes): paper formula n + m - 1\n";
  stats::Table traffic({"topology", "m", "n", "paper", "measured"});
  for (bench::Topology topo : {bench::Topology::kChain, bench::Topology::kStar,
                               bench::Topology::kBinaryTree}) {
    for (std::size_t m : {std::size_t{2}, std::size_t{4}, std::size_t{8},
                          std::size_t{16}}) {
      const std::size_t n = m * procs;
      traffic.add_row(bench::to_string(topo), m, n,
                      static_cast<double>(n + m - 1),
                      messages_per_write(topo, m, procs));
    }
  }
  traffic.print();

  const sim::Duration l = sim::milliseconds(1);
  const sim::Duration d = sim::milliseconds(10);
  std::cout << "\nLatency (per-link IS-processes, writer in system 0, l="
            << bench::ms_string(l) << ", d=" << bench::ms_string(d)
            << "): formula (h+1)l + h*d\n";
  stats::Table latency(
      {"topology", "m", "h (ecc. of S0)", "paper", "measured"});
  for (bench::Topology topo : {bench::Topology::kChain, bench::Topology::kStar,
                               bench::Topology::kBinaryTree}) {
    for (std::size_t m : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
      const auto edges = bench::edges_of(topo, m);
      const std::size_t h = bench::eccentricity(edges, m, 0);
      const sim::Duration expect =
          static_cast<std::int64_t>(h + 1) * l + static_cast<std::int64_t>(h) * d;
      latency.add_row(bench::to_string(topo), m, h, bench::ms_string(expect),
                      bench::ms_string(worst_latency(topo, m, l, d)));
    }
  }
  latency.print();

  std::cout << "\nThe star keeps h (and latency) constant as m grows — the "
               "paper's recommended\nshape — while the chain's latency grows "
               "linearly with m.\n";
  return 0;
}

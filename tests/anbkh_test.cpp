// Unit/integration tests: the ANBKH causal memory protocol within one
// system.
#include <gtest/gtest.h>

#include "checker/causal_checker.h"
#include "helpers.h"

namespace cim::proto {
namespace {

using test::X;
using test::Y;

TEST(Anbkh, ReadReturnsInitBeforeAnyWrite) {
  auto fed = isc::Federation(test::single_system(2, anbkh_protocol()));
  Value got = -1;
  fed.system(0).app(0).read(X, [&](Value v) { got = v; });
  fed.run();
  EXPECT_EQ(got, kInitValue);
}

TEST(Anbkh, WriteIsImmediatelyLocallyVisible) {
  auto fed = isc::Federation(test::single_system(2, anbkh_protocol()));
  Value got = -1;
  auto& app = fed.system(0).app(0);
  app.write(X, 7);
  app.read(X, [&](Value v) { got = v; });
  fed.run();
  EXPECT_EQ(got, 7);
}

TEST(Anbkh, WriteEventuallyVisibleRemotely) {
  auto fed = isc::Federation(test::single_system(3, anbkh_protocol()));
  fed.system(0).app(0).write(X, 7);
  fed.run();
  Value got1 = -1, got2 = -1;
  fed.system(0).app(1).read(X, [&](Value v) { got1 = v; });
  fed.system(0).app(2).read(X, [&](Value v) { got2 = v; });
  fed.run();
  EXPECT_EQ(got1, 7);
  EXPECT_EQ(got2, 7);
}

TEST(Anbkh, BroadcastCostIsNMinusOneMessagesPerWrite) {
  auto fed = isc::Federation(test::single_system(5, anbkh_protocol()));
  fed.system(0).app(0).write(X, 1);
  fed.system(0).app(2).write(Y, 2);
  fed.run();
  EXPECT_EQ(fed.fabric().total_messages(), 2u * 4u);
}

TEST(Anbkh, BuffersCausallyPrematureUpdate) {
  // Delay model: p0 -> p2 is slow, p1 -> p2 fast; p1's write depends on
  // p0's, so p2 must buffer p1's update until p0's arrives.
  isc::FederationConfig cfg;
  mcs::SystemConfig sc;
  sc.id = SystemId{0};
  sc.num_app_processes = 3;
  sc.protocol = anbkh_protocol();
  // Deterministic per-channel delays: use a counter-based factory.
  auto counter = std::make_shared<int>(0);
  sc.intra_delay = [counter]() -> net::DelayModelPtr {
    // Channel creation order in System::finalize: (0->1), (0->2), (1->0),
    // (1->2), (2->0), (2->1). Make 0->2 slow (index 1), others fast.
    const int index = (*counter)++;
    return std::make_unique<net::FixedDelay>(
        index == 1 ? sim::milliseconds(50) : sim::milliseconds(1));
  };
  cfg.systems.push_back(std::move(sc));
  isc::Federation fed(std::move(cfg));

  auto& sim = fed.simulator();
  fed.system(0).app(0).write(X, 1);
  // p1 reads x (sees 1 after ~1ms), then writes y=2.
  sim.at(sim::Time{} + sim::milliseconds(5), [&] {
    fed.system(0).app(1).read(X, [&](Value v) {
      ASSERT_EQ(v, 1);
      fed.system(0).app(1).write(Y, 2);
    });
  });
  // At 20ms, p2 has received p1's update (fast) but not p0's (slow):
  // it must NOT expose y=2 yet.
  Value y_at_20 = -1, x_at_20 = -1;
  sim.at(sim::Time{} + sim::milliseconds(20), [&] {
    fed.system(0).app(2).read(Y, [&](Value v) { y_at_20 = v; });
    fed.system(0).app(2).read(X, [&](Value v) { x_at_20 = v; });
  });
  Value y_at_end = -1;
  sim.at(sim::Time{} + sim::milliseconds(100), [&] {
    fed.system(0).app(2).read(Y, [&](Value v) { y_at_end = v; });
  });
  fed.run();
  EXPECT_EQ(y_at_20, kInitValue);  // buffered: causal dependency missing
  EXPECT_EQ(x_at_20, kInitValue);
  EXPECT_EQ(y_at_end, 2);

  auto res = chk::CausalChecker{}.check(fed.federation_history());
  EXPECT_TRUE(res.ok()) << res.detail;
}

TEST(Anbkh, SatisfiesCausalUpdatingTrait) {
  auto fed = isc::Federation(test::single_system(2, anbkh_protocol()));
  EXPECT_TRUE(fed.system(0).mcs(0).satisfies_causal_updating());
  EXPECT_STREQ(fed.system(0).mcs(0).protocol_name(), "anbkh");
}

// Property: random workloads over one ANBKH system are causal (in fact they
// should be causal for every seed; the checker must never fire).
class AnbkhRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AnbkhRandom, RandomWorkloadIsCausal) {
  isc::FederationConfig cfg = test::single_system(4, anbkh_protocol(),
                                                  GetParam());
  cfg.systems[0].intra_delay = [seed = GetParam()]() mutable {
    return std::make_unique<net::UniformDelay>(sim::microseconds(100),
                                               sim::milliseconds(20));
  };
  isc::Federation fed(std::move(cfg));
  wl::UniformConfig wc;
  wc.ops_per_process = 40;
  wc.num_vars = 4;
  wc.seed = GetParam() * 31 + 1;
  auto runners = wl::install_uniform(fed, wc);
  fed.run();

  for (const auto& r : runners) EXPECT_TRUE(r->done());
  auto history = fed.federation_history();
  EXPECT_EQ(history.size(), 4u * 40u);
  auto res = chk::CausalChecker{}.check(history);
  EXPECT_TRUE(res.ok()) << chk::to_string(res.pattern) << ": " << res.detail;
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnbkhRandom,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(Anbkh, ConvergenceAfterQuiescence) {
  // Convergence is guaranteed for causally ordered writes; use one writer
  // per variable so all writes to a variable are program-ordered.
  isc::Federation fed(test::single_system(4, anbkh_protocol(), 3));
  std::vector<std::unique_ptr<wl::ScriptRunner>> runners;
  for (std::uint16_t p = 0; p < 4; ++p) {
    std::vector<wl::Step> script;
    for (int i = 0; i < 30; ++i) {
      script.push_back(wl::write_step(VarId{p}, 1000 * (p + 1) + i));
    }
    runners.push_back(std::make_unique<wl::ScriptRunner>(
        fed.simulator(), fed.system(0).app(p), std::move(script),
        sim::milliseconds(0), sim::milliseconds(3), 40 + p));
    runners.back()->start();
  }
  fed.run();

  for (std::uint16_t writer = 0; writer < 4; ++writer) {
    for (std::uint16_t p = 0; p < 4; ++p) {
      auto& proc = dynamic_cast<AnbkhProcess&>(fed.system(0).mcs(p));
      EXPECT_EQ(proc.replica_value(VarId{writer}), 1000 * (writer + 1) + 29);
    }
  }
}

TEST(Anbkh, ClocksConvergeAfterQuiescence) {
  isc::Federation fed(test::single_system(3, anbkh_protocol(), 9));
  for (std::uint16_t p = 0; p < 3; ++p) {
    fed.system(0).app(p).write(VarId{p}, p + 1);
  }
  fed.run();
  auto& m0 = dynamic_cast<AnbkhProcess&>(fed.system(0).mcs(0));
  for (std::uint16_t p = 1; p < 3; ++p) {
    auto& mp = dynamic_cast<AnbkhProcess&>(fed.system(0).mcs(p));
    EXPECT_EQ(mp.clock(), m0.clock());
    EXPECT_EQ(mp.pending_updates(), 0u);
  }
}

}  // namespace
}  // namespace cim::proto

// Bare ControlMsg I/O on raw blocking fds, shared by the mesh join
// handshake (mesh_node.cpp), the rejoin handshake (link_session.cpp), and
// the chaos bench. These frames travel *before* a TcpLinkTransport owns the
// stream, so they are written/read with plain blocking syscalls — one
// wire-encoded control frame at a time (docs/BRIDGE.md "Join" and "Failure
// behavior").
#pragma once

#include <cstdint>

#include "net/wire.h"

namespace cim::mesh {

/// kJoinReject reason codes (ControlMsg.b; docs/BRIDGE.md "Join").
enum RejectReason : std::uint64_t {
  kRejectWireVersion = 1,
  kRejectTopologyHash = 2,
  kRejectNotANeighbor = 3,
  kRejectDuplicateJoin = 4,
  kRejectStaleSession = 5,  // rejoin presented an unknown/old session id
};

const char* reject_reason_name(std::uint64_t reason);

/// Write one wire-encoded control frame to a blocking fd. False on error.
bool send_ctrl_fd(int fd, const net::wire::ControlMsg& msg);
bool send_ctrl_fd(int fd, std::uint8_t code, std::uint64_t a, std::uint64_t b);

/// Read one bare ControlMsg frame from a blocking fd, bounded by SO_RCVTIMEO.
/// Returns nullptr on success, a static error description otherwise.
const char* recv_ctrl_fd(int fd, int timeout_ms, net::wire::ControlMsg& out);

}  // namespace cim::mesh

# Empty dependencies file for bench_response.
# This may be replaced when dependencies are built.

#include "mcs/app_process.h"

#include <utility>

#include "common/check.h"

namespace cim::mcs {

AppProcess::AppProcess(ProcId id, bool is_isp, McsProcess& mcs,
                       chk::Recorder& recorder, sim::Simulator& simulator,
                       obs::Observability* obs)
    : id_(id), is_isp_(is_isp), mcs_(mcs), recorder_(recorder),
      sim_(simulator) {
  if (obs != nullptr) {
    trace_ = &obs->trace();
    obs::MetricsRegistry& m = obs->metrics();
    m_reads_ = &m.counter("mcs.reads");
    m_writes_ = &m.counter("mcs.writes");
    m_isp_reads_ = &m.counter("mcs.isp_reads");
    h_op_latency_ = &m.histogram("mcs.op_latency");
  }
}

void AppProcess::read(VarId var, ReadCallback k) {
  Request req;
  req.kind = chk::OpKind::kRead;
  req.var = var;
  req.on_read = std::move(k);
  enqueue(std::move(req));
}

void AppProcess::write(VarId var, Value value, WriteCallback k) {
  write_with_wid(var, value, WriteId::make(id_, ++next_wseq_), std::move(k));
}

void AppProcess::write_with_wid(VarId var, Value value, WriteId wid,
                                WriteCallback k) {
  CIM_CHECK_MSG(wid.valid(), "writes must carry a write id");
  Request req;
  req.kind = chk::OpKind::kWrite;
  req.var = var;
  req.value = value;
  req.wid = wid;
  req.on_write = std::move(k);
  enqueue(std::move(req));
}

void AppProcess::read_now(VarId var, ReadCallback k) {
  if (m_isp_reads_ != nullptr) m_isp_reads_->inc();
  const OpId op = recorder_.begin(id_, is_isp_, chk::OpKind::kRead, var,
                                  kInitValue, sim_.now());
  bool responded = false;
  mcs_.handle_read(var, [this, op, k = std::move(k), &responded](Value v) {
    recorder_.end_read(op, v, sim_.now());
    ++completed_;
    responded = true;
    if (k) k(v);
  });
  // Condition (b): reads issued while processing upcalls must finish, and in
  // this implementation all protocols serve reads synchronously.
  CIM_CHECK_MSG(responded, "read_now must be served synchronously");
}

void AppProcess::enqueue(Request req) {
  req.enqueued_at = sim_.now();
  queue_.push_back(std::move(req));
  pump();
}

void AppProcess::pump() {
  if (pumping_) return;
  pumping_ = true;
  while (!busy_ && !queue_.empty()) {
    Request req = std::move(queue_.front());
    queue_.pop_front();
    issue(std::move(req));
  }
  pumping_ = false;
}

void AppProcess::issue(Request req) {
  busy_ = true;
  // Latency is measured from enqueue: a queued call is "blocked" in the
  // paper's sense, so queueing time is part of the operation.
  const sim::Time started = req.enqueued_at;
  if (req.kind == chk::OpKind::kRead) {
    if (m_reads_ != nullptr) m_reads_->inc();
    CIM_TRACE(trace_, sim_.now(), obs::TraceCategory::kMcs, "read_issue",
              {{"proc", id_}, {"var", req.var}});
    const OpId op = recorder_.begin(id_, is_isp_, chk::OpKind::kRead, req.var,
                                    kInitValue, sim_.now());
    mcs_.handle_read(req.var,
                     [this, op, started, var = req.var,
                      k = std::move(req.on_read)](Value v) {
                       recorder_.end_read(op, v, sim_.now());
                       ++completed_;
                       busy_ = false;
                       if (h_op_latency_ != nullptr) {
                         h_op_latency_->observe(sim_.now() - started);
                       }
                       CIM_TRACE(trace_, sim_.now(), obs::TraceCategory::kMcs,
                                 "read_done",
                                 {{"proc", id_},
                                  {"var", var},
                                  {"val", v},
                                  {"lat_ns", sim_.now() - started}});
                       if (k) k(v);
                       pump();
                     });
  } else {
    if (m_writes_ != nullptr) m_writes_->inc();
    CIM_TRACE(trace_, sim_.now(), obs::TraceCategory::kMcs, "write_issue",
              {{"proc", id_},
               {"var", req.var},
               {"val", req.value},
               {"wid", req.wid}});
    const OpId op = recorder_.begin(id_, is_isp_, chk::OpKind::kWrite, req.var,
                                    req.value, sim_.now());
    mcs_.handle_write(req.var, req.value, req.wid,
                      [this, op, started, var = req.var, value = req.value,
                       wid = req.wid, k = std::move(req.on_write)]() {
                        recorder_.end_write(op, sim_.now());
                        ++completed_;
                        busy_ = false;
                        if (h_op_latency_ != nullptr) {
                          h_op_latency_->observe(sim_.now() - started);
                        }
                        CIM_TRACE(trace_, sim_.now(), obs::TraceCategory::kMcs,
                                  "write_done",
                                  {{"proc", id_},
                                   {"var", var},
                                   {"val", value},
                                   {"wid", wid},
                                   {"lat_ns", sim_.now() - started}});
                        if (k) k();
                        pump();
                      });
  }
}

}  // namespace cim::mcs

// Mesh formation and drain (src/mesh/mesh_node.h, docs/BRIDGE.md): topology
// spec validation, the kJoin handshake's rejection paths (duplicate join,
// impostor, diverging spec, peer death mid-handshake), a partial topology
// timing out cleanly, and a 5-system tree soak whose merged history passes
// the causal checker — Corollary 1 exercised over real localhost sockets.
//
// Ports: every test derives its base port from getpid() plus a per-test
// offset, because cim_tests and cim_tests_bytes_wire may run concurrently
// under ctest -j.
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "checker/causal_checker.h"
#include "checker/history.h"
#include "interconnect/topology.h"
#include "mesh/ctrl_io.h"
#include "mesh/mesh_node.h"
#include "mesh/spill.h"
#include "net/fault_inject.h"
#include "net/tcp_link.h"
#include "net/wire.h"

namespace cim {
namespace {

using isc::Topology;
using net::wire::ControlMsg;

std::uint16_t test_port(std::uint16_t offset) {
  return static_cast<std::uint16_t>(
      20000 + (static_cast<std::uint32_t>(::getpid()) * 131) % 30000 + offset);
}

// ---- topology spec ---------------------------------------------------------

TEST(Topology, ParsesAndNormalizesASpec) {
  const auto res = isc::parse_topology(
      "# a 4-node tree\n"
      "nodes 4\n"
      "edge 1 0   # reversed on purpose\n"
      "edge 0 2\n"
      "edge 3 1\n");
  ASSERT_TRUE(res.ok()) << res.error;
  EXPECT_EQ(res.topo.nodes, 4u);
  ASSERT_EQ(res.topo.edges.size(), 3u);
  EXPECT_EQ(res.topo.edges[0].a, 0u);  // normalized a < b, sorted
  EXPECT_EQ(res.topo.edges[0].b, 1u);
  EXPECT_EQ(res.topo.neighbors(1), (std::vector<std::size_t>{0, 3}));
  EXPECT_EQ(res.topo.degree(0), 2u);
  EXPECT_EQ(res.topo.edge_index(3, 1), 2u);
  EXPECT_EQ(res.topo.edge_index(2, 3), Topology::npos);
}

TEST(Topology, HashIsIndependentOfSpecOrder) {
  const auto a = isc::parse_topology("nodes 3\nedge 0 1\nedge 1 2\n");
  const auto b = isc::parse_topology("nodes 3\nedge 2 1\nedge 1 0\n");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.topo.hash(), b.topo.hash());
  const auto c = isc::parse_topology("nodes 3\nedge 0 1\nedge 0 2\n");
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a.topo.hash(), c.topo.hash());  // chain vs star
}

TEST(Topology, RejectsEverythingThatIsNotATree) {
  EXPECT_FALSE(isc::parse_topology("nodes 0\n").ok());
  EXPECT_FALSE(isc::parse_topology("nodes 2\nedge 0 0\nedge 0 1\n").ok());
  EXPECT_FALSE(isc::parse_topology("nodes 2\nedge 0 2\n").ok());  // range
  EXPECT_FALSE(
      isc::parse_topology("nodes 3\nedge 0 1\nedge 1 0\n").ok());  // dup
  EXPECT_FALSE(isc::parse_topology("nodes 3\nedge 0 1\n").ok());  // too few
  EXPECT_FALSE(isc::parse_topology(
                   "nodes 4\nedge 0 1\nedge 1 2\nedge 2 0\n")
                   .ok());  // cycle -> node 3 unreachable
  EXPECT_FALSE(isc::parse_topology("nodes 2\nbogus 1\n").ok());
  EXPECT_FALSE(isc::parse_topology("edge 0 1\n").ok());  // missing nodes
  EXPECT_FALSE(isc::parse_topology("nodes 2\nedge 0 1 9\n").ok());  // extra
}

TEST(Topology, GeneratorsProduceValidTrees) {
  for (std::size_t n : {1u, 2u, 5u, 8u}) {
    for (auto* make : {isc::make_chain, isc::make_star, isc::make_btree}) {
      const auto res = isc::validate_topology(make(n));
      EXPECT_TRUE(res.ok()) << res.error;
      EXPECT_EQ(res.topo.edges.size(), n - 1);
    }
  }
  EXPECT_EQ(isc::make_btree(7).degree(1), 3u);  // root-facing + two children
  // format() round-trips through parse().
  const Topology t = isc::make_btree(6);
  const auto back = isc::parse_topology(t.format());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.topo.hash(), t.hash());
}

// ---- raw handshake helpers for the rejection tests -------------------------

void send_ctrl(int fd, std::uint8_t code, std::uint64_t a, std::uint64_t b) {
  ControlMsg msg;
  msg.code = code;
  msg.a = a;
  msg.b = b;
  std::vector<std::uint8_t> buf;
  net::wire::encode(msg, buf);
  ASSERT_EQ(::send(fd, buf.data(), buf.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(buf.size()));
}

ControlMsg recv_ctrl(int fd) {
  std::uint8_t frame[64];
  EXPECT_EQ(::read(fd, frame, 4), 4);
  std::uint32_t body = 0;
  for (int i = 0; i < 4; ++i)
    body |= static_cast<std::uint32_t>(frame[i]) << (8 * i);
  EXPECT_LE(body, sizeof(frame) - 4);
  std::size_t got = 0;
  while (got < body) {
    const ssize_t n = ::read(fd, frame + 4 + got, body - got);
    if (n <= 0) {
      ADD_FAILURE() << "peer closed mid-frame";
      return {};
    }
    got += static_cast<std::size_t>(n);
  }
  auto res = net::wire::decode(frame, 4 + body);
  EXPECT_TRUE(res.ok()) << res.error;
  auto* ctrl = dynamic_cast<ControlMsg*>(res.msg.get());
  EXPECT_NE(ctrl, nullptr);
  return *ctrl;
}

// Complete a valid dialer-side handshake claiming `node_id`.
void handshake_as(int fd, std::uint64_t node_id, std::uint64_t hash) {
  send_ctrl(fd, ControlMsg::kHello, node_id, net::wire::kWireVersion);
  send_ctrl(fd, ControlMsg::kJoin, node_id, hash);
  const ControlMsg hello = recv_ctrl(fd);
  EXPECT_EQ(hello.code, ControlMsg::kHello);
  const ControlMsg join = recv_ctrl(fd);
  EXPECT_EQ(join.code, ControlMsg::kJoin);
}

// ---- join protocol edge cases ----------------------------------------------

TEST(MeshJoin, DuplicateJoinIsRejected) {
  const std::uint16_t base = test_port(0);
  mesh::MeshConfig cfg;
  cfg.node_id = 0;
  cfg.topo = isc::make_star(3);  // node 0 awaits joins from 1 and 2
  cfg.base_port = base;
  cfg.join_timeout_ms = 10'000;
  mesh::MeshNode node(std::move(cfg));
  std::thread joiner([&] { EXPECT_TRUE(node.join()) << node.error(); });

  const std::uint64_t hash = isc::make_star(3).hash();
  const int first = net::tcp_connect("127.0.0.1", base, 100);
  handshake_as(first, 1, hash);

  const int dup = net::tcp_connect("127.0.0.1", base, 100);
  send_ctrl(dup, ControlMsg::kHello, 1, net::wire::kWireVersion);
  send_ctrl(dup, ControlMsg::kJoin, 1, hash);
  const ControlMsg rej = recv_ctrl(dup);
  EXPECT_EQ(rej.code, ControlMsg::kJoinReject);
  EXPECT_EQ(rej.a, 0u);  // rejecting node
  ::close(dup);

  const int second = net::tcp_connect("127.0.0.1", base, 100);
  handshake_as(second, 2, hash);
  joiner.join();
  EXPECT_EQ(node.degree(), 2u);
  ::close(first);
  ::close(second);
}

TEST(MeshJoin, ImpostorAndDivergingSpecAreRejected) {
  const std::uint16_t base = test_port(10);
  mesh::MeshConfig cfg;
  cfg.node_id = 0;
  cfg.topo = isc::make_chain(2);
  cfg.base_port = base;
  cfg.join_timeout_ms = 10'000;
  mesh::MeshNode node(std::move(cfg));
  std::thread joiner([&] { EXPECT_TRUE(node.join()) << node.error(); });

  const std::uint64_t hash = isc::make_chain(2).hash();
  // Not a neighbor: node 7 does not exist in a 2-chain.
  const int impostor = net::tcp_connect("127.0.0.1", base, 100);
  send_ctrl(impostor, ControlMsg::kHello, 7, net::wire::kWireVersion);
  send_ctrl(impostor, ControlMsg::kJoin, 7, hash);
  EXPECT_EQ(recv_ctrl(impostor).code, ControlMsg::kJoinReject);
  ::close(impostor);

  // Right node id, wrong topology hash (diverging spec files).
  const int diverged = net::tcp_connect("127.0.0.1", base, 100);
  send_ctrl(diverged, ControlMsg::kHello, 1, net::wire::kWireVersion);
  send_ctrl(diverged, ControlMsg::kJoin, 1, hash ^ 1);
  EXPECT_EQ(recv_ctrl(diverged).code, ControlMsg::kJoinReject);
  ::close(diverged);

  const int real = net::tcp_connect("127.0.0.1", base, 100);
  handshake_as(real, 1, hash);
  joiner.join();
  ::close(real);
}

TEST(MeshJoin, PeerDyingMidHandshakeDoesNotPoisonTheJoin) {
  const std::uint16_t base = test_port(20);
  mesh::MeshConfig cfg;
  cfg.node_id = 0;
  cfg.topo = isc::make_chain(2);
  cfg.base_port = base;
  cfg.join_timeout_ms = 8'000;
  mesh::MeshNode node(std::move(cfg));
  std::thread joiner([&] { EXPECT_TRUE(node.join()) << node.error(); });

  // Connect, say half a handshake, die.
  const int dying = net::tcp_connect("127.0.0.1", base, 100);
  send_ctrl(dying, ControlMsg::kHello, 1, net::wire::kWireVersion);
  ::close(dying);

  const int real = net::tcp_connect("127.0.0.1", base, 100);
  handshake_as(real, 1, isc::make_chain(2).hash());
  joiner.join();
  ::close(real);
}

TEST(MeshJoin, PartialTopologyTimesOutCleanly) {
  const std::uint16_t base = test_port(30);
  mesh::MeshConfig cfg;
  cfg.node_id = 0;
  cfg.topo = isc::make_star(3);
  cfg.base_port = base;
  cfg.join_timeout_ms = 400;  // nobody will ever dial: the leaves are missing
  mesh::MeshNode node(std::move(cfg));
  EXPECT_FALSE(node.join());
  EXPECT_NE(node.error().find("timed out"), std::string::npos) << node.error();
  EXPECT_NE(node.error().find("1"), std::string::npos);  // names the missing
  EXPECT_NE(node.error().find("2"), std::string::npos);
}

TEST(MeshJoin, DialerLearnsWhyItWasRejected) {
  const std::uint16_t base = test_port(40);
  // A 3-chain's node 1 dials node 0 — but node 0 was launched with a star,
  // so the topology hashes diverge and node 0 rejects.
  mesh::MeshConfig cfg0;
  cfg0.node_id = 0;
  cfg0.topo = isc::make_star(3);
  cfg0.base_port = base;
  cfg0.join_timeout_ms = 1'000;
  mesh::MeshNode node0(std::move(cfg0));
  std::thread joiner([&] { EXPECT_FALSE(node0.join()); });

  mesh::MeshConfig cfg1;
  cfg1.node_id = 1;
  cfg1.topo = isc::make_chain(3);
  cfg1.base_port = base;
  cfg1.join_timeout_ms = 1'000;
  mesh::MeshNode node1(std::move(cfg1));
  EXPECT_FALSE(node1.join());
  EXPECT_NE(node1.error().find("topology hash mismatch"), std::string::npos)
      << node1.error();
  joiner.join();
}

// ---- the 5-system tree soak ------------------------------------------------

TEST(MeshSoak, FiveSystemTreeMergedHistoryIsCausal) {
  //        0
  //       / \
  //      1   2
  //     / \
  //    3   4
  const auto spec = isc::parse_topology(
      "nodes 5\nedge 0 1\nedge 0 2\nedge 1 3\nedge 1 4\n");
  ASSERT_TRUE(spec.ok()) << spec.error;
  const std::uint16_t base = test_port(50);

  std::vector<std::unique_ptr<mesh::MeshNode>> nodes;
  for (std::size_t i = 0; i < 5; ++i) {
    mesh::MeshConfig cfg;
    cfg.node_id = i;
    cfg.topo = spec.topo;
    cfg.base_port = base;
    cfg.procs = 3;
    cfg.ops = 12;
    cfg.seed = 11;
    cfg.join_timeout_ms = 20'000;
    nodes.push_back(std::make_unique<mesh::MeshNode>(std::move(cfg)));
  }

  std::vector<mesh::MeshResult> results(5);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < 5; ++i) {
    threads.emplace_back([&, i] {
      if (nodes[i]->join()) results[i] = nodes[i]->run();
    });
  }
  for (auto& t : threads) t.join();

  std::vector<chk::Op> merged;
  std::uint64_t total_sent = 0, total_received = 0;
  for (std::size_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(results[i].ok) << "node " << i << ": " << nodes[i]->error();
    EXPECT_EQ(results[i].ops_done, 3u * 12u);
    EXPECT_EQ(results[i].violations, 0u);
    total_sent += results[i].pairs_sent;
    total_received += results[i].pairs_received;
    const chk::History h = nodes[i]->federation().federation_history();
    for (std::size_t k = 0; k < h.size(); ++k) merged.push_back(h.op(k));
  }
  // Every pair sent anywhere was received somewhere: the tree drained.
  EXPECT_EQ(total_sent, total_received);

  const chk::History history{std::move(merged)};
  EXPECT_EQ(history.size(), 5u * 3u * 12u);
  const auto verdict =
      chk::CausalChecker{}.check(history, chk::Level::kCM);
  EXPECT_TRUE(verdict.ok()) << verdict.detail;
}

// ---- socket-level chaos (src/net/fault_inject.h, docs/FAULTS.md) -----------
//
// Each test runs a real 2-node mesh over localhost with deterministic fault
// hooks on one node and asserts the crash-tolerance contract: the mesh still
// drains, the merged history is causal, and the per-edge data counters agree
// (zero duplicated, zero lost pair deliveries).

struct ChaosMesh {
  std::vector<std::unique_ptr<mesh::MeshNode>> nodes;
  std::vector<mesh::MeshResult> results;
  std::vector<std::thread> threads;

  // A 2-chain: node 0 accepts, node 1 dials (and re-dials on outages).
  ChaosMesh(std::uint16_t base, net::FaultHooks* faults_on_1,
            std::size_t ops = 40, net::FaultHooks* faults_on_0 = nullptr) {
    for (std::size_t i = 0; i < 2; ++i) {
      mesh::MeshConfig cfg;
      cfg.node_id = i;
      cfg.topo = isc::make_chain(2);
      cfg.base_port = base;
      cfg.procs = 2;
      cfg.ops = ops;
      cfg.seed = 5;
      cfg.join_timeout_ms = 20'000;
      cfg.hb_interval_ms = 20;
      cfg.liveness_timeout_ms = 150;
      cfg.backoff_initial_ms = 20;
      cfg.backoff_max_ms = 100;
      cfg.faults = i == 1 ? faults_on_1 : faults_on_0;
      nodes.push_back(std::make_unique<mesh::MeshNode>(std::move(cfg)));
    }
    results.resize(2);
    for (std::size_t i = 0; i < 2; ++i) {
      threads.emplace_back([this, i] {
        if (nodes[i]->join()) results[i] = nodes[i]->run();
      });
    }
  }

  void wait_ready() {
    while (!nodes[0]->sessions_ready() || !nodes[1]->sessions_ready())
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Join the node threads, then assert drain + causality + zero dup/loss.
  void finish_and_check() {
    for (auto& t : threads) t.join();
    std::vector<chk::Op> merged;
    for (std::size_t i = 0; i < 2; ++i) {
      ASSERT_TRUE(results[i].ok) << "node " << i << ": " << nodes[i]->error();
      EXPECT_EQ(results[i].violations, 0u);
      const chk::History h = nodes[i]->federation().federation_history();
      for (std::size_t k = 0; k < h.size(); ++k) merged.push_back(h.op(k));
    }
    // The zero-dup/zero-loss contract, stated on the session counters: every
    // data frame one side ever sent (journaled, maybe replayed) was applied
    // exactly once on the other.
    EXPECT_EQ(nodes[0]->session(0).data_sent(),
              nodes[1]->session(0).data_delivered());
    EXPECT_EQ(nodes[1]->session(0).data_sent(),
              nodes[0]->session(0).data_delivered());
    const auto verdict =
        chk::CausalChecker{}.check(chk::History{std::move(merged)},
                                   chk::Level::kCM);
    EXPECT_TRUE(verdict.ok()) << verdict.detail;
  }
};

// Spin until `pred`, failing the test (and returning false) after `budget`.
template <typename Pred>
bool spin_until(Pred pred, std::chrono::milliseconds budget =
                               std::chrono::milliseconds(10'000)) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) {
      ADD_FAILURE() << "spin_until timed out";
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

TEST(MeshChaos, InjectedReadFailureReconnectsWithZeroDupZeroLoss) {
  // Hold the mesh open with a stall (node 0 keeps heartbeating at node 1),
  // then reset node 1's receive side mid-stream — indistinguishable from a
  // peer RST mid-frame. The transport dies, the session retires it, re-dials
  // with backoff, and the kRejoin replay restores the stream.
  net::FaultHooks hooks;
  hooks.stall_writes.store(true);
  ChaosMesh mesh(test_port(60), &hooks);
  mesh.wait_ready();
  hooks.fail_reads_after.store(2);
  // The countdown sticks at 0 once spent; node 0's next heartbeat burns it.
  ASSERT_TRUE(spin_until([&] { return hooks.fail_reads_after.load() == 0; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  hooks.fail_reads_after.store(-1);
  hooks.stall_writes.store(false);
  mesh.finish_and_check();
  EXPECT_GE(mesh.nodes[1]->session(0).resumes(), 1u);
}

TEST(MeshChaos, InjectedWriteFailureReconnectsWithZeroDupZeroLoss) {
  // Arm the countdown before the mesh even forms: node 1's first transport
  // flush spends it and the very next write fails, mid-workload — as if the
  // peer reset under a partial writev. With most of the stream still
  // undelivered, the mesh cannot drain without a real reconnect + replay.
  net::FaultHooks hooks;
  hooks.fail_writes_after.store(1);
  ChaosMesh mesh(test_port(70), &hooks);
  mesh.wait_ready();
  ASSERT_TRUE(spin_until([&] { return hooks.fail_writes_after.load() == 0; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  hooks.fail_writes_after.store(-1);
  mesh.finish_and_check();
  EXPECT_GE(mesh.nodes[1]->session(0).resumes(), 1u);
}

TEST(MeshChaos, ClampedPartialWritesTearFramesButNothingBreaks) {
  // Every send syscall on node 1 moves at most 7 bytes: frames tear between
  // the length prefix and the payload, across payloads, everywhere. The
  // receive parser reassembles; the mesh drains normally.
  net::FaultHooks hooks;
  hooks.max_write_bytes.store(7);
  ChaosMesh mesh(test_port(80), &hooks, /*ops=*/25);
  mesh.finish_and_check();
  EXPECT_GE(mesh.nodes[1]->session(0).syscalls_write(), 50u);
}

TEST(MeshChaos, StalledPeerDegradesWithBackpressureThenRecovers) {
  // The SIGSTOP scenario, deterministically: node 1's transport pretends the
  // kernel buffer is full — no data, no heartbeats, queues build, node 0's
  // senders block on the bounded journal. Node 0 must flip the link degraded
  // (hb_miss rising) and must NOT fail; clearing the stall recovers it.
  // Node 0 is stalled too, for the whole observation: its own silence keeps
  // the run from draining, so node 0's ticks are still firing when node 1's
  // bytes come back — the degraded -> up flip is observable, not racing the
  // mesh's completion.
  net::FaultHooks hooks1;
  net::FaultHooks hooks0;
  hooks1.stall_writes.store(true);
  hooks0.stall_writes.store(true);
  ChaosMesh mesh(test_port(90), &hooks1, /*ops=*/40, &hooks0);
  mesh.wait_ready();
  mesh::LinkSession& seen_by_0 = mesh.nodes[0]->session(0);
  ASSERT_TRUE(spin_until(
      [&] { return seen_by_0.down() && seen_by_0.hb_miss() > 0; }));
  EXPECT_EQ(seen_by_0.state(), mesh::LinkState::kDegraded);
  EXPECT_EQ(seen_by_0.error(), nullptr);
  hooks1.stall_writes.store(false);
  // Node 1's heartbeats resume; node 0 (still stalled, still ticking) must
  // flip its link back up and count the resume while the run is provably
  // still in flight.
  ASSERT_TRUE(spin_until([&] { return !seen_by_0.down(); }));
  EXPECT_GE(seen_by_0.resumes(), 1u);  // degraded -> up counts as a resume
  hooks0.stall_writes.store(false);
  mesh.finish_and_check();
  EXPECT_GE(seen_by_0.hb_miss(), 1u);
}

TEST(MeshChaos, StrayConnectionsMidRunAreRefusedAsStale) {
  // Hold the run open with a stall, then poke node 0's listener: a rejoin
  // with an unknown session id, a fresh hello for an already-formed mesh,
  // and a torn control frame (EOF between length prefix and payload). All
  // are refused/ignored; the mesh finishes untouched.
  net::FaultHooks hooks;
  hooks.stall_writes.store(true);
  const std::uint16_t base = test_port(100);
  ChaosMesh mesh(base, &hooks);
  mesh.wait_ready();

  ControlMsg bogus;
  bogus.code = ControlMsg::kRejoin;
  bogus.a = 1;
  bogus.b = 0x5E5510;  // no such session
  bogus.c = 7;
  const int rj = net::tcp_connect("127.0.0.1", base, 100);
  ASSERT_TRUE(mesh::send_ctrl_fd(rj, bogus));
  ControlMsg rej = recv_ctrl(rj);
  EXPECT_EQ(rej.code, ControlMsg::kJoinReject);
  EXPECT_EQ(rej.b, mesh::kRejectStaleSession);
  ::close(rj);

  const int hello = net::tcp_connect("127.0.0.1", base, 100);
  send_ctrl(hello, ControlMsg::kHello, 1, net::wire::kWireVersion);
  rej = recv_ctrl(hello);
  EXPECT_EQ(rej.code, ControlMsg::kJoinReject);
  EXPECT_EQ(rej.b, mesh::kRejectStaleSession);
  ::close(hello);

  const int torn = net::tcp_connect("127.0.0.1", base, 100);
  const std::uint8_t prefix[4] = {32, 0, 0, 0};  // promises a 32-byte body…
  ASSERT_EQ(::send(torn, prefix, 4, MSG_NOSIGNAL), 4);
  ::close(torn);  // …and dies before sending it

  hooks.stall_writes.store(false);
  mesh.finish_and_check();
}

// ---- spill journal (src/mesh/spill.h) --------------------------------------

TEST(Spill, RoundTripsCursorsFramesAndCtrlFlags) {
  const std::string path =
      "/tmp/cim_spill_test_" + std::to_string(::getpid()) + ".journal";
  mesh::SpillState st;
  st.node_id = 3;
  st.topo_hash = 0xABCD;
  st.seed = 11;
  st.generation = 1;
  st.links.resize(2);
  mesh::SpillJournal j;
  ASSERT_TRUE(j.create(path, st));

  // Two sent frames on link 0, the first later acked away.
  for (std::uint64_t seq : {0u, 1u}) {
    net::TransportFrame f;
    f.seq = seq;
    f.ack = 0;
    auto pay = std::make_unique<ControlMsg>();
    pay->code = ControlMsg::kDone;
    pay->a = 40 + seq;
    f.payload = std::move(pay);
    std::vector<std::uint8_t> buf;
    net::wire::encode(f, buf);
    j.record_sent(0, /*data_sent=*/seq + 1, buf.data(), buf.size());
  }
  j.record_acked(0, 1);
  j.record_delivered(1, 5, 4);
  j.record_ctrl_delivered(1, ControlMsg::kDone, 123);
  j.record_ctrl_sent(0, ControlMsg::kDone);
  j.close();

  mesh::SpillState back;
  std::string err;
  ASSERT_TRUE(mesh::SpillJournal::load(path, back, err)) << err;
  EXPECT_EQ(back.node_id, 3u);
  EXPECT_EQ(back.topo_hash, 0xABCDu);
  EXPECT_EQ(back.seed, 11u);
  EXPECT_EQ(back.generation, 1u);
  ASSERT_EQ(back.links.size(), 2u);
  EXPECT_EQ(back.links[0].acked, 1u);
  EXPECT_EQ(back.links[0].send_next, 2u);
  EXPECT_EQ(back.links[0].data_sent, 2u);
  ASSERT_EQ(back.links[0].frames.size(), 1u);  // seq 0 trimmed by the ack
  EXPECT_TRUE(back.links[0].done_sent);
  EXPECT_EQ(back.links[1].recv_expected, 5u);
  EXPECT_EQ(back.links[1].data_delivered, 4u);
  EXPECT_TRUE(back.links[1].peer_done);
  EXPECT_EQ(back.links[1].peer_pairs, 123u);

  // The surviving frame decodes back to the original payload.
  const auto& bytes = back.links[0].frames[0];
  const auto res = net::wire::decode(bytes.data(), bytes.size());
  ASSERT_TRUE(res.ok()) << res.error;
  ::unlink(path.c_str());
}

TEST(Spill, ToleratesATornTailRecord) {
  const std::string path =
      "/tmp/cim_spill_torn_" + std::to_string(::getpid()) + ".journal";
  mesh::SpillState st;
  st.node_id = 0;
  st.links.resize(1);
  {
    mesh::SpillJournal j;
    ASSERT_TRUE(j.create(path, st));
    j.record_delivered(0, 9, 9);
    j.record_acked(0, 4);
    j.close();
  }
  // Chop bytes off the tail: a crash mid-append. Every truncation point must
  // still load, keeping the intact prefix.
  std::ifstream is(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(is)),
                    std::istreambuf_iterator<char>());
  is.close();
  for (std::size_t cut = 1; cut <= 8 && cut < bytes.size(); ++cut) {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size() - cut));
    os.close();
    mesh::SpillState back;
    std::string err;
    ASSERT_TRUE(mesh::SpillJournal::load(path, back, err))
        << "cut=" << cut << ": " << err;
    EXPECT_EQ(back.links[0].recv_expected, 9u) << "cut=" << cut;
  }
  ::unlink(path.c_str());
}

TEST(MeshResume, RefusesAJournalWhoseTerminationAlreadyBegan) {
  const std::string path =
      "/tmp/cim_spill_done_" + std::to_string(::getpid()) + ".journal";
  mesh::SpillState st;
  st.node_id = 0;
  st.topo_hash = isc::make_chain(2).hash();
  st.seed = 7;
  st.links.resize(1);
  st.links[0].done_sent = true;  // the convergecast had started
  {
    mesh::SpillJournal j;
    ASSERT_TRUE(j.create(path, st));
  }
  mesh::MeshConfig cfg;
  cfg.node_id = 0;
  cfg.topo = isc::make_chain(2);
  cfg.base_port = test_port(110);
  cfg.seed = 7;
  cfg.state_path = path;
  cfg.resume = true;
  mesh::MeshNode node(std::move(cfg));
  EXPECT_FALSE(node.join());
  EXPECT_NE(node.error().find("termination"), std::string::npos)
      << node.error();
  ::unlink(path.c_str());
}

}  // namespace
}  // namespace cim

// Mesh transport throughput (docs/BRIDGE.md): the epoll/writev TCP path that
// carries pairs between the OS processes of an n-system federation. One
// in-process "node" per mesh position — its own EpollLoop, exactly like one
// cim_bridge process — connected by real stream sockets; node 0 floods
// PairMsg frames down the tree and every inner node forwards to its other
// links (the IS-process's split horizon, minus the memory system). Reported
// per mesh shape: end-to-end delivered msgs/sec and syscalls/msg across the
// whole mesh — the coalescing win is exactly the gap between syscalls_per_msg
// and 2.0 (one read + one write per frame, what the blocking transport paid).
//
// The fault_sweep row prices the crash-tolerance layer (docs/FAULTS.md): a
// 2-node session mesh takes repeated injected socket kills; reported are the
// median fault-to-rejoin latency (reconnect_ms, gated lower-is-better) and
// the median catch-up delivery rate after each rejoin (informational: the
// burst size tracks what queued during the outage, so compare_benches.py
// exempts it from gating). Blessed baseline: bench/baseline/BENCH_bridge.json.
//
// The obs_overhead row prices the stats plane (docs/BRIDGE.md "Stats
// aggregation"): the same full 2-chain MeshNode mesh run with the stats
// plane off and again at the deployed default cadence (250 ms, what
// --fed-metrics implies; node 0 folds the federation snapshot to disk every
// tick), reporting both delivered-pair rates and the relative cost in
// percent. The contract is that the plane stays under 2% of msgs/sec; both
// rates and the delta are informational in compare_benches.py — a two-run
// difference of noisy absolute throughputs is too jittery to gate, the row
// exists so the overhead stays *visible*.
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_report.h"
#include "common/check.h"
#include "interconnect/pair_msg.h"
#include "interconnect/topology.h"
#include "mesh/mesh_node.h"
#include "net/epoll_loop.h"
#include "net/fault_inject.h"
#include "net/tcp_link.h"
#include "stats/table.h"

namespace {

using namespace cim;

constexpr std::size_t kMessages = 100'000;  // flooded from node 0

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

net::MessagePtr make_pair_msg(std::uint32_t seq) {
  auto msg = std::make_unique<isc::PairMsg>();
  msg->var = VarId{static_cast<std::uint16_t>(seq % 8)};
  msg->value = Value{seq};
  msg->write_id = WriteId::make(ProcId{SystemId{0}, 0}, seq);
  return msg;
}

// One mesh position: an epoll loop plus one transport per incident edge —
// the exact I/O topology of a cim_bridge process, minus the memory system.
struct Node {
  net::EpollLoop loop;
  std::vector<std::unique_ptr<net::TcpLinkTransport>> links;
  std::atomic<std::uint64_t> delivered{0};
};

struct ShapeResult {
  double msgs_per_sec = 0;
  double syscalls_per_msg = 0;
  double coalesced_frac = 0;
};

ShapeResult run_shape(const isc::Topology& topo) {
  const std::size_t n = topo.nodes;
  std::vector<std::unique_ptr<Node>> nodes;
  for (std::size_t i = 0; i < n; ++i) nodes.push_back(std::make_unique<Node>());

  // Connect every edge with a stream socketpair and hang one transport off
  // each endpoint's loop. links[i][k] talks to topo.neighbors(i)[k].
  std::vector<std::vector<std::size_t>> nbrs(n);
  for (std::size_t i = 0; i < n; ++i) {
    nbrs[i] = topo.neighbors(i);
    nodes[i]->links.resize(nbrs[i].size());
  }
  for (const isc::TopologyEdge& e : topo.edges) {
    int fds[2];
    CIM_CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0);
    auto slot = [&](std::size_t node, std::size_t peer) -> std::size_t {
      for (std::size_t k = 0; k < nbrs[node].size(); ++k)
        if (nbrs[node][k] == peer) return k;
      CIM_CHECK(false);
      return 0;
    };
    nodes[e.a]->links[slot(e.a, e.b)] = std::make_unique<net::TcpLinkTransport>(
        fds[0], nodes[e.a]->loop);
    nodes[e.b]->links[slot(e.b, e.a)] = std::make_unique<net::TcpLinkTransport>(
        fds[1], nodes[e.b]->loop);
  }

  for (std::size_t i = 0; i < n; ++i) {
    nodes[i]->loop.start();
    Node* node = nodes[i].get();
    for (std::size_t k = 0; k < node->links.size(); ++k) {
      node->links[k]->start([node, k](net::MessagePtr msg) {
        node->delivered.fetch_add(1, std::memory_order_relaxed);
        // Split horizon: forward to every other link. Runs on the loop
        // thread — the transport's inline-flush path.
        for (std::size_t other = 0; other < node->links.size(); ++other) {
          if (other != k) node->links[other]->send(msg->clone());
        }
      });
    }
  }

  // Flood from node 0 (a foreign thread — the bounded-queue path) and wait
  // for every message to reach every other node exactly once.
  const std::uint64_t expected = kMessages * (n - 1);
  const double t0 = now_s();
  for (std::size_t s = 0; s < kMessages; ++s) {
    net::MessagePtr msg = make_pair_msg(static_cast<std::uint32_t>(s));
    for (auto& link : nodes[0]->links) link->send(msg->clone());
  }
  std::uint64_t total = 0;
  while (total < expected) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    total = 0;
    for (const auto& node : nodes) total += node->delivered.load();
  }
  const double elapsed = now_s() - t0;

  std::uint64_t syscalls = 0, frames = 0, coalesced = 0;
  for (const auto& node : nodes) {
    for (const auto& link : node->links) {
      syscalls += link->syscalls_read() + link->syscalls_write();
      frames += link->frames_sent();
      coalesced += link->frames_coalesced();
    }
  }
  for (auto& node : nodes) node->loop.stop();

  ShapeResult res;
  res.msgs_per_sec = static_cast<double>(total) / elapsed;
  res.syscalls_per_msg =
      static_cast<double>(syscalls) / static_cast<double>(frames);
  res.coalesced_frac =
      static_cast<double>(coalesced) / static_cast<double>(frames);
  return res;
}

struct FaultSweepResult {
  double reconnect_ms = 0;        // median fault-to-rejoin latency
  double post_msgs_per_sec = 0;   // median catch-up rate after each rejoin
  std::uint64_t resumes = 0;
};

// A 2-node LinkSession mesh over localhost TCP (the bridge_mesh fixture, as
// a bench): node 1's transport is killed kCycles times via an injected write
// failure; each kill must be detected by the heartbeat tick, backed off, and
// rejoined with replay. The clock runs from the injection to the session
// counting the resume.
FaultSweepResult run_fault_sweep(std::uint16_t base_port) {
  constexpr int kCycles = 5;
  net::FaultHooks hooks;
  std::vector<std::unique_ptr<mesh::MeshNode>> nodes;
  for (std::size_t i = 0; i < 2; ++i) {
    mesh::MeshConfig cfg;
    cfg.node_id = i;
    cfg.topo = isc::make_chain(2);
    cfg.base_port = base_port;
    cfg.procs = 4;
    // Big enough that the stream is still in full flow through the fault
    // cycles AND the post-recovery measurement window — the rate must price
    // a live pipeline, not the tail of a drain.
    cfg.ops = 6'000;
    cfg.seed = 9;
    cfg.join_timeout_ms = 20'000;
    cfg.hb_interval_ms = 10;
    cfg.liveness_timeout_ms = 100;
    // The deterministic first-dial backoff dominates the reconnect latency,
    // keeping the metric stable enough to gate (jitter is splitmix-seeded,
    // identical across runs; only scheduling noise remains).
    cfg.backoff_initial_ms = 20;
    cfg.backoff_max_ms = 40;
    cfg.reconnect_attempts = 400;
    if (i == 1) cfg.faults = &hooks;
    nodes.push_back(std::make_unique<mesh::MeshNode>(std::move(cfg)));
  }
  std::vector<std::thread> threads;
  std::vector<mesh::MeshResult> results(2);
  for (std::size_t i = 0; i < 2; ++i) {
    threads.emplace_back([&, i] {
      if (nodes[i]->join()) results[i] = nodes[i]->run();
    });
  }
  while (!nodes[0]->sessions_ready() || !nodes[1]->sessions_ready())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  auto spin = [](auto pred, double budget_s) {
    const double deadline = now_s() + budget_s;
    while (!pred() && now_s() < deadline)
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    return pred();
  };

  mesh::LinkSession& s1 = nodes[1]->session(0);
  const auto delivered_total = [&] {
    return nodes[0]->session(0).data_delivered() +
           nodes[1]->session(0).data_delivered();
  };
  std::vector<double> latencies;
  std::vector<double> rates;
  for (int c = 0; c < kCycles; ++c) {
    const std::uint64_t before = s1.resumes();
    // A sticky write failure: the next heartbeat flush kills the socket.
    // The clock starts when the session *observes* the death — that leaves
    // backoff + redial + rejoin in the sample and keeps the heartbeat
    // detection jitter (uniform over one tick) out of it.
    hooks.fail_writes_after.store(0);
    if (!spin([&] { return s1.down(); }, 2.0)) break;
    const double t_down = now_s();
    hooks.fail_writes_after.store(-1);
    if (!spin([&] { return s1.resumes() > before; }, 2.0)) break;
    latencies.push_back((now_s() - t_down) * 1e3);
    // Post-recovery (catch-up) throughput, count-based and right after the
    // rejoin while the stream is provably hot: time the next 2000
    // deliveries — the replay burst plus the resuming pipeline.
    const std::uint64_t mark = delivered_total();
    const double t0 = now_s();
    if (spin([&] { return delivered_total() - mark >= 2000; }, 2.0)) {
      const double elapsed = now_s() - t0;
      if (elapsed > 0)
        rates.push_back(static_cast<double>(delivered_total() - mark) /
                        elapsed);
    }
    spin([&] { return !s1.down(); }, 2.0);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  for (auto& t : threads) t.join();
  CIM_CHECK(results[0].ok && results[1].ok);

  FaultSweepResult res;
  res.resumes = s1.resumes();
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    res.reconnect_ms = latencies[latencies.size() / 2];
  }
  if (!rates.empty()) {
    std::sort(rates.begin(), rates.end());
    res.post_msgs_per_sec = rates[rates.size() / 2];
  }
  return res;
}

struct ObsMeshResult {
  double msgs_per_sec = 0;   // delivered pairs / wall time of run()
  double cpu_us_per_msg = 0; // process CPU (utime+stime) / delivered pairs
};

double cpu_s() {
  struct rusage ru;
  CIM_CHECK(::getrusage(RUSAGE_SELF, &ru) == 0);
  auto tv = [](const struct timeval& t) {
    return static_cast<double>(t.tv_sec) +
           static_cast<double>(t.tv_usec) * 1e-6;
  };
  return tv(ru.ru_utime) + tv(ru.ru_stime);
}

// A full 2-chain MeshNode mesh (workload, sessions, heartbeats — everything
// a cim_bridge process runs) with the stats plane at the given cadence;
// 0 = off. Covers run() end to end, so the StatsFrame encode/forward/fold
// cost and node 0's snapshot rewrites are all priced against the same drain.
// The wall-clock rate is reported for the record, but the overhead verdict
// uses CPU per delivered pair: on a loaded host the extra stats-tick wakeups
// *shift* wall time (they can even shorten convergecast idle waits), while
// the cycles the plane burns are exactly what getrusage counts.
ObsMeshResult run_obs_mesh(std::uint16_t base_port, int stats_interval_ms) {
  std::vector<std::unique_ptr<mesh::MeshNode>> nodes;
  for (std::size_t i = 0; i < 2; ++i) {
    mesh::MeshConfig cfg;
    cfg.node_id = i;
    cfg.topo = isc::make_chain(2);
    cfg.base_port = base_port;
    cfg.procs = 4;
    cfg.ops = 4'000;
    cfg.seed = 17;
    cfg.join_timeout_ms = 20'000;
    cfg.stats_interval_ms = stats_interval_ms;
    if (i == 0 && stats_interval_ms > 0)
      cfg.fed_metrics_path = "/tmp/cim_bench_fed_" +
                             std::to_string(::getpid()) + ".json";
    nodes.push_back(std::make_unique<mesh::MeshNode>(std::move(cfg)));
  }
  std::vector<std::thread> threads;
  std::vector<mesh::MeshResult> results(2);
  for (std::size_t i = 0; i < 2; ++i) {
    threads.emplace_back([&, i] {
      if (nodes[i]->join()) results[i] = nodes[i]->run();
    });
  }
  while (!nodes[0]->sessions_ready() || !nodes[1]->sessions_ready())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const double t0 = now_s();
  const double c0 = cpu_s();
  for (auto& t : threads) t.join();
  const double elapsed = now_s() - t0;
  const double cpu = cpu_s() - c0;
  CIM_CHECK(results[0].ok && results[1].ok);
  const double delivered =
      static_cast<double>(nodes[0]->session(0).data_delivered() +
                          nodes[1]->session(0).data_delivered());
  ObsMeshResult res;
  res.msgs_per_sec = delivered / elapsed;
  res.cpu_us_per_msg = cpu * 1e6 / delivered;
  return res;
}

}  // namespace

int main() {
  bench::JsonReport report("bridge");
  report.meta("messages", std::uint64_t{kMessages});
  stats::Table table(
      {"mesh", "Mmsg/s", "syscalls/msg", "coalesced"});

  const std::pair<const char*, isc::Topology> shapes[] = {
      {"chain_2", isc::make_chain(2)},
      {"btree_4", isc::make_btree(4)},
      {"btree_8", isc::make_btree(8)},
  };
  for (const auto& [label, topo] : shapes) {
    const ShapeResult res = run_shape(topo);
    report.row(label)
        .field("msgs_per_sec", res.msgs_per_sec)
        .field("syscalls_per_msg", res.syscalls_per_msg)
        .field("coalesced_frac", res.coalesced_frac);
    char rate[32], sys[32], coal[32];
    std::snprintf(rate, sizeof(rate), "%.2f", res.msgs_per_sec / 1e6);
    std::snprintf(sys, sizeof(sys), "%.3f", res.syscalls_per_msg);
    std::snprintf(coal, sizeof(coal), "%.2f", res.coalesced_frac);
    table.add_row(label, rate, sys, coal);
  }
  table.print();

  const FaultSweepResult fs = run_fault_sweep(9915);
  report.row("fault_sweep")
      .field("reconnect_ms", fs.reconnect_ms)
      .field("post_recovery_msgs_per_sec", fs.post_msgs_per_sec)
      .field("resumes", static_cast<double>(fs.resumes));
  std::printf("fault_sweep: reconnect %.1f ms (median of %llu resumes), "
              "post-recovery %.0f msgs/s\n",
              fs.reconnect_ms, static_cast<unsigned long long>(fs.resumes),
              fs.post_msgs_per_sec);

  // The per-tick cost is far too small to resolve at the deployed 250 ms
  // cadence (a 3 s run holds ~12 ticks — fractions of a percent, under the
  // host noise floor), so the measurement amplifies it: run at a 5 ms
  // cadence (50x the default tick rate), take the cheapest of two runs per
  // configuration (least CPU per message — comparing minima keeps scheduler
  // noise out of the delta), and scale the measured delta back down by the
  // cadence ratio. Tick work is constant per tick (sample + encode +
  // forward + fold + snapshot rewrite), so the scaling is linear.
  constexpr int kAmplifiedCadenceMs = 5;
  constexpr double kDefaultCadenceMs = 250.0;  // what --fed-metrics implies
  const ObsMeshResult off_a = run_obs_mesh(9917, 0);
  const ObsMeshResult off_b = run_obs_mesh(9917, 0);
  const ObsMeshResult on_a = run_obs_mesh(9919, kAmplifiedCadenceMs);
  const ObsMeshResult on_b = run_obs_mesh(9919, kAmplifiedCadenceMs);
  const ObsMeshResult& off =
      off_a.cpu_us_per_msg <= off_b.cpu_us_per_msg ? off_a : off_b;
  const ObsMeshResult& on =
      on_a.cpu_us_per_msg <= on_b.cpu_us_per_msg ? on_a : on_b;
  const double amplified_pct =
      (on.cpu_us_per_msg - off.cpu_us_per_msg) / off.cpu_us_per_msg * 100.0;
  const double overhead_pct =
      amplified_pct * kAmplifiedCadenceMs / kDefaultCadenceMs;
  report.row("obs_overhead")
      .field("stats_off_msgs_per_sec", off.msgs_per_sec)
      .field("stats_on_msgs_per_sec", on.msgs_per_sec)
      .field("stats_off_cpu_us_per_msg", off.cpu_us_per_msg)
      .field("stats_on_cpu_us_per_msg", on.cpu_us_per_msg)
      .field("amplified_overhead_pct", amplified_pct)
      .field("overhead_pct", overhead_pct);
  std::printf("obs_overhead: %.1f us/msg CPU stats off, %.1f at a 5 ms "
              "cadence (50x default) -> %.2f%% amplified, %.3f%% at the "
              "default 250 ms cadence\n",
              off.cpu_us_per_msg, on.cpu_us_per_msg, amplified_pct,
              overhead_pct);
  return 0;
}

# Empty compiler generated dependencies file for two_lans.
# This may be replaced when dependencies are built.

// Experiment E10 as tests: why the paper requires the inter-IS channel to be
// a *reliable FIFO* channel. Fault injection deliberately violates each
// property and shows the corresponding failure mode; the reliable-FIFO
// configuration never fails.
#include <gtest/gtest.h>

#include "checker/causal_checker.h"
#include "helpers.h"

namespace cim::isc {
namespace {

using test::X;
using test::Y;

// ------------------------------------------------------ raw channel faults

struct IntMsg final : net::Message {
  explicit IntMsg(int v) : value(v) {}
  int value;
  const char* type_name() const override { return "test.int"; }
};

struct Collector final : net::Receiver {
  std::vector<int> values;
  void on_message(net::ChannelId, net::MessagePtr msg) override {
    values.push_back(static_cast<IntMsg&>(*msg).value);
  }
};

TEST(ChannelFaults, NonFifoChannelReordersUnderJitter) {
  sim::Simulator sim;
  net::Fabric fabric(sim, 7);
  Collector rx;
  net::ChannelConfig cc;
  cc.src = ProcId{SystemId{0}, 0};
  cc.dst = ProcId{SystemId{0}, 1};
  cc.receiver = &rx;
  cc.delay = std::make_unique<net::UniformDelay>(sim::microseconds(1),
                                                 sim::milliseconds(50));
  cc.fifo = false;
  auto ch = fabric.add_channel(std::move(cc));
  for (int i = 0; i < 50; ++i) fabric.send(ch, std::make_unique<IntMsg>(i));
  sim.run();
  ASSERT_EQ(rx.values.size(), 50u);
  bool reordered = false;
  for (std::size_t i = 1; i < rx.values.size(); ++i) {
    if (rx.values[i] < rx.values[i - 1]) reordered = true;
  }
  EXPECT_TRUE(reordered) << "jitter + no FIFO should reorder";
}

TEST(ChannelFaults, LossyChannelDropsAndCounts) {
  sim::Simulator sim;
  net::Fabric fabric(sim, 7);
  Collector rx;
  net::ChannelConfig cc;
  cc.src = ProcId{SystemId{0}, 0};
  cc.dst = ProcId{SystemId{0}, 1};
  cc.receiver = &rx;
  cc.drop_probability = 0.5;
  auto ch = fabric.add_channel(std::move(cc));
  for (int i = 0; i < 200; ++i) fabric.send(ch, std::make_unique<IntMsg>(i));
  sim.run();
  const auto& stats = fabric.channel_stats(ch);
  EXPECT_EQ(stats.messages, 200u);
  EXPECT_EQ(stats.dropped, 200u - rx.values.size());
  EXPECT_GT(stats.dropped, 50u);
  EXPECT_LT(stats.dropped, 150u);
}

TEST(ChannelFaults, ZeroDropProbabilityLosesNothing) {
  sim::Simulator sim;
  net::Fabric fabric(sim, 7);
  Collector rx;
  net::ChannelConfig cc;
  cc.src = ProcId{SystemId{0}, 0};
  cc.dst = ProcId{SystemId{0}, 1};
  cc.receiver = &rx;
  auto ch = fabric.add_channel(std::move(cc));
  for (int i = 0; i < 100; ++i) fabric.send(ch, std::make_unique<IntMsg>(i));
  sim.run();
  EXPECT_EQ(rx.values.size(), 100u);
  EXPECT_EQ(fabric.channel_stats(ch).dropped, 0u);
}

// --------------------------------------------- faults on the IS link itself

// A non-FIFO IS link can deliver ⟨y,u⟩ before the causally earlier ⟨x,v⟩;
// a remote reader then observes the Section-3 violation even though both
// systems run flawless causal protocols.
TEST(ChannelFaults, NonFifoLinkBreaksCausalityOfTheUnion) {
  bool violated_once = false;
  for (std::uint64_t seed = 1; seed <= 12 && !violated_once; ++seed) {
    FederationConfig cfg = test::two_systems(2, proto::anbkh_protocol(),
                                             proto::anbkh_protocol(), seed);
    cfg.links[0].fifo = false;
    cfg.links[0].delay = [] {
      return std::make_unique<net::UniformDelay>(sim::milliseconds(1),
                                                 sim::milliseconds(60));
    };
    Federation fed(std::move(cfg));
    auto& sim = fed.simulator();

    // Causal chain w(x)a then w(y)b, repeated; scanner in S1 reads y then x.
    for (int r = 0; r < 10; ++r) {
      sim.at(sim::Time{} + sim::milliseconds(80 * r),
             [&fed, r] { fed.system(0).app(0).write(X, 2 * r + 1); });
      sim.at(sim::Time{} + sim::milliseconds(80 * r + 2),
             [&fed, r] { fed.system(0).app(0).write(Y, 2 * r + 2); });
    }
    auto scan = std::make_shared<std::function<void()>>();
    auto* reader = &fed.system(1).app(0);
    const sim::Time end = sim::Time{} + sim::milliseconds(900);
    *scan = [scan, reader, &sim, end] {
      reader->read(Y);
      reader->read(X);
      if (sim.now() < end) {
        sim.after(sim::milliseconds(1), [scan] { (*scan)(); });
      }
    };
    (*scan)();
    fed.run();
    *scan = nullptr;  // break the closure's self-ownership cycle

    if (!chk::CausalChecker{}.check(fed.federation_history()).ok()) {
      violated_once = true;
    }
  }
  EXPECT_TRUE(violated_once)
      << "a non-FIFO link should eventually violate causality";
}

// The same scenario with the (default) reliable FIFO link never violates.
TEST(ChannelFaults, FifoLinkNeverViolatesInSameScenario) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    FederationConfig cfg = test::two_systems(2, proto::anbkh_protocol(),
                                             proto::anbkh_protocol(), seed);
    cfg.links[0].delay = [] {
      return std::make_unique<net::UniformDelay>(sim::milliseconds(1),
                                                 sim::milliseconds(60));
    };
    Federation fed(std::move(cfg));
    auto& sim = fed.simulator();
    for (int r = 0; r < 10; ++r) {
      sim.at(sim::Time{} + sim::milliseconds(80 * r),
             [&fed, r] { fed.system(0).app(0).write(X, 2 * r + 1); });
      sim.at(sim::Time{} + sim::milliseconds(80 * r + 2),
             [&fed, r] { fed.system(0).app(0).write(Y, 2 * r + 2); });
    }
    auto scan = std::make_shared<std::function<void()>>();
    auto* reader = &fed.system(1).app(0);
    const sim::Time end = sim::Time{} + sim::milliseconds(900);
    *scan = [scan, reader, &sim, end] {
      reader->read(Y);
      reader->read(X);
      if (sim.now() < end) {
        sim.after(sim::milliseconds(1), [scan] { (*scan)(); });
      }
    };
    (*scan)();
    fed.run();
    *scan = nullptr;  // break the closure's self-ownership cycle
    auto res = chk::CausalChecker{}.check(fed.federation_history());
    EXPECT_TRUE(res.ok()) << "seed " << seed << ": " << res.detail;
  }
}

// A lossy IS link silently loses updates. With this *single-variable*
// workload the delivered subsequence stays causal (reads only ever see a
// monotone subsequence of one writer's values); the multi-variable case in
// bench_ablation_channel shows drops breaking causality too (a dropped
// ⟨x,v⟩ followed by a delivered causally-later ⟨y,u⟩ is an observable gap).
// Either way the propagation guarantee — every write eventually visible
// everywhere — is gone.
TEST(ChannelFaults, LossyLinkLosesUpdatesButStaysCausal) {
  FederationConfig cfg = test::two_systems(2, proto::anbkh_protocol(),
                                           proto::anbkh_protocol(), 5);
  cfg.links[0].drop_probability = 0.4;
  Federation fed(std::move(cfg));
  for (int i = 1; i <= 50; ++i) {
    fed.simulator().at(sim::Time{} + sim::milliseconds(5 * i),
                       [&fed, i] { fed.system(0).app(0).write(X, i); });
  }
  fed.run();

  const auto cross = fed.fabric().cross_system_stats(SystemId{0}, SystemId{1});
  EXPECT_GT(cross.dropped, 0u);
  EXPECT_EQ(fed.interconnector().shared_isp(1).pairs_received() + cross.dropped,
            50u);

  // Safety still holds: the delivered prefix is causally consistent.
  auto res = chk::CausalChecker{}.check(fed.federation_history());
  EXPECT_TRUE(res.ok()) << res.detail;
}

}  // namespace
}  // namespace cim::isc


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/checker/causal_checker.cpp" "src/checker/CMakeFiles/cim_checker.dir/causal_checker.cpp.o" "gcc" "src/checker/CMakeFiles/cim_checker.dir/causal_checker.cpp.o.d"
  "/root/repo/src/checker/history.cpp" "src/checker/CMakeFiles/cim_checker.dir/history.cpp.o" "gcc" "src/checker/CMakeFiles/cim_checker.dir/history.cpp.o.d"
  "/root/repo/src/checker/relation.cpp" "src/checker/CMakeFiles/cim_checker.dir/relation.cpp.o" "gcc" "src/checker/CMakeFiles/cim_checker.dir/relation.cpp.o.d"
  "/root/repo/src/checker/search_checker.cpp" "src/checker/CMakeFiles/cim_checker.dir/search_checker.cpp.o" "gcc" "src/checker/CMakeFiles/cim_checker.dir/search_checker.cpp.o.d"
  "/root/repo/src/checker/session_checker.cpp" "src/checker/CMakeFiles/cim_checker.dir/session_checker.cpp.o" "gcc" "src/checker/CMakeFiles/cim_checker.dir/session_checker.cpp.o.d"
  "/root/repo/src/checker/trace_io.cpp" "src/checker/CMakeFiles/cim_checker.dir/trace_io.cpp.o" "gcc" "src/checker/CMakeFiles/cim_checker.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

// Experiment E4 (Section 6, response time).
//
// Paper: "our IS-protocols should not affect the response time a process
// observes when issuing a memory operation, since its MCS-process is not
// affected by the interconnection."
//
// We run the same workload over a global system of n processes and over two
// interconnected systems of n/2, for both protocol families, and compare
// operation response times. ANBKH responds locally (0 for reads and writes);
// Attiya-Welch reads are local and writes wait for the sequencer round-trip
// — in both cases the distribution is unchanged by the interconnection.
#include <iostream>

#include "bench_util.h"
#include "stats/response.h"
#include "stats/table.h"

namespace {

using namespace cim;

struct Row {
  stats::ResponseStats reads;
  stats::ResponseStats writes;
};

Row measure(std::size_t m, std::uint16_t n_total, mcs::ProtocolFactory proto,
            std::uint64_t seed) {
  bench::FedParams params;
  params.num_systems = m;
  params.procs_per_system = static_cast<std::uint16_t>(n_total / m);
  params.protocol = std::move(proto);
  params.seed = seed;
  isc::Federation fed(bench::make_config(params));

  wl::UniformConfig wc;
  wc.ops_per_process = 60;
  wc.write_fraction = 0.5;
  wc.seed = seed + 17;
  auto runners = wl::install_uniform(fed, wc);
  fed.run();

  auto history = fed.federation_history();
  return Row{stats::response_stats(history, chk::OpKind::kRead),
             stats::response_stats(history, chk::OpKind::kWrite)};
}

std::string us(double ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fus", ns / 1000.0);
  return buf;
}

}  // namespace

int main() {
  std::cout << "E4 — operation response time, global vs interconnected "
               "(Section 6)\n\n";

  stats::Table table({"protocol", "layout", "read mean", "read max",
                      "write mean", "write max"});
  const std::uint16_t n = 8;
  struct P {
    const char* name;
    mcs::ProtocolFactory (*make)();
  };
  const P protocols[] = {{"anbkh", proto::anbkh_protocol},
                         {"aw-seq", proto::aw_seq_protocol}};
  for (const P& p : protocols) {
    const Row global = measure(1, n, p.make(), 9);
    const Row split = measure(2, n, p.make(), 9);
    table.add_row(p.name, "global (1x8)", us(global.reads.mean_ns),
                  us(static_cast<double>(global.reads.max_ns)),
                  us(global.writes.mean_ns),
                  us(static_cast<double>(global.writes.max_ns)));
    table.add_row(p.name, "interconnected (2x4)", us(split.reads.mean_ns),
                  us(static_cast<double>(split.reads.max_ns)),
                  us(split.writes.mean_ns),
                  us(static_cast<double>(split.writes.max_ns)));
  }
  table.print();

  std::cout << "\nReads are local in both protocols (0); ANBKH writes ack "
               "locally (0); aw-seq writes\nwait for the sequencer round "
               "trip, which the interconnection does not lengthen.\n";
  return 0;
}

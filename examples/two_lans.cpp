// The paper's motivating scenario (Section 1.1): "a causal system that has
// to be implemented on two local area networks connected with a low-speed
// point-to-point link. If the causal protocol used broadcasts updates, in a
// single system there could be a large number of messages crossing the
// point-to-point link for the same variable update. [...] it would seem
// appropriate to implement one system in each of the local area networks,
// and use an IS-protocol via the link to connect the whole system."
//
// This example runs the same workload both ways and prints the traffic that
// crosses the slow link, plus end-to-end visibility latencies.
//
// Observability quickstart (docs/OBSERVABILITY.md):
//   two_lans --trace trace.jsonl     write the interconnected run's structured
//                                    trace (JSONL, one event per line);
//   two_lans --metrics metrics.json  write its metrics snapshot (cim.metrics.v1).
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "checker/causal_checker.h"
#include "interconnect/federation.h"
#include "obs/metrics.h"
#include "protocols/anbkh.h"
#include "stats/table.h"
#include "stats/visibility.h"
#include "workload/generator.h"

using namespace cim;

namespace {

constexpr std::uint16_t kProcsPerLan = 8;
const sim::Duration kLanDelay = sim::microseconds(200);   // fast LAN
const sim::Duration kWanDelay = sim::milliseconds(30);    // slow point-to-point

struct Result {
  std::uint64_t cross_messages = 0;
  std::uint64_t cross_bytes = 0;
  sim::Duration worst_visibility{};
  bool causal = false;
};

// One global DSM system spanning both LANs: every broadcast crosses the WAN
// once per remote MCS-process.
Result run_global() {
  isc::FederationConfig cfg;
  mcs::SystemConfig sys;
  sys.id = SystemId{0};
  sys.num_app_processes = 2 * kProcsPerLan;
  sys.protocol = proto::anbkh_protocol();
  sys.seed = 7;
  // Channels within a LAN are fast; channels between halves cross the WAN.
  auto channel_no = std::make_shared<int>(0);
  const int n = 2 * kProcsPerLan;
  sys.intra_delay = [channel_no, n]() -> net::DelayModelPtr {
    // System::finalize creates channels in (i, j) order, j != i.
    const int k = (*channel_no)++;
    const int i = k / (n - 1);
    int j = k % (n - 1);
    if (j >= i) ++j;
    const bool cross = (i < kProcsPerLan) != (j < kProcsPerLan);
    return std::make_unique<net::FixedDelay>(cross ? kWanDelay : kLanDelay);
  };
  cfg.systems.push_back(std::move(sys));
  isc::Federation fed(std::move(cfg));

  stats::VisibilityTracker vis;
  fed.add_observer(&vis);
  wl::UniformConfig wc;
  wc.ops_per_process = 20;
  wc.seed = 11;
  auto runners = wl::install_uniform(fed, wc);
  fed.run();

  Result out;
  const auto cross = fed.fabric().stats_where([](ProcId a, ProcId b) {
    return (a.index < kProcsPerLan) != (b.index < kProcsPerLan);
  });
  out.cross_messages = cross.messages;
  out.cross_bytes = cross.bytes;
  std::vector<ProcId> targets;
  for (std::uint16_t p = 0; p < 2 * kProcsPerLan; ++p) {
    targets.push_back(ProcId{SystemId{0}, p});
  }
  out.worst_visibility = vis.worst_visibility(targets).value_or(sim::Duration{});
  out.causal = chk::CausalChecker{}.check(fed.federation_history()).ok();
  return out;
}

struct ObsOutputs {
  std::string trace_path;    // --trace FILE: JSONL trace of the run
  std::string metrics_path;  // --metrics FILE: cim.metrics.v1 snapshot
};

// One system per LAN, interconnected over the WAN with the IS-protocols:
// one pair message crosses per write.
Result run_interconnected(const ObsOutputs& outputs) {
  isc::FederationConfig cfg;
  cfg.obs.trace.enabled = !outputs.trace_path.empty();
  for (std::uint16_t s = 0; s < 2; ++s) {
    mcs::SystemConfig sys;
    sys.id = SystemId{s};
    sys.num_app_processes = kProcsPerLan;
    sys.protocol = proto::anbkh_protocol();
    sys.seed = 7 + s;
    sys.intra_delay = [] {
      return std::make_unique<net::FixedDelay>(kLanDelay);
    };
    cfg.systems.push_back(std::move(sys));
  }
  isc::LinkSpec link;
  link.system_a = 0;
  link.system_b = 1;
  link.delay = [] { return std::make_unique<net::FixedDelay>(kWanDelay); };
  cfg.links.push_back(std::move(link));
  isc::Federation fed(std::move(cfg));

  stats::VisibilityTracker vis;
  fed.add_observer(&vis);
  wl::UniformConfig wc;
  wc.ops_per_process = 20;
  wc.seed = 11;
  auto runners = wl::install_uniform(fed, wc);
  fed.run();

  Result out;
  const auto cross = fed.fabric().cross_system_stats(SystemId{0}, SystemId{1});
  out.cross_messages = cross.messages;
  out.cross_bytes = cross.bytes;
  std::vector<ProcId> targets;
  for (std::uint16_t s = 0; s < 2; ++s) {
    for (std::uint16_t p = 0; p < kProcsPerLan; ++p) {
      targets.push_back(ProcId{SystemId{s}, p});
    }
  }
  out.worst_visibility = vis.worst_visibility(targets).value_or(sim::Duration{});
  out.causal = chk::CausalChecker{}.check(fed.federation_history()).ok();

  if (!outputs.trace_path.empty()) {
    std::ofstream os(outputs.trace_path);
    if (!os) {
      std::cerr << "two_lans: cannot write " << outputs.trace_path << "\n";
    } else {
      fed.observability().trace().write_jsonl(os);
      std::cout << "[trace: " << outputs.trace_path << ", "
                << fed.observability().trace().size() << " events]\n";
      if (fed.observability().trace().dropped() > 0) {
        std::cerr << "two_lans: warning: trace ring dropped "
                  << fed.observability().trace().dropped()
                  << " events; raise cfg.obs.trace.capacity for a full trace\n";
      }
    }
  }
  if (!outputs.metrics_path.empty()) {
    std::ofstream os(outputs.metrics_path);
    if (!os) {
      std::cerr << "two_lans: cannot write " << outputs.metrics_path << "\n";
    } else {
      obs::write_json(os, fed.metrics_snapshot());
      std::cout << "[metrics: " << outputs.metrics_path << "]\n";
    }
  }
  return out;
}

std::string ms(sim::Duration d) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(d.ns) / 1e6);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  ObsOutputs outputs;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      outputs.trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      outputs.metrics_path = argv[++i];
    } else {
      std::cerr << "usage: two_lans [--trace FILE] [--metrics FILE]\n";
      return 2;
    }
  }

  std::cout << "Two LANs (" << kProcsPerLan << " processes each) joined by a "
            << "slow point-to-point link\nworkload: 20 ops/process, 50% "
               "writes\n\n";

  const Result global = run_global();
  const Result interconnected = run_interconnected(outputs);

  stats::Table table({"architecture", "WAN messages", "WAN bytes",
                      "worst visibility", "causal"});
  table.add_row("one global DSM system", global.cross_messages,
                global.cross_bytes, ms(global.worst_visibility),
                global.causal ? "yes" : "NO");
  table.add_row("two systems + IS-protocol", interconnected.cross_messages,
                interconnected.cross_bytes, ms(interconnected.worst_visibility),
                interconnected.causal ? "yes" : "NO");
  table.print();

  const double factor = static_cast<double>(global.cross_messages) /
                        static_cast<double>(interconnected.cross_messages);
  std::cout << "\nThe interconnection sends " << factor
            << "x fewer messages over the slow link (paper: n/2 vs 1 per "
               "write)\nwhile both architectures remain causal.\n";
  return 0;
}

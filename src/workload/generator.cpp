#include "workload/generator.h"

namespace cim::wl {

std::vector<Step> uniform_script(const UniformConfig& config, Rng& rng,
                                 UniqueValueSource& values) {
  std::vector<Step> script;
  script.reserve(config.ops_per_process);
  for (std::size_t i = 0; i < config.ops_per_process; ++i) {
    VarId var{static_cast<std::uint32_t>(
        rng.uniform(0, config.num_vars == 0 ? 0 : config.num_vars - 1))};
    if (config.hotspot > 0 && rng.chance(config.hotspot)) var = VarId{0};
    if (rng.chance(config.write_fraction)) {
      script.push_back(write_step(var, values.next()));
    } else {
      script.push_back(read_step(var));
    }
  }
  return script;
}

std::vector<std::unique_ptr<ScriptRunner>> install_uniform(
    isc::Federation& federation, const UniformConfig& config) {
  Rng rng(config.seed);
  UniqueValueSource values(config.value_base);
  std::vector<std::unique_ptr<ScriptRunner>> runners;
  for (std::size_t s = 0; s < federation.num_systems(); ++s) {
    mcs::System& system = federation.system(s);
    for (std::uint16_t p = 0; p < system.num_app_processes(); ++p) {
      Rng script_rng = rng.split();
      auto runner = std::make_unique<ScriptRunner>(
          federation.simulator(), system.app(p),
          uniform_script(config, script_rng, values), config.think_min,
          config.think_max, rng.next());
      runner->start();
      runners.push_back(std::move(runner));
    }
  }
  return runners;
}

RelayDriver::RelayDriver(sim::Simulator& simulator, mcs::AppProcess& app,
                         VarId watch, Value trigger, VarId out,
                         Value out_value, sim::Duration poll_interval)
    : sim_(simulator), app_(app), watch_(watch), trigger_(trigger), out_(out),
      out_value_(out_value), poll_interval_(poll_interval) {}

void RelayDriver::start() { poll(); }

void RelayDriver::poll() {
  app_.read(watch_, [this](Value v) {
    if (v == trigger_) {
      app_.write(out_, out_value_, [this]() { fired_ = true; });
    } else {
      sim_.after(poll_interval_, [this]() { poll(); });
    }
  });
}

}  // namespace cim::wl

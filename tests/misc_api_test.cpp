// Miscellaneous public-API coverage: observer fan-out, federation lifecycle,
// IS-process activation rules, message metadata.
#include <gtest/gtest.h>

#include "helpers.h"
#include "interconnect/pair_msg.h"
#include "msgpass/cbcast.h"
#include "protocols/update_msg.h"

namespace cim {
namespace {

using test::X;

struct CountingObserver final : mcs::MemoryObserver {
  int issued = 0;
  int applied = 0;
  void on_write_issued(ProcId, VarId, Value, sim::Time) override { ++issued; }
  void on_apply(ProcId, VarId, Value, sim::Time) override { ++applied; }
};

TEST(ObserverMux, FansOutToAllRegisteredObservers) {
  isc::Federation fed(test::single_system(3, proto::anbkh_protocol()));
  CountingObserver a, b;
  fed.add_observer(&a);
  fed.add_observer(&b);
  fed.system(0).app(0).write(X, 1);
  fed.run();
  EXPECT_EQ(a.issued, 1);
  EXPECT_EQ(a.applied, 3);  // writer + two remote replicas
  EXPECT_EQ(b.issued, a.issued);
  EXPECT_EQ(b.applied, a.applied);
}

TEST(ObserverMux, ObserversAddedMidRunSeeOnlyLaterEvents) {
  isc::Federation fed(test::single_system(2, proto::anbkh_protocol()));
  fed.system(0).app(0).write(X, 1);
  fed.run();
  CountingObserver late;
  fed.add_observer(&late);
  fed.system(0).app(0).write(X, 2);
  fed.run();
  EXPECT_EQ(late.issued, 1);
}

TEST(Federation, RunUntilAdvancesPartially) {
  isc::Federation fed(test::single_system(2, proto::anbkh_protocol()));
  fed.system(0).app(0).write(X, 1);  // remote apply due at +1ms
  fed.run_until(sim::Time{} + sim::microseconds(500));
  auto& remote = dynamic_cast<proto::AnbkhProcess&>(fed.system(0).mcs(1));
  EXPECT_EQ(remote.replica_value(X), kInitValue);
  fed.run();
  EXPECT_EQ(remote.replica_value(X), 1);
}

TEST(Federation, RequiresAtLeastOneSystem) {
  isc::FederationConfig cfg;
  EXPECT_THROW(isc::Federation{std::move(cfg)}, InvariantViolation);
}

TEST(Federation, SystemHistoryIncludesIspOps) {
  isc::Federation fed(test::two_systems(2, proto::anbkh_protocol(),
                                        proto::anbkh_protocol()));
  fed.system(0).app(0).write(X, 1);
  fed.run();
  // α^1 contains the ISP's propagated write plus its upcall reads; α^T does
  // not contain any ISP op.
  auto s1 = fed.system_history(1);
  bool has_isp_write = false;
  for (std::size_t i = 0; i < s1.size(); ++i) {
    if (s1.is_isp(i) && s1.kind(i) == chk::OpKind::kWrite) {
      has_isp_write = true;
    }
  }
  EXPECT_TRUE(has_isp_write);
  const auto federation_view = fed.federation_history();
  for (std::size_t i = 0; i < federation_view.size(); ++i) {
    EXPECT_FALSE(federation_view.is_isp(i));
  }
}

TEST(IsProcess, DoubleActivationThrows) {
  isc::Federation fed(test::two_systems(2, proto::anbkh_protocol(),
                                        proto::anbkh_protocol()));
  EXPECT_THROW(
      fed.interconnector().shared_isp(0).activate(isc::IsProtocolChoice::kAuto),
      InvariantViolation);  // already activated by build()
}

TEST(IsProcess, MustAttachToIspSlot) {
  isc::Federation fed(test::single_system(2, proto::anbkh_protocol()));
  EXPECT_THROW(isc::IsProcess(fed.system(0).app(0), fed.fabric()),
               InvariantViolation);
}

TEST(Messages, WireSizesAreOrderedSensibly) {
  proto::TimestampedUpdate full;
  full.clock = VectorClock(4);
  isc::PairMsg pair;
  mp::CbcastMsg cb;
  cb.clock = VectorClock(4);
  // The IS pair is protocol-agnostic and smallest; clocked updates grow with
  // the system size.
  EXPECT_LT(pair.wire_size(), full.wire_size());
  mp::CbcastMsg big;
  big.clock = VectorClock(16);
  EXPECT_GT(big.wire_size(), cb.wire_size());
  EXPECT_STREQ(pair.type_name(), "is.pair");
}

TEST(ScriptRunner, EmptyScriptFinishesImmediately) {
  isc::Federation fed(test::single_system(2, proto::anbkh_protocol()));
  wl::ScriptRunner runner(fed.simulator(), fed.system(0).app(0), {},
                          sim::milliseconds(1), sim::milliseconds(1), 1);
  bool finished = false;
  runner.on_finished = [&] { finished = true; };
  runner.start();
  EXPECT_TRUE(finished);
  EXPECT_TRUE(runner.done());
}

TEST(ScriptRunner, DoubleStartThrows) {
  isc::Federation fed(test::single_system(2, proto::anbkh_protocol()));
  wl::ScriptRunner runner(fed.simulator(), fed.system(0).app(0),
                          {wl::read_step(X)}, sim::milliseconds(1),
                          sim::milliseconds(1), 1);
  runner.start();
  EXPECT_THROW(runner.start(), InvariantViolation);
}

}  // namespace
}  // namespace cim

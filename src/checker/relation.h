// Dense binary relations over operation indices, with reachability utilities.
//
// The consistency checkers manipulate orders (program order, reads-from,
// causal order, the per-process happens-before of the CM characterization) as
// bit matrices: rel.test(i, j) means "i precedes j". Transitive closure uses
// a reverse-topological DP over strongly connected components, so it also
// works (and detects) cyclic relations.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

namespace cim::chk {

/// Square bit matrix: n x n adjacency/closure representation.
class Relation {
 public:
  Relation() = default;
  explicit Relation(std::size_t n)
      : n_(n), words_per_row_((n + 63) / 64), bits_(n * words_per_row_, 0) {}

  std::size_t size() const { return n_; }

  bool test(std::size_t i, std::size_t j) const {
    return (row(i)[j >> 6] >> (j & 63)) & 1;
  }

  void set(std::size_t i, std::size_t j) { row(i)[j >> 6] |= 1ULL << (j & 63); }

  /// row(i) |= row(j) — "everything j reaches, i reaches".
  void merge_row(std::size_t i, std::size_t j) {
    std::uint64_t* ri = row(i);
    const std::uint64_t* rj = row(j);
    for (std::size_t w = 0; w < words_per_row_; ++w) ri[w] |= rj[w];
  }

  std::size_t edge_count() const;

  /// Iterate successors of i, invoking fn(j) for each set bit.
  template <typename Fn>
  void for_successors(std::size_t i, Fn fn) const {
    const std::uint64_t* r = row(i);
    for (std::size_t w = 0; w < words_per_row_; ++w) {
      std::uint64_t bits = r[w];
      while (bits) {
        const int b = __builtin_ctzll(bits);
        bits &= bits - 1;
        const std::size_t j = (w << 6) + static_cast<std::size_t>(b);
        if (j < n_) fn(j);
      }
    }
  }

  bool operator==(const Relation&) const = default;

  std::uint64_t* row(std::size_t i) { return bits_.data() + i * words_per_row_; }
  const std::uint64_t* row(std::size_t i) const {
    return bits_.data() + i * words_per_row_;
  }

 private:
  std::size_t n_ = 0;
  std::size_t words_per_row_ = 0;
  std::vector<std::uint64_t> bits_;
};

/// Result of closing a relation: the closure plus, if the relation has a
/// cycle, one pair (i, j), i != j, with i and j mutually reachable.
struct ClosureResult {
  Relation closure;
  std::optional<std::pair<std::size_t, std::size_t>> cycle_witness;
};

/// Transitive closure (reflexivity NOT added). Detects cycles.
ClosureResult transitive_closure(const Relation& rel);

}  // namespace cim::chk

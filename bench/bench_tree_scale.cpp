// Experiment E8 (Corollary 1 at scale): trees of m systems.
//
// Two tables:
//  * traffic — the n+m-1 messages-per-write formula holds for every tree
//    shape (it only depends on n and m, not on the topology);
//  * latency — the worst-case visibility generalizes the star's 3l+2d to
//    (h+1)l + h·d, where h is the hop-eccentricity of the writer's system in
//    the tree (per-link IS-processes, the paper's construction).
#include <algorithm>
#include <iostream>

#include "bench_report.h"
#include "bench_util.h"
#include "checker/causal_checker.h"
#include "stats/table.h"
#include "stats/visibility.h"

namespace {

using namespace cim;

double messages_per_write(bench::Topology topo, std::size_t m,
                          std::uint16_t procs) {
  bench::FedParams params;
  params.num_systems = m;
  params.procs_per_system = procs;
  params.topology = topo;
  isc::Federation fed(bench::make_config(params));

  wl::UniformConfig wc;
  wc.ops_per_process = 8;
  wc.write_fraction = 1.0;
  wc.seed = 23;
  auto runners = wl::install_uniform(fed, wc);
  fed.run();
  const double writes = static_cast<double>(m) * procs * 8;
  return static_cast<double>(fed.fabric().total_messages()) / writes;
}

sim::Duration worst_latency(bench::Topology topo, std::size_t m,
                            sim::Duration l, sim::Duration d) {
  bench::FedParams params;
  params.num_systems = m;
  params.procs_per_system = 2;
  params.topology = topo;
  params.intra_delay = l;
  params.link_delay = d;
  params.isp_mode = isc::IspMode::kPerLink;
  isc::Federation fed(bench::make_config(params));

  stats::VisibilityTracker vis;
  fed.add_observer(&vis);
  fed.system(0).app(0).write(VarId{0}, 1);
  fed.run();
  return vis.worst_visibility(bench::all_app_procs(fed))
      .value_or(sim::Duration{-1});
}

// Engine throughput on a steady-state tree federation: the perf-regression
// rows of the harness (scripts/run_benches.sh). Virtual-time results are
// deterministic for a fixed seed; wall_s and events_per_sec measure the host.
struct PerfResult {
  std::uint64_t events = 0;
  std::uint64_t ops = 0;
  double wall_s = 0.0;
  sim::Duration p99_visibility{0};
};

bench::FedParams perf_params(bench::Topology topo, std::size_t m,
                             std::uint16_t procs, std::uint64_t seed) {
  bench::FedParams params;
  params.num_systems = m;
  params.procs_per_system = procs;
  params.topology = topo;
  params.intra_delay = sim::microseconds(100);
  params.link_delay = sim::milliseconds(1);
  params.seed = seed;
  return params;
}

PerfResult perf_run(bench::Topology topo, std::size_t m, std::uint16_t procs,
                    std::uint32_t ops_per_process, std::uint64_t seed) {
  wl::UniformConfig wc;
  wc.ops_per_process = ops_per_process;
  wc.write_fraction = 0.5;
  wc.seed = seed;
  PerfResult r;
  r.ops = static_cast<std::uint64_t>(m) * procs * ops_per_process;

  // Timed run: no observers attached, so wall_s measures the engine
  // (simulate -> send -> deliver -> apply), not the stats machinery.
  {
    isc::Federation fed(
        bench::make_config(perf_params(topo, m, procs, seed)));
    auto runners = wl::install_uniform(fed, wc);
    const bench::WallTimer timer;
    fed.run();
    r.wall_s = timer.seconds();
    r.events = fed.simulator().events_fired();
  }

  // Untimed re-run with the visibility tracker for the p99 row (virtual-time,
  // deterministic — identical seed reproduces the same event sequence).
  {
    isc::Federation fed(
        bench::make_config(perf_params(topo, m, procs, seed)));
    stats::VisibilityTracker vis;
    fed.add_observer(&vis);
    auto runners = wl::install_uniform(fed, wc);
    fed.run();
    std::vector<sim::Duration> lat =
        vis.all_visibilities(bench::all_app_procs(fed));
    if (!lat.empty()) {
      std::sort(lat.begin(), lat.end(),
                [](sim::Duration a, sim::Duration b) { return a.ns < b.ns; });
      r.p99_visibility = lat[(lat.size() * 99) / 100];
    }
  }
  return r;
}

}  // namespace

int main() {
  bench::JsonReport report("tree_scale");
  const std::uint64_t kPerfSeed = 97;
  report.meta("seed", kPerfSeed);

  std::cout << "E8 — scaling Corollary 1: trees of m interconnected systems\n\n";

  const std::uint16_t procs = 2;
  std::cout << "Traffic (shared IS-processes): paper formula n + m - 1\n";
  stats::Table traffic({"topology", "m", "n", "paper", "measured"});
  for (bench::Topology topo : {bench::Topology::kChain, bench::Topology::kStar,
                               bench::Topology::kBinaryTree}) {
    for (std::size_t m : {std::size_t{2}, std::size_t{4}, std::size_t{8},
                          std::size_t{16}}) {
      const std::size_t n = m * procs;
      const double measured = messages_per_write(topo, m, procs);
      traffic.add_row(bench::to_string(topo), m, n,
                      static_cast<double>(n + m - 1), measured);
      report
          .row(std::string("traffic.") + bench::to_string(topo) + "_m" +
               std::to_string(m))
          .field("paper", static_cast<double>(n + m - 1))
          .field("measured", measured);
    }
  }
  traffic.print();

  const sim::Duration l = sim::milliseconds(1);
  const sim::Duration d = sim::milliseconds(10);
  std::cout << "\nLatency (per-link IS-processes, writer in system 0, l="
            << bench::ms_string(l) << ", d=" << bench::ms_string(d)
            << "): formula (h+1)l + h*d\n";
  stats::Table latency(
      {"topology", "m", "h (ecc. of S0)", "paper", "measured"});
  for (bench::Topology topo : {bench::Topology::kChain, bench::Topology::kStar,
                               bench::Topology::kBinaryTree}) {
    for (std::size_t m : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
      const auto edges = bench::edges_of(topo, m);
      const std::size_t h = bench::eccentricity(edges, m, 0);
      const sim::Duration expect =
          static_cast<std::int64_t>(h + 1) * l + static_cast<std::int64_t>(h) * d;
      const sim::Duration measured = worst_latency(topo, m, l, d);
      latency.add_row(bench::to_string(topo), m, h, bench::ms_string(expect),
                      bench::ms_string(measured));
      report
          .row(std::string("latency.") + bench::to_string(topo) + "_m" +
               std::to_string(m))
          .field_ns("paper", expect)
          .field_ns("measured", measured);
    }
  }
  latency.print();

  std::cout << "\nThe star keeps h (and latency) constant as m grows — the "
               "paper's recommended\nshape — while the chain's latency grows "
               "linearly with m.\n";

  std::cout << "\nEngine throughput (events/sec, wall clock — the "
               "perf-regression rows)\n";
  stats::Table perf({"topology", "m", "events", "wall s", "events/s", "ops/s",
                     "p99 vis"});
  for (bench::Topology topo :
       {bench::Topology::kStar, bench::Topology::kBinaryTree}) {
    for (std::size_t m : {std::size_t{4}, std::size_t{8}}) {
      const PerfResult r = perf_run(topo, m, /*procs=*/4,
                                    /*ops_per_process=*/200, kPerfSeed);
      const double eps = static_cast<double>(r.events) / r.wall_s;
      const double ops = static_cast<double>(r.ops) / r.wall_s;
      perf.add_row(bench::to_string(topo), m, r.events, r.wall_s, eps, ops,
                   bench::ms_string(r.p99_visibility));
      report
          .row(std::string("perf.") + bench::to_string(topo) + "_m" +
               std::to_string(m))
          .field("events", r.events)
          .field("ops", r.ops)
          .field("wall_s", r.wall_s)
          .field("events_per_sec", eps)
          .field("ops_per_sec", ops)
          .field_ns("p99_visibility", r.p99_visibility);
    }
  }
  perf.print();
  return 0;
}

file(REMOVE_RECURSE
  "CMakeFiles/bench_checker_perf.dir/bench_checker_perf.cpp.o"
  "CMakeFiles/bench_checker_perf.dir/bench_checker_perf.cpp.o.d"
  "bench_checker_perf"
  "bench_checker_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_checker_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

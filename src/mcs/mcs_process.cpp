#include "mcs/mcs_process.h"

#include <utility>

#include "common/check.h"

namespace cim::mcs {

McsProcess::McsProcess(const McsContext& ctx) : ctx_(ctx), rng_(ctx.rng_seed) {
  if (ctx_.obs != nullptr) {
    trace_ = &ctx_.obs->trace();
    obs::MetricsRegistry& m = ctx_.obs->metrics();
    m_issued_ = &m.counter("proto.updates_issued");
    m_applied_ = &m.counter("proto.updates_applied");
    h_causal_wait_ = &m.histogram("proto.causal_wait");
    h_buffer_ = &m.value_histogram("proto.buffer_occupancy");
  }
}

void McsProcess::note_update_issued(VarId var, Value value, WriteId wid) {
  if (m_issued_ != nullptr) m_issued_->inc();
  CIM_TRACE(trace_, simulator().now(), obs::TraceCategory::kProto,
            "update_issued",
            {{"proc", id()}, {"var", var}, {"val", value}, {"wid", wid}});
}

void McsProcess::note_update_buffered(std::size_t buffer_size) {
  if (h_buffer_ != nullptr) {
    h_buffer_->observe(static_cast<std::int64_t>(buffer_size));
  }
  CIM_TRACE(trace_, simulator().now(), obs::TraceCategory::kProto,
            "update_buffered", {{"proc", id()}, {"buf", buffer_size}});
}

void McsProcess::note_update_applied(VarId var, Value value, WriteId wid) {
  if (m_applied_ != nullptr) m_applied_->inc();
  CIM_TRACE(trace_, simulator().now(), obs::TraceCategory::kProto,
            "update_applied",
            {{"proc", id()}, {"var", var}, {"val", value}, {"wid", wid}});
}

void McsProcess::note_update_applied(VarId var, Value value, WriteId wid,
                                     sim::Time received_at) {
  if (m_applied_ != nullptr) {
    m_applied_->inc();
    h_causal_wait_->observe(simulator().now() - received_at);
  }
  CIM_TRACE(trace_, simulator().now(), obs::TraceCategory::kProto,
            "update_applied",
            {{"proc", id()},
             {"var", var},
             {"val", value},
             {"wid", wid},
             {"wait_ns", simulator().now() - received_at}});
}

void McsProcess::set_out_channels(std::vector<net::ChannelId> out) {
  CIM_CHECK(out.size() == ctx_.num_procs);
  out_ = std::move(out);
}

void McsProcess::register_in_channel(net::ChannelId ch, std::uint16_t from) {
  if (ch.value >= in_senders_.size()) {
    in_senders_.resize(ch.value + 1, kNoSender);
  }
  in_senders_[ch.value] = from;
}

std::uint16_t McsProcess::sender_of(net::ChannelId ch) const {
  // Flat lookup on the per-message path; registration happens at finalize().
  CIM_CHECK_MSG(ch.value < in_senders_.size() &&
                    in_senders_[ch.value] != kNoSender,
                "message on unregistered channel");
  return in_senders_[ch.value];
}

void McsProcess::send_to(std::uint16_t to, net::MessagePtr msg) {
  CIM_DCHECK(to < out_.size() && to != ctx_.local_index);
  fabric().send(out_[to], std::move(msg));
}

void McsProcess::handle_write(VarId var, Value value, WriteId wid,
                              WriteCallback cb) {
  if (upcall_in_flight_) {
    // Condition (a): the replica values involved in an in-flight upcall must
    // stay stable; local writes wait until the upcall dance completes.
    deferred_writes_.push_back(DeferredWrite{var, value, wid, std::move(cb)});
    return;
  }
  do_write(var, value, wid, std::move(cb));
}

void McsProcess::drain_deferred_writes() {
  while (!deferred_writes_.empty() && !upcall_in_flight_) {
    DeferredWrite w = std::move(deferred_writes_.front());
    deferred_writes_.pop_front();
    do_write(w.var, w.value, w.wid, std::move(w.cb));
  }
}

void McsProcess::apply_with_upcalls(VarId var, Value value, WriteId wid,
                                    bool own_write, DoneFn apply,
                                    DoneFn done) {
  if (upcall_handler_ == nullptr || own_write) {
    // "The update of a replica due to a write operation issued by the
    // IS-process does not generate any upcall."
    apply();
    done();
    return;
  }

  CIM_CHECK_MSG(!upcall_in_flight_,
                "apply pipeline must serialize upcall dances");
  upcall_in_flight_ = true;

  auto finish = [this, done = std::move(done)]() {
    upcall_in_flight_ = false;
    drain_deferred_writes();
    done();
  };
  auto apply_and_post = [this, var, value, wid, apply = std::move(apply),
                         finish = std::move(finish)]() mutable {
    apply();
    upcall_handler_->post_update(var, value, wid, std::move(finish));
  };

  if (pre_update_enabled_) {
    upcall_handler_->pre_update(var, std::move(apply_and_post));
  } else {
    apply_and_post();
  }
}

}  // namespace cim::mcs

// Machine-readable bench output (schema `cim.bench.v1`, docs/BENCHMARKS.md).
//
// Each bench keeps printing its human table and *additionally* emits a JSON
// report: one named row per configuration, with numeric fields in base units
// (durations in virtual-time nanoseconds, counts as integers, ratios as
// doubles). The report is written to `BENCH_<name>.json` in the working
// directory when the bench exits.
//
// Environment:
//   CIM_BENCH_JSON=0      disable JSON emission;
//   CIM_BENCH_JSON=<dir>  write `<dir>/BENCH_<name>.json` instead of ./.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "obs/json.h"
#include "sim/time.h"

namespace cim::bench {

inline constexpr int kBenchSchemaVersion = 2;

// Build identification baked into every report so a JSON file is
// self-describing: regressions across differently-built binaries (Debug vs
// Release, different compilers) are build artifacts, not code changes, and
// compare_benches.py warns when these fields differ.
inline const char* compiler_id() {
#if defined(__clang__)
  return "clang";
#elif defined(__GNUC__)
  return "gcc";
#else
  return "unknown";
#endif
}

inline std::string compiler_version() {
#if defined(__clang_major__)
  return std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__) + "." +
         std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return std::to_string(__GNUC__) + "." + std::to_string(__GNUC_MINOR__) +
         "." + std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

inline const char* build_type() {
#if defined(CIM_BUILD_TYPE)
  return CIM_BUILD_TYPE;
#else
  return "unknown";
#endif
}

inline const char* git_sha() {
#if defined(CIM_GIT_SHA)
  return CIM_GIT_SHA;
#else
  return "unknown";
#endif
}

inline const char* sanitize_flags() {
#if defined(CIM_SANITIZE)
  return "asan,ubsan";
#else
  return "none";
#endif
}

class JsonReport {
 public:
  /// `name` becomes the file stem: BENCH_<name>.json.
  explicit JsonReport(std::string name) : name_(std::move(name)) {}
  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;
  ~JsonReport() { write(); }

  class Row {
   public:
    Row& field(std::string key, std::string value) {
      fields_.emplace_back(std::move(key), Val{std::move(value)});
      return *this;
    }
    Row& field(std::string key, const char* value) {
      return field(std::move(key), std::string(value));
    }
    Row& field(std::string key, double value) {
      fields_.emplace_back(std::move(key), Val{value});
      return *this;
    }
    Row& field(std::string key, std::int64_t value) {
      fields_.emplace_back(std::move(key), Val{value});
      return *this;
    }
    Row& field(std::string key, std::uint64_t value) {
      return field(std::move(key), static_cast<std::int64_t>(value));
    }
    Row& field(std::string key, int value) {
      return field(std::move(key), static_cast<std::int64_t>(value));
    }
    Row& field(std::string key, bool value) {
      fields_.emplace_back(std::move(key), Val{value});
      return *this;
    }
    /// Durations are reported as `<key>_ns` integer nanoseconds.
    Row& field_ns(std::string key, sim::Duration d) {
      return field(std::move(key) + "_ns", d.ns);
    }

   private:
    friend class JsonReport;
    using Val = std::variant<std::string, double, std::int64_t, bool>;
    std::vector<std::pair<std::string, Val>> fields_;
  };

  /// Add a named row; populate it with chained .field() calls.
  Row& row(std::string name) {
    rows_.emplace_back();
    rows_.back().field("row", std::move(name));
    return rows_.back();
  }

  /// Record a bench-level parameter in the `meta` object (e.g. the workload
  /// seed). Compiler, build type and git SHA are stamped automatically.
  void meta(std::string key, std::string value) {
    meta_.emplace_back(std::move(key), std::move(value));
  }
  void meta(std::string key, std::uint64_t value) {
    meta(std::move(key), std::to_string(value));
  }

  /// Flush the report (also runs at destruction; idempotent).
  void write() {
    if (written_) return;
    written_ = true;
    const char* env = std::getenv("CIM_BENCH_JSON");
    if (env != nullptr && std::string_view(env) == "0") return;
    std::string path = "BENCH_" + name_ + ".json";
    if (env != nullptr && *env != '\0') path = std::string(env) + "/" + path;
    std::ofstream os(path);
    if (!os) {
      std::cerr << "bench: cannot write " << path << "\n";
      return;
    }
    obs::JsonWriter w(os);
    w.begin_object();
    w.kv("schema", "cim.bench.v1");
    w.kv("v", kBenchSchemaVersion);
    w.kv("bench", name_);
    w.key("meta");
    w.begin_object();
    w.kv("compiler", compiler_id());
    w.kv("compiler_version", compiler_version());
    w.kv("build_type", build_type());
    w.kv("git_sha", git_sha());
    w.kv("sanitize", sanitize_flags());
    for (const auto& [key, value] : meta_) w.kv(key, value);
    w.end_object();
    w.key("rows");
    w.begin_array();
    for (const Row& row : rows_) {
      w.begin_object();
      for (const auto& [key, val] : row.fields_) {
        w.key(key);
        std::visit([&w](const auto& v) { w.value(v); }, val);
      }
      w.end_object();
    }
    w.end_array();
    w.end_object();
    os << "\n";
    std::cout << "\n[json report: " << path << "]\n";
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<Row> rows_;
  bool written_ = false;
};

}  // namespace cim::bench

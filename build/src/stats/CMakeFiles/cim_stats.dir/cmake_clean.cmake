file(REMOVE_RECURSE
  "CMakeFiles/cim_stats.dir/response.cpp.o"
  "CMakeFiles/cim_stats.dir/response.cpp.o.d"
  "CMakeFiles/cim_stats.dir/summary.cpp.o"
  "CMakeFiles/cim_stats.dir/summary.cpp.o.d"
  "CMakeFiles/cim_stats.dir/table.cpp.o"
  "CMakeFiles/cim_stats.dir/table.cpp.o.d"
  "CMakeFiles/cim_stats.dir/visibility.cpp.o"
  "CMakeFiles/cim_stats.dir/visibility.cpp.o.d"
  "libcim_stats.a"
  "libcim_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cim_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

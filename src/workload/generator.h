// Workload generators.
//
// All generators draw written values from a UniqueValueSource so that the
// paper's assumption — a value is written at most once per variable (in
// fact, at most once globally here) — holds by construction, which makes
// histories directly checkable.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "interconnect/federation.h"
#include "workload/script.h"

namespace cim::wl {

/// Monotone source of globally unique non-initial values. `base` offsets the
/// sequence (values start at base+1) so independent generators — e.g. the
/// two OS processes of a tools/cim_bridge run — can draw from disjoint
/// ranges and keep the at-most-once assumption across the merged history.
class UniqueValueSource {
 public:
  explicit UniqueValueSource(Value base = 0) : last_(base) {}

  Value next() { return ++last_; }

 private:
  Value last_;  // 0 is kInitValue, never produced
};

struct UniformConfig {
  std::size_t ops_per_process = 50;
  double write_fraction = 0.5;
  std::uint32_t num_vars = 8;
  /// Probability that a write targets var 0 (hot spot); remaining writes
  /// spread uniformly. 0 disables the hot spot.
  double hotspot = 0.0;
  sim::Duration think_min = sim::milliseconds(0);
  sim::Duration think_max = sim::milliseconds(4);
  std::uint64_t seed = 7;
  /// Offset for the UniqueValueSource (see above); keep 0 unless several
  /// independently seeded workloads feed one merged history.
  Value value_base = 0;
};

/// Generate one random script.
std::vector<Step> uniform_script(const UniformConfig& config, Rng& rng,
                                 UniqueValueSource& values);

/// Install a ScriptRunner with a fresh uniform script on every application
/// process of every system of the federation (IS-process slots excluded) and
/// start them. The returned runners must outlive the simulation run.
std::vector<std::unique_ptr<ScriptRunner>> install_uniform(
    isc::Federation& federation, const UniformConfig& config);

/// A relay: polls `watch` until it reads `trigger`, then writes
/// `out = out_value`. Chained across systems, relays build the long
/// cross-system causal sequences of the Section 4 lemmas.
class RelayDriver {
 public:
  RelayDriver(sim::Simulator& simulator, mcs::AppProcess& app, VarId watch,
              Value trigger, VarId out, Value out_value,
              sim::Duration poll_interval);

  void start();
  bool fired() const { return fired_; }

 private:
  void poll();

  sim::Simulator& sim_;
  mcs::AppProcess& app_;
  VarId watch_;
  Value trigger_;
  VarId out_;
  Value out_value_;
  sim::Duration poll_interval_;
  bool fired_ = false;
};

}  // namespace cim::wl

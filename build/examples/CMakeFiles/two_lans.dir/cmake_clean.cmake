file(REMOVE_RECURSE
  "CMakeFiles/two_lans.dir/two_lans.cpp.o"
  "CMakeFiles/two_lans.dir/two_lans.cpp.o.d"
  "two_lans"
  "two_lans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_lans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Unit tests: duration order statistics.
#include <gtest/gtest.h>

#include "stats/summary.h"

namespace cim::stats {
namespace {

TEST(Summary, EmptyInput) {
  auto s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.max, sim::Duration{});
}

TEST(Summary, SingleSample) {
  auto s = summarize({sim::milliseconds(5)});
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.min, sim::milliseconds(5));
  EXPECT_EQ(s.p50, sim::milliseconds(5));
  EXPECT_EQ(s.p99, sim::milliseconds(5));
  EXPECT_EQ(s.max, sim::milliseconds(5));
  EXPECT_DOUBLE_EQ(s.mean_ns, 5e6);
}

TEST(Summary, PercentilesOfUniformRange) {
  std::vector<sim::Duration> samples;
  for (int i = 100; i >= 1; --i) samples.push_back(sim::Duration{i});
  auto s = summarize(std::move(samples));
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.min, sim::Duration{1});
  EXPECT_EQ(s.p50, sim::Duration{50});
  EXPECT_EQ(s.p90, sim::Duration{90});
  EXPECT_EQ(s.p99, sim::Duration{99});
  EXPECT_EQ(s.max, sim::Duration{100});
  EXPECT_DOUBLE_EQ(s.mean_ns, 50.5);
}

TEST(Summary, NearestRankRoundsUp) {
  // 3 samples: p50 is the 2nd (ceil(0.5*3)=2), p90 the 3rd.
  auto s = summarize({sim::Duration{10}, sim::Duration{20}, sim::Duration{30}});
  EXPECT_EQ(s.p50, sim::Duration{20});
  EXPECT_EQ(s.p90, sim::Duration{30});
}

TEST(Summary, UnsortedInputHandled) {
  auto s = summarize({sim::Duration{30}, sim::Duration{10}, sim::Duration{20}});
  EXPECT_EQ(s.min, sim::Duration{10});
  EXPECT_EQ(s.max, sim::Duration{30});
}

}  // namespace
}  // namespace cim::stats

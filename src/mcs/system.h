// A DSM system S^q: application processes, their MCS-processes, and the
// intra-system network (a full mesh of reliable FIFO channels).
//
// Construction is two-phase. First the system is declared with its
// application processes; then the interconnect layer may add IS-process
// slots ("An IS-process is a special kind of application process. It is
// attached to an exclusive MCS-process"); finally finalize() instantiates
// the protocol processes and the mesh, at which point the process count is
// fixed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "checker/history.h"
#include "common/ids.h"
#include "mcs/app_process.h"
#include "mcs/mcs_process.h"
#include "net/delay.h"
#include "net/fabric.h"
#include "sim/simulator.h"

namespace cim::mcs {

struct SystemConfig {
  SystemId id;
  std::uint16_t num_app_processes = 2;
  ProtocolFactory protocol;
  /// Delay model factory for intra-system channels (one fresh model per
  /// channel). Defaults to FixedDelay(1ms).
  std::function<net::DelayModelPtr()> intra_delay;
  std::uint64_t seed = 1;
};

class System {
 public:
  System(sim::Simulator& simulator, net::Fabric& fabric,
         chk::Recorder& recorder, SystemConfig config,
         MemoryObserver* observer = nullptr,
         obs::Observability* obs = nullptr);
  System(const System&) = delete;
  System& operator=(const System&) = delete;

  SystemId id() const { return config_.id; }

  /// Reserve a local slot for an IS-process with its exclusive MCS-process.
  /// Must be called before finalize(). Returns the new process id.
  ProcId add_isp_slot();

  /// Instantiate MCS-processes, the channel mesh, and application processes.
  void finalize();
  bool finalized() const { return finalized_; }

  std::uint16_t num_processes() const;       // app + ISP slots
  std::uint16_t num_app_processes() const { return config_.num_app_processes; }
  bool is_isp_slot(std::uint16_t local_index) const;

  AppProcess& app(std::uint16_t local_index);
  McsProcess& mcs(std::uint16_t local_index);

 private:
  sim::Simulator& sim_;
  net::Fabric& fabric_;
  chk::Recorder& recorder_;
  SystemConfig config_;
  MemoryObserver* observer_;
  obs::Observability* obs_;

  std::uint16_t isp_slots_ = 0;
  bool finalized_ = false;
  std::vector<std::unique_ptr<McsProcess>> mcs_;
  std::vector<std::unique_ptr<AppProcess>> apps_;
};

}  // namespace cim::mcs

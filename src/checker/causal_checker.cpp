#include "checker/causal_checker.h"

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "checker/graph.h"

namespace cim::chk {

const char* to_string(BadPattern p) {
  switch (p) {
    case BadPattern::kNone: return "none";
    case BadPattern::kCyclicCO: return "CyclicCO";
    case BadPattern::kThinAirRead: return "ThinAirRead";
    case BadPattern::kWriteCOInitRead: return "WriteCOInitRead";
    case BadPattern::kWriteCORead: return "WriteCORead";
    case BadPattern::kCyclicHB: return "CyclicHB";
    case BadPattern::kWriteHBInitRead: return "WriteHBInitRead";
    case BadPattern::kCyclicCF: return "CyclicCF";
    case BadPattern::kResidualLimit: return "ResidualLimit";
  }
  return "?";
}

namespace {

// rf source markers (per-read): a concrete write index, or one of these.
constexpr std::uint32_t kInitSrc = 0xFFFFFFFFu;   // reads the initial value
constexpr std::uint32_t kAmbiguous = 0xFFFFFFFEu; // >1 admissible writer

std::string describe(const History& h, std::size_t i) {
  return h.op(i).to_string();
}

/// Writes per (variable, process), ascending program order — CSR over the
/// flat (var_dense * P + proc_dense) key. Gives the pattern scans their two
/// O(log) primitives: the first write of a variable on a process, and the
/// latest one visible inside a vector-clock frontier.
struct VarProcWrites {
  std::vector<std::uint32_t> off;  // size V*P + 1
  std::vector<std::uint32_t> idx;  // write op indices
  std::size_t P = 0;

  void build(const History& h, const SparseGraph& g) {
    P = h.num_processes();
    const std::size_t buckets = h.num_vars() * P;
    off.assign(buckets + 1, 0);
    std::size_t writes = 0;
    for (std::size_t i = 0; i < h.size(); ++i) {
      if (!h.is_write(i)) continue;
      ++off[h.var_dense(i) * P + g.proc_of(i) + 1];
      ++writes;
    }
    for (std::size_t b = 1; b <= buckets; ++b) off[b] += off[b - 1];
    idx.resize(writes);
    std::vector<std::uint32_t> cur(off.begin(), off.end() - 1);
    for (std::size_t i = 0; i < h.size(); ++i) {
      if (!h.is_write(i)) continue;
      idx[cur[h.var_dense(i) * P + g.proc_of(i)]++] =
          static_cast<std::uint32_t>(i);
    }
  }

  std::pair<const std::uint32_t*, const std::uint32_t*> span(
      std::uint32_t var, std::uint32_t proc) const {
    const std::size_t b = static_cast<std::size_t>(var) * P + proc;
    return {idx.data() + off[b], idx.data() + off[b + 1]};
  }

  /// Latest write on (var, proc) whose program-order position is inside the
  /// clock frontier `upto` (1-based, inclusive); kInitSrc when none.
  std::uint32_t latest_within(const SparseGraph& g, std::uint32_t var,
                              std::uint32_t proc, std::uint32_t upto) const {
    auto [b, e] = span(var, proc);
    if (b == e || g.seq1(*b) > upto) return kInitSrc;
    // Binary search: last write with seq1 <= upto.
    std::size_t lo = 0, hi = static_cast<std::size_t>(e - b) - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi + 1) / 2;
      if (g.seq1(b[mid]) <= upto) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    return b[lo];
  }
};

struct AmbRead {
  std::uint32_t read = 0;
  // Candidate sources in preference order; kInitSrc encodes the ⊥ choice
  // (admissible only for reads of the initial value).
  std::vector<std::uint32_t> cands;
};

/// Shared state of one check: the graph, the write index, and the reads-from
/// resolution (unambiguous sources plus the residual ambiguous reads).
struct Engine {
  const History& h;
  SparseGraph g;
  VarProcWrites wvp;
  std::vector<std::uint32_t> rf;   // per op: write idx / kInitSrc / kAmbiguous
  std::vector<AmbRead> amb;
  std::vector<Edge> base_edges;    // rf edges of unambiguously resolved reads
  CheckResult fail;                // resolution failure (definite)
  CheckStats stats;

  // Scratch reused across evaluate() passes.
  std::vector<std::uint32_t> order;
  std::vector<std::uint32_t> clk;

  explicit Engine(const History& history) : h(history), g(history) {
    wvp.build(h, g);
    resolve();
    stats.ops = h.size();
    stats.ambiguous_reads = amb.size();
  }

  void resolve() {
    const std::size_t n = h.size();
    rf.assign(n, kInitSrc);
    // Writers of each (var, value) pair, ascending op index. Under the
    // paper's distinct-value assumption every bucket has one entry; repeated
    // values make buckets — and the reads over them — ambiguous.
    struct Key {
      std::uint32_t var;
      Value value;
      bool operator==(const Key&) const = default;
    };
    struct KeyHash {
      std::size_t operator()(const Key& k) const {
        std::uint64_t x = (static_cast<std::uint64_t>(k.var) + 1) *
                          0x9E3779B97F4A7C15ULL;
        x ^= static_cast<std::uint64_t>(k.value) * 0xBF58476D1CE4E5B9ULL;
        return static_cast<std::size_t>(x ^ (x >> 29));
      }
    };
    std::unordered_map<Key, std::vector<std::uint32_t>, KeyHash> writers;
    for (std::size_t i = 0; i < n; ++i) {
      if (h.is_write(i)) {
        writers[Key{h.var_dense(i), h.value(i)}].push_back(
            static_cast<std::uint32_t>(i));
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (h.is_write(i)) continue;
      const Value v = h.value(i);
      auto it = writers.find(Key{h.var_dense(i), v});
      const bool is_init = v == kInitValue;
      if (it == writers.end() || it->second.empty()) {
        if (!is_init) {
          fail = {BadPattern::kThinAirRead,
                  "read of a never-written value: " + describe(h, i)};
          return;
        }
        rf[i] = kInitSrc;  // unambiguous ⊥
        continue;
      }
      if (it->second.size() == 1 && !is_init) {
        rf[i] = it->second[0];
        base_edges.push_back(
            {it->second[0], static_cast<std::uint32_t>(i)});
        continue;
      }
      // Repeated value — or an initial-value read while writes of the
      // initial value exist (⊥ stays admissible alongside them).
      rf[i] = kAmbiguous;
      AmbRead a;
      a.read = static_cast<std::uint32_t>(i);
      a.cands = it->second;
      if (is_init) a.cands.push_back(kInitSrc);
      amb.push_back(std::move(a));
    }
  }

  /// Full bad-pattern pass over po ∪ rf_edges with per-read sources `src`
  /// (entries equal to kAmbiguous are skipped — phase A runs with the
  /// ambiguous reads unconstrained, which only under-approximates co, so any
  /// violation it finds is definite under every assignment).
  CheckResult evaluate(const std::vector<std::uint32_t>& src,
                       const std::vector<Edge>& rf_edges, Level level) {
    const std::size_t n = h.size();
    const std::size_t P = h.num_processes();
    g.set_edges(rf_edges);
    stats.explicit_edges = std::max(stats.explicit_edges, rf_edges.size());
    std::pair<std::uint32_t, std::uint32_t> wit;
    if (!g.topo_order(order, &wit)) {
      return {BadPattern::kCyclicCO,
              "causal-order cycle through " + describe(h, wit.first) +
                  " and " + describe(h, wit.second)};
    }
    g.clocks(order, clk);

    // WriteCOInitRead and WriteCORead over the clock frontiers.
    for (std::size_t r = 0; r < n; ++r) {
      if (h.is_write(r) || src[r] == kAmbiguous) continue;
      const std::uint32_t var = h.var_dense(r);
      const std::uint32_t* row = clk.data() + r * P;
      const std::uint32_t w1 = src[r];
      for (std::uint32_t p = 0; p < P; ++p) {
        if (w1 == kInitSrc) {
          auto [b, e] = wvp.span(var, p);
          if (b != e && g.seq1(*b) <= row[p]) {
            return {BadPattern::kWriteCOInitRead,
                    describe(h, r) + " returns the initial value but " +
                        describe(h, *b) + " is causally before it"};
          }
        } else {
          const std::uint32_t w2 = wvp.latest_within(g, var, p, row[p]);
          if (w2 != kInitSrc && w2 != w1 && g.reaches(clk, w1, w2)) {
            return {BadPattern::kWriteCORead,
                    describe(h, r) + " reads " + describe(h, w1) +
                        " although " + describe(h, w2) +
                        " causally overwrote it"};
          }
        }
      }
    }
    if (level == Level::kCC) return {};

    if (level == Level::kCCv) {
      // Causal convergence: the conflict relation cf (w1 -> w2 when some
      // read of w2 has w1 on the same variable causally before it) together
      // with co must be acyclic. Only the latest co-visible write per
      // process matters: earlier ones reach it by program order.
      std::vector<Edge> with_cf = rf_edges;
      for (std::size_t r = 0; r < n; ++r) {
        if (h.is_write(r) || src[r] == kAmbiguous || src[r] == kInitSrc) {
          continue;
        }
        const std::uint32_t var = h.var_dense(r);
        const std::uint32_t* row = clk.data() + r * P;
        for (std::uint32_t p = 0; p < P; ++p) {
          const std::uint32_t w1 = wvp.latest_within(g, var, p, row[p]);
          if (w1 != kInitSrc && w1 != src[r]) with_cf.push_back({w1, src[r]});
        }
      }
      g.set_edges(with_cf);
      stats.explicit_edges = std::max(stats.explicit_edges, with_cf.size());
      if (!g.topo_order(order, &wit)) {
        return {BadPattern::kCyclicCF,
                "no single arbitration of concurrent writes: cycle through " +
                    describe(h, wit.first) + " and " +
                    describe(h, wit.second)};
      }
      return {};
    }

    // kCM: per-process happens-before fixpoint. The graph of HB_i is the
    // full known graph (operations outside the scope writes ∪ reads_i stay
    // as reachability conduits, which equals the old restrict-after-closure)
    // plus the derived edges of process i only.
    //
    // The derivation scan reads only seq1 and the clock matrix — never the
    // graph's edge lists — so the first round of every process reuses the
    // rf-graph clocks computed above instead of rebuilding them: a process
    // whose scan derives nothing costs no extra topo/clock pass at all.
    const std::vector<std::uint32_t> rf_clk = clk;
    std::vector<Edge> derived;
    std::vector<Edge> all;
    for (std::size_t pi = 0; pi < P; ++pi) {
      const History::Span sp = h.process_span(pi);
      bool has_reads = false;
      for (std::size_t r = sp.begin; r < sp.end && !has_reads; ++r) {
        has_reads = !h.is_write(r);
      }
      if (!has_reads) continue;  // HB_i adds nothing over co, already clean

      derived.clear();
      const std::vector<std::uint32_t>* cur = &rf_clk;
      while (true) {
        // Derivation rule: r ∈ reads_i(x) reads from w2, w1 writes x with
        // (w1, r) ∈ HB_i ⇒ (w1, w2) ∈ HB_i. The latest HB-visible write
        // per process subsumes the earlier ones (they reach it by po).
        bool changed = false;
        for (std::size_t r = sp.begin; r < sp.end; ++r) {
          if (h.is_write(r)) continue;
          const std::uint32_t w2 = src[r];
          if (w2 == kInitSrc || w2 == kAmbiguous) continue;
          const std::uint32_t var = h.var_dense(r);
          const std::uint32_t* row = cur->data() + r * P;
          for (std::uint32_t p = 0; p < P; ++p) {
            const std::uint32_t w1 = wvp.latest_within(g, var, p, row[p]);
            if (w1 == kInitSrc || w1 == w2) continue;
            if (!g.reaches(*cur, w1, w2)) {
              derived.push_back({w1, w2});
              changed = true;
            }
          }
        }
        if (!changed) break;
        all = rf_edges;
        all.insert(all.end(), derived.begin(), derived.end());
        g.set_edges(all);
        stats.explicit_edges = std::max(stats.explicit_edges, all.size());
        if (!g.topo_order(order, &wit)) {
          return {BadPattern::kCyclicHB,
                  "happens-before cycle for " +
                      cim::to_string(h.process(pi)) + " through " +
                      describe(h, wit.first) + " and " +
                      describe(h, wit.second)};
        }
        g.clocks(order, clk);
        cur = &clk;
      }

      // WriteHBInitRead and the HB flavor of WriteCORead, for this process.
      for (std::size_t r = sp.begin; r < sp.end; ++r) {
        if (h.is_write(r)) continue;
        const std::uint32_t w1 = src[r];
        if (w1 == kAmbiguous) continue;
        const std::uint32_t var = h.var_dense(r);
        const std::uint32_t* row = cur->data() + r * P;
        for (std::uint32_t p = 0; p < P; ++p) {
          if (w1 == kInitSrc) {
            auto [b, e] = wvp.span(var, p);
            if (b != e && g.seq1(*b) <= row[p]) {
              return {BadPattern::kWriteHBInitRead,
                      describe(h, r) + " returns the initial value but, for " +
                          cim::to_string(h.process(pi)) + ", " +
                          describe(h, *b) + " happens before it"};
            }
          } else {
            const std::uint32_t w2 = wvp.latest_within(g, var, p, row[p]);
            if (w2 != kInitSrc && w2 != w1 && g.reaches(*cur, w1, w2)) {
              return {BadPattern::kWriteCORead,
                      describe(h, r) + " reads " + describe(h, w1) +
                          " although " + describe(h, w2) +
                          " overwrote it in happens-before of " +
                          cim::to_string(h.process(pi))};
            }
          }
        }
      }
    }
    return {};
  }
};

}  // namespace

std::optional<Relation> CausalChecker::causal_order(
    const History& history) const {
  Engine e(history);
  if (!e.fail.ok() || !e.amb.empty()) return std::nullopt;
  e.g.set_edges(e.base_edges);
  if (!e.g.topo_order(e.order, nullptr)) return std::nullopt;
  e.g.clocks(e.order, e.clk);
  const std::size_t n = history.size();
  Relation co(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (e.g.reaches(e.clk, static_cast<std::uint32_t>(i),
                      static_cast<std::uint32_t>(j))) {
        co.set(i, j);
      }
    }
  }
  return co;
}

CheckResult CausalChecker::check(const History& history, Level level) const {
  Engine e(history);
  if (!e.fail.ok()) {
    e.fail.stats = e.stats;
    return e.fail;
  }

  // Phase A: the known-edge pass. Ambiguous reads contribute no edges and
  // are skipped by the scans, so co here under-approximates co under every
  // admissible assignment — failures are definite, and when the history has
  // no ambiguity (the paper's distinct-value regime) this is the whole
  // check.
  CheckResult res = e.evaluate(e.rf, e.base_edges, level);
  if (!res.ok() || e.amb.empty()) {
    res.stats = e.stats;
    return res;
  }

  // Phase B: residual constraints. Recompute the known-graph clocks, prune
  // each candidate set, and backtrack over what is left.
  e.g.set_edges(e.base_edges);
  e.g.topo_order(e.order, nullptr);
  e.g.clocks(e.order, e.clk);
  const std::vector<std::uint32_t> base_clk = e.clk;
  for (AmbRead& a : e.amb) {
    std::vector<std::uint32_t> visible, rest;
    bool allow_init = false;
    for (const std::uint32_t w : a.cands) {
      if (w == kInitSrc) {
        allow_init = true;
        continue;
      }
      // A writer causally after the read would force a cycle under every
      // extension of the known graph: prune.
      if (e.g.reaches(base_clk, a.read, w)) continue;
      (e.g.reaches(base_clk, w, a.read) ? visible : rest).push_back(w);
    }
    // Prefer the latest already-visible writer (the assignment a real store
    // would have produced), then ⊥ for initial-value reads, then the
    // concurrent writers.
    std::sort(visible.begin(), visible.end(),
              [&](std::uint32_t x, std::uint32_t y) {
                return e.g.seq1(x) > e.g.seq1(y);
              });
    a.cands = std::move(visible);
    if (allow_init) a.cands.push_back(kInitSrc);
    a.cands.insert(a.cands.end(), rest.begin(), rest.end());
    if (a.cands.empty()) {
      CheckResult r{BadPattern::kCyclicCO,
                    describe(history, a.read) +
                        ": every admissible writer of its value is causally "
                        "after the read"};
      r.stats = e.stats;
      return r;
    }
  }

  // Depth-first enumeration of complete assignments, budgeted.
  std::vector<std::uint32_t> src = e.rf;
  std::vector<Edge> edges = e.base_edges;
  CheckResult first_fail;
  bool exhausted = false;

  // Iterative odometer over candidate positions.
  std::vector<std::size_t> pos(e.amb.size(), 0);
  while (true) {
    if (e.stats.assignments_tried >= options_.residual_budget) {
      exhausted = true;
      break;
    }
    edges.resize(e.base_edges.size());
    for (std::size_t k = 0; k < e.amb.size(); ++k) {
      const std::uint32_t w = e.amb[k].cands[pos[k]];
      src[e.amb[k].read] = w;
      if (w != kInitSrc) edges.push_back({w, e.amb[k].read});
    }
    ++e.stats.assignments_tried;
    CheckResult attempt = e.evaluate(src, edges, level);
    if (attempt.ok()) {
      attempt.stats = e.stats;
      return attempt;
    }
    if (first_fail.ok()) first_fail = std::move(attempt);
    // Advance the odometer.
    std::size_t k = 0;
    for (; k < pos.size(); ++k) {
      if (++pos[k] < e.amb[k].cands.size()) break;
      pos[k] = 0;
    }
    if (k == pos.size()) break;  // every assignment evaluated
  }

  if (exhausted) {
    CheckResult r{BadPattern::kResidualLimit,
                  "residual constraint search exceeded " +
                      std::to_string(options_.residual_budget) +
                      " reads-from assignments over " +
                      std::to_string(e.amb.size()) +
                      " ambiguous reads; verdict unknown"};
    r.stats = e.stats;
    return r;
  }
  first_fail.detail +=
      " [no admissible reads-from assignment avoids a bad pattern; " +
      std::to_string(e.stats.assignments_tried) + " tried]";
  first_fail.stats = e.stats;
  return first_fail;
}

}  // namespace cim::chk

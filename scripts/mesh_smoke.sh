#!/usr/bin/env bash
# n cim_bridge processes — one causal memory system each — joined into a
# tree mesh over localhost TCP through the epoll transport, then the merged
# history is checked for causal consistency: the paper's Corollary 1 (any
# tree of causal systems is causal) observed over real sockets. See
# docs/BRIDGE.md. Wired into CI as the `mesh-smoke` step.
#
# usage: scripts/mesh_smoke.sh [BUILD_DIR] [BASE_PORT] [SHAPE] [N] [OUT_DIR]
#
# OUT_DIR keeps the per-node histories, metrics, and the checker output for
# artifact upload on failure; default is a temp dir removed on success. CI
# passes an explicit OUT_DIR and uploads it as an artifact when this fails.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$root/build}"
base_port="${2:-9517}"
shape="${3:-btree}"
n="${4:-4}"
out="${5:-}"

bridge="$build/tools/cim_bridge"
checker="$build/examples/trace_checker"
cim_trace="$build/tools/cim_trace"
cim_top="$build/tools/cim_top"
for bin in "$bridge" "$checker" "$cim_trace" "$cim_top"; do
  if [ ! -x "$bin" ]; then
    echo "mesh_smoke: missing $bin (build the project first)" >&2
    exit 1
  fi
done

keep_out=1
if [ -z "$out" ]; then
  out="$(mktemp -d)"
  keep_out=0
  trap 'rm -rf "$out"' EXIT
fi
mkdir -p "$out"

# Launch the whole mesh at once; the join protocol absorbs start-order
# races (dialers retry, acceptors wait under a deadline). Every node traces
# and runs the stats plane; node 0 folds the federation metrics snapshot
# that cim_top and cim_trace merge consume below (docs/BRIDGE.md "Stats
# aggregation").
i=0
pids=""
while [ "$i" -lt "$n" ]; do
  fed_flags=""
  if [ "$i" -eq 0 ]; then
    fed_flags="--fed-metrics $out/fed.json"
  fi
  # shellcheck disable=SC2086
  "$bridge" --node "$i" --shape "$shape" --n "$n" --base-port "$base_port" \
    --procs 4 --ops 25 \
    --history "$out/n$i.hist" --metrics "$out/n$i.json" \
    --trace "$out/n$i.jsonl" --stats-interval 50 $fed_flags \
    > "$out/n$i.log" 2>&1 &
  pids="$pids $!"
  i=$((i + 1))
done

status=0
for pid in $pids; do
  wait "$pid" || status=$?
done
if [ "$status" -ne 0 ]; then
  echo "mesh_smoke: a mesh process failed (status $status); node logs:" >&2
  cat "$out"/n*.log >&2
  exit 1
fi

# The merged computation of all n OS processes must be causally consistent
# (node i's values live in [i*1'000'000, ...), so concatenation is a
# well-formed single history).
i=0
: > "$out/merged.trace"
while [ "$i" -lt "$n" ]; do
  cat "$out/n$i.hist" >> "$out/merged.trace"
  i=$((i + 1))
done
"$checker" "$out/merged.trace" --cm | tee "$out/checker.out"

# Every online monitor must have stayed silent, pairs must actually have
# crossed the wire, and the epoll transport must have been exercised
# (metrics schema v3, docs/OBSERVABILITY.md).
i=0
while [ "$i" -lt "$n" ]; do
  python3 - "$out/n$i.json" "$i" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    snapshot = json.load(f)
metrics = {e["name"]: e for e in snapshot["metrics"]}
def val(name):
    return metrics.get(name, {}).get("value", 0)
node = sys.argv[2]
if val("checker.violations") != 0:
    sys.exit(f"mesh_smoke: node {node}: "
             f"checker.violations = {val('checker.violations')}")
if val("net.wire.bytes_out") == 0:
    sys.exit(f"mesh_smoke: node {node}: no wire bytes sent?")
if val("net.mesh.syscalls_writev") == 0:
    sys.exit(f"mesh_smoke: node {node}: epoll transport not exercised?")
EOF
  i=$((i + 1))
done

# Observability plane: node 0's federation snapshot must cover every node
# (schema v5 `fed.node.<i>.*`, docs/OBSERVABILITY.md "Federation snapshot").
python3 - "$out/fed.json" "$n" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    snapshot = json.load(f)
n = int(sys.argv[2])
meta = snapshot.get("meta", {})
if meta.get("schema_version") != 5:
    sys.exit(f"mesh_smoke: fed.json schema_version = {meta.get('schema_version')}, want 5")
if meta.get("kind") != "federation":
    sys.exit(f"mesh_smoke: fed.json kind = {meta.get('kind')}, want federation")
metrics = {e["name"]: e.get("value", 0) for e in snapshot["metrics"]}
if metrics.get("fed.nodes") != n:
    sys.exit(f"mesh_smoke: fed.nodes = {metrics.get('fed.nodes')}, want {n}")
for i in range(n):
    if f"fed.node.{i}.t_ns" not in metrics:
        sys.exit(f"mesh_smoke: fed.json has no snapshot from node {i}")
print(f"fed snapshot ok: covers nodes 0..{n-1}")
EOF

# One rendered frame of the live dashboard over the final snapshot.
"$cim_top" --file "$out/fed.json" --once | tee "$out/cim_top.out"
grep -q "node" "$out/cim_top.out" || {
  echo "mesh_smoke: cim_top --once rendered no node rows" >&2
  exit 1
}

# Merge the per-node traces onto node 0's clock using the heartbeat-derived
# offsets, then re-export through the Perfetto path and require valid JSON
# (docs/TRACE_TOOLS.md "merge").
# shellcheck disable=SC2046
"$cim_trace" merge --offsets "$out/fed.json" \
  $(i=0; while [ "$i" -lt "$n" ]; do printf '%s ' "$out/n$i.jsonl"; i=$((i + 1)); done) \
  -o "$out/merged.jsonl" 2> "$out/merge.log"
cat "$out/merge.log" >&2
"$cim_trace" summarize "$out/merged.jsonl" > "$out/merged.summary"
# shellcheck disable=SC2046
"$cim_trace" merge --offsets "$out/fed.json" --perfetto \
  $(i=0; while [ "$i" -lt "$n" ]; do printf '%s ' "$out/n$i.jsonl"; i=$((i + 1)); done) \
  -o "$out/merged.perfetto.json" 2> /dev/null
python3 - "$out/merged.perfetto.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert events, "empty traceEvents in merged perfetto export"
assert all("ph" in e and "ts" in e and "pid" in e for e in events)
pids = {e["pid"] for e in events if e.get("ph") != "M"}
assert len(pids) > 1, f"merged trace covers only pids {pids} — merge lost nodes?"
print(f"merged perfetto export ok: {len(events)} events, {len(pids)} pids")
EOF

echo "mesh_smoke: OK ($shape($n) merged history causal, zero monitor violations," \
  "fed snapshot + merged trace validated)"

#include "mesh/mesh_node.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <future>
#include <thread>
#include <utility>

#include "common/check.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "protocols/anbkh.h"
#include "runtime/runtime.h"

namespace cim::mesh {

namespace {

using Clock = std::chrono::steady_clock;
using net::wire::ControlMsg;

// kJoinReject reason codes (ControlMsg.b; docs/BRIDGE.md "Join").
enum RejectReason : std::uint64_t {
  kRejectWireVersion = 1,
  kRejectTopologyHash = 2,
  kRejectNotANeighbor = 3,
  kRejectDuplicateJoin = 4,
};

const char* reject_reason_name(std::uint64_t reason) {
  switch (reason) {
    case kRejectWireVersion: return "wire version mismatch";
    case kRejectTopologyHash: return "topology hash mismatch";
    case kRejectNotANeighbor: return "not a neighbor";
    case kRejectDuplicateJoin: return "duplicate join";
    default: return "unknown reason";
  }
}

bool send_ctrl_fd(int fd, std::uint8_t code, std::uint64_t a,
                  std::uint64_t b) {
  ControlMsg msg;
  msg.code = code;
  msg.a = a;
  msg.b = b;
  std::vector<std::uint8_t> buf;
  net::wire::encode(msg, buf);
  const std::uint8_t* p = buf.data();
  std::size_t left = buf.size();
  while (left > 0) {
    const ssize_t n = ::send(fd, p, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

// Read one bare ControlMsg frame from a blocking fd, bounded by SO_RCVTIMEO.
// Returns nullptr on success, a static error description otherwise.
const char* recv_ctrl_fd(int fd, int timeout_ms, ControlMsg& out) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  std::uint8_t frame[4 + 64];
  auto read_exact = [fd](std::uint8_t* dst, std::size_t len) -> const char* {
    while (len > 0) {
      const ssize_t n = ::read(fd, dst, len);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
          return "handshake timed out";
        return "handshake read failed";
      }
      if (n == 0) return "peer closed during handshake";
      dst += n;
      len -= static_cast<std::size_t>(n);
    }
    return nullptr;
  };
  if (const char* err = read_exact(frame, 4)) return err;
  std::uint32_t body_len = 0;
  for (int i = 0; i < 4; ++i)
    body_len |= static_cast<std::uint32_t>(frame[i]) << (8 * i);
  if (body_len > sizeof(frame) - 4)
    return "handshake frame is not a control message";
  if (const char* err = read_exact(frame + 4, body_len)) return err;

  net::wire::DecodeResult res = net::wire::decode(frame, 4 + body_len);
  if (!res.ok()) return res.error;
  auto* ctrl = dynamic_cast<ControlMsg*>(res.msg.get());
  if (ctrl == nullptr) return "handshake frame is not a control message";
  out = *ctrl;
  return nullptr;
}

}  // namespace

MeshNode::MeshNode(MeshConfig config) : cfg_(std::move(config)) {}

MeshNode::~MeshNode() {
  // Contract with the transports: the loop thread must be joined before any
  // registered handler dies (net/epoll_loop.h).
  loop_.stop();
  links_.clear();
  for (int fd : fds_)
    if (fd >= 0) ::close(fd);
}

bool MeshNode::handshake_dial(int fd, std::size_t peer) {
  const std::uint64_t hash = cfg_.topo.hash();
  if (!send_ctrl_fd(fd, ControlMsg::kHello, cfg_.node_id,
                    net::wire::kWireVersion) ||
      !send_ctrl_fd(fd, ControlMsg::kJoin, cfg_.node_id, hash)) {
    error_ = "node " + std::to_string(peer) + ": handshake write failed";
    return false;
  }
  ControlMsg hello, join;
  if (const char* err = recv_ctrl_fd(fd, cfg_.join_timeout_ms, hello)) {
    error_ = "node " + std::to_string(peer) + ": " + err;
    return false;
  }
  // A reject arrives alone — do not wait for a second frame the peer will
  // never send (it has already closed).
  if (hello.code == ControlMsg::kJoinReject) {
    error_ = "node " + std::to_string(hello.a) +
             " rejected the join: " + reject_reason_name(hello.b);
    return false;
  }
  if (const char* err = recv_ctrl_fd(fd, cfg_.join_timeout_ms, join)) {
    error_ = "node " + std::to_string(peer) + ": " + err;
    return false;
  }
  if (join.code == ControlMsg::kJoinReject) {
    error_ = "node " + std::to_string(join.a) +
             " rejected the join: " + reject_reason_name(join.b);
    return false;
  }
  if (hello.code != ControlMsg::kHello || join.code != ControlMsg::kJoin) {
    error_ = "node " + std::to_string(peer) + ": unexpected handshake frames";
    return false;
  }
  if (hello.b != net::wire::kWireVersion) {
    error_ = "node " + std::to_string(peer) + ": wire version mismatch (peer v" +
             std::to_string(hello.b) + ", local v" +
             std::to_string(unsigned{net::wire::kWireVersion}) + ")";
    return false;
  }
  if (hello.a != peer || join.a != peer) {
    error_ = "dialed node " + std::to_string(peer) + " but node " +
             std::to_string(hello.a) + " answered";
    return false;
  }
  if (join.b != hash) {
    send_ctrl_fd(fd, ControlMsg::kJoinReject, cfg_.node_id,
                 kRejectTopologyHash);
    error_ = "node " + std::to_string(peer) +
             ": topology hash mismatch (diverging spec files?)";
    return false;
  }
  return true;
}

std::size_t MeshNode::handshake_accept(int fd) {
  ControlMsg hello, join;
  // Shorter per-connection budget than the overall accept deadline: a peer
  // that connected but went silent must not starve the real neighbors.
  const int per_conn_ms = std::max(1, cfg_.join_timeout_ms / 4);
  const char* err = recv_ctrl_fd(fd, per_conn_ms, hello);
  if (err == nullptr) err = recv_ctrl_fd(fd, per_conn_ms, join);
  if (err != nullptr || hello.code != ControlMsg::kHello ||
      join.code != ControlMsg::kJoin) {
    ::close(fd);  // died mid-handshake or spoke garbage: drop, keep accepting
    return isc::Topology::npos;
  }
  std::uint64_t reject = 0;
  std::size_t slot = isc::Topology::npos;
  for (std::size_t e = 0; e < neighbors_.size(); ++e)
    if (neighbors_[e] == hello.a && neighbors_[e] > cfg_.node_id) slot = e;
  if (hello.b != net::wire::kWireVersion) {
    reject = kRejectWireVersion;
  } else if (slot == isc::Topology::npos) {
    reject = kRejectNotANeighbor;
  } else if (fds_[slot] >= 0) {
    reject = kRejectDuplicateJoin;
  } else if (join.b != cfg_.topo.hash()) {
    reject = kRejectTopologyHash;
  }
  if (reject != 0) {
    send_ctrl_fd(fd, ControlMsg::kJoinReject, cfg_.node_id, reject);
    ::close(fd);
    return isc::Topology::npos;
  }
  if (!send_ctrl_fd(fd, ControlMsg::kHello, cfg_.node_id,
                    net::wire::kWireVersion) ||
      !send_ctrl_fd(fd, ControlMsg::kJoin, cfg_.node_id, cfg_.topo.hash())) {
    ::close(fd);
    return isc::Topology::npos;
  }
  fds_[slot] = fd;
  return slot;
}

bool MeshNode::join() {
  isc::TopologyResult vr = isc::validate_topology(cfg_.topo);
  if (!vr.ok()) {
    error_ = vr.error;
    return false;
  }
  cfg_.topo = std::move(vr.topo);
  if (cfg_.node_id >= cfg_.topo.nodes) {
    error_ = "node id " + std::to_string(cfg_.node_id) +
             " outside the topology (" + std::to_string(cfg_.topo.nodes) +
             " nodes)";
    return false;
  }
  neighbors_ = cfg_.topo.neighbors(cfg_.node_id);
  fds_.assign(neighbors_.size(), -1);

  std::size_t higher = 0;
  for (std::size_t nb : neighbors_)
    if (nb > cfg_.node_id) ++higher;

  // Listen before dialing: higher-id neighbors may dial us at any moment
  // once their own lower dials are through. The backlog holds them all.
  int listener = -1;
  if (higher > 0)
    listener = net::tcp_listen(
        static_cast<std::uint16_t>(cfg_.base_port + cfg_.node_id),
        static_cast<int>(higher));

  // Dial every lower-id neighbor. Dial targets are strictly decreasing in
  // id, so the wait-for graph is acyclic: mesh formation cannot deadlock.
  for (std::size_t e = 0; e < neighbors_.size(); ++e) {
    if (neighbors_[e] >= cfg_.node_id) continue;
    int fd = -1;
    try {
      fd = net::tcp_connect(
          cfg_.host.c_str(),
          static_cast<std::uint16_t>(cfg_.base_port + neighbors_[e]),
          cfg_.dial_retries);
    } catch (const InvariantViolation& e2) {
      error_ = e2.what();
    }
    if (fd < 0 || !handshake_dial(fd, neighbors_[e])) {
      if (fd >= 0) ::close(fd);
      if (listener >= 0) ::close(listener);
      return false;
    }
    fds_[e] = fd;
  }

  // Accept every higher-id neighbor, whichever order they arrive in (the
  // join hello tells us who each connection is). Impostors and duplicates
  // are rejected and the wait continues; the deadline bounds a genuinely
  // missing peer.
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(cfg_.join_timeout_ms);
  std::size_t joined = 0;
  while (joined < higher) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    const int timeout = static_cast<int>(std::max<std::int64_t>(
        0, left.count()));
    const int fd = timeout > 0 ? net::tcp_accept(listener, timeout) : -1;
    if (fd < 0) {
      std::string missing;
      for (std::size_t e = 0; e < neighbors_.size(); ++e) {
        if (neighbors_[e] > cfg_.node_id && fds_[e] < 0)
          missing += (missing.empty() ? "" : ", ") +
                     std::to_string(neighbors_[e]);
      }
      error_ = "join timed out waiting for node(s) " + missing;
      ::close(listener);
      return false;
    }
    if (handshake_accept(fd) != isc::Topology::npos) ++joined;
  }
  if (listener >= 0) ::close(listener);
  return true;
}

MeshResult MeshNode::run() {
  MeshResult result;
  const std::size_t n_links = neighbors_.size();
  for (int fd : fds_) CIM_CHECK_MSG(fd >= 0 || n_links == 0, "run before join");

  isc::FederationConfig cfg;
  cfg.obs.trace.enabled = cfg_.trace;
  cfg.monitor.enabled = true;
  mcs::SystemConfig sys;
  sys.id = SystemId{static_cast<std::uint16_t>(cfg_.node_id)};
  sys.num_app_processes = cfg_.procs;
  sys.protocol = proto::anbkh_protocol();
  sys.seed = cfg_.seed + cfg_.node_id;
  cfg.systems.push_back(std::move(sys));
  for (std::size_t e = 0; e < n_links; ++e)
    cfg.external_links.push_back(isc::ExternalLinkSpec{});
  fed_ = std::make_unique<isc::Federation>(std::move(cfg));

  loop_.start();
  std::vector<std::size_t> link_idx(n_links);
  for (std::size_t e = 0; e < n_links; ++e) {
    links_.push_back(std::make_unique<net::TcpLinkTransport>(
        fds_[e], loop_, nullptr, cfg_.link));
    fds_[e] = -1;  // the transport owns it now
    link_idx[e] = fed_->interconnector().attach_external_link(
        e, links_.back().get());
  }
  // Every external link of this node shares the one IS-process, which is
  // exactly what makes the tree work: a pair arriving on link L is applied
  // locally and forwarded to every other link (split horizon).
  isc::IsProcess* isp =
      n_links > 0 ? &fed_->interconnector().external_isp(0) : nullptr;

  wl::UniformConfig wc;
  wc.ops_per_process = cfg_.ops;
  wc.seed = cfg_.seed * 2 + cfg_.node_id;
  wc.value_base = static_cast<Value>(cfg_.node_id) * 1'000'000;
  auto runners = wl::install_uniform(*fed_, wc);

  rt::Runtime rt(*fed_);

  std::vector<std::atomic<bool>> peer_done(n_links);
  std::vector<std::atomic<bool>> peer_bye(n_links);
  std::vector<std::atomic<std::uint64_t>> peer_pairs(n_links);
  for (std::size_t e = 0; e < n_links; ++e) {
    peer_done[e] = false;
    peer_bye[e] = false;
    peer_pairs[e] = 0;
  }

  // The engine must accept posts before any transport can deliver: a fast
  // peer may flood pairs the moment its own join completes.
  rt.start();

  for (std::size_t e = 0; e < n_links; ++e) {
    isc::IsProcess* isp_ptr = isp;
    const std::size_t link = link_idx[e];
    links_[e]->start([&, isp_ptr, link, e](net::MessagePtr msg) {
      // Loop thread. Control frames only touch atomics; pairs go to the
      // engine thread, where deliver_from_link runs protocol code and may
      // forward to sibling links.
      if (std::strcmp(msg->type_name(), "wire.ctrl") == 0) {
        auto& ctrl = static_cast<ControlMsg&>(*msg);
        if (ctrl.code == ControlMsg::kDone) {
          peer_pairs[e].store(ctrl.a, std::memory_order_relaxed);
          peer_done[e].store(true, std::memory_order_release);
        } else if (ctrl.code == ControlMsg::kBye) {
          peer_bye[e].store(true, std::memory_order_release);
        }
        return;
      }
      net::Message* raw = msg.release();
      rt.post([isp_ptr, link, raw] {
        isp_ptr->deliver_from_link(link, net::MessagePtr(raw));
      });
    });
  }

  // Run `fn` on the engine thread and wait — the only way anything outside
  // the engine reads engine-owned state (IS counters, runner progress).
  auto on_engine = [&rt](auto&& fn) {
    std::promise<void> done;
    auto* fn_ptr = &fn;
    auto* done_ptr = &done;
    rt.post([fn_ptr, done_ptr] {
      (*fn_ptr)();
      done_ptr->set_value();
    });
    done.get_future().wait();
  };

  auto fail = [&](std::string why) {
    error_ = std::move(why);
    loop_.stop();  // before rt: a late delivery must not post to a dead rt
    rt.stop();
    for (auto& link : links_) link->close();
  };

  std::vector<bool> done_sent(n_links, false);
  std::vector<bool> bye_sent(n_links, false);
  auto send_ctrl = [&](std::size_t e, std::uint8_t code, std::uint64_t a,
                       std::uint64_t b) {
    auto msg = std::make_unique<ControlMsg>();
    msg->code = code;
    msg->a = a;
    msg->b = b;
    links_[e]->send(std::move(msg));
  };

  // The done/bye convergecast (header comment + docs/BRIDGE.md).
  while (true) {
    for (std::size_t e = 0; e < n_links; ++e) {
      if (links_[e]->error() != nullptr) {
        fail(std::string("link to node ") + std::to_string(neighbors_[e]) +
             ": " + links_[e]->error());
        return result;
      }
      if (links_[e]->peer_closed() &&
          !peer_bye[e].load(std::memory_order_acquire)) {
        fail("node " + std::to_string(neighbors_[e]) +
             " vanished before bye");
        return result;
      }
    }

    bool local_done = true;
    bool idle = false;
    std::vector<std::uint64_t> recv_on(n_links), sent_on(n_links);
    on_engine([&] {
      for (const auto& r : runners)
        if (!r->done()) local_done = false;
      idle = fed_->simulator().empty();
      for (std::size_t e = 0; e < n_links; ++e) {
        recv_on[e] = isp->pairs_received_on(link_idx[e]);
        sent_on[e] = isp->pairs_sent_on(link_idx[e]);
      }
    });

    auto drained = [&](std::size_t e) {
      return peer_done[e].load(std::memory_order_acquire) &&
             recv_on[e] == peer_pairs[e].load(std::memory_order_relaxed);
    };

    if (local_done && idle) {
      for (std::size_t l = 0; l < n_links; ++l) {
        if (done_sent[l]) continue;
        bool others_drained = true;
        for (std::size_t m = 0; m < n_links; ++m)
          if (m != l && !drained(m)) others_drained = false;
        if (others_drained) {
          // pairs_sent_on(l) is final: nothing local remains, and every
          // other link is drained, so no more forwards onto l can appear.
          send_ctrl(l, ControlMsg::kDone, sent_on[l], 0);
          done_sent[l] = true;
        }
      }
      for (std::size_t l = 0; l < n_links; ++l) {
        if (!bye_sent[l] && drained(l)) {
          send_ctrl(l, ControlMsg::kBye, 0, 0);
          bye_sent[l] = true;
        }
      }
    }

    bool finished = local_done && idle;
    for (std::size_t e = 0; e < n_links; ++e) {
      if (!done_sent[e] || !bye_sent[e] ||
          !peer_bye[e].load(std::memory_order_acquire)) {
        finished = false;
      }
    }
    if (finished) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // Our final byes may still sit in the send queues; let the loop flush
  // them before it stops, or the peers hang waiting.
  for (std::size_t e = 0; e < n_links; ++e) {
    while (links_[e]->backlog() > 0 && links_[e]->error() == nullptr)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  loop_.stop();
  rt.stop();

  // Fold transport/loop atomics into the registry now that every producer
  // thread is joined (obs cells are not thread-safe).
  obs::MetricsRegistry& m = fed_->observability().metrics();
  std::uint64_t bytes_out = 0, bytes_in = 0, sys_read = 0, sys_writev = 0;
  std::uint64_t coalesced = 0, stalls = 0;
  for (const auto& link : links_) {
    bytes_out += link->wire_bytes_out();
    bytes_in += link->wire_bytes_in();
    sys_read += link->syscalls_read();
    sys_writev += link->syscalls_write();
    coalesced += link->frames_coalesced();
    stalls += link->queue_full_stalls();
  }
  m.counter("net.wire.bytes_out").inc(bytes_out);
  m.counter("net.wire.bytes_in").inc(bytes_in);
  m.counter("net.mesh.syscalls_read").inc(sys_read);
  m.counter("net.mesh.syscalls_writev").inc(sys_writev);
  m.counter("net.mesh.frames_coalesced").inc(coalesced);
  m.counter("net.mesh.queue_full_stalls").inc(stalls);
  m.counter("net.mesh.epoll_waits").inc(loop_.epoll_waits());
  m.counter("net.mesh.wakeups").inc(loop_.wakeups());

  for (const auto& r : runners) result.ops_done += r->steps_completed();
  if (isp != nullptr) {
    result.pairs_sent = isp->pairs_sent();
    result.pairs_received = isp->pairs_received();
  }
  result.violations =
      fed_->monitor() != nullptr ? fed_->monitor()->violation_count() : 0;
  result.ok = true;
  return result;
}

}  // namespace cim::mesh

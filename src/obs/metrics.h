// Metrics registry: named counters, gauges, and histograms with pull-based
// snapshots and JSON/CSV exporters.
//
// Naming convention (docs/OBSERVABILITY.md): `layer.noun[_qualifier][.label]`
// — lower-case, dot-separated layer prefix matching the src/ module that
// emits it (`sim.`, `net.`, `mcs.`, `proto.`, `isc.`, `trace.`), snake_case
// nouns, and an optional trailing `.label` for a fixed enumeration (e.g.
// `net.delivery_latency.intra` / `.inter`). Names are the stable schema:
// renaming one is a schema change and bumps kMetricsSchemaVersion.
//
// Instruments are cheap cells with stable addresses: instrumented code looks
// a metric up once (registry methods upsert) and keeps the pointer, so hot
// paths pay one add/compare per event, never a map lookup. Histograms take
// sim::Duration samples and summarize through stats::DurationSummary;
// ValueHistogram does the same for unitless sizes (queue depths, batch
// sizes). To bound memory on unbounded runs, histograms decimate once
// max_samples is hit (keep-every-2nd, doubling the keep stride) — count,
// sum, min, and max stay exact, percentiles become stride-sampled
// approximations.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.h"
#include "stats/summary.h"

namespace cim::obs {

// v2: per-link transport gauges renamed net.endpoint.<2l+side>.* →
// net.link.<l>.<side>.* and unified across transports (backlog on every
// link; byte counts on serializing links); net.wire.* codec instruments
// added. v3: net.mesh.* counters for the epoll mesh transport
// (docs/BRIDGE.md); mesh snapshots fold net.wire.bytes_* post-run without
// the *_ns histograms. v4: per-peer session gauges
// net.mesh.<peer>.{down,hb_miss,resumes,dup_drops,pairs_sent,pairs_delivered}
// for the crash-tolerant link sessions (docs/BRIDGE.md "Failure behavior").
// v5: the JSON header carries a `meta` object ({schema_version, git_sha}) so
// mixed-version snapshots are detectable during federation aggregation;
// per-peer RTT/offset instruments net.mesh.<peer>.{rtt_ns,rtt_best_ns,
// offset_ns,rtt_count} from the heartbeat NTP exchange; federation-wide
// fed.node.<i>.* entries in node 0's aggregated snapshot (docs/BRIDGE.md
// "Stats aggregation"). See docs/OBSERVABILITY.md § Schema versioning.
inline constexpr int kMetricsSchemaVersion = 5;

class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(std::int64_t v) { value_ = v; }
  void add(std::int64_t v) { value_ += v; }
  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

/// Histogram over int64 samples (durations in ns, or unitless values).
class Int64Histogram {
 public:
  /// Inline: called a few times per simulated event (delivery latency,
  /// causal wait, queue depths); only decimation is out of line.
  void observe(std::int64_t v) {
    if (count_ == 0) {
      min_ = max_ = v;
    } else {
      min_ = v < min_ ? v : min_;
      max_ = v > max_ ? v : max_;
    }
    ++count_;
    sum_ += v;

    if (until_next_ > 0) {
      --until_next_;
      return;
    }
    if (samples_.size() >= max_samples_) decimate();
    samples_.push_back(v);
    until_next_ = stride_ - 1;
  }

  std::uint64_t count() const { return count_; }
  std::int64_t sum() const { return sum_; }

  /// Percentile summary of the retained samples via stats::summarize, with
  /// count/min/max patched to the exact values.
  stats::DurationSummary summary() const;

  /// Retained-sample cap (test hook; decimation halves retention beyond it).
  void set_max_samples(std::size_t n) { max_samples_ = n < 2 ? 2 : n; }

 private:
  void decimate();

  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
  std::uint64_t stride_ = 1;  // record every stride_-th observation
  std::uint64_t until_next_ = 0;
  std::size_t max_samples_ = std::size_t{1} << 20;
  std::vector<std::int64_t> samples_;
};

/// Duration-typed histogram (values are virtual-time nanoseconds).
class DurationHistogram : public Int64Histogram {
 public:
  void observe(sim::Duration d) { Int64Histogram::observe(d.ns); }
};

/// Unitless histogram (queue depths, batch sizes, backlogs).
class ValueHistogram : public Int64Histogram {};

/// A point-in-time copy of every registered metric, sorted by name.
struct MetricsSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram, kValueHistogram };

  struct Entry {
    std::string name;
    Kind kind = Kind::kCounter;
    std::int64_t value = 0;          // counters and gauges
    stats::DurationSummary summary;  // histograms
    std::int64_t sum = 0;            // histograms
  };

  std::vector<Entry> entries;

  const Entry* find(std::string_view name) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Upsert by name. Returned references are stable for the registry's
  /// lifetime — cache them on hot paths.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  DurationHistogram& histogram(std::string_view name);
  ValueHistogram& value_histogram(std::string_view name);

  MetricsSnapshot snapshot() const;

  /// Apply a retained-sample cap to every currently registered histogram
  /// (see Int64Histogram::set_max_samples). Steady-state allocation tests
  /// use this after warm-up so sample retention stops growing.
  void set_histogram_max_samples(std::size_t n);

 private:
  // std::map: node-based, so instrument addresses never move.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, DurationHistogram, std::less<>> histograms_;
  std::map<std::string, ValueHistogram, std::less<>> value_histograms_;
};

/// JSON exporter (schema `cim.metrics.v1`, see docs/OBSERVABILITY.md).
void write_json(std::ostream& os, const MetricsSnapshot& snapshot);

/// CSV exporter: one metric per row, header
/// `name,kind,value,count,sum,min,p50,p90,p99,max,mean`.
void write_csv(std::ostream& os, const MetricsSnapshot& snapshot);

}  // namespace cim::obs

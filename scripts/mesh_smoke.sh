#!/usr/bin/env bash
# n cim_bridge processes — one causal memory system each — joined into a
# tree mesh over localhost TCP through the epoll transport, then the merged
# history is checked for causal consistency: the paper's Corollary 1 (any
# tree of causal systems is causal) observed over real sockets. See
# docs/BRIDGE.md. Wired into CI as the `mesh-smoke` step.
#
# usage: scripts/mesh_smoke.sh [BUILD_DIR] [BASE_PORT] [SHAPE] [N] [OUT_DIR]
#
# OUT_DIR keeps the per-node histories, metrics, and the checker output for
# artifact upload on failure; default is a temp dir removed on success. CI
# passes an explicit OUT_DIR and uploads it as an artifact when this fails.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$root/build}"
base_port="${2:-9517}"
shape="${3:-btree}"
n="${4:-4}"
out="${5:-}"

bridge="$build/tools/cim_bridge"
checker="$build/examples/trace_checker"
for bin in "$bridge" "$checker"; do
  if [ ! -x "$bin" ]; then
    echo "mesh_smoke: missing $bin (build the project first)" >&2
    exit 1
  fi
done

keep_out=1
if [ -z "$out" ]; then
  out="$(mktemp -d)"
  keep_out=0
  trap 'rm -rf "$out"' EXIT
fi
mkdir -p "$out"

# Launch the whole mesh at once; the join protocol absorbs start-order
# races (dialers retry, acceptors wait under a deadline).
i=0
pids=""
while [ "$i" -lt "$n" ]; do
  "$bridge" --node "$i" --shape "$shape" --n "$n" --base-port "$base_port" \
    --procs 4 --ops 25 \
    --history "$out/n$i.hist" --metrics "$out/n$i.json" \
    > "$out/n$i.log" 2>&1 &
  pids="$pids $!"
  i=$((i + 1))
done

status=0
for pid in $pids; do
  wait "$pid" || status=$?
done
if [ "$status" -ne 0 ]; then
  echo "mesh_smoke: a mesh process failed (status $status); node logs:" >&2
  cat "$out"/n*.log >&2
  exit 1
fi

# The merged computation of all n OS processes must be causally consistent
# (node i's values live in [i*1'000'000, ...), so concatenation is a
# well-formed single history).
i=0
: > "$out/merged.trace"
while [ "$i" -lt "$n" ]; do
  cat "$out/n$i.hist" >> "$out/merged.trace"
  i=$((i + 1))
done
"$checker" "$out/merged.trace" --cm | tee "$out/checker.out"

# Every online monitor must have stayed silent, pairs must actually have
# crossed the wire, and the epoll transport must have been exercised
# (metrics schema v3, docs/OBSERVABILITY.md).
i=0
while [ "$i" -lt "$n" ]; do
  python3 - "$out/n$i.json" "$i" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    snapshot = json.load(f)
metrics = {e["name"]: e for e in snapshot["metrics"]}
def val(name):
    return metrics.get(name, {}).get("value", 0)
node = sys.argv[2]
if val("checker.violations") != 0:
    sys.exit(f"mesh_smoke: node {node}: "
             f"checker.violations = {val('checker.violations')}")
if val("net.wire.bytes_out") == 0:
    sys.exit(f"mesh_smoke: node {node}: no wire bytes sent?")
if val("net.mesh.syscalls_writev") == 0:
    sys.exit(f"mesh_smoke: node {node}: epoll transport not exercised?")
EOF
  i=$((i + 1))
done

echo "mesh_smoke: OK ($shape($n) merged history causal, zero monitor violations)"

#include "mesh/stats_plane.h"

#include <cstdio>

#include <deque>
#include <fstream>

#include "obs/json.h"
#include "obs/metrics.h"

namespace cim::mesh {

std::size_t stats_parent(const isc::Topology& topo, std::size_t node) {
  if (node == 0) return isc::Topology::npos;
  // BFS from node 0; in a tree the first edge that reaches `node` is the
  // unique path toward the root.
  std::vector<std::size_t> parent(topo.nodes, isc::Topology::npos);
  std::vector<bool> seen(topo.nodes, false);
  std::deque<std::size_t> frontier{0};
  seen[0] = true;
  while (!frontier.empty()) {
    const std::size_t at = frontier.front();
    frontier.pop_front();
    for (std::size_t nb : topo.neighbors(at)) {
      if (seen[nb]) continue;
      seen[nb] = true;
      parent[nb] = at;
      if (nb == node) return at;
      frontier.push_back(nb);
    }
  }
  return isc::Topology::npos;
}

void FedAggregator::fold(const net::wire::StatsFrame& frame) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++folded_;
  auto it = latest_.find(frame.origin);
  if (it != latest_.end() && it->second.t_ns > frame.t_ns) return;
  latest_[frame.origin] = frame;
}

std::vector<std::uint64_t> FedAggregator::origins() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::uint64_t> out;
  out.reserve(latest_.size());
  for (const auto& [origin, frame] : latest_) out.push_back(origin);
  return out;
}

std::uint64_t FedAggregator::frames_folded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return folded_;
}

bool FedAggregator::write_json(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    if (!os) return false;
    obs::JsonWriter w(os);
    std::lock_guard<std::mutex> lock(mutex_);
    w.begin_object();
    w.kv("schema", "cim.metrics.v1");
    w.kv("v", obs::kMetricsSchemaVersion);
    w.key("meta");
    w.begin_object();
    w.kv("schema_version", obs::kMetricsSchemaVersion);
#if defined(CIM_GIT_SHA)
    w.kv("git_sha", CIM_GIT_SHA);
#else
    w.kv("git_sha", "unknown");
#endif
    w.kv("kind", "federation");
    w.end_object();
    w.key("metrics");
    w.begin_array();
    auto gauge = [&](const std::string& name, std::int64_t v) {
      w.begin_object();
      w.kv("name", name);
      w.kv("kind", "gauge");
      w.kv("value", v);
      w.end_object();
    };
    gauge("fed.nodes", static_cast<std::int64_t>(latest_.size()));
    for (const auto& [origin, frame] : latest_) {
      const std::string p = "fed.node." + std::to_string(origin) + ".";
      gauge(p + "t_ns", static_cast<std::int64_t>(frame.t_ns));
      for (const auto& [key, value] : frame.entries) gauge(p + key, value);
    }
    w.end_array();
    w.end_object();
    os << '\n';
    if (!os) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace cim::mesh

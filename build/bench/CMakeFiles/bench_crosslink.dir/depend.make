# Empty dependencies file for bench_crosslink.
# This may be replaced when dependencies are built.

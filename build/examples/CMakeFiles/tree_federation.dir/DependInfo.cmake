
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/tree_federation.cpp" "examples/CMakeFiles/tree_federation.dir/tree_federation.cpp.o" "gcc" "examples/CMakeFiles/tree_federation.dir/tree_federation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/protocols/CMakeFiles/cim_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/cim_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/interconnect/CMakeFiles/cim_interconnect.dir/DependInfo.cmake"
  "/root/repo/build/src/mcs/CMakeFiles/cim_mcs.dir/DependInfo.cmake"
  "/root/repo/build/src/checker/CMakeFiles/cim_checker.dir/DependInfo.cmake"
  "/root/repo/build/src/msgpass/CMakeFiles/cim_msgpass.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

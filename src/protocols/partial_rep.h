// Partial-replication causal protocol, in the spirit of Raynal & Ahamad,
// "Exploiting write semantics in implementing partially replicated causal
// objects" (Euromicro PDP 1998) — citation [8] of the paper.
//
// Each MCS-process declares an *interest set* of variables it replicates.
// Writes carry the full value only to interested peers; uninterested peers
// receive a small *causal marker* (writer + vector clock, no payload) that
// advances their causal knowledge without shipping data. The vector-clock
// delivery discipline is exactly ANBKH's, so causality is preserved; the
// savings appear in bytes on the wire (bench_partial_replication) — the
// motivation of the cited work.
//
// Reads of a variable outside the local interest set are a configuration
// error and throw.
//
// Interconnection: the paper requires the IS-process's MCS-process to hold
// "a local replica of each of the variables of the shared memory", so the
// interest function MUST return true for every variable at IS-process slots
// (local indices >= the configured application-process count). The
// convenience factory below enforces this automatically.
#pragma once

#include <functional>
#include <vector>

#include "common/vector_clock.h"
#include "common/var_store.h"
#include "mcs/mcs_process.h"
#include "protocols/update_msg.h"

namespace cim::proto {

/// Does local process `index` replicate `var`?
using InterestFn = std::function<bool(std::uint16_t index, VarId var)>;

/// Update message whose payload may be elided for uninterested receivers.
struct PartialUpdate final : net::Message {
  VarId var;
  Value value = kInitValue;
  bool has_value = false;  // false: causal marker only
  VectorClock clock;
  std::uint16_t writer = 0;
  // Instrumentation only, not wire data: the originating write's id (set on
  // markers too — they stem from the same write), and the local receive time
  // at the buffering process, feeding the proto.causal_wait histogram.
  WriteId write_id;
  sim::Time received_at;

  const char* type_name() const override {
    return has_value ? "partial.update" : "partial.marker";
  }
  std::size_t wire_size() const override {
    // Marker: header + writer + clock. Full update adds var id + value.
    return (has_value ? 24 + 4 + 8 : 24) + 2 + 8 * clock.size();
  }
  WriteId wid() const override { return write_id; }
};

class PartialRepProcess final : public mcs::McsProcess {
 public:
  PartialRepProcess(const mcs::McsContext& ctx, InterestFn interest,
                    std::uint16_t app_process_count);

  void handle_read(VarId var, mcs::ReadCallback cb) override;
  void on_message(net::ChannelId from, net::MessagePtr msg) override;

  bool satisfies_causal_updating() const override { return true; }
  const char* protocol_name() const override { return "partial-rep"; }

  bool holds(VarId var) const { return holds(local_index(), var); }
  const VectorClock& clock() const { return clock_; }
  Value replica_value(VarId var) const;

 protected:
  void do_write(VarId var, Value value, WriteId wid,
                mcs::WriteCallback cb) override;

 private:
  bool holds(std::uint16_t index, VarId var) const {
    // IS-process slots (and any slot beyond the application processes)
    // replicate everything, as Section 2 of the paper requires.
    return index >= app_process_count_ || interest_(index, var);
  }
  void apply_step();

  InterestFn interest_;
  std::uint16_t app_process_count_;
  VarStore store_;
  VectorClock clock_;
  std::vector<PartialUpdate> pending_;  // order-preserving erase, see anbkh.h
  bool applying_ = false;
};

/// Factory. `interest` governs application processes only; IS-process slots
/// always replicate every variable. `app_process_count` must equal the
/// system's num_app_processes.
mcs::ProtocolFactory partial_rep_protocol(InterestFn interest,
                                          std::uint16_t app_process_count);

/// Convenience: full replication (equivalent to ANBKH, for comparison runs).
mcs::ProtocolFactory partial_rep_protocol_full();

}  // namespace cim::proto

# Empty compiler generated dependencies file for cim_tests.
# This may be replaced when dependencies are built.

#include "checker/search_checker.h"

#include <algorithm>
#include <map>
#include <unordered_set>
#include <vector>

#include "checker/causal_checker.h"
#include "checker/relation.h"

namespace cim::chk {

namespace {

// A scheduling problem: find a linear extension of `before` over `ops`
// (indices into a local array) such that every read is *legal* when placed:
// it returns the value of the most recently placed write to its variable, or
// the initial value if no write to it has been placed.
struct Problem {
  std::vector<Op> ops;       // local operations
  Relation before;           // precedence constraints (closed or not)
  std::uint64_t budget = 0;  // remaining node budget
};

struct SearchState {
  std::uint64_t scheduled = 0;                  // bitmask over <=64 ops
  std::map<VarId, std::size_t> last_write;      // var -> local op index
};

std::uint64_t state_key(const SearchState& s) {
  // Combine the mask with a hash of the variable state. Collisions merely
  // cause a (sound) re-exploration to be skipped only if the full key
  // matches, so we store full keys in a set of pairs folded into one hash —
  // to stay exact we fold conservatively: same mask AND same last-write map
  // produce the same key; different maps *may* collide, so we mix strongly.
  std::uint64_t h = s.scheduled * 0x9E3779B97F4A7C15ULL;
  for (const auto& [var, idx] : s.last_write) {
    h ^= (static_cast<std::uint64_t>(var.value) + 1) * 0xBF58476D1CE4E5B9ULL +
         idx * 0x94D049BB133111EBULL + (h << 7) + (h >> 3);
  }
  return h;
}

// Depth-first search for a legal linear extension. Returns true/false, or
// nullopt if the budget is exhausted.
std::optional<bool> solve(Problem& p) {
  const std::size_t n = p.ops.size();
  if (n > 64) return std::nullopt;
  if (n == 0) return true;

  // Precompute predecessor masks.
  std::vector<std::uint64_t> preds(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    p.before.for_successors(i, [&](std::size_t j) {
      preds[j] |= 1ULL << i;
    });
    if (p.before.test(i, i)) preds[i] |= 1ULL << i;  // self-loop: unsat
  }

  // Memoized states known to fail. Keyed by a strong hash of
  // (mask, last-write map); a hash collision could wrongly prune, which is
  // statistically negligible for test sizes but we accept it as this checker
  // is advisory (the polynomial checker is authoritative).
  std::unordered_set<std::uint64_t> failed;

  struct Frame {
    SearchState state;
    std::vector<std::size_t> candidates;
    std::size_t next = 0;
  };

  auto candidates_of = [&](const SearchState& s) {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t bit = 1ULL << i;
      if (s.scheduled & bit) continue;
      if ((preds[i] & ~s.scheduled) != 0) continue;  // unscheduled preds
      if (p.ops[i].kind == OpKind::kRead) {
        auto it = s.last_write.find(p.ops[i].var);
        if (it == s.last_write.end()) {
          if (p.ops[i].value != kInitValue) continue;  // init read only
        } else if (p.ops[it->second].value != p.ops[i].value) {
          continue;  // would read a stale/overwritten value
        }
      }
      out.push_back(i);
    }
    return out;
  };

  std::vector<Frame> stack;
  stack.push_back(Frame{SearchState{}, candidates_of(SearchState{}), 0});

  const std::uint64_t all = (n == 64) ? ~0ULL : ((1ULL << n) - 1);
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.state.scheduled == all) return true;
    if (f.next >= f.candidates.size()) {
      failed.insert(state_key(f.state));
      stack.pop_back();
      continue;
    }
    if (p.budget-- == 0) return std::nullopt;
    const std::size_t pick = f.candidates[f.next++];
    SearchState next = f.state;
    next.scheduled |= 1ULL << pick;
    if (p.ops[pick].kind == OpKind::kWrite) {
      next.last_write[p.ops[pick].var] = pick;
    }
    if (failed.count(state_key(next))) continue;
    auto cands = candidates_of(next);
    stack.push_back(Frame{std::move(next), std::move(cands), 0});
  }
  return false;
}

}  // namespace

std::optional<bool> SearchChecker::is_causal(const History& history,
                                             std::uint64_t node_budget) const {
  CausalChecker cc;
  std::optional<Relation> co = cc.causal_order(history);
  if (!co) return false;  // cyclic co or thin-air / duplicate values

  const auto& ops = history.ops();

  for (ProcId proc : history.processes()) {
    // α_i: all writes plus this process's reads, with co restricted.
    std::vector<std::size_t> global_idx;
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].kind == OpKind::kWrite || ops[i].proc == proc) {
        global_idx.push_back(i);
      }
    }
    if (global_idx.size() > 64) return std::nullopt;

    Problem p;
    p.budget = node_budget;
    p.before = Relation(global_idx.size());
    for (std::size_t a = 0; a < global_idx.size(); ++a) {
      p.ops.push_back(ops[global_idx[a]]);
      for (std::size_t b = 0; b < global_idx.size(); ++b) {
        if (a != b && co->test(global_idx[a], global_idx[b])) {
          p.before.set(a, b);
        }
      }
    }
    std::optional<bool> result = solve(p);
    if (!result) return std::nullopt;  // budget exceeded
    if (!*result) return false;        // no causal view for this process
  }
  return true;
}

std::optional<bool> SearchChecker::is_sequential(
    const History& history, std::uint64_t node_budget) const {
  const auto& ops = history.ops();
  if (ops.size() > 64) return std::nullopt;

  Problem p;
  p.budget = node_budget;
  p.ops = ops;
  p.before = Relation(ops.size());
  for (ProcId proc : history.processes()) {
    const auto& seq = history.process_ops(proc);
    for (std::size_t k = 1; k < seq.size(); ++k) {
      p.before.set(seq[k - 1], seq[k]);
    }
  }
  return solve(p);
}

}  // namespace cim::chk

// Tree federation (Corollary 1): five sites with *different* causal MCS
// protocols, interconnected pairwise into a tree. A causal chain of writes
// relays through every site and back; the combined computation is verified
// causal.
//
//              HQ (anbkh)
//             |          |
//     plant-1 (lazy)   plant-2 (aw-seq)
//          |                |
//     lab (anbkh)      depot (lazy)
//
// The paper: systems "possibly implemented with different algorithms" can be
// interconnected without changing them; pairwise composition without cycles
// yields one large causal system.
#include <iostream>

#include "checker/causal_checker.h"
#include "interconnect/federation.h"
#include "protocols/anbkh.h"
#include "protocols/aw_seq.h"
#include "protocols/lazy_batch.h"
#include "workload/generator.h"

using namespace cim;

int main() {
  const char* names[] = {"HQ", "plant-1", "plant-2", "lab", "depot"};

  isc::FederationConfig cfg;
  proto::LazyBatchConfig lazy;
  lazy.order = proto::BatchOrder::kShuffleVars;
  mcs::ProtocolFactory protocols[] = {
      proto::anbkh_protocol(),            // HQ
      proto::lazy_batch_protocol(lazy),   // plant-1
      proto::aw_seq_protocol(),           // plant-2
      proto::anbkh_protocol(),            // lab
      proto::lazy_batch_protocol(lazy),   // depot
  };
  for (std::uint16_t s = 0; s < 5; ++s) {
    mcs::SystemConfig sys;
    sys.id = SystemId{s};
    sys.num_app_processes = 2;
    sys.protocol = protocols[s];
    sys.seed = 40 + s;
    cfg.systems.push_back(std::move(sys));
  }
  const std::pair<std::size_t, std::size_t> edges[] = {
      {0, 1}, {0, 2}, {1, 3}, {2, 4}};
  for (auto [a, b] : edges) {
    isc::LinkSpec link;
    link.system_a = a;
    link.system_b = b;
    link.delay = [] {
      return std::make_unique<net::FixedDelay>(sim::milliseconds(8));
    };
    cfg.links.push_back(std::move(link));
  }
  isc::Federation fed(std::move(cfg));

  std::cout << "federation topology (IS-protocol chosen per system):\n";
  for (std::uint16_t s = 0; s < 5; ++s) {
    std::cout << "  " << names[s] << " [" << fed.system(s).mcs(0).protocol_name()
              << "] -> IS-protocol "
              << (fed.interconnector().shared_isp(s).pre_reads_enabled() ? 2 : 1)
              << "\n";
  }

  // A token relays through every site: lab -> plant-1 -> HQ -> plant-2 ->
  // depot, each site writing its own step after seeing the previous one.
  const VarId token{0};
  auto& sim = fed.simulator();
  std::vector<std::unique_ptr<wl::RelayDriver>> relays;
  const std::size_t route[] = {3, 1, 0, 2, 4};
  for (std::size_t i = 1; i < 5; ++i) {
    relays.push_back(std::make_unique<wl::RelayDriver>(
        sim, fed.system(route[i]).app(0), token, static_cast<Value>(i),
        token, static_cast<Value>(i + 1), sim::milliseconds(3)));
    relays.back()->start();
  }
  fed.system(route[0]).app(0).write(token, 1);
  fed.run();

  bool all_fired = true;
  for (auto& r : relays) all_fired = all_fired && r->fired();
  std::cout << "\nrelay chain lab->plant-1->HQ->plant-2->depot completed: "
            << (all_fired ? "yes" : "NO") << "\n";

  Value final_token = -1;
  fed.system(3).app(1).read(token, [&](Value v) { final_token = v; });
  fed.run();
  std::cout << "final token value back at the lab: " << final_token
            << " (expected 5)\n";

  auto verdict = chk::CausalChecker{}.check(fed.federation_history());
  std::cout << "checker verdict on the 5-site computation: "
            << (verdict.ok() ? "causal" : verdict.detail) << "\n";
  return (verdict.ok() && all_fired && final_token == 5) ? 0 : 1;
}

#!/usr/bin/env bash
# Crash-tolerance smoke (docs/BRIDGE.md "Failure behavior", docs/FAULTS.md):
# a btree(4) cim_bridge mesh survives a kill -9 plus a SIGSTOP, and the
# merged history is still causally consistent with zero duplicated and zero
# lost pair deliveries.
#
#   - node 2 is SIGSTOPped mid-run: its neighbor (node 0) must flip the link
#     degraded (net.mesh.2.hb_miss rises) without failing, and recover after
#     SIGCONT.
#   - node 1 is kill -9'd mid-run and relaunched with --resume --state: the
#     spill journal restores its cursors, the kRejoin handshake replays the
#     unacked tail, and the whole mesh drains.
#
# usage: scripts/mesh_chaos_smoke.sh [BUILD_DIR] [BASE_PORT] [OUT_DIR]
#
# OUT_DIR keeps per-node logs, histories, journals, and metrics for artifact
# upload on failure; default is a temp dir removed on success. Wired into CI
# as the `mesh-chaos-smoke` job.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$root/build}"
base_port="${2:-9617}"
out="${3:-}"

bridge="$build/tools/cim_bridge"
checker="$build/examples/trace_checker"
cim_top="$build/tools/cim_top"
for bin in "$bridge" "$checker" "$cim_top"; do
  if [ ! -x "$bin" ]; then
    echo "mesh_chaos_smoke: missing $bin (build the project first)" >&2
    exit 1
  fi
done

if [ -z "$out" ]; then
  out="$(mktemp -d)"
  trap 'rm -rf "$out"' EXIT
fi
mkdir -p "$out"

# Liveness is tuned low so a 1.2s SIGSTOP is several missed heartbeats; the
# reconnect budget is generous because node 3 re-dials a dead listener until
# node 1's resumed incarnation opens it again.
launch() {
  local node="$1" log="$2"
  shift 2
  "$bridge" --node "$node" --shape btree --n 4 --base-port "$base_port" \
    --procs 4 --ops 200 --seed 11 \
    --hb-interval 50 --liveness 500 --backoff 50 --backoff-max 200 \
    --reconnect-attempts 200 --join-timeout 30000 --drain-timeout 30000 \
    --state "$out/n$node.state" --history "$out/n$node.hist" \
    --metrics "$out/n$node.json" --stats-interval 50 "$@" > "$log" 2>&1 &
}

pids=()
for i in 0 1 2 3; do
  if [ "$i" -eq 0 ]; then
    launch "$i" "$out/n$i.log" --fed-metrics "$out/fed.json"
  else
    launch "$i" "$out/n$i.log"
  fi
  pids[$i]=$!
done

# Every node is inside run() once its spill journal exists — only then is a
# signal guaranteed to land mid-mesh rather than mid-join.
deadline=$((SECONDS + 15))
for i in 0 1 2 3; do
  while [ ! -s "$out/n$i.state" ]; do
    if [ "$SECONDS" -ge "$deadline" ]; then
      echo "mesh_chaos_smoke: node $i never started its journal" >&2
      cat "$out"/n*.log >&2
      exit 1
    fi
    sleep 0.02
  done
done

# Chaos phase 1 — silent peer: node 2 goes quiet without dying. Node 0 must
# degrade the 0-2 link (backpressure, not failure) and keep the rest of the
# tree healthy.
kill -STOP "${pids[2]}"

# Chaos phase 2 — crash: node 1 dies without warning, taking its sockets to
# node 0 and node 3 with it, and comes back as generation 1 from its journal.
kill -KILL "${pids[1]}"
wait "${pids[1]}" || true  # reap the corpse (exit 137 is the point)
sleep 1.2                  # node 0 accumulates hb_miss on the stopped link
launch 1 "$out/n1.resume.log" --resume
pids[1]=$!

kill -CONT "${pids[2]}"

status=0
for i in 0 1 2 3; do
  wait "${pids[$i]}" || status=$?
done
if [ "$status" -ne 0 ]; then
  echo "mesh_chaos_smoke: a mesh process failed (status $status); logs:" >&2
  cat "$out"/n*.log >&2
  exit 1
fi
grep -q " gen 1:" "$out/n1.resume.log" || {
  echo "mesh_chaos_smoke: resumed node 1 did not report generation 1:" >&2
  cat "$out/n1.resume.log" >&2
  exit 1
}

# Merge the histories (node 1's file holds both incarnations — the stream
# appends on resume). Only the very last line of the crashed incarnation can
# be torn by the kill, and a torn line means the op's pair never hit a
# socket, so dropping it cannot hide a propagated value.
: > "$out/merged.trace"
for i in 0 1 2 3; do
  awk 'NR > 1 { print prev }
       { prev = $0 }
       END { if (prev ~ /^[rw] [0-9]+ [0-9]+ [0-9]+ [0-9]+$/) print prev }' \
    "$out/n$i.hist" >> "$out/merged.trace"
done
"$checker" "$out/merged.trace" --cm | tee "$out/checker.out"

# The stats plane must have survived the chaos too: node 0's federation
# snapshot covers every node, and node 1's latest frame carries its resumed
# incarnation (generation 1) — stats frames from the dead generation cannot
# roll the view back (newest t_ns wins, and CLOCK_MONOTONIC is system-wide).
python3 - "$out/fed.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    snapshot = json.load(f)
metrics = {e["name"]: e.get("value", 0) for e in snapshot["metrics"]}
if metrics.get("fed.nodes") != 4:
    sys.exit(f"mesh_chaos_smoke: fed.nodes = {metrics.get('fed.nodes')}, want 4")
for i in range(4):
    if f"fed.node.{i}.t_ns" not in metrics:
        sys.exit(f"mesh_chaos_smoke: fed.json has no snapshot from node {i}")
if metrics.get("fed.node.1.generation") != 1:
    sys.exit("mesh_chaos_smoke: fed snapshot never saw node 1's resumed "
             f"generation (got {metrics.get('fed.node.1.generation')})")
if metrics.get("fed.node.0.peer.1.resumes", 0) < 1:
    sys.exit("mesh_chaos_smoke: fed snapshot shows no reconnect on the "
             "crashed edge 0-1")
print("fed snapshot ok: all 4 nodes covered, node 1 at generation 1, "
      "reconnect visible on edge 0-1")
EOF

# The chaos run must be renderable: one cim_top frame over the final
# snapshot, with the reconnect visible in the per-peer health table.
"$cim_top" --file "$out/fed.json" --once | tee "$out/cim_top.out"
grep -q "reconn" "$out/cim_top.out" || {
  echo "mesh_chaos_smoke: cim_top --once rendered no per-peer table" >&2
  exit 1
}

# Gauge assertions (metrics schema v5, docs/OBSERVABILITY.md): the SIGSTOP
# was observed and recovered from, the crash was rejoined, and — the core
# contract — every pair one side sent was delivered exactly once on the
# other, across the kill and the replay.
python3 - "$out" <<'EOF'
import json, sys
out = sys.argv[1]
def gauges(node):
    with open(f"{out}/n{node}.json") as f:
        snapshot = json.load(f)
    return {e["name"]: e.get("value", 0) for e in snapshot["metrics"]}
m = {i: gauges(i) for i in range(4)}
def val(node, name):
    return m[node].get(name, 0)

if val(0, "net.mesh.2.hb_miss") == 0:
    sys.exit("mesh_chaos_smoke: node 0 never noticed the SIGSTOPped node 2")
if val(0, "net.mesh.2.down") != 0:
    sys.exit("mesh_chaos_smoke: node 0's link to node 2 did not recover")
if val(0, "net.mesh.1.resumes") == 0:
    sys.exit("mesh_chaos_smoke: node 0 never resumed its session with the "
             "restarted node 1")
for a, b in [(0, 1), (0, 2), (1, 3)]:
    for x, y in [(a, b), (b, a)]:
        sent = val(x, f"net.mesh.{y}.pairs_sent")
        got = val(y, f"net.mesh.{x}.pairs_delivered")
        if sent == 0:
            sys.exit(f"mesh_chaos_smoke: node {x} sent no pairs to {y}?")
        if sent != got:
            sys.exit(f"mesh_chaos_smoke: edge {x}->{y}: {sent} pairs sent "
                     f"but {got} delivered (dup or loss across the crash)")
for i in range(4):
    if val(i, "checker.violations") != 0:
        sys.exit(f"mesh_chaos_smoke: node {i}: online monitor violations")
EOF

echo "mesh_chaos_smoke: OK (kill -9 + --resume and SIGSTOP/SIGCONT survived;" \
     "merged history causal, zero dup, zero loss)"

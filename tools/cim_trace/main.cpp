// cim_trace: analyze and export structured trace JSONL (docs/TRACE_TOOLS.md).
//
//   cim_trace summarize <trace.jsonl>      per-stage latency breakdown
//   cim_trace spans     <trace.jsonl>      one JSON object per write id
//   cim_trace check     <trace.jsonl>      offline consistency check (exit 1
//                                          when violations are found)
//   cim_trace export --perfetto <trace.jsonl> [-o out.json]
//                                          Chrome Trace Event JSON for
//                                          Perfetto / chrome://tracing
//   cim_trace merge [--offsets fed.json] <t0.jsonl> <t1.jsonl>... [-o F]
//                                          align per-node traces onto node
//                                          0's clock, one unified timeline
//                                          (add --perfetto for Chrome JSON)
//
// The input is the file TraceSink::write_jsonl() produces (schema
// docs/OBSERVABILITY.md); pass `-` to read stdin. merge consumes one file
// per mesh node plus (optionally) the federation metrics snapshot for the
// heartbeat-measured clock offsets — see docs/TRACE_TOOLS.md "merge".
#include <chrono>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "checker/causal_checker.h"
#include "checker/online_monitor.h"
#include "checker/trace_history.h"
#include "obs/perfetto_export.h"
#include "obs/span_index.h"
#include "obs/trace_merge.h"
#include "obs/trace_read.h"
#include "stats/summary.h"
#include "stats/table.h"

namespace {

using cim::obs::ParsedTraceEvent;

int usage() {
  std::cerr
      << "usage: cim_trace <command> [options] <trace.jsonl>\n"
         "  summarize <trace.jsonl>                per-stage latency table\n"
         "  spans <trace.jsonl>                    per-write span JSONL\n"
         "  check <trace.jsonl>                    offline consistency check\n"
         "  export --perfetto <trace.jsonl> [-o F] Chrome Trace Event JSON\n"
         "  merge [--offsets fed.json] [--perfetto] <t0.jsonl>... [-o F]\n"
         "                                         one cross-node timeline\n"
         "Pass '-' as the trace file to read stdin.\n";
  return 2;
}

bool load(const std::string& path, std::vector<ParsedTraceEvent>& events) {
  std::vector<std::string> errors;
  if (path == "-") {
    events = cim::obs::read_trace_jsonl(std::cin, &errors);
  } else {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "cim_trace: cannot open " << path << "\n";
      return false;
    }
    events = cim::obs::read_trace_jsonl(in, &errors);
  }
  for (const std::string& e : errors) {
    std::cerr << "cim_trace: " << path << ": " << e << "\n";
  }
  if (events.empty()) {
    std::cerr << "cim_trace: " << path << ": no trace records\n";
    return false;
  }
  return true;
}

/// Like load(), but a report-producing command (summarize/spans) refuses
/// degraded input outright: an empty trace or a truncated tail (a writer
/// that died mid-line, e.g. kill -9 before the JSONL flush completed) gets
/// one clear diagnostic and a failure exit instead of a quietly partial or
/// zero-row report.
bool load_strict(const std::string& path,
                 std::vector<ParsedTraceEvent>& events) {
  std::istream* in = &std::cin;
  std::ifstream file;
  if (path != "-") {
    file.open(path);
    if (!file) {
      std::cerr << "cim_trace: cannot open " << path << "\n";
      return false;
    }
    in = &file;
  }
  std::string line;
  std::size_t line_no = 0, bad = 0, last_bad_line = 0;
  std::string last_error;
  while (std::getline(*in, line)) {
    ++line_no;
    if (line.empty()) continue;
    ParsedTraceEvent ev;
    std::string error;
    if (cim::obs::parse_trace_line(line, ev, &error)) {
      events.push_back(std::move(ev));
    } else {
      ++bad;
      last_bad_line = line_no;
      last_error = std::move(error);
    }
  }
  if (events.empty()) {
    std::cerr << "cim_trace: " << path
              << ": empty trace (0 records) — was tracing enabled"
                 " (--trace)?\n";
    return false;
  }
  if (bad > 0 && last_bad_line == line_no) {
    std::cerr << "cim_trace: " << path << ": truncated tail at line "
              << last_bad_line << " (" << last_error
              << ") — writer died mid-record? refusing a partial report\n";
    return false;
  }
  if (bad > 0) {
    std::cerr << "cim_trace: " << path << ": " << bad
              << " malformed line(s), last at line " << last_bad_line << " ("
              << last_error << ") — refusing a partial report\n";
    return false;
  }
  return true;
}

void add_stage_row(cim::stats::Table& table, const char* stage,
                   const std::vector<cim::sim::Duration>& samples) {
  const cim::stats::DurationSummary s = cim::stats::summarize(samples);
  table.add_row(stage, s.count, s.min.ns, s.p50.ns, s.p90.ns, s.p99.ns,
                s.max.ns, static_cast<std::int64_t>(s.mean_ns));
}

int cmd_summarize(const std::vector<ParsedTraceEvent>& events) {
  cim::obs::SpanIndex index;
  index.index(events);
  const auto stages = index.stages();

  std::cout << "records: " << events.size() << "   writes: " << index.size()
            << "\n\n";
  cim::stats::Table table({"stage", "count", "min_ns", "p50_ns", "p90_ns",
                           "p99_ns", "max_ns", "mean_ns"});
  add_stage_row(table, "origin_apply", stages.origin_apply);
  add_stage_row(table, "fanout_intra", stages.fanout_intra);
  add_stage_row(table, "causal_wait", stages.causal_wait);
  add_stage_row(table, "is_hop", stages.is_hop);
  add_stage_row(table, "remote_apply", stages.remote_apply);
  add_stage_row(table, "propagation", stages.propagation);
  table.print(std::cout);
  std::cout << "\npropagation reproduces the isc.propagation_latency "
               "histogram (same samples, full precision).\n";
  return 0;
}

int cmd_spans(const std::vector<ParsedTraceEvent>& events) {
  cim::obs::SpanIndex index;
  index.index(events);
  index.write_spans_jsonl(std::cout);
  return 0;
}

int cmd_check(const std::string& path) {
  // Stream the JSONL line by line: each record feeds the online monitor and
  // the columnar history builder directly, so memory stays at the encoded
  // column size (~14 B/op) no matter how large the trace is — the event
  // vector the other commands materialize is never built.
  std::istream* in = &std::cin;
  std::ifstream file;
  if (path != "-") {
    file.open(path);
    if (!file) {
      std::cerr << "cim_trace: cannot open " << path << "\n";
      return 2;
    }
    in = &file;
  }
  cim::chk::OnlineMonitor monitor{cim::chk::MonitorOptions{.enabled = true}};
  cim::chk::TraceHistoryBuilder builder;
  std::string line;
  std::size_t records = 0, bad = 0;
  while (std::getline(*in, line)) {
    if (line.empty()) continue;
    ParsedTraceEvent ev;
    if (!cim::obs::parse_trace_line(line, ev, nullptr)) {
      ++bad;
      continue;
    }
    ++records;
    monitor.observe(ev);
    builder.observe(ev);
  }
  if (records == 0) {
    std::cerr << "cim_trace: " << path << ": no trace records\n";
    return 2;
  }

  // Offline pass: the federation history α^T (application ops only; ISP
  // copies are the propagation mechanism, not part of the checked
  // computation) through the bad-pattern checker.
  cim::chk::History full = builder.build();
  const cim::chk::TraceHistoryBuilder::Stats& tstats = builder.stats();
  cim::chk::History app =
      full.filter([](const cim::chk::Op& op) { return !op.is_isp; });
  const auto t0 = std::chrono::steady_clock::now();
  const cim::chk::CheckResult res =
      cim::chk::CausalChecker{}.check(app, cim::chk::Level::kCM);
  const double check_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();

  std::ostringstream summary;
  summary << records << " records, " << tstats.ops << " ops (" << app.size()
          << " app, " << tstats.isp_ops << " isp), bytes_per_op="
          << std::fixed << std::setprecision(1) << full.bytes_per_op()
          << ", offline=" << cim::chk::to_string(res.pattern)
          << ", check_ms=" << std::setprecision(1) << check_ms;
  if (bad > 0) summary << ", " << bad << " malformed line(s)";
  if (tstats.pending > 0 || tstats.orphan_dones > 0) {
    summary << ", " << tstats.pending << " incomplete, "
            << tstats.orphan_dones << " orphaned";
  }

  int exit_code = 0;
  if (monitor.violation_count() > 0) {
    cim::stats::Table table(
        {"kind", "t_ns", "proc", "var", "wid", "expect_seq", "got_seq"});
    for (const cim::chk::Violation& v : monitor.violations()) {
      std::ostringstream proc, wid;
      proc << v.proc;
      wid << v.wid;
      table.add_row(v.kind, v.t, proc.str(), v.var.value, wid.str(),
                    v.expected_seq, v.got_seq);
    }
    table.print(std::cout);
    std::cout << monitor.violation_count() << " online violation(s)\n";
    exit_code = 1;
  }
  if (!res.ok()) {
    if (res.pattern == cim::chk::BadPattern::kThinAirRead) {
      // A dropped write (ring-buffer overflow, crash) makes its readers
      // look thin-air; indistinguishable from a real violation offline, so
      // warn without failing.
      std::cout << "warning: " << res.detail
                << " (possibly a dropped trace record)\n";
    } else if (res.pattern == cim::chk::BadPattern::kResidualLimit) {
      std::cout << "warning: " << res.detail << "\n";
    } else {
      std::cout << "violation (" << cim::chk::to_string(res.pattern)
                << "): " << res.detail << "\n";
      exit_code = 1;
    }
  }
  std::cout << (exit_code == 0 ? "ok: " : "failed: ") << summary.str()
            << "\n";
  return exit_code;
}

int cmd_export(const std::vector<ParsedTraceEvent>& events,
               const std::string& out_path) {
  if (out_path.empty() || out_path == "-") {
    cim::obs::write_chrome_trace(std::cout, events);
    return 0;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cim_trace: cannot write " << out_path << "\n";
    return 2;
  }
  cim::obs::write_chrome_trace(out, events);
  std::cerr << "wrote " << out_path << " (" << events.size()
            << " records); open in ui.perfetto.dev or chrome://tracing\n";
  return 0;
}

int cmd_merge(const std::vector<std::string>& paths,
              const std::string& offsets_path, bool perfetto,
              const std::string& out_path) {
  cim::obs::NodeOffsets offsets;
  if (!offsets_path.empty()) {
    std::ifstream in(offsets_path);
    if (!in) {
      std::cerr << "cim_trace: cannot open " << offsets_path << "\n";
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string error;
    if (!cim::obs::load_offsets_json(text.str(), offsets, &error)) {
      std::cerr << "cim_trace: " << offsets_path << ": " << error << "\n";
      return 2;
    }
  } else {
    std::cerr << "cim_trace: merge without --offsets: assuming one clock"
                 " domain (offsets 0)\n";
  }

  std::vector<cim::obs::MergeInput> inputs;
  for (const std::string& path : paths) {
    cim::obs::MergeInput in;
    in.label = path;
    if (!load(path, in.events)) return 2;
    inputs.push_back(std::move(in));
  }
  cim::obs::MergeResult merged =
      cim::obs::merge_traces(inputs, offsets);
  for (const std::string& w : merged.warnings) {
    std::cerr << "cim_trace: " << w << "\n";
  }

  const bool to_file = !out_path.empty() && out_path != "-";
  std::ofstream file;
  if (to_file) {
    file.open(out_path);
    if (!file) {
      std::cerr << "cim_trace: cannot write " << out_path << "\n";
      return 2;
    }
  }
  std::ostream& os = to_file ? static_cast<std::ostream&>(file) : std::cout;
  if (perfetto) {
    cim::obs::write_chrome_trace(os, merged.events);
  } else {
    cim::obs::write_trace_jsonl(os, merged.events);
  }
  std::cerr << "merged " << inputs.size() << " trace(s), "
            << merged.events.size() << " records ("
            << merged.aligned_inputs << " clock-aligned)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];

  std::vector<std::string> trace_paths;
  std::string out_path;
  std::string offsets_path;
  bool perfetto = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--perfetto") {
      perfetto = true;
    } else if (arg == "-o" || arg == "--out") {
      if (i + 1 >= argc) return usage();
      out_path = argv[++i];
    } else if (arg == "--offsets") {
      if (i + 1 >= argc) return usage();
      offsets_path = argv[++i];
    } else {
      trace_paths.push_back(arg);
    }
  }
  if (trace_paths.empty()) return usage();

  if (cmd == "merge") {
    return cmd_merge(trace_paths, offsets_path, perfetto, out_path);
  }
  if (trace_paths.size() != 1) return usage();
  const std::string& trace_path = trace_paths.front();

  // check streams the file itself (bounded memory); everything else loads
  // the event vector up front.
  if (cmd == "check") return cmd_check(trace_path);

  std::vector<ParsedTraceEvent> events;
  // summarize/spans produce reports: degraded input fails loudly (see
  // load_strict); check/export keep best-effort parsing.
  if (cmd == "summarize" || cmd == "spans") {
    if (!load_strict(trace_path, events)) return 2;
  } else {
    if (!load(trace_path, events)) return 2;
  }

  if (cmd == "summarize") return cmd_summarize(events);
  if (cmd == "spans") return cmd_spans(events);
  if (cmd == "export") {
    if (!perfetto) {
      std::cerr << "cim_trace: export currently requires --perfetto\n";
      return 2;
    }
    return cmd_export(events, out_path);
  }
  return usage();
}

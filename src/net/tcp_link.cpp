#include "net/tcp_link.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "net/reliable_transport.h"
#include "net/wire.h"

namespace cim::net {

namespace {

std::int64_t wall_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void set_nodelay(int fd) {
  // The bridge's pairs are small and latency-bound; Nagle would batch them.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

bool write_all(int fd, const std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    // MSG_NOSIGNAL: a vanished peer must surface as an error return, not
    // SIGPIPE killing the bridge.
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

bool read_all(int fd, std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::recv(fd, data, size, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // orderly EOF
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

int tcp_listen_accept(std::uint16_t port) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  CIM_CHECK_MSG(listener >= 0, "socket() failed: " << std::strerror(errno));
  int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listener);
    CIM_CHECK_MSG(false, "bind(:" << port << ") failed: "
                                  << std::strerror(err));
  }
  if (::listen(listener, 1) != 0) {
    const int err = errno;
    ::close(listener);
    CIM_CHECK_MSG(false, "listen() failed: " << std::strerror(err));
  }
  const int fd = ::accept(listener, nullptr, nullptr);
  const int err = errno;
  ::close(listener);
  CIM_CHECK_MSG(fd >= 0, "accept() failed: " << std::strerror(err));
  set_nodelay(fd);
  return fd;
}

int tcp_connect(const char* host, std::uint16_t port, int retries) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port_str = std::to_string(port);
  CIM_CHECK_MSG(::getaddrinfo(host, port_str.c_str(), &hints, &res) == 0,
                "cannot resolve " << host);

  int fd = -1;
  for (int attempt = 0; attempt <= retries; ++attempt) {
    fd = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
    CIM_CHECK_MSG(fd >= 0, "socket() failed: " << std::strerror(errno));
    if (::connect(fd, res->ai_addr, res->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
    // The peer may simply not be listening yet (the bridge launches both
    // sides concurrently); back off and retry.
    ::usleep(100 * 1000);
  }
  ::freeaddrinfo(res);
  CIM_CHECK_MSG(fd >= 0, "cannot connect to " << host << ":" << port);
  set_nodelay(fd);
  return fd;
}

TcpLinkTransport::TcpLinkTransport(int fd, obs::Observability* obs)
    : fd_(fd) {
  CIM_CHECK(fd >= 0);
  if (obs != nullptr) {
    obs::MetricsRegistry& m = obs->metrics();
    m_bytes_out_ = &m.counter("net.wire.bytes_out");
    h_encode_ns_ = &m.histogram("net.wire.encode_ns");
  }
}

TcpLinkTransport::~TcpLinkTransport() { close(); }

void TcpLinkTransport::close() {
  if (closed_) return;
  closed_ = true;
  ::shutdown(fd_, SHUT_RDWR);
  if (reader_.joinable()) reader_.join();
  ::close(fd_);
}

void TcpLinkTransport::send(MessagePtr msg) {
  std::lock_guard<std::mutex> lock(send_mutex_);
  TransportFrame frame;
  frame.seq = send_next_++;
  frame.ack = recv_next_published_.load(std::memory_order_relaxed);
  frame.payload = std::move(msg);

  send_buf_.clear();
  const std::int64_t t0 = wall_ns();
  const std::size_t frame_len = wire::encode(frame, send_buf_);
  const std::int64_t t1 = wall_ns();
  if (m_bytes_out_ != nullptr) {
    m_bytes_out_->inc(frame_len);
    h_encode_ns_->observe(sim::Duration{t1 - t0});
  }

  if (!write_all(fd_, send_buf_.data(), send_buf_.size())) {
    peer_closed_.store(true, std::memory_order_release);
    return;
  }
  bytes_out_.fetch_add(frame_len, std::memory_order_relaxed);
  frames_sent_.fetch_add(1, std::memory_order_relaxed);
}

bool TcpLinkTransport::read_frame(std::vector<std::uint8_t>& buf) {
  std::uint8_t len_le[4];
  if (!read_all(fd_, len_le, 4)) return false;
  std::uint32_t body_len = 0;
  for (int i = 0; i < 4; ++i)
    body_len |= static_cast<std::uint32_t>(len_le[i]) << (8 * i);
  if (body_len > wire::kMaxBodyBytes) {
    error_.store("tcp link: oversized frame", std::memory_order_release);
    return false;
  }
  buf.assign(len_le, len_le + 4);
  buf.resize(std::size_t{4} + body_len);
  if (!read_all(fd_, buf.data() + 4, body_len)) return false;
  bytes_in_.fetch_add(buf.size(), std::memory_order_relaxed);
  return true;
}

MessagePtr TcpLinkTransport::decode_frame(
    const std::vector<std::uint8_t>& buf) {
  wire::DecodeResult res = wire::decode(buf.data(), buf.size());
  if (!res.ok()) {
    error_.store(res.error, std::memory_order_release);
    return nullptr;
  }
  auto* frame = dynamic_cast<TransportFrame*>(res.msg.get());
  if (frame == nullptr) {
    error_.store("tcp link: stream message is not a transport frame",
                 std::memory_order_release);
    return nullptr;
  }
  if (frame->payload == nullptr) return nullptr;  // pure ACK: nothing to do
  // The ARQ receive discipline, minus recovery: TCP already guarantees
  // order, so a gap is impossible; a duplicate seq is suppressed.
  if (frame->seq < recv_next_) {
    dups_suppressed_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  if (frame->seq != recv_next_) {
    error_.store("tcp link: sequence gap on an ordered stream",
                 std::memory_order_release);
    return nullptr;
  }
  ++recv_next_;
  recv_next_published_.store(recv_next_, std::memory_order_relaxed);
  frames_received_.fetch_add(1, std::memory_order_relaxed);
  return std::move(frame->payload);
}

MessagePtr TcpLinkTransport::recv_one() {
  CIM_CHECK_MSG(!started_, "recv_one() after start()");
  std::vector<std::uint8_t> buf;
  while (true) {
    if (!read_frame(buf)) {
      peer_closed_.store(true, std::memory_order_release);
      return nullptr;
    }
    if (MessagePtr payload = decode_frame(buf)) return payload;
    if (error() != nullptr) return nullptr;
  }
}

void TcpLinkTransport::start(DeliverFn deliver) {
  CIM_CHECK_MSG(!started_, "start() called twice");
  started_ = true;
  deliver_ = std::move(deliver);
  reader_ = std::thread([this] { reader_loop(); });
}

void TcpLinkTransport::reader_loop() {
  std::vector<std::uint8_t> buf;
  while (true) {
    if (!read_frame(buf)) break;
    if (MessagePtr payload = decode_frame(buf)) deliver_(std::move(payload));
    if (error() != nullptr) break;
  }
  peer_closed_.store(true, std::memory_order_release);
}

}  // namespace cim::net

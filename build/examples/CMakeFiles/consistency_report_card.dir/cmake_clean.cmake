file(REMOVE_RECURSE
  "CMakeFiles/consistency_report_card.dir/consistency_report_card.cpp.o"
  "CMakeFiles/consistency_report_card.dir/consistency_report_card.cpp.o.d"
  "consistency_report_card"
  "consistency_report_card.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consistency_report_card.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Chrome Trace Event JSON export (the `cim_trace export --perfetto`
// backend), loadable in Perfetto (ui.perfetto.dev) and chrome://tracing.
//
// Mapping (docs/TRACE_TOOLS.md):
//   - one track per simulated process: pid = system id, tid = process index
//     (named via "M" process_name / thread_name metadata records);
//   - every trace record becomes an "i" (instant) event on its process
//     track, args carrying the record's fields verbatim;
//   - each write id becomes an async "b"/"e" pair on the origin process,
//     spanning write_issue → last observation of the wid anywhere, so the
//     full propagation of a write reads as one horizontal span;
//   - derived "X" (complete) slices make the interesting latencies visible:
//     `causal_wait` on the applying process and `is_hop` on the receiving
//     IS-process.
//
// Events with no process affinity (e.g. simulator-level records) land on a
// synthetic "trace" track. Timestamps are virtual nanoseconds rendered as
// microseconds (the format's unit).
#pragma once

#include <iosfwd>
#include <vector>

#include "obs/trace_read.h"

namespace cim::obs {

/// Write `events` as one Chrome Trace Event JSON document (object form:
/// {"traceEvents": [...]}).
void write_chrome_trace(std::ostream& os,
                        const std::vector<ParsedTraceEvent>& events);

}  // namespace cim::obs

// Unit tests: the allocation-free hot-path primitives — SmallFn, VecQueue,
// BlockPool, and VarStore (docs/ARCHITECTURE.md, "Allocation-free event
// core"). tests/alloc_test.cpp checks the end-to-end invariant; these pin
// the building blocks' semantics.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/pool.h"
#include "common/rng.h"
#include "common/small_fn.h"
#include "common/value.h"
#include "common/var_store.h"
#include "common/vec_queue.h"

namespace cim {
namespace {

// --- SmallFn ---------------------------------------------------------------

TEST(SmallFn, DefaultIsEmpty) {
  SmallFn<void()> fn;
  EXPECT_FALSE(fn);
  EXPECT_TRUE(fn == nullptr);
  SmallFn<void()> null_fn = nullptr;
  EXPECT_FALSE(null_fn);
}

TEST(SmallFn, InlineLambdaInvokes) {
  int hits = 0;
  SmallFn<void()> fn = [&hits] { ++hits; };
  ASSERT_TRUE(fn);
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(SmallFn, ArgumentsAndReturnValue) {
  SmallFn<int(int, int)> add = [](int a, int b) { return a + b; };
  EXPECT_EQ(add(2, 3), 5);
}

TEST(SmallFn, MoveOnlyCaptureIsAccepted) {
  // std::function would reject this capture (not copyable); the event core
  // relies on moving MessagePtr-style captures straight into the slot.
  auto p = std::make_unique<int>(41);
  SmallFn<int()> fn = [p = std::move(p)] { return *p + 1; };
  EXPECT_EQ(fn(), 42);
}

TEST(SmallFn, MoveTransfersTargetAndEmptiesSource) {
  int hits = 0;
  SmallFn<void()> a = [&hits] { ++hits; };
  SmallFn<void()> b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): documented semantics
  ASSERT_TRUE(b);
  b();
  EXPECT_EQ(hits, 1);

  SmallFn<void()> c;
  c = std::move(b);
  EXPECT_FALSE(b);  // NOLINT(bugprone-use-after-move)
  c();
  EXPECT_EQ(hits, 2);
}

TEST(SmallFn, TrivialCaptureSurvivesMove) {
  // Trivially-copyable closures take the handler-less memcpy path; the
  // capture must arrive intact.
  std::int64_t big = 0x1122334455667788;
  int small = 7;
  SmallFn<std::int64_t()> fn = [big, small] { return big + small; };
  SmallFn<std::int64_t()> moved = std::move(fn);
  EXPECT_EQ(moved(), 0x1122334455667788 + 7);
}

TEST(SmallFn, OversizeCaptureSpillsToPoolAndWorks) {
  // 128 bytes of capture cannot fit the 64-byte inline buffer.
  struct Big {
    std::int64_t vals[16];
  };
  Big big{};
  for (int i = 0; i < 16; ++i) big.vals[i] = i;
  SmallFn<std::int64_t()> fn = [big] {
    std::int64_t sum = 0;
    for (std::int64_t v : big.vals) sum += v;
    return sum;
  };
  EXPECT_EQ(fn(), 120);
  SmallFn<std::int64_t()> moved = std::move(fn);
  EXPECT_FALSE(fn);  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(moved(), 120);
}

TEST(SmallFn, DestroysCaptureExactlyOnce) {
  auto counter = std::make_shared<int>(0);
  {
    SmallFn<void()> fn = [counter] {};
    EXPECT_EQ(counter.use_count(), 2);
    SmallFn<void()> moved = std::move(fn);
    EXPECT_EQ(counter.use_count(), 2);  // moved, not copied
  }
  EXPECT_EQ(counter.use_count(), 1);  // destroyed with the SmallFn
}

TEST(SmallFn, ReassignmentReplacesTarget) {
  auto old_capture = std::make_shared<int>(0);
  SmallFn<int()> fn = [old_capture] { return 1; };
  fn = [] { return 2; };
  EXPECT_EQ(old_capture.use_count(), 1);  // old target destroyed
  EXPECT_EQ(fn(), 2);
  fn = nullptr;
  EXPECT_FALSE(fn);
}

// --- VecQueue --------------------------------------------------------------

TEST(VecQueue, FifoMatchesDequeUnderRandomChurn) {
  // The header comment promises "FIFO order identical to std::deque's";
  // exercise mixed push/pop (including full drains, which reset the head,
  // and long-lived queues, which compact).
  Rng rng(7);
  VecQueue<int> q;
  std::deque<int> ref;
  int next = 0;
  for (int round = 0; round < 5000; ++round) {
    if (ref.empty() || rng.chance(0.55)) {
      q.push_back(next);
      ref.push_back(next);
      ++next;
    } else {
      ASSERT_EQ(q.front(), ref.front());
      ASSERT_EQ(q.back(), ref.back());
      q.pop_front();
      ref.pop_front();
    }
    ASSERT_EQ(q.size(), ref.size());
    ASSERT_EQ(q.empty(), ref.empty());
  }
  while (!ref.empty()) {
    ASSERT_EQ(q.front(), ref.front());
    q.pop_front();
    ref.pop_front();
  }
  EXPECT_TRUE(q.empty());
}

TEST(VecQueue, CompactionPreservesOrder) {
  // Keep the queue non-empty while popping far past kCompactAt so the
  // dead-prefix compaction triggers; order must be unaffected.
  VecQueue<int> q;
  for (int i = 0; i < 300; ++i) q.push_back(i);
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(q.front(), i);
    q.pop_front();
  }
  for (int i = 300; i < 350; ++i) q.push_back(i);
  for (int i = 200; i < 350; ++i) {
    ASSERT_EQ(q.front(), i);
    q.pop_front();
  }
  EXPECT_TRUE(q.empty());
}

TEST(VecQueue, IterationCoversLiveRange) {
  VecQueue<int> q;
  for (int i = 0; i < 8; ++i) q.push_back(i);
  q.pop_front();
  q.pop_front();
  std::vector<int> seen(q.begin(), q.end());
  EXPECT_EQ(seen, (std::vector<int>{2, 3, 4, 5, 6, 7}));
}

TEST(VecQueue, ClearEmptiesTheQueue) {
  VecQueue<int> q;
  q.push_back(1);
  q.push_back(2);
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  q.push_back(3);
  EXPECT_EQ(q.front(), 3);
}

TEST(VecQueue, MoveOnlyElements) {
  VecQueue<std::unique_ptr<int>> q;
  q.push_back(std::make_unique<int>(5));
  q.push_back(std::make_unique<int>(6));
  EXPECT_EQ(*q.front(), 5);
  auto p = std::move(q.front());
  q.pop_front();
  EXPECT_EQ(*p, 5);
  EXPECT_EQ(*q.front(), 6);
}

// --- BlockPool -------------------------------------------------------------

TEST(BlockPool, RoundTripReturnsUsableAlignedBlocks) {
  for (std::size_t bytes : {1u, 64u, 65u, 256u, 1024u}) {
    void* p = BlockPool::allocate(bytes);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) %
                  alignof(std::max_align_t),
              0u);
    std::memset(p, 0xAB, bytes);  // must own the whole payload
    BlockPool::deallocate(p);
  }
}

TEST(BlockPool, OversizeFallsThroughToHeap) {
  void* p = BlockPool::allocate(64 * 1024);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xCD, 64 * 1024);
  BlockPool::deallocate(p);
}

TEST(BlockPool, NullDeallocateIsNoop) { BlockPool::deallocate(nullptr); }

TEST(BlockPool, SteadyStateReusesBlocks) {
#if defined(CIM_SANITIZE)
  GTEST_SKIP() << "pool passes through to the heap under sanitizers";
#else
  // Warm one class, then round-trip: every allocate must be a pool hit.
  void* warm = BlockPool::allocate(128);
  BlockPool::deallocate(warm);
  const std::uint64_t misses_before = BlockPool::misses();
  for (int i = 0; i < 100; ++i) {
    void* p = BlockPool::allocate(128);
    EXPECT_EQ(p, warm);  // same block recycled every time
    BlockPool::deallocate(p);
  }
  EXPECT_EQ(BlockPool::misses(), misses_before);
#endif
}

TEST(BlockPool, TrimReleasesThisThreadsCache) {
#if defined(CIM_SANITIZE)
  GTEST_SKIP() << "pool passes through to the heap under sanitizers";
#else
  void* a = BlockPool::allocate(64);
  void* b = BlockPool::allocate(512);
  BlockPool::deallocate(a);
  BlockPool::deallocate(b);
  EXPECT_GE(BlockPool::cached_blocks(), 2u);
  BlockPool::trim();
  EXPECT_EQ(BlockPool::cached_blocks(), 0u);
#endif
}

// --- VarStore --------------------------------------------------------------

TEST(VarStore, UnwrittenVariablesReadInitValue) {
  VarStore store;
  EXPECT_EQ(store.get(VarId{0}), kInitValue);
  EXPECT_EQ(store.get(VarId{999}), kInitValue);
  EXPECT_EQ(store.get(VarId{100000}), kInitValue);  // sparse range too
}

TEST(VarStore, SetGetRoundTripDenseRange) {
  VarStore store;
  store.set(VarId{0}, 10);
  store.set(VarId{7}, 17);
  store.set(VarId{700}, 27);  // forces geometric growth
  EXPECT_EQ(store.get(VarId{0}), 10);
  EXPECT_EQ(store.get(VarId{7}), 17);
  EXPECT_EQ(store.get(VarId{700}), 27);
  EXPECT_EQ(store.get(VarId{3}), kInitValue);  // grown slots stay initial
  store.set(VarId{7}, 99);
  EXPECT_EQ(store.get(VarId{7}), 99);
}

TEST(VarStore, SparseIdsSpillToTheMap) {
  VarStore store;
  store.set(VarId{1 << 20}, 5);
  store.set(VarId{0xFFFFFFFF}, 6);
  EXPECT_EQ(store.get(VarId{1 << 20}), 5);
  EXPECT_EQ(store.get(VarId{0xFFFFFFFF}), 6);
  // Dense and sparse ranges do not alias.
  store.set(VarId{1}, 7);
  EXPECT_EQ(store.get(VarId{1}), 7);
  EXPECT_EQ(store.get(VarId{1 << 20}), 5);
}

}  // namespace
}  // namespace cim

// Observation hooks for experiments.
//
// Protocols report every write issue and every replica application so the
// stats layer can measure visibility latency (the paper's `l` and the 3l+2d
// bound of Section 6) without touching protocol internals.
#pragma once

#include <vector>

#include "common/ids.h"
#include "common/value.h"
#include "sim/time.h"

namespace cim::mcs {

class MemoryObserver {
 public:
  virtual ~MemoryObserver() = default;

  /// A write operation w(var)value was issued by `writer` at time `t`.
  virtual void on_write_issued(ProcId writer, VarId var, Value value,
                               sim::Time t) {
    (void)writer; (void)var; (void)value; (void)t;
  }

  /// The replica of `var` at MCS-process `replica` was updated with `value`.
  virtual void on_apply(ProcId replica, VarId var, Value value, sim::Time t) {
    (void)replica; (void)var; (void)value; (void)t;
  }
};

/// Fan-out observer: lets a federation register several trackers after
/// construction while systems hold one stable observer pointer.
class ObserverMux final : public MemoryObserver {
 public:
  void add(MemoryObserver* observer) { observers_.push_back(observer); }

  void on_write_issued(ProcId writer, VarId var, Value value,
                       sim::Time t) override {
    for (MemoryObserver* o : observers_) o->on_write_issued(writer, var, value, t);
  }
  void on_apply(ProcId replica, VarId var, Value value, sim::Time t) override {
    for (MemoryObserver* o : observers_) o->on_apply(replica, var, value, t);
  }

 private:
  std::vector<MemoryObserver*> observers_;
};

}  // namespace cim::mcs

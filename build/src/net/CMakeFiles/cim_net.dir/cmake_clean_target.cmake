file(REMOVE_RECURSE
  "libcim_net.a"
)

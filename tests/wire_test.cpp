// Wire codec tests (src/net/wire.h, docs/WIRE.md).
//
//  * Golden vectors: tests/data/wire_golden_v1.bin pins the v1 byte format
//    bit-for-bit — a codec change that alters any byte fails here and must
//    come with a version bump, not a silent re-encode. Regenerate (after a
//    deliberate, versioned format change only) with
//      CIM_WRITE_GOLDEN=1 ./build/tests/cim_tests --gtest_filter='Wire*'
//  * Round trips: randomized messages of every type survive
//    encode -> decode -> re-encode byte-identically (the encoding is
//    canonical, so byte equality is field equality).
//  * Adversarial inputs: mutated and truncated frames decode to a clean
//    DecodeError — never a crash, never out-of-bounds reads (the sanitize CI
//    job runs this same suite under ASan/UBSan).
//  * Transparency: a federation run over byte-roundtripping links produces
//    the identical history as the default pointer-handoff run.
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "checker/causal_checker.h"
#include "checker/trace_io.h"
#include "common/rng.h"
#include "interconnect/federation.h"
#include "interconnect/pair_msg.h"
#include "msgpass/cbcast.h"
#include "net/reliable_transport.h"
#include "net/wire.h"
#include "protocols/anbkh.h"
#include "protocols/aw_seq.h"
#include "protocols/partial_rep.h"
#include "protocols/update_msg.h"
#include "workload/generator.h"

namespace cim {
namespace {

namespace wire = net::wire;

std::string golden_path() {
  return std::string(CIM_SOURCE_DIR) + "/tests/data/wire_golden_v1.bin";
}

sim::Time at(std::int64_t ns) { return sim::Time{ns}; }

WriteId wid_of(std::uint16_t system, std::uint16_t proc, std::uint32_t seq) {
  return WriteId::make(ProcId{SystemId{system}, proc}, seq);
}

// The canonical golden message list: at least one instance of every wire
// type, plus the structural variants (marker vs full partial update, data
// frame vs standalone ACK, each control code). Append only — reordering or
// editing existing entries invalidates the golden file.
std::vector<net::MessagePtr> golden_messages() {
  std::vector<net::MessagePtr> out;

  auto hello = std::make_unique<wire::ControlMsg>();
  hello->code = wire::ControlMsg::kHello;
  hello->a = 1;
  hello->b = wire::kWireVersion;
  out.push_back(std::move(hello));

  auto done = std::make_unique<wire::ControlMsg>();
  done->code = wire::ControlMsg::kDone;
  done->a = 12345;
  done->b = 800;
  out.push_back(std::move(done));

  auto bye = std::make_unique<wire::ControlMsg>();
  bye->code = wire::ControlMsg::kBye;
  out.push_back(std::move(bye));

  auto pair = std::make_unique<isc::PairMsg>();
  pair->var = VarId{7};
  pair->value = Value{42};
  pair->sent_at = at(1'000'000);
  pair->origin_time = at(500'000);
  pair->write_id = wid_of(1, 3, 9);
  out.push_back(std::move(pair));

  auto neg = std::make_unique<isc::PairMsg>();
  neg->var = VarId{0};
  neg->value = Value{-17};  // zigzag path
  neg->sent_at = at(0);
  neg->origin_time = at(0);
  neg->write_id = WriteId{};
  out.push_back(std::move(neg));

  auto vc = std::make_unique<proto::TimestampedUpdate>();
  vc->var = VarId{3};
  vc->value = Value{1001};
  vc->clock = VectorClock{{3, 0, 250}};
  vc->writer = 2;
  vc->write_id = wid_of(0, 2, 4);
  vc->received_at = at(2'250'000);
  out.push_back(std::move(vc));

  auto pub = std::make_unique<proto::TobPublish>();
  pub->var = VarId{5};
  pub->value = Value{77};
  pub->origin = 4;
  pub->pre_applied = true;
  pub->write_id = wid_of(2, 4, 1);
  out.push_back(std::move(pub));

  auto del = std::make_unique<proto::TobDeliver>();
  del->var = VarId{5};
  del->value = Value{77};
  del->origin = 4;
  del->pre_applied = false;
  del->seq = 31;
  del->write_id = wid_of(2, 4, 1);
  del->received_at = at(3'000'000);
  out.push_back(std::move(del));

  auto partial = std::make_unique<proto::PartialUpdate>();
  partial->var = VarId{2};
  partial->value = Value{9000};
  partial->has_value = true;
  partial->clock = VectorClock{{1, 9}};
  partial->writer = 1;
  partial->write_id = wid_of(0, 1, 7);
  partial->received_at = at(4'000'000);
  out.push_back(std::move(partial));

  auto marker = std::make_unique<proto::PartialUpdate>();
  marker->var = VarId{2};
  marker->has_value = false;  // causal marker: no value on the wire
  marker->clock = VectorClock{{1, 10}};
  marker->writer = 1;
  marker->write_id = wid_of(0, 1, 8);
  marker->received_at = at(4'100'000);
  out.push_back(std::move(marker));

  auto cb = std::make_unique<mp::CbcastMsg>();
  cb->payload.var = VarId{6};
  cb->payload.value = Value{-5};
  cb->payload.wid = wid_of(3, 0, 2);
  cb->clock = VectorClock{{0, 0, 0, 12}};
  cb->sender = 3;
  out.push_back(std::move(cb));

  auto data = std::make_unique<net::TransportFrame>();
  data->seq = 17;
  data->ack = 15;
  auto inner = std::make_unique<isc::PairMsg>();
  inner->var = VarId{1};
  inner->value = Value{64};
  inner->sent_at = at(5'000'000);
  inner->origin_time = at(4'900'000);
  inner->write_id = wid_of(0, 8, 3);
  data->payload = std::move(inner);
  out.push_back(std::move(data));

  auto ack = std::make_unique<net::TransportFrame>();
  ack->seq = 0;
  ack->ack = 18;  // standalone cumulative ACK, no payload
  out.push_back(std::move(ack));

  return out;
}

std::vector<std::uint8_t> encode_all(
    const std::vector<net::MessagePtr>& msgs) {
  std::vector<std::uint8_t> buf;
  for (const net::MessagePtr& m : msgs) wire::encode(*m, buf);
  return buf;
}

TEST(WireGolden, VectorsAreBitIdentical) {
  const std::vector<std::uint8_t> encoded = encode_all(golden_messages());

  if (std::getenv("CIM_WRITE_GOLDEN") != nullptr) {
    std::ofstream os(golden_path(), std::ios::binary);
    ASSERT_TRUE(os) << "cannot write " << golden_path();
    os.write(reinterpret_cast<const char*>(encoded.data()),
             static_cast<std::streamsize>(encoded.size()));
    GTEST_SKIP() << "golden vectors regenerated (" << encoded.size()
                 << " bytes); review the diff and drop CIM_WRITE_GOLDEN";
  }

  std::ifstream is(golden_path(), std::ios::binary);
  ASSERT_TRUE(is) << "missing " << golden_path()
                  << " (regenerate with CIM_WRITE_GOLDEN=1)";
  std::vector<std::uint8_t> golden(
      (std::istreambuf_iterator<char>(is)), std::istreambuf_iterator<char>());

  ASSERT_EQ(encoded.size(), golden.size())
      << "wire format size drifted from the golden vectors";
  EXPECT_EQ(encoded, golden)
      << "wire format bytes drifted from the golden vectors; a format "
         "change needs a version bump and new goldens";
}

TEST(WireGolden, DecodeThenReencodeIsBitIdentical) {
  std::ifstream is(golden_path(), std::ios::binary);
  ASSERT_TRUE(is) << "missing " << golden_path();
  std::vector<std::uint8_t> golden(
      (std::istreambuf_iterator<char>(is)), std::istreambuf_iterator<char>());
  ASSERT_FALSE(golden.empty());

  std::vector<std::uint8_t> reencoded;
  std::size_t offset = 0;
  std::size_t frames = 0;
  while (offset < golden.size()) {
    wire::DecodeResult res =
        wire::decode(golden.data() + offset, golden.size() - offset);
    ASSERT_TRUE(res.ok()) << "frame " << frames << ": " << res.error;
    wire::encode(*res.msg, reencoded);
    offset += res.consumed;
    ++frames;
  }
  EXPECT_EQ(frames, golden_messages().size());
  EXPECT_EQ(reencoded, golden);
}

// ---- randomized round trips -----------------------------------------------

VectorClock random_clock(Rng& rng) {
  // Sizes straddle the inline/spill boundary (VectorClock::kInline == 8).
  const std::size_t n = rng.uniform(0, 12);
  VectorClock clock(n);
  for (std::size_t i = 0; i < n; ++i) clock.set(i, rng.next() >> 32);
  return clock;
}

Value random_value(Rng& rng) {
  // Signed, full-range magnitudes to exercise every zigzag length.
  const auto raw = static_cast<std::int64_t>(rng.next());
  return raw >> rng.uniform(0, 63);
}

WriteId random_wid(Rng& rng) { return WriteId{rng.next()}; }

sim::Time random_time(Rng& rng) {
  return sim::Time{static_cast<std::int64_t>(rng.next() >> 1)};
}

net::MessagePtr random_message(Rng& rng, int type, bool allow_nested) {
  switch (type) {
    case 0: {
      auto m = std::make_unique<wire::ControlMsg>();
      m->code = static_cast<wire::ControlMsg::Code>(rng.uniform(1, 3));
      m->a = rng.next();
      m->b = rng.next();
      return m;
    }
    case 1: {
      auto m = std::make_unique<isc::PairMsg>();
      m->var = VarId{static_cast<std::uint32_t>(rng.next())};
      m->value = random_value(rng);
      m->sent_at = random_time(rng);
      m->origin_time = random_time(rng);
      m->write_id = random_wid(rng);
      return m;
    }
    case 2: {
      auto m = std::make_unique<proto::TimestampedUpdate>();
      m->var = VarId{static_cast<std::uint32_t>(rng.next())};
      m->value = random_value(rng);
      m->clock = random_clock(rng);
      m->writer = static_cast<std::uint16_t>(rng.next());
      m->write_id = random_wid(rng);
      m->received_at = random_time(rng);
      return m;
    }
    case 3: {
      auto m = std::make_unique<proto::TobPublish>();
      m->var = VarId{static_cast<std::uint32_t>(rng.next())};
      m->value = random_value(rng);
      m->origin = static_cast<std::uint16_t>(rng.next());
      m->pre_applied = rng.chance(0.5);
      m->write_id = random_wid(rng);
      return m;
    }
    case 4: {
      auto m = std::make_unique<proto::TobDeliver>();
      m->var = VarId{static_cast<std::uint32_t>(rng.next())};
      m->value = random_value(rng);
      m->origin = static_cast<std::uint16_t>(rng.next());
      m->pre_applied = rng.chance(0.5);
      m->seq = rng.next();
      m->write_id = random_wid(rng);
      m->received_at = random_time(rng);
      return m;
    }
    case 5: {
      auto m = std::make_unique<proto::PartialUpdate>();
      m->var = VarId{static_cast<std::uint32_t>(rng.next())};
      m->has_value = rng.chance(0.5);
      if (m->has_value) m->value = random_value(rng);
      m->clock = random_clock(rng);
      m->writer = static_cast<std::uint16_t>(rng.next());
      m->write_id = random_wid(rng);
      m->received_at = random_time(rng);
      return m;
    }
    case 6: {
      auto m = std::make_unique<mp::CbcastMsg>();
      m->payload.var = VarId{static_cast<std::uint32_t>(rng.next())};
      m->payload.value = random_value(rng);
      m->payload.wid = random_wid(rng);
      m->clock = random_clock(rng);
      m->sender = static_cast<std::uint16_t>(rng.next());
      return m;
    }
    case 8: {
      auto m = std::make_unique<wire::StatsFrame>();
      m->origin = rng.uniform(0, 4095);
      m->t_ns = rng.next() >> 1;
      const std::size_t n = rng.uniform(0, 24);
      for (std::size_t i = 0; i < n; ++i) {
        std::string key;
        const std::size_t len = rng.uniform(0, wire::kMaxStatsKeyBytes);
        for (std::size_t k = 0; k < len; ++k)
          key.push_back(static_cast<char>('a' + rng.uniform(0, 25)));
        m->entries.emplace_back(std::move(key),
                                static_cast<std::int64_t>(random_value(rng)));
      }
      return m;
    }
    default: {
      auto m = std::make_unique<net::TransportFrame>();
      m->seq = rng.next();
      m->ack = rng.next();
      if (allow_nested && rng.chance(0.7)) {
        m->payload =
            random_message(rng, static_cast<int>(rng.uniform(0, 6)), false);
      }
      if (rng.chance(0.5)) {  // heartbeat timestamp tail (transport v2)
        m->ts_orig = rng.chance(0.8) ? (rng.next() >> 1) : 0;
        m->ts_rx = rng.next() >> 1;
        m->ts_tx = rng.next() >> 1;
      }
      return m;
    }
  }
}

TEST(WireFuzz, TenThousandRoundTripsPerType) {
  constexpr int kPerType = 10'000;
  Rng rng(0xC0DEC);
  std::vector<std::uint8_t> buf;
  std::vector<std::uint8_t> rebuf;
  for (int type = 0; type <= 8; ++type) {
    for (int i = 0; i < kPerType; ++i) {
      const net::MessagePtr msg = random_message(rng, type, true);
      buf.clear();
      const std::size_t n = wire::encode(*msg, buf);
      ASSERT_EQ(n, buf.size());

      const wire::DecodeResult res = wire::decode(buf.data(), buf.size());
      ASSERT_TRUE(res.ok()) << wire::wire_type_label(
                                   static_cast<wire::WireType>(type))
                            << " #" << i << ": " << res.error;
      ASSERT_EQ(res.consumed, buf.size());
      EXPECT_STREQ(res.msg->type_name(), msg->type_name());

      // Canonical encoding: byte equality of the re-encode is field
      // equality of the round-tripped message.
      rebuf.clear();
      wire::encode(*res.msg, rebuf);
      ASSERT_EQ(rebuf, buf)
          << wire::wire_type_label(static_cast<wire::WireType>(type))
          << " #" << i << " did not survive the round trip";
    }
  }
}

TEST(WireFuzz, MutatedAndTruncatedBuffersFailCleanly) {
  constexpr int kCases = 10'000;
  Rng rng(0xBADF00D);
  std::vector<std::uint8_t> buf;
  int clean_errors = 0;
  for (int i = 0; i < kCases; ++i) {
    const net::MessagePtr msg =
        random_message(rng, static_cast<int>(rng.uniform(0, 8)), true);
    buf.clear();
    wire::encode(*msg, buf);

    switch (rng.uniform(0, 2)) {
      case 0:  // truncate anywhere (possibly to zero)
        buf.resize(rng.uniform(0, buf.size() - 1));
        break;
      case 1: {  // flip bits somewhere
        const std::size_t pos = rng.uniform(0, buf.size() - 1);
        buf[pos] ^= static_cast<std::uint8_t>(rng.uniform(1, 255));
        break;
      }
      default: {  // scribble over the length prefix
        for (std::size_t b = 0; b < 4 && b < buf.size(); ++b) {
          buf[b] = static_cast<std::uint8_t>(rng.next());
        }
        break;
      }
    }

    // Mutated input must either decode (a mutation can land in a don't-care
    // position or produce a different valid frame) or fail with a clean
    // static error — never crash, never read out of bounds (ASan enforces
    // the latter in the sanitize job).
    const wire::DecodeResult res = wire::decode(buf.data(), buf.size());
    if (!res.ok()) {
      ++clean_errors;
      EXPECT_EQ(res.msg, nullptr);
      EXPECT_EQ(res.consumed, 0u);
      ASSERT_NE(res.error, nullptr);
    } else {
      ASSERT_NE(res.msg, nullptr);
      ASSERT_GE(res.consumed, 6u);
    }
  }
  // Random damage overwhelmingly produces invalid frames; if it somehow
  // did not, the mutator is broken.
  EXPECT_GT(clean_errors, kCases / 2);
}

TEST(WireDecode, RejectsUnknownTypeAndVersion) {
  std::vector<std::uint8_t> buf;
  auto msg = std::make_unique<wire::ControlMsg>();
  wire::encode(*msg, buf);

  std::vector<std::uint8_t> bad_type = buf;
  bad_type[4] = 0xEE;  // type byte
  EXPECT_FALSE(wire::decode(bad_type.data(), bad_type.size()).ok());

  std::vector<std::uint8_t> bad_version = buf;
  bad_version[5] = 0x7F;  // version byte
  const wire::DecodeResult res =
      wire::decode(bad_version.data(), bad_version.size());
  ASSERT_FALSE(res.ok());
  EXPECT_NE(std::string(res.error).find("version"), std::string::npos);
}

TEST(WireControlV2, RejoinCursorRoundTripsAndV1StaysBitIdentical) {
  // c == 0 encodes exactly as before the field existed: the version byte
  // stays v1 and no tail is appended, so old captures and the golden file
  // decode unchanged.
  wire::ControlMsg plain;
  plain.code = wire::ControlMsg::kDone;
  plain.a = 99;
  plain.b = 3;
  std::vector<std::uint8_t> buf;
  wire::encode(plain, buf);
  EXPECT_EQ(buf[5], wire::kWireVersion);

  // A rejoin carries the delivery cursor in c and flips to v2.
  wire::ControlMsg rejoin;
  rejoin.code = wire::ControlMsg::kRejoin;
  rejoin.a = 4;
  rejoin.b = 0xDEADBEEFCAFEULL;  // session id
  rejoin.c = 123'456'789;        // last-delivered seq
  std::vector<std::uint8_t> v2;
  wire::encode(rejoin, v2);
  EXPECT_EQ(v2[5], wire::kControlVersion2);

  const wire::DecodeResult res = wire::decode(v2.data(), v2.size());
  ASSERT_TRUE(res.ok()) << res.error;
  const auto* back = dynamic_cast<const wire::ControlMsg*>(res.msg.get());
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->code, wire::ControlMsg::kRejoin);
  EXPECT_EQ(back->a, 4u);
  EXPECT_EQ(back->b, 0xDEADBEEFCAFEULL);
  EXPECT_EQ(back->c, 123'456'789u);

  // And v1 decodes still default c to 0.
  const wire::DecodeResult res1 = wire::decode(buf.data(), buf.size());
  ASSERT_TRUE(res1.ok()) << res1.error;
  EXPECT_EQ(dynamic_cast<const wire::ControlMsg*>(res1.msg.get())->c, 0u);
}

TEST(WireTransportV2, HeartbeatTimestampsRoundTripAndV1StaysBitIdentical) {
  // A plain data frame or ACK (no timestamps) encodes exactly as before the
  // field existed: version byte v1, no tail — golden captures decode
  // unchanged and data-path bytes don't grow.
  net::TransportFrame plain;
  plain.ack = 41;
  std::vector<std::uint8_t> v1;
  wire::encode(plain, v1);
  EXPECT_EQ(v1[5], wire::kWireVersion);

  // A heartbeat stamps the NTP triple and flips to transport v2.
  net::TransportFrame hb;
  hb.ack = 41;
  hb.ts_orig = 1'000'000;
  hb.ts_rx = 1'000'900;
  hb.ts_tx = 2'500'000;
  std::vector<std::uint8_t> v2;
  wire::encode(hb, v2);
  EXPECT_EQ(v2[5], wire::kTransportVersion2);
  EXPECT_EQ(v2.size(), v1.size() + 24);  // exactly the three u64 tail

  const wire::DecodeResult res = wire::decode(v2.data(), v2.size());
  ASSERT_TRUE(res.ok()) << res.error;
  const auto* back = dynamic_cast<const net::TransportFrame*>(res.msg.get());
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->ack, 41u);
  EXPECT_EQ(back->ts_orig, 1'000'000u);
  EXPECT_EQ(back->ts_rx, 1'000'900u);
  EXPECT_EQ(back->ts_tx, 2'500'000u);

  // v1 decodes default the triple to zero.
  const wire::DecodeResult res1 = wire::decode(v1.data(), v1.size());
  ASSERT_TRUE(res1.ok()) << res1.error;
  const auto* old = dynamic_cast<const net::TransportFrame*>(res1.msg.get());
  EXPECT_EQ(old->ts_orig, 0u);
  EXPECT_EQ(old->ts_tx, 0u);
}

TEST(WireStats, RoundTripsAndEnforcesDecodeLimits) {
  wire::StatsFrame stats;
  stats.origin = 3;
  stats.t_ns = 123'456'789;
  stats.entries = {{"pairs_sent", 120},
                   {"peer.1.rtt_ns", 830'000},
                   {"peer.1.offset_ns", -412}};
  std::vector<std::uint8_t> buf;
  wire::encode(stats, buf);

  const wire::DecodeResult res = wire::decode(buf.data(), buf.size());
  ASSERT_TRUE(res.ok()) << res.error;
  const auto* back = dynamic_cast<const wire::StatsFrame*>(res.msg.get());
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->origin, 3u);
  EXPECT_EQ(back->t_ns, 123'456'789u);
  ASSERT_EQ(back->entries.size(), 3u);
  EXPECT_EQ(back->entries[1].first, "peer.1.rtt_ns");
  EXPECT_EQ(back->entries[2].second, -412);

  // An entry count past kMaxStatsEntries is rejected before any allocation
  // proportional to it.
  wire::StatsFrame huge;
  huge.entries.assign(wire::kMaxStatsEntries + 1, {"k", 1});
  std::vector<std::uint8_t> big;
  wire::encode(huge, big);
  const wire::DecodeResult too_many = wire::decode(big.data(), big.size());
  ASSERT_FALSE(too_many.ok());
  EXPECT_NE(std::string(too_many.error).find("stats"), std::string::npos);

  // So is an oversized key.
  wire::StatsFrame longkey;
  longkey.entries = {{std::string(wire::kMaxStatsKeyBytes + 1, 'x'), 7}};
  std::vector<std::uint8_t> bigkey;
  wire::encode(longkey, bigkey);
  const wire::DecodeResult bad_key = wire::decode(bigkey.data(), bigkey.size());
  ASSERT_FALSE(bad_key.ok());
  EXPECT_NE(std::string(bad_key.error).find("stats"), std::string::npos);
}

// ---- transparency: bytes-mode federation == in-memory federation ----------

chk::History run_federation(isc::LinkWire wire_mode) {
  isc::FederationConfig cfg;
  for (std::uint16_t s = 0; s < 2; ++s) {
    mcs::SystemConfig sys;
    sys.id = SystemId{s};
    sys.num_app_processes = 3;
    sys.protocol = proto::anbkh_protocol();
    sys.seed = 7 + s;
    cfg.systems.push_back(std::move(sys));
  }
  isc::LinkSpec link;
  link.system_a = 0;
  link.system_b = 1;
  cfg.links.push_back(std::move(link));
  cfg.link_wire = wire_mode;
  isc::Federation fed(std::move(cfg));

  wl::UniformConfig wc;
  wc.ops_per_process = 30;
  wc.seed = 23;
  auto runners = wl::install_uniform(fed, wc);
  fed.run();
  return fed.federation_history();
}

TEST(WireLoopback, ByteRoundTrippedFederationHistoryIsIdentical) {
  const chk::History in_memory = run_federation(isc::LinkWire::kInMemory);
  const chk::History bytes = run_federation(isc::LinkWire::kLoopbackBytes);

  std::ostringstream a, b;
  chk::write_trace(in_memory, a);
  chk::write_trace(bytes, b);
  EXPECT_EQ(a.str(), b.str())
      << "the loopback byte round trip changed the execution";
  EXPECT_TRUE(chk::CausalChecker{}.check(bytes).ok());
}

}  // namespace
}  // namespace cim

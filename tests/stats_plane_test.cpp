// Federation observability plane (docs/OBSERVABILITY.md "Federation
// snapshot", docs/TRACE_TOOLS.md "merge"): stats routing toward node 0,
// the aggregator's newest-wins fold and atomic snapshot, heartbeat
// RTT/offset estimation under injected faults, offset-table chaining, and
// the cross-node trace merge stitching the same spans a single-process run
// produces.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "helpers.h"
#include "interconnect/topology.h"
#include "mesh/mesh_node.h"
#include "mesh/stats_plane.h"
#include "net/fault_inject.h"
#include "net/wire.h"
#include "obs/span_index.h"
#include "obs/trace_merge.h"
#include "obs/trace_read.h"

namespace cim {
namespace {

using isc::Topology;
using net::wire::StatsFrame;

std::uint16_t test_port(std::uint16_t offset) {
  // Same scheme as bridge_mesh_test, different offset range (120+): the two
  // files' meshes must not collide under ctest -j.
  return static_cast<std::uint16_t>(
      20000 + (static_cast<std::uint32_t>(::getpid()) * 131) % 30000 + offset);
}

std::string tmp_path(const char* stem) {
  return std::string("/tmp/cim_") + stem + "_" + std::to_string(::getpid()) +
         ".json";
}

// ---- stats_parent ----------------------------------------------------------

TEST(StatsPlane, ParentIsTheTreePathTowardNode0) {
  const Topology btree = isc::make_btree(7);  // 0 -> {1,2}, 1 -> {3,4}, ...
  EXPECT_EQ(mesh::stats_parent(btree, 0), Topology::npos);
  EXPECT_EQ(mesh::stats_parent(btree, 1), 0u);
  EXPECT_EQ(mesh::stats_parent(btree, 2), 0u);
  EXPECT_EQ(mesh::stats_parent(btree, 3), 1u);
  EXPECT_EQ(mesh::stats_parent(btree, 6), 2u);
  const Topology chain = isc::make_chain(4);
  EXPECT_EQ(mesh::stats_parent(chain, 3), 2u);
  const Topology star = isc::make_star(5);
  for (std::size_t i = 1; i < 5; ++i)
    EXPECT_EQ(mesh::stats_parent(star, i), 0u);
}

// ---- FedAggregator ---------------------------------------------------------

StatsFrame frame(std::uint64_t origin, std::uint64_t t_ns,
                 std::int64_t marker) {
  StatsFrame f;
  f.origin = origin;
  f.t_ns = t_ns;
  f.entries.emplace_back("marker", marker);
  return f;
}

TEST(StatsPlane, AggregatorKeepsTheNewestFramePerOrigin) {
  mesh::FedAggregator agg;
  agg.fold(frame(1, 100, 11));
  agg.fold(frame(2, 100, 22));
  agg.fold(frame(1, 200, 12));  // newer: replaces
  agg.fold(frame(2, 50, 21));   // older (reconnect replay): dropped
  EXPECT_EQ(agg.frames_folded(), 4u);
  EXPECT_EQ(agg.origins(), (std::vector<std::uint64_t>{1, 2}));

  const std::string path = tmp_path("fed_agg");
  ASSERT_TRUE(agg.write_json(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::ostringstream text;
  text << in.rdbuf();
  const std::string json = text.str();
  // The snapshot carries the schema-v5 meta header and per-origin gauges —
  // the newest marker per origin, never the superseded one.
  EXPECT_NE(json.find("\"kind\":\"federation\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\":5"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"fed.nodes\",\"kind\":\"gauge\","
                      "\"value\":2"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("fed.node.1.marker"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"fed.node.1.marker\",\"kind\":\"gauge\","
                      "\"value\":12"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"name\":\"fed.node.2.marker\",\"kind\":\"gauge\","
                      "\"value\":22"),
            std::string::npos)
      << json;
  std::remove(path.c_str());
}

// ---- offset-table chaining -------------------------------------------------

TEST(TraceMerge, OffsetsChainAlongTheTreeFromNode0) {
  // clock(1) = clock(0) + 100; clock(3) = clock(1) + 50 -> rel 150.
  const std::string json =
      "{\"schema\":\"cim.metrics.v1\",\"v\":5,\"metrics\":["
      "{\"name\":\"fed.node.0.peer.1.offset_ns\",\"kind\":\"gauge\","
      "\"value\":100},"
      "{\"name\":\"fed.node.1.peer.3.offset_ns\",\"kind\":\"gauge\","
      "\"value\":50},"
      "{\"name\":\"fed.node.3.peer.1.offset_ns\",\"kind\":\"gauge\","
      "\"value\":-50},"
      "{\"name\":\"fed.node.0.bytes_out\",\"kind\":\"gauge\",\"value\":9}"
      "]}";
  obs::NodeOffsets offsets;
  std::string error;
  ASSERT_TRUE(obs::load_offsets_json(json, offsets, &error)) << error;
  ASSERT_EQ(offsets.rel_node0.size(), 3u);
  EXPECT_EQ(offsets.rel_node0.at(0), 0);
  EXPECT_EQ(offsets.rel_node0.at(1), 100);
  EXPECT_EQ(offsets.rel_node0.at(3), 150);

  obs::NodeOffsets bad;
  EXPECT_FALSE(obs::load_offsets_json("{\"no\":\"metrics\"}", bad, &error));
}

// ---- clock_sample alignment ------------------------------------------------

obs::ParsedTraceEvent synthetic_event(std::int64_t t, const char* name,
                                      std::int64_t steady_ns = 0,
                                      std::uint64_t node = 0) {
  std::ostringstream line;
  line << "{\"v\":4,\"seq\":0,\"t\":" << t << ",\"cat\":\"sim\",\"ev\":\""
       << name << "\",\"f\":{";
  if (std::string(name) == "clock_sample") {
    line << "\"steady_ns\":" << steady_ns << ",\"node\":" << node;
  }
  line << "}}";
  obs::ParsedTraceEvent ev;
  std::string error;
  EXPECT_TRUE(obs::parse_trace_line(line.str(), ev, &error)) << error;
  return ev;
}

TEST(TraceMerge, AlignsVirtualTimePiecewiseLinearlyAndAppliesOffsets) {
  // Virtual 1000..2000 maps onto steady 5000..7000 (slope 2); outside the
  // sampled range the nearest sample extends with slope 1.
  obs::MergeInput in;
  in.label = "n1";
  in.events.push_back(synthetic_event(1000, "clock_sample", 5000, 1));
  in.events.push_back(synthetic_event(2000, "clock_sample", 7000, 1));
  in.events.push_back(synthetic_event(1500, "mid"));
  in.events.push_back(synthetic_event(900, "before"));
  in.events.push_back(synthetic_event(2100, "after"));

  obs::NodeOffsets offsets;
  offsets.rel_node0[1] = 1000;  // clock(1) = clock(0) + 1000
  const obs::MergeResult merged = obs::merge_traces({in}, offsets);
  ASSERT_EQ(merged.events.size(), 5u);
  EXPECT_EQ(merged.aligned_inputs, 1u);
  auto t_of = [&](const std::string& name) -> std::int64_t {
    for (const obs::ParsedTraceEvent& ev : merged.events)
      if (ev.name == name) return ev.t;
    return INT64_MIN;
  };
  EXPECT_EQ(t_of("mid"), 6000 - 1000);
  EXPECT_EQ(t_of("before"), 4900 - 1000);
  EXPECT_EQ(t_of("after"), 7100 - 1000);
  // Sorted by aligned time, seq renumbered.
  for (std::size_t i = 1; i < merged.events.size(); ++i) {
    EXPECT_LE(merged.events[i - 1].t, merged.events[i].t);
    EXPECT_EQ(merged.events[i].seq, i);
  }
}

// ---- span-stitch equivalence -----------------------------------------------

// The merge contract that makes cross-node timelines trustworthy: WriteId is
// globally unique, so splitting one traced run into per-system files and
// merging them back must reconstruct exactly the spans of the unsplit trace.
TEST(TraceMerge, SplitBySystemThenMergeStitchesTheSameSpans) {
  isc::FederationConfig cfg = test::two_systems(2, proto::anbkh_protocol(),
                                                proto::anbkh_protocol(), 11);
  cfg.obs.trace.enabled = true;
  isc::Federation fed(std::move(cfg));
  for (Value v = 1; v <= 6; ++v) fed.system(0).app(0).write(test::X, v);
  fed.system(1).app(0).write(test::Y, 100);
  fed.run();

  std::ostringstream os;
  fed.observability().trace().write_jsonl(os);
  std::istringstream in(os.str());
  std::vector<std::string> errors;
  const std::vector<obs::ParsedTraceEvent> all =
      obs::read_trace_jsonl(in, &errors);
  ASSERT_TRUE(errors.empty());
  ASSERT_FALSE(all.empty());

  // Split by system id (events with no proc affinity go to file 0) — the
  // per-OS-process trace files of a mesh run, in miniature.
  std::vector<obs::MergeInput> inputs(2);
  inputs[0].label = "sys0";
  inputs[1].label = "sys1";
  for (const obs::ParsedTraceEvent& ev : all) {
    ProcId p{};
    const bool has_proc = ev.field_proc("proc", p) ||
                          ev.field_proc("dst", p) || ev.field_proc("src", p);
    inputs[has_proc && p.system.value == 1 ? 1 : 0].events.push_back(ev);
  }
  ASSERT_FALSE(inputs[0].events.empty());
  ASSERT_FALSE(inputs[1].events.empty());

  const obs::MergeResult merged =
      obs::merge_traces(inputs, obs::NodeOffsets{});
  // No clock_samples in an in-process run: both halves stay on the shared
  // virtual clock and the merge warns instead of aligning.
  EXPECT_EQ(merged.aligned_inputs, 0u);
  EXPECT_EQ(merged.events.size(), all.size());

  obs::SpanIndex split_spans;
  split_spans.index(merged.events);
  obs::SpanIndex whole_spans;
  whole_spans.index(all);
  ASSERT_EQ(split_spans.size(), whole_spans.size());
  std::size_t cross_system_hops = 0;
  for (WriteId wid : whole_spans.wids()) {
    const obs::WriteSpan* a = whole_spans.span(wid);
    const obs::WriteSpan* b = split_spans.span(wid);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->applies.size(), b->applies.size());
    EXPECT_EQ(a->pair_outs.size(), b->pair_outs.size());
    EXPECT_EQ(a->pair_ins.size(), b->pair_ins.size());
    EXPECT_EQ(a->issue_t, b->issue_t);
    for (const obs::WriteSpan::PairIn& p : b->pair_ins)
      if (p.proc.system.value != wid.origin().system.value)
        ++cross_system_hops;
  }
  // At least one write's span crosses the system boundary in the merged
  // view — the stitch the mesh acceptance run asserts end-to-end.
  EXPECT_GT(cross_system_hops, 0u);

  // The merged stream re-serializes into valid trace JSONL.
  std::ostringstream round;
  obs::write_trace_jsonl(round, merged.events);
  std::istringstream round_in(round.str());
  errors.clear();
  const auto reparsed = obs::read_trace_jsonl(round_in, &errors);
  EXPECT_TRUE(errors.empty()) << errors.front();
  EXPECT_EQ(reparsed.size(), merged.events.size());
}

// ---- heartbeat RTT / offset over real sockets ------------------------------

// Spin until `pred`, failing the test (and returning false) after `budget`.
template <typename Pred>
bool spin_until(Pred pred, std::chrono::milliseconds budget =
                               std::chrono::milliseconds(10'000)) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) {
      ADD_FAILURE() << "spin_until timed out";
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

TEST(MeshStats, HeartbeatRttWidensUnderStallButOffsetStaysBounded) {
  // 2-chain, tiny workload, fast heartbeats, and node 1's writes stalled
  // from the moment the sessions are up. The stall holds the run open (node
  // 1's pairs and its done can't flush), while node 1's tick keeps stamping
  // echo heartbeats (t3) that sit in the stalled queue — when the flush
  // burst finally lands, node 0 computes RTT samples inflated by the queue
  // wait. The NTP bound must survive the abuse: offset is taken at the
  // minimum-RTT exchange and the true offset is 0 (both processes share one
  // CLOCK_MONOTONIC), so |offset| <= best_rtt/2 always — even when every
  // observed sample is stall-inflated.
  net::FaultHooks hooks;
  std::vector<std::unique_ptr<mesh::MeshNode>> nodes;
  for (std::size_t i = 0; i < 2; ++i) {
    mesh::MeshConfig cfg;
    cfg.node_id = i;
    cfg.topo = isc::make_chain(2);
    cfg.base_port = test_port(120);
    cfg.procs = 2;
    cfg.ops = 2;  // keep data pressure off the heartbeat queue slot
    cfg.seed = 5;
    cfg.join_timeout_ms = 20'000;
    cfg.hb_interval_ms = 20;
    cfg.liveness_timeout_ms = 5000;  // the stall must degrade, not kill
    cfg.faults = i == 1 ? &hooks : nullptr;
    nodes.push_back(std::make_unique<mesh::MeshNode>(std::move(cfg)));
  }
  hooks.stall_writes.store(true);  // before run(): no pre-stall drain race
  std::vector<mesh::MeshResult> results(2);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < 2; ++i) {
    threads.emplace_back([&, i] {
      if (nodes[i]->join()) results[i] = nodes[i]->run();
    });
  }
  while (!nodes[0]->sessions_ready() || !nodes[1]->sessions_ready())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  // ~15 heartbeat ticks on each side while node 1's queue is dammed.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  hooks.stall_writes.store(false);
  for (auto& t : threads) t.join();
  for (std::size_t i = 0; i < 2; ++i)
    ASSERT_TRUE(results[i].ok) << "node " << i << ": " << nodes[i]->error();

  // Node 0 (the unstalled side) received node 1's queued echoes in the
  // post-stall burst: at least one exchange, and the early-stamped ones
  // carry the queue wait as RTT.
  mesh::LinkSession& s0 = nodes[0]->session(0);
  ASSERT_GE(s0.rtt_count(), 1u);
  std::int64_t max_rtt = 0;
  for (std::int64_t sample : s0.rtt_samples())
    max_rtt = std::max(max_rtt, sample);
  EXPECT_GE(max_rtt, 100'000'000) << "stall never widened the RTT";

  for (std::size_t i = 0; i < 2; ++i) {
    mesh::LinkSession& s = nodes[i]->session(0);
    if (s.rtt_count() == 0) continue;  // node 1 may drain before a sample
    const std::int64_t best = s.best_rtt_ns();
    ASSERT_GE(best, 0) << "node " << i;
    for (std::int64_t sample : s.rtt_samples()) EXPECT_GE(sample, best);
    // The NTP error bound, checkable because the true offset is 0 here:
    // the estimate kept at the minimum-RTT exchange is off by at most
    // rtt/2 (plus scheduling slack).
    EXPECT_LE(std::abs(s.clock_offset_ns()), best / 2 + 2'000'000)
        << "node " << i;
  }
}

// ---- federation-wide snapshot over real sockets ----------------------------

TEST(MeshStats, Node0SnapshotCoversEveryNodeOfABtree4) {
  const std::string fed_path = tmp_path("fed_snapshot");
  std::remove(fed_path.c_str());
  std::vector<std::unique_ptr<mesh::MeshNode>> nodes;
  for (std::size_t i = 0; i < 4; ++i) {
    mesh::MeshConfig cfg;
    cfg.node_id = i;
    cfg.topo = isc::make_btree(4);
    cfg.base_port = test_port(130);
    cfg.procs = 2;
    cfg.ops = 30;
    cfg.seed = 9;
    cfg.join_timeout_ms = 20'000;
    cfg.stats_interval_ms = 25;
    if (i == 0) cfg.fed_metrics_path = fed_path;
    nodes.push_back(std::make_unique<mesh::MeshNode>(std::move(cfg)));
  }
  std::vector<mesh::MeshResult> results(4);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < 4; ++i) {
    threads.emplace_back([&, i] {
      if (nodes[i]->join()) results[i] = nodes[i]->run();
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t i = 0; i < 4; ++i)
    ASSERT_TRUE(results[i].ok) << "node " << i << ": " << nodes[i]->error();

  std::ifstream in(fed_path);
  ASSERT_TRUE(in.is_open()) << fed_path;
  std::ostringstream text;
  text << in.rdbuf();
  obs::JsonValue doc;
  std::string error;
  ASSERT_TRUE(obs::parse_json(text.str(), doc, &error)) << error;
  const obs::JsonValue* metrics = doc.find("metrics");
  ASSERT_NE(metrics, nullptr);
  std::set<std::string> names;
  for (const obs::JsonValue& m : metrics->items) {
    const obs::JsonValue* name = m.find("name");
    if (name != nullptr) names.insert(name->s);
  }
  // One frame from every node reached node 0 up the tree, and each carries
  // the per-peer link health keys cim_top renders.
  for (int i = 0; i < 4; ++i) {
    const std::string p = "fed.node." + std::to_string(i) + ".";
    EXPECT_TRUE(names.count(p + "t_ns")) << p;
    EXPECT_TRUE(names.count(p + "generation")) << p;
    EXPECT_TRUE(names.count(p + "bytes_out")) << p;
  }
  EXPECT_TRUE(names.count("fed.node.3.peer.1.pairs_delivered"));
  EXPECT_TRUE(names.count("fed.node.0.peer.1.rtt_count"));
  EXPECT_TRUE(names.count("fed.node.0.peer.2.offset_ns"));

  // The offsets loader accepts the real snapshot and reaches every node.
  obs::NodeOffsets offsets;
  ASSERT_TRUE(obs::load_offsets_json(text.str(), offsets, &error)) << error;
  for (std::uint64_t n = 0; n < 4; ++n)
    EXPECT_TRUE(offsets.rel_node0.count(n)) << n;
  std::remove(fed_path.c_str());
}

}  // namespace
}  // namespace cim

#include "mcs/app_process.h"

#include <utility>

#include "common/check.h"

namespace cim::mcs {

AppProcess::AppProcess(ProcId id, bool is_isp, McsProcess& mcs,
                       chk::Recorder& recorder, sim::Simulator& simulator)
    : id_(id), is_isp_(is_isp), mcs_(mcs), recorder_(recorder),
      sim_(simulator) {}

void AppProcess::read(VarId var, ReadCallback k) {
  Request req;
  req.kind = chk::OpKind::kRead;
  req.var = var;
  req.on_read = std::move(k);
  enqueue(std::move(req));
}

void AppProcess::write(VarId var, Value value, WriteCallback k) {
  Request req;
  req.kind = chk::OpKind::kWrite;
  req.var = var;
  req.value = value;
  req.on_write = std::move(k);
  enqueue(std::move(req));
}

void AppProcess::read_now(VarId var, ReadCallback k) {
  const OpId op = recorder_.begin(id_, is_isp_, chk::OpKind::kRead, var,
                                  kInitValue, sim_.now());
  bool responded = false;
  mcs_.handle_read(var, [this, op, k = std::move(k), &responded](Value v) {
    recorder_.end_read(op, v, sim_.now());
    ++completed_;
    responded = true;
    if (k) k(v);
  });
  // Condition (b): reads issued while processing upcalls must finish, and in
  // this implementation all protocols serve reads synchronously.
  CIM_CHECK_MSG(responded, "read_now must be served synchronously");
}

void AppProcess::enqueue(Request req) {
  queue_.push_back(std::move(req));
  pump();
}

void AppProcess::pump() {
  if (pumping_) return;
  pumping_ = true;
  while (!busy_ && !queue_.empty()) {
    Request req = std::move(queue_.front());
    queue_.pop_front();
    issue(std::move(req));
  }
  pumping_ = false;
}

void AppProcess::issue(Request req) {
  busy_ = true;
  if (req.kind == chk::OpKind::kRead) {
    const OpId op = recorder_.begin(id_, is_isp_, chk::OpKind::kRead, req.var,
                                    kInitValue, sim_.now());
    mcs_.handle_read(req.var,
                     [this, op, k = std::move(req.on_read)](Value v) {
                       recorder_.end_read(op, v, sim_.now());
                       ++completed_;
                       busy_ = false;
                       if (k) k(v);
                       pump();
                     });
  } else {
    const OpId op = recorder_.begin(id_, is_isp_, chk::OpKind::kWrite, req.var,
                                    req.value, sim_.now());
    mcs_.handle_write(req.var, req.value,
                      [this, op, k = std::move(req.on_write)]() {
                        recorder_.end_write(op, sim_.now());
                        ++completed_;
                        busy_ = false;
                        if (k) k();
                        pump();
                      });
  }
}

}  // namespace cim::mcs

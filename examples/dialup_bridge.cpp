// Dial-up bridge (Section 1.1): two offices share a causal memory but their
// link is only brought up during scheduled sync windows. Writes made while
// the link is down queue at the IS-processes and drain, in causal order,
// when the next window opens — "this makes the protocol practical even with
// dial-up connections."
//
// Timeline (simulated minutes compressed to milliseconds):
//   windows:  [100ms,110ms) and [300ms,310ms), link up forever after 600ms
//   09:00 (t=20ms)  office A files report_q1 = 1
//   09:10 (t=40ms)  office A files report_q2 = 2
//   10:00 (t=150ms) office B annotates report_q1 (after first sync)
//   ...
#include <iomanip>
#include <iostream>

#include "checker/causal_checker.h"
#include "interconnect/federation.h"
#include "protocols/anbkh.h"
#include "stats/visibility.h"

using namespace cim;

namespace {

std::string at(sim::Time t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "[t=%6.1fms]",
                static_cast<double>(t.ns) / 1e6);
  return buf;
}

}  // namespace

int main() {
  const VarId report_q1{0}, report_q2{1}, annotation{2};

  isc::FederationConfig cfg;
  for (std::uint16_t s = 0; s < 2; ++s) {
    mcs::SystemConfig sys;
    sys.id = SystemId{s};
    sys.num_app_processes = 2;
    sys.protocol = proto::anbkh_protocol();
    sys.seed = 3 + s;
    cfg.systems.push_back(std::move(sys));
  }
  isc::LinkSpec link;
  link.system_a = 0;  // office A
  link.system_b = 1;  // office B
  link.delay = [] { return std::make_unique<net::FixedDelay>(sim::milliseconds(2)); };
  link.availability = [] {
    std::vector<net::Windows::Window> windows{
        {sim::Time{} + sim::milliseconds(100), sim::Time{} + sim::milliseconds(110)},
        {sim::Time{} + sim::milliseconds(300), sim::Time{} + sim::milliseconds(310)},
    };
    return std::make_unique<net::Windows>(windows,
                                          sim::Time{} + sim::milliseconds(600));
  };
  cfg.links.push_back(std::move(link));
  isc::Federation fed(std::move(cfg));
  auto& sim = fed.simulator();

  std::cout << "Dial-up bridge between office A (S0) and office B (S1)\n"
            << "link windows: [100,110)ms, [300,310)ms, always up after "
               "600ms\n\n";

  // Office A files two reports while the link is down.
  sim.at(sim::Time{} + sim::milliseconds(20), [&] {
    fed.system(0).app(0).write(report_q1, 1, [&] {
      std::cout << at(sim.now()) << " office A filed report_q1 (link DOWN — "
                   "update queued at isp^A)\n";
    });
  });
  sim.at(sim::Time{} + sim::milliseconds(40), [&] {
    fed.system(0).app(0).write(report_q2, 2, [&] {
      std::cout << at(sim.now()) << " office A filed report_q2 (link DOWN)\n";
    });
  });

  // Office B checks before and after the first window.
  auto check_b = [&](const char* label) {
    fed.system(1).app(0).read(report_q1, [&, label](Value v) {
      std::cout << at(sim.now()) << " office B reads report_q1 = " << v
                << "  (" << label << ")\n";
    });
  };
  sim.at(sim::Time{} + sim::milliseconds(90), [&] { check_b("before sync"); });
  sim.at(sim::Time{} + sim::milliseconds(150), [&] {
    check_b("after first sync window");
    // B annotates, causally after A's report.
    fed.system(1).app(1).write(annotation, 3, [&] {
      std::cout << at(sim.now()) << " office B wrote an annotation "
                   "(link DOWN again — queued at isp^B)\n";
    });
  });

  // Office A sees the annotation only after the second window.
  sim.at(sim::Time{} + sim::milliseconds(290), [&] {
    fed.system(0).app(1).read(annotation, [&](Value v) {
      std::cout << at(sim.now()) << " office A reads annotation = " << v
                << "  (before second window)\n";
    });
  });
  sim.at(sim::Time{} + sim::milliseconds(350), [&] {
    fed.system(0).app(1).read(annotation, [&](Value v) {
      std::cout << at(sim.now()) << " office A reads annotation = " << v
                << "  (after second window)\n";
    });
  });

  fed.run();

  auto verdict = chk::CausalChecker{}.check(fed.federation_history());
  std::cout << "\nchecker verdict on the whole computation: "
            << (verdict.ok() ? "causal" : verdict.detail) << "\n"
            << "pairs queued+delivered A->B: "
            << fed.interconnector().shared_isp(1).pairs_received()
            << ", B->A: "
            << fed.interconnector().shared_isp(0).pairs_received() << "\n";
  return verdict.ok() ? 0 : 1;
}

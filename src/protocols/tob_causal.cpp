#include "protocols/tob_causal.h"

#include <memory>
#include <utility>

#include "common/check.h"

namespace cim::proto {

TobCausalProcess::TobCausalProcess(const mcs::McsContext& ctx)
    : McsProcess(ctx) {}

Value TobCausalProcess::replica_value(VarId var) const {
  return store_.get(var);
}

void TobCausalProcess::handle_read(VarId var, mcs::ReadCallback cb) {
  cb(replica_value(var));
}

void TobCausalProcess::do_write(VarId var, Value value, WriteId wid,
                                mcs::WriteCallback cb) {
  note_update_issued(var, value, wid);
  if (observer() != nullptr) {
    observer()->on_write_issued(id(), var, value, simulator().now());
  }
  if (has_upcall_handler()) {
    // IS-process host: keep the replica in pure sequence order so upcall
    // reads always return the value being applied (condition (c)).
    publish(var, value, wid, /*pre_applied=*/false);
  } else {
    store_.set(var, value);
    if (observer() != nullptr) {
      observer()->on_apply(id(), var, value, simulator().now());
    }
    publish(var, value, wid, /*pre_applied=*/true);
  }
  cb();  // writes acknowledge immediately in this protocol
}

void TobCausalProcess::publish(VarId var, Value value, WriteId wid,
                               bool pre_applied) {
  TobPublish pub;
  pub.var = var;
  pub.value = value;
  pub.origin = local_index();
  pub.pre_applied = pre_applied;
  pub.write_id = wid;
  if (is_sequencer()) {
    sequence(pub);
  } else {
    send_to(0, std::make_unique<TobPublish>(pub));
  }
}

void TobCausalProcess::sequence(const TobPublish& pub) {
  TobDeliver del;
  del.var = pub.var;
  del.value = pub.value;
  del.origin = pub.origin;
  del.pre_applied = pub.pre_applied;
  del.write_id = pub.write_id;
  del.seq = next_seq_to_assign_++;
  for (std::uint16_t j = 0; j < num_procs(); ++j) {
    if (j == local_index()) continue;
    send_to(j, std::make_unique<TobDeliver>(del));
  }
  enqueue_delivery(del);
}

void TobCausalProcess::on_message(net::ChannelId from, net::MessagePtr msg) {
  if (auto* pub = dynamic_cast<TobPublish*>(msg.get())) {
    CIM_CHECK_MSG(is_sequencer(), "publish sent to a non-sequencer");
    CIM_CHECK(pub->origin == sender_of(from));
    sequence(*pub);
    return;
  }
  auto* del = dynamic_cast<TobDeliver*>(msg.get());
  CIM_CHECK_MSG(del != nullptr, "unexpected message type in tob-causal");
  enqueue_delivery(std::move(*del));
}

void TobCausalProcess::enqueue_delivery(TobDeliver del) {
  CIM_CHECK_MSG(del.seq >= next_apply_seq_, "duplicate TOB delivery");
  del.received_at = simulator().now();
  delivery_buffer_.emplace(del.seq, std::move(del));
  note_update_buffered(delivery_buffer_.size());
  try_apply();
}

void TobCausalProcess::try_apply() {
  if (applying_) return;
  applying_ = true;
  apply_step();
}

void TobCausalProcess::apply_step() {
  auto it = delivery_buffer_.find(next_apply_seq_);
  if (it == delivery_buffer_.end()) {
    applying_ = false;
    return;
  }
  TobDeliver del = std::move(it->second);
  delivery_buffer_.erase(it);
  ++next_apply_seq_;

  const bool own = del.origin == local_index();
  auto continue_chain = [this]() {
    simulator().post([this]() { apply_step(); });
  };

  if (own && del.pre_applied) {
    // Already applied at issue time; re-applying here could roll the
    // variable back past values this process has exposed since.
    ++own_skipped_;
    continue_chain();
    return;
  }

  apply_with_upcalls(
      del.var, del.value, del.write_id, own,
      /*apply=*/[this, own, var = del.var, value = del.value,
                 wid = del.write_id, received_at = del.received_at]() {
        store_.set(var, value);
        if (own) {
          note_update_applied(var, value, wid);
        } else {
          note_update_applied(var, value, wid, received_at);
        }
        if (observer() != nullptr) {
          observer()->on_apply(id(), var, value, simulator().now());
        }
      },
      /*done=*/continue_chain);
}

mcs::ProtocolFactory tob_causal_protocol() {
  return [](const mcs::McsContext& ctx) {
    return std::make_unique<TobCausalProcess>(ctx);
  };
}

}  // namespace cim::proto

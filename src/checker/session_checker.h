// Session-guarantee checkers: the classic decomposition of causal memory
// (Terry et al., "Session guarantees for weakly consistent replicated
// data"). When the full causal check fails, these locate *which* guarantee
// broke; they are also useful positively — every protocol in this
// repository satisfies all of them on every execution.
//
// With the paper's distinct-values assumption the reads-from relation is a
// function and each guarantee has a direct polynomial check:
//
//  * Read-your-writes  — every own write to x program-order-before a read
//    of x must be in the causal past of the value read (reading the initial
//    value, or a value that does not causally include the own write, is a
//    violation);
//  * Monotonic reads   — a later read of x must not return a value *causally
//    older* than an earlier read's value (switching between concurrent
//    values is not observable as a violation and is allowed);
//  * Monotonic writes  — no process may observe two writes of one writer in
//    inverted program order.
//
// Writes-follow-reads has no independent value-level witness beyond the
// causal checker's WriteCORead/WriteCOInitRead patterns (its violations
// surface there), so it is not duplicated here.
#pragma once

#include <string>

#include "checker/history.h"

namespace cim::chk {

enum class SessionGuarantee {
  kReadYourWrites,
  kMonotonicReads,
  kMonotonicWrites,
};

const char* to_string(SessionGuarantee g);

struct SessionResult {
  bool ok = true;
  std::string detail;  // first violation found
  explicit operator bool() const { return ok; }
};

class SessionChecker {
 public:
  /// Check one guarantee. Preconditions (distinct values, no thin-air reads)
  /// are reported as violations of the guarantee being checked.
  SessionResult check(const History& history, SessionGuarantee g) const;

  /// Check all guarantees; returns the first violation.
  SessionResult check_all(const History& history) const;
};

}  // namespace cim::chk

# Empty dependencies file for bench_sequential_union.
# This may be replaced when dependencies are built.

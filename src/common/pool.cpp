#include "common/pool.h"

namespace cim {

BlockPool::Cache::~Cache() {
  for (int c = 0; c < kNumClasses; ++c) {
    FreeNode* node = free_lists[c];
    while (node != nullptr) {
      FreeNode* next = node->next;
      ::operator delete(static_cast<unsigned char*>(static_cast<void*>(node)) -
                        kHeader);
      node = next;
    }
    free_lists[c] = nullptr;
  }
  cached = 0;
}

std::size_t BlockPool::cached_blocks() noexcept { return cache().cached; }

void BlockPool::trim() noexcept {
  Cache& k = cache();
  for (int c = 0; c < kNumClasses; ++c) {
    FreeNode* node = k.free_lists[c];
    while (node != nullptr) {
      FreeNode* next = node->next;
      ::operator delete(static_cast<unsigned char*>(static_cast<void*>(node)) -
                        kHeader);
      --k.cached;
      node = next;
    }
    k.free_lists[c] = nullptr;
  }
}

std::uint64_t BlockPool::hits() noexcept { return cache().hits; }
std::uint64_t BlockPool::misses() noexcept { return cache().misses; }

}  // namespace cim

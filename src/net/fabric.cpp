#include "net/fabric.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/check.h"

namespace cim::net {

void Fabric::set_observability(obs::Observability* obs) {
  obs_ = obs;
  if (obs == nullptr) {
    trace_ = nullptr;
    m_sent_ = m_bytes_ = m_delivered_ = m_dropped_ = m_availability_waits_ =
        nullptr;
    h_latency_intra_ = h_latency_inter_ = h_availability_wait_ = nullptr;
    h_backlog_ = nullptr;
    return;
  }
  trace_ = &obs->trace();
  obs::MetricsRegistry& m = obs->metrics();
  m_sent_ = &m.counter("net.messages_sent");
  m_bytes_ = &m.counter("net.bytes_sent");
  m_delivered_ = &m.counter("net.messages_delivered");
  m_dropped_ = &m.counter("net.messages_dropped");
  m_availability_waits_ = &m.counter("net.availability_waits");
  h_latency_intra_ = &m.histogram("net.delivery_latency.intra");
  h_latency_inter_ = &m.histogram("net.delivery_latency.inter");
  h_availability_wait_ = &m.histogram("net.availability_wait");
  h_backlog_ = &m.value_histogram("net.channel_backlog");
}

ChannelId Fabric::add_channel(ChannelConfig config) {
  CIM_CHECK_MSG(config.receiver != nullptr, "channel needs a receiver");
  Channel ch;
  ch.src = config.src;
  ch.dst = config.dst;
  ch.receiver = config.receiver;
  ch.delay = config.delay ? std::move(config.delay)
                          : std::make_unique<FixedDelay>(sim::microseconds(1));
  ch.availability = config.availability ? std::move(config.availability)
                                        : std::make_unique<AlwaysUp>();
  ch.link_class = config.link_class;
  ch.fifo = config.fifo;
  ch.drop_probability = config.drop_probability;
  ch.last_delivery = sim::kTimeZero;
  channels_.push_back(std::move(ch));
  return ChannelId{static_cast<std::uint32_t>(channels_.size() - 1)};
}

void Fabric::send(ChannelId channel, MessagePtr msg) {
  CIM_DCHECK(channel.value < channels_.size());
  CIM_DCHECK_MSG(msg != nullptr, "cannot send a null message");
  Channel& ch = channels_[channel.value];
  const std::uint64_t msg_seq = msg_seq_++;
  const char* type_name = msg->type_name();
  const std::size_t bytes = msg->wire_size();
  const WriteId wid = msg->wid();

  ch.stats.messages += 1;
  ch.stats.bytes += bytes;
  if (m_sent_ != nullptr) {
    m_sent_->inc();
    m_bytes_->inc(bytes);
  }

  // Loss, in precedence order: a partition severs the link outright; a
  // scripted burst raises the loss rate; the base drop probability models a
  // permanently unreliable channel.
  const char* lost_why = nullptr;
  if (ch.partitioned) {
    lost_why = "partition";
  } else {
    const double p = std::max(ch.drop_probability, ch.burst_drop);
    if (p > 0 && rng_.chance(p)) {
      lost_why = ch.burst_drop > ch.drop_probability ? "burst" : "loss";
    }
  }
  if (lost_why != nullptr) {
    ch.stats.dropped += 1;
    if (m_dropped_ != nullptr) m_dropped_->inc();
    CIM_TRACE(trace_, sim_.now(), obs::TraceCategory::kNet, "drop",
              {{"ch", channel.value},
               {"msg", msg_seq},
               {"src", ch.src},
               {"dst", ch.dst},
               {"type", type_name},
               {"why", lost_why},
               {"wid", wid}});
    return;
  }

  // Transmission starts when the link is next up (immediately if up now);
  // delivery follows after the sampled delay, but — on a FIFO channel —
  // never before a previously sent message.
  const sim::Time start = ch.availability->next_up(sim_.now());
  CIM_CHECK_MSG(start != sim::kTimeMax,
                "message sent on a link that never comes up again");
  const sim::Duration availability_wait = start - sim_.now();
  if (availability_wait > sim::Duration{}) {
    ch.stats.availability_waits += 1;
    if (m_availability_waits_ != nullptr) {
      m_availability_waits_->inc();
      h_availability_wait_->observe(availability_wait);
    }
  }
  sim::Time delivery = start + ch.delay->sample(rng_);
  if (ch.fifo) {
    delivery = std::max(delivery, ch.last_delivery);
    ch.last_delivery = delivery;
  }

  ch.in_flight += 1;
  if (h_backlog_ != nullptr) {
    h_backlog_->observe(static_cast<std::int64_t>(ch.in_flight));
  }
  CIM_TRACE(trace_, sim_.now(), obs::TraceCategory::kNet, "send",
            {{"ch", channel.value},
             {"msg", msg_seq},
             {"src", ch.src},
             {"dst", ch.dst},
             {"type", type_name},
             {"bytes", bytes},
             {"wid", wid}});

  // The delivery action is move-only (sim::Simulator::Action is a SmallFn),
  // so the owning unique_ptr moves straight into the closure — no shared_ptr
  // box, and the whole capture fits the action's inline buffer.
  Receiver* receiver = ch.receiver;
  const sim::Time sent_at = sim_.now();
  sim_.at(delivery, [this, receiver, channel, msg = std::move(msg), msg_seq,
                     sent_at, type_name, wid]() mutable {
    on_delivered(channels_[channel.value], channel, msg_seq, sent_at,
                 type_name, wid);
    receiver->on_message(channel, std::move(msg));
  });
}

void Fabric::on_delivered(Channel& ch, ChannelId id, std::uint64_t msg_seq,
                          sim::Time sent_at, const char* type_name,
                          WriteId wid) {
  ch.in_flight -= 1;
  const sim::Duration latency = sim_.now() - sent_at;
  if (m_delivered_ != nullptr) {
    m_delivered_->inc();
    (ch.link_class == LinkClass::kIntraSystem ? h_latency_intra_
                                              : h_latency_inter_)
        ->observe(latency);
  }
  CIM_TRACE(trace_, sim_.now(), obs::TraceCategory::kNet, "deliver",
            {{"ch", id.value},
             {"msg", msg_seq},
             {"dst", ch.dst},
             {"type", type_name},
             {"latency_ns", latency},
             {"wid", wid}});
}

ChannelStats Fabric::class_stats(LinkClass c) const {
  ChannelStats total;
  for (const Channel& ch : channels_) {
    if (ch.link_class == c) {
      total.messages += ch.stats.messages;
      total.bytes += ch.stats.bytes;
      total.dropped += ch.stats.dropped;
      total.availability_waits += ch.stats.availability_waits;
    }
  }
  return total;
}

ChannelStats Fabric::cross_system_stats(SystemId a, SystemId b) const {
  ChannelStats total;
  for (const Channel& ch : channels_) {
    const bool ab = ch.src.system == a && ch.dst.system == b;
    const bool ba = ch.src.system == b && ch.dst.system == a;
    if (ab || ba) {
      total.messages += ch.stats.messages;
      total.bytes += ch.stats.bytes;
      total.dropped += ch.stats.dropped;
      total.availability_waits += ch.stats.availability_waits;
    }
  }
  return total;
}

ChannelStats Fabric::stats_where(
    const std::function<bool(ProcId src, ProcId dst)>& pred) const {
  ChannelStats total;
  for (const Channel& ch : channels_) {
    if (pred(ch.src, ch.dst)) {
      total.messages += ch.stats.messages;
      total.bytes += ch.stats.bytes;
      total.dropped += ch.stats.dropped;
      total.availability_waits += ch.stats.availability_waits;
    }
  }
  return total;
}

std::uint64_t Fabric::total_messages() const {
  std::uint64_t n = 0;
  for (const Channel& ch : channels_) n += ch.stats.messages;
  return n;
}

std::size_t Fabric::total_in_flight() const {
  std::size_t n = 0;
  for (const Channel& ch : channels_) n += ch.in_flight;
  return n;
}

void Fabric::reset_stats() {
  for (Channel& ch : channels_) ch.stats = ChannelStats{};
}

}  // namespace cim::net

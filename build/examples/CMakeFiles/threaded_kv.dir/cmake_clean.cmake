file(REMOVE_RECURSE
  "CMakeFiles/threaded_kv.dir/threaded_kv.cpp.o"
  "CMakeFiles/threaded_kv.dir/threaded_kv.cpp.o.d"
  "threaded_kv"
  "threaded_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threaded_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

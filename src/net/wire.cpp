#include "net/wire.h"

#include <cstring>
#include <memory>

#include "common/check.h"
#include "common/vector_clock.h"
#include "interconnect/pair_msg.h"
#include "msgpass/cbcast.h"
#include "net/reliable_transport.h"
#include "protocols/aw_seq.h"
#include "protocols/partial_rep.h"
#include "protocols/update_msg.h"

namespace cim::net::wire {
namespace {

using Buf = std::vector<std::uint8_t>;

// ---- primitive writers -----------------------------------------------------

void put_u8(Buf& out, std::uint8_t v) { out.push_back(v); }

void put_u64le(Buf& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_varint(Buf& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_zigzag(Buf& out, std::int64_t v) {
  put_varint(out, (static_cast<std::uint64_t>(v) << 1) ^
                      static_cast<std::uint64_t>(v >> 63));
}

void put_time(Buf& out, sim::Time t) {
  put_u64le(out, static_cast<std::uint64_t>(t.ns));
}

void put_clock(Buf& out, const VectorClock& c) {
  put_varint(out, c.size());
  for (std::size_t i = 0; i < c.size(); ++i) put_varint(out, c[i]);
}

// ---- primitive reader ------------------------------------------------------

// Bounds-checked cursor over the frame body. Every getter degrades to a
// sticky fail bit on overrun, so decoders can read a whole payload straight
// through and check fail() once at the end — no partial-object UB.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  bool fail() const { return fail_; }
  std::size_t remaining() const { return size_ - pos_; }
  const std::uint8_t* cursor() const { return data_ + pos_; }
  void advance(std::size_t n) {
    if (n > remaining()) {
      fail_ = true;
      pos_ = size_;
    } else {
      pos_ += n;
    }
  }

  std::uint8_t u8() {
    if (remaining() < 1) {
      fail_ = true;
      return 0;
    }
    return data_[pos_++];
  }

  std::uint64_t u64le() {
    if (remaining() < 8) {
      fail_ = true;
      pos_ = size_;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
  }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (remaining() < 1) {
        fail_ = true;
        return 0;
      }
      const std::uint8_t byte = data_[pos_++];
      v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return v;
    }
    fail_ = true;  // > 10 bytes: not a valid varint
    return 0;
  }

  std::int64_t zigzag() {
    const std::uint64_t raw = varint();
    return static_cast<std::int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
  }

  sim::Time time() { return sim::Time{static_cast<std::int64_t>(u64le())}; }

  bool clock(VectorClock& out) {
    const std::uint64_t n = varint();
    if (fail_ || n > kMaxClockEntries) {
      fail_ = true;
      return false;
    }
    VectorClock c(static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < c.size(); ++i) {
      c.set(i, varint());
      if (fail_) return false;
    }
    out = std::move(c);
    return true;
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool fail_ = false;
};

// ---- per-type payload encoders (layouts documented in docs/WIRE.md) --------

void encode_pair(Buf& out, const isc::PairMsg& m) {
  put_varint(out, m.var.value);
  put_zigzag(out, m.value);
  // Trace context.
  put_time(out, m.sent_at);
  put_time(out, m.origin_time);
  put_u64le(out, m.write_id.value);
}

void encode_vc_update(Buf& out, const proto::TimestampedUpdate& m) {
  put_varint(out, m.var.value);
  put_zigzag(out, m.value);
  put_clock(out, m.clock);
  put_varint(out, m.writer);
  // Trace context.
  put_u64le(out, m.write_id.value);
  put_time(out, m.received_at);
}

void encode_tob_publish(Buf& out, const proto::TobPublish& m) {
  put_varint(out, m.var.value);
  put_zigzag(out, m.value);
  put_varint(out, m.origin);
  put_u8(out, m.pre_applied ? 1 : 0);
  // Trace context.
  put_u64le(out, m.write_id.value);
}

void encode_tob_deliver(Buf& out, const proto::TobDeliver& m) {
  put_varint(out, m.var.value);
  put_zigzag(out, m.value);
  put_varint(out, m.origin);
  put_u8(out, m.pre_applied ? 1 : 0);
  put_varint(out, m.seq);
  // Trace context.
  put_u64le(out, m.write_id.value);
  put_time(out, m.received_at);
}

void encode_partial(Buf& out, const proto::PartialUpdate& m) {
  put_u8(out, m.has_value ? 1 : 0);
  put_varint(out, m.var.value);
  if (m.has_value) put_zigzag(out, m.value);
  put_clock(out, m.clock);
  put_varint(out, m.writer);
  // Trace context.
  put_u64le(out, m.write_id.value);
  put_time(out, m.received_at);
}

void encode_cbcast(Buf& out, const mp::CbcastMsg& m) {
  put_varint(out, m.payload.var.value);
  put_zigzag(out, m.payload.value);
  put_clock(out, m.clock);
  put_varint(out, m.sender);
  // Trace context.
  put_u64le(out, m.payload.wid.value);
}

void encode_control(Buf& out, const ControlMsg& m) {
  put_u8(out, m.code);
  put_varint(out, m.a);
  put_varint(out, m.b);
  if (m.c != 0) put_varint(out, m.c);  // v2 tail (see encode_body)
}

void encode_stats(Buf& out, const StatsFrame& m) {
  put_varint(out, m.origin);
  put_u64le(out, m.t_ns);
  put_varint(out, m.entries.size());
  for (const auto& e : m.entries) {
    put_varint(out, e.first.size());
    out.insert(out.end(), e.first.begin(), e.first.end());
    put_zigzag(out, e.second);
  }
}

// True when the frame carries the v2 heartbeat timestamp tail (see
// kTransportVersion2): only heartbeats stamp these, so data frames stay v1.
bool transport_has_timestamps(const TransportFrame& m) {
  return m.ts_orig != 0 || m.ts_rx != 0 || m.ts_tx != 0;
}

bool encode_body(const Message& msg, Buf& out);

void encode_transport_frame(Buf& out, const TransportFrame& m) {
  put_varint(out, m.seq);
  put_varint(out, m.ack);
  put_u8(out, m.payload ? 1 : 0);
  if (m.payload) {
    const bool ok = [&] {
      const std::size_t len_pos = out.size();
      out.insert(out.end(), 4, 0);
      const std::size_t body_pos = out.size();
      if (!encode_body(*m.payload, out)) return false;
      const std::size_t body_len = out.size() - body_pos;
      for (int i = 0; i < 4; ++i)
        out[len_pos + i] = static_cast<std::uint8_t>(body_len >> (8 * i));
      return true;
    }();
    CIM_CHECK_MSG(ok, "wire: transport frame payload is not encodable");
  }
  if (transport_has_timestamps(m)) {  // v2 tail (see encode_body)
    put_u64le(out, m.ts_orig);
    put_u64le(out, m.ts_rx);
    put_u64le(out, m.ts_tx);
  }
}

// Writes [type][version][payload] for `msg`; false if the type is unknown.
bool encode_body(const Message& msg, Buf& out) {
  const char* tn = msg.type_name();
  const auto tagged = [&](WireType t) {
    put_u8(out, static_cast<std::uint8_t>(t));
    put_u8(out, kWireVersion);
  };
  if (std::strcmp(tn, "is.pair") == 0) {
    tagged(WireType::kPair);
    encode_pair(out, static_cast<const isc::PairMsg&>(msg));
  } else if (std::strcmp(tn, "vc.update") == 0) {
    tagged(WireType::kVcUpdate);
    encode_vc_update(out, static_cast<const proto::TimestampedUpdate&>(msg));
  } else if (std::strcmp(tn, "tob.publish") == 0) {
    tagged(WireType::kTobPublish);
    encode_tob_publish(out, static_cast<const proto::TobPublish&>(msg));
  } else if (std::strcmp(tn, "tob.deliver") == 0) {
    tagged(WireType::kTobDeliver);
    encode_tob_deliver(out, static_cast<const proto::TobDeliver&>(msg));
  } else if (std::strcmp(tn, "partial.update") == 0 ||
             std::strcmp(tn, "partial.marker") == 0) {
    tagged(WireType::kPartialUpdate);
    encode_partial(out, static_cast<const proto::PartialUpdate&>(msg));
  } else if (std::strcmp(tn, "cbcast.msg") == 0) {
    tagged(WireType::kCbcast);
    encode_cbcast(out, static_cast<const mp::CbcastMsg&>(msg));
  } else if (std::strcmp(tn, "tr.data") == 0 || std::strcmp(tn, "tr.ack") == 0) {
    // Transport frames are v1 unless the heartbeat timestamp tail is in use
    // (same nonzero-only discipline as the control v2 field below).
    const auto& frame = static_cast<const TransportFrame&>(msg);
    put_u8(out, static_cast<std::uint8_t>(WireType::kTransportFrame));
    put_u8(out,
           transport_has_timestamps(frame) ? kTransportVersion2 : kWireVersion);
    encode_transport_frame(out, frame);
  } else if (std::strcmp(tn, "wire.stats") == 0) {
    tagged(WireType::kStats);
    encode_stats(out, static_cast<const StatsFrame&>(msg));
  } else if (std::strcmp(tn, "wire.ctrl") == 0) {
    // Control frames are v1 unless the v2 field `c` is in use (rejoin
    // handshake), so historical byte streams re-encode bit-identically.
    const auto& ctrl = static_cast<const ControlMsg&>(msg);
    put_u8(out, static_cast<std::uint8_t>(WireType::kControl));
    put_u8(out, ctrl.c != 0 ? kControlVersion2 : kWireVersion);
    encode_control(out, ctrl);
  } else {
    return false;
  }
  return true;
}

// ---- per-type payload decoders ---------------------------------------------

DecodeResult fail_with(const char* error) {
  DecodeResult r;
  r.error = error;
  return r;
}

DecodeResult decode_frame(const std::uint8_t* data, std::size_t size,
                          int depth);

// Decodes the payload for `type`. `version` has already been validated by
// decode_frame (1 everywhere; control frames may also be 2, which appends
// the varint `c`). Returns null + error message on malformed payloads.
MessagePtr decode_payload(WireType type, std::uint8_t version, Reader& r,
                          int depth, const char*& error) {
  switch (type) {
    case WireType::kPair: {
      auto m = std::make_unique<isc::PairMsg>();
      m->var = VarId{static_cast<std::uint32_t>(r.varint())};
      m->value = r.zigzag();
      m->sent_at = r.time();
      m->origin_time = r.time();
      m->write_id = WriteId{r.u64le()};
      return m;
    }
    case WireType::kVcUpdate: {
      auto m = std::make_unique<proto::TimestampedUpdate>();
      m->var = VarId{static_cast<std::uint32_t>(r.varint())};
      m->value = r.zigzag();
      if (!r.clock(m->clock)) {
        error = "wire: bad vector clock";
        return nullptr;
      }
      m->writer = static_cast<std::uint16_t>(r.varint());
      m->write_id = WriteId{r.u64le()};
      m->received_at = r.time();
      return m;
    }
    case WireType::kTobPublish: {
      auto m = std::make_unique<proto::TobPublish>();
      m->var = VarId{static_cast<std::uint32_t>(r.varint())};
      m->value = r.zigzag();
      m->origin = static_cast<std::uint16_t>(r.varint());
      m->pre_applied = r.u8() != 0;
      m->write_id = WriteId{r.u64le()};
      return m;
    }
    case WireType::kTobDeliver: {
      auto m = std::make_unique<proto::TobDeliver>();
      m->var = VarId{static_cast<std::uint32_t>(r.varint())};
      m->value = r.zigzag();
      m->origin = static_cast<std::uint16_t>(r.varint());
      m->pre_applied = r.u8() != 0;
      m->seq = r.varint();
      m->write_id = WriteId{r.u64le()};
      m->received_at = r.time();
      return m;
    }
    case WireType::kPartialUpdate: {
      auto m = std::make_unique<proto::PartialUpdate>();
      m->has_value = r.u8() != 0;
      m->var = VarId{static_cast<std::uint32_t>(r.varint())};
      if (m->has_value) m->value = r.zigzag();
      if (!r.clock(m->clock)) {
        error = "wire: bad vector clock";
        return nullptr;
      }
      m->writer = static_cast<std::uint16_t>(r.varint());
      m->write_id = WriteId{r.u64le()};
      m->received_at = r.time();
      return m;
    }
    case WireType::kCbcast: {
      auto m = std::make_unique<mp::CbcastMsg>();
      m->payload.var = VarId{static_cast<std::uint32_t>(r.varint())};
      m->payload.value = r.zigzag();
      if (!r.clock(m->clock)) {
        error = "wire: bad vector clock";
        return nullptr;
      }
      m->sender = static_cast<std::uint16_t>(r.varint());
      m->payload.wid = WriteId{r.u64le()};
      return m;
    }
    case WireType::kTransportFrame: {
      auto m = std::make_unique<TransportFrame>();
      m->seq = r.varint();
      m->ack = r.varint();
      const bool has_payload = r.u8() != 0;
      if (r.fail()) {
        error = "wire: truncated payload";
        return nullptr;
      }
      if (has_payload) {
        DecodeResult nested = decode_frame(r.cursor(), r.remaining(), depth + 1);
        if (!nested.ok()) {
          error = nested.error;
          return nullptr;
        }
        m->payload = std::move(nested.msg);
        r.advance(nested.consumed);
      }
      if (version >= kTransportVersion2) {
        m->ts_orig = r.u64le();
        m->ts_rx = r.u64le();
        m->ts_tx = r.u64le();
      }
      return m;
    }
    case WireType::kStats: {
      auto m = std::make_unique<StatsFrame>();
      m->origin = r.varint();
      m->t_ns = r.u64le();
      const std::uint64_t n = r.varint();
      if (r.fail() || n > kMaxStatsEntries) {
        error = "wire: too many stats entries";
        return nullptr;
      }
      m->entries.reserve(static_cast<std::size_t>(n));
      for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t key_len = r.varint();
        if (r.fail() || key_len > kMaxStatsKeyBytes ||
            key_len > r.remaining()) {
          error = "wire: bad stats key";
          return nullptr;
        }
        std::string key(reinterpret_cast<const char*>(r.cursor()),
                        static_cast<std::size_t>(key_len));
        r.advance(static_cast<std::size_t>(key_len));
        const std::int64_t value = r.zigzag();
        if (r.fail()) {
          error = "wire: truncated payload";
          return nullptr;
        }
        m->entries.emplace_back(std::move(key), value);
      }
      return m;
    }
    case WireType::kControl: {
      auto m = std::make_unique<ControlMsg>();
      m->code = r.u8();
      m->a = r.varint();
      m->b = r.varint();
      if (version >= kControlVersion2) m->c = r.varint();
      return m;
    }
  }
  error = "wire: unknown wire type";
  return nullptr;
}

DecodeResult decode_frame(const std::uint8_t* data, std::size_t size,
                          int depth) {
  if (depth > kMaxNestingDepth) return fail_with("wire: nesting too deep");
  if (size < 4) return fail_with("wire: short frame header");
  std::uint32_t body_len = 0;
  for (int i = 0; i < 4; ++i)
    body_len |= static_cast<std::uint32_t>(data[i]) << (8 * i);
  if (body_len > kMaxBodyBytes) return fail_with("wire: body too large");
  if (body_len < 2) return fail_with("wire: body too small");
  if (size - 4 < body_len) return fail_with("wire: truncated frame");

  Reader r(data + 4, body_len);
  const std::uint8_t raw_type = r.u8();
  const std::uint8_t version = r.u8();
  if (raw_type > static_cast<std::uint8_t>(WireType::kStats))
    return fail_with("wire: unknown wire type");
  const bool control_v2 =
      raw_type == static_cast<std::uint8_t>(WireType::kControl) &&
      version == kControlVersion2;
  const bool transport_v2 =
      raw_type == static_cast<std::uint8_t>(WireType::kTransportFrame) &&
      version == kTransportVersion2;
  if (version != kWireVersion && !control_v2 && !transport_v2)
    return fail_with("wire: unknown version");

  const char* error = nullptr;
  MessagePtr msg =
      decode_payload(static_cast<WireType>(raw_type), version, r, depth, error);
  if (!msg) return fail_with(error ? error : "wire: malformed payload");
  if (r.fail()) return fail_with("wire: truncated payload");
  if (r.remaining() != 0) return fail_with("wire: trailing bytes in frame");

  DecodeResult result;
  result.msg = std::move(msg);
  result.consumed = std::size_t{4} + body_len;
  return result;
}

}  // namespace

const char* wire_type_label(WireType t) {
  switch (t) {
    case WireType::kControl:
      return "control";
    case WireType::kPair:
      return "pair";
    case WireType::kVcUpdate:
      return "vc_update";
    case WireType::kTobPublish:
      return "tob_publish";
    case WireType::kTobDeliver:
      return "tob_deliver";
    case WireType::kPartialUpdate:
      return "partial_update";
    case WireType::kCbcast:
      return "cbcast";
    case WireType::kTransportFrame:
      return "transport_frame";
    case WireType::kStats:
      return "stats";
  }
  return "unknown";
}

bool encodable(const Message& msg) {
  const char* tn = msg.type_name();
  for (const char* known :
       {"is.pair", "vc.update", "tob.publish", "tob.deliver", "partial.update",
        "partial.marker", "cbcast.msg", "wire.ctrl", "wire.stats"}) {
    if (std::strcmp(tn, known) == 0) return true;
  }
  if (std::strcmp(tn, "tr.data") == 0)
    return encodable(*static_cast<const TransportFrame&>(msg).payload);
  if (std::strcmp(tn, "tr.ack") == 0) return true;
  return false;
}

std::size_t encode(const Message& msg, std::vector<std::uint8_t>& out) {
  const std::size_t start = out.size();
  out.insert(out.end(), 4, 0);
  const std::size_t body_pos = out.size();
  const bool ok = encode_body(msg, out);
  CIM_CHECK_MSG(ok, "wire: message type '" << msg.type_name()
                                           << "' has no wire encoding");
  const std::size_t body_len = out.size() - body_pos;
  CIM_CHECK_MSG(body_len <= kMaxBodyBytes, "wire: frame body too large");
  for (int i = 0; i < 4; ++i)
    out[start + i] = static_cast<std::uint8_t>(body_len >> (8 * i));
  return out.size() - start;
}

DecodeResult decode(const std::uint8_t* data, std::size_t size) {
  return decode_frame(data, size, 0);
}

}  // namespace cim::net::wire

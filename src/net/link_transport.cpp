#include "net/link_transport.h"

#include <chrono>
#include <utility>

#include "common/check.h"
#include "net/wire.h"

namespace cim::net {

namespace {

std::int64_t wall_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

LoopbackBytesTransport::LoopbackBytesTransport(LinkTransport& inner,
                                               obs::Observability* obs)
    : inner_(inner) {
  if (obs != nullptr) {
    obs::MetricsRegistry& m = obs->metrics();
    m_bytes_out_ = &m.counter("net.wire.bytes_out");
    m_bytes_in_ = &m.counter("net.wire.bytes_in");
    h_encode_ns_ = &m.histogram("net.wire.encode_ns");
    h_decode_ns_ = &m.histogram("net.wire.decode_ns");
  }
}

void LoopbackBytesTransport::send(MessagePtr msg) {
  scratch_.clear();

  const std::int64_t t0 = wall_ns();
  const std::size_t frame_len = wire::encode(*msg, scratch_);
  const std::int64_t t1 = wall_ns();

  wire::DecodeResult decoded = wire::decode(scratch_.data(), scratch_.size());
  const std::int64_t t2 = wall_ns();

  CIM_CHECK_MSG(decoded.ok(), "wire loopback: decode failed ("
                                  << (decoded.error ? decoded.error : "?")
                                  << ") for " << msg->type_name());
  CIM_CHECK_MSG(decoded.consumed == frame_len,
                "wire loopback: frame length mismatch");

  bytes_out_ += frame_len;
  bytes_in_ += frame_len;
  if (m_bytes_out_ != nullptr) {
    m_bytes_out_->inc(frame_len);
    m_bytes_in_->inc(frame_len);
    // Real (wall-clock) nanoseconds, not virtual time — the codec is actual
    // CPU work; docs/OBSERVABILITY.md flags these two histograms as such.
    h_encode_ns_->observe(sim::Duration{t1 - t0});
    h_decode_ns_->observe(sim::Duration{t2 - t1});
  }
  inner_.send(std::move(decoded.msg));
}

}  // namespace cim::net

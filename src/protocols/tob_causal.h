// "tob-causal": a causal protocol that disseminates through total-order
// broadcast instead of vector clocks.
//
// A fourth propagation-based MCS-protocol, beyond the paper's cited ones,
// illustrating that the IS-protocols are protocol-agnostic:
//
//  * write(x, v): apply locally, acknowledge immediately, publish through
//    the system sequencer;
//  * read(x): local replica;
//  * remote updates apply in global sequence order; the origin skips its own
//    deliveries (it already applied them at issue).
//
// The global sequence extends the causal order (FIFO channels, single
// sequencer), so applying remote updates in sequence order is one valid
// causal application order — the protocol is ANBKH's application discipline
// with a stronger delivery order and O(1)-size messages instead of vector
// clocks (at the cost of funnelling writes through a sequencer: n messages
// per write instead of n-1).
//
// Design note: an earlier variant additionally arbitrated concurrent writes
// per variable ("pending own write wins over older-sequenced remote
// writes"), aiming for convergence. The repository's own checker refuted it:
// selectively skipping a remote write whose causal successors are later
// exposed creates histories with no causal view (CyclicHB /
// WriteHBInitRead). The lesson is recorded in tests and DESIGN.md; causal
// memory without blocking reads cannot converge concurrent same-variable
// writes, so this protocol, like ANBKH, does not try.
//
// At an MCS-process hosting an IS-process the immediate local application of
// own writes is disabled (everything applies in pure sequence order): the
// IS-process only reads inside upcalls, the pure order keeps condition (c)
// intact, and writes still acknowledge immediately so the upcall discipline
// cannot deadlock. Applications at that replica follow the total order,
// which extends the causal order, so the protocol satisfies the Causal
// Updating Property and interconnects with IS-protocol 1.
#pragma once

#include <map>

#include "common/var_store.h"
#include "mcs/mcs_process.h"
#include "protocols/aw_seq.h"  // TobPublish / TobDeliver wire format

namespace cim::proto {

class TobCausalProcess final : public mcs::McsProcess {
 public:
  explicit TobCausalProcess(const mcs::McsContext& ctx);

  void handle_read(VarId var, mcs::ReadCallback cb) override;
  void on_message(net::ChannelId from, net::MessagePtr msg) override;

  bool satisfies_causal_updating() const override { return true; }
  const char* protocol_name() const override { return "tob-causal"; }

  Value replica_value(VarId var) const;
  bool is_sequencer() const { return local_index() == 0; }
  /// Own deliveries skipped because the write was applied at issue time.
  std::uint64_t own_deliveries_skipped() const { return own_skipped_; }

 protected:
  void do_write(VarId var, Value value, WriteId wid,
                mcs::WriteCallback cb) override;

 private:
  void publish(VarId var, Value value, WriteId wid, bool pre_applied);
  void sequence(const TobPublish& pub);
  void enqueue_delivery(TobDeliver del);
  void try_apply();
  void apply_step();

  VarStore store_;
  std::uint64_t next_seq_to_assign_ = 0;  // sequencer only
  std::uint64_t next_apply_seq_ = 0;
  std::map<std::uint64_t, TobDeliver> delivery_buffer_;
  std::uint64_t own_skipped_ = 0;
  bool applying_ = false;
};

/// Factory for mcs::SystemConfig::protocol.
mcs::ProtocolFactory tob_causal_protocol();

}  // namespace cim::proto

// Mesh transport throughput (docs/BRIDGE.md): the epoll/writev TCP path that
// carries pairs between the OS processes of an n-system federation. One
// in-process "node" per mesh position — its own EpollLoop, exactly like one
// cim_bridge process — connected by real stream sockets; node 0 floods
// PairMsg frames down the tree and every inner node forwards to its other
// links (the IS-process's split horizon, minus the memory system). Reported
// per mesh shape: end-to-end delivered msgs/sec and syscalls/msg across the
// whole mesh — the coalescing win is exactly the gap between syscalls_per_msg
// and 2.0 (one read + one write per frame, what the blocking transport paid).
// Blessed baseline: bench/baseline/BENCH_bridge.json.
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_report.h"
#include "common/check.h"
#include "interconnect/pair_msg.h"
#include "interconnect/topology.h"
#include "net/epoll_loop.h"
#include "net/tcp_link.h"
#include "stats/table.h"

namespace {

using namespace cim;

constexpr std::size_t kMessages = 100'000;  // flooded from node 0

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

net::MessagePtr make_pair_msg(std::uint32_t seq) {
  auto msg = std::make_unique<isc::PairMsg>();
  msg->var = VarId{static_cast<std::uint16_t>(seq % 8)};
  msg->value = Value{seq};
  msg->write_id = WriteId::make(ProcId{SystemId{0}, 0}, seq);
  return msg;
}

// One mesh position: an epoll loop plus one transport per incident edge —
// the exact I/O topology of a cim_bridge process, minus the memory system.
struct Node {
  net::EpollLoop loop;
  std::vector<std::unique_ptr<net::TcpLinkTransport>> links;
  std::atomic<std::uint64_t> delivered{0};
};

struct ShapeResult {
  double msgs_per_sec = 0;
  double syscalls_per_msg = 0;
  double coalesced_frac = 0;
};

ShapeResult run_shape(const isc::Topology& topo) {
  const std::size_t n = topo.nodes;
  std::vector<std::unique_ptr<Node>> nodes;
  for (std::size_t i = 0; i < n; ++i) nodes.push_back(std::make_unique<Node>());

  // Connect every edge with a stream socketpair and hang one transport off
  // each endpoint's loop. links[i][k] talks to topo.neighbors(i)[k].
  std::vector<std::vector<std::size_t>> nbrs(n);
  for (std::size_t i = 0; i < n; ++i) {
    nbrs[i] = topo.neighbors(i);
    nodes[i]->links.resize(nbrs[i].size());
  }
  for (const isc::TopologyEdge& e : topo.edges) {
    int fds[2];
    CIM_CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0);
    auto slot = [&](std::size_t node, std::size_t peer) -> std::size_t {
      for (std::size_t k = 0; k < nbrs[node].size(); ++k)
        if (nbrs[node][k] == peer) return k;
      CIM_CHECK(false);
      return 0;
    };
    nodes[e.a]->links[slot(e.a, e.b)] = std::make_unique<net::TcpLinkTransport>(
        fds[0], nodes[e.a]->loop);
    nodes[e.b]->links[slot(e.b, e.a)] = std::make_unique<net::TcpLinkTransport>(
        fds[1], nodes[e.b]->loop);
  }

  for (std::size_t i = 0; i < n; ++i) {
    nodes[i]->loop.start();
    Node* node = nodes[i].get();
    for (std::size_t k = 0; k < node->links.size(); ++k) {
      node->links[k]->start([node, k](net::MessagePtr msg) {
        node->delivered.fetch_add(1, std::memory_order_relaxed);
        // Split horizon: forward to every other link. Runs on the loop
        // thread — the transport's inline-flush path.
        for (std::size_t other = 0; other < node->links.size(); ++other) {
          if (other != k) node->links[other]->send(msg->clone());
        }
      });
    }
  }

  // Flood from node 0 (a foreign thread — the bounded-queue path) and wait
  // for every message to reach every other node exactly once.
  const std::uint64_t expected = kMessages * (n - 1);
  const double t0 = now_s();
  for (std::size_t s = 0; s < kMessages; ++s) {
    net::MessagePtr msg = make_pair_msg(static_cast<std::uint32_t>(s));
    for (auto& link : nodes[0]->links) link->send(msg->clone());
  }
  std::uint64_t total = 0;
  while (total < expected) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    total = 0;
    for (const auto& node : nodes) total += node->delivered.load();
  }
  const double elapsed = now_s() - t0;

  std::uint64_t syscalls = 0, frames = 0, coalesced = 0;
  for (const auto& node : nodes) {
    for (const auto& link : node->links) {
      syscalls += link->syscalls_read() + link->syscalls_write();
      frames += link->frames_sent();
      coalesced += link->frames_coalesced();
    }
  }
  for (auto& node : nodes) node->loop.stop();

  ShapeResult res;
  res.msgs_per_sec = static_cast<double>(total) / elapsed;
  res.syscalls_per_msg =
      static_cast<double>(syscalls) / static_cast<double>(frames);
  res.coalesced_frac =
      static_cast<double>(coalesced) / static_cast<double>(frames);
  return res;
}

}  // namespace

int main() {
  bench::JsonReport report("bridge");
  report.meta("messages", std::uint64_t{kMessages});
  stats::Table table(
      {"mesh", "Mmsg/s", "syscalls/msg", "coalesced"});

  const std::pair<const char*, isc::Topology> shapes[] = {
      {"chain_2", isc::make_chain(2)},
      {"btree_4", isc::make_btree(4)},
      {"btree_8", isc::make_btree(8)},
  };
  for (const auto& [label, topo] : shapes) {
    const ShapeResult res = run_shape(topo);
    report.row(label)
        .field("msgs_per_sec", res.msgs_per_sec)
        .field("syscalls_per_msg", res.syscalls_per_msg)
        .field("coalesced_frac", res.coalesced_frac);
    char rate[32], sys[32], coal[32];
    std::snprintf(rate, sizeof(rate), "%.2f", res.msgs_per_sec / 1e6);
    std::snprintf(sys, sizeof(sys), "%.3f", res.syscalls_per_msg);
    std::snprintf(coal, sizeof(coal), "%.2f", res.coalesced_frac);
    table.add_row(label, rate, sys, coal);
  }
  table.print();
  return 0;
}

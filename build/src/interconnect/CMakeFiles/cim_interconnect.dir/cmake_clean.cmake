file(REMOVE_RECURSE
  "CMakeFiles/cim_interconnect.dir/federation.cpp.o"
  "CMakeFiles/cim_interconnect.dir/federation.cpp.o.d"
  "CMakeFiles/cim_interconnect.dir/interconnector.cpp.o"
  "CMakeFiles/cim_interconnect.dir/interconnector.cpp.o.d"
  "CMakeFiles/cim_interconnect.dir/is_process.cpp.o"
  "CMakeFiles/cim_interconnect.dir/is_process.cpp.o.d"
  "libcim_interconnect.a"
  "libcim_interconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cim_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

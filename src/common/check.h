// Internal invariant checking.
//
// CIM_CHECK is always on (these are distributed-protocol invariants whose
// violation means a bug; the cost is negligible next to simulation work).
// Failure throws InvariantViolation so tests can assert on it and the
// simulator can surface a clean diagnostic instead of UB.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace cim {

class InvariantViolation : public std::logic_error {
 public:
  explicit InvariantViolation(const std::string& what)
      : std::logic_error(what) {}
};

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantViolation(os.str());
}

}  // namespace cim

#define CIM_CHECK(expr)                                          \
  do {                                                           \
    if (!(expr)) ::cim::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define CIM_CHECK_MSG(expr, msg)                                  \
  do {                                                            \
    if (!(expr)) {                                                \
      std::ostringstream cim_check_os_;                           \
      cim_check_os_ << msg;                                       \
      ::cim::check_failed(#expr, __FILE__, __LINE__, cim_check_os_.str()); \
    }                                                             \
  } while (0)

// Scripted fault plans for chaos testing.
//
// A FaultPlan is pure data: timed link partitions (with heals), loss bursts,
// and process crash/restart windows, expressed against abstract *link* and
// *system* indices. The plan lives at this layer so any executor can script
// faults against virtual time; the interconnect layer (isc::Federation)
// interprets the indices — link i is the i-th LinkSpec, system s the s-th
// SystemConfig — and drives the plan from simulator events (see
// docs/FAULTS.md for the injection semantics and recovery invariants).
//
// Plans are either written by hand (deterministic regression scenarios) or
// sampled with make_chaos_plan, which scatters a configured number of each
// fault kind across a horizon from a seed — the scripted-chaos equivalent of
// a soak test: same seed, same storm.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace cim::sim {

struct FaultPlan {
  /// Both directions of link `link` lose every message in [begin, end).
  struct Partition {
    std::size_t link = 0;
    Time begin;
    Time end;
  };

  /// Both directions of link `link` drop messages with `drop_probability`
  /// during [begin, end) (composed with the channel's base loss by max).
  struct BurstDrop {
    std::size_t link = 0;
    Time begin;
    Time end;
    double drop_probability = 1.0;
  };

  /// Every IS-process of system `system` crashes at `crash_at` and restarts
  /// at `restart_at`, replaying its deferred upcalls from its MCS-process.
  struct CrashRestart {
    std::size_t system = 0;
    Time crash_at;
    Time restart_at;
  };

  std::vector<Partition> partitions;
  std::vector<BurstDrop> bursts;
  std::vector<CrashRestart> crashes;

  bool empty() const {
    return partitions.empty() && bursts.empty() && crashes.empty();
  }

  /// Total scripted fault events (each window counts once).
  std::size_t size() const {
    return partitions.size() + bursts.size() + crashes.size();
  }

  /// CIM_CHECKs structural sanity: windows are non-empty and start at
  /// non-negative times, burst probabilities are in [0, 1], and crash
  /// windows of the same system do not overlap.
  void validate() const;

  /// Latest end/restart instant of any scripted fault (kTimeZero if empty):
  /// after this instant no injected fault is active, so a run that quiesces
  /// later has healed completely.
  Time horizon() const;
};

struct ChaosOptions {
  Duration horizon = seconds(2);     // faults scatter over [0, horizon)
  std::size_t num_partitions = 1;
  Duration partition_length = milliseconds(500);
  std::size_t num_bursts = 2;
  Duration burst_length = milliseconds(100);
  double burst_drop = 0.5;
  std::size_t num_crashes = 1;       // crash/restart windows per plan
  Duration crash_length = milliseconds(200);
  std::size_t num_links = 1;         // fault targets: links [0, num_links)
  std::size_t num_systems = 2;       // crash targets: systems [0, num_systems)
};

/// Sample a storm: scatter the configured faults uniformly over the horizon.
/// Deterministic in (options, seed). Crash windows of one system never
/// overlap (they are spread round-robin over systems, then spaced).
FaultPlan make_chaos_plan(const ChaosOptions& options, std::uint64_t seed);

}  // namespace cim::sim

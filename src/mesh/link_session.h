// LinkSession: the crash-tolerant session layer between mesh::MeshNode and
// net::TcpLinkTransport (docs/BRIDGE.md "Failure behavior").
//
// PR 6 made each tree edge a raw TCP stream: reliable while both processes
// live, fatal the moment one hiccups. This layer gives every edge a
// *session* that outlives any one socket:
//
//  * Frames carry monotonically increasing sequence numbers plus a
//    piggybacked cumulative ACK — the same TransportFrame ARQ format the
//    in-sim ReliableTransport uses (net/reliable_transport.h), so the wire
//    is unchanged and a capture decodes with the same codec.
//  * Sent frames stay in a bounded replay journal until the peer's ACK
//    covers them; the journal doubles as the backpressure bound while a link
//    is down (senders block against it — degraded, not dead).
//  * A heartbeat tick on the shared EpollLoop sends pure-ACK frames and
//    watches the transport's last_rx_ns: a silent peer (SIGSTOP, stall)
//    flips the link to kDegraded (net.mesh.<peer>.{down,hb_miss} gauges)
//    instead of killing the node, and flips back when bytes flow again.
//  * A dead socket (EOF, RST, write failure) retires the transport
//    incarnation; the dialer side re-dials with capped exponential backoff +
//    jitter and a kRejoin handshake (session id + last-delivered seq), the
//    acceptor side answers rejoins on the node's listener. The journal
//    replays everything past the peer's delivery cursor; the receive cursor
//    drops duplicates — no pair is delivered twice or lost.
//  * Every session event is spilled to the node's SpillJournal (mesh/spill.h)
//    so `cim_bridge --resume` restores the cursors and the replay window
//    after a kill -9.
//
// Threading: send() may be called from any non-loop thread (engine,
// convergecast) and blocks against the journal bound. on_frame and the
// heartbeat tick run on the loop thread. The reconnect thread owns re-dials.
// The session mutex is never held across a blocking transport send — the
// tick must stay live while a sender is backpressured (the SIGSTOP case).
// All journaled frames reach the wire through pump_wire(), a single-holder
// drain of the journal tail under its own wire mutex: concurrent senders
// (and a rejoin replay racing them) would otherwise emit seq-stamped frames
// out of order, which the peer must treat as a fatal sequence gap.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "mesh/spill.h"
#include "net/epoll_loop.h"
#include "net/link_transport.h"
#include "net/tcp_link.h"
#include "net/wire.h"

namespace cim::mesh {

enum class LinkState : int { kUp = 0, kDegraded = 1, kFailed = 2 };

struct SessionConfig {
  std::uint64_t session_id = 0;  // deterministic per (topology, seed, edge)
  std::uint64_t self_id = 0;     // our node id
  std::uint64_t peer_id = 0;     // neighbor node id
  std::size_t link_index = 0;    // slot in the node's spill journal
  /// True iff we dialed this edge at join time; the dialer re-dials after a
  /// socket death, the acceptor waits for a kRejoin on the node's listener.
  bool dialer = false;
  std::string host = "127.0.0.1";
  std::uint16_t peer_port = 0;
  int hb_interval_ms = 100;
  int liveness_timeout_ms = 2000;
  /// After this long continuously degraded the session fails (0 = never:
  /// degrade + backpressure forever, the default).
  int degraded_timeout_ms = 0;
  int backoff_initial_ms = 50;
  int backoff_max_ms = 1000;
  /// Dial attempts per outage before the session fails (<= 0: unbounded).
  int reconnect_attempts = 40;
  int handshake_timeout_ms = 2000;
  std::size_t journal_max_frames = 4096;
  std::size_t journal_max_bytes = std::size_t{4} << 20;
  net::TcpLinkConfig link;
};

class LinkSession final : public net::LinkTransport {
 public:
  /// Payload delivery (loop thread), exactly once per payload per session
  /// lifetime — crashes included, via the spill journal's receive cursor.
  using DeliverFn = std::function<void(net::MessagePtr)>;

  /// `journal` may be null (no crash spill — tests). The loop must outlive
  /// stop(); the session must be destroyed only after loop.stop().
  LinkSession(SessionConfig cfg, net::EpollLoop& loop, SpillJournal* journal);
  ~LinkSession() override;
  LinkSession(const LinkSession&) = delete;
  LinkSession& operator=(const LinkSession&) = delete;

  /// Restore cursors + replay window from a loaded spill journal. Must be
  /// called before start().
  void restore(const SpillLinkState& state);

  /// Start the session. `fd` is the connected socket from the join
  /// handshake, or -1 to start socketless (a resumed node: the dialer side
  /// re-dials immediately, the acceptor waits for the peer's rejoin).
  void start(int fd, DeliverFn deliver);

  /// Attach a fresh socket after a successful rejoin handshake: trims the
  /// journal to the peer's delivery cursor, replays the rest, flips to kUp.
  /// Called by the reconnect thread (dialer) or accept_rejoin (acceptor).
  void resume_with_socket(int fd, std::uint64_t peer_delivered);

  /// Final drain: EOF from here on is a normal goodbye, not an outage.
  void begin_shutdown();

  /// Every sent frame acknowledged (the replay journal is empty).
  bool drained() const;

  /// Join the reconnect thread. Call before the loop stops.
  void stop();

  // net::LinkTransport — the interconnector sends pairs through here.
  void send(net::MessagePtr msg) override;
  std::size_t backlog() const override;
  const char* kind() const override { return "session"; }
  bool serializing() const override { return true; }
  std::uint64_t wire_bytes_out() const override;
  std::uint64_t wire_bytes_in() const override;

  // ---- introspection (any thread) ------------------------------------------
  LinkState state() const;
  /// Static description of a permanent failure, or null.
  const char* error() const;
  std::uint64_t session_id() const { return cfg_.session_id; }
  std::uint64_t peer_id() const { return cfg_.peer_id; }
  std::uint64_t recv_expected() const;
  /// A live socket incarnation exists right now.
  bool connected() const;
  /// Non-ctrl payload frames sent / delivered this session (across crashes).
  std::uint64_t data_sent() const;
  std::uint64_t data_delivered() const;
  // net.mesh.<peer>.* gauge sources (docs/OBSERVABILITY.md, schema v4).
  std::uint64_t hb_miss() const;
  std::uint64_t resumes() const;
  std::uint64_t dup_drops() const;
  bool down() const;
  // ---- heartbeat RTT / clock offset (docs/OBSERVABILITY.md "RTT and
  // clock offset"). Every heartbeat completes an NTP-style four-timestamp
  // exchange; samples feed the net.mesh.<peer>.rtt_ns histogram and the
  // offset table in the federation snapshot.
  /// Bounded copy of the per-edge RTT samples (ns), oldest first.
  std::vector<std::int64_t> rtt_samples() const;
  /// Pairwise clock-offset estimate (peer steady clock minus local, ns),
  /// taken from the minimum-RTT exchange seen so far — queueing delay from
  /// stalls or backpressure widens RTT but cannot corrupt this estimate.
  std::int64_t clock_offset_ns() const;
  /// RTT (ns) of the exchange backing clock_offset_ns(); -1 until the first
  /// full exchange completes.
  std::int64_t best_rtt_ns() const;
  /// Completed exchanges (including samples dropped by the storage bound).
  std::uint64_t rtt_count() const;
  // Transport stats summed across every socket incarnation.
  std::uint64_t syscalls_read() const;
  std::uint64_t syscalls_write() const;
  std::uint64_t frames_coalesced() const;
  std::uint64_t queue_full_stalls() const;

 private:
  struct Entry {
    std::uint64_t seq = 0;
    std::vector<std::uint8_t> bytes;  // full encoded frame
  };

  void on_frame(std::unique_ptr<net::TransportFrame> frame);
  /// Write journal entries from wire_next_ up in seq order to the live
  /// transport. Any thread; blocks against the transport's bounded queue
  /// while holding wire_mutex_ (never mutex_ — see the threading note).
  void pump_wire();
  void tick();
  void arm_tick();
  void handle_ack_locked(std::uint64_t ack);
  void retire_locked();  // current transport died: degrade + wake the dialer
  void fail_locked(const char* why);
  void attach_locked(int fd);  // new transport incarnation, registered
  void reconnect_main();
  int dial_and_rejoin(std::uint64_t delivered, std::uint64_t& peer_delivered,
                      bool& stale);

  SessionConfig cfg_;
  net::EpollLoop& loop_;
  SpillJournal* spill_;
  DeliverFn deliver_;

  mutable std::mutex mutex_;
  std::condition_variable journal_cv_;    // senders wait for journal room
  std::condition_variable reconnect_cv_;  // wakes/paces the dialer thread
  LinkState state_ = LinkState::kUp;
  const char* error_ = nullptr;
  bool shutdown_ = false;
  bool stopped_ = false;
  bool socket_dead_ = true;  // no live transport incarnation

  // Session cursors (mutex_). Persisted via spill_.
  std::uint64_t send_next_ = 0;      // next seq to stamp
  std::uint64_t acked_ = 0;          // peer's cumulative ack
  std::uint64_t recv_expected_ = 0;  // next inbound seq we accept
  std::uint64_t data_sent_ = 0;
  std::uint64_t data_delivered_ = 0;
  std::deque<Entry> journal_;        // unacked frames, seq ascending
  std::size_t journal_bytes_ = 0;
  /// Next seq to put on the wire (mutex_). Reset to the journal front by a
  /// rejoin — that IS the replay. Claimed optimistically: if the socket dies
  /// mid-send the journal still holds the frame and the next rejoin rewinds.
  std::uint64_t wire_next_ = 0;
  /// Serializes transport writes of seq-stamped frames (see pump_wire).
  std::mutex wire_mutex_;
  std::int64_t degraded_since_ns_ = 0;

  // Gauges (mutex_).
  std::uint64_t hb_miss_ = 0;
  std::uint64_t resumes_ = 0;
  std::uint64_t dup_drops_ = 0;

  // NTP four-timestamp state (mutex_). The peer's latest heartbeat send
  // time (peer clock) and our local receive time of it are echoed back on
  // our next heartbeat; a completed exchange yields one RTT/offset sample.
  static constexpr std::size_t kMaxRttSamples = 2048;
  std::uint64_t peer_hb_tx_ = 0;     // peer's latest ts_tx (peer clock)
  std::int64_t peer_hb_rx_ns_ = 0;   // local steady rx time of that
  std::vector<std::int64_t> rtt_samples_;
  std::uint64_t rtt_count_ = 0;
  std::int64_t best_rtt_ns_ = -1;
  std::int64_t offset_ns_ = 0;

  // Socket incarnations. `transport_` is the live one (null while down);
  // retired ones move to the graveyard and die with the session — an epoll
  // handler must outlive the loop's last dispatch (net/epoll_loop.h).
  std::unique_ptr<net::TcpLinkTransport> transport_;
  std::vector<std::unique_ptr<net::TcpLinkTransport>> graveyard_;

  std::thread reconnect_thread_;
  std::uint64_t jitter_state_;  // splitmix64, seeded deterministically
};

/// Acceptor-side rejoin: validate `msg` (a kRejoin read off a fresh
/// connection by the node's accept thread) against `session`, answer with
/// our own kRejoin carrying the local delivery cursor, and hand the socket
/// to the session. On a session-id mismatch (or null session) the join is
/// rejected with kRejectStaleSession and the fd closed. Returns success.
bool accept_rejoin(int fd, const net::wire::ControlMsg& msg,
                   std::uint64_t self_id, LinkSession* session);

}  // namespace cim::mesh

#include "common/vector_clock.h"

#include <algorithm>
#include <sstream>

namespace cim {

void VectorClock::merge(const VectorClock& other) {
  CIM_DCHECK(size() == other.size());
  for (std::size_t i = 0; i < size(); ++i) {
    data_[i] = std::max(data_[i], other.data_[i]);
  }
}

bool VectorClock::leq(const VectorClock& other) const {
  CIM_DCHECK(size() == other.size());
  for (std::size_t i = 0; i < size(); ++i) {
    if (data_[i] > other.data_[i]) return false;
  }
  return true;
}

bool VectorClock::lt(const VectorClock& other) const {
  return leq(other) && !(*this == other);
}

bool VectorClock::concurrent_with(const VectorClock& other) const {
  return !leq(other) && !other.leq(*this);
}

bool VectorClock::ready_at(const VectorClock& replica_clock,
                           std::size_t writer) const {
  CIM_DCHECK(size() == replica_clock.size());
  for (std::size_t j = 0; j < size(); ++j) {
    if (j == writer) {
      if (data_[j] != replica_clock.data_[j] + 1) return false;
    } else {
      if (data_[j] > replica_clock.data_[j]) return false;
    }
  }
  return true;
}

std::string VectorClock::to_string() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < size(); ++i) {
    if (i) os << ",";
    os << data_[i];
  }
  os << "]";
  return os.str();
}

}  // namespace cim

// Application processes.
//
// An AppProcess is the paper's application process: it issues read and write
// calls to its attached MCS-process and "blocks" until the response. In the
// event-driven runtime the blocking discipline is a FIFO of at most one
// outstanding operation: additional requests queue and issue in order, which
// preserves the sequential-process semantics. Every operation is recorded in
// the Recorder (invocation and response), forming the computations the
// checker verifies.
//
// IS-processes use read_now() for the reads issued inside upcall handlers:
// those reads must be served immediately even if the process has a pending
// queued operation (condition (b) of Section 2 — this is what prevents
// deadlock between the upcall dance and Propagate_in writes).
#pragma once

#include "checker/history.h"
#include "common/vec_queue.h"
#include "mcs/mcs_process.h"
#include "mcs/types.h"

namespace cim::mcs {

class AppProcess {
 public:
  AppProcess(ProcId id, bool is_isp, McsProcess& mcs, chk::Recorder& recorder,
             sim::Simulator& simulator, obs::Observability* obs = nullptr);
  AppProcess(const AppProcess&) = delete;
  AppProcess& operator=(const AppProcess&) = delete;

  ProcId id() const { return id_; }
  bool is_isp() const { return is_isp_; }
  McsProcess& mcs() { return mcs_; }

  /// Issue a read; `k` (optional) receives the value when the operation
  /// completes. Queued behind any outstanding operation.
  void read(VarId var, ReadCallback k = {});

  /// Issue a write; `k` (optional) runs when the operation completes. A
  /// fresh WriteId is minted from this process id and its write counter.
  void write(VarId var, Value value, WriteCallback k = {});

  /// Issue a write carrying an existing WriteId. Used by IS-processes when
  /// re-issuing a propagated write (Propagate_in), so the origin's wid
  /// follows the write into this system's trace events. `wid` must be valid.
  void write_with_wid(VarId var, Value value, WriteId wid,
                      WriteCallback k = {});

  /// Issue a read immediately, bypassing the operation queue. Used by
  /// IS-processes inside upcall handlers, where the MCS guarantees immediate
  /// service (conditions (b) and (c)).
  void read_now(VarId var, ReadCallback k = {});

  /// True when no operation is outstanding or queued.
  bool idle() const { return !busy_ && queue_.empty(); }

  /// Number of operations completed by this process.
  std::uint64_t ops_completed() const { return completed_; }

 private:
  struct Request {
    chk::OpKind kind = chk::OpKind::kRead;
    VarId var;
    Value value = kInitValue;  // writes only
    WriteId wid;               // writes only
    ReadCallback on_read;
    WriteCallback on_write;
    sim::Time enqueued_at;
  };

  void enqueue(Request req);
  void issue(Request req);
  void pump();

  ProcId id_;
  bool is_isp_;
  McsProcess& mcs_;
  chk::Recorder& recorder_;
  sim::Simulator& sim_;

  bool busy_ = false;
  bool pumping_ = false;
  VecQueue<Request> queue_;
  std::uint64_t completed_ = 0;
  std::uint32_t next_wseq_ = 0;  // per-process write counter (wid seq part)

  // Cached instrument cells (null without observability).
  obs::TraceSink* trace_ = nullptr;
  obs::Counter* m_reads_ = nullptr;
  obs::Counter* m_writes_ = nullptr;
  obs::Counter* m_isp_reads_ = nullptr;
  obs::DurationHistogram* h_op_latency_ = nullptr;
};

}  // namespace cim::mcs

// cim_top: live federation health view (docs/OBSERVABILITY.md "cim_top").
//
//   cim_top --file fed.json [--interval MS]   refreshing terminal view
//   cim_top --file fed.json --once            render one frame and exit
//
// Node 0 aggregates every node's StatsFrame into one federation metrics
// snapshot and atomically rewrites it each stats cadence tick
// (`cim_bridge --fed-metrics fed.json`); cim_top tails that file — the
// rename guarantees a reader never sees a torn document, so "connect to
// node 0" is just "share its snapshot path". Per (node, peer) link row:
// link state, replay-journal depth, heartbeat misses, reconnects,
// sent/delivered pair counts, queue-full stalls, best heartbeat RTT and the
// estimated clock offset; per-node msgs/sec is derived by differencing the
// delivered totals of successive snapshots over their sample-time delta.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/trace_read.h"
#include "stats/table.h"

namespace {

using cim::obs::JsonValue;

int usage() {
  std::cerr << "usage: cim_top --file fed.json [--interval MS] [--once]\n"
               "Tails the federation metrics snapshot node 0 refreshes"
               " (cim_bridge --fed-metrics).\n";
  return 2;
}

/// One parsed snapshot: node -> flat metric key -> value, plus the sample
/// time each node stamped its frame with.
struct Snapshot {
  std::map<std::uint64_t, std::map<std::string, std::int64_t>> nodes;
  bool ok = false;
};

Snapshot parse_snapshot(const std::string& text) {
  Snapshot snap;
  JsonValue doc;
  if (!cim::obs::parse_json(text, doc)) return snap;
  const JsonValue* metrics = doc.find("metrics");
  if (metrics == nullptr || metrics->kind != JsonValue::Kind::kArray)
    return snap;
  for (const JsonValue& m : metrics->items) {
    const JsonValue* name = m.find("name");
    const JsonValue* value = m.find("value");
    if (name == nullptr || name->kind != JsonValue::Kind::kString ||
        value == nullptr || !value->is_number()) {
      continue;
    }
    std::string_view sv = name->s;
    const std::string_view pre = "fed.node.";
    if (sv.substr(0, pre.size()) != pre) continue;
    sv.remove_prefix(pre.size());
    const std::size_t dot = sv.find('.');
    if (dot == std::string_view::npos) continue;
    std::uint64_t node = 0;
    bool num = !sv.substr(0, dot).empty();
    for (char c : sv.substr(0, dot)) {
      if (c < '0' || c > '9') { num = false; break; }
      node = node * 10 + static_cast<std::uint64_t>(c - '0');
    }
    if (!num) continue;
    snap.nodes[node][std::string(sv.substr(dot + 1))] = value->as_int();
  }
  snap.ok = !snap.nodes.empty();
  return snap;
}

std::string fmt_us(std::int64_t ns) {
  if (ns < 0) return "-";  // no sample yet (rtt_best_ns starts at -1)
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", static_cast<double>(ns) / 1000.0);
  return buf;
}

std::string fmt_us_signed(std::int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", static_cast<double>(ns) / 1000.0);
  return buf;
}

/// Render one frame. `prev` (if ok) supplies the rate baseline.
void render(const Snapshot& snap, const Snapshot& prev, std::ostream& os) {
  cim::stats::Table table({"node", "gen", "peer", "link", "jrnl", "hb_miss",
                           "reconn", "sent", "delivered", "stalls", "rtt_us",
                           "offset_us", "msgs_s"});
  for (const auto& [node, kv] : snap.nodes) {
    auto get = [&kv](const std::string& key, std::int64_t def = 0) {
      const auto it = kv.find(key);
      return it != kv.end() ? it->second : def;
    };
    // Per-node delivery rate across snapshots: sum of delivered over every
    // peer link, differenced against the previous frame's sum.
    std::string rate = "-";
    if (prev.ok) {
      const auto pit = prev.nodes.find(node);
      if (pit != prev.nodes.end()) {
        std::int64_t now_sum = 0, prev_sum = 0;
        for (const auto& [key, v] : kv)
          if (key.size() > 16 &&
              key.compare(key.size() - 16, 16, ".pairs_delivered") == 0)
            now_sum += v;
        for (const auto& [key, v] : pit->second)
          if (key.size() > 16 &&
              key.compare(key.size() - 16, 16, ".pairs_delivered") == 0)
            prev_sum += v;
        const std::int64_t dt_ns = get("t_ns") - [&] {
          const auto it = pit->second.find("t_ns");
          return it != pit->second.end() ? it->second : std::int64_t{0};
        }();
        if (dt_ns > 0) {
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%.1f",
                        static_cast<double>(now_sum - prev_sum) * 1e9 /
                            static_cast<double>(dt_ns));
          rate = buf;
        }
      }
    }
    // One row per peer.<id>.* group.
    std::map<std::uint64_t, bool> peers;
    for (const auto& [key, v] : kv) {
      if (key.rfind("peer.", 0) != 0) continue;
      const std::size_t dot = key.find('.', 5);
      if (dot == std::string::npos) continue;
      std::uint64_t peer = 0;
      bool num = dot > 5;
      for (std::size_t i = 5; i < dot; ++i) {
        if (key[i] < '0' || key[i] > '9') { num = false; break; }
        peer = peer * 10 + static_cast<std::uint64_t>(key[i] - '0');
      }
      if (num) peers[peer] = true;
    }
    bool first = true;
    for (const auto& [peer, unused] : peers) {
      const std::string p = "peer." + std::to_string(peer) + ".";
      table.add_row(first ? std::to_string(node) : "",
                    first ? std::to_string(get("generation")) : "", peer,
                    get(p + "down") != 0 ? "DOWN" : "up",
                    get(p + "journal_depth"), get(p + "hb_miss"),
                    get(p + "resumes"), get(p + "pairs_sent"),
                    get(p + "pairs_delivered"), get(p + "queue_full_stalls"),
                    fmt_us(get(p + "rtt_ns", -1)),
                    fmt_us_signed(get(p + "offset_ns")),
                    first ? rate : "-");
      first = false;
    }
    if (peers.empty()) {
      table.add_row(std::to_string(node), std::to_string(get("generation")),
                    "-", "-", "-", "-", "-", "-", "-", "-", "-", "-", rate);
    }
  }
  table.print(os);
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  int interval_ms = 1000;
  bool once = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--file" && (v = next())) {
      path = v;
    } else if (arg == "--interval" && (v = next())) {
      interval_ms = std::stoi(v);
    } else if (arg == "--once") {
      once = true;
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();

  Snapshot prev;
  int misses = 0;
  while (true) {
    std::ifstream in(path);
    Snapshot snap;
    if (in) {
      std::ostringstream text;
      text << in.rdbuf();
      snap = parse_snapshot(text.str());
    }
    if (!snap.ok) {
      if (once || ++misses > 50) {
        std::cerr << "cim_top: no usable snapshot at " << path
                  << " (is node 0 running with --fed-metrics?)\n";
        return 1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
      continue;
    }
    misses = 0;
    if (!once) std::cout << "\033[2J\033[H";  // clear + home
    std::cout << "federation nodes: " << snap.nodes.size() << "   ("
              << path << ")\n\n";
    render(snap, prev, std::cout);
    std::cout.flush();
    if (once) return 0;
    prev = std::move(snap);
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}

// Epoll reactor for the multi-link TCP mesh (tools/cim_bridge, docs/BRIDGE.md).
//
// One EpollLoop per OS process drives every socket of that process's mesh
// node from a single dedicated thread: edge-triggered readiness
// (EPOLLIN | EPOLLOUT | EPOLLET), an eventfd for cross-thread wakeups, and a
// task queue so other threads can hand work to the loop thread. This
// replaces the thread-per-socket blocking design the two-process bridge
// used: with n-system federations a node can serve many links, and the loop
// gives the transports a place to coalesce bursts of frames into single
// writev syscalls (net/tcp_link.h).
//
// Contract (edge-triggered): a handler's on_ready() must drain the fd until
// EAGAIN — the loop will not re-report a level, only a new edge.
//
// Threading and lifetime:
//  * add() may be called from any thread before or after start().
//  * remove() only unregisters the fd (no further dispatch will *start*);
//    a dispatch already running on the loop thread may still be inside the
//    handler when remove() returns. Handlers must therefore be destroyed
//    only after stop() has joined the loop thread — the teardown order every
//    embedder follows (stop the loop, then destroy transports).
//  * post() hands a task to the loop thread; tasks run interleaved with
//    event dispatch, in post order.
//
// Syscall accounting: the loop counts epoll_wait returns and eventfd
// wakeups; transports count their read/writev calls. tools/cim_bridge folds
// both into the net.mesh.* counters (docs/OBSERVABILITY.md).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace cim::net {

struct FaultHooks;

class EpollLoop {
 public:
  /// Readiness callback target. `events` is the epoll bit set (EPOLLIN,
  /// EPOLLOUT, EPOLLERR, EPOLLHUP).
  class FdHandler {
   public:
    virtual ~FdHandler() = default;
    virtual void on_ready(std::uint32_t events) = 0;
  };

  EpollLoop();
  ~EpollLoop();
  EpollLoop(const EpollLoop&) = delete;
  EpollLoop& operator=(const EpollLoop&) = delete;

  /// Register `fd` edge-triggered for read+write readiness. The handler is
  /// borrowed and must stay valid until remove(fd) + stop() (see header).
  void add(int fd, FdHandler* handler);

  /// Unregister `fd`. Safe from any thread; see the lifetime contract above.
  void remove(int fd);

  /// Start the loop thread. Idempotent.
  void start();

  /// Wake the loop, drain pending tasks, and join the thread. Idempotent.
  void stop();

  /// Run `fn` on the loop thread (FIFO with other posted tasks).
  void post(std::function<void()> fn);

  /// Run `fn` on the loop thread once, roughly `delay_ms` from now. This is
  /// what drives the session layer's heartbeats and liveness checks
  /// (mesh::LinkSession): the loop computes its epoll_wait timeout from the
  /// earliest pending timer. Timers that are still pending when the loop
  /// stops are discarded, never run.
  void post_after(int delay_ms, std::function<void()> fn);

  /// Deterministic fault injection (tests/chaos bench; docs/FAULTS.md).
  /// Borrowed; set before start(), null = off.
  void set_fault_hooks(const FaultHooks* hooks) { fault_hooks_ = hooks; }

  /// Force one loop iteration (flush-arming from other threads). Cheaper
  /// than post() when the waker only needs the loop to look at its queues.
  void wake();

  bool on_loop_thread() const {
    return std::this_thread::get_id() == loop_thread_id_.load(
        std::memory_order_acquire);
  }

  // ---- syscall accounting ----------------------------------------------------
  std::uint64_t epoll_waits() const {
    return epoll_waits_.load(std::memory_order_relaxed);
  }
  std::uint64_t wakeups() const {
    return wakeups_.load(std::memory_order_relaxed);
  }

 private:
  void loop();
  void drain_wake_fd();
  void run_tasks();
  void run_due_timers();
  int next_timer_timeout_ms();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd
  std::thread thread_;
  std::atomic<std::thread::id> loop_thread_id_{};
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_flag_{false};
  bool stopped_ = false;
  const FaultHooks* fault_hooks_ = nullptr;

  std::mutex mutex_;  // guards handlers_, tasks_, and timers_
  std::unordered_map<int, FdHandler*> handlers_;
  std::vector<std::function<void()>> tasks_;
  std::multimap<std::int64_t, std::function<void()>> timers_;  // deadline ns

  std::atomic<std::uint64_t> epoll_waits_{0};
  std::atomic<std::uint64_t> wakeups_{0};
};

}  // namespace cim::net

// Causal-consistency verification.
//
// The paper (Definitions 1-5) uses Ahamad et al.'s *causal memory* (CM):
// a computation α is causal iff for every process i there is a *causal view*
// β_i — a permutation of α_i (all writes plus i's reads) that is legal and
// preserves the causal order ⇝ (the transitive closure of program order and
// writes-into order).
//
// Deciding this directly involves searching for a permutation; for a fixed
// reads-from relation, CM admits a polynomial characterization by *bad
// patterns* (Bouajjani, Enea, Guerraoui, Hamza, "On verifying causal
// consistency", POPL 2017, Theorem for CM): α is causal iff it exhibits
// none of
//
//   CyclicCO         — co := (po ∪ rf)+ has a cycle
//   ThinAirRead      — a read returns a value never written to that variable
//   WriteCOInitRead  — a read returns the initial value although some write
//                      to the variable is co-before the read
//   WriteCORead      — a read returns the value of w1 although another write
//                      w2 to the same variable satisfies w1 →co w2 →co read
//   CyclicHB         — the per-process happens-before fixpoint is cyclic
//   WriteHBInitRead  — like WriteCOInitRead but under the per-process
//                      happens-before
//
// where, for process i, HB_i is the least transitive relation containing co
// restricted to (writes ∪ reads_i) and closed under: if r ∈ reads_i(x) reads
// from w2 and w1 is another write to x with (w1, r) ∈ HB_i, then
// (w1, w2) ∈ HB_i.
//
// The engine is the sparse dependency-graph architecture of graph.h: known
// po/rf edges as adjacency lists, Kahn toposort + Tarjan SCC for cycles,
// vector-clock reachability for the pattern scans — O((n + m)·P) per pass
// instead of the old dense O(n²) matrices.
//
// **The distinct-value assumption is gone.** The paper assumes each value is
// written at most once per variable, which makes reads-from a function of
// the read; this checker instead treats a repeated (variable, value) pair as
// a *constraint source*: α is causal iff SOME admissible reads-from
// assignment (each read of value v bound to one write of v to the same
// variable; reads of the initial value optionally bound to no write) yields
// a pattern-free history. Violations found using the unambiguous edges alone
// are definite under every assignment (adding edges only grows co), so
// ambiguity costs nothing on the fast path; only the residual ambiguous
// reads are resolved by a budgeted backtracking search over pruned candidate
// sets. See docs/CHECKER.md for the full semantics and complexity story.
//
// SearchChecker (search_checker.h) decides the definition directly by
// enumerating assignments and backtracking; property tests cross-validate
// the two on random histories, including histories with repeated values.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "checker/history.h"
#include "checker/relation.h"

namespace cim::chk {

enum class BadPattern {
  kNone,
  kCyclicCO,
  kThinAirRead,
  kWriteCOInitRead,
  kWriteCORead,
  kCyclicHB,
  kWriteHBInitRead,
  kCyclicCF,         // CCv only: conflict/arbitration cycle
  kResidualLimit,    // residual-constraint budget exhausted: verdict unknown
};

const char* to_string(BadPattern p);

/// Consistency model to verify.
enum class Level {
  kCC,   // weak causal consistency: first four patterns only
  kCM,   // causal memory (the paper's model): adds the per-process HB patterns
  kCCv,  // causal convergence: adds CyclicCF — all replicas must agree on one
         // arbitration of concurrent same-variable writes. None of the
         // protocols here implement arbitration, so CCv is expected to FAIL
         // on executions where readers order concurrent writes differently;
         // the level exists to demonstrate that separation.
};

/// Work counters from one check, for benches and the cim_trace summary.
struct CheckStats {
  std::size_t ops = 0;
  std::size_t explicit_edges = 0;    // rf ∪ derived ∪ cf edges materialized
  std::size_t ambiguous_reads = 0;   // reads with >1 admissible writer
  std::size_t assignments_tried = 0; // complete rf assignments evaluated
};

struct CheckResult {
  BadPattern pattern = BadPattern::kNone;
  std::string detail;  // human-readable witness description
  CheckStats stats;

  bool ok() const { return pattern == BadPattern::kNone; }
  explicit operator bool() const { return ok(); }
};

struct CheckOptions {
  /// Maximum complete reads-from assignments the residual search evaluates
  /// before returning kResidualLimit (only reachable when repeated values
  /// make reads-from ambiguous AND the fast path was inconclusive).
  std::size_t residual_budget = 256;
};

class CausalChecker {
 public:
  CausalChecker() = default;
  explicit CausalChecker(CheckOptions options) : options_(options) {}

  /// Verify `history` against the model. O((n+m)·P) for kCC/kCCv and per
  /// HB-fixpoint round; kCM runs one fixpoint per process with reads.
  CheckResult check(const History& history, Level level = Level::kCM) const;

  /// The causal order co = (po ∪ rf)+ of a history as a dense Relation,
  /// exposed for tests and the latency experiments. Returns nullopt when co
  /// is cyclic, a read is thin-air, or reads-from is ambiguous (repeated
  /// values read back) — callers needing the ambiguous case run check().
  std::optional<Relation> causal_order(const History& history) const;

 private:
  CheckOptions options_;
};

}  // namespace cim::chk

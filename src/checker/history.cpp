#include "checker/history.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace cim::chk {

std::string Op::to_string() const {
  std::ostringstream os;
  os << (kind == OpKind::kRead ? "r" : "w") << "(" << var << ")" << value
     << "@" << cim::to_string(proc) << (is_isp ? "[isp]" : "") << "#"
     << proc_seq;
  return os.str();
}

History::History(std::vector<Op> ops) {
  std::stable_sort(ops.begin(), ops.end(), [](const Op& a, const Op& b) {
    if (a.proc != b.proc) return a.proc < b.proc;
    return a.proc_seq < b.proc_seq;
  });
  HistoryBuilder b;
  for (const Op& op : ops) b.add(op);
  *this = b.build();
}

std::size_t History::proc_dense(std::size_t i) const {
  // Largest pidx with span_begin_[pidx] <= i.
  const auto it = std::upper_bound(span_begin_.begin(), span_begin_.end(), i);
  return static_cast<std::size_t>(it - span_begin_.begin()) - 1;
}

Op History::op(std::size_t i) const {
  const std::size_t p = proc_dense(i);
  Op o;
  o.id = OpId{static_cast<std::uint64_t>(i)};
  o.proc = processes_[p];
  o.is_isp = isp_[i];
  o.kind = kind(i);
  o.var = var_.var(i);
  o.value = value_[i];
  o.proc_seq = i - span_begin_[p];
  o.invoked = sim::Time{invoked_[i]};
  o.responded = sim::Time{invoked_[i] + duration_[i]};
  return o;
}

History::Span History::span_of(ProcId p) const {
  const auto it = std::lower_bound(processes_.begin(), processes_.end(), p);
  if (it == processes_.end() || *it != p) return Span{};
  const std::size_t pidx = static_cast<std::size_t>(it - processes_.begin());
  return process_span(pidx);
}

std::size_t History::bytes_total() const {
  return kind_.bytes() + isp_.bytes() + var_.bytes() + value_.bytes() +
         invoked_.bytes() + duration_.bytes() +
         processes_.size() * sizeof(ProcId) +
         span_begin_.size() * sizeof(std::size_t);
}

double History::bytes_per_op() const {
  if (empty()) return 0.0;
  return static_cast<double>(bytes_total()) / static_cast<double>(size());
}

std::string History::to_string() const {
  std::ostringstream os;
  for (std::size_t p = 0; p < num_processes(); ++p) {
    os << cim::to_string(processes_[p]) << ":";
    const Span s = process_span(p);
    for (std::size_t i = s.begin; i < s.end; ++i) {
      os << " " << op(i).to_string();
    }
    os << "\n";
  }
  return os.str();
}

void HistoryBuilder::add(ProcId proc, bool is_isp, OpKind kind, VarId var,
                         Value value, sim::Time invoked, sim::Time responded) {
  Chunk& c = chunks_[proc];
  c.kind.push_back(kind == OpKind::kWrite);
  c.isp.push_back(is_isp);
  c.var_dense.push_back(dict_.intern(var));
  c.value.push_back(value);
  c.invoked.push_back(invoked.ns);
  c.duration.push_back(responded.ns - invoked.ns);
  ++c.n;
  ++n_;
}

History HistoryBuilder::build() {
  History h;
  CIM_CHECK_MSG(n_ < col::kSlotOverflow, "history exceeds 2^32-1 operations");
  h.kind_.reserve(n_);
  h.isp_.reserve(n_);
  h.var_.reserve(n_);
  h.value_.reserve(n_);
  h.invoked_.reserve(n_);
  h.duration_.reserve(n_);
  h.processes_.reserve(chunks_.size());
  h.span_begin_.reserve(chunks_.size() + 1);
  // The final column adopts the shared dictionary; chunk streams re-encode
  // through cursors (O(1) amortized per op, no Op materialization).
  h.var_.dict() = std::move(dict_);
  std::size_t at = 0;
  for (auto& [proc, c] : chunks_) {
    h.processes_.push_back(proc);
    h.span_begin_.push_back(at);
    col::I64Column::Cursor value(c.value);
    col::DeltaI64Column::Cursor invoked(c.invoked);
    col::I64Column::Cursor duration(c.duration);
    for (std::size_t i = 0; i < c.n; ++i) {
      h.kind_.push_back(c.kind[i]);
      h.isp_.push_back(c.isp[i]);
      h.var_.push_dense(c.var_dense[i]);
      h.value_.push_back(value.next());
      h.invoked_.push_back(invoked.next());
      h.duration_.push_back(duration.next());
    }
    at += c.n;
  }
  h.span_begin_.push_back(at);
  chunks_.clear();
  dict_ = col::VarDict{};
  n_ = 0;
  return h;
}

OpId Recorder::begin(ProcId proc, bool is_isp, OpKind kind, VarId var,
                     Value value, sim::Time now) {
  const OpId id{static_cast<std::uint64_t>(flags_.size())};
  const std::uint64_t seq = next_seq_[proc]++;
  CIM_CHECK_MSG(seq <= 0xFFFFFFFFu, "per-process program order exceeds 2^32");
  proc_.push_back(proc);
  flags_.push_back(static_cast<std::uint8_t>(
      (kind == OpKind::kWrite ? kFlagWrite : 0) | (is_isp ? kFlagIsp : 0)));
  var_.push_back(var);
  value_.push_back(value);
  proc_seq_.push_back(static_cast<std::uint32_t>(seq));
  invoked_.push_back(now);
  responded_.push_back(sim::Time{});
  if (listener_ && kind == OpKind::kWrite) listener_(materialize(id.value));
  return id;
}

void Recorder::end_read(OpId id, Value result, sim::Time now) {
  CIM_CHECK(id.value < flags_.size());
  const std::size_t i = id.value;
  CIM_CHECK_MSG((flags_[i] & kFlagWrite) == 0, "end_read on a write op");
  CIM_CHECK_MSG((flags_[i] & kFlagCompleted) == 0, "operation completed twice");
  value_[i] = result;
  responded_[i] = now;
  flags_[i] |= kFlagCompleted;
  if (listener_) listener_(materialize(i));
}

void Recorder::end_write(OpId id, sim::Time now) {
  CIM_CHECK(id.value < flags_.size());
  const std::size_t i = id.value;
  CIM_CHECK_MSG((flags_[i] & kFlagWrite) != 0, "end_write on a read op");
  CIM_CHECK_MSG((flags_[i] & kFlagCompleted) == 0, "operation completed twice");
  responded_[i] = now;
  flags_[i] |= kFlagCompleted;
}

void Recorder::reserve(std::size_t n) {
  proc_.reserve(n);
  flags_.reserve(n);
  var_.reserve(n);
  value_.reserve(n);
  proc_seq_.reserve(n);
  invoked_.reserve(n);
  responded_.reserve(n);
}

Op Recorder::materialize(std::size_t i) const {
  Op op;
  op.id = OpId{static_cast<std::uint64_t>(i)};
  op.proc = proc_[i];
  op.is_isp = (flags_[i] & kFlagIsp) != 0;
  op.kind = (flags_[i] & kFlagWrite) ? OpKind::kWrite : OpKind::kRead;
  op.var = var_[i];
  op.value = value_[i];
  op.proc_seq = proc_seq_[i];
  op.invoked = invoked_[i];
  op.responded = responded_[i];
  return op;
}

template <typename Pred>
History Recorder::snapshot(Pred pred) const {
  // The log is in global begin() order, so a forward scan visits each
  // process's operations in program order — exactly what HistoryBuilder
  // wants. But History orders by (proc, proc_seq), and an op whose *begin*
  // precedes another's may respond later; proc_seq was assigned at begin(),
  // so per-process scan order is still program order.
  HistoryBuilder b;
  for (std::size_t i = 0; i < flags_.size(); ++i) {
    if ((flags_[i] & kFlagCompleted) == 0) continue;
    if (!pred(i)) continue;
    b.add(proc_[i], (flags_[i] & kFlagIsp) != 0,
          (flags_[i] & kFlagWrite) ? OpKind::kWrite : OpKind::kRead, var_[i],
          value_[i], invoked_[i], responded_[i]);
  }
  return b.build();
}

History Recorder::full() const {
  return snapshot([](std::size_t) { return true; });
}

History Recorder::system(SystemId sys) const {
  return snapshot([&](std::size_t i) { return proc_[i].system == sys; });
}

History Recorder::federation() const {
  return snapshot([&](std::size_t i) { return (flags_[i] & kFlagIsp) == 0; });
}

}  // namespace cim::chk

// Unit/integration tests: the partial-replication causal protocol [8].
#include <gtest/gtest.h>

#include "checker/causal_checker.h"
#include "helpers.h"
#include "protocols/partial_rep.h"

namespace cim::proto {
namespace {

using test::X;
using test::Y;

// Interest layout used throughout: process i holds variable i (private) and
// variable 9 (shared by everyone).
bool own_plus_shared(std::uint16_t index, VarId var) {
  return var.value == index || var.value == 9;
}

isc::FederationConfig partial_system(std::uint16_t procs,
                                     std::uint64_t seed = 1) {
  return test::single_system(
      procs, partial_rep_protocol(own_plus_shared, procs), seed);
}

TEST(PartialRep, SharedVariablePropagatesToAll) {
  isc::Federation fed(partial_system(3));
  fed.system(0).app(0).write(VarId{9}, 7);
  fed.run();
  for (std::uint16_t p = 0; p < 3; ++p) {
    Value got = -1;
    fed.system(0).app(p).read(VarId{9}, [&](Value v) { got = v; });
    fed.run();
    EXPECT_EQ(got, 7) << "process " << p;
  }
}

TEST(PartialRep, PrivateVariableStoredOnlyAtHolder) {
  isc::Federation fed(partial_system(3));
  fed.system(0).app(1).write(VarId{1}, 5);
  fed.run();
  auto& p0 = dynamic_cast<PartialRepProcess&>(fed.system(0).mcs(0));
  auto& p1 = dynamic_cast<PartialRepProcess&>(fed.system(0).mcs(1));
  auto& p2 = dynamic_cast<PartialRepProcess&>(fed.system(0).mcs(2));
  EXPECT_EQ(p1.replica_value(VarId{1}), 5);
  EXPECT_EQ(p0.replica_value(VarId{1}), kInitValue);  // marker only
  EXPECT_EQ(p2.replica_value(VarId{1}), kInitValue);
  // But causal knowledge advanced everywhere.
  EXPECT_EQ(p0.clock(), p1.clock());
  EXPECT_EQ(p2.clock(), p1.clock());
}

TEST(PartialRep, ReadOutsideInterestSetThrows) {
  isc::Federation fed(partial_system(3));
  EXPECT_THROW(fed.system(0).app(0).read(VarId{2}), InvariantViolation);
}

TEST(PartialRep, WriteOutsideInterestSetThrows) {
  isc::Federation fed(partial_system(3));
  EXPECT_THROW(fed.system(0).app(0).write(VarId{2}, 1), InvariantViolation);
}

TEST(PartialRep, MarkersPreserveCausalDependencies) {
  // p0 writes its private x0, then the shared x9 (program order). p2 must
  // not expose x9's value before having processed x0's *marker* — readiness
  // is exactly ANBKH's.
  isc::FederationConfig cfg = partial_system(3);
  auto counter = std::make_shared<int>(0);
  cfg.systems[0].intra_delay = [counter]() -> net::DelayModelPtr {
    // Channel order: (0->1),(0->2),(1->0),(1->2),(2->0),(2->1).
    // Make 0->2 slow so p2 receives the later write's update first... both
    // writes travel the same channel (FIFO), so instead make p0's channel
    // jitter-free and verify ordering semantics via the checker.
    (void)counter;
    return std::make_unique<net::UniformDelay>(sim::microseconds(100),
                                               sim::milliseconds(10));
  };
  isc::Federation fed(std::move(cfg));
  fed.system(0).app(0).write(VarId{0}, 1);
  fed.system(0).app(0).write(VarId{9}, 2);
  fed.run();
  auto& p2 = dynamic_cast<PartialRepProcess&>(fed.system(0).mcs(2));
  EXPECT_EQ(p2.replica_value(VarId{9}), 2);
  EXPECT_EQ(p2.clock()[0], 2u);  // both of p0's writes accounted for
  auto res = chk::CausalChecker{}.check(fed.federation_history());
  EXPECT_TRUE(res.ok()) << res.detail;
}

TEST(PartialRep, MarkerBytesSmallerThanUpdates) {
  isc::Federation fed(partial_system(2));
  // Private write: one marker to the peer.
  fed.system(0).app(0).write(VarId{0}, 1);
  fed.run();
  const auto after_marker = fed.fabric().class_stats(net::LinkClass::kIntraSystem);
  // Shared write: one full update to the peer.
  fed.system(0).app(0).write(VarId{9}, 2);
  fed.run();
  const auto after_update = fed.fabric().class_stats(net::LinkClass::kIntraSystem);
  const auto marker_bytes = after_marker.bytes;
  const auto update_bytes = after_update.bytes - after_marker.bytes;
  EXPECT_LT(marker_bytes, update_bytes);
  EXPECT_EQ(after_update.messages, 2u);
}

// Random workloads restricted to interest sets stay causal.
class PartialRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PartialRandom, InterestRespectingWorkloadIsCausal) {
  isc::FederationConfig cfg = partial_system(4, GetParam());
  cfg.systems[0].intra_delay = [] {
    return std::make_unique<net::UniformDelay>(sim::microseconds(100),
                                               sim::milliseconds(15));
  };
  isc::Federation fed(std::move(cfg));

  Rng rng(GetParam() * 5 + 3);
  Value next = 1;
  std::vector<std::unique_ptr<wl::ScriptRunner>> runners;
  for (std::uint16_t p = 0; p < 4; ++p) {
    std::vector<wl::Step> script;
    for (int i = 0; i < 30; ++i) {
      const VarId var = rng.chance(0.5) ? VarId{p} : VarId{9};
      if (rng.chance(0.5)) {
        script.push_back(wl::write_step(var, next++));
      } else {
        script.push_back(wl::read_step(var));
      }
    }
    runners.push_back(std::make_unique<wl::ScriptRunner>(
        fed.simulator(), fed.system(0).app(p), std::move(script),
        sim::milliseconds(0), sim::milliseconds(5), GetParam() * 10 + p));
    runners.back()->start();
  }
  fed.run();
  for (const auto& r : runners) ASSERT_TRUE(r->done());
  auto res = chk::CausalChecker{}.check(fed.federation_history());
  EXPECT_TRUE(res.ok()) << chk::to_string(res.pattern) << ": " << res.detail;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartialRandom,
                         ::testing::Range<std::uint64_t>(1, 11));

// Interconnection: the IS-process slot replicates everything even though
// application processes are partial, and the union is causal.
TEST(PartialRep, InterconnectsWithFullReplicationSystem) {
  isc::FederationConfig cfg;
  cfg.seed = 4;
  {
    mcs::SystemConfig sc;
    sc.id = SystemId{0};
    sc.num_app_processes = 3;
    sc.protocol = partial_rep_protocol(own_plus_shared, 3);
    sc.seed = 40;
    cfg.systems.push_back(std::move(sc));
  }
  {
    mcs::SystemConfig sc;
    sc.id = SystemId{1};
    sc.num_app_processes = 2;
    sc.protocol = proto::anbkh_protocol();
    sc.seed = 41;
    cfg.systems.push_back(std::move(sc));
  }
  isc::LinkSpec link;
  link.system_a = 0;
  link.system_b = 1;
  cfg.links.push_back(link);
  isc::Federation fed(std::move(cfg));

  // partial-rep satisfies Causal Updating -> IS-protocol 1.
  EXPECT_FALSE(fed.interconnector().shared_isp(0).pre_reads_enabled());

  // S1 writes the shared variable and a "private" one of S0's p1; both
  // propagate into S0 via the ISP (which holds everything).
  fed.system(1).app(0).write(VarId{9}, 100);
  fed.system(1).app(0).write(VarId{1}, 101);
  fed.run();
  Value shared = -1, private1 = -1;
  fed.system(0).app(2).read(VarId{9}, [&](Value v) { shared = v; });
  fed.system(0).app(1).read(VarId{1}, [&](Value v) { private1 = v; });
  fed.run();
  EXPECT_EQ(shared, 100);
  EXPECT_EQ(private1, 101);

  // And writes in S0 propagate out.
  fed.system(0).app(0).write(VarId{9}, 102);
  fed.run();
  Value in_s1 = -1;
  fed.system(1).app(1).read(VarId{9}, [&](Value v) { in_s1 = v; });
  fed.run();
  EXPECT_EQ(in_s1, 102);

  auto res = chk::CausalChecker{}.check(fed.federation_history());
  EXPECT_TRUE(res.ok()) << res.detail;
}

TEST(PartialRep, FullInterestVariantBehavesLikeAnbkh) {
  isc::Federation fed(
      test::single_system(3, partial_rep_protocol_full(), 2));
  fed.system(0).app(0).write(X, 1);
  fed.run();
  for (std::uint16_t p = 0; p < 3; ++p) {
    auto& mp = dynamic_cast<PartialRepProcess&>(fed.system(0).mcs(p));
    EXPECT_EQ(mp.replica_value(X), 1);
  }
  EXPECT_STREQ(fed.system(0).mcs(0).protocol_name(), "partial-rep");
  EXPECT_TRUE(fed.system(0).mcs(0).satisfies_causal_updating());
}

}  // namespace
}  // namespace cim::proto

#include "obs/perfetto_export.h"

#include <cstdio>
#include <ostream>
#include <set>
#include <string>
#include <utility>

#include "obs/json.h"
#include "obs/span_index.h"

namespace cim::obs {

namespace {

// Synthetic pid for records with no process affinity; system ids are
// uint16, so 1<<16 cannot collide.
constexpr std::uint32_t kGlobalPid = 1u << 16;

struct Track {
  std::uint32_t pid = kGlobalPid;
  std::uint32_t tid = 0;
};

Track track_of(const ParsedTraceEvent& ev) {
  ProcId p{};
  if (ev.field_proc("proc", p) || ev.field_proc("dst", p) ||
      ev.field_proc("src", p)) {
    return Track{p.system.value, p.index};
  }
  return Track{};
}

double to_us(std::int64_t ns) { return static_cast<double>(ns) / 1000.0; }

void write_json_value(std::ostream& os, const JsonValue& v) {
  switch (v.kind) {
    case JsonValue::Kind::kNull: os << "null"; break;
    case JsonValue::Kind::kBool: os << (v.b ? "true" : "false"); break;
    case JsonValue::Kind::kInt: os << v.i; break;
    case JsonValue::Kind::kDouble: json_double(os, v.d); break;
    case JsonValue::Kind::kString: json_string(os, v.s); break;
    case JsonValue::Kind::kArray: {
      os << '[';
      bool first = true;
      for (const JsonValue& item : v.items) {
        if (!first) os << ',';
        first = false;
        write_json_value(os, item);
      }
      os << ']';
      break;
    }
    case JsonValue::Kind::kObject: {
      os << '{';
      bool first = true;
      for (const auto& [k, member] : v.members) {
        if (!first) os << ',';
        first = false;
        json_string(os, k);
        os << ':';
        write_json_value(os, member);
      }
      os << '}';
      break;
    }
  }
}

class EventArray {
 public:
  explicit EventArray(std::ostream& os) : os_(os) {}

  /// Open the next event object with the common header fields.
  JsonWriter& next(const char* ph, const char* name, double ts, Track tr) {
    if (!first_) os_ << ",\n";
    first_ = false;
    w_.begin_object();
    w_.kv("ph", ph);
    w_.kv("name", name);
    w_.kv("ts", ts);
    w_.kv("pid", std::uint64_t{tr.pid});
    w_.kv("tid", std::uint64_t{tr.tid});
    return w_;
  }

  void close() { w_.end_object(); }

 private:
  std::ostream& os_;
  JsonWriter w_{os_};
  bool first_ = true;
};

std::string proc_label(ProcId p) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "p(%u,%u)", unsigned(p.system.value),
                unsigned(p.index));
  return buf;
}

std::string wid_label(WriteId wid) {
  const ProcId o = wid.origin();
  char buf[40];
  std::snprintf(buf, sizeof(buf), "w(%u,%u)#%u", unsigned(o.system.value),
                unsigned(o.index), unsigned(wid.seq()));
  return buf;
}

}  // namespace

void write_chrome_trace(std::ostream& os,
                        const std::vector<ParsedTraceEvent>& events) {
  SpanIndex spans;
  spans.index(events);

  // Track discovery: every proc any record or span origin mentions.
  std::set<std::pair<std::uint32_t, std::uint32_t>> tracks;
  bool global_track = false;
  for (const ParsedTraceEvent& ev : events) {
    const Track tr = track_of(ev);
    if (tr.pid == kGlobalPid) {
      global_track = true;
    } else {
      tracks.emplace(tr.pid, tr.tid);
    }
  }
  for (WriteId wid : spans.wids()) {
    const ProcId o = wid.origin();
    tracks.emplace(o.system.value, o.index);
  }

  os << "{\"traceEvents\":[\n";
  EventArray arr(os);

  // Metadata: name processes and threads so Perfetto's timeline is legible.
  std::set<std::uint32_t> pids_named;
  for (const auto& [pid, tid] : tracks) {
    if (pids_named.insert(pid).second) {
      JsonWriter& w = arr.next("M", "process_name", 0.0, Track{pid, 0});
      w.key("args");
      w.begin_object();
      w.kv("name", "system " + std::to_string(pid));
      w.end_object();
      arr.close();
    }
    JsonWriter& w = arr.next("M", "thread_name", 0.0, Track{pid, tid});
    w.key("args");
    w.begin_object();
    w.kv("name", proc_label(ProcId{SystemId{static_cast<std::uint16_t>(pid)},
                                   static_cast<std::uint16_t>(tid)}));
    w.end_object();
    arr.close();
  }
  if (global_track) {
    JsonWriter& w = arr.next("M", "process_name", 0.0, Track{});
    w.key("args");
    w.begin_object();
    w.kv("name", "trace");
    w.end_object();
    arr.close();
  }

  // Every record as an instant on its track, fields passed through as args.
  for (const ParsedTraceEvent& ev : events) {
    const std::string name = ev.cat + "." + ev.name;
    JsonWriter& w = arr.next("i", name.c_str(), to_us(ev.t), track_of(ev));
    w.kv("cat", ev.cat);
    w.kv("s", "t");  // thread-scoped instant
    w.key("args");
    write_json_value(os, ev.fields);
    arr.close();
  }

  // One async span per write, plus derived latency slices.
  for (WriteId wid : spans.wids()) {
    const WriteSpan* s = spans.span(wid);
    const std::string name = wid_label(wid);
    const ProcId o = wid.origin();
    const Track origin_track{o.system.value, o.index};
    const std::int64_t begin_t = s->origin_seen ? s->issue_t : 0;
    {
      JsonWriter& w = arr.next("b", name.c_str(), to_us(begin_t),
                               origin_track);
      w.kv("cat", "write");
      w.kv("id", wid.value);
      arr.close();
    }
    {
      JsonWriter& w = arr.next("e", name.c_str(), to_us(s->completion_t()),
                               origin_track);
      w.kv("cat", "write");
      w.kv("id", wid.value);
      arr.close();
    }
    for (const WriteSpan::Apply& a : s->applies) {
      if (a.wait_ns <= 0) continue;
      JsonWriter& w =
          arr.next("X", "causal_wait", to_us(a.t - a.wait_ns),
                   Track{a.proc.system.value, a.proc.index});
      w.kv("dur", to_us(a.wait_ns));
      w.kv("cat", "proto");
      w.key("args");
      w.begin_object();
      w.kv("wid", name);
      w.end_object();
      arr.close();
    }
    for (const WriteSpan::PairIn& p : s->pair_ins) {
      if (p.hop_ns <= 0) continue;
      JsonWriter& w = arr.next("X", "is_hop", to_us(p.t - p.hop_ns),
                               Track{p.proc.system.value, p.proc.index});
      w.kv("dur", to_us(p.hop_ns));
      w.kv("cat", "isc");
      w.key("args");
      w.begin_object();
      w.kv("wid", name);
      w.end_object();
      arr.close();
    }
  }

  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace cim::obs

// Base class for protocol messages.
//
// Channels carry owned, immutable-after-send messages. Each protocol defines
// its own message structs; wire_size() is an estimate used only by the
// traffic accounting of the Section-6 experiments (the simulator never
// serializes anything).
#pragma once

#include <cstddef>
#include <memory>

namespace cim::net {

class Message {
 public:
  virtual ~Message() = default;

  /// Human-readable message kind, for tracing.
  virtual const char* type_name() const = 0;

  /// Approximate size on the wire in bytes (header + payload).
  virtual std::size_t wire_size() const { return 64; }
};

using MessagePtr = std::unique_ptr<Message>;

}  // namespace cim::net

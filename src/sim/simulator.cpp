#include "sim/simulator.h"

#include <algorithm>

#include "common/check.h"

namespace cim::sim {

void Simulator::at(Time t, Action action) {
  CIM_CHECK_MSG(t >= now_, "scheduling into the past: " << t << " < " << now_);
  heap_.push_back(Event{t, next_seq_++, std::move(action)});
  std::push_heap(heap_.begin(), heap_.end(), fires_after);
  if (heap_.size() > max_pending_) max_pending_ = heap_.size();
}

Simulator::Event Simulator::pop_next() {
  std::pop_heap(heap_.begin(), heap_.end(), fires_after);
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  return ev;
}

bool Simulator::step() {
  if (heap_.empty()) return false;
  Event ev = pop_next();
  now_ = ev.time;
  ++fired_;
  ev.action();
  return true;
}

std::uint64_t Simulator::run() {
  std::uint64_t n = 0;
  while (step()) ++n;
  return n;
}

std::uint64_t Simulator::run_until(Time deadline) {
  std::uint64_t n = 0;
  while (!heap_.empty() && heap_.front().time <= deadline) {
    step();
    ++n;
  }
  if (now_ < deadline && heap_.empty()) now_ = deadline;
  return n;
}

}  // namespace cim::sim

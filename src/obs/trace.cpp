#include "obs/trace.h"

#include <ostream>

#include "obs/json.h"

namespace cim::obs {

TraceSink::TraceSink(TraceOptions opts) : opts_(opts) {
  if (opts_.enabled) set_enabled(true);
}

void TraceSink::set_enabled(bool enabled) {
  enabled_ = enabled;
  if (enabled_ && ring_.empty() && opts_.capacity > 0) {
    ring_.resize(opts_.capacity);
  }
}

void TraceSink::clear() {
  total_ = 0;
  per_category_.fill(0);
}

void TraceSink::record(sim::Time t, TraceCategory cat, const char* name,
                       std::initializer_list<TraceField> fields) {
  if (!enabled(cat) || ring_.empty()) return;
  TraceEvent& ev = ring_[total_ % ring_.size()];
  ev.t = t;
  ev.seq = total_;
  ev.name = name;
  ev.cat = cat;
  ev.num_fields = 0;
  for (const TraceField& f : fields) {
    if (ev.num_fields == kMaxTraceFields) break;
    ev.fields[ev.num_fields++] = f;
  }
  ++total_;
  ++per_category_[static_cast<std::size_t>(cat)];
  // The event is fully stored before the listener runs, so a listener that
  // records (the monitor's `violation`) sees a consistent ring. Copy the
  // event first: its ring slot may be reused by that nested record().
  if (listener_) {
    const TraceEvent copy = ev;
    listener_(copy);
  }
}

void TraceSink::for_each(
    const std::function<void(const TraceEvent&)>& fn) const {
  if (ring_.empty() || total_ == 0) return;
  const std::size_t n = size();
  const std::uint64_t first = total_ - n;
  for (std::uint64_t k = first; k < total_; ++k) {
    fn(ring_[k % ring_.size()]);
  }
}

namespace {

void write_field(JsonWriter& w, const TraceField& f) {
  w.key(f.key);
  switch (f.kind) {
    case TraceField::Kind::kInt:
      w.value(f.i);
      break;
    case TraceField::Kind::kUint:
      w.value(f.u);
      break;
    case TraceField::Kind::kFloat:
      w.value(f.f);
      break;
    case TraceField::Kind::kStr:
      w.value(f.s);
      break;
    case TraceField::Kind::kProc: {
      // "system.index", matching the `proc` field spec of OBSERVABILITY.md.
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%u.%u", f.proc >> 16, f.proc & 0xFFFF);
      w.value(buf);
      break;
    }
    case TraceField::Kind::kNone:
      w.value(std::string_view("?"));
      break;
  }
}

}  // namespace

void TraceSink::write_jsonl(std::ostream& os) const {
  for_each([&os](const TraceEvent& ev) {
    JsonWriter w(os);
    w.begin_object();
    w.kv("v", kTraceSchemaVersion);
    w.kv("seq", ev.seq);
    w.kv("t", ev.t.ns);
    w.kv("cat", to_string(ev.cat));
    w.kv("ev", ev.name);
    w.key("f");
    w.begin_object();
    for (std::uint8_t i = 0; i < ev.num_fields; ++i) {
      write_field(w, ev.fields[i]);
    }
    w.end_object();
    w.end_object();
    os << '\n';
  });
}

}  // namespace cim::obs

// Base class for protocol messages.
//
// Channels carry owned, immutable-after-send messages. Each protocol defines
// its own message structs; wire_size() is an estimate used only by the
// traffic accounting of the Section-6 experiments (the simulator never
// serializes anything).
//
// Messages are pool-allocated: the class-level operator new/delete below
// route every `std::make_unique<SomeMsg>()` — including the clone() copies
// the reliable transport retransmits — through cim::BlockPool, so a message's
// send→deliver→destroy round trip recycles storage instead of hitting the
// heap. Derived classes inherit the operators; nothing else to do.
#pragma once

#include <cstddef>
#include <memory>
#include <new>

#include "common/ids.h"
#include "common/pool.h"

namespace cim::net {

class Message {
 public:
  virtual ~Message() = default;

  static void* operator new(std::size_t size) {
    return BlockPool::allocate(size);
  }
  static void operator delete(void* p) noexcept { BlockPool::deallocate(p); }
  // Sized/aligned forms delegate: BlockPool reads the size class from its
  // own header, and message types are never over-aligned.
  static void operator delete(void* p, std::size_t) noexcept {
    BlockPool::deallocate(p);
  }

  /// Human-readable message kind, for tracing.
  virtual const char* type_name() const = 0;

  /// Approximate size on the wire in bytes (header + payload).
  virtual std::size_t wire_size() const { return 64; }

  /// The write this message propagates, if any (WriteId{} otherwise).
  /// Instrumentation only: lets the fabric stamp `wid` on its send/deliver
  /// trace events without knowing concrete message types. Carrier messages
  /// (transport frames) forward their payload's wid.
  virtual WriteId wid() const { return WriteId{}; }

  /// Deep copy, for messages that may be retransmitted by the reliable
  /// transport (each transmission puts a fresh copy on the wire). Returns
  /// null for message types that do not support retransmission.
  virtual std::unique_ptr<Message> clone() const { return nullptr; }
};

using MessagePtr = std::unique_ptr<Message>;

}  // namespace cim::net

// Threaded runtime: a real-threads front end over the same protocol objects.
//
// The protocol code is event-driven and deterministic under the simulator;
// this runtime runs the simulator loop on a dedicated engine thread and lets
// ordinary application threads issue *blocking* read/write calls — the
// paper's "the application process blocks until it receives the
// corresponding response from its MCS-process" — through a thread-safe
// injection queue. Calls are injected as simulator events; responses wake
// the calling thread via promise/future.
//
// This keeps one copy of the protocol logic (no forked thread-safe variant)
// while giving examples and integration tests a genuinely concurrent
// blocking API.
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/small_fn.h"
#include "common/vec_queue.h"
#include "interconnect/federation.h"

namespace cim::rt {

class Runtime {
 public:
  /// The runtime drives `federation`'s simulator; nothing else may touch the
  /// federation while the runtime is running.
  explicit Runtime(isc::Federation& federation);
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Start the engine thread.
  void start();

  /// Process remaining work and join the engine thread. Idempotent.
  void stop();

  /// Run `fn` on the engine thread (as a simulator event); thread-safe.
  void post(sim::Simulator::Action fn);

  bool running() const;

 private:
  void engine_loop();

  isc::Federation& federation_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  VecQueue<sim::Simulator::Action> injected_;
  // Lock-free mirrors of the queue/stop state, so the idle engine can spin
  // briefly before parking on the condition variable. While it spins, a
  // post() is an atomic flag plus a queue push — no futex wake. Blocking
  // clients post at operation rate, so this halves the syscalls per op.
  std::atomic<bool> has_injected_{false};
  std::atomic<bool> stop_flag_{false};
  bool stop_requested_ = false;
  bool running_ = false;
  std::thread engine_;
};

/// Blocking client bound to one application process. Safe to use from any
/// thread, one outstanding call per client at a time (create one client per
/// application thread, matching the paper's one-process-one-caller model).
class BlockingClient {
 public:
  BlockingClient(Runtime& runtime, mcs::AppProcess& app)
      : runtime_(runtime), app_(app) {}

  /// Issue a read and block until the response arrives.
  Value read(VarId var);

  /// Issue a write and block until it is acknowledged.
  void write(VarId var, Value value);

  ProcId id() const { return app_.id(); }

 private:
  Runtime& runtime_;
  mcs::AppProcess& app_;
};

}  // namespace cim::rt

#!/usr/bin/env bash
# Perf-harness driver: run the regression bench binaries N times, median the
# numeric fields across runs, and write one BENCH_<name>.json per bench
# (schema cim.bench.v1 — see docs/BENCHMARKS.md) into the output directory.
#
# Usage:
#   scripts/run_benches.sh [--build DIR] [--out DIR] [--runs N] [--quick]
#                          [bench ...]
#
#   --build DIR   build tree holding the bench binaries (default: build)
#   --out DIR     where the merged BENCH_*.json land (default: bench/out)
#   --runs N      runs per bench; medians absorb host noise (default: 3)
#   --quick       one run per bench (CI smoke mode)
#   bench ...     subset to run (default: tree_scale throughput wire bridge
#                 checker)
#
# Two bench flavors are handled:
#   * cim-style binaries emit BENCH_<name>.json themselves (bench_report.h);
#     the harness points CIM_BENCH_JSON at a per-run scratch directory.
#   * google-benchmark binaries (throughput) are run with
#     --benchmark_format=json and normalized into the same row shape:
#     row=<benchmark name>, real_time_ns, cpu_time_ns, items_per_second.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD=build
OUT=bench/out
RUNS=3
BENCHES=()

while [[ $# -gt 0 ]]; do
  case "$1" in
    --build) BUILD=$2; shift 2 ;;
    --out) OUT=$2; shift 2 ;;
    --runs) RUNS=$2; shift 2 ;;
    --quick) RUNS=1; shift ;;
    -h|--help) sed -n '2,20p' "$0"; exit 0 ;;
    *) BENCHES+=("$1"); shift ;;
  esac
done
[[ ${#BENCHES[@]} -gt 0 ]] || BENCHES=(tree_scale throughput wire bridge checker)

# Benches whose binaries speak google-benchmark instead of bench_report.h.
is_google() { [[ "$1" == throughput ]]; }

# Binary names follow bench_<name>, except the checker gate whose binary
# keeps its historical bench_checker_perf name (report/baseline: checker).
bin_of() {
  case "$1" in
    checker) echo bench_checker_perf ;;
    *) echo "bench_$1" ;;
  esac
}

SCRATCH=$(mktemp -d)
trap 'rm -rf "$SCRATCH"' EXIT
mkdir -p "$OUT"

for bench in "${BENCHES[@]}"; do
  bin="$BUILD/bench/$(bin_of "$bench")"
  if [[ ! -x "$bin" ]]; then
    echo "run_benches: missing binary $bin (build first)" >&2
    exit 1
  fi
  echo "== bench_$bench ($RUNS run(s)) =="
  for ((run = 0; run < RUNS; ++run)); do
    rundir="$SCRATCH/$bench/run$run"
    mkdir -p "$rundir"
    if is_google "$bench"; then
      "$bin" --benchmark_format=json > "$rundir/google.json"
    else
      CIM_BENCH_JSON="$rundir" "$bin" > "$rundir/stdout.txt"
    fi
  done

  python3 - "$bench" "$SCRATCH/$bench" "$OUT" <<'PYEOF'
import glob, json, os, statistics, sys

bench, rundir, out = sys.argv[1], sys.argv[2], sys.argv[3]

def load_cim(path):
    with open(path) as f:
        return json.load(f)

def load_google(path):
    """Normalize google-benchmark JSON into the cim.bench.v1 shape."""
    with open(path) as f:
        doc = json.load(f)
    scale = {"ns": 1, "us": 1e3, "ms": 1e6, "s": 1e9}
    rows = []
    for b in doc.get("benchmarks", []):
        unit = scale.get(b.get("time_unit", "ns"), 1)
        row = {
            "row": b["name"],
            "real_time_ns": b["real_time"] * unit,
            "cpu_time_ns": b["cpu_time"] * unit,
            "iterations": b["iterations"],
        }
        if "items_per_second" in b:
            row["items_per_second"] = b["items_per_second"]
        rows.append(row)
    ctx = doc.get("context", {})
    meta = {"source": "google-benchmark"}
    if "library_build_type" in ctx:
        meta["library_build_type"] = ctx["library_build_type"]
    return {"schema": "cim.bench.v1", "v": 2, "bench": bench,
            "meta": meta, "rows": rows}

reports = []
for d in sorted(glob.glob(os.path.join(rundir, "run*"))):
    g = os.path.join(d, "google.json")
    if os.path.exists(g):
        reports.append(load_google(g))
    else:
        cims = glob.glob(os.path.join(d, "BENCH_*.json"))
        if not cims:
            sys.exit(f"run_benches: no JSON produced in {d}")
        reports.append(load_cim(cims[0]))

# Median every numeric field across runs, matching rows by name. Non-numeric
# fields and fields missing from some run are taken from the first run.
merged = dict(reports[0])
rows_by_name = [{r["row"]: r for r in rep["rows"]} for rep in reports]
out_rows = []
for row in reports[0]["rows"]:
    name = row["row"]
    out_row = dict(row)
    for key, val in row.items():
        if isinstance(val, bool) or not isinstance(val, (int, float)):
            continue
        samples = [rb[name][key] for rb in rows_by_name
                   if name in rb and key in rb[name]]
        med = statistics.median(samples)
        out_row[key] = int(med) if isinstance(val, int) else med
    out_rows.append(out_row)
merged["rows"] = out_rows
merged.setdefault("meta", {})["runs"] = len(reports)

path = os.path.join(out, f"BENCH_{bench}.json")
with open(path, "w") as f:
    json.dump(merged, f, indent=1)
    f.write("\n")
print(f"  -> {path}")
PYEOF
done

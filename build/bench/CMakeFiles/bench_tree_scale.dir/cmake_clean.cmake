file(REMOVE_RECURSE
  "CMakeFiles/bench_tree_scale.dir/bench_tree_scale.cpp.o"
  "CMakeFiles/bench_tree_scale.dir/bench_tree_scale.cpp.o.d"
  "bench_tree_scale"
  "bench_tree_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tree_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Soak tests: large mixed federations exercising every subsystem at once —
// six protocols, tree topologies, per-link and shared IS-processes, link
// jitter, and dial-up availability — always ending in a full checker pass.
#include <gtest/gtest.h>

#include "checker/causal_checker.h"
#include "helpers.h"
#include "protocols/cbcast_dsm.h"
#include "protocols/partial_rep.h"
#include "stats/response.h"
#include "stats/visibility.h"

namespace cim::isc {
namespace {

mcs::ProtocolFactory nth_protocol(std::size_t i, std::uint16_t procs) {
  switch (i % 6) {
    case 0: return proto::anbkh_protocol();
    case 1: {
      proto::LazyBatchConfig lc;
      lc.order = proto::BatchOrder::kShuffleVars;
      lc.batch_interval = sim::milliseconds(7);
      return proto::lazy_batch_protocol(lc);
    }
    case 2: return proto::aw_seq_protocol();
    case 3: return proto::tob_causal_protocol();
    case 4: return proto::cbcast_dsm_protocol();
    default:
      // Everyone shares all 6 workload variables (partial replication with
      // full app interest — exercises the marker-free fast path).
      return proto::partial_rep_protocol(
          [](std::uint16_t, VarId) { return true; }, procs);
  }
}

FederationConfig mixed_tree(std::size_t m, std::uint16_t procs,
                            std::uint64_t seed, IspMode mode) {
  FederationConfig cfg;
  cfg.seed = seed;
  cfg.isp_mode = mode;
  for (std::size_t s = 0; s < m; ++s) {
    mcs::SystemConfig sc;
    sc.id = SystemId{static_cast<std::uint16_t>(s)};
    sc.num_app_processes = procs;
    sc.protocol = nth_protocol(s, procs);
    sc.seed = seed * 31 + s;
    sc.intra_delay = [] {
      return std::make_unique<net::UniformDelay>(sim::microseconds(100),
                                                 sim::milliseconds(12));
    };
    cfg.systems.push_back(std::move(sc));
  }
  // Balanced binary tree.
  for (std::size_t i = 1; i < m; ++i) {
    LinkSpec link;
    link.system_a = (i - 1) / 2;
    link.system_b = i;
    link.delay = [] {
      return std::make_unique<net::UniformDelay>(sim::milliseconds(1),
                                                 sim::milliseconds(25));
    };
    cfg.links.push_back(std::move(link));
  }
  return cfg;
}

class Soak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Soak, SixSystemSixProtocolTreeIsCausal) {
  Federation fed(mixed_tree(6, 3, GetParam(), IspMode::kSharedPerSystem));
  wl::UniformConfig wc;
  wc.ops_per_process = 35;
  wc.num_vars = 6;
  wc.seed = GetParam() * 17 + 5;
  auto runners = wl::install_uniform(fed, wc);
  fed.run();
  for (const auto& r : runners) ASSERT_TRUE(r->done());

  auto history = fed.federation_history();
  EXPECT_EQ(history.size(), 6u * 3u * 35u);
  auto res = chk::CausalChecker{}.check(history);
  EXPECT_TRUE(res.ok()) << chk::to_string(res.pattern) << ": " << res.detail;
  for (std::size_t s = 0; s < 6; ++s) {
    auto sys_res = chk::CausalChecker{}.check(fed.system_history(s));
    EXPECT_TRUE(sys_res.ok()) << "system " << s << ": " << sys_res.detail;
  }
}

TEST_P(Soak, PerLinkIspTreeIsCausal) {
  Federation fed(mixed_tree(5, 2, GetParam(), IspMode::kPerLink));
  wl::UniformConfig wc;
  wc.ops_per_process = 25;
  wc.num_vars = 5;
  wc.seed = GetParam() * 23 + 9;
  auto runners = wl::install_uniform(fed, wc);
  fed.run();
  auto res = chk::CausalChecker{}.check(fed.federation_history());
  EXPECT_TRUE(res.ok()) << chk::to_string(res.pattern) << ": " << res.detail;
}

TEST_P(Soak, DialupEverywhereStillDeliversAndStaysCausal) {
  FederationConfig cfg = mixed_tree(4, 2, GetParam(), IspMode::kSharedPerSystem);
  for (auto& link : cfg.links) {
    link.availability = [] {
      return std::make_unique<net::PeriodicDuty>(sim::milliseconds(80),
                                                 sim::milliseconds(15));
    };
  }
  Federation fed(std::move(cfg));
  stats::VisibilityTracker vis;
  fed.add_observer(&vis);

  wl::UniformConfig wc;
  wc.ops_per_process = 20;
  wc.num_vars = 4;
  wc.think_max = sim::milliseconds(12);
  wc.seed = GetParam() * 3 + 1;
  auto runners = wl::install_uniform(fed, wc);
  fed.run();

  // Liveness: every write became visible at every application replica.
  std::vector<ProcId> targets;
  for (std::size_t s = 0; s < 4; ++s) {
    for (std::uint16_t p = 0; p < 2; ++p) {
      targets.push_back(ProcId{SystemId{static_cast<std::uint16_t>(s)}, p});
    }
  }
  EXPECT_TRUE(vis.worst_visibility(targets).has_value());

  auto res = chk::CausalChecker{}.check(fed.federation_history());
  EXPECT_TRUE(res.ok()) << chk::to_string(res.pattern) << ": " << res.detail;
}

INSTANTIATE_TEST_SUITE_P(Seeds, Soak, ::testing::Range<std::uint64_t>(1, 6));

TEST(SoakBig, TwelveSystemChainLongRun) {
  FederationConfig cfg;
  cfg.seed = 99;
  for (std::uint16_t s = 0; s < 12; ++s) {
    mcs::SystemConfig sc;
    sc.id = SystemId{s};
    sc.num_app_processes = 2;
    sc.protocol = (s % 2 == 0) ? proto::anbkh_protocol()
                               : proto::tob_causal_protocol();
    sc.seed = 200 + s;
    cfg.systems.push_back(std::move(sc));
  }
  for (std::uint16_t s = 0; s + 1 < 12; ++s) {
    LinkSpec link;
    link.system_a = s;
    link.system_b = s + 1;
    cfg.links.push_back(link);
  }
  Federation fed(std::move(cfg));

  wl::UniformConfig wc;
  wc.ops_per_process = 30;
  wc.num_vars = 6;
  wc.seed = 404;
  auto runners = wl::install_uniform(fed, wc);
  fed.run();
  for (const auto& r : runners) ASSERT_TRUE(r->done());

  auto history = fed.federation_history();
  EXPECT_EQ(history.size(), 12u * 2u * 30u);
  // CC level keeps the check fast on this 720-op history; CM is covered by
  // the smaller soaks above.
  auto res = chk::CausalChecker{}.check(history, chk::Level::kCC);
  EXPECT_TRUE(res.ok()) << chk::to_string(res.pattern) << ": " << res.detail;

  // Section-6 sanity at scale: n + m - 1 messages per write would need a
  // uniform protocol; with mixed protocols we at least check propagation:
  // the federation quiesced and every runner finished, so every write
  // crossed all 11 links exactly once in each direction it needed.
  const auto inter = fed.fabric().class_stats(net::LinkClass::kInterSystem);
  const std::uint64_t total_writes =
      stats::response_stats(history, chk::OpKind::kWrite).count;
  EXPECT_EQ(inter.messages, total_writes * 11);
}

}  // namespace
}  // namespace cim::isc

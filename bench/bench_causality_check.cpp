// Experiment E5 (Theorem 1): the union of interconnected causal systems is
// causal — verified empirically across protocol combinations, seeds, and
// topologies with the bad-pattern checker, with checker wall-time reported.
#include <chrono>
#include <iostream>

#include "bench_util.h"
#include "checker/causal_checker.h"
#include "stats/table.h"

namespace {

using namespace cim;

struct Combo {
  const char* name;
  mcs::ProtocolFactory factory;
};

std::vector<Combo> combos() {
  proto::LazyBatchConfig lc;
  lc.order = proto::BatchOrder::kShuffleVars;
  return {
      {"anbkh", proto::anbkh_protocol()},
      {"lazy-batch", proto::lazy_batch_protocol(lc)},
      {"aw-seq", proto::aw_seq_protocol()},
      {"tob-causal", proto::tob_causal_protocol()},
  };
}

}  // namespace

int main() {
  std::cout << "E5 — Theorem 1: the interconnected system S^T is causal\n"
            << "(verdicts over random workloads; bad-pattern CM checker)\n\n";

  stats::Table table({"protocols", "topology", "runs", "ops/run",
                      "causal verdicts", "check time/run"});

  auto all = combos();
  const std::uint64_t kSeeds = 8;
  for (std::size_t a = 0; a < all.size(); ++a) {
    for (std::size_t b = a; b < all.size(); ++b) {
      for (bench::Topology topo :
           {bench::Topology::kChain, bench::Topology::kStar}) {
        const std::size_t m = 3;
        std::size_t causal = 0;
        std::size_t ops = 0;
        double total_ms = 0;
        for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
          bench::FedParams params;
          params.num_systems = m;
          params.procs_per_system = 3;
          params.topology = topo;
          params.seed = seed;
          isc::FederationConfig cfg = bench::make_config(params);
          // Mix the two protocol families across the systems.
          for (std::size_t s = 0; s < m; ++s) {
            cfg.systems[s].protocol = (s % 2 == 0) ? all[a].factory
                                                   : all[b].factory;
          }
          isc::Federation fed(std::move(cfg));

          wl::UniformConfig wc;
          wc.ops_per_process = 40;
          wc.num_vars = 5;
          wc.seed = seed * 31;
          auto runners = wl::install_uniform(fed, wc);
          fed.run();

          auto history = fed.federation_history();
          ops = history.size();
          const auto start = std::chrono::steady_clock::now();
          auto res = chk::CausalChecker{}.check(history);
          const auto stop = std::chrono::steady_clock::now();
          total_ms +=
              std::chrono::duration<double, std::milli>(stop - start).count();
          if (res.ok()) ++causal;
        }
        char verdicts[32], t[32];
        std::snprintf(verdicts, sizeof(verdicts), "%zu/%llu", causal,
                      static_cast<unsigned long long>(kSeeds));
        std::snprintf(t, sizeof(t), "%.1fms", total_ms / kSeeds);
        table.add_row(std::string(all[a].name) + "+" + all[b].name,
                      bench::to_string(topo), kSeeds, ops, verdicts, t);
      }
    }
  }
  table.print();

  std::cout << "\nEvery execution of every combination is causal, as Theorem "
               "1 predicts —\nincluding mixed-protocol federations, which the "
               "paper explicitly allows.\n";
  return 0;
}

#include "common/rng.h"

namespace cim {

std::uint64_t Rng::next() {
  state_ += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) {
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return next();  // full 64-bit range
  return lo + next() % span;
}

double Rng::uniform01() {
  // 53 high-quality bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

Rng Rng::split() { return Rng(next()); }

}  // namespace cim

// Deterministic discrete-event simulator.
//
// All protocol code in this repository is event-driven; the simulator is the
// default executor. Events scheduled for the same instant fire in scheduling
// order (a monotone sequence number breaks ties), which makes every execution
// a deterministic function of the configuration and the RNG seeds.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/time.h"

namespace cim::sim {

class Simulator {
 public:
  using Action = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedule `action` to run at absolute time `t` (must be >= now()).
  void at(Time t, Action action);

  /// Schedule `action` to run `d` after the current time.
  void after(Duration d, Action action) { at(now_ + d, std::move(action)); }

  /// Schedule `action` to run at the current time, after already-pending
  /// same-time events ("post to the end of the current instant").
  void post(Action action) { at(now_, std::move(action)); }

  /// Run until the event queue drains. Returns the number of events fired.
  std::uint64_t run();

  /// Run until the queue drains or simulated time would exceed `deadline`;
  /// events after the deadline remain queued and now() advances to the
  /// deadline if the queue drained first. Returns events fired.
  std::uint64_t run_until(Time deadline);

  /// Fire exactly one event if any is pending. Returns false if queue empty.
  bool step();

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

  /// High-water mark of the event queue since construction (the
  /// `sim.queue_depth_peak` gauge of docs/OBSERVABILITY.md).
  std::size_t max_pending() const { return max_pending_; }

  /// Time of the earliest pending event. Requires !empty().
  Time next_event_time() const { return heap_.front().time; }

  /// Total events fired since construction.
  std::uint64_t events_fired() const { return fired_; }

 private:
  struct Event {
    Time time;
    std::uint64_t seq;  // tie-break: FIFO among same-time events
    Action action;
  };
  // Min-heap ordering: "a fires after b".
  static bool fires_after(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }

  Event pop_next();

  Time now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_ = 0;
  std::size_t max_pending_ = 0;
  std::vector<Event> heap_;
};

}  // namespace cim::sim

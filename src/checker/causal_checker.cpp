#include "checker/causal_checker.h"

#include <map>
#include <sstream>
#include <utility>
#include <vector>

namespace cim::chk {

const char* to_string(BadPattern p) {
  switch (p) {
    case BadPattern::kNone: return "none";
    case BadPattern::kDuplicateWrite: return "DuplicateWrite";
    case BadPattern::kCyclicCO: return "CyclicCO";
    case BadPattern::kThinAirRead: return "ThinAirRead";
    case BadPattern::kWriteCOInitRead: return "WriteCOInitRead";
    case BadPattern::kWriteCORead: return "WriteCORead";
    case BadPattern::kCyclicHB: return "CyclicHB";
    case BadPattern::kWriteHBInitRead: return "WriteHBInitRead";
    case BadPattern::kCyclicCF: return "CyclicCF";
  }
  return "?";
}

namespace {

struct Analysis {
  const History* history = nullptr;
  // For each read op index: index of its rf-source write, or SIZE_MAX for a
  // read of the initial value.
  std::vector<std::size_t> rf_source;
  // All write indices, per variable.
  std::map<VarId, std::vector<std::size_t>> writes_on;
  Relation base;  // po ∪ rf

  CheckResult error;  // set if a precondition/base pattern failed
};

constexpr std::size_t kInitSource = SIZE_MAX;

std::string describe(const History& h, std::size_t i) {
  return h.ops()[i].to_string();
}

Analysis analyze(const History& h) {
  Analysis a;
  a.history = &h;
  const auto& ops = h.ops();
  const std::size_t n = ops.size();
  a.base = Relation(n);
  a.rf_source.assign(n, kInitSource);

  // Writer lookup; the paper assumes each value is written at most once per
  // variable, which makes reads-from a function of the read.
  std::map<std::pair<VarId, Value>, std::size_t> writer;
  for (std::size_t i = 0; i < n; ++i) {
    if (ops[i].kind != OpKind::kWrite) continue;
    a.writes_on[ops[i].var].push_back(i);
    auto [it, inserted] = writer.try_emplace({ops[i].var, ops[i].value}, i);
    if (!inserted) {
      a.error = {BadPattern::kDuplicateWrite,
                 "value written twice: " + describe(h, it->second) + " and " +
                     describe(h, i)};
      return a;
    }
  }

  // Program order: consecutive ops of each process (closure adds the rest).
  for (ProcId p : h.processes()) {
    const auto& seq = h.process_ops(p);
    for (std::size_t k = 1; k < seq.size(); ++k) {
      a.base.set(seq[k - 1], seq[k]);
    }
  }

  // Reads-from edges.
  for (std::size_t i = 0; i < n; ++i) {
    if (ops[i].kind != OpKind::kRead) continue;
    if (ops[i].value == kInitValue) continue;  // read of the initial value
    auto it = writer.find({ops[i].var, ops[i].value});
    if (it == writer.end()) {
      a.error = {BadPattern::kThinAirRead,
                 "read of a never-written value: " + describe(h, i)};
      return a;
    }
    a.rf_source[i] = it->second;
    a.base.set(it->second, i);
  }
  return a;
}

// One round of the HB_i derivation rule; returns true if an edge was added.
// hb must be transitively closed on entry; the caller re-closes after.
bool derive_hb_edges(const Analysis& a, const std::vector<bool>& in_scope,
                     ProcId proc, Relation& hb) {
  const auto& ops = a.history->ops();
  bool changed = false;
  for (std::size_t r = 0; r < ops.size(); ++r) {
    if (ops[r].kind != OpKind::kRead || ops[r].proc != proc) continue;
    const std::size_t w2 = a.rf_source[r];
    if (w2 == kInitSource) continue;
    auto it = a.writes_on.find(ops[r].var);
    if (it == a.writes_on.end()) continue;
    for (std::size_t w1 : it->second) {
      if (w1 == w2 || !in_scope[w1]) continue;
      if (hb.test(w1, r) && !hb.test(w1, w2)) {
        hb.set(w1, w2);
        changed = true;
      }
    }
  }
  return changed;
}

}  // namespace

std::optional<Relation> CausalChecker::causal_order(
    const History& history) const {
  Analysis a = analyze(history);
  if (!a.error.ok()) return std::nullopt;
  ClosureResult cr = transitive_closure(a.base);
  if (cr.cycle_witness) return std::nullopt;
  return std::move(cr.closure);
}

CheckResult CausalChecker::check(const History& history, Level level) const {
  const auto& ops = history.ops();
  const std::size_t n = ops.size();

  Analysis a = analyze(history);
  if (!a.error.ok()) return a.error;

  ClosureResult cr = transitive_closure(a.base);
  if (cr.cycle_witness) {
    auto [i, j] = *cr.cycle_witness;
    return {BadPattern::kCyclicCO, "causal-order cycle through " +
                                       describe(history, i) + " and " +
                                       describe(history, j)};
  }
  const Relation& co = cr.closure;

  // WriteCOInitRead and WriteCORead.
  for (std::size_t r = 0; r < n; ++r) {
    if (ops[r].kind != OpKind::kRead) continue;
    auto it = a.writes_on.find(ops[r].var);
    if (it == a.writes_on.end()) continue;
    const std::size_t w1 = a.rf_source[r];
    if (w1 == kInitSource) {
      for (std::size_t w : it->second) {
        if (co.test(w, r)) {
          return {BadPattern::kWriteCOInitRead,
                  describe(history, r) + " returns the initial value but " +
                      describe(history, w) + " is causally before it"};
        }
      }
    } else {
      for (std::size_t w2 : it->second) {
        if (w2 == w1) continue;
        if (co.test(w1, w2) && co.test(w2, r)) {
          return {BadPattern::kWriteCORead,
                  describe(history, r) + " reads " + describe(history, w1) +
                      " although " + describe(history, w2) +
                      " causally overwrote it"};
        }
      }
    }
  }

  if (level == Level::kCC) return {};

  if (level == Level::kCCv) {
    // Causal convergence: the conflict relation cf (w1 -> w2 when some read
    // of w2 has w1 on the same variable causally before it) together with co
    // must be acyclic — i.e., one global arbitration of concurrent
    // same-variable writes must exist that all readers agree with.
    Relation with_cf = a.base;
    for (std::size_t r = 0; r < n; ++r) {
      if (ops[r].kind != OpKind::kRead) continue;
      const std::size_t w2 = a.rf_source[r];
      if (w2 == kInitSource) continue;
      for (std::size_t w1 : a.writes_on[ops[r].var]) {
        if (w1 != w2 && co.test(w1, r)) with_cf.set(w1, w2);
      }
    }
    ClosureResult ccr = transitive_closure(with_cf);
    if (ccr.cycle_witness) {
      auto [i, j] = *ccr.cycle_witness;
      return {BadPattern::kCyclicCF,
              "no single arbitration of concurrent writes: cycle through " +
                  describe(history, i) + " and " + describe(history, j)};
    }
    return {};
  }

  // Per-process happens-before fixpoint (CM-specific patterns).
  for (ProcId proc : history.processes()) {
    // Scope O_i: all writes plus the reads of `proc`.
    std::vector<bool> in_scope(n, false);
    for (std::size_t i = 0; i < n; ++i) {
      in_scope[i] =
          ops[i].kind == OpKind::kWrite || ops[i].proc == proc;
    }

    // HB_i starts as co restricted to the scope.
    Relation hb(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (!in_scope[i]) continue;
      co.for_successors(i, [&](std::size_t j) {
        if (in_scope[j]) hb.set(i, j);
      });
    }

    // Fixpoint: derive, re-close, repeat.
    while (true) {
      if (!derive_hb_edges(a, in_scope, proc, hb)) break;
      ClosureResult hcr = transitive_closure(hb);
      if (hcr.cycle_witness) {
        auto [i, j] = *hcr.cycle_witness;
        return {BadPattern::kCyclicHB,
                "happens-before cycle for " + cim::to_string(proc) +
                    " through " + describe(history, i) + " and " +
                    describe(history, j)};
      }
      hb = std::move(hcr.closure);
    }

    // WriteHBInitRead: an init-read with a write to the variable hb-before it.
    for (std::size_t r = 0; r < n; ++r) {
      if (ops[r].kind != OpKind::kRead || ops[r].proc != proc) continue;
      if (a.rf_source[r] != kInitSource) continue;
      auto it = a.writes_on.find(ops[r].var);
      if (it == a.writes_on.end()) continue;
      for (std::size_t w : it->second) {
        if (hb.test(w, r)) {
          return {BadPattern::kWriteHBInitRead,
                  describe(history, r) +
                      " returns the initial value but, for " +
                      cim::to_string(proc) + ", " + describe(history, w) +
                      " happens before it"};
        }
      }
    }

    // A WriteCORead-style pattern can also appear only under HB_i.
    for (std::size_t r = 0; r < n; ++r) {
      if (ops[r].kind != OpKind::kRead || ops[r].proc != proc) continue;
      const std::size_t w1 = a.rf_source[r];
      if (w1 == kInitSource) continue;
      auto it = a.writes_on.find(ops[r].var);
      for (std::size_t w2 : it->second) {
        if (w2 == w1) continue;
        if (hb.test(w1, w2) && hb.test(w2, r)) {
          return {BadPattern::kWriteCORead,
                  describe(history, r) + " reads " + describe(history, w1) +
                      " although " + describe(history, w2) +
                      " overwrote it in happens-before of " +
                      cim::to_string(proc)};
        }
      }
    }
  }

  return {};
}

}  // namespace cim::chk

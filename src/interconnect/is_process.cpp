#include "interconnect/is_process.h"

#include <memory>
#include <utility>

#include "common/check.h"

namespace cim::isc {

IsProcess::IsProcess(mcs::AppProcess& app, net::Fabric& fabric,
                     obs::Observability* obs)
    : app_(app), fabric_(fabric) {
  CIM_CHECK_MSG(app.is_isp(),
                "IsProcess must be attached to an IS-process slot");
  if (obs != nullptr) {
    trace_ = &obs->trace();
    obs::MetricsRegistry& m = obs->metrics();
    m_pairs_sent_ = &m.counter("isc.pairs_sent");
    m_pairs_received_ = &m.counter("isc.pairs_received");
    h_hop_latency_ = &m.histogram("isc.pair_hop_latency");
    h_propagation_ = &m.histogram("isc.propagation_latency");
    h_link_backlog_ = &m.value_histogram("isc.link_backlog");
  }
}

std::size_t IsProcess::add_link(net::ChannelId out) {
  out_links_.push_back(out);
  return out_links_.size() - 1;
}

void IsProcess::register_in_channel(net::ChannelId in, std::size_t link) {
  CIM_CHECK(link < out_links_.size());
  in_links_.emplace_back(in.value, link);
}

void IsProcess::activate(IsProtocolChoice choice) {
  CIM_CHECK_MSG(!activated_, "IS-process activated twice");
  activated_ = true;
  mcs::McsProcess& mcs = app_.mcs();
  switch (choice) {
    case IsProtocolChoice::kAuto:
      // "Each IS-process will choose which one to use depending on which
      // class of causal MCS-protocol its system is running."
      pre_reads_enabled_ = !mcs.satisfies_causal_updating();
      break;
    case IsProtocolChoice::kForceProtocol1:
      pre_reads_enabled_ = false;
      break;
    case IsProtocolChoice::kForceProtocol2:
      pre_reads_enabled_ = true;
      break;
  }
  mcs.attach_upcall_handler(this);
  // "In this first IS-protocol isp^k disables the MCS-process pre_update
  // upcalls, since it does not need them."
  mcs.set_pre_update_enabled(pre_reads_enabled_);
}

void IsProcess::pre_update(VarId var, std::function<void()> done) {
  // Task Pre_Propagate_out(x) (Fig. 2): read x, obtaining the previous
  // value s. The value is not used; the read's existence constrains the
  // causal order (Lemma 1).
  CIM_TRACE(trace_, fabric_.simulator().now(), obs::TraceCategory::kIsc,
            "pre_read", {{"proc", id()}, {"var", var}});
  app_.read_now(var, [done = std::move(done)](Value) { done(); });
}

void IsProcess::post_update(VarId var, Value value,
                            std::function<void()> done) {
  // Task Propagate_out(x, v) (Fig. 1): read x — condition (c) guarantees the
  // read returns v — and send ⟨x, v⟩ to the peer IS-process on every link.
  app_.read_now(var, [this, var, value, done = std::move(done)](Value read) {
    CIM_CHECK_MSG(read == value,
                  "condition (c) violated: post-update read must return v");
    const sim::Time origin = fabric_.simulator().now();
    for (std::size_t link = 0; link < out_links_.size(); ++link) {
      send_pair(link, var, read, origin);
    }
    done();
  });
}

void IsProcess::send_pair(std::size_t link, VarId var, Value value,
                          sim::Time origin_time) {
  const sim::Time now = fabric_.simulator().now();
  auto msg = std::make_unique<PairMsg>();
  msg->var = var;
  msg->value = value;
  msg->sent_at = now;
  msg->origin_time = origin_time;
  fabric_.send(out_links_[link], std::move(msg));
  ++pairs_sent_;
  if (m_pairs_sent_ != nullptr) {
    m_pairs_sent_->inc();
    h_link_backlog_->observe(
        static_cast<std::int64_t>(fabric_.channel_backlog(out_links_[link])));
  }
  CIM_TRACE(trace_, now, obs::TraceCategory::kIsc, "pair_out",
            {{"proc", id()},
             {"var", var},
             {"val", value},
             {"link", static_cast<std::uint64_t>(link)}});
}

void IsProcess::on_message(net::ChannelId from, net::MessagePtr msg) {
  auto* pair = dynamic_cast<PairMsg*>(msg.get());
  CIM_CHECK_MSG(pair != nullptr, "IS-process received a non-pair message");
  ++pairs_received_;

  const sim::Time now = fabric_.simulator().now();
  if (m_pairs_received_ != nullptr) {
    m_pairs_received_->inc();
    h_hop_latency_->observe(now - pair->sent_at);
    h_propagation_->observe(now - pair->origin_time);
  }
  CIM_TRACE(trace_, now, obs::TraceCategory::kIsc, "pair_in",
            {{"proc", id()},
             {"var", pair->var},
             {"val", pair->value},
             {"hop_ns", now - pair->sent_at},
             {"prop_ns", now - pair->origin_time}});

  std::size_t source_link = SIZE_MAX;
  for (const auto& [chan, link] : in_links_) {
    if (chan == from.value) source_link = link;
  }
  CIM_CHECK_MSG(source_link != SIZE_MAX, "pair on unregistered link");

  // Forward to every other link first (tree interconnection with a shared
  // IS-process: its own writes generate no upcalls, so forwarding must be
  // explicit), then apply locally: task Propagate_in(y, u) issues the write.
  for (std::size_t link = 0; link < out_links_.size(); ++link) {
    if (link != source_link) {
      send_pair(link, pair->var, pair->value, pair->origin_time);
    }
  }
  app_.write(pair->var, pair->value);
}

}  // namespace cim::isc

// Reference checkers that decide consistency *directly from the definitions*
// by backtracking search. Exponential in the worst case, so they take a node
// budget and are only practical for small histories; their role is
//
//  * cross-validating the polynomial bad-pattern CausalChecker (property
//    tests run both on random small histories and assert agreement), and
//  * deciding *sequential* consistency for experiment E9 (two sequentially
//    consistent systems interconnect into a causal but generally
//    non-sequential system).
#pragma once

#include <cstdint>
#include <optional>

#include "checker/history.h"

namespace cim::chk {

class SearchChecker {
 public:
  /// Decide Definition 4 directly: does every process have a causal view
  /// (legal permutation of all-writes + its reads preserving the causal
  /// order of the full computation)?
  ///
  /// Returns nullopt if the search exceeds `node_budget` expanded states or
  /// any per-process view involves more than 64 operations.
  std::optional<bool> is_causal(const History& history,
                                std::uint64_t node_budget = 2'000'000) const;

  /// Decide sequential consistency: is there one legal total order of all
  /// operations preserving every process's program order?
  std::optional<bool> is_sequential(const History& history,
                                    std::uint64_t node_budget = 2'000'000) const;
};

}  // namespace cim::chk

// Causal DSM layered over the causal-broadcast substrate — the pathway the
// paper's related-work section describes: "a causal DSM system can be easily
// implemented on a causally ordered message-passing system [8]".
//
//  * write(x, v): causally broadcast ⟨x, v⟩ to the group; the self-delivery
//    applies it locally; acknowledge immediately;
//  * read(x): local replica;
//  * remote deliveries (arriving in causal order by the substrate's
//    guarantee) apply directly.
//
// Functionally this coincides with ANBKH — which is the point: the DSM
// layer shrinks to a dozen lines once causal ordering lives in the
// message-passing substrate. Causal Updating holds (deliveries are causally
// ordered), so interconnection uses IS-protocol 1. The paper's Section-1.2
// argument is reproduced in tests: systems built this way interconnect with
// the IS-protocols exactly like the natively implemented ones, *without*
// having to build a message-passing hierarchy spanning the systems.
#pragma once


#include "common/var_store.h"
#include "mcs/mcs_process.h"
#include "msgpass/cbcast.h"

namespace cim::proto {

class CbcastDsmProcess final : public mcs::McsProcess,
                               private mp::CbTransport {
 public:
  explicit CbcastDsmProcess(const mcs::McsContext& ctx);

  void handle_read(VarId var, mcs::ReadCallback cb) override;
  void on_message(net::ChannelId from, net::MessagePtr msg) override;

  bool satisfies_causal_updating() const override { return true; }
  const char* protocol_name() const override { return "cbcast-dsm"; }

  Value replica_value(VarId var) const;
  const mp::CbcastMember& member() const { return member_; }

 protected:
  void do_write(VarId var, Value value, WriteId wid,
                mcs::WriteCallback cb) override;

 private:
  // mp::CbTransport — group member indices coincide with local indices.
  void send_to_member(std::uint16_t member, net::MessagePtr msg) override;

  void on_deliver(std::uint16_t sender, const mp::CbPayload& payload);

  VarStore store_;
  mp::CbcastMember member_;
};

/// Factory for mcs::SystemConfig::protocol.
mcs::ProtocolFactory cbcast_dsm_protocol();

}  // namespace cim::proto

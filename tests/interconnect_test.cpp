// Integration tests: the IS-protocols interconnecting systems (Theorem 1,
// Corollary 1, and the Section-3 counterexample).
#include <gtest/gtest.h>

#include "checker/causal_checker.h"
#include "helpers.h"

namespace cim::isc {
namespace {

using test::X;
using test::Y;

TEST(Interconnect, WritePropagatesAcrossTwoSystems) {
  Federation fed(test::two_systems(2, proto::anbkh_protocol(),
                                   proto::anbkh_protocol()));
  fed.system(0).app(0).write(X, 7);
  fed.run();
  Value got = -1;
  fed.system(1).app(1).read(X, [&](Value v) { got = v; });
  fed.run();
  EXPECT_EQ(got, 7);
}

TEST(Interconnect, PropagationIsBidirectional) {
  Federation fed(test::two_systems(2, proto::anbkh_protocol(),
                                   proto::anbkh_protocol()));
  fed.system(0).app(0).write(X, 1);
  fed.system(1).app(0).write(Y, 2);
  fed.run();
  Value x_in_1 = -1, y_in_0 = -1;
  fed.system(1).app(1).read(X, [&](Value v) { x_in_1 = v; });
  fed.system(0).app(1).read(Y, [&](Value v) { y_in_0 = v; });
  fed.run();
  EXPECT_EQ(x_in_1, 1);
  EXPECT_EQ(y_in_0, 2);
}

TEST(Interconnect, NoEchoOnePairPerWritePerLink) {
  Federation fed(test::two_systems(2, proto::anbkh_protocol(),
                                   proto::anbkh_protocol()));
  fed.system(0).app(0).write(X, 1);
  fed.run();
  // Exactly one pair crossed the link, none came back.
  EXPECT_EQ(fed.interconnector().shared_isp(0).pairs_sent(), 1u);
  EXPECT_EQ(fed.interconnector().shared_isp(1).pairs_sent(), 0u);
  EXPECT_EQ(fed.interconnector().shared_isp(1).pairs_received(), 1u);
  const auto cross = fed.fabric().cross_system_stats(SystemId{0}, SystemId{1});
  EXPECT_EQ(cross.messages, 1u);
}

TEST(Interconnect, AutoSelectsProtocol1ForCausalUpdatingSystems) {
  Federation fed(test::two_systems(2, proto::anbkh_protocol(),
                                   proto::anbkh_protocol()));
  EXPECT_FALSE(fed.interconnector().shared_isp(0).pre_reads_enabled());
  EXPECT_FALSE(fed.interconnector().shared_isp(1).pre_reads_enabled());
}

TEST(Interconnect, AutoSelectsProtocol2ForLazyBatchSystems) {
  Federation fed(test::two_systems(
      2, proto::lazy_batch_protocol(), proto::anbkh_protocol()));
  EXPECT_TRUE(fed.interconnector().shared_isp(0).pre_reads_enabled());
  EXPECT_FALSE(fed.interconnector().shared_isp(1).pre_reads_enabled());
}

TEST(Interconnect, RejectsCyclicTopology) {
  FederationConfig cfg = test::chain_systems(3, 2, proto::anbkh_protocol());
  LinkSpec closing;
  closing.system_a = 2;
  closing.system_b = 0;
  cfg.links.push_back(closing);
  EXPECT_THROW(Federation{std::move(cfg)}, InvariantViolation);
}

TEST(Interconnect, RejectsSelfLink) {
  FederationConfig cfg = test::single_system(2, proto::anbkh_protocol());
  LinkSpec self;
  self.system_a = 0;
  self.system_b = 0;
  cfg.links.push_back(self);
  EXPECT_THROW(Federation{std::move(cfg)}, InvariantViolation);
}

TEST(Interconnect, ChainOfFourPropagatesEndToEnd) {
  Federation fed(test::chain_systems(4, 2, proto::anbkh_protocol()));
  fed.system(0).app(0).write(X, 5);
  fed.run();
  Value got = -1;
  fed.system(3).app(1).read(X, [&](Value v) { got = v; });
  fed.run();
  EXPECT_EQ(got, 5);
}

TEST(Interconnect, CausalChainAcrossSystemsPreserved) {
  // w(x)1 in S0; S1 process reads it and writes y=2; back in S0, a reader
  // that sees y=2 must also see x=1. Verified by the checker on αT.
  Federation fed(test::two_systems(2, proto::anbkh_protocol(),
                                   proto::anbkh_protocol()));
  auto& sim = fed.simulator();
  fed.system(0).app(0).write(X, 1);
  wl::RelayDriver relay(sim, fed.system(1).app(0), X, 1, Y, 2,
                        sim::milliseconds(2));
  relay.start();
  // Poll y in S0, then read x right after y turns 2.
  wl::RelayDriver observer(sim, fed.system(0).app(1), Y, 2, VarId{9}, 3,
                           sim::milliseconds(2));
  observer.start();
  fed.run();
  ASSERT_TRUE(relay.fired());
  ASSERT_TRUE(observer.fired());

  Value x_after = -1;
  fed.system(0).app(1).read(X, [&](Value v) { x_after = v; });
  fed.run();
  EXPECT_EQ(x_after, 1);

  auto res = chk::CausalChecker{}.check(fed.federation_history());
  EXPECT_TRUE(res.ok()) << res.detail;
}

struct GridParam {
  std::uint64_t seed;
  int proto_a;  // 0 anbkh, 1 lazybatch, 2 awseq, 3 tob-causal
  int proto_b;
};

mcs::ProtocolFactory make_protocol(int which) {
  switch (which) {
    case 0: return proto::anbkh_protocol();
    case 1: {
      proto::LazyBatchConfig lc;
      lc.order = proto::BatchOrder::kShuffleVars;
      return proto::lazy_batch_protocol(lc);
    }
    case 2: return proto::aw_seq_protocol();
    default: return proto::tob_causal_protocol();
  }
}

class InterconnectGrid : public ::testing::TestWithParam<GridParam> {};

// Theorem 1 (experiment E5): the union of two causal systems interconnected
// with the IS-protocols is causal — across seeds and protocol combinations
// (including mixed implementations, which the paper explicitly allows).
TEST_P(InterconnectGrid, UnionOfTwoSystemsIsCausal) {
  const GridParam p = GetParam();
  FederationConfig cfg = test::two_systems(
      3, make_protocol(p.proto_a), make_protocol(p.proto_b), p.seed);
  for (auto& sc : cfg.systems) {
    sc.intra_delay = [] {
      return std::make_unique<net::UniformDelay>(sim::microseconds(200),
                                                 sim::milliseconds(15));
    };
  }
  cfg.links[0].delay = [] {
    return std::make_unique<net::UniformDelay>(sim::milliseconds(2),
                                               sim::milliseconds(30));
  };
  Federation fed(std::move(cfg));

  wl::UniformConfig wc;
  wc.ops_per_process = 30;
  wc.num_vars = 4;
  wc.seed = p.seed * 97 + 3;
  auto runners = wl::install_uniform(fed, wc);
  fed.run();
  for (const auto& r : runners) ASSERT_TRUE(r->done());

  // α^T is causal (Theorem 1)...
  auto res = chk::CausalChecker{}.check(fed.federation_history());
  EXPECT_TRUE(res.ok()) << chk::to_string(res.pattern) << ": " << res.detail
                        << "\nprotocols " << p.proto_a << "/" << p.proto_b
                        << " seed " << p.seed;
  // ... and so is each system's own computation α^k (with its ISP's ops).
  for (std::size_t s = 0; s < 2; ++s) {
    auto sys_res = chk::CausalChecker{}.check(fed.system_history(s));
    EXPECT_TRUE(sys_res.ok())
        << "system " << s << ": " << sys_res.detail;
  }
}

std::vector<GridParam> grid_params() {
  std::vector<GridParam> out;
  for (std::uint64_t seed : {1, 2, 3, 4, 5}) {
    for (int a = 0; a < 4; ++a) {
      for (int b = a; b < 4; ++b) {
        out.push_back(GridParam{seed, a, b});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Grid, InterconnectGrid,
                         ::testing::ValuesIn(grid_params()));

// Corollary 1: trees of systems are causal.
class TreeSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreeSeeds, ChainOfFourSystemsIsCausal) {
  FederationConfig cfg =
      test::chain_systems(4, 2, proto::anbkh_protocol(), GetParam());
  Federation fed(std::move(cfg));
  wl::UniformConfig wc;
  wc.ops_per_process = 20;
  wc.num_vars = 3;
  wc.seed = GetParam() + 10;
  auto runners = wl::install_uniform(fed, wc);
  fed.run();
  auto res = chk::CausalChecker{}.check(fed.federation_history());
  EXPECT_TRUE(res.ok()) << res.detail;
}

TEST_P(TreeSeeds, StarOfFiveSystemsIsCausal) {
  FederationConfig cfg;
  cfg.seed = GetParam();
  for (std::uint16_t s = 0; s < 5; ++s) {
    mcs::SystemConfig sc;
    sc.id = SystemId{s};
    sc.num_app_processes = 2;
    sc.protocol = proto::anbkh_protocol();
    sc.seed = GetParam() * 7 + s;
    cfg.systems.push_back(std::move(sc));
  }
  for (std::size_t leaf = 1; leaf < 5; ++leaf) {
    LinkSpec link;
    link.system_a = 0;  // hub
    link.system_b = leaf;
    cfg.links.push_back(link);
  }
  Federation fed(std::move(cfg));
  wl::UniformConfig wc;
  wc.ops_per_process = 15;
  wc.num_vars = 3;
  wc.seed = GetParam() + 77;
  auto runners = wl::install_uniform(fed, wc);
  fed.run();
  auto res = chk::CausalChecker{}.check(fed.federation_history());
  EXPECT_TRUE(res.ok()) << res.detail;
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeSeeds,
                         ::testing::Range<std::uint64_t>(1, 7));

// Per-link IS-processes (the literal pairwise construction of Corollary 1).
TEST(Interconnect, PerLinkIspModeIsCausalOnChain) {
  FederationConfig cfg = test::chain_systems(3, 2, proto::anbkh_protocol(), 5);
  cfg.isp_mode = IspMode::kPerLink;
  Federation fed(std::move(cfg));
  wl::UniformConfig wc;
  wc.ops_per_process = 20;
  wc.seed = 55;
  auto runners = wl::install_uniform(fed, wc);
  fed.run();
  auto res = chk::CausalChecker{}.check(fed.federation_history());
  EXPECT_TRUE(res.ok()) << res.detail;

  // The middle system hosts two IS-processes in this mode.
  EXPECT_EQ(fed.system(1).num_processes(), fed.system(1).num_app_processes() + 2);
}

}  // namespace
}  // namespace cim::isc

file(REMOVE_RECURSE
  "libcim_sim.a"
)

// Values stored in shared variables.
//
// Following the paper (Section 2) we assume "a given value is written at most
// once in any given variable". Workload generators enforce this by drawing
// values from a global counter. The distinguished kInitValue is the value a
// variable holds before any write; the consistency checker models it with an
// implicit initialization write that causally precedes every operation.
#pragma once

#include <cstdint>

namespace cim {

using Value = std::int64_t;

/// Initial content of every variable before the first write.
inline constexpr Value kInitValue = 0;

}  // namespace cim

// Sparse dependency graph over a columnar History.
//
// The bad-pattern checker used to materialize every order as a dense n×n
// bit matrix (relation.h) and close it transitively — O(n²) memory and
// O(n³/64) time, which caps it far below the multi-million-op histories the
// mesh produces. This graph keeps program order *implicit* in the history's
// per-process spans and stores only the explicit edges (reads-from, derived
// happens-before, conflict) as CSR adjacency, giving:
//
//  * Kahn toposort in O(n + m), with a Tarjan-SCC pass to localize a cycle
//    witness when the sort stalls;
//  * per-op *vector clocks* in O((n + m) · P): clock[i][p] is the highest
//    1-based program-order position among process p's operations causally
//    at-or-before op i, so the reachability query a ⇝ b is one integer
//    compare — the sparse replacement for Relation::test.
//
// The dense Relation survives only where the reference SearchChecker and
// CausalChecker::causal_order genuinely need a materialized order.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "checker/history.h"

namespace cim::chk {

/// One explicit edge (from precedes to). Program order is never stored.
struct Edge {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
};

class SparseGraph {
 public:
  explicit SparseGraph(const History& h);

  std::size_t size() const { return n_; }
  std::size_t num_procs() const { return P_; }
  std::uint32_t proc_of(std::size_t i) const { return proc_of_[i]; }
  /// 1-based program-order position of op i within its process.
  std::uint32_t seq1(std::size_t i) const { return seq1_[i]; }

  /// Replace the explicit edge set (rf ∪ derived ∪ cf). Self-edges are the
  /// caller's bug; duplicate edges are tolerated.
  void set_edges(const std::vector<Edge>& edges);
  std::size_t num_edges() const { return fwd_to_.size(); }

  /// Kahn toposort over po ∪ edges. Returns true and fills `order` (size n)
  /// when acyclic; returns false and, if non-null, sets `witness` to two
  /// distinct mutually-reachable ops otherwise.
  bool topo_order(std::vector<std::uint32_t>& order,
                  std::pair<std::uint32_t, std::uint32_t>* witness) const;

  /// Tarjan strongly connected components over po ∪ edges. comp[i] is the
  /// component id (components are numbered in reverse topological order of
  /// discovery). Returns the number of components.
  std::size_t scc(std::vector<std::uint32_t>& comp) const;

  /// Vector clocks over po ∪ edges, flat n×P: out[i*P + p] = max seq1 among
  /// ops of process p causally at-or-before op i (op i itself included).
  /// `order` must be a topo order from topo_order().
  void clocks(const std::vector<std::uint32_t>& order,
              std::vector<std::uint32_t>& out) const;

  /// Strict reachability a ⇝ b (a ≠ b) under clocks from clocks().
  bool reaches(const std::vector<std::uint32_t>& clk, std::uint32_t a,
               std::uint32_t b) const {
    return a != b && clk[static_cast<std::size_t>(b) * P_ + proc_of_[a]] >=
                         seq1_[a];
  }

 private:
  bool in_same_span(std::size_t i, std::size_t succ) const {
    return seq1_[succ] > 1 && succ == i + 1;
  }

  std::size_t n_ = 0;
  std::size_t P_ = 0;
  std::vector<std::uint32_t> proc_of_;  // dense process index per op
  std::vector<std::uint32_t> seq1_;     // 1-based program-order position
  // CSR adjacency of the explicit edges, both directions.
  std::vector<std::uint32_t> fwd_off_, fwd_to_;
  std::vector<std::uint32_t> rev_off_, rev_from_;
};

}  // namespace cim::chk

file(REMOVE_RECURSE
  "CMakeFiles/cim_workload.dir/generator.cpp.o"
  "CMakeFiles/cim_workload.dir/generator.cpp.o.d"
  "CMakeFiles/cim_workload.dir/script.cpp.o"
  "CMakeFiles/cim_workload.dir/script.cpp.o.d"
  "libcim_workload.a"
  "libcim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Base class for MCS-processes (the protocol endpoints of a DSM system).
//
// A concrete protocol (ANBKH, lazy-batch, Attiya-Welch, ...) derives from
// McsProcess and implements the read/write call handlers and the message
// handler. The base class provides:
//
//  * channel wiring within the system (full mesh, plus sender resolution),
//  * the IS-process upcall pipeline of Section 2, including write deferral
//    while an upcall is in flight (condition (a): the pre-value must not be
//    modified until the update is done, nor the new value until the
//    post-upcall response),
//  * the Causal Updating Property trait (Property 1) that selects which
//    IS-protocol the interconnect layer runs.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/vec_queue.h"

#include "common/ids.h"
#include "common/rng.h"
#include "common/value.h"
#include "mcs/memory_observer.h"
#include "mcs/types.h"
#include "mcs/upcall.h"
#include "net/fabric.h"
#include "obs/obs.h"
#include "sim/simulator.h"

namespace cim::mcs {

/// Everything a protocol instance needs from its environment.
struct McsContext {
  ProcId id;
  std::uint16_t local_index = 0;
  std::uint16_t num_procs = 0;
  sim::Simulator* simulator = nullptr;
  net::Fabric* fabric = nullptr;
  std::uint64_t rng_seed = 0;
  MemoryObserver* observer = nullptr;   // may be null
  obs::Observability* obs = nullptr;    // may be null (no metrics/tracing)
};

class McsProcess : public net::Receiver {
 public:
  explicit McsProcess(const McsContext& ctx);
  ~McsProcess() override = default;

  ProcId id() const { return ctx_.id; }
  std::uint16_t local_index() const { return ctx_.local_index; }
  std::uint16_t num_procs() const { return ctx_.num_procs; }

  // ---- wiring (called by System::finalize) -------------------------------
  /// out[j] = channel to local process j; out[local_index()] is unused.
  void set_out_channels(std::vector<net::ChannelId> out);
  /// Declare that messages arriving on `ch` come from local process `from`.
  void register_in_channel(net::ChannelId ch, std::uint16_t from);

  // ---- application-facing calls ------------------------------------------
  /// Serve a read call; the response callback receives the replica value.
  /// Reads are always served, even while an upcall is in flight
  /// (condition (b)); they then return the pre/post value (condition (c)).
  virtual void handle_read(VarId var, ReadCallback cb) = 0;

  /// Serve a write call. While an upcall is in flight the call is deferred
  /// (condition (a)); otherwise it is passed to the protocol's do_write.
  /// `wid` is the globally-unique write id minted by the issuing application
  /// process (or carried over from the origin system by an IS-process).
  void handle_write(VarId var, Value value, WriteId wid, WriteCallback cb);

  // ---- IS-process support -------------------------------------------------
  void attach_upcall_handler(UpcallHandler* handler) {
    upcall_handler_ = handler;
  }
  void set_pre_update_enabled(bool enabled) { pre_update_enabled_ = enabled; }
  bool has_upcall_handler() const { return upcall_handler_ != nullptr; }
  bool pre_update_enabled() const { return pre_update_enabled_; }
  bool upcall_in_flight() const { return upcall_in_flight_; }

  /// Property 1 of the paper: does this protocol update the replicas of the
  /// IS-process's MCS-process in causal order? Decides which IS-protocol the
  /// interconnect layer uses (Fig. 1 alone, or with Fig. 2's pre-read task).
  virtual bool satisfies_causal_updating() const = 0;

  virtual const char* protocol_name() const = 0;

 protected:
  /// Protocol implementation of a (non-deferred) write call.
  virtual void do_write(VarId var, Value value, WriteId wid,
                        WriteCallback cb) = 0;

  /// Apply one replica update through the upcall discipline. `own_write` is
  /// true when the update stems from a write issued by the attached
  /// application process itself (such updates never generate upcalls).
  /// `apply` performs the replica mutation; `done` resumes the protocol's
  /// apply pipeline afterwards.
  void apply_with_upcalls(VarId var, Value value, WriteId wid, bool own_write,
                          DoneFn apply, DoneFn done);

  sim::Simulator& simulator() { return *ctx_.simulator; }
  net::Fabric& fabric() { return *ctx_.fabric; }
  Rng& rng() { return rng_; }
  MemoryObserver* observer() { return ctx_.observer; }
  obs::TraceSink* trace() { return trace_; }

  // ---- protocol instrumentation (docs/OBSERVABILITY.md, `proto.*`) --------
  /// A local write was issued and propagated (counter + trace).
  void note_update_issued(VarId var, Value value, WriteId wid);
  /// A remote update entered the protocol's reorder/batch buffer; sample its
  /// occupancy *after* insertion.
  void note_update_buffered(std::size_t buffer_size);
  /// A remote update was applied to the replica. `received_at` (if known)
  /// feeds the causal-wait histogram: time the update sat buffered until its
  /// causal dependencies arrived.
  void note_update_applied(VarId var, Value value, WriteId wid);
  void note_update_applied(VarId var, Value value, WriteId wid,
                           sim::Time received_at);

  const std::vector<net::ChannelId>& out_channels() const { return out_; }
  /// Sender local index of a registered inbound channel.
  std::uint16_t sender_of(net::ChannelId ch) const;
  /// Send `msg` to local process `to`.
  void send_to(std::uint16_t to, net::MessagePtr msg);

 private:
  void drain_deferred_writes();

  McsContext ctx_;
  Rng rng_;
  // Cached instrument cells (null when ctx.obs is null).
  obs::TraceSink* trace_ = nullptr;
  obs::Counter* m_issued_ = nullptr;
  obs::Counter* m_applied_ = nullptr;
  obs::DurationHistogram* h_causal_wait_ = nullptr;
  obs::ValueHistogram* h_buffer_ = nullptr;
  std::vector<net::ChannelId> out_;
  // Sender lookup per inbound message: a flat vector indexed by channel id
  // (channel ids are dense, fabric-assigned). kNoSender marks unregistered.
  static constexpr std::uint16_t kNoSender = 0xffff;
  std::vector<std::uint16_t> in_senders_;

  UpcallHandler* upcall_handler_ = nullptr;
  bool pre_update_enabled_ = true;
  bool upcall_in_flight_ = false;

  struct DeferredWrite {
    VarId var;
    Value value;
    WriteId wid;
    WriteCallback cb;
  };
  VecQueue<DeferredWrite> deferred_writes_;
};

/// Factory invoked by System::finalize for each local process slot.
using ProtocolFactory =
    std::function<std::unique_ptr<McsProcess>(const McsContext&)>;

}  // namespace cim::mcs

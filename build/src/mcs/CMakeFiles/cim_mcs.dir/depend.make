# Empty dependencies file for cim_mcs.
# This may be replaced when dependencies are built.

// Second-wave checker tests: corner cases of the bad-pattern characterization,
// init-value semantics, level separation (CC vs CM), and properties of the
// causal order itself.
#include <gtest/gtest.h>

#include "checker/causal_checker.h"
#include "checker/relation.h"
#include "checker/search_checker.h"
#include "helpers.h"

namespace cim::chk {
namespace {

using test::H;
using test::X;
using test::Y;
using test::Z;

// ------------------------------------------------------------- init values

TEST(CheckerInit, ManyInitReadsAcrossProcessesAreCausal) {
  auto h = H{}
               .rd(0, X, kInitValue)
               .rd(1, X, kInitValue)
               .rd(2, Y, kInitValue)
               .rd(0, Y, kInitValue)
               .history();
  EXPECT_TRUE(CausalChecker{}.check(h).ok());
}

TEST(CheckerInit, InitReadAfterOwnReadOfWriteIsBad) {
  // p1 observes x=1 and then reads x as initial again: no legal placement.
  auto h = H{}.wr(0, X, 1).rd(1, X, 1).rd(1, X, kInitValue).history();
  auto res = CausalChecker{}.check(h);
  EXPECT_EQ(res.pattern, BadPattern::kWriteCOInitRead);
}

TEST(CheckerInit, ConcurrentReaderMayStillSeeInit) {
  // p1 reads init while p0's write exists but was never observed by p1.
  auto h = H{}.wr(0, X, 1).rd(1, X, kInitValue).rd(1, X, 1).history();
  EXPECT_TRUE(CausalChecker{}.check(h).ok());
}

TEST(CheckerInit, InitReadForcedOnlyThroughOtherVariable) {
  // The causal past arrives via variable y; the stale read is on x.
  auto h = H{}
               .wr(0, X, 1)
               .wr(0, Y, 2)
               .rd(1, Y, 2)
               .rd(1, X, kInitValue)
               .history();
  EXPECT_EQ(CausalChecker{}.check(h).pattern, BadPattern::kWriteCOInitRead);
}

// -------------------------------------------------------------- WriteCORead

TEST(CheckerStale, StaleReadViaThreeProcessChain) {
  // w(x)1 ⇝ w(x)2 through a read at p1; p2 sees 2 then 1.
  auto h = H{}
               .wr(0, X, 1)
               .rd(1, X, 1)
               .wr(1, X, 2)
               .rd(2, X, 2)
               .rd(2, X, 1)
               .history();
  EXPECT_EQ(CausalChecker{}.check(h).pattern, BadPattern::kWriteCORead);
}

TEST(CheckerStale, RereadOfSameValueIsFine) {
  auto h = H{}.wr(0, X, 1).rd(1, X, 1).rd(1, X, 1).rd(1, X, 1).history();
  EXPECT_TRUE(CausalChecker{}.check(h).ok());
}

TEST(CheckerStale, OldConcurrentValueAfterNewIsFine) {
  // 1 and 2 concurrent: reading 2 then 1 is legal (place w1 between).
  auto h = H{}.wr(0, X, 1).wr(1, X, 2).rd(2, X, 2).rd(2, X, 1).history();
  EXPECT_TRUE(CausalChecker{}.check(h).ok());
}

TEST(CheckerStale, FlipFlopBetweenConcurrentValuesIsBad) {
  // 2,1,2: needs w2 placed both before and after w1 — CM rejects.
  auto h = H{}
               .wr(0, X, 1)
               .wr(1, X, 2)
               .rd(2, X, 2)
               .rd(2, X, 1)
               .rd(2, X, 2)
               .history();
  auto res = CausalChecker{}.check(h);
  EXPECT_FALSE(res.ok());
}

TEST(CheckerStale, DifferentProcessesMayDisagreeOnConcurrentOrder) {
  auto h = H{}
               .wr(0, X, 1)
               .wr(1, X, 2)
               .rd(2, X, 1)
               .rd(2, X, 2)
               .rd(3, X, 2)
               .rd(3, X, 1)
               .rd(4, X, 1)
               .rd(5, X, 2)
               .history();
  EXPECT_TRUE(CausalChecker{}.check(h).ok());
}

// ------------------------------------------------------------ CC vs CM

TEST(CheckerLevels, CCAcceptsPerReadJustifiableButCMRejects) {
  auto h = H{}
               .wr(0, X, 1)
               .wr(1, X, 2)
               .rd(2, X, 2)
               .rd(2, X, 1)
               .rd(2, X, 2)
               .history();
  EXPECT_TRUE(CausalChecker{}.check(h, Level::kCC).ok());
  EXPECT_FALSE(CausalChecker{}.check(h, Level::kCM).ok());
}

TEST(CheckerLevels, CMImpliesCCOnRandomHistories) {
  Rng rng(77);
  for (int trial = 0; trial < 100; ++trial) {
    H h;
    Value next = 1;
    const int ops = 4 + static_cast<int>(rng.uniform(0, 8));
    for (int i = 0; i < ops; ++i) {
      const auto proc = static_cast<std::uint16_t>(rng.uniform(0, 3));
      const VarId var{static_cast<std::uint32_t>(rng.uniform(0, 1))};
      if (rng.chance(0.5)) {
        h.wr(proc, var, next++);
      } else {
        h.rd(proc, var,
             static_cast<Value>(rng.uniform(0, static_cast<std::uint64_t>(next - 1))));
      }
    }
    auto history = h.history();
    const bool cm = CausalChecker{}.check(history, Level::kCM).ok();
    const bool cc = CausalChecker{}.check(history, Level::kCC).ok();
    EXPECT_TRUE(!cm || cc) << "CM ok but CC bad on:\n" << history.to_string();
  }
}

// ------------------------------------------------- causal order properties

TEST(CausalOrder, IsTransitive) {
  auto h = H{}
               .wr(0, X, 1)
               .rd(1, X, 1)
               .wr(1, Y, 2)
               .rd(2, Y, 2)
               .wr(2, Z, 3)
               .history();
  auto co = CausalChecker{}.causal_order(h);
  ASSERT_TRUE(co);
  const std::size_t n = h.size();
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      for (std::size_t c = 0; c < n; ++c) {
        if (co->test(a, b) && co->test(b, c)) {
          EXPECT_TRUE(co->test(a, c));
        }
      }
    }
  }
}

TEST(CausalOrder, ConcurrentOpsUnordered) {
  auto h = H{}.wr(0, X, 1).wr(1, Y, 2).history();
  auto co = CausalChecker{}.causal_order(h);
  ASSERT_TRUE(co);
  EXPECT_FALSE(co->test(0, 1));
  EXPECT_FALSE(co->test(1, 0));
}

TEST(CausalOrder, FailsOnThinAir) {
  auto h = H{}.rd(0, X, 99).history();
  EXPECT_FALSE(CausalChecker{}.causal_order(h).has_value());
}

TEST(CausalOrder, DuplicateWritesUnreadAreUnambiguous) {
  // No read observes the repeated value, so reads-from stays a function and
  // the causal order is well-defined (just po here).
  auto h = H{}.wr(0, X, 1).wr(1, X, 1).history();
  auto co = CausalChecker{}.causal_order(h);
  ASSERT_TRUE(co.has_value());
  EXPECT_FALSE(co->test(0, 1));
  EXPECT_FALSE(co->test(1, 0));
}

TEST(CausalOrder, FailsOnAmbiguousReadsFrom) {
  // A read of a twice-written value has no unique source; causal_order
  // declines (check() resolves it by searching over assignments).
  auto h = H{}.wr(0, X, 1).wr(1, X, 1).rd(2, X, 1).history();
  EXPECT_FALSE(CausalChecker{}.causal_order(h).has_value());
}

// ------------------------------------------------------------ search budget

TEST(SearchBudget, TinyBudgetReturnsUnknown) {
  H h;
  for (int i = 0; i < 10; ++i) {
    h.wr(static_cast<std::uint16_t>(i % 3), VarId{static_cast<std::uint32_t>(i % 2)},
         i + 1);
  }
  auto res = SearchChecker{}.is_sequential(h.history(), /*node_budget=*/1);
  EXPECT_FALSE(res.has_value());
}

TEST(SearchBudget, OversizedHistoryReturnsUnknown) {
  H h;
  for (int i = 0; i < 70; ++i) h.wr(0, X, i + 1);
  EXPECT_FALSE(SearchChecker{}.is_sequential(h.history()).has_value());
  EXPECT_FALSE(SearchChecker{}.is_causal(h.history()).has_value());
}

// --------------------------------------------------------- larger relations

TEST(RelationScale, ClosureOfLongChain) {
  const std::size_t n = 300;
  Relation r(n);
  for (std::size_t i = 0; i + 1 < n; ++i) r.set(i, i + 1);
  auto res = transitive_closure(r);
  EXPECT_FALSE(res.cycle_witness.has_value());
  EXPECT_TRUE(res.closure.test(0, n - 1));
  EXPECT_EQ(res.closure.edge_count(), n * (n - 1) / 2);
}

TEST(RelationScale, ClosureOfRandomDagMatchesDfsReachability) {
  Rng rng(5);
  const std::size_t n = 60;
  Relation r(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.chance(0.08)) r.set(i, j);  // forward edges only: acyclic
    }
  }
  auto res = transitive_closure(r);
  ASSERT_FALSE(res.cycle_witness.has_value());
  // Reference: simple DFS reachability.
  for (std::size_t s = 0; s < n; ++s) {
    std::vector<bool> seen(n, false);
    std::vector<std::size_t> stack{s};
    while (!stack.empty()) {
      const std::size_t v = stack.back();
      stack.pop_back();
      r.for_successors(v, [&](std::size_t w) {
        if (!seen[w]) {
          seen[w] = true;
          stack.push_back(w);
        }
      });
    }
    for (std::size_t t = 0; t < n; ++t) {
      EXPECT_EQ(res.closure.test(s, t), seen[t]) << s << "->" << t;
    }
  }
}

TEST(RelationScale, BigCycleDetected) {
  const std::size_t n = 200;
  Relation r(n);
  for (std::size_t i = 0; i < n; ++i) r.set(i, (i + 1) % n);
  auto res = transitive_closure(r);
  ASSERT_TRUE(res.cycle_witness.has_value());
  EXPECT_TRUE(res.closure.test(0, 0));
  EXPECT_TRUE(res.closure.test(n / 2, 0));
}

// -------------------------------------------- recorder/history edge cases

TEST(HistoryEdge, EmptyHistoryHasNoProcesses) {
  History h;
  EXPECT_TRUE(h.empty());
  EXPECT_TRUE(h.processes().empty());
  EXPECT_TRUE(h.span_of(ProcId{}).empty());
}

TEST(HistoryEdge, ProgramOrderStableForInterleavedRecording) {
  Recorder rec;
  ProcId a{SystemId{0}, 0}, b{SystemId{0}, 1};
  auto w1 = rec.begin(a, false, OpKind::kWrite, X, 1, sim::Time{5});
  auto w2 = rec.begin(b, false, OpKind::kWrite, X, 2, sim::Time{6});
  auto w3 = rec.begin(a, false, OpKind::kWrite, Y, 3, sim::Time{7});
  rec.end_write(w3, sim::Time{8});   // completes out of begin order
  rec.end_write(w1, sim::Time{9});
  rec.end_write(w2, sim::Time{10});
  auto h = rec.full();
  const History::Span pa = h.span_of(a);
  ASSERT_EQ(pa.size(), 2u);
  EXPECT_EQ(h.value(pa.begin), 1);  // begin order defines program order
  EXPECT_EQ(h.value(pa.begin + 1), 3);
}

}  // namespace
}  // namespace cim::chk

#!/bin/sh
# Fails if any src/ module is missing from docs/ARCHITECTURE.md, so the
# architecture document cannot silently fall behind the tree. Wired into
# ctest as the `docs_check` test (see the top-level CMakeLists.txt); run it
# from the repository root.
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"
doc="$root/docs/ARCHITECTURE.md"

if [ ! -f "$doc" ]; then
  echo "check_docs: missing $doc" >&2
  exit 1
fi

status=0
for dir in "$root"/src/*/; do
  module="$(basename "$dir")"
  # A module counts as documented if ARCHITECTURE.md mentions it backticked,
  # as `module` or inside a path/library name such as `src/module` or
  # `cim_module`.
  if ! grep -Eq "\`(src/)?${module}\`|\`cim_${module}\`" "$doc"; then
    echo "check_docs: src/${module} is not documented in docs/ARCHITECTURE.md" >&2
    status=1
  fi
done

# The documented library table must also stay complete: every cim_* library
# defined in the build should appear.
for lib in $(grep -rhoE "add_library\(cim_[a-z_]+" "$root"/src/*/CMakeLists.txt \
    | sed 's/add_library(//' | sort -u); do
  if ! grep -q "\`${lib}\`" "$doc"; then
    echo "check_docs: library ${lib} is not documented in docs/ARCHITECTURE.md" >&2
    status=1
  fi
done

# docs/WIRE.md is the normative wire-format description: it must exist, and
# every wire type label the codec knows (src/net/wire.cpp) must be described
# in it, so the layout tables cannot silently fall behind the enum.
wire_doc="$root/docs/WIRE.md"
if [ ! -f "$wire_doc" ]; then
  echo "check_docs: missing $wire_doc" >&2
  status=1
else
  for label in control pair vc_update tob_publish tob_deliver partial_update \
      cbcast transport_frame stats; do
    if ! grep -q "$label" "$wire_doc"; then
      echo "check_docs: wire type '${label}' is not documented in docs/WIRE.md" >&2
      status=1
    fi
  done
  for sym in kWireVersion kMaxBodyBytes kMaxClockEntries kMaxNestingDepth \
      kTransportVersion2 kMaxStatsEntries kMaxStatsKeyBytes; do
    if ! grep -q "$sym" "$wire_doc"; then
      echo "check_docs: wire constant ${sym} is not documented in docs/WIRE.md" >&2
      status=1
    fi
  done
fi

# docs/BRIDGE.md is the normative mesh description: it must exist, name
# every join-reject reason the handshake can send (src/mesh/mesh_node.cpp),
# and document the mesh counters and the spec keywords, so the protocol
# description cannot silently fall behind the implementation.
bridge_doc="$root/docs/BRIDGE.md"
if [ ! -f "$bridge_doc" ]; then
  echo "check_docs: missing $bridge_doc" >&2
  status=1
else
  for reason in "wire version mismatch" "topology hash mismatch" \
      "not a neighbor" "duplicate join" "stale session id"; do
    if ! grep -q "$reason" "$bridge_doc"; then
      echo "check_docs: reject reason '${reason}' is not documented in docs/BRIDGE.md" >&2
      status=1
    fi
  done
  for word in "nodes" "edge" "base_port" "done" "bye" "net.mesh" \
      "topology hash" "writev" "heartbeat" "rejoin" "replay journal" \
      "--resume" "backoff" "StatsFrame" "--stats-interval" "--fed-metrics" \
      "cim_top" "fed.node" "stats_parent"; do
    if ! grep -q -- "$word" "$bridge_doc"; then
      echo "check_docs: '${word}' is not documented in docs/BRIDGE.md" >&2
      status=1
    fi
  done
fi

# docs/CHECKER.md is the normative description of the columnar history
# store and the sparse constraint engine: it must exist, name every bad
# pattern the checker can report (src/checker/causal_checker.h), and
# document the storage/engine pieces and tuning knobs, so the checker
# description cannot silently fall behind the implementation.
checker_doc="$root/docs/CHECKER.md"
if [ ! -f "$checker_doc" ]; then
  echo "check_docs: missing $checker_doc" >&2
  status=1
else
  for pattern in CyclicCO ThinAirRead WriteCOInitRead WriteCORead CyclicHB \
      WriteHBInitRead CyclicCF ResidualLimit; do
    if ! grep -q "$pattern" "$checker_doc"; then
      echo "check_docs: bad pattern '${pattern}' is not documented in docs/CHECKER.md" >&2
      status=1
    fi
  done
  for word in SparseGraph HistoryBuilder VarProcWrites bytes_per_op \
      struct_bytes_per_op residual_budget kCC kCM kCCv \
      BENCH_checker.json CIM_CHECKER_BENCH_OPS; do
    if ! grep -q "$word" "$checker_doc"; then
      echo "check_docs: '${word}' is not documented in docs/CHECKER.md" >&2
      status=1
    fi
  done
fi

# docs/FAULTS.md owns the fault-injection model; the socket-level chaos
# hooks (src/net/fault_inject.h) and the chaos smoke must be described
# there, so a new hook cannot ship undocumented.
faults_doc="$root/docs/FAULTS.md"
if [ ! -f "$faults_doc" ]; then
  echo "check_docs: missing $faults_doc" >&2
  status=1
else
  for word in FaultHooks max_write_bytes fail_writes_after fail_reads_after \
      stall_writes dispatch_delay_us mesh_chaos_smoke; do
    if ! grep -q "$word" "$faults_doc"; then
      echo "check_docs: '${word}' is not documented in docs/FAULTS.md" >&2
      status=1
    fi
  done
fi

if [ "$status" -eq 0 ]; then
  echo "check_docs: OK"
fi
exit "$status"

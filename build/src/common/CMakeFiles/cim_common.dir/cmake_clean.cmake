file(REMOVE_RECURSE
  "CMakeFiles/cim_common.dir/rng.cpp.o"
  "CMakeFiles/cim_common.dir/rng.cpp.o.d"
  "CMakeFiles/cim_common.dir/vector_clock.cpp.o"
  "CMakeFiles/cim_common.dir/vector_clock.cpp.o.d"
  "libcim_common.a"
  "libcim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

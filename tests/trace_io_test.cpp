// Unit tests: the trace serialization round-trip and parser diagnostics.
#include <gtest/gtest.h>

#include "checker/causal_checker.h"
#include "checker/trace_io.h"
#include "helpers.h"

namespace cim::chk {
namespace {

using test::X;

TEST(TraceIo, RoundTripPreservesOps) {
  auto h = test::H{}
               .wr(0, X, 1)
               .rd(1, X, 1)
               .wr(1, VarId{1}, 2)
               .rd(0, VarId{1}, 2)
               .history();
  auto parsed = parse_trace(to_trace(h));
  ASSERT_TRUE(parsed.history.has_value()) << parsed.error;
  ASSERT_EQ(parsed.history->size(), h.size());
  // Per-process program order survives.
  for (ProcId p : h.processes()) {
    const History::Span a = h.span_of(p);
    const History::Span b = parsed.history->span_of(p);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(h.kind(a.begin + i), parsed.history->kind(b.begin + i));
      EXPECT_EQ(h.var(a.begin + i), parsed.history->var(b.begin + i));
      EXPECT_EQ(h.value(a.begin + i), parsed.history->value(b.begin + i));
    }
  }
}

TEST(TraceIo, RoundTripPreservesCheckerVerdict) {
  // A violating history must still violate after a round trip.
  auto bad = test::H{}
                 .wr(0, X, 1)
                 .wr(0, X, 2)
                 .rd(1, X, 2)
                 .rd(1, X, 1)
                 .history();
  auto parsed = parse_trace(to_trace(bad));
  ASSERT_TRUE(parsed.history.has_value());
  EXPECT_EQ(CausalChecker{}.check(*parsed.history).pattern,
            BadPattern::kWriteCORead);
}

TEST(TraceIo, ParsesMinimalFormatWithoutTimes) {
  auto parsed = parse_trace("w 0 0 0 1\nr 1 0 0 1\n");
  ASSERT_TRUE(parsed.history.has_value()) << parsed.error;
  EXPECT_EQ(parsed.history->size(), 2u);
  EXPECT_EQ(parsed.history->kind(0), OpKind::kWrite);
  EXPECT_EQ(parsed.history->proc(1).system, SystemId{1});
}

TEST(TraceIo, ParsesCommentsAndBlankLines) {
  auto parsed = parse_trace("# header\n\nw 0 0 0 1  # trailing comment\n\n");
  ASSERT_TRUE(parsed.history.has_value()) << parsed.error;
  EXPECT_EQ(parsed.history->size(), 1u);
}

TEST(TraceIo, ParsesIspFlag) {
  auto parsed = parse_trace("w 0 2 0 1 5 9 isp\n");
  ASSERT_TRUE(parsed.history.has_value()) << parsed.error;
  EXPECT_TRUE(parsed.history->is_isp(0));
  EXPECT_EQ(parsed.history->invoked(0), sim::Time{5});
  EXPECT_EQ(parsed.history->responded(0), sim::Time{9});
}

TEST(TraceIo, RejectsUnknownKind) {
  auto parsed = parse_trace("x 0 0 0 1\n");
  EXPECT_FALSE(parsed.history.has_value());
  EXPECT_NE(parsed.error.find("line 1"), std::string::npos);
}

TEST(TraceIo, RejectsShortLine) {
  auto parsed = parse_trace("w 0 0\n");
  EXPECT_FALSE(parsed.history.has_value());
}

TEST(TraceIo, RejectsDanglingInvokedTime) {
  auto parsed = parse_trace("w 0 0 0 1 5\n");
  EXPECT_FALSE(parsed.history.has_value());
}

TEST(TraceIo, RejectsUnknownTrailer) {
  auto parsed = parse_trace("w 0 0 0 1 5 9 bogus\n");
  EXPECT_FALSE(parsed.history.has_value());
}

TEST(TraceIo, RejectsOutOfRangeIds) {
  auto parsed = parse_trace("w 70000 0 0 1\n");
  EXPECT_FALSE(parsed.history.has_value());
}

TEST(TraceIo, RoundTripOfRealExecution) {
  isc::Federation fed(test::two_systems(2, proto::anbkh_protocol(),
                                        proto::anbkh_protocol(), 8));
  wl::UniformConfig wc;
  wc.ops_per_process = 15;
  wc.seed = 21;
  auto runners = wl::install_uniform(fed, wc);
  fed.run();
  auto history = fed.federation_history();

  auto parsed = parse_trace(to_trace(history));
  ASSERT_TRUE(parsed.history.has_value()) << parsed.error;
  EXPECT_EQ(parsed.history->size(), history.size());
  EXPECT_TRUE(CausalChecker{}.check(*parsed.history).ok());
}

}  // namespace
}  // namespace cim::chk

// Lazy-batch causal protocol: a propagation-based causal MCS-protocol that
// does NOT satisfy the Causal Updating Property (Property 1).
//
// Like ANBKH it replicates fully and stamps updates with vector clocks, but
// remote updates are buffered and applied in periodic *batches*: every
// batch_interval, the maximal causally-applicable set of buffered updates is
// applied atomically within one simulator event. Because application
// processes can never read an intermediate state of a batch, the protocol
// may apply the batch's updates to *different variables* in any order while
// remaining causal — updates to the same variable always keep their causal
// order, or convergence would break.
//
// This freedom is exactly what Section 3 of the paper warns about: with the
// order deliberately scrambled (kReverseVars / kShuffleVars), the replica of
// the IS-process's MCS-process is updated out of causal order, so IS-protocol
// 1 alone would propagate pairs out of causal order and the interconnected
// system would not be causal (experiment E6 demonstrates this). IS-protocol 2
// repairs it: its Pre_Propagate_out task issues a read *between* the batch's
// updates, making intermediate states observable — and a correct causal MCS
// must then fall back to causal application order (the observational forcing
// argument of Lemma 1). This class implements that forcing: when an upcall
// handler with pre-update upcalls enabled is attached, batches apply in
// causal order regardless of the configured scramble.
#pragma once

#include <vector>

#include "common/vector_clock.h"
#include "common/var_store.h"
#include "mcs/mcs_process.h"
#include "protocols/update_msg.h"
#include "sim/time.h"

namespace cim::proto {

enum class BatchOrder {
  kCausal,       // apply in causal order (like ANBKH, just delayed)
  kReverseVars,  // reverse the order of per-variable groups (deterministic)
  kShuffleVars,  // shuffle the per-variable groups (seeded)
};

struct LazyBatchConfig {
  sim::Duration batch_interval = sim::milliseconds(5);
  BatchOrder order = BatchOrder::kReverseVars;
};

class LazyBatchProcess final : public mcs::McsProcess {
 public:
  LazyBatchProcess(const mcs::McsContext& ctx, LazyBatchConfig config);

  void handle_read(VarId var, mcs::ReadCallback cb) override;
  void on_message(net::ChannelId from, net::MessagePtr msg) override;

  bool satisfies_causal_updating() const override { return false; }
  const char* protocol_name() const override { return "lazy-batch"; }

  const VectorClock& clock() const { return clock_; }
  Value replica_value(VarId var) const;

  /// Number of batches whose application order actually deviated from
  /// causal order (diagnostic for experiment E6).
  std::uint64_t scrambled_batches() const { return scrambled_batches_; }

 protected:
  void do_write(VarId var, Value value, WriteId wid,
                mcs::WriteCallback cb) override;

 private:
  void schedule_batch();
  void run_batch();
  void collect_ready(VectorClock& tentative,
                     std::vector<TimestampedUpdate>& batch);
  void order_batch(std::vector<TimestampedUpdate>& batch);

  LazyBatchConfig config_;
  VarStore store_;
  VectorClock clock_;
  // vectors, not deques: order-preserving erase/append with retained
  // capacity, so steady-state batching stops touching the allocator.
  std::vector<TimestampedUpdate> pending_;
  std::vector<TimestampedUpdate> batch_scratch_;
  std::vector<Value> causal_scratch_;
  bool batch_scheduled_ = false;
  std::uint64_t scrambled_batches_ = 0;
};

/// Factory for mcs::SystemConfig::protocol.
mcs::ProtocolFactory lazy_batch_protocol(LazyBatchConfig config = {});

}  // namespace cim::proto

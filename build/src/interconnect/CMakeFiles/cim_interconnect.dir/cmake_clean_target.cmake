file(REMOVE_RECURSE
  "libcim_interconnect.a"
)

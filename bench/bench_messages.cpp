// Experiment E1 (Section 6, network traffic).
//
// Paper: "in a global DSM system with n MCS-processes each write operation
// generates n-1 messages. With our interconnection protocols [...]
// generalizing these results for m systems, the number of messages for the
// interconnected system becomes n + m - 1."
//
// This bench runs write-only workloads over a global system and over m
// interconnected systems (shared IS-process per system, chain topology) and
// reports measured messages per write against the paper's formulas.
#include <iostream>

#include "bench_report.h"
#include "bench_util.h"
#include "stats/table.h"

namespace {

using namespace cim;

double measure_messages_per_write(std::size_t m, std::uint16_t n_total,
                                  std::uint64_t seed) {
  bench::FedParams params;
  params.num_systems = m;
  params.procs_per_system = static_cast<std::uint16_t>(n_total / m);
  params.topology = bench::Topology::kChain;
  params.seed = seed;
  isc::Federation fed(bench::make_config(params));

  // Write-only workload: every message in the run is attributable to writes.
  wl::UniformConfig wc;
  wc.ops_per_process = 10;
  wc.write_fraction = 1.0;
  wc.num_vars = 4;
  wc.seed = seed * 7 + 1;
  auto runners = wl::install_uniform(fed, wc);
  fed.run();

  const std::uint64_t total_writes =
      static_cast<std::uint64_t>(n_total) * wc.ops_per_process;
  return static_cast<double>(fed.fabric().total_messages()) /
         static_cast<double>(total_writes);
}

}  // namespace

int main() {
  std::cout << "E1 — messages per write operation (Section 6)\n"
            << "paper: global n-1; m interconnected systems n+m-1\n\n";

  bench::JsonReport report("messages");
  stats::Table table({"n (app procs)", "m (systems)", "paper", "measured",
                      "match"});
  for (std::uint16_t n : {8, 16, 24, 48}) {
    for (std::size_t m : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                          std::size_t{8}}) {
      if (n % m != 0) continue;
      const double expected =
          m == 1 ? n - 1.0 : static_cast<double>(n) + static_cast<double>(m) - 1.0;
      const double measured = measure_messages_per_write(m, n, 42);
      table.add_row(n, m, expected, measured,
                    measured == expected ? "yes" : "NO");
      report.row("n" + std::to_string(n) + "_m" + std::to_string(m))
          .field("n", n)
          .field("m", m)
          .field("paper_msgs_per_write", expected)
          .field("measured_msgs_per_write", measured)
          .field("match", measured == expected);
    }
  }
  table.print();

  std::cout << "\nNote: with m systems the interconnection adds m MCS-"
               "processes (one per IS-process)\nand m-1 link crossings per "
               "write, giving n + m - 1 total.\n";
  return 0;
}

#include "net/tcp_link.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "net/reliable_transport.h"
#include "net/wire.h"

namespace cim::net {

namespace {

// Frames batched into one writev call. Well below IOV_MAX everywhere; large
// enough that an IS fan-out burst or a forwarding storm shares one syscall.
constexpr std::size_t kMaxIov = 64;
constexpr std::size_t kReadChunk = 64 * 1024;
// Recycled frame buffers kept per transport (beyond this they are freed).
constexpr std::size_t kMaxFreeBufs = 64;

std::int64_t wall_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void set_nodelay(int fd) {
  // Mesh frames are small and latency-bound; Nagle would double-batch what
  // the send queue already coalesces.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  CIM_CHECK_MSG(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                "cannot set O_NONBLOCK: " << std::strerror(errno));
}

bool write_all(int fd, const std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    // MSG_NOSIGNAL: a vanished peer must surface as an error return, not
    // SIGPIPE killing the bridge.
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

int tcp_listen(std::uint16_t port, int backlog) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  CIM_CHECK_MSG(listener >= 0, "socket() failed: " << std::strerror(errno));
  int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listener);
    CIM_CHECK_MSG(false, "bind(:" << port << ") failed: "
                                  << std::strerror(err));
  }
  if (::listen(listener, backlog) != 0) {
    const int err = errno;
    ::close(listener);
    CIM_CHECK_MSG(false, "listen() failed: " << std::strerror(err));
  }
  return listener;
}

int tcp_accept(int listener_fd, int timeout_ms) {
  if (timeout_ms >= 0) {
    pollfd pfd{listener_fd, POLLIN, 0};
    int n;
    do {
      n = ::poll(&pfd, 1, timeout_ms);
    } while (n < 0 && errno == EINTR);
    if (n == 0) return -1;  // timeout
    CIM_CHECK_MSG(n > 0, "poll(listener) failed: " << std::strerror(errno));
  }
  const int fd = ::accept(listener_fd, nullptr, nullptr);
  CIM_CHECK_MSG(fd >= 0, "accept() failed: " << std::strerror(errno));
  set_nodelay(fd);
  return fd;
}

int tcp_listen_accept(std::uint16_t port) {
  const int listener = tcp_listen(port, 1);
  const int fd = tcp_accept(listener, -1);
  ::close(listener);
  return fd;
}

int tcp_connect(const char* host, std::uint16_t port, int retries) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port_str = std::to_string(port);
  CIM_CHECK_MSG(::getaddrinfo(host, port_str.c_str(), &hints, &res) == 0,
                "cannot resolve " << host);

  int fd = -1;
  for (int attempt = 0; attempt <= retries; ++attempt) {
    fd = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
    CIM_CHECK_MSG(fd >= 0, "socket() failed: " << std::strerror(errno));
    if (::connect(fd, res->ai_addr, res->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
    // The peer may simply not be listening yet (the mesh launches every
    // node concurrently); back off and retry.
    ::usleep(100 * 1000);
  }
  ::freeaddrinfo(res);
  CIM_CHECK_MSG(fd >= 0, "cannot connect to " << host << ":" << port);
  set_nodelay(fd);
  return fd;
}

int tcp_connect_timeout(const char* host, std::uint16_t port, int timeout_ms) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port_str = std::to_string(port);
  if (::getaddrinfo(host, port_str.c_str(), &hints, &res) != 0) return -1;

  const int fd = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
  if (fd < 0) {
    ::freeaddrinfo(res);
    return -1;
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, res->ai_addr, res->ai_addrlen);
  ::freeaddrinfo(res);
  if (rc != 0) {
    if (errno != EINPROGRESS) {
      ::close(fd);
      return -1;
    }
    pollfd p{};
    p.fd = fd;
    p.events = POLLOUT;
    if (::poll(&p, 1, timeout_ms) != 1) {
      ::close(fd);
      return -1;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return -1;
    }
  }
  ::fcntl(fd, F_SETFL, flags);  // the rejoin handshake wants blocking I/O
  set_nodelay(fd);
  return fd;
}

TcpLinkTransport::TcpLinkTransport(int fd, EpollLoop& loop,
                                   obs::Observability* obs,
                                   TcpLinkConfig config)
    : fd_(fd), loop_(loop), config_(config) {
  CIM_CHECK(fd >= 0);
  if (obs != nullptr) {
    obs::MetricsRegistry& m = obs->metrics();
    m_bytes_out_ = &m.counter("net.wire.bytes_out");
    h_encode_ns_ = &m.histogram("net.wire.encode_ns");
  }
}

TcpLinkTransport::~TcpLinkTransport() {
  close();
  ::close(fd_);
}

void TcpLinkTransport::close() {
  if (closed_) return;
  closed_ = true;
  if (started_.load(std::memory_order_acquire)) loop_.remove(fd_);
  ::shutdown(fd_, SHUT_RDWR);
  // The fd is unregistered, so the EOF that would normally set peer_closed_
  // will never be read — mark the stream dead here or a sender blocked on
  // the bounded queue of a retired transport waits forever.
  peer_closed_.store(true, std::memory_order_release);
  send_cv_.notify_all();  // a stalled sender must not wait on a dead stream
}

void TcpLinkTransport::register_with_loop() {
  {
    // Serialize with a concurrent send(): the pre-start blocking write and
    // the switch to nonblocking must not interleave.
    std::lock_guard<std::mutex> lock(send_mutex_);
    set_nonblocking(fd_);
    started_.store(true, std::memory_order_release);
  }
  last_rx_ns_.store(wall_ns(), std::memory_order_relaxed);
  loop_.add(fd_, this);
}

void TcpLinkTransport::start(DeliverFn deliver) {
  CIM_CHECK_MSG(!started_.load(std::memory_order_acquire),
                "start() called twice");
  deliver_ = std::move(deliver);
  register_with_loop();
}

void TcpLinkTransport::start_frames(FrameFn fn) {
  CIM_CHECK_MSG(!started_.load(std::memory_order_acquire),
                "start() called twice");
  frame_fn_ = std::move(fn);
  register_with_loop();
}

void TcpLinkTransport::kick() {
  loop_.post([this] {
    std::unique_lock<std::mutex> lock(send_mutex_);
    flush_locked(lock);
  });
}

void TcpLinkTransport::fail(const char* error) {
  error_.store(error, std::memory_order_release);
  peer_closed_.store(true, std::memory_order_release);
  send_cv_.notify_all();
}

std::size_t TcpLinkTransport::backlog() const {
  std::lock_guard<std::mutex> lock(
      const_cast<TcpLinkTransport*>(this)->send_mutex_);
  return sendq_.size();
}

bool TcpLinkTransport::wait_for_room(std::unique_lock<std::mutex>& lock) {
  // Bounded queue: a sender on a foreign thread stalls until the loop
  // drains below the bound; the loop thread itself (a forwarding deliver
  // callback) flushes inline instead and may overshoot the bound rather
  // than deadlocking against its own flusher.
  if (started_.load(std::memory_order_acquire) && !loop_.on_loop_thread() &&
      (sendq_.size() >= config_.max_queued_frames ||
       queued_bytes_ >= config_.max_queued_bytes)) {
    queue_full_stalls_.fetch_add(1, std::memory_order_relaxed);
    send_cv_.wait(lock, [this] {
      return (sendq_.size() < config_.max_queued_frames &&
              queued_bytes_ < config_.max_queued_bytes) ||
             peer_closed_.load(std::memory_order_acquire);
    });
  }
  return !peer_closed_.load(std::memory_order_acquire);
}

void TcpLinkTransport::send(MessagePtr msg) {
  std::unique_lock<std::mutex> lock(send_mutex_);
  if (!wait_for_room(lock)) return;

  TransportFrame frame;
  frame.seq = send_next_++;
  frame.ack = recv_next_published_.load(std::memory_order_relaxed);
  frame.payload = std::move(msg);

  Buffer buf;
  if (!free_bufs_.empty()) {
    buf = std::move(free_bufs_.back());
    free_bufs_.pop_back();
    buf.clear();
  }
  const std::int64_t t0 = wall_ns();
  const std::size_t frame_len = wire::encode(frame, buf);
  const std::int64_t t1 = wall_ns();
  if (m_bytes_out_ != nullptr) {
    m_bytes_out_->inc(frame_len);
    h_encode_ns_->observe(sim::Duration{t1 - t0});
  }

  if (!started_.load(std::memory_order_acquire)) {
    // Handshake phase: the fd is still blocking and nothing else touches it.
    if (!write_all(fd_, buf.data(), buf.size())) {
      fail("tcp link: write failed");
      return;
    }
    bytes_out_.fetch_add(frame_len, std::memory_order_relaxed);
    frames_sent_.fetch_add(1, std::memory_order_relaxed);
    if (free_bufs_.size() < kMaxFreeBufs) free_bufs_.push_back(std::move(buf));
    return;
  }

  enqueue_locked(lock, std::move(buf));
}

bool TcpLinkTransport::send_bytes(const std::uint8_t* data, std::size_t size,
                                  bool block) {
  std::unique_lock<std::mutex> lock(send_mutex_);
  if (block) {
    if (!wait_for_room(lock)) return false;
  } else if (peer_closed_.load(std::memory_order_acquire)) {
    return false;
  }

  Buffer buf;
  if (!free_bufs_.empty()) {
    buf = std::move(free_bufs_.back());
    free_bufs_.pop_back();
    buf.clear();
  }
  buf.insert(buf.end(), data, data + size);

  if (!started_.load(std::memory_order_acquire)) {
    if (!write_all(fd_, buf.data(), buf.size())) {
      fail("tcp link: write failed");
      return false;
    }
    bytes_out_.fetch_add(size, std::memory_order_relaxed);
    frames_sent_.fetch_add(1, std::memory_order_relaxed);
    if (free_bufs_.size() < kMaxFreeBufs) free_bufs_.push_back(std::move(buf));
    return true;
  }

  enqueue_locked(lock, std::move(buf));
  return true;
}

void TcpLinkTransport::enqueue_locked(std::unique_lock<std::mutex>& lock,
                                      Buffer buf) {
  queued_bytes_ += buf.size();
  sendq_.push_back(std::move(buf));
  if (loop_.on_loop_thread()) {
    flush_locked(lock);
  } else if (!flush_armed_) {
    // One task per burst: frames enqueued while it is pending share its
    // writev batches — this is where the syscall coalescing comes from.
    flush_armed_ = true;
    loop_.post([this] {
      std::unique_lock<std::mutex> relock(send_mutex_);
      flush_locked(relock);
    });
  }
}

void TcpLinkTransport::flush_locked(std::unique_lock<std::mutex>& lock) {
  FaultHooks* hooks = config_.faults;
  while (!sendq_.empty()) {
    if (hooks != nullptr &&
        hooks->stall_writes.load(std::memory_order_relaxed)) {
      // Injected stall: behave exactly like a full kernel buffer. kick()
      // resumes the flusher once the fault is cleared.
      flush_armed_ = true;
      return;
    }
    if (hooks != nullptr) {
      // Loop thread only (and the pre-start handshake writes bypass this
      // path), so a plain load/store countdown is race-free.
      const int left = hooks->fail_writes_after.load(std::memory_order_relaxed);
      if (left == 0) {
        fail("tcp link: injected write failure");
        return;
      }
      if (left > 0)
        hooks->fail_writes_after.store(left - 1, std::memory_order_relaxed);
    }
    iovec iov[kMaxIov];
    const std::size_t n_bufs = std::min(sendq_.size(), kMaxIov);
    std::size_t total = 0;
    for (std::size_t i = 0; i < n_bufs; ++i) {
      const Buffer& b = sendq_[i];
      const std::size_t off = i == 0 ? send_off_ : 0;
      iov[i].iov_base = const_cast<std::uint8_t*>(b.data()) + off;
      iov[i].iov_len = b.size() - off;
      total += iov[i].iov_len;
    }
    const std::size_t write_cap =
        hooks != nullptr ? hooks->max_write_bytes.load(std::memory_order_relaxed)
                         : 0;
    ssize_t written;
    if (write_cap > 0) {
      // Clamped partial write: at most `write_cap` bytes of the front
      // buffer go out, tearing frames across syscalls.
      const std::size_t n = std::min(write_cap, iov[0].iov_len);
      written = ::send(fd_, iov[0].iov_base, n, MSG_NOSIGNAL);
    } else {
      // sendmsg, not writev: the gathered write needs MSG_NOSIGNAL too — a
      // kill -9'd peer must surface as EPIPE here, not as a SIGPIPE that
      // silently takes down the whole node (the read side racing to notice
      // the EOF first is what made this *intermittent*).
      msghdr mh{};
      mh.msg_iov = iov;
      mh.msg_iovlen = n_bufs;
      written = ::sendmsg(fd_, &mh, MSG_NOSIGNAL);
    }
    syscalls_write_.fetch_add(1, std::memory_order_relaxed);
    if (written < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Kernel buffer full: stay armed, the EPOLLOUT edge resumes us.
        flush_armed_ = true;
        return;
      }
      fail("tcp link: write failed");
      return;
    }
    bytes_out_.fetch_add(static_cast<std::uint64_t>(written),
                         std::memory_order_relaxed);
    std::size_t left = static_cast<std::size_t>(written);
    std::size_t completed = 0;
    while (left > 0 && !sendq_.empty()) {
      Buffer& front = sendq_.front();
      const std::size_t remaining = front.size() - send_off_;
      if (left < remaining) {
        send_off_ += left;
        left = 0;
        break;
      }
      left -= remaining;
      queued_bytes_ -= front.size();
      send_off_ = 0;
      ++completed;
      if (free_bufs_.size() < kMaxFreeBufs)
        free_bufs_.push_back(std::move(front));
      sendq_.pop_front();
    }
    frames_sent_.fetch_add(completed, std::memory_order_relaxed);
    if (completed >= 2)
      frames_coalesced_.fetch_add(completed, std::memory_order_relaxed);
    if (sendq_.size() < config_.max_queued_frames / 2 &&
        queued_bytes_ < config_.max_queued_bytes / 2) {
      send_cv_.notify_all();
    }
    if (static_cast<std::size_t>(written) < total) {
      if (write_cap > 0) continue;  // clamp, not a full buffer: keep going
      // Short write: the kernel buffer is full even though writev did not
      // say EAGAIN outright; wait for the EPOLLOUT edge.
      flush_armed_ = true;
      return;
    }
  }
  flush_armed_ = false;
  send_cv_.notify_all();
  (void)lock;
}

void TcpLinkTransport::on_ready(std::uint32_t events) {
  if ((events & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0) drain_input();
  if ((events & EPOLLOUT) != 0) {
    std::unique_lock<std::mutex> lock(send_mutex_);
    flush_locked(lock);
  }
}

void TcpLinkTransport::drain_input() {
  // Loop thread only. Edge-triggered: read until EAGAIN (or EOF/error).
  while (true) {
    if (config_.faults != nullptr) {
      const int left =
          config_.faults->fail_reads_after.load(std::memory_order_relaxed);
      if (left == 0) {
        fail("tcp link: injected read failure");
        return;
      }
      if (left > 0)
        config_.faults->fail_reads_after.store(left - 1,
                                               std::memory_order_relaxed);
    }
    const std::size_t old_size = inbuf_.size();
    inbuf_.resize(old_size + kReadChunk);
    const ssize_t n = ::read(fd_, inbuf_.data() + old_size, kReadChunk);
    syscalls_read_.fetch_add(1, std::memory_order_relaxed);
    if (n < 0) {
      inbuf_.resize(old_size);
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      fail("tcp link: read failed");
      return;
    }
    if (n == 0) {
      inbuf_.resize(old_size);
      peer_closed_.store(true, std::memory_order_release);
      send_cv_.notify_all();
      return;
    }
    inbuf_.resize(old_size + static_cast<std::size_t>(n));
    bytes_in_.fetch_add(static_cast<std::uint64_t>(n),
                        std::memory_order_relaxed);
    last_rx_ns_.store(wall_ns(), std::memory_order_relaxed);
    if (!parse_frames()) return;
  }
}

bool TcpLinkTransport::parse_frames() {
  while (inbuf_.size() - in_off_ >= 4) {
    const std::uint8_t* p = inbuf_.data() + in_off_;
    std::uint32_t body_len = 0;
    for (int i = 0; i < 4; ++i)
      body_len |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    if (body_len > wire::kMaxBodyBytes) {
      fail("tcp link: oversized frame");
      return false;
    }
    const std::size_t frame_len = std::size_t{4} + body_len;
    if (inbuf_.size() - in_off_ < frame_len) break;

    wire::DecodeResult res = wire::decode(p, frame_len);
    if (!res.ok()) {
      fail(res.error);
      return false;
    }
    in_off_ += res.consumed;
    auto* frame = dynamic_cast<TransportFrame*>(res.msg.get());
    if (frame == nullptr) {
      fail("tcp link: stream message is not a transport frame");
      return false;
    }
    if (frame_fn_) {
      // Session mode: hand the whole frame (pure ACKs included) upward;
      // the session owns the seq discipline and the replay journal.
      frames_received_.fetch_add(1, std::memory_order_relaxed);
      res.msg.release();
      frame_fn_(std::unique_ptr<TransportFrame>(frame));
      continue;
    }
    if (frame->payload == nullptr) continue;  // pure ACK: nothing to do
    // The ARQ receive discipline, minus recovery: TCP already guarantees
    // order, so a gap is impossible; a duplicate seq is suppressed.
    if (frame->seq < recv_next_) {
      dups_suppressed_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (frame->seq != recv_next_) {
      fail("tcp link: sequence gap on an ordered stream");
      return false;
    }
    ++recv_next_;
    recv_next_published_.store(recv_next_, std::memory_order_relaxed);
    frames_received_.fetch_add(1, std::memory_order_relaxed);
    deliver_(std::move(frame->payload));
  }
  if (in_off_ == inbuf_.size()) {
    inbuf_.clear();
    in_off_ = 0;
  } else if (in_off_ >= kReadChunk) {
    inbuf_.erase(inbuf_.begin(),
                 inbuf_.begin() + static_cast<std::ptrdiff_t>(in_off_));
    in_off_ = 0;
  }
  return true;
}

}  // namespace cim::net

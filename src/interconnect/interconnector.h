// Interconnection of n propagation-based causal systems (Corollary 1).
//
// The Interconnector takes a set of (not yet finalized) systems and a set of
// links, validates that the topology is a tree ("we interconnect the
// original systems in pairs avoiding the creation of cycles"), reserves the
// IS-process slots, finalizes the systems, and wires the inter-system FIFO
// channels.
//
// Two IS-process placements are supported:
//  * kSharedPerSystem — one IS-process per system serving all of its links.
//    This matches the Section 6 message accounting: with m systems, m
//    IS-processes are added and each write generates n + m - 1 messages.
//  * kPerLink — a dedicated IS-process pair per link, matching the paper's
//    inductive pairwise construction (Corollary 1) literally; forwarding
//    between subtrees then happens through upcalls at the other IS-processes
//    of the shared system.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "interconnect/is_process.h"
#include "mcs/system.h"
#include "net/availability.h"
#include "net/delay.h"
#include "net/fabric.h"
#include "net/link_transport.h"

namespace cim::isc {

enum class IspMode { kSharedPerSystem, kPerLink };

/// How pairs cross the links (net/link_transport.h):
///  * kInMemory      — pointer handoff on fabric channels (zero-copy, the
///    allocation-free default; golden traces are recorded in this mode).
///  * kLoopbackBytes — every pair is round-tripped through the wire codec
///    (encode → decode) before it enters the channel, so the whole
///    federation exercises the byte format while staying in one process.
///  * kDefault       — resolved by the embedding layer; Federation maps it
///    to kLoopbackBytes when CIM_LINK_WIRE=bytes is set, kInMemory
///    otherwise. The Interconnector itself treats it as kInMemory.
enum class LinkWire { kDefault, kInMemory, kLoopbackBytes };

/// A link whose far side lives in another OS process (tools/cim_bridge): the
/// interconnector reserves and activates the local IS-process, and the
/// embedding tool attaches the transport with attach_external_link() once
/// the socket is up. External links are numbered after the in-federation
/// links in the unified net.link.<i>.* metrics.
struct ExternalLinkSpec {
  std::size_t system = 0;  // index into the systems vector
  IsProtocolChoice choice = IsProtocolChoice::kAuto;
};

struct LinkSpec {
  std::size_t system_a = 0;  // index into the systems vector
  std::size_t system_b = 0;
  /// Delay model factory, one fresh model per direction. Default: 10ms.
  std::function<net::DelayModelPtr()> delay;
  /// Availability schedule factory, one per direction. Default: always up.
  std::function<net::AvailabilityPtr()> availability;
  /// IS-protocol selection for each side's IS-process.
  IsProtocolChoice choice_a = IsProtocolChoice::kAuto;
  IsProtocolChoice choice_b = IsProtocolChoice::kAuto;

  /// Fault injection for experiment E10. The paper requires the link to be a
  /// *reliable FIFO* channel; these knobs deliberately break that assumption
  /// to demonstrate why it is needed (non-FIFO links let pair order invert —
  /// causality violations; lossy links lose updates — liveness violations).
  bool fifo = true;
  double drop_probability = 0.0;

  /// Interpose a ReliableTransport endpoint pair (ARQ) on this link,
  /// re-synthesizing the reliable-FIFO assumption over a faulty channel.
  /// With `reliable` set, fifo=false / drop_probability>0 / scripted faults
  /// degrade latency but never correctness.
  bool reliable = false;
  net::TransportConfig transport;
};

class Interconnector {
 public:
  Interconnector(net::Fabric& fabric, std::vector<mcs::System*> systems,
                 std::vector<LinkSpec> links,
                 IspMode mode = IspMode::kSharedPerSystem,
                 obs::Observability* obs = nullptr,
                 LinkWire wire = LinkWire::kDefault,
                 std::vector<ExternalLinkSpec> external_links = {});

  /// Reserve IS slots, finalize all systems, create IS-processes and the
  /// inter-system channels, and activate the IS-protocols.
  void build();

  IspMode mode() const { return mode_; }
  std::size_t num_links() const { return links_.size(); }

  /// Shared mode: the IS-process of a system (requires the system to have at
  /// least one link). Per-link mode: use isp_a/isp_b.
  IsProcess& shared_isp(std::size_t system_index);
  IsProcess& isp_a(std::size_t link_index);
  IsProcess& isp_b(std::size_t link_index);

  /// All IS-processes created by build().
  const std::vector<std::unique_ptr<IsProcess>>& isps() const { return isps_; }

  /// The ARQ endpoints of link `link_index` as (side A, side B), or
  /// (nullptr, nullptr) for a raw link.
  std::pair<net::ReliableTransport*, net::ReliableTransport*> link_transports(
      std::size_t link_index) const;

  /// The fabric channels of link `link_index` as (A→B, B→A).
  std::pair<net::ChannelId, net::ChannelId> link_channels(
      std::size_t link_index) const;

  /// The link-transport endpoints of link `link_index` as (side A, side B):
  /// the objects the IS-processes actually send through (the loopback
  /// wrapper in bytes mode, the fabric transport otherwise).
  std::pair<net::LinkTransport*, net::LinkTransport*> link_endpoints(
      std::size_t link_index) const;

  /// Resolved wire mode (never kDefault after construction).
  LinkWire link_wire() const { return wire_; }

  // ---- external links (tools/cim_bridge) -----------------------------------
  std::size_t num_external_links() const { return external_links_.size(); }

  /// The local IS-process of external link `ext_index` (valid after build()).
  IsProcess& external_isp(std::size_t ext_index);

  /// Attach the socket-backed transport of external link `ext_index` to its
  /// IS-process; returns the IS-process's link index (pass it to
  /// IsProcess::deliver_from_link for inbound pairs). The transport is
  /// borrowed and must outlive the interconnector. One attach per link.
  std::size_t attach_external_link(std::size_t ext_index,
                                   net::LinkTransport* transport);

  /// The attached transport of external link `ext_index` (null before
  /// attach_external_link). Feeds the unified net.link.<i>.* metrics.
  net::LinkTransport* external_transport(std::size_t ext_index) const;

 private:
  void validate_tree() const;
  IsProcess& isp_for(std::size_t system_index, std::size_t link_index,
                     bool side_a);

  net::Fabric& fabric_;
  std::vector<mcs::System*> systems_;
  std::vector<LinkSpec> links_;
  IspMode mode_;
  obs::Observability* obs_ = nullptr;
  LinkWire wire_ = LinkWire::kInMemory;
  std::vector<ExternalLinkSpec> external_links_;
  bool built_ = false;

  std::vector<std::unique_ptr<IsProcess>> isps_;
  std::vector<std::size_t> shared_isp_of_system_;    // index into isps_
  std::vector<std::pair<std::size_t, std::size_t>> link_isps_;  // (a, b)
  std::vector<std::unique_ptr<net::ReliableTransport>> transports_;
  // Per link: (transport a, transport b) indices into transports_ or
  // SIZE_MAX, and the underlying (ab, ba) channels.
  std::vector<std::pair<std::size_t, std::size_t>> link_transports_;
  std::vector<std::pair<net::ChannelId, net::ChannelId>> link_channels_;
  // Link-transport endpoints: owned storage (fabric transports plus their
  // loopback wrappers in bytes mode) and the per-link outermost pair.
  std::vector<std::unique_ptr<net::LinkTransport>> endpoint_storage_;
  std::vector<std::pair<net::LinkTransport*, net::LinkTransport*>>
      link_endpoints_;
  std::vector<std::size_t> external_isp_index_;      // index into isps_
  std::vector<net::LinkTransport*> external_transports_;
};

}  // namespace cim::isc

// Tests: the causal-broadcast substrate and the DSM layered on it.
#include <gtest/gtest.h>

#include <map>

#include "checker/causal_checker.h"
#include "helpers.h"
#include "msgpass/cbcast.h"
#include "protocols/cbcast_dsm.h"

namespace cim::mp {
namespace {

using test::X;
using test::Y;

// ----------------------------- substrate (with an in-memory jittery wire)

// Test harness: a group of members connected by simulated FIFO channels.
struct Group {
  sim::Simulator sim;
  net::Fabric fabric{sim, 33};

  struct Node : CbTransport, net::Receiver {
    Group* group = nullptr;
    std::uint16_t index = 0;
    std::unique_ptr<CbcastMember> member;
    std::vector<net::ChannelId> out;
    std::vector<std::pair<std::uint16_t, CbPayload>> delivered;

    void send_to_member(std::uint16_t m, net::MessagePtr msg) override {
      group->fabric.send(out[m], std::move(msg));
    }
    void on_message(net::ChannelId, net::MessagePtr msg) override {
      member->on_network(std::move(msg));
    }
  };
  std::vector<std::unique_ptr<Node>> nodes;

  explicit Group(std::uint16_t n, sim::Duration max_jitter = sim::milliseconds(10)) {
    for (std::uint16_t i = 0; i < n; ++i) {
      auto node = std::make_unique<Node>();
      node->group = this;
      node->index = i;
      node->member = std::make_unique<CbcastMember>(
          i, n, *node, [raw = node.get()](std::uint16_t s, const CbPayload& p) {
            raw->delivered.emplace_back(s, p);
          });
      nodes.push_back(std::move(node));
    }
    for (std::uint16_t i = 0; i < n; ++i) {
      nodes[i]->out.resize(n);
      for (std::uint16_t j = 0; j < n; ++j) {
        if (i == j) continue;
        net::ChannelConfig cc;
        cc.src = ProcId{SystemId{0}, i};
        cc.dst = ProcId{SystemId{0}, j};
        cc.receiver = nodes[j].get();
        cc.delay = std::make_unique<net::UniformDelay>(sim::microseconds(10),
                                                       max_jitter);
        nodes[i]->out[j] = fabric.add_channel(std::move(cc));
      }
    }
  }
};

TEST(Cbcast, SelfDeliveryIsImmediate) {
  Group g(3);
  g.nodes[0]->member->broadcast(CbPayload{X, 1});
  ASSERT_EQ(g.nodes[0]->delivered.size(), 1u);
  EXPECT_EQ(g.nodes[0]->delivered[0].second.value, 1);
}

TEST(Cbcast, AllMembersDeliverEverything) {
  Group g(4);
  for (std::uint16_t i = 0; i < 4; ++i) {
    g.nodes[i]->member->broadcast(CbPayload{X, 10 + i});
  }
  g.sim.run();
  for (auto& node : g.nodes) {
    EXPECT_EQ(node->delivered.size(), 4u);
    EXPECT_EQ(node->member->buffered(), 0u);
  }
}

// Property: deliveries respect the causal order of broadcasts. We build
// causal chains (each broadcast happens after delivering the previous one)
// and check per-node delivery order across many jitter seeds.
class CbcastCausal : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CbcastCausal, CausallyChainedBroadcastsDeliverInOrder) {
  Group g(4, sim::milliseconds(40));
  // Node 0 broadcasts value 1; whichever node delivers value k broadcasts
  // k+1 (relay chain through different nodes), up to 8.
  auto relay = [&](std::uint16_t node_idx, Value expected, Value next) {
    auto* node = g.nodes[node_idx].get();
    node->member = std::make_unique<CbcastMember>(
        node_idx, 4, *node,
        [node, &g, expected, next, node_idx](std::uint16_t s,
                                             const CbPayload& p) {
          node->delivered.emplace_back(s, p);
          if (p.value == expected && next <= 8) {
            g.nodes[node_idx]->member->broadcast(
                CbPayload{VarId{0}, next});
          }
        });
  };
  relay(1, 1, 2);
  relay(2, 2, 3);
  relay(3, 3, 4);
  g.nodes[0]->member->broadcast(CbPayload{VarId{0}, 1});
  g.sim.run();

  // Values 1..4 form a causal chain; every node must deliver them ascending.
  for (auto& node : g.nodes) {
    std::vector<Value> chain;
    for (auto& [s, p] : node->delivered) {
      if (p.value >= 1 && p.value <= 4) chain.push_back(p.value);
    }
    ASSERT_EQ(chain.size(), 4u) << "node " << node->index;
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_EQ(chain[i], static_cast<Value>(i + 1)) << "node " << node->index;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CbcastCausal,
                         ::testing::Range<std::uint64_t>(1, 7));

}  // namespace
}  // namespace cim::mp

namespace cim::proto {
namespace {

using test::X;

TEST(CbcastDsm, BasicReadWrite) {
  isc::Federation fed(test::single_system(3, cbcast_dsm_protocol()));
  fed.system(0).app(0).write(X, 7);
  fed.run();
  Value got = -1;
  fed.system(0).app(2).read(X, [&](Value v) { got = v; });
  fed.run();
  EXPECT_EQ(got, 7);
}

TEST(CbcastDsm, Traits) {
  isc::Federation fed(test::single_system(2, cbcast_dsm_protocol()));
  EXPECT_TRUE(fed.system(0).mcs(0).satisfies_causal_updating());
  EXPECT_STREQ(fed.system(0).mcs(0).protocol_name(), "cbcast-dsm");
}

class CbcastDsmRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CbcastDsmRandom, RandomWorkloadIsCausal) {
  isc::FederationConfig cfg =
      test::single_system(4, cbcast_dsm_protocol(), GetParam());
  cfg.systems[0].intra_delay = [] {
    return std::make_unique<net::UniformDelay>(sim::microseconds(100),
                                               sim::milliseconds(15));
  };
  isc::Federation fed(std::move(cfg));
  wl::UniformConfig wc;
  wc.ops_per_process = 35;
  wc.num_vars = 4;
  wc.seed = GetParam() * 9 + 2;
  auto runners = wl::install_uniform(fed, wc);
  fed.run();
  auto res = chk::CausalChecker{}.check(fed.federation_history());
  EXPECT_TRUE(res.ok()) << chk::to_string(res.pattern) << ": " << res.detail;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CbcastDsmRandom,
                         ::testing::Range<std::uint64_t>(1, 9));

// The Section-1.2 punchline: a DSM built over causal message passing
// interconnects with the IS-protocols exactly like the native ones.
class CbcastDsmUnion : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CbcastDsmUnion, InterconnectsCausallyWithNativeProtocols) {
  isc::FederationConfig cfg = test::two_systems(
      3, cbcast_dsm_protocol(), proto::anbkh_protocol(), GetParam());
  isc::Federation fed(std::move(cfg));
  // Causal Updating holds -> IS-protocol 1.
  EXPECT_FALSE(fed.interconnector().shared_isp(0).pre_reads_enabled());

  wl::UniformConfig wc;
  wc.ops_per_process = 30;
  wc.num_vars = 4;
  wc.seed = GetParam() * 3 + 4;
  auto runners = wl::install_uniform(fed, wc);
  fed.run();
  auto res = chk::CausalChecker{}.check(fed.federation_history());
  EXPECT_TRUE(res.ok()) << chk::to_string(res.pattern) << ": " << res.detail;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CbcastDsmUnion,
                         ::testing::Range<std::uint64_t>(1, 7));

}  // namespace
}  // namespace cim::proto

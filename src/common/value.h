// Values stored in shared variables.
//
// The paper (Section 2) assumes "a given value is written at most once in
// any given variable", and the workload generators still enforce that by
// drawing values from a global counter — it keeps reads-from a function of
// the read. The checkers, however, no longer require it: repeated
// (variable, value) pairs are handled by the existential reads-from
// constraint search of docs/CHECKER.md, so externally produced traces with
// duplicate values are checked, not rejected. The distinguished kInitValue
// is the value a variable holds before any write; the consistency checker
// models it with an implicit initialization write that causally precedes
// every operation.
#pragma once

#include <cstdint>

namespace cim {

using Value = std::int64_t;

/// Initial content of every variable before the first write.
inline constexpr Value kInitValue = 0;

}  // namespace cim

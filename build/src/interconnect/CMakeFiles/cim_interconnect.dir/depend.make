# Empty dependencies file for cim_interconnect.
# This may be replaced when dependencies are built.

// Message-delay models for channels.
//
// The Section-6 analysis speaks of an intra-system visibility latency `l` and
// an inter-IS link delay `d`; the delay models here let benches parameterize
// both, and let tests stress protocols with jitter (FIFO must hold anyway).
#pragma once

#include <memory>

#include "common/rng.h"
#include "sim/time.h"

namespace cim::net {

class DelayModel {
 public:
  virtual ~DelayModel() = default;

  /// Sample the transmission delay of one message.
  virtual sim::Duration sample(Rng& rng) = 0;
};

/// Constant delay — the model used for the latency experiments, where the
/// paper's `l` and `d` are exact parameters.
class FixedDelay final : public DelayModel {
 public:
  explicit FixedDelay(sim::Duration d) : delay_(d) {}
  sim::Duration sample(Rng&) override { return delay_; }

 private:
  sim::Duration delay_;
};

/// Uniform jitter in [lo, hi] — the default for correctness tests, which must
/// hold under arbitrary reordering pressure across channels.
class UniformDelay final : public DelayModel {
 public:
  UniformDelay(sim::Duration lo, sim::Duration hi) : lo_(lo), hi_(hi) {}
  sim::Duration sample(Rng& rng) override {
    return sim::Duration{static_cast<std::int64_t>(rng.uniform(
        static_cast<std::uint64_t>(lo_.ns), static_cast<std::uint64_t>(hi_.ns)))};
  }

 private:
  sim::Duration lo_, hi_;
};

/// Mostly-fast link with occasional large spikes; stresses the causal-ready
/// buffering of the MCS protocols.
class SpikeDelay final : public DelayModel {
 public:
  SpikeDelay(sim::Duration base, sim::Duration spike, double spike_prob)
      : base_(base), spike_(spike), spike_prob_(spike_prob) {}
  sim::Duration sample(Rng& rng) override {
    return rng.chance(spike_prob_) ? base_ + spike_ : base_;
  }

 private:
  sim::Duration base_, spike_;
  double spike_prob_;
};

using DelayModelPtr = std::unique_ptr<DelayModel>;

}  // namespace cim::net

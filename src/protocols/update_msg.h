// Vector-clock-stamped update message shared by the propagation-based
// causal protocols (ANBKH and lazy-batch).
#pragma once

#include "common/ids.h"
#include "common/value.h"
#include "common/vector_clock.h"
#include "net/message.h"
#include "sim/time.h"

namespace cim::proto {

struct TimestampedUpdate final : net::Message {
  VarId var;
  Value value = kInitValue;
  VectorClock clock;
  std::uint16_t writer = 0;
  // Instrumentation only, not wire data: the originating write's id (rides
  // the message so lifecycle trace events can be correlated per write), and
  // the local receive time at the buffering process, feeding the
  // proto.causal_wait histogram.
  WriteId write_id;
  sim::Time received_at;

  const char* type_name() const override { return "vc.update"; }
  std::size_t wire_size() const override {
    return 24 + 4 + 8 + 8 * clock.size();
  }
  WriteId wid() const override { return write_id; }
};

}  // namespace cim::proto

// Experiment E10 (channel-assumption ablation): why the paper's IS-protocols
// require a *reliable FIFO* channel between IS-processes.
//
// The same Section-3 workload (causally ordered write pairs in S0, a scanner
// in S1) runs over three link configurations:
//
//   reliable FIFO   — the paper's assumption: no violations, no losses;
//   non-FIFO        — jitter reorders pairs on the wire: the causal order of
//                     propagated writes inverts and S^T stops being causal;
//   lossy (20%)     — pairs disappear: besides losing the propagation
//                     guarantee, a dropped ⟨x,v⟩ followed by a delivered
//                     causally-later ⟨y,u⟩ creates an observable causal gap,
//                     so causality breaks as well (only single-variable
//                     workloads survive drops, by accident of legality).
#include <functional>
#include <iostream>
#include <memory>

#include "bench_util.h"
#include "checker/causal_checker.h"
#include "stats/table.h"

namespace {

using namespace cim;

struct Outcome {
  std::size_t violations = 0;
  std::uint64_t dropped = 0;
  std::uint64_t delivered = 0;
};

Outcome sweep(bool fifo, double drop, std::uint64_t seeds) {
  Outcome out;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    isc::FederationConfig cfg;
    cfg.seed = seed;
    for (std::uint16_t s = 0; s < 2; ++s) {
      mcs::SystemConfig sc;
      sc.id = SystemId{s};
      sc.num_app_processes = 2;
      sc.protocol = proto::anbkh_protocol();
      sc.seed = seed * 60 + s;
      cfg.systems.push_back(std::move(sc));
    }
    isc::LinkSpec link;
    link.system_a = 0;
    link.system_b = 1;
    link.fifo = fifo;
    link.drop_probability = drop;
    link.delay = [] {
      return std::make_unique<net::UniformDelay>(sim::milliseconds(1),
                                                 sim::milliseconds(60));
    };
    cfg.links.push_back(std::move(link));
    isc::Federation fed(std::move(cfg));
    auto& sim = fed.simulator();

    const VarId x{0}, y{1};
    for (int r = 0; r < 10; ++r) {
      sim.at(sim::Time{} + sim::milliseconds(80 * r),
             [&fed, x, r] { fed.system(0).app(0).write(x, 2 * r + 1); });
      sim.at(sim::Time{} + sim::milliseconds(80 * r + 2),
             [&fed, y, r] { fed.system(0).app(0).write(y, 2 * r + 2); });
    }
    auto scan = std::make_shared<std::function<void()>>();
    auto* reader = &fed.system(1).app(0);
    const sim::Time end = sim::Time{} + sim::milliseconds(900);
    *scan = [scan, reader, &sim, x, y, end] {
      reader->read(y);
      reader->read(x);
      if (sim.now() < end) {
        sim.after(sim::milliseconds(1), [scan] { (*scan)(); });
      }
    };
    (*scan)();
    fed.run();
    *scan = nullptr;  // break the closure's self-ownership cycle

    if (!chk::CausalChecker{}.check(fed.federation_history()).ok()) {
      ++out.violations;
    }
    const auto cross =
        fed.fabric().cross_system_stats(SystemId{0}, SystemId{1});
    out.dropped += cross.dropped;
    out.delivered += fed.interconnector().shared_isp(1).pairs_received();
  }
  return out;
}

}  // namespace

int main() {
  std::cout << "E10 — ablating the reliable-FIFO link assumption (Section "
               "2/3)\nworkload: repeated Section-3 counterexample over 20 "
               "seeds\n\n";

  const std::uint64_t kSeeds = 20;
  const Outcome ok = sweep(/*fifo=*/true, /*drop=*/0.0, kSeeds);
  const Outcome reorder = sweep(/*fifo=*/false, /*drop=*/0.0, kSeeds);
  const Outcome lossy = sweep(/*fifo=*/true, /*drop=*/0.2, kSeeds);

  stats::Table table({"link configuration", "causality violations",
                      "pairs delivered", "pairs lost"});
  table.add_row("reliable FIFO (paper)", ok.violations, ok.delivered,
                ok.dropped);
  table.add_row("reordering (no FIFO)", reorder.violations, reorder.delivered,
                reorder.dropped);
  table.add_row("lossy 20% (unreliable)", lossy.violations, lossy.delivered,
                lossy.dropped);
  table.print();

  std::cout << "\nFIFO is what Lemma 1 leans on: without it causally ordered "
               "pairs invert on the\nwire and S^T stops being causal. "
               "Reliability matters twice: a lossy link loses\nthe "
               "propagation guarantee AND creates causal gaps (a dropped "
               "<x,v> followed by a\ndelivered causally-later <y,u> is "
               "observable as a stale read), so both halves of\nthe paper's "
               "channel assumption are necessary.\n";
  return ok.violations == 0 ? 0 : 1;
}

#include "checker/online_monitor.h"

#include <algorithm>
#include <string_view>

namespace cim::chk {

namespace {

const obs::TraceField* find_field(const obs::TraceEvent& ev,
                                  std::string_view key) {
  for (std::uint8_t k = 0; k < ev.num_fields; ++k) {
    const obs::TraceField& f = ev.fields[k];
    if (f.key != nullptr && key == f.key) return &f;
  }
  return nullptr;
}

std::int64_t live_int(const obs::TraceEvent& ev, std::string_view key) {
  const obs::TraceField* f = find_field(ev, key);
  if (f == nullptr) return 0;
  switch (f->kind) {
    case obs::TraceField::Kind::kInt: return f->i;
    case obs::TraceField::Kind::kUint: return static_cast<std::int64_t>(f->u);
    default: return 0;
  }
}

bool live_proc(const obs::TraceEvent& ev, std::string_view key, ProcId& out) {
  const obs::TraceField* f = find_field(ev, key);
  if (f == nullptr || f->kind != obs::TraceField::Kind::kProc) return false;
  out = ProcId{SystemId{static_cast<std::uint16_t>(f->proc >> 16)},
               static_cast<std::uint16_t>(f->proc & 0xFFFF)};
  return true;
}

}  // namespace

OnlineMonitor::OnlineMonitor(MonitorOptions opts) : opts_(opts) {}

std::uint32_t OnlineMonitor::required_category_mask() {
  return obs::category_bit(obs::TraceCategory::kMcs) |
         obs::category_bit(obs::TraceCategory::kProto) |
         obs::category_bit(obs::TraceCategory::kChk);
}

void OnlineMonitor::attach(obs::TraceSink* sink,
                           obs::MetricsRegistry* metrics) {
  sink_ = sink;
  if (metrics != nullptr) {
    m_violations_ = &metrics->counter("checker.violations");
  }
  if (sink_ != nullptr) {
    sink_->set_listener(
        [this](const obs::TraceEvent& ev) { observe(ev); });
  }
}

void OnlineMonitor::detach() {
  if (sink_ != nullptr) sink_->set_listener(nullptr);
  sink_ = nullptr;
}

void OnlineMonitor::observe(const obs::TraceEvent& ev) {
  if (ev.cat == obs::TraceCategory::kChk) return;  // our own emissions
  ++events_seen_;
  const std::string_view name = ev.name;
  if (ev.cat == obs::TraceCategory::kMcs) {
    ProcId proc{};
    if (!live_proc(ev, "proc", proc)) return;
    if (name == "write_issue") {
      on_write_issue(ev.t.ns, proc,
                     WriteId{static_cast<std::uint64_t>(live_int(ev, "wid"))},
                     VarId{static_cast<std::uint32_t>(live_int(ev, "var"))},
                     live_int(ev, "val"));
    } else if (name == "read_done") {
      on_read_done(ev.t.ns, proc,
                   VarId{static_cast<std::uint32_t>(live_int(ev, "var"))},
                   live_int(ev, "val"));
    }
  } else if (ev.cat == obs::TraceCategory::kProto &&
             name == "update_applied") {
    ProcId proc{};
    if (!live_proc(ev, "proc", proc)) return;
    on_update_applied(
        ev.t.ns, proc,
        WriteId{static_cast<std::uint64_t>(live_int(ev, "wid"))});
  }
}

void OnlineMonitor::observe(const obs::ParsedTraceEvent& ev) {
  if (ev.cat == "chk") return;
  ++events_seen_;
  if (ev.cat == "mcs") {
    ProcId proc{};
    if (!ev.field_proc("proc", proc)) return;
    if (ev.name == "write_issue") {
      on_write_issue(ev.t, proc, ev.wid(),
                     VarId{static_cast<std::uint32_t>(ev.field_int("var"))},
                     ev.field_int("val"));
    } else if (ev.name == "read_done") {
      on_read_done(ev.t, proc,
                   VarId{static_cast<std::uint32_t>(ev.field_int("var"))},
                   ev.field_int("val"));
    }
  } else if (ev.cat == "proto" && ev.name == "update_applied") {
    ProcId proc{};
    if (!ev.field_proc("proc", proc)) return;
    on_update_applied(ev.t, proc, ev.wid());
  }
}

void OnlineMonitor::learn(ProcId proc, WriteId wid) {
  std::uint32_t& k = knows_[key(pack(proc), pack(wid.origin()))];
  k = std::max(k, wid.seq());
}

void OnlineMonitor::on_write_issue(std::int64_t, ProcId proc, WriteId wid,
                                   VarId var, Value value) {
  if (!wid.valid()) return;
  // Record the write (idempotent: an IS-process re-issuing a foreign write
  // carries the same wid and value).
  if (by_value_.try_emplace(value, WriteInfo{wid, var}).second) {
    by_value_order_.push_back(value);
    while (by_value_order_.size() > opts_.max_tracked_values) {
      by_value_.erase(by_value_order_.front());
      by_value_order_.pop_front();
    }
  }
  std::deque<std::uint32_t>& seqs = writes_[key(pack(wid.origin()), var.value)];
  if (seqs.empty() || seqs.back() < wid.seq()) {
    seqs.push_back(wid.seq());
    while (seqs.size() > opts_.max_writes_per_var) seqs.pop_front();
  }
  // The origin knows its own writes; re-issues elsewhere teach nothing.
  if (proc == wid.origin()) learn(proc, wid);
}

void OnlineMonitor::on_read_done(std::int64_t t, ProcId proc, VarId var,
                                 Value value) {
  const auto hit = by_value_.find(value);
  const WriteId got =
      hit != by_value_.end() ? hit->second.wid : WriteId{};  // invalid = init

  if (opts_.check_read_monotonic) {
    std::uint64_t rk = key(pack(proc), var.value);
    auto prev = last_read_.find(rk);
    if (prev != last_read_.end() && got.valid() &&
        prev->second.origin() == got.origin() &&
        got.seq() < prev->second.seq()) {
      report(Violation{"read_regress", t, proc, var, got,
                       prev->second.seq(), got.seq()});
    }
    last_read_[rk] = got;
  }

  if (opts_.check_writes_into) {
    // The newest write to `var` among those the reader causally knows: for
    // each origin o, the largest seq s* with (o wrote var at s*) and
    // s* <= knows_[proc][o]. Reading anything older than s* (the initial
    // value, or an overwritten write of the same origin) violates
    // writes-into order.
    for (const auto& [ko, known_seq] : knows_) {
      if (std::uint32_t(ko >> 32) != pack(proc)) continue;
      const std::uint32_t origin_packed = std::uint32_t(ko);
      const auto ws = writes_.find(key(origin_packed, var.value));
      if (ws == writes_.end()) continue;
      // seqs are ascending: find the largest <= known_seq.
      const std::deque<std::uint32_t>& seqs = ws->second;
      auto it = std::upper_bound(seqs.begin(), seqs.end(), known_seq);
      if (it == seqs.begin()) continue;
      const std::uint32_t star = *std::prev(it);
      const bool same_origin = got.valid() && pack(got.origin()) == origin_packed;
      const bool stale = !got.valid() || (same_origin && got.seq() < star);
      if (stale) {
        const ProcId origin{SystemId{std::uint16_t(origin_packed >> 16)},
                            std::uint16_t(origin_packed & 0xFFFF)};
        report(Violation{"stale_read", t, proc, var,
                         got.valid() ? got : WriteId::make(origin, star),
                         star, got.valid() ? got.seq() : 0});
      }
    }
  }

  if (got.valid()) learn(proc, got);
}

void OnlineMonitor::on_update_applied(std::int64_t t, ProcId proc,
                                      WriteId wid) {
  if (!wid.valid() || !opts_.check_fifo_apply) return;
  Applied& last = applied_[key(pack(proc), pack(wid.origin()))];
  // Equal seq is benign (AW-seq re-applies pre-applied own writes); an
  // inversion at one virtual instant is benign too (atomic batch apply, no
  // read can observe the scrambled intermediate state).
  if (wid.seq() < last.seq && t > last.t) {
    report(
        Violation{"fifo_regress", t, proc, VarId{}, wid, last.seq, wid.seq()});
  }
  if (wid.seq() > last.seq) last = Applied{wid.seq(), t};
}

void OnlineMonitor::report(Violation v) {
  ++violation_count_;
  if (m_violations_ != nullptr) m_violations_->inc();
  if (sink_ != nullptr) {
    // The sink invokes the listener on every accepted record; recursion is
    // bounded because observe() ignores chk-category events.
    CIM_TRACE(sink_, sim::Time{v.t}, obs::TraceCategory::kChk, "violation",
              {{"kind", v.kind},
               {"proc", v.proc},
               {"var", v.var},
               {"wid", v.wid},
               {"expect", std::uint64_t{v.expected_seq}},
               {"got", std::uint64_t{v.got_seq}}});
  }
  if (violations_.size() < opts_.max_violations) {
    violations_.push_back(v);
  }
}

}  // namespace cim::chk

// Script-driven application processes.
//
// A ScriptRunner drives one application process through a fixed list of
// read/write steps, inserting a sampled "think time" between operations so
// that processes across systems interleave. Scripts are data, which keeps
// the simulated executions deterministic and replayable from seeds.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "checker/history.h"
#include "common/rng.h"
#include "mcs/app_process.h"
#include "sim/simulator.h"

namespace cim::wl {

struct Step {
  chk::OpKind kind = chk::OpKind::kRead;
  VarId var;
  Value value = kInitValue;  // writes only
};

inline Step read_step(VarId var) { return Step{chk::OpKind::kRead, var, 0}; }
inline Step write_step(VarId var, Value value) {
  return Step{chk::OpKind::kWrite, var, value};
}

class ScriptRunner {
 public:
  ScriptRunner(sim::Simulator& simulator, mcs::AppProcess& app,
               std::vector<Step> script, sim::Duration think_min,
               sim::Duration think_max, std::uint64_t seed);

  /// Schedule the first operation; each next operation is issued a sampled
  /// think time after the previous one completes.
  void start();

  bool done() const { return next_ >= script_.size() && !running_; }
  std::size_t steps_completed() const { return next_; }

  /// Invoked once after the last step completes.
  std::function<void()> on_finished;

 private:
  void schedule_next();
  void issue_next();
  sim::Duration think();

  sim::Simulator& sim_;
  mcs::AppProcess& app_;
  std::vector<Step> script_;
  sim::Duration think_min_, think_max_;
  Rng rng_;
  std::size_t next_ = 0;
  bool running_ = false;
};

}  // namespace cim::wl

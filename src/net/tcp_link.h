// TCP-backed link transport: the inter-IS channel as a real byte stream
// between OS processes (tools/cim_bridge).
//
// Framing: every message goes on the stream as a wire-encoded TransportFrame
// (docs/WIRE.md type 7) — seq-numbered data frame with a piggybacked
// cumulative ACK, exactly the in-sim ARQ's frame format, so a capture of the
// socket is decodable with the same codec and the receive side reuses the
// ARQ's dedup discipline. Retransmission, ordering, and integrity come from
// kernel TCP (the stream IS the reliable FIFO channel the paper assumes);
// running the sim-timer ARQ on top would misfire, because rt::Runtime runs
// virtual time as fast as possible — a 20ms virtual RTO elapses in
// microseconds of real time, long before a real ACK can cross localhost.
// The seq/ack numbers therefore carry no recovery duty here; they exist so
// the frame format is shared and so accidental duplication (e.g. a future
// reconnect-and-replay layer) is detected and suppressed rather than
// corrupting causal order.
//
// Threading: send() may be called from any thread (writes serialize on an
// internal mutex; the bridge calls it from the engine thread and, for
// control messages, the main thread). A dedicated reader thread decodes
// inbound frames and hands payloads to the DeliverFn — which therefore runs
// on the reader thread; the bridge posts them into the rt::Runtime. Metrics:
// send-side instruments are cached obs cells bumped under the send mutex;
// receive-side counts are atomics the embedder folds into the registry once
// the reader is joined (obs cells are not thread-safe).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "net/link_transport.h"
#include "net/message.h"
#include "obs/obs.h"

namespace cim::net {

/// Listen on `port` (all interfaces), accept one connection, close the
/// listener. Returns the connected socket fd; throws InvariantViolation on
/// socket errors.
int tcp_listen_accept(std::uint16_t port);

/// Connect to host:port, retrying (100ms apart) while the peer is not yet
/// listening. Returns the connected fd; throws after `retries` failures.
int tcp_connect(const char* host, std::uint16_t port, int retries = 100);

class TcpLinkTransport final : public LinkTransport {
 public:
  /// Payload delivery, on the reader thread.
  using DeliverFn = std::function<void(MessagePtr)>;

  /// Takes ownership of the connected socket `fd`.
  explicit TcpLinkTransport(int fd, obs::Observability* obs = nullptr);
  ~TcpLinkTransport() override;
  TcpLinkTransport(const TcpLinkTransport&) = delete;
  TcpLinkTransport& operator=(const TcpLinkTransport&) = delete;

  /// Synchronously read one frame and return its payload (handshake use,
  /// before start()). Null when the peer closed the connection.
  MessagePtr recv_one();

  /// Start the reader thread; every inbound payload goes to `deliver`.
  void start(DeliverFn deliver);

  /// Shut the socket down and join the reader thread. Idempotent; called by
  /// the destructor if needed.
  void close();

  // LinkTransport.
  void send(MessagePtr msg) override;
  const char* kind() const override { return "tcp"; }
  bool serializing() const override { return true; }
  std::uint64_t wire_bytes_out() const override {
    return bytes_out_.load(std::memory_order_relaxed);
  }
  std::uint64_t wire_bytes_in() const override {
    return bytes_in_.load(std::memory_order_relaxed);
  }

  // ---- introspection -------------------------------------------------------
  /// Peer closed the stream (EOF) or the stream failed.
  bool peer_closed() const {
    return peer_closed_.load(std::memory_order_acquire);
  }
  /// Static description of a stream/decode failure, or null.
  const char* error() const { return error_.load(std::memory_order_acquire); }
  std::uint64_t frames_sent() const {
    return frames_sent_.load(std::memory_order_relaxed);
  }
  std::uint64_t frames_received() const {
    return frames_received_.load(std::memory_order_relaxed);
  }
  std::uint64_t dups_suppressed() const {
    return dups_suppressed_.load(std::memory_order_relaxed);
  }

 private:
  bool read_frame(std::vector<std::uint8_t>& buf);  // false on EOF/error
  MessagePtr decode_frame(const std::vector<std::uint8_t>& buf);
  void reader_loop();

  int fd_;
  DeliverFn deliver_;
  std::thread reader_;
  bool started_ = false;
  bool closed_ = false;

  std::mutex send_mutex_;
  std::vector<std::uint8_t> send_buf_;  // reused, guarded by send_mutex_
  std::uint64_t send_next_ = 0;         // next data seq, under send_mutex_
  std::uint64_t recv_next_ = 0;         // reader thread only
  std::atomic<std::uint64_t> recv_next_published_{0};  // acked to peer

  std::atomic<std::uint64_t> bytes_out_{0};
  std::atomic<std::uint64_t> bytes_in_{0};
  std::atomic<std::uint64_t> frames_sent_{0};
  std::atomic<std::uint64_t> frames_received_{0};
  std::atomic<std::uint64_t> dups_suppressed_{0};
  std::atomic<bool> peer_closed_{false};
  std::atomic<const char*> error_{nullptr};

  // Cached send-side instrument cells, bumped under send_mutex_ (null
  // without observability).
  obs::Counter* m_bytes_out_ = nullptr;
  obs::DurationHistogram* h_encode_ns_ = nullptr;
};

}  // namespace cim::net

// Federation: one-stop ownership of a complete interconnection experiment —
// the simulator, the message fabric, the history recorder, the systems, and
// the Interconnector. This is the top of the public API; examples, tests,
// and benches build a FederationConfig and run it.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "checker/history.h"
#include "checker/online_monitor.h"
#include "interconnect/interconnector.h"
#include "mcs/memory_observer.h"
#include "mcs/system.h"
#include "net/fabric.h"
#include "obs/obs.h"
#include "sim/faults.h"
#include "sim/simulator.h"

namespace cim::isc {

struct FederationConfig {
  std::uint64_t seed = 1;
  std::vector<mcs::SystemConfig> systems;
  std::vector<LinkSpec> links;  // must form a forest (tree per component)
  IspMode isp_mode = IspMode::kSharedPerSystem;
  /// How pairs cross the links (see isc::LinkWire): in-memory pointer
  /// handoff (default) or a full wire-codec round trip per pair. kDefault
  /// resolves through the CIM_LINK_WIRE environment variable ("bytes" →
  /// kLoopbackBytes), which is how the test suite reruns every federation
  /// test in bytes mode without touching each test.
  LinkWire link_wire = LinkWire::kDefault;
  /// Links whose far side lives in another OS process (tools/cim_bridge):
  /// the local IS-process is created and activated by build(); the tool
  /// attaches the socket transport via
  /// interconnector().attach_external_link().
  std::vector<ExternalLinkSpec> external_links;
  /// Observability options (docs/OBSERVABILITY.md). Metrics are always
  /// collected; set obs.trace.enabled to capture structured trace events.
  obs::ObsOptions obs;
  /// Scripted chaos (docs/FAULTS.md): link indices address `links`, system
  /// indices address `systems`. Partitions and bursts hit both directions of
  /// the link; crashes hit every IS-process of the system. Injection is
  /// scheduled as simulator events at construction time.
  sim::FaultPlan faults;
  /// Online causal-consistency monitor (checker/online_monitor.h). Enabling
  /// it force-enables tracing (and the categories the monitor consumes) and
  /// attaches the monitor as the trace listener, so violations surface as
  /// `chk`/`violation` events and on `checker.violations` *during* the run.
  /// Disabled (the default), no listener is installed and instrumentation
  /// cost is unchanged.
  chk::MonitorOptions monitor;
};

class Federation {
 public:
  explicit Federation(FederationConfig config);
  Federation(const Federation&) = delete;
  Federation& operator=(const Federation&) = delete;

  sim::Simulator& simulator() { return sim_; }
  net::Fabric& fabric() { return fabric_; }
  chk::Recorder& recorder() { return recorder_; }
  Interconnector& interconnector() { return *interconnector_; }
  obs::Observability& observability() { return obs_; }
  /// The online monitor, or null when config.monitor.enabled was false.
  chk::OnlineMonitor* monitor() { return monitor_.get(); }

  /// Pull-based metrics snapshot: refreshes the point-in-time gauges
  /// (sim.*, net.in_flight, trace.events.*) and returns the registry's
  /// current state. See docs/OBSERVABILITY.md for the catalog.
  obs::MetricsSnapshot metrics_snapshot();

  std::size_t num_systems() const { return systems_.size(); }
  mcs::System& system(std::size_t index) { return *systems_.at(index); }

  /// Register a stats tracker; it will observe every write issue and every
  /// replica application in all systems.
  void add_observer(mcs::MemoryObserver* observer) { mux_.add(observer); }

  /// Run the simulation to quiescence (or until `deadline`).
  void run() { sim_.run(); }
  void run_until(sim::Time deadline) { sim_.run_until(deadline); }

  /// α^T: the computation of the interconnected system S^T (IS-processes
  /// excluded, as in Section 4).
  chk::History federation_history() const { return recorder_.federation(); }

  /// α^k: the computation of one system (its IS-processes included).
  chk::History system_history(std::size_t index) const;

 private:
  void install_faults(const sim::FaultPlan& plan);

  obs::Observability obs_;  // first: outlives everything that instruments
  std::unique_ptr<chk::OnlineMonitor> monitor_;
  sim::Simulator sim_;
  net::Fabric fabric_;
  chk::Recorder recorder_;
  mcs::ObserverMux mux_;
  std::vector<std::unique_ptr<mcs::System>> systems_;
  std::unique_ptr<Interconnector> interconnector_;
};

}  // namespace cim::isc

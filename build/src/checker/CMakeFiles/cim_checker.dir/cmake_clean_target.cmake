file(REMOVE_RECURSE
  "libcim_checker.a"
)

#include "interconnect/federation.h"

#include <utility>

#include "common/check.h"

namespace cim::isc {

Federation::Federation(FederationConfig config)
    : fabric_(sim_, config.seed) {
  CIM_CHECK_MSG(!config.systems.empty(), "federation needs at least one system");
  for (mcs::SystemConfig& sc : config.systems) {
    systems_.push_back(std::make_unique<mcs::System>(
        sim_, fabric_, recorder_, std::move(sc), &mux_));
  }
  std::vector<mcs::System*> raw;
  raw.reserve(systems_.size());
  for (auto& s : systems_) raw.push_back(s.get());
  interconnector_ = std::make_unique<Interconnector>(
      fabric_, std::move(raw), std::move(config.links), config.isp_mode);
  interconnector_->build();
}

chk::History Federation::system_history(std::size_t index) const {
  CIM_CHECK(index < systems_.size());
  return recorder_.system(systems_[index]->id());
}

}  // namespace cim::isc

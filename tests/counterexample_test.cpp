// Experiment E6 as a deterministic test: the Section-3 counterexample.
//
// System S0 runs the lazy-batch protocol (violates Causal Updating) with
// adversarial kReverseVars ordering; S1 runs ANBKH. A process of S0 writes
// w(x)1 and then w(y)2 (causally ordered). The IS-process's MCS replica
// applies them inverted, so:
//
//  * with IS-protocol 1 *forced* (pre-update reads disabled), the pairs
//    cross the link as ⟨y,2⟩ then ⟨x,1⟩; a reader in S1 observes y=2 while x
//    is still at its initial value — exactly the violation the paper
//    describes ("some process l in S^k could issue first r(x)u and then
//    r(x)v, which violates the causality of the system S^T");
//
//  * with the automatic choice (IS-protocol 2, since lazy-batch does not
//    satisfy Property 1), the Pre_Propagate_out reads force causal apply
//    order (Lemma 1) and the interconnected system stays causal.
#include <gtest/gtest.h>

#include <string_view>

#include "checker/causal_checker.h"
#include "checker/online_monitor.h"
#include "helpers.h"

namespace cim::isc {
namespace {

using test::X;
using test::Y;

// Delay model whose first sample is small and later samples large: separates
// the two pairs on the link so the inversion is observable in S1.
class StepDelay final : public net::DelayModel {
 public:
  sim::Duration sample(Rng&) override {
    return first_ ? (first_ = false, sim::milliseconds(1))
                  : sim::milliseconds(50);
  }

 private:
  bool first_ = true;
};

struct Probe {
  Value x_when_y_seen = -2;
  bool fired = false;
};

FederationConfig counterexample_config(IsProtocolChoice choice_s0) {
  proto::LazyBatchConfig lc;
  lc.batch_interval = sim::milliseconds(20);
  lc.order = proto::BatchOrder::kReverseVars;

  FederationConfig cfg = test::two_systems(
      2, proto::lazy_batch_protocol(lc), proto::anbkh_protocol(), 42);
  cfg.links[0].delay = [] { return std::make_unique<StepDelay>(); };
  cfg.links[0].choice_a = choice_s0;
  return cfg;
}

void run_counterexample(Federation& fed, Probe& probe) {
  auto& sim = fed.simulator();
  // The causal chain w(x)1 ⇝ w(y)2 in S0 (program order of p(0,0)).
  fed.system(0).app(0).write(X, 1);
  sim.at(sim::Time{} + sim::milliseconds(5),
         [&] { fed.system(0).app(0).write(Y, 2); });

  // A reader in S1 polls y; the moment it sees 2 it reads x.
  auto& reader = fed.system(1).app(1);
  auto poll = std::make_shared<std::function<void()>>();
  *poll = [&, poll] {
    reader.read(Y, [&, poll](Value y) {
      if (y == 2) {
        reader.read(X, [&](Value x) {
          probe.x_when_y_seen = x;
          probe.fired = true;
        });
      } else {
        sim.after(sim::milliseconds(2), [poll] { (*poll)(); });
      }
    });
  };
  (*poll)();
  fed.run();
  // The stored lambda captures `poll` itself; break the ownership cycle so
  // the closure is reclaimed.
  *poll = nullptr;
  ASSERT_TRUE(probe.fired);
}

TEST(Counterexample, Protocol1AloneViolatesCausality) {
  FederationConfig cfg = counterexample_config(IsProtocolChoice::kForceProtocol1);
  cfg.monitor.enabled = true;  // the online monitor must convict this live
  Federation fed(std::move(cfg));
  ASSERT_FALSE(fed.interconnector().shared_isp(0).pre_reads_enabled());

  Probe probe;
  run_counterexample(fed, probe);

  // The stale read happened...
  EXPECT_EQ(probe.x_when_y_seen, kInitValue);
  // ...and the online monitor flagged it *during* the run: the stale r(x)
  // surfaces as a writes-into violation (and the inverted pair arrival as a
  // per-writer FIFO regression in S1), emitted as `chk`/`violation` trace
  // events and on the checker.violations counter.
  ASSERT_NE(fed.monitor(), nullptr);
  EXPECT_GT(fed.monitor()->violation_count(), 0u);
  bool stale = false;
  for (const chk::Violation& v : fed.monitor()->violations()) {
    if (std::string_view(v.kind) == "stale_read" && v.var == X) stale = true;
  }
  EXPECT_TRUE(stale) << "expected a stale_read violation on x";
  EXPECT_GT(fed.observability().trace().category_count(obs::TraceCategory::kChk),
            0u);
  const obs::MetricsSnapshot snap = fed.metrics_snapshot();
  const obs::MetricsSnapshot::Entry* mv = snap.find("checker.violations");
  ASSERT_NE(mv, nullptr);
  EXPECT_GT(mv->value, 0);
  // ...the ISP's replica really was updated out of causal order...
  auto& isp_mcs = dynamic_cast<proto::LazyBatchProcess&>(
      fed.system(0).mcs(fed.system(0).num_app_processes()));
  EXPECT_GE(isp_mcs.scrambled_batches(), 1u);
  // ...and the checker convicts the interconnected computation.
  auto res = chk::CausalChecker{}.check(fed.federation_history());
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.pattern, chk::BadPattern::kWriteCOInitRead) << res.detail;

  // Each individual system is still causal — the damage is only global,
  // which is exactly why interconnection needs the stronger protocol.
  EXPECT_TRUE(chk::CausalChecker{}.check(fed.system_history(0)).ok());
  EXPECT_TRUE(chk::CausalChecker{}.check(fed.system_history(1)).ok());
}

TEST(Counterexample, Protocol2RestoresCausality) {
  FederationConfig cfg = counterexample_config(IsProtocolChoice::kAuto);
  cfg.monitor.enabled = true;
  Federation fed(std::move(cfg));
  // Auto selects IS-protocol 2 because lazy-batch lacks Causal Updating.
  ASSERT_TRUE(fed.interconnector().shared_isp(0).pre_reads_enabled());

  Probe probe;
  run_counterexample(fed, probe);

  // The pre-read forced causal apply order: x was already visible.
  EXPECT_EQ(probe.x_when_y_seen, 1);
  // The same monitor stays silent on the repaired run.
  ASSERT_NE(fed.monitor(), nullptr);
  EXPECT_EQ(fed.monitor()->violation_count(), 0u);
  EXPECT_GT(fed.monitor()->events_seen(), 0u);
  auto& isp_mcs = dynamic_cast<proto::LazyBatchProcess&>(
      fed.system(0).mcs(fed.system(0).num_app_processes()));
  EXPECT_EQ(isp_mcs.scrambled_batches(), 0u);

  auto res = chk::CausalChecker{}.check(fed.federation_history());
  EXPECT_TRUE(res.ok()) << res.detail;
}

TEST(Counterexample, ForcedProtocol2OnCausalUpdatingSystemIsHarmless) {
  // Running the stronger protocol on an ANBKH system is wasteful but safe.
  FederationConfig cfg = test::two_systems(2, proto::anbkh_protocol(),
                                           proto::anbkh_protocol(), 7);
  cfg.links[0].choice_a = IsProtocolChoice::kForceProtocol2;
  cfg.links[0].choice_b = IsProtocolChoice::kForceProtocol2;
  Federation fed(std::move(cfg));
  wl::UniformConfig wc;
  wc.ops_per_process = 25;
  wc.seed = 99;
  auto runners = wl::install_uniform(fed, wc);
  fed.run();
  auto res = chk::CausalChecker{}.check(fed.federation_history());
  EXPECT_TRUE(res.ok()) << res.detail;
}

// Statistical version: across random seeds with shuffled batches, forced
// protocol 1 frequently violates causality while protocol 2 never does.
class CounterexampleSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CounterexampleSweep, Protocol2NeverViolates) {
  proto::LazyBatchConfig lc;
  lc.batch_interval = sim::milliseconds(15);
  lc.order = proto::BatchOrder::kShuffleVars;
  FederationConfig cfg = test::two_systems(
      3, proto::lazy_batch_protocol(lc), proto::anbkh_protocol(), GetParam());
  cfg.links[0].delay = [] {
    return std::make_unique<net::UniformDelay>(sim::milliseconds(1),
                                               sim::milliseconds(40));
  };
  Federation fed(std::move(cfg));
  wl::UniformConfig wc;
  wc.ops_per_process = 30;
  wc.num_vars = 5;
  wc.seed = GetParam() * 3 + 11;
  auto runners = wl::install_uniform(fed, wc);
  fed.run();
  auto res = chk::CausalChecker{}.check(fed.federation_history());
  EXPECT_TRUE(res.ok()) << chk::to_string(res.pattern) << ": " << res.detail;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CounterexampleSweep,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace cim::isc

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_preread.dir/bench_ablation_preread.cpp.o"
  "CMakeFiles/bench_ablation_preread.dir/bench_ablation_preread.cpp.o.d"
  "bench_ablation_preread"
  "bench_ablation_preread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_preread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

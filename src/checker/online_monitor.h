// Online causal-consistency monitor: a bounded-memory streaming consumer of
// the structured trace that flags consistency violations *while the run is
// still executing* — unlike the offline checkers (causal_checker.h,
// search_checker.h), which need the complete history afterwards.
//
// The monitor attaches to a TraceSink as its listener and watches the v3
// write-lifecycle events (every one carries the originating WriteId):
//
//   fifo_regress — per-writer FIFO application order. A replica applied
//     write #s of some origin after already applying #s' > s from the same
//     origin, with virtual time elapsed in between. Program order is part
//     of causal order, so an *observable* inversion violates causality.
//     Two benign shapes are excluded: re-applying the same seq (the AW-seq
//     protocol pre-applies its own writes and re-applies them at their
//     total-order position), and inversions at one virtual instant (the
//     lazy-batch protocol applies a whole batch atomically — scrambled
//     inside, but no read can interleave, which is exactly why a single
//     lazy-batch system stays causal even though it lacks Causal Updating).
//   read_regress — per-variable read monotonicity. Two consecutive reads of
//     a variable by one process returned writes of the same origin with
//     decreasing sequence numbers: the process travelled back in time.
//   stale_read — writes-into order (the paper's Section 5 counterexample).
//     A process that has observed write #k of origin o (by reading any of
//     o's values, or by being o) reads a variable x and gets a value
//     causally *older* than o's latest write to x among #1..#k — either the
//     initial value, or an overwritten same-origin write. The Claim 4
//     history (w(x)1 · w(y)2 at p, then r(y)2 · r(x)0 elsewhere) is exactly
//     this.
//
// Detection is a sound under-approximation: sequence-number knowledge is
// propagated only by direct reads (no transitive closure through third
// processes), so every reported violation is real, but not every violation
// is reported. Values are assumed unique per execution (the repo-wide
// workload convention) so a value identifies its write.
//
// Every violation is recorded, emitted as a `chk`/`violation` trace event
// and counted in the `checker.violations` metric the moment the offending
// event is observed. All state is bounded by MonitorOptions caps; when a
// cap is hit the oldest entries are forgotten (reducing detection power,
// never soundness).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/value.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_read.h"

namespace cim::chk {

struct MonitorOptions {
  bool enabled = false;
  bool check_fifo_apply = true;
  bool check_read_monotonic = true;
  bool check_writes_into = true;
  std::size_t max_tracked_values = 1 << 16;  // value -> write id map
  std::size_t max_writes_per_var = 1 << 10;  // per (origin, var) seq history
  std::size_t max_violations = 256;          // retained Violation records
};

struct Violation {
  const char* kind = nullptr;  // "fifo_regress" | "read_regress" | "stale_read"
  std::int64_t t = 0;          // virtual time of the offending event, ns
  ProcId proc;                 // process at which the violation surfaced
  VarId var;
  WriteId wid;                 // offending write (invalid for init reads)
  std::uint32_t expected_seq = 0;  // newest same-origin seq the proc knew
  std::uint32_t got_seq = 0;       // seq actually observed (0 = init)
};

class OnlineMonitor {
 public:
  explicit OnlineMonitor(MonitorOptions opts = {});

  /// Categories the monitor consumes (plus chk, which it emits).
  static std::uint32_t required_category_mask();

  /// Attach as `sink`'s listener; violations are then reported live as
  /// `violation` trace events and on the `checker.violations` counter.
  /// Either pointer may be null (offline use: feed observe() directly).
  void attach(obs::TraceSink* sink, obs::MetricsRegistry* metrics);
  void detach();

  /// Feed one live / parsed event. chk-category events are ignored (the
  /// monitor's own emissions do not recurse).
  void observe(const obs::TraceEvent& ev);
  void observe(const obs::ParsedTraceEvent& ev);

  const MonitorOptions& options() const { return opts_; }
  std::uint64_t events_seen() const { return events_seen_; }
  std::uint64_t violation_count() const { return violation_count_; }
  /// Retained violation records, oldest first (capped at max_violations;
  /// violation_count() keeps the true total).
  const std::vector<Violation>& violations() const { return violations_; }

 private:
  static std::uint64_t key(std::uint32_t a, std::uint32_t b) {
    return (std::uint64_t(a) << 32) | b;
  }
  static std::uint32_t pack(ProcId p) {
    return (std::uint32_t(p.system.value) << 16) | p.index;
  }

  void on_write_issue(std::int64_t t, ProcId proc, WriteId wid, VarId var,
                      Value value);
  void on_read_done(std::int64_t t, ProcId proc, VarId var, Value value);
  void on_update_applied(std::int64_t t, ProcId proc, WriteId wid);
  void learn(ProcId proc, WriteId wid);
  void report(Violation v);

  MonitorOptions opts_;
  obs::TraceSink* sink_ = nullptr;
  obs::Counter* m_violations_ = nullptr;

  // value -> (wid, var) for every write seen issued; FIFO-bounded.
  struct WriteInfo {
    WriteId wid;
    VarId var;
  };
  std::unordered_map<Value, WriteInfo> by_value_;
  std::deque<Value> by_value_order_;

  // (origin, var) -> ascending seqs of that origin's writes to var.
  std::unordered_map<std::uint64_t, std::deque<std::uint32_t>> writes_;
  // (proc, origin) -> highest seq of origin the proc has read or issued.
  std::unordered_map<std::uint64_t, std::uint32_t> knows_;
  // (proc, var) -> write returned by the proc's last read of var.
  std::unordered_map<std::uint64_t, WriteId> last_read_;
  // (replica, origin) -> highest seq applied at the replica, and when.
  struct Applied {
    std::uint32_t seq = 0;
    std::int64_t t = 0;
  };
  std::unordered_map<std::uint64_t, Applied> applied_;

  std::uint64_t events_seen_ = 0;
  std::uint64_t violation_count_ = 0;
  std::vector<Violation> violations_;
};

}  // namespace cim::chk

file(REMOVE_RECURSE
  "libcim_common.a"
)

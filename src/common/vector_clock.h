// Dense vector clocks over the processes of one system.
//
// Used by the propagation-based MCS protocols (ANBKH, lazy-batch) to track
// the causal order of write operations within a system. Entry i counts the
// number of writes by local process i that the owner has applied.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace cim {

class VectorClock {
 public:
  VectorClock() = default;
  explicit VectorClock(std::size_t n) : counts_(n, 0) {}
  VectorClock(std::initializer_list<std::uint64_t> init) : counts_(init) {}

  std::size_t size() const { return counts_.size(); }

  std::uint64_t operator[](std::size_t i) const { return counts_[i]; }

  /// Increment entry i (a new write by process i).
  void tick(std::size_t i) { ++counts_.at(i); }

  void set(std::size_t i, std::uint64_t v) { counts_.at(i) = v; }

  /// Pointwise maximum with `other`; both clocks must have equal size.
  void merge(const VectorClock& other);

  /// True iff every entry of *this is <= the corresponding entry of other.
  bool leq(const VectorClock& other) const;

  /// True iff leq(other) and the clocks differ (strict causal precedence).
  bool lt(const VectorClock& other) const;

  /// True iff neither clock precedes the other (concurrent writes).
  bool concurrent_with(const VectorClock& other) const;

  /// A write stamped `w` by process `writer` is *causally ready* at a replica
  /// whose clock is *this iff w[writer] == (*this)[writer]+1 and
  /// w[j] <= (*this)[j] for all j != writer. (ANBKH delivery condition.)
  bool ready_at(const VectorClock& replica_clock, std::size_t writer) const;

  bool operator==(const VectorClock&) const = default;

  std::string to_string() const;

 private:
  std::vector<std::uint64_t> counts_;
};

}  // namespace cim

#include "stats/summary.h"

#include <algorithm>

namespace cim::stats {

DurationSummary summarize(std::vector<sim::Duration> samples) {
  DurationSummary s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.count = samples.size();
  s.min = samples.front();
  s.max = samples.back();
  auto rank = [&](double q) {
    // Nearest-rank: ceil(q * n), 1-based.
    std::size_t r = static_cast<std::size_t>(q * static_cast<double>(s.count));
    if (static_cast<double>(r) < q * static_cast<double>(s.count)) ++r;
    if (r == 0) r = 1;
    if (r > s.count) r = s.count;
    return samples[r - 1];
  };
  s.p50 = rank(0.50);
  s.p90 = rank(0.90);
  s.p99 = rank(0.99);
  double total = 0;
  for (sim::Duration d : samples) total += static_cast<double>(d.ns);
  s.mean_ns = total / static_cast<double>(s.count);
  return s;
}

}  // namespace cim::stats

file(REMOVE_RECURSE
  "CMakeFiles/bench_visibility_distribution.dir/bench_visibility_distribution.cpp.o"
  "CMakeFiles/bench_visibility_distribution.dir/bench_visibility_distribution.cpp.o.d"
  "bench_visibility_distribution"
  "bench_visibility_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_visibility_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

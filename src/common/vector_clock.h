// Vector clocks over the processes of one system, with small-vector storage.
//
// Used by the propagation-based MCS protocols (ANBKH, lazy-batch) to track
// the causal order of write operations within a system. Entry i counts the
// number of writes by local process i that the owner has applied.
//
// A clock is stamped onto every update message, so its representation is on
// the simulate→send→deliver→apply hot path. Up to kInline (8) entries live
// directly inside the object — that covers every configuration in examples/
// and bench/ — so stamping a message is a fixed-size copy with no heap
// traffic. Larger systems spill to a cim::BlockPool block, which recycles
// across messages in steady state.
#pragma once

#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <string>

#include "common/check.h"
#include "common/pool.h"

namespace cim {

class VectorClock {
 public:
  /// Entries stored inline (no heap) — sized for the repo's experiment
  /// configurations; see the spill tests in tests/common_test.cpp.
  static constexpr std::size_t kInline = 8;

  VectorClock() noexcept : data_(inline_), size_(0) {}

  explicit VectorClock(std::size_t n) {
    init(n);
    std::memset(data_, 0, n * sizeof(std::uint64_t));
  }

  VectorClock(std::initializer_list<std::uint64_t> init_list) {
    init(init_list.size());
    std::size_t i = 0;
    for (std::uint64_t v : init_list) data_[i++] = v;
  }

  VectorClock(const VectorClock& other) {
    init(other.size_);
    std::memcpy(data_, other.data_, size_ * sizeof(std::uint64_t));
  }

  VectorClock(VectorClock&& other) noexcept {
    steal(other);
  }

  VectorClock& operator=(const VectorClock& other) {
    if (this != &other) {
      if (size_ != other.size_) {
        release();
        init(other.size_);
      }
      std::memcpy(data_, other.data_, size_ * sizeof(std::uint64_t));
    }
    return *this;
  }

  VectorClock& operator=(VectorClock&& other) noexcept {
    if (this != &other) {
      release();
      steal(other);
    }
    return *this;
  }

  ~VectorClock() { release(); }

  std::size_t size() const { return size_; }

  std::uint64_t operator[](std::size_t i) const {
    CIM_DCHECK(i < size_);
    return data_[i];
  }

  /// Increment entry i (a new write by process i).
  void tick(std::size_t i) {
    CIM_DCHECK(i < size_);
    ++data_[i];
  }

  void set(std::size_t i, std::uint64_t v) {
    CIM_DCHECK(i < size_);
    data_[i] = v;
  }

  /// Pointwise maximum with `other`; both clocks must have equal size.
  void merge(const VectorClock& other);

  /// True iff every entry of *this is <= the corresponding entry of other.
  bool leq(const VectorClock& other) const;

  /// True iff leq(other) and the clocks differ (strict causal precedence).
  bool lt(const VectorClock& other) const;

  /// True iff neither clock precedes the other (concurrent writes).
  bool concurrent_with(const VectorClock& other) const;

  /// A write stamped `w` by process `writer` is *causally ready* at a replica
  /// whose clock is *this iff w[writer] == (*this)[writer]+1 and
  /// w[j] <= (*this)[j] for all j != writer. (ANBKH delivery condition.)
  bool ready_at(const VectorClock& replica_clock, std::size_t writer) const;

  bool operator==(const VectorClock& other) const {
    return size_ == other.size_ &&
           std::memcmp(data_, other.data_, size_ * sizeof(std::uint64_t)) == 0;
  }

  std::string to_string() const;

 private:
  void init(std::size_t n) {
    size_ = static_cast<std::uint32_t>(n);
    data_ = n <= kInline
                ? inline_
                : static_cast<std::uint64_t*>(
                      BlockPool::allocate(n * sizeof(std::uint64_t)));
  }

  void release() noexcept {
    if (data_ != inline_) BlockPool::deallocate(data_);
  }

  // Take other's storage (heap pointer stolen, inline entries copied) and
  // leave it empty. Precondition: *this holds no storage.
  void steal(VectorClock& other) noexcept {
    size_ = other.size_;
    if (other.data_ == other.inline_) {
      data_ = inline_;
      std::memcpy(inline_, other.inline_, size_ * sizeof(std::uint64_t));
    } else {
      data_ = other.data_;
    }
    other.data_ = other.inline_;
    other.size_ = 0;
  }

  std::uint64_t* data_;
  std::uint32_t size_;
  std::uint64_t inline_[kInline];
};

}  // namespace cim

#include "sim/simulator.h"

namespace cim::sim {

void Simulator::reserve(std::size_t n) {
  heap_.reserve(n);
  slots_.reserve(n);
  free_slots_.reserve(n);
}

std::uint64_t Simulator::run() {
  std::uint64_t n = 0;
  while (step()) ++n;
  return n;
}

std::uint64_t Simulator::run_until(Time deadline) {
  std::uint64_t n = 0;
  while (!heap_.empty() && heap_.front().time <= deadline) {
    step();
    ++n;
  }
  if (now_ < deadline && heap_.empty()) now_ = deadline;
  return n;
}

}  // namespace cim::sim

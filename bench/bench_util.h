// Shared builders for the experiment binaries. Each bench regenerates one
// row-set of the paper's Section-6 analysis (or a correctness experiment)
// and prints a paper-vs-measured table.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "interconnect/federation.h"
#include "protocols/anbkh.h"
#include "protocols/aw_seq.h"
#include "protocols/lazy_batch.h"
#include "protocols/tob_causal.h"
#include "workload/generator.h"

namespace cim::bench {

enum class Topology { kChain, kStar, kBinaryTree };

inline const char* to_string(Topology t) {
  switch (t) {
    case Topology::kChain: return "chain";
    case Topology::kStar: return "star";
    case Topology::kBinaryTree: return "binary";
  }
  return "?";
}

/// Edges of a topology over m systems.
inline std::vector<std::pair<std::size_t, std::size_t>> edges_of(
    Topology topo, std::size_t m) {
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  switch (topo) {
    case Topology::kChain:
      for (std::size_t i = 0; i + 1 < m; ++i) edges.emplace_back(i, i + 1);
      break;
    case Topology::kStar:
      for (std::size_t i = 1; i < m; ++i) edges.emplace_back(0, i);
      break;
    case Topology::kBinaryTree:
      for (std::size_t i = 1; i < m; ++i) edges.emplace_back((i - 1) / 2, i);
      break;
  }
  return edges;
}

/// Eccentricity of system `from` in the link graph (hops to the farthest
/// system) — the `h` of the latency formula (h+1)·l + h·d.
inline std::size_t eccentricity(
    const std::vector<std::pair<std::size_t, std::size_t>>& edges,
    std::size_t m, std::size_t from) {
  std::vector<std::vector<std::size_t>> adj(m);
  for (auto [a, b] : edges) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  std::vector<std::size_t> dist(m, SIZE_MAX);
  std::queue<std::size_t> queue;
  dist[from] = 0;
  queue.push(from);
  while (!queue.empty()) {
    const std::size_t v = queue.front();
    queue.pop();
    for (std::size_t w : adj[v]) {
      if (dist[w] == SIZE_MAX) {
        dist[w] = dist[v] + 1;
        queue.push(w);
      }
    }
  }
  std::size_t ecc = 0;
  for (std::size_t d : dist) {
    if (d != SIZE_MAX && d > ecc) ecc = d;
  }
  return ecc;
}

struct FedParams {
  std::size_t num_systems = 1;
  std::uint16_t procs_per_system = 4;
  Topology topology = Topology::kChain;
  mcs::ProtocolFactory protocol;               // defaults to ANBKH
  sim::Duration intra_delay = sim::milliseconds(1);   // the paper's `l`
  sim::Duration link_delay = sim::milliseconds(10);   // the paper's `d`
  isc::IspMode isp_mode = isc::IspMode::kSharedPerSystem;
  isc::IsProtocolChoice choice = isc::IsProtocolChoice::kAuto;
  std::uint64_t seed = 1;
};

inline isc::FederationConfig make_config(const FedParams& params) {
  isc::FederationConfig cfg;
  cfg.seed = params.seed;
  cfg.isp_mode = params.isp_mode;
  for (std::size_t s = 0; s < params.num_systems; ++s) {
    mcs::SystemConfig sc;
    sc.id = SystemId{static_cast<std::uint16_t>(s)};
    sc.num_app_processes = params.procs_per_system;
    sc.protocol = params.protocol ? params.protocol : proto::anbkh_protocol();
    sc.seed = params.seed * 1000 + s;
    sc.intra_delay = [d = params.intra_delay] {
      return std::make_unique<net::FixedDelay>(d);
    };
    cfg.systems.push_back(std::move(sc));
  }
  for (auto [a, b] : edges_of(params.topology, params.num_systems)) {
    isc::LinkSpec link;
    link.system_a = a;
    link.system_b = b;
    link.delay = [d = params.link_delay] {
      return std::make_unique<net::FixedDelay>(d);
    };
    link.choice_a = params.choice;
    link.choice_b = params.choice;
    cfg.links.push_back(std::move(link));
  }
  return cfg;
}

/// All application-process ids of the federation (the replicas "any other
/// process" of the latency definition refers to).
inline std::vector<ProcId> all_app_procs(isc::Federation& fed) {
  std::vector<ProcId> out;
  for (std::size_t s = 0; s < fed.num_systems(); ++s) {
    for (std::uint16_t p = 0; p < fed.system(s).num_app_processes(); ++p) {
      out.push_back(ProcId{fed.system(s).id(), p});
    }
  }
  return out;
}

/// Wall-clock stopwatch for host-time throughput rows. Virtual time measures
/// the simulated world; events/sec against wall time measures the simulator
/// engine itself, which is what the perf-regression harness tracks.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline std::string ms_string(sim::Duration d) {
  const double ms = static_cast<double>(d.ns) / 1e6;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3gms", ms);
  return buf;
}

}  // namespace cim::bench

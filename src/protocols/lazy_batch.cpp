#include "protocols/lazy_batch.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/check.h"

namespace cim::proto {

LazyBatchProcess::LazyBatchProcess(const mcs::McsContext& ctx,
                                   LazyBatchConfig config)
    : McsProcess(ctx), config_(config), clock_(ctx.num_procs) {}

Value LazyBatchProcess::replica_value(VarId var) const {
  return store_.get(var);
}

void LazyBatchProcess::handle_read(VarId var, mcs::ReadCallback cb) {
  cb(replica_value(var));
}

void LazyBatchProcess::do_write(VarId var, Value value, WriteId wid,
                                mcs::WriteCallback cb) {
  // Local writes apply immediately (read-your-writes) and propagate.
  clock_.tick(local_index());
  store_.set(var, value);
  note_update_issued(var, value, wid);
  if (observer() != nullptr) {
    observer()->on_write_issued(id(), var, value, simulator().now());
    observer()->on_apply(id(), var, value, simulator().now());
  }
  for (std::uint16_t j = 0; j < num_procs(); ++j) {
    if (j == local_index()) continue;
    auto msg = std::make_unique<TimestampedUpdate>();
    msg->var = var;
    msg->value = value;
    msg->clock = clock_;
    msg->writer = local_index();
    msg->write_id = wid;
    send_to(j, std::move(msg));
  }
  cb();
}

void LazyBatchProcess::on_message(net::ChannelId from, net::MessagePtr msg) {
  CIM_DCHECK_MSG(dynamic_cast<TimestampedUpdate*>(msg.get()) != nullptr,
                 "unexpected message type in lazy-batch");
  auto* update = static_cast<TimestampedUpdate*>(msg.get());
  CIM_DCHECK(update->writer == sender_of(from));
  update->received_at = simulator().now();
  pending_.push_back(std::move(*update));
  note_update_buffered(pending_.size());
  schedule_batch();
}

void LazyBatchProcess::schedule_batch() {
  if (batch_scheduled_) return;
  batch_scheduled_ = true;
  simulator().after(config_.batch_interval, [this]() {
    batch_scheduled_ = false;
    run_batch();
  });
}

void LazyBatchProcess::collect_ready(VectorClock& tentative,
                                     std::vector<TimestampedUpdate>& batch) {
  // Repeatedly extract updates that are causally ready with respect to the
  // tentative clock; the result is the maximal applicable set, listed in
  // causal order.
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (!it->clock.ready_at(tentative, it->writer)) continue;
      tentative.set(it->writer, it->clock[it->writer]);
      batch.push_back(std::move(*it));
      pending_.erase(it);
      progress = true;
      break;
    }
  }
}

void LazyBatchProcess::order_batch(std::vector<TimestampedUpdate>& batch) {
  // Lemma 1's observational forcing: if the attached IS-process receives
  // pre-update upcalls, every intermediate state of the batch is observable
  // through its reads, so a *causal* MCS must keep the causal order.
  const bool forced_causal = has_upcall_handler() && pre_update_enabled();
  if (forced_causal || config_.order == BatchOrder::kCausal) return;

  // Group updates per variable, keeping within-variable causal order
  // (reordering same-variable updates would break convergence), then permute
  // the groups.
  std::vector<VarId> group_order;
  std::unordered_map<VarId, std::vector<TimestampedUpdate>> groups;
  for (TimestampedUpdate& u : batch) {
    auto [it, inserted] = groups.try_emplace(u.var);
    if (inserted) group_order.push_back(u.var);
    it->second.push_back(std::move(u));
  }

  if (config_.order == BatchOrder::kReverseVars) {
    std::reverse(group_order.begin(), group_order.end());
  } else {  // kShuffleVars — Fisher-Yates with the per-process rng
    for (std::size_t i = group_order.size(); i > 1; --i) {
      std::swap(group_order[i - 1], group_order[rng().uniform(0, i - 1)]);
    }
  }

  std::vector<TimestampedUpdate> reordered;
  reordered.reserve(batch.size());
  for (VarId var : group_order) {
    for (TimestampedUpdate& u : groups[var]) reordered.push_back(std::move(u));
  }
  batch = std::move(reordered);
}

void LazyBatchProcess::run_batch() {
  VectorClock tentative = clock_;
  std::vector<TimestampedUpdate>& batch = batch_scratch_;
  batch.clear();
  collect_ready(tentative, batch);
  if (batch.empty()) return;

  // Values are unique per execution (paper assumption), so they identify
  // updates; remember the causal order to detect deviation.
  std::vector<Value>& causal_values = causal_scratch_;
  causal_values.clear();
  causal_values.reserve(batch.size());
  for (const TimestampedUpdate& u : batch) causal_values.push_back(u.value);

  order_batch(batch);

  bool deviated = false;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].value != causal_values[i]) deviated = true;
  }
  if (deviated) ++scrambled_batches_;

  // Apply the whole batch within this event: application processes cannot
  // observe intermediate states (only the attached IS-process can, through
  // upcall reads). Each apply runs through the upcall discipline; in this
  // implementation the IS-protocol handlers respond synchronously, so the
  // loop below completes within the current event.
  for (TimestampedUpdate& u : batch) {
    bool completed = false;
    apply_with_upcalls(
        u.var, u.value, u.write_id, /*own_write=*/false,
        /*apply=*/[this, &u]() {
          store_.set(u.var, u.value);
          note_update_applied(u.var, u.value, u.write_id, u.received_at);
          if (observer() != nullptr) {
            observer()->on_apply(id(), u.var, u.value, simulator().now());
          }
        },
        /*done=*/[&completed]() { completed = true; });
    CIM_CHECK_MSG(completed, "lazy-batch requires synchronous upcall handlers");
  }

  // The tentative clock covers the batch; merge (rather than assign) in case
  // a local write ticked our own entry during the upcall dances.
  clock_.merge(tentative);

  // Updates that stayed pending are waiting for in-flight dependencies; the
  // arrival of those dependencies schedules the next batch.
}

mcs::ProtocolFactory lazy_batch_protocol(LazyBatchConfig config) {
  return [config](const mcs::McsContext& ctx) {
    return std::make_unique<LazyBatchProcess>(ctx, config);
  };
}

}  // namespace cim::proto

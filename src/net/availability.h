// Link availability schedules.
//
// Section 1.1: "the reliable FIFO channel used does not need to be available
// all the time. If the channel is not available during some period of time,
// the variable updates can be queued up to be propagated at a later time."
// An AvailabilitySchedule says when a link can start transmitting; messages
// sent while the link is down wait (in FIFO order) until the next up period.
#pragma once

#include <algorithm>
#include <memory>
#include <vector>

#include "common/check.h"
#include "sim/time.h"

namespace cim::net {

class AvailabilitySchedule {
 public:
  virtual ~AvailabilitySchedule() = default;

  /// Is the link up at time t?
  virtual bool is_up(sim::Time t) const = 0;

  /// Earliest time >= t at which the link is up; kTimeMax if never again.
  virtual sim::Time next_up(sim::Time t) const = 0;
};

/// A link that is always available (the default).
class AlwaysUp final : public AvailabilitySchedule {
 public:
  bool is_up(sim::Time) const override { return true; }
  sim::Time next_up(sim::Time t) const override { return t; }
};

/// Periodic duty cycle: within each period the link is up for the first
/// `up` duration and down for the rest. Models a dial-up connection that is
/// brought up on a schedule.
///
/// Boundary semantics (pinned by tests/net_test.cpp): each period starts at
/// offset + k·period and is up on [start, start + up), down on
/// [start + up, start + period). A period-boundary instant is therefore up
/// iff up > 0; t exactly at start + up is down, with next_up = the next
/// period start; up == period means always up; up == 0 means never up
/// (next_up = kTimeMax). Times before the first period start wrap (the
/// schedule extends periodically in both directions).
class PeriodicDuty final : public AvailabilitySchedule {
 public:
  PeriodicDuty(sim::Duration period, sim::Duration up, sim::Duration offset = {})
      : period_(period), up_(up), offset_(offset) {
    CIM_CHECK(period.ns > 0);
    CIM_CHECK(up.ns >= 0 && up.ns <= period.ns);
  }

  bool is_up(sim::Time t) const override { return phase(t) < up_.ns; }

  sim::Time next_up(sim::Time t) const override {
    if (is_up(t)) return t;
    if (up_.ns == 0) return sim::kTimeMax;
    return sim::Time{t.ns + (period_.ns - phase(t))};
  }

 private:
  std::int64_t phase(sim::Time t) const {
    std::int64_t p = (t.ns - offset_.ns) % period_.ns;
    if (p < 0) p += period_.ns;
    return p;
  }

  sim::Duration period_, up_, offset_;
};

/// Explicit up-windows [begin, end); down outside all windows, and up again
/// forever after `up_after` if set (so executions can always drain).
class Windows final : public AvailabilitySchedule {
 public:
  struct Window {
    sim::Time begin;
    sim::Time end;  // exclusive
  };

  Windows(std::vector<Window> windows, sim::Time up_after)
      : windows_(std::move(windows)), up_after_(up_after) {
    for (std::size_t i = 0; i < windows_.size(); ++i) {
      CIM_CHECK(windows_[i].begin < windows_[i].end);
      if (i) CIM_CHECK(windows_[i - 1].end <= windows_[i].begin);
    }
  }

  bool is_up(sim::Time t) const override {
    if (t >= up_after_) return true;
    return std::any_of(windows_.begin(), windows_.end(), [&](const Window& w) {
      return w.begin <= t && t < w.end;
    });
  }

  sim::Time next_up(sim::Time t) const override {
    if (is_up(t)) return t;
    sim::Time best = up_after_;
    for (const Window& w : windows_) {
      if (w.begin >= t) best = std::min(best, w.begin);
    }
    return best;
  }

 private:
  std::vector<Window> windows_;
  sim::Time up_after_;
};

using AvailabilityPtr = std::unique_ptr<AvailabilitySchedule>;

}  // namespace cim::net

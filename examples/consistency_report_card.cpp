// Consistency report card: run the same cross-system workload on every
// protocol pairing and grade the resulting execution against the whole
// hierarchy of models this repository can check:
//
//   CM   — causal memory (the paper's model; Theorem 1 guarantees "yes")
//   CCv  — causal convergence (requires arbitration none of these protocols
//          implement, so contended runs score "no")
//   SEQ  — sequential consistency (exhaustive reference checker; small runs)
//   RYW / MR / MW — session guarantees (all should hold)
//
// This demonstrates the *position* of the interconnected system in the
// consistency spectrum: exactly causal — no more, no less.
#include <iostream>

#include "checker/causal_checker.h"
#include "checker/search_checker.h"
#include "checker/session_checker.h"
#include "interconnect/federation.h"
#include "protocols/anbkh.h"
#include "protocols/aw_seq.h"
#include "protocols/lazy_batch.h"
#include "protocols/tob_causal.h"
#include "stats/table.h"
#include "workload/generator.h"

using namespace cim;

namespace {

struct Protocol {
  const char* name;
  mcs::ProtocolFactory factory;
};

std::vector<Protocol> protocols() {
  proto::LazyBatchConfig lc;
  lc.order = proto::BatchOrder::kShuffleVars;
  return {
      {"anbkh", proto::anbkh_protocol()},
      {"lazy-batch", proto::lazy_batch_protocol(lc)},
      {"aw-seq", proto::aw_seq_protocol()},
      {"tob-causal", proto::tob_causal_protocol()},
  };
}

const char* yn(bool b) { return b ? "yes" : "no"; }

}  // namespace

int main() {
  std::cout << "Consistency report card — two interconnected systems per "
               "protocol,\ncontended workload (concurrent writers on shared "
               "variables)\n\n";

  stats::Table table(
      {"protocol", "CM (causal)", "CCv", "sequential", "RYW", "MR", "MW"});

  for (auto& p : protocols()) {
    isc::FederationConfig cfg;
    cfg.seed = 11;
    for (std::uint16_t s = 0; s < 2; ++s) {
      mcs::SystemConfig sc;
      sc.id = SystemId{s};
      sc.num_app_processes = 2;
      sc.protocol = p.factory;
      sc.seed = 90 + s;
      cfg.systems.push_back(std::move(sc));
    }
    isc::LinkSpec link;
    link.system_a = 0;
    link.system_b = 1;
    link.delay = [] {
      return std::make_unique<net::FixedDelay>(sim::milliseconds(25));
    };
    cfg.links.push_back(std::move(link));
    isc::Federation fed(std::move(cfg));
    auto& sim = fed.simulator();

    // Contention recipe: concurrent writes to one variable from both
    // systems, sampled by local readers during the propagation window, plus
    // a small amount of background traffic.
    const VarId hot{0};
    fed.system(0).app(0).write(hot, 1);
    fed.system(1).app(0).write(hot, 2);
    for (int t : {5, 10, 60, 120}) {
      sim.at(sim::Time{} + sim::milliseconds(t), [&] {
        fed.system(0).app(1).read(hot);
        fed.system(1).app(1).read(hot);
      });
    }
    sim.at(sim::Time{} + sim::milliseconds(30), [&] {
      fed.system(0).app(0).write(VarId{1}, 3);
      fed.system(1).app(0).read(VarId{1});
    });
    fed.run();

    auto history = fed.federation_history();
    const bool cm = chk::CausalChecker{}.check(history, chk::Level::kCM).ok();
    const bool ccv =
        chk::CausalChecker{}.check(history, chk::Level::kCCv).ok();
    auto seq = chk::SearchChecker{}.is_sequential(history);
    chk::SessionChecker sessions;
    const bool ryw =
        sessions.check(history, chk::SessionGuarantee::kReadYourWrites).ok;
    const bool mr =
        sessions.check(history, chk::SessionGuarantee::kMonotonicReads).ok;
    const bool mw =
        sessions.check(history, chk::SessionGuarantee::kMonotonicWrites).ok;

    table.add_row(p.name, yn(cm), yn(ccv),
                  seq.has_value() ? yn(*seq) : "undecided", yn(ryw), yn(mr),
                  yn(mw));
  }
  table.print();

  std::cout << "\nReading the card: Theorem 1 delivers CM for every protocol "
               "pairing; the\ncontended runs are neither convergent (CCv) "
               "nor sequential — interconnection\npreserves exactly causal "
               "memory, as the paper proves, while the session\nguarantees "
               "all hold (they are implied by CM).\n";
  return 0;
}

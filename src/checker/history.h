// Execution histories: the computations α^q of the paper.
//
// A History is a set of completed read/write operations grouped by issuing
// process in program order. The Recorder is the hook the MCS layer uses to
// record every application-process operation (invocation and response).
//
// Terminology follows Section 2 of the paper:
//  * a *system history* α^k contains the operations of all processes of S^k,
//    including its IS-processes (whose writes are the propagated writes
//    w^k_{isp^k}(x)v);
//  * the *federation history* α^T contains the operations of all application
//    processes of all systems, with IS-processes removed (the paper's ST
//    excludes isp^0 and isp^1).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/value.h"
#include "sim/time.h"

namespace cim::chk {

enum class OpKind : std::uint8_t { kRead, kWrite };

inline const char* to_string(OpKind k) {
  return k == OpKind::kRead ? "read" : "write";
}

struct Op {
  OpId id;
  ProcId proc;
  bool is_isp = false;        // operation issued by an IS-process
  OpKind kind = OpKind::kRead;
  VarId var;
  Value value = kInitValue;   // value written, or value returned by the read
  std::uint64_t proc_seq = 0; // position in the issuing process's program order
  sim::Time invoked;
  sim::Time responded;

  std::string to_string() const;
};

/// An immutable collection of operations with per-process program order.
class History {
 public:
  History() = default;
  explicit History(std::vector<Op> ops);

  const std::vector<Op>& ops() const { return ops_; }
  std::size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }

  /// Distinct processes appearing in the history, in ascending ProcId order.
  const std::vector<ProcId>& processes() const { return processes_; }

  /// Indices (into ops()) of the given process's operations, program order.
  const std::vector<std::size_t>& process_ops(ProcId p) const;

  /// Keep only operations satisfying `pred` (e.g., drop IS-process ops).
  template <typename Pred>
  History filter(Pred pred) const {
    std::vector<Op> kept;
    for (const Op& op : ops_) {
      if (pred(op)) kept.push_back(op);
    }
    return History(std::move(kept));
  }

  std::string to_string() const;

 private:
  std::vector<Op> ops_;                      // sorted by (proc, proc_seq)
  std::vector<ProcId> processes_;
  std::map<ProcId, std::vector<std::size_t>> by_proc_;
};

/// Records operations as executions run. Thread-compatible (the simulator is
/// single-threaded); the threaded runtime wraps it in a mutex externally.
class Recorder {
 public:
  /// Record the invocation of an operation. For writes, `value` is the value
  /// being written; for reads it is ignored until end_read.
  OpId begin(ProcId proc, bool is_isp, OpKind kind, VarId var, Value value,
             sim::Time now);

  /// Streaming hook for crash-durable history dumps (mesh::MeshNode): fired
  /// for writes at begin() — a write's value is final at invocation, and it
  /// must reach stable storage before the pair can leave the engine thread —
  /// and for reads at end_read(), when the result exists. Runs on whatever
  /// thread records the operation; per-process order equals program order.
  using Listener = std::function<void(const Op&)>;
  void set_listener(Listener listener) { listener_ = std::move(listener); }

  void end_read(OpId id, Value result, sim::Time now);
  void end_write(OpId id, sim::Time now);

  /// Number of operations recorded so far (completed or not).
  std::size_t count() const { return ops_.size(); }

  /// Pre-size the operation log. Long steady-state runs call this once up
  /// front so recording never reallocates inside the event loop (the
  /// allocation-free invariant of docs/ARCHITECTURE.md).
  void reserve(std::size_t n) { ops_.reserve(n); }

  /// All *completed* operations. Pending (never-responded) operations are
  /// excluded: the paper's computations contain only completed operations.
  History full() const;

  /// Operations of the processes of one system (IS-processes included):
  /// the computation α^k.
  History system(SystemId sys) const;

  /// Operations of all application processes, IS-processes excluded:
  /// the computation α^T.
  History federation() const;

 private:
  struct Pending {
    Op op;
    bool completed = false;
  };
  std::vector<Pending> ops_;
  std::map<ProcId, std::uint64_t> next_seq_;
  Listener listener_;
};

}  // namespace cim::chk

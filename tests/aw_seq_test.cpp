// Unit/integration tests: the Attiya–Welch sequential protocol, its TOB
// substrate, and experiment E9 (two sequential systems interconnect into a
// causal but not necessarily sequential system — Section 1.1).
#include <gtest/gtest.h>

#include "checker/causal_checker.h"
#include "checker/search_checker.h"
#include "helpers.h"

namespace cim::proto {
namespace {

using test::X;
using test::Y;

TEST(AwSeq, LocalReadIsImmediate) {
  isc::Federation fed(test::single_system(2, aw_seq_protocol()));
  Value got = -1;
  bool responded = false;
  fed.system(0).app(1).read(X, [&](Value v) {
    got = v;
    responded = true;
  });
  // Reads must complete without any message exchange.
  EXPECT_TRUE(responded);
  EXPECT_EQ(got, kInitValue);
}

TEST(AwSeq, WriteBlocksUntilOwnDelivery) {
  isc::Federation fed(test::single_system(3, aw_seq_protocol()));
  auto& sim = fed.simulator();
  sim::Time ack_time{-1};
  // Writer is process 1 (non-sequencer): publish -> sequencer -> broadcast.
  fed.system(0).app(1).write(X, 5, [&] { ack_time = sim.now(); });
  fed.run();
  // Default intra delay 1ms: 1ms to the sequencer + 1ms broadcast back.
  EXPECT_EQ(ack_time, sim::Time{} + sim::milliseconds(2));
}

TEST(AwSeq, SequencerWriteAcksAfterSelfDelivery) {
  isc::Federation fed(test::single_system(3, aw_seq_protocol()));
  bool acked = false;
  fed.system(0).app(0).write(X, 5, [&] { acked = true; });
  // The sequencer self-delivers synchronously; its own writes ack
  // immediately.
  EXPECT_TRUE(acked);
}

TEST(AwSeq, ReadYourWrites) {
  isc::Federation fed(test::single_system(3, aw_seq_protocol()));
  Value got = -1;
  auto& app = fed.system(0).app(2);
  app.write(X, 9);
  app.read(X, [&](Value v) { got = v; });
  fed.run();
  EXPECT_EQ(got, 9);
}

TEST(AwSeq, AllReplicasApplySameTotalOrder) {
  isc::Federation fed(test::single_system(4, aw_seq_protocol()));
  // Concurrent writes to the same variable from all processes.
  for (std::uint16_t p = 0; p < 4; ++p) {
    fed.system(0).app(p).write(X, 100 + p);
  }
  fed.run();
  Value v0 = dynamic_cast<AwSeqProcess&>(fed.system(0).mcs(0)).replica_value(X);
  for (std::uint16_t p = 1; p < 4; ++p) {
    EXPECT_EQ(
        dynamic_cast<AwSeqProcess&>(fed.system(0).mcs(p)).replica_value(X), v0);
  }
}

TEST(AwSeq, SatisfiesCausalUpdatingTrait) {
  isc::Federation fed(test::single_system(2, aw_seq_protocol()));
  EXPECT_TRUE(fed.system(0).mcs(0).satisfies_causal_updating());
  EXPECT_STREQ(fed.system(0).mcs(0).protocol_name(), "aw-seq");
}

// Single-system executions are *sequentially* consistent (checked with the
// exhaustive reference checker on small runs) — this is the premise of E9.
class AwSeqSequential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AwSeqSequential, SingleSystemIsSequentiallyConsistent) {
  isc::FederationConfig cfg =
      test::single_system(3, aw_seq_protocol(), GetParam());
  cfg.systems[0].intra_delay = [] {
    return std::make_unique<net::UniformDelay>(sim::microseconds(500),
                                               sim::milliseconds(8));
  };
  isc::Federation fed(std::move(cfg));
  wl::UniformConfig wc;
  wc.ops_per_process = 6;  // keep the exhaustive check tractable
  wc.num_vars = 2;
  wc.seed = GetParam() * 5 + 2;
  auto runners = wl::install_uniform(fed, wc);
  fed.run();

  auto history = fed.federation_history();
  auto seq = chk::SearchChecker{}.is_sequential(history);
  ASSERT_TRUE(seq.has_value()) << "search budget exceeded";
  EXPECT_TRUE(*seq) << history.to_string();
}

INSTANTIATE_TEST_SUITE_P(Seeds, AwSeqSequential,
                         ::testing::Range<std::uint64_t>(1, 13));

// Random AW workloads are causal (sequential implies causal); checked with
// the polynomial checker on larger runs.
class AwSeqRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AwSeqRandom, RandomWorkloadIsCausal) {
  isc::Federation fed(test::single_system(4, aw_seq_protocol(), GetParam()));
  wl::UniformConfig wc;
  wc.ops_per_process = 40;
  wc.num_vars = 4;
  wc.seed = GetParam() * 7 + 1;
  auto runners = wl::install_uniform(fed, wc);
  fed.run();
  auto res = chk::CausalChecker{}.check(fed.federation_history());
  EXPECT_TRUE(res.ok()) << res.detail;
}

INSTANTIATE_TEST_SUITE_P(Seeds, AwSeqRandom,
                         ::testing::Range<std::uint64_t>(1, 9));

// E9 proper: interconnect two AW systems. The union must be causal
// (Theorem 1) and there exist executions that are NOT sequential.
TEST(SequentialUnion, UnionIsCausalButNotSequential) {
  isc::FederationConfig cfg =
      test::two_systems(2, aw_seq_protocol(), aw_seq_protocol(), 21);
  // Slow link: large window during which the systems disagree.
  cfg.links[0].delay = [] {
    return std::make_unique<net::FixedDelay>(sim::milliseconds(40));
  };
  isc::Federation fed(std::move(cfg));
  auto& sim = fed.simulator();

  // Classic non-sequential witness: concurrent writes to x in each system;
  // readers in each system see their local write first, the remote one
  // later — opposite orders, impossible in any single total order.
  fed.system(0).app(0).write(X, 1);
  fed.system(1).app(0).write(X, 2);
  sim.at(sim::Time{} + sim::milliseconds(10), [&] {
    fed.system(0).app(1).read(X, [](Value v) { ASSERT_EQ(v, 1); });
    fed.system(1).app(1).read(X, [](Value v) { ASSERT_EQ(v, 2); });
  });
  sim.at(sim::Time{} + sim::milliseconds(200), [&] {
    // After propagation both systems converge on the pair order... each
    // system applied the remote write after its own, so the *final* values
    // differ per system — but reads below pin the opposite orders.
    fed.system(0).app(1).read(X, [](Value) {});
    fed.system(1).app(1).read(X, [](Value) {});
  });
  fed.run();

  auto history = fed.federation_history();
  auto causal = chk::CausalChecker{}.check(history);
  EXPECT_TRUE(causal.ok()) << causal.detail;

  auto seq = chk::SearchChecker{}.is_sequential(history);
  ASSERT_TRUE(seq.has_value());
  EXPECT_FALSE(*seq) << "expected a non-sequential union execution\n"
                     << history.to_string();
}

// And with random workloads the union stays causal for every seed.
class SequentialUnionSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SequentialUnionSweep, UnionIsCausal) {
  isc::FederationConfig cfg = test::two_systems(3, aw_seq_protocol(),
                                                aw_seq_protocol(), GetParam());
  isc::Federation fed(std::move(cfg));
  wl::UniformConfig wc;
  wc.ops_per_process = 30;
  wc.num_vars = 4;
  wc.seed = GetParam() * 11 + 4;
  auto runners = wl::install_uniform(fed, wc);
  fed.run();
  auto res = chk::CausalChecker{}.check(fed.federation_history());
  EXPECT_TRUE(res.ok()) << chk::to_string(res.pattern) << ": " << res.detail;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SequentialUnionSweep,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace cim::proto

// Internal invariant checking.
//
// CIM_CHECK is always on (these are distributed-protocol invariants whose
// violation means a bug; the cost is negligible next to simulation work).
// Failure throws InvariantViolation so tests can assert on it and the
// simulator can surface a clean diagnostic instead of UB.
//
// CIM_DCHECK is the debug-only flavor for per-event/per-entry hot paths
// (vector-clock indexing, channel lookups, heap pops) where an always-on
// branch is measurable. It compiles to the same throw in Debug builds and
// under CIM_SANITIZE, and to nothing in Release/RelWithDebInfo (which define
// NDEBUG). Use CIM_CHECK for anything reachable from user configuration or
// protocol messages; CIM_DCHECK only where the caller already guarantees the
// invariant and a violation would be a bug in *this* repository.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace cim {

class InvariantViolation : public std::logic_error {
 public:
  explicit InvariantViolation(const std::string& what)
      : std::logic_error(what) {}
};

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantViolation(os.str());
}

}  // namespace cim

#define CIM_CHECK(expr)                                          \
  do {                                                           \
    if (!(expr)) ::cim::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define CIM_CHECK_MSG(expr, msg)                                  \
  do {                                                            \
    if (!(expr)) {                                                \
      std::ostringstream cim_check_os_;                           \
      cim_check_os_ << msg;                                       \
      ::cim::check_failed(#expr, __FILE__, __LINE__, cim_check_os_.str()); \
    }                                                             \
  } while (0)

// Debug-only checks: full CIM_CHECK semantics in Debug builds and sanitizer
// builds (-DCIM_SANITIZE=ON defines CIM_SANITIZE), compiled out entirely in
// NDEBUG builds. The `if (false)` form keeps the expression syntactically
// checked (and its variables "used") without evaluating it.
#if !defined(NDEBUG) || defined(CIM_SANITIZE)
#define CIM_DCHECK(expr) CIM_CHECK(expr)
#define CIM_DCHECK_MSG(expr, msg) CIM_CHECK_MSG(expr, msg)
#else
#define CIM_DCHECK(expr) \
  do {                   \
    if (false) {         \
      (void)(expr);      \
    }                    \
  } while (0)
#define CIM_DCHECK_MSG(expr, msg) \
  do {                            \
    if (false) {                  \
      (void)(expr);               \
    }                             \
  } while (0)
#endif

// MeshNode: one causal memory system of an n-process TCP federation
// (docs/BRIDGE.md). tools/cim_bridge wraps exactly this class; it is a
// library so tests can assemble meshes in-process (tests/bridge_mesh_test).
//
// Life of a node:
//
//   join()  — form the tree. The node listens on base_port + node_id, dials
//             every lower-id neighbor, then accepts every higher-id one
//             (deadlock-free by induction on node ids), exchanging
//             hello/join ControlMsg frames on the raw blocking fd: hello
//             carries the node id + wire version, join carries the node id +
//             the canonical topology hash, so processes launched with
//             diverging spec files or mismatched builds refuse each other
//             (kJoinReject) instead of forming a broken mesh. With
//             `resume`, join() instead loads the spill journal written by
//             the crashed incarnation and skips the handshakes entirely —
//             links re-form through the per-edge kRejoin handshake below.
//   run()   — drive the workload. Builds a single-system Federation with one
//             external link per neighbor (they share the node's IS-process,
//             which gives split-horizon forwarding across the tree), wraps
//             each socket in a crash-tolerant LinkSession (mesh/link_session.h)
//             on one shared EpollLoop, runs the uniform workload through
//             rt::Runtime, and executes the per-link done/bye convergecast
//             until the whole tree is drained. Returns the node's final
//             counts.
//
// Robustness (the PR-7 tentpole; docs/BRIDGE.md "Failure behavior"):
// each edge is a LinkSession — seq/ack frames, a replay journal, heartbeats
// with a liveness timeout, reconnect with backoff and the kRejoin handshake.
// A silent or crashed peer degrades its link (bounded buffering +
// backpressure, surfaced as net.mesh.<peer>.{down,hb_miss,resumes} gauges)
// instead of killing the node; the node's listener stays open for the whole
// run so crashed higher-id dialers can rejoin, and an accept thread answers
// kRejoin (and refuses stale kHello) mid-run. Every session event spills to
// a write-ahead journal (mesh/spill.h) and the history streams to disk as
// it records, so `cim_bridge --resume` restarts a kill -9'd process with
// zero duplicated and zero lost pair deliveries and a checkable merged
// history.
//
// Termination (docs/BRIDGE.md "Termination"): done on link L is sent once
// the local workload finished, the engine is idle, and every *other* link M
// is drained (peer's done(M) received and the pairs applied on M match its
// announced count) — only then is the pair count of L final, because
// forwards of pairs from M contribute to L. Leaves therefore fire
// immediately and dones converge across the tree; bye(L) answers a drained
// done(L), and the node stops when every link has seen both byes. Induction
// on the tree structure (the same induction as the paper's Corollary 1)
// gives progress.
//
// Value ranges: node i of generation g writes values in
// [i * 1'000'000 + g * 200'000, ...), so the merged per-process histories
// keep the checker's value-identifies-write premise across restarts and
// `cat *.hist` is directly checkable.
#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "interconnect/federation.h"
#include "interconnect/topology.h"
#include "mesh/link_session.h"
#include "mesh/spill.h"
#include "net/epoll_loop.h"
#include "net/fault_inject.h"
#include "net/tcp_link.h"
#include "workload/generator.h"

namespace cim::mesh {

struct MeshConfig {
  std::size_t node_id = 0;
  isc::Topology topo;
  /// Node i listens on base_port + i; dialers derive peer ports the same way.
  std::uint16_t base_port = 0;
  std::string host = "127.0.0.1";
  std::uint16_t procs = 4;
  std::size_t ops = 25;
  std::uint64_t seed = 7;
  /// Overall budget for the accept side of join(); a missing or dead peer
  /// surfaces as a clean error after this long.
  int join_timeout_ms = 10'000;
  /// Dial retries (100ms apart) while a lower-id peer is not yet listening.
  int dial_retries = 100;
  net::TcpLinkConfig link;
  bool trace = false;

  // ---- crash tolerance (docs/BRIDGE.md "Failure behavior") -----------------
  int hb_interval_ms = 100;
  int liveness_timeout_ms = 2000;
  /// Continuously-degraded budget per link before the node gives up
  /// (0 = never: degrade and backpressure forever).
  int degraded_timeout_ms = 0;
  int backoff_initial_ms = 50;
  int backoff_max_ms = 1000;
  int reconnect_attempts = 40;
  /// Budget for the final drain (every sent frame acked) after the
  /// convergecast completes.
  int drain_timeout_ms = 10'000;
  /// Write-ahead spill journal path ("" = no crash spill, no --resume).
  std::string state_path;
  /// Restart from state_path after a kill -9 (docs/BRIDGE.md).
  bool resume = false;
  /// Stream the history to this file as it records (crash-durable; appends
  /// on resume). "" = off.
  std::string history_path;
  /// Borrowed chaos switchboard for tests/bench (docs/FAULTS.md).
  net::FaultHooks* faults = nullptr;

  // ---- stats plane (docs/BRIDGE.md "Stats aggregation") --------------------
  /// Cadence of the per-node StatsFrame sent up the tree toward node 0 (and
  /// of node 0's aggregated snapshot refresh, and of the clock_sample trace
  /// events `cim_trace merge` aligns timelines with). 0 = stats plane off.
  int stats_interval_ms = 0;
  /// Node 0 only: path of the federation-wide aggregated metrics JSON,
  /// atomically refreshed every cadence tick and finalized after the run
  /// ("" = off). cim_top tails this file for the live view.
  std::string fed_metrics_path;
};

struct MeshResult {
  bool ok = false;
  std::uint64_t ops_done = 0;
  std::uint64_t pairs_sent = 0;
  std::uint64_t pairs_received = 0;
  std::uint64_t violations = 0;
};

class MeshNode {
 public:
  explicit MeshNode(MeshConfig config);
  ~MeshNode();
  MeshNode(const MeshNode&) = delete;
  MeshNode& operator=(const MeshNode&) = delete;

  /// Form every incident link of the tree (or, with `resume`, load the spill
  /// journal and defer link formation to the per-edge rejoin). False on
  /// failure (error() says why): join timeout, handshake mismatch, peer
  /// death mid-handshake, unusable journal.
  bool join();

  /// Run the workload and the termination convergecast; blocks until the
  /// mesh is drained or a link fails permanently. Requires a successful
  /// join().
  MeshResult run();

  const std::string& error() const { return error_; }

  /// Valid after run() started building it (use from run()'s caller only
  /// after run() returned: history/metrics/trace dumps).
  isc::Federation& federation() { return *fed_; }

  std::size_t degree() const { return neighbors_.size(); }
  /// Neighbor node id behind local link `e` (ascending neighbor order).
  std::size_t neighbor(std::size_t e) const { return neighbors_[e]; }
  /// Session of local link `e` (valid once sessions_ready(), until
  /// destruction).
  LinkSession& session(std::size_t e) { return *sessions_[e]; }
  /// run() has built and started every link session: session(e) is safe to
  /// call from other threads (tests watch gauges mid-run through this).
  bool sessions_ready() const {
    return sessions_ready_.load(std::memory_order_acquire);
  }
  /// Restart generation (0 on a fresh start, prior + 1 on resume).
  std::uint32_t generation() const { return generation_; }

 private:
  bool handshake_dial(int fd, std::size_t peer);
  /// Accept loop helper: validates one inbound handshake; returns the
  /// neighbor slot or npos (rejected / dead peer — keep accepting).
  std::size_t handshake_accept(int fd);
  bool load_resume_state();
  std::uint64_t edge_session_id(std::size_t peer) const;
  void accept_main();

  MeshConfig cfg_;
  std::vector<std::size_t> neighbors_;  // ascending node ids
  std::vector<int> fds_;                // per neighbor slot, -1 until joined
  std::string error_;
  int listener_ = -1;                   // stays open for the whole run
  std::uint32_t generation_ = 0;
  SpillState restored_;                 // loaded journal (resume only)

  net::EpollLoop loop_;
  SpillJournal spill_;
  std::unique_ptr<isc::Federation> fed_;
  std::vector<std::unique_ptr<LinkSession>> sessions_;
  std::unique_ptr<std::ofstream> history_;
  std::thread accept_thread_;
  std::atomic<bool> accept_stop_{false};
  std::atomic<bool> sessions_ready_{false};
};

}  // namespace cim::mesh

// Strong identifier types used throughout the library.
//
// The paper's model has *systems* S^0, S^1, ..., each containing *application
// processes* attached 1:1 to *MCS-processes*. A process is therefore named by
// a (system, local index) pair. Variables of the shared memory are named by
// VarId. All identifiers are small integers wrapped in distinct types so that
// they cannot be accidentally interchanged.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

namespace cim {

/// Identifier of one DSM system (S^q in the paper).
struct SystemId {
  std::uint16_t value = 0;

  friend constexpr auto operator<=>(SystemId, SystemId) = default;
};

/// A process within a system: the pair (system, local index).
/// Application processes and IS-processes are both named this way; the
/// IS-process of a link occupies a dedicated local slot (see mcs::System).
struct ProcId {
  SystemId system;
  std::uint16_t index = 0;

  friend constexpr auto operator<=>(ProcId, ProcId) = default;
};

/// Identifier of a shared variable (an index into a variable table).
struct VarId {
  std::uint32_t value = 0;

  friend constexpr auto operator<=>(VarId, VarId) = default;
};

/// Globally unique identifier of a memory operation within one execution.
struct OpId {
  std::uint64_t value = 0;

  friend constexpr auto operator<=>(OpId, OpId) = default;
};

inline std::ostream& operator<<(std::ostream& os, SystemId s) {
  return os << "S" << s.value;
}
inline std::ostream& operator<<(std::ostream& os, ProcId p) {
  return os << "p(" << p.system.value << "," << p.index << ")";
}
inline std::ostream& operator<<(std::ostream& os, VarId v) {
  return os << "x" << v.value;
}
inline std::ostream& operator<<(std::ostream& os, OpId o) {
  return os << "op#" << o.value;
}

inline std::string to_string(ProcId p) {
  return "p(" + std::to_string(p.system.value) + "," + std::to_string(p.index) + ")";
}

}  // namespace cim

namespace std {
template <>
struct hash<cim::SystemId> {
  size_t operator()(cim::SystemId s) const noexcept {
    return std::hash<std::uint16_t>{}(s.value);
  }
};
template <>
struct hash<cim::ProcId> {
  size_t operator()(cim::ProcId p) const noexcept {
    return (static_cast<size_t>(p.system.value) << 16) ^ p.index;
  }
};
template <>
struct hash<cim::VarId> {
  size_t operator()(cim::VarId v) const noexcept {
    return std::hash<std::uint32_t>{}(v.value);
  }
};
template <>
struct hash<cim::OpId> {
  size_t operator()(cim::OpId o) const noexcept {
    return std::hash<std::uint64_t>{}(o.value);
  }
};
}  // namespace std

#include "net/reliable_transport.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/check.h"

namespace cim::net {

ReliableTransport::ReliableTransport(Fabric& fabric, TransportConfig config,
                                     obs::Observability* obs)
    : fabric_(fabric),
      sim_(fabric.simulator()),
      cfg_(config),
      rng_(config.seed),
      rto_(config.rto_initial) {
  CIM_CHECK_MSG(cfg_.window > 0, "transport window must be positive");
  CIM_CHECK_MSG(cfg_.rto_initial.ns > 0, "rto_initial must be positive");
  CIM_CHECK_MSG(cfg_.backoff >= 1.0, "backoff factor must be >= 1");
  CIM_CHECK_MSG(cfg_.jitter >= 0.0, "jitter must be non-negative");
  if (obs != nullptr) {
    trace_ = &obs->trace();
    obs::MetricsRegistry& m = obs->metrics();
    m_retx_sent_ = &m.counter("net.retx.sent");
    m_retx_timeouts_ = &m.counter("net.retx.timeouts");
    m_acks_ = &m.counter("net.acks");
    m_dups_ = &m.counter("net.dups_suppressed");
    m_down_drops_ = &m.counter("net.down_drops");
    h_window_ = &m.value_histogram("transport.window_occupancy");
  }
}

void ReliableTransport::wire(ChannelId out, ChannelId in, Receiver* upper) {
  CIM_CHECK_MSG(!wired_, "transport endpoint wired twice");
  CIM_CHECK_MSG(upper != nullptr, "transport needs an upper receiver");
  wired_ = true;
  out_ = out;
  in_ = in;
  upper_ = upper;
}

void ReliableTransport::send(MessagePtr payload) {
  CIM_CHECK_MSG(wired_, "transport endpoint not wired");
  CIM_CHECK_MSG(payload != nullptr, "cannot send a null payload");
  queue_.push_back(std::move(payload));
  admit_from_queue();
}

void ReliableTransport::admit_from_queue() {
  while (!down_ && !queue_.empty() && unacked_.size() < cfg_.window) {
    Unacked entry;
    entry.seq = send_next_++;
    entry.payload = std::move(queue_.front());
    queue_.pop_front();
    unacked_.push_back(std::move(entry));
    if (h_window_ != nullptr) {
      h_window_->observe(static_cast<std::int64_t>(unacked_.size()));
    }
    transmit(unacked_.back());
  }
}

void ReliableTransport::transmit(Unacked& entry) {
  ++entry.attempts;
  auto frame = std::make_unique<TransportFrame>();
  frame->seq = entry.seq;
  frame->ack = recv_next_;
  frame->payload = entry.payload->clone();
  CIM_CHECK_MSG(frame->payload != nullptr,
                "transport payloads must implement Message::clone()");
  // The frame carries a cumulative ACK, so any delayed standalone ACK
  // becomes redundant.
  ack_pending_ = false;
  ++ack_gen_;
  if (entry.attempts > 1) {
    ++retransmits_;
    if (m_retx_sent_ != nullptr) m_retx_sent_->inc();
    CIM_TRACE(trace_, sim_.now(), obs::TraceCategory::kNet, "retx",
              {{"ch", out_.value},
               {"seq", entry.seq},
               {"attempt", entry.attempts}});
  }
  fabric_.send(out_, std::move(frame));
  if (!retx_armed_) arm_retx_timer();
}

void ReliableTransport::arm_retx_timer() {
  retx_armed_ = true;
  const std::uint64_t gen = ++retx_gen_;
  const auto stretched = static_cast<std::int64_t>(
      static_cast<double>(rto_.ns) * (1.0 + cfg_.jitter * rng_.uniform01()));
  sim_.after(sim::Duration{stretched}, [this, gen] {
    if (gen != retx_gen_) return;  // superseded or disarmed
    retx_armed_ = false;
    on_retx_timeout();
  });
}

void ReliableTransport::on_retx_timeout() {
  if (down_ || unacked_.empty()) return;
  ++timeouts_;
  if (m_retx_timeouts_ != nullptr) m_retx_timeouts_->inc();
  CIM_TRACE(trace_, sim_.now(), obs::TraceCategory::kNet, "retx_timeout",
            {{"ch", out_.value},
             {"oldest", unacked_.front().seq},
             {"window", static_cast<std::uint64_t>(unacked_.size())},
             {"rto_ns", rto_}});
  // Go-back-N on timeout: back off the timer, then resend the whole window
  // (the receiver holds back out-of-order frames, so duplicates are
  // suppressed cheaply). The first transmit re-arms the timer at the
  // backed-off RTO.
  rto_ = sim::Duration{std::min(
      static_cast<std::int64_t>(static_cast<double>(rto_.ns) * cfg_.backoff),
      cfg_.rto_max.ns)};
  for (Unacked& entry : unacked_) transmit(entry);
}

void ReliableTransport::handle_ack(std::uint64_t ack) {
  bool progress = false;
  while (!unacked_.empty() && unacked_.front().seq < ack) {
    unacked_.pop_front();
    progress = true;
  }
  if (!progress) return;
  rto_ = cfg_.rto_initial;  // fresh ACK progress resets the backoff
  if (unacked_.empty()) {
    disarm_retx_timer();
    retx_armed_ = false;
  } else {
    arm_retx_timer();
  }
  admit_from_queue();
}

void ReliableTransport::on_message(ChannelId from, MessagePtr msg) {
  CIM_CHECK(from == in_);
  CIM_DCHECK_MSG(dynamic_cast<TransportFrame*>(msg.get()) != nullptr,
                 "transport received a non-transport frame");
  auto* frame = static_cast<TransportFrame*>(msg.get());
  if (down_) {
    // The owning host is crashed: the frame is lost at the NIC. The peer's
    // retransmission timer recovers it after restart.
    ++dropped_while_down_;
    if (m_down_drops_ != nullptr) m_down_drops_->inc();
    CIM_TRACE(trace_, sim_.now(), obs::TraceCategory::kNet, "down_drop",
              {{"ch", in_.value}, {"type", frame->type_name()}});
    return;
  }

  handle_ack(frame->ack);
  if (frame->payload == nullptr) return;  // standalone ACK

  const std::uint64_t seq = frame->seq;
  if (seq < recv_next_) {
    // Duplicate of an already-delivered frame (a retransmission raced the
    // ACK). Re-ACK so the sender advances.
    ++dups_suppressed_;
    if (m_dups_ != nullptr) m_dups_->inc();
    CIM_TRACE(trace_, sim_.now(), obs::TraceCategory::kNet, "dup",
              {{"ch", in_.value}, {"seq", seq}});
    schedule_ack();
    return;
  }
  if (seq == recv_next_) {
    deliver_in_order(seq, std::move(frame->payload));
  } else {
    // Out of order (the underlying channel reordered, or a gap was lost):
    // hold back until the gap fills. Duplicate out-of-order copies of the
    // same seq are collapsed by the map insert.
    const bool inserted =
        reorder_.emplace(seq, std::move(frame->payload)).second;
    if (!inserted) {
      ++dups_suppressed_;
      if (m_dups_ != nullptr) m_dups_->inc();
    }
    CIM_TRACE(trace_, sim_.now(), obs::TraceCategory::kNet, "ooo",
              {{"ch", in_.value},
               {"seq", seq},
               {"expected", recv_next_},
               {"held", static_cast<std::uint64_t>(reorder_.size())}});
  }
  schedule_ack();
}

void ReliableTransport::deliver_in_order(std::uint64_t seq,
                                         MessagePtr payload) {
  CIM_CHECK(seq == recv_next_);
  ++recv_next_;
  ++delivered_;
  upper_->on_message(in_, std::move(payload));
  // Drain any contiguous run held back behind the gap just filled.
  while (!reorder_.empty() && reorder_.begin()->first == recv_next_) {
    MessagePtr next = std::move(reorder_.begin()->second);
    reorder_.erase(reorder_.begin());
    ++recv_next_;
    ++delivered_;
    upper_->on_message(in_, std::move(next));
  }
}

void ReliableTransport::schedule_ack() {
  if (ack_pending_) return;
  ack_pending_ = true;
  const std::uint64_t gen = ++ack_gen_;
  sim_.after(cfg_.ack_delay, [this, gen] {
    if (gen != ack_gen_ || !ack_pending_) return;  // piggybacked meanwhile
    ack_pending_ = false;
    send_standalone_ack();
  });
}

void ReliableTransport::send_standalone_ack() {
  if (down_) return;
  ++acks_sent_;
  if (m_acks_ != nullptr) m_acks_->inc();
  auto frame = std::make_unique<TransportFrame>();
  frame->ack = recv_next_;
  CIM_TRACE(trace_, sim_.now(), obs::TraceCategory::kNet, "ack",
            {{"ch", out_.value}, {"ack", recv_next_}});
  fabric_.send(out_, std::move(frame));
}

void ReliableTransport::set_down(bool down) {
  if (down == down_) return;
  down_ = down;
  if (down_) {
    // Stop both timers; in-flight fabric deliveries will hit the down guard.
    disarm_retx_timer();
    retx_armed_ = false;
    ++ack_gen_;
    ack_pending_ = false;
  } else {
    // Restart: resume retransmission of everything unacknowledged, then
    // re-open the send window for queued payloads (in that order — admitted
    // payloads transmit on admission and must not be sent twice).
    // recv_next_ survived the window (stable storage), so redelivered
    // frames stay exactly-once.
    rto_ = cfg_.rto_initial;
    for (Unacked& entry : unacked_) transmit(entry);
    admit_from_queue();
  }
}

}  // namespace cim::net

// Unit tests: the discrete-event simulator.
#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"
#include "sim/simulator.h"

namespace cim::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), kTimeZero);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(Time{30}, [&] { order.push_back(3); });
  sim.at(Time{10}, [&] { order.push_back(1); });
  sim.at(Time{20}, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), Time{30});
}

TEST(Simulator, SameTimeEventsFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.at(Time{5}, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, AfterIsRelativeToNow) {
  Simulator sim;
  Time fired{};
  sim.after(Duration{7}, [&] {
    fired = sim.now();
    sim.after(Duration{5}, [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, Time{12});
}

TEST(Simulator, PostRunsAtCurrentInstantAfterPending) {
  Simulator sim;
  std::vector<int> order;
  sim.at(Time{5}, [&] {
    order.push_back(1);
    sim.post([&] { order.push_back(3); });
  });
  sim.at(Time{5}, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, SchedulingIntoThePastThrows) {
  Simulator sim;
  sim.at(Time{10}, [&] {
    EXPECT_THROW(sim.at(Time{5}, [] {}), InvariantViolation);
  });
  sim.run();
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.at(Time{10}, [&] { ++fired; });
  sim.at(Time{20}, [&] { ++fired; });
  sim.at(Time{30}, [&] { ++fired; });
  sim.run_until(Time{20});
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunUntilAdvancesTimeWhenQueueDrains) {
  Simulator sim;
  sim.at(Time{5}, [] {});
  sim.run_until(Time{100});
  EXPECT_EQ(sim.now(), Time{100});
}

TEST(Simulator, StepFiresExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.at(Time{1}, [&] { ++fired; });
  sim.at(Time{2}, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, EventsFiredCounter) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.at(Time{i}, [] {});
  sim.run();
  EXPECT_EQ(sim.events_fired(), 5u);
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.after(Duration{1}, recurse);
  };
  sim.after(Duration{1}, recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), Time{100});
}

TEST(SimTime, DurationArithmetic) {
  EXPECT_EQ(milliseconds(2) + microseconds(500), nanoseconds(2'500'000));
  EXPECT_EQ(seconds(1) - milliseconds(1), nanoseconds(999'000'000));
  EXPECT_EQ(milliseconds(3) * 4, milliseconds(12));
  EXPECT_EQ(Time{100} + Duration{5}, Time{105});
  EXPECT_EQ(Time{100} - Time{40}, Duration{60});
}

}  // namespace
}  // namespace cim::sim

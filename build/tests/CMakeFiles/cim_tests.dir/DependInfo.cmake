
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/anbkh_test.cpp" "tests/CMakeFiles/cim_tests.dir/anbkh_test.cpp.o" "gcc" "tests/CMakeFiles/cim_tests.dir/anbkh_test.cpp.o.d"
  "/root/repo/tests/aw_seq_test.cpp" "tests/CMakeFiles/cim_tests.dir/aw_seq_test.cpp.o" "gcc" "tests/CMakeFiles/cim_tests.dir/aw_seq_test.cpp.o.d"
  "/root/repo/tests/cbcast_test.cpp" "tests/CMakeFiles/cim_tests.dir/cbcast_test.cpp.o" "gcc" "tests/CMakeFiles/cim_tests.dir/cbcast_test.cpp.o.d"
  "/root/repo/tests/ccv_test.cpp" "tests/CMakeFiles/cim_tests.dir/ccv_test.cpp.o" "gcc" "tests/CMakeFiles/cim_tests.dir/ccv_test.cpp.o.d"
  "/root/repo/tests/channel_faults_test.cpp" "tests/CMakeFiles/cim_tests.dir/channel_faults_test.cpp.o" "gcc" "tests/CMakeFiles/cim_tests.dir/channel_faults_test.cpp.o.d"
  "/root/repo/tests/checker_corner_test.cpp" "tests/CMakeFiles/cim_tests.dir/checker_corner_test.cpp.o" "gcc" "tests/CMakeFiles/cim_tests.dir/checker_corner_test.cpp.o.d"
  "/root/repo/tests/checker_test.cpp" "tests/CMakeFiles/cim_tests.dir/checker_test.cpp.o" "gcc" "tests/CMakeFiles/cim_tests.dir/checker_test.cpp.o.d"
  "/root/repo/tests/common_test.cpp" "tests/CMakeFiles/cim_tests.dir/common_test.cpp.o" "gcc" "tests/CMakeFiles/cim_tests.dir/common_test.cpp.o.d"
  "/root/repo/tests/counterexample_test.cpp" "tests/CMakeFiles/cim_tests.dir/counterexample_test.cpp.o" "gcc" "tests/CMakeFiles/cim_tests.dir/counterexample_test.cpp.o.d"
  "/root/repo/tests/dialup_test.cpp" "tests/CMakeFiles/cim_tests.dir/dialup_test.cpp.o" "gcc" "tests/CMakeFiles/cim_tests.dir/dialup_test.cpp.o.d"
  "/root/repo/tests/interconnect_formulas_test.cpp" "tests/CMakeFiles/cim_tests.dir/interconnect_formulas_test.cpp.o" "gcc" "tests/CMakeFiles/cim_tests.dir/interconnect_formulas_test.cpp.o.d"
  "/root/repo/tests/interconnect_test.cpp" "tests/CMakeFiles/cim_tests.dir/interconnect_test.cpp.o" "gcc" "tests/CMakeFiles/cim_tests.dir/interconnect_test.cpp.o.d"
  "/root/repo/tests/lazy_batch_test.cpp" "tests/CMakeFiles/cim_tests.dir/lazy_batch_test.cpp.o" "gcc" "tests/CMakeFiles/cim_tests.dir/lazy_batch_test.cpp.o.d"
  "/root/repo/tests/mcs_test.cpp" "tests/CMakeFiles/cim_tests.dir/mcs_test.cpp.o" "gcc" "tests/CMakeFiles/cim_tests.dir/mcs_test.cpp.o.d"
  "/root/repo/tests/misc_api_test.cpp" "tests/CMakeFiles/cim_tests.dir/misc_api_test.cpp.o" "gcc" "tests/CMakeFiles/cim_tests.dir/misc_api_test.cpp.o.d"
  "/root/repo/tests/net_test.cpp" "tests/CMakeFiles/cim_tests.dir/net_test.cpp.o" "gcc" "tests/CMakeFiles/cim_tests.dir/net_test.cpp.o.d"
  "/root/repo/tests/partial_rep_test.cpp" "tests/CMakeFiles/cim_tests.dir/partial_rep_test.cpp.o" "gcc" "tests/CMakeFiles/cim_tests.dir/partial_rep_test.cpp.o.d"
  "/root/repo/tests/runtime_test.cpp" "tests/CMakeFiles/cim_tests.dir/runtime_test.cpp.o" "gcc" "tests/CMakeFiles/cim_tests.dir/runtime_test.cpp.o.d"
  "/root/repo/tests/session_test.cpp" "tests/CMakeFiles/cim_tests.dir/session_test.cpp.o" "gcc" "tests/CMakeFiles/cim_tests.dir/session_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/cim_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/cim_tests.dir/sim_test.cpp.o.d"
  "/root/repo/tests/soak_test.cpp" "tests/CMakeFiles/cim_tests.dir/soak_test.cpp.o" "gcc" "tests/CMakeFiles/cim_tests.dir/soak_test.cpp.o.d"
  "/root/repo/tests/summary_test.cpp" "tests/CMakeFiles/cim_tests.dir/summary_test.cpp.o" "gcc" "tests/CMakeFiles/cim_tests.dir/summary_test.cpp.o.d"
  "/root/repo/tests/tob_causal_test.cpp" "tests/CMakeFiles/cim_tests.dir/tob_causal_test.cpp.o" "gcc" "tests/CMakeFiles/cim_tests.dir/tob_causal_test.cpp.o.d"
  "/root/repo/tests/trace_io_test.cpp" "tests/CMakeFiles/cim_tests.dir/trace_io_test.cpp.o" "gcc" "tests/CMakeFiles/cim_tests.dir/trace_io_test.cpp.o.d"
  "/root/repo/tests/workload_stats_test.cpp" "tests/CMakeFiles/cim_tests.dir/workload_stats_test.cpp.o" "gcc" "tests/CMakeFiles/cim_tests.dir/workload_stats_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/protocols/CMakeFiles/cim_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/cim_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/interconnect/CMakeFiles/cim_interconnect.dir/DependInfo.cmake"
  "/root/repo/build/src/mcs/CMakeFiles/cim_mcs.dir/DependInfo.cmake"
  "/root/repo/build/src/checker/CMakeFiles/cim_checker.dir/DependInfo.cmake"
  "/root/repo/build/src/msgpass/CMakeFiles/cim_msgpass.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

// Versioned binary wire format for every on-the-wire message type.
//
// The paper's interconnection theorem assumes only "a reliable FIFO channel"
// between the two IS-processes — an opaque byte stream. This codec makes that
// channel realizable: every message that can cross a link (inter-IS pairs,
// the per-protocol update payloads, transport ARQ frames) has a canonical
// little-endian, length-prefixed byte encoding, so a federation can run over
// loopback byte buffers or real sockets instead of in-process pointer
// handoffs. docs/WIRE.md is the normative layout description; the golden
// vectors in tests/data/wire_golden_v1.bin pin the format bit-for-bit.
//
// Framing:  [u32 LE body_len][u8 wire_type][u8 version][payload ...]
// where body_len counts everything after the length field (type + version +
// payload). Integers use LEB128 varints, signed values zigzag varints,
// identifiers/timestamps fixed u64 LE, and VectorClock a varint length
// followed by varint entries (mirroring the small-vector in-memory layout).
//
// Versioning: each wire type carries its own version byte (currently 1
// everywhere). A decoder must accept every version it knows and reject
// unknown ones with a clean DecodeResult error — never UB. Adding fields
// means bumping that type's version and keeping the old branch decodable so
// captured byte streams stay readable.
//
// Instrumentation fields (write ids, send/origin timestamps) ARE encoded,
// as a trailing "trace context" section per type: the paper's wire format is
// just ⟨x, v⟩, but dropping the trace context at a serializing link would
// silently degrade wid-stamped tracing and the propagation-latency metrics
// the rest of the repo promises. docs/WIRE.md marks these fields explicitly.
//
// Errors: decode() never throws on malformed input — truncated, oversized,
// or mutated buffers yield DecodeResult{.error != nullptr}. encode() of an
// unsupported message type is a caller bug and CIM_CHECKs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "net/message.h"

namespace cim::net::wire {

/// Current encoder version, stamped into every frame's version byte.
inline constexpr std::uint8_t kWireVersion = 1;

/// Control-frame version that carries the trailing `c` varint (the rejoin
/// handshake's last-delivered seq). Stamped only when c != 0, so every
/// pre-existing control frame — and every ControlMsg that doesn't use the
/// field — still encodes as version 1, bit-identical to the golden vectors.
inline constexpr std::uint8_t kControlVersion2 = 2;

/// Transport-frame version that carries the trailing heartbeat timestamp
/// triple (ts_orig/ts_rx/ts_tx — the NTP-style four-timestamp exchange,
/// docs/OBSERVABILITY.md "RTT and clock offset"). Stamped only when at least
/// one timestamp is nonzero, so every data frame — and every pure ACK that
/// predates the field — still encodes as version 1, bit-identical to the
/// golden vectors.
inline constexpr std::uint8_t kTransportVersion2 = 2;

/// Upper bound on a frame body (type + version + payload). Guards decoders
/// against absurd length prefixes from corrupt or hostile inputs.
inline constexpr std::size_t kMaxBodyBytes = std::size_t{1} << 20;

/// Upper bound on VectorClock entries accepted on decode (every in-repo
/// configuration is far below this; the bound caps attacker-driven
/// allocation).
inline constexpr std::size_t kMaxClockEntries = 4096;

/// Nested-frame depth accepted on decode (a TransportFrame carries one
/// nested payload frame; deeper nesting is not produced by any encoder).
inline constexpr int kMaxNestingDepth = 4;

/// Upper bound on StatsFrame entries accepted on decode. A node snapshot is
/// a few dozen gauges; the bound caps attacker-driven allocation.
inline constexpr std::size_t kMaxStatsEntries = 512;

/// Upper bound on one StatsFrame entry key, in bytes.
inline constexpr std::size_t kMaxStatsKeyBytes = 96;

/// Wire type tags, one per encodable message type. Values are the on-wire
/// bytes and must never be renumbered — only appended to.
enum class WireType : std::uint8_t {
  kControl = 0,         // wire.ctrl     (bridge handshake / teardown)
  kPair = 1,            // is.pair       (isc::PairMsg)
  kVcUpdate = 2,        // vc.update     (proto::TimestampedUpdate)
  kTobPublish = 3,      // tob.publish   (proto::TobPublish)
  kTobDeliver = 4,      // tob.deliver   (proto::TobDeliver)
  kPartialUpdate = 5,   // partial.*     (proto::PartialUpdate)
  kCbcast = 6,          // cbcast.msg    (mp::CbcastMsg)
  kTransportFrame = 7,  // tr.data/tr.ack (net::TransportFrame)
  kStats = 8,           // wire.stats    (net::wire::StatsFrame)
};

/// Stable label for a wire type (bench rows, error messages).
const char* wire_type_label(WireType t);

/// Out-of-band control message used by tools/cim_bridge for its handshake
/// and two-phase teardown. Defined here (not in the bridge) so the codec,
/// the golden vectors, and the fuzz tests cover it like any other type.
struct ControlMsg final : Message {
  enum Code : std::uint8_t {
    kHello = 1,
    kDone = 2,
    kBye = 3,
    kJoin = 4,        // mesh join (docs/BRIDGE.md): a=node id, b=topology hash
    kJoinReject = 5,  // join refused: a=rejecting node id, b=reason code
    kRejoin = 6,      // session resume: a=node id, b=session id,
                      // c=last-delivered seq (docs/BRIDGE.md "Failure
                      // behavior")
  };
  std::uint8_t code = kHello;
  std::uint64_t a = 0;  // hello: local system id;  done: pairs sent
  std::uint64_t b = 0;  // hello: wire version;     done: ops completed
  // v2 field (kControlVersion2): the rejoin handshake's last-delivered seq.
  // Encoded only when nonzero — a ControlMsg with c == 0 still produces a
  // bit-identical v1 frame, which is what keeps the golden vectors stable
  // and lets v1 decoders read every frame that predates the field.
  std::uint64_t c = 0;

  const char* type_name() const override { return "wire.ctrl"; }
  std::size_t wire_size() const override { return 1 + 8 + 8 + 8; }
  MessagePtr clone() const override {
    return std::make_unique<ControlMsg>(*this);
  }
};

/// Compact metrics snapshot carried up the tree by the stats plane
/// (docs/BRIDGE.md "Stats aggregation"): one frame per node per cadence
/// tick, folded by node 0 into the federation-wide metrics.json. Defined
/// here (not in the mesh) so the codec, decode limits, and fuzz tests cover
/// it like any other type. Keys are short metric names relative to the
/// originating node (e.g. "pairs_sent", "peer.2.rtt_ns"); values are raw
/// gauge/counter readings.
struct StatsFrame final : Message {
  std::uint64_t origin = 0;  // originating node id
  std::uint64_t t_ns = 0;    // steady-clock sample time at the origin
  std::vector<std::pair<std::string, std::int64_t>> entries;

  const char* type_name() const override { return "wire.stats"; }
  std::size_t wire_size() const override {
    std::size_t n = 16;
    for (const auto& e : entries) n += e.first.size() + 10;
    return n;
  }
  MessagePtr clone() const override {
    return std::make_unique<StatsFrame>(*this);
  }
};

/// Result of decode(): either a message plus the bytes consumed, or a
/// static-string error. Never both.
struct DecodeResult {
  MessagePtr msg;
  std::size_t consumed = 0;
  const char* error = nullptr;

  bool ok() const { return error == nullptr; }
};

/// True iff `msg` is one of the wire types above (i.e. encode() accepts it).
bool encodable(const Message& msg);

/// Append one complete frame encoding `msg` to `out`; returns the number of
/// bytes appended. CIM_CHECKs that the message is encodable. The buffer is
/// appended to (not cleared) so callers can batch frames or reuse scratch
/// storage across calls without reallocation in steady state.
std::size_t encode(const Message& msg, std::vector<std::uint8_t>& out);

/// Decode one frame from the front of [data, data+size). On success,
/// `consumed` is the full frame length (length prefix included) so callers
/// can iterate a concatenated stream. On failure `msg` is null, `consumed`
/// is 0, and `error` points to a static description; the input is never
/// read out of bounds.
DecodeResult decode(const std::uint8_t* data, std::size_t size);

}  // namespace cim::net::wire

// Per-replica variable store: VarId -> Value.
//
// Every protocol replica consults its store on each read, write, and applied
// update, so this sits squarely on the per-event path. Variable ids in
// practice are small and dense (workloads index them 0..num_vars-1), so the
// store keeps a flat vector indexed by VarId — a load, not a hash probe —
// and spills to an unordered_map only for pathological sparse ids. The dense
// vector grows geometrically and never shrinks; after the first touch of the
// working set, reads and writes allocate nothing (docs/ARCHITECTURE.md).
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/value.h"

namespace cim {

class VarStore {
 public:
  /// Value of `var`; kInitValue if never written (the paper's initial state).
  Value get(VarId var) const {
    if (var.value < dense_.size()) return dense_[var.value];
    if (var.value < kDenseLimit) return kInitValue;
    auto it = sparse_.find(var.value);
    return it == sparse_.end() ? kInitValue : it->second;
  }

  void set(VarId var, Value value) {
    if (var.value < kDenseLimit) {
      if (var.value >= dense_.size()) grow(var.value);
      dense_[var.value] = value;
      return;
    }
    sparse_[var.value] = value;
  }

 private:
  // Ids below this live in the dense vector (8 KiB fully grown); beyond it
  // (nobody in this repository) they fall back to the map.
  static constexpr std::uint32_t kDenseLimit = 1024;

  void grow(std::uint32_t var) {
    std::size_t n = dense_.empty() ? 16 : dense_.size() * 2;
    while (n <= var) n *= 2;
    if (n > kDenseLimit) n = kDenseLimit;
    dense_.resize(n, kInitValue);
  }

  std::vector<Value> dense_;
  std::unordered_map<std::uint32_t, Value> sparse_;
};

}  // namespace cim

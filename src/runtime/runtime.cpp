#include "runtime/runtime.h"

#include <future>
#include <utility>

#include "common/check.h"

namespace cim::rt {

Runtime::Runtime(isc::Federation& federation) : federation_(federation) {}

Runtime::~Runtime() { stop(); }

void Runtime::start() {
  std::lock_guard<std::mutex> lock(mutex_);
  CIM_CHECK_MSG(!running_, "runtime already started");
  running_ = true;
  stop_requested_ = false;
  engine_ = std::thread([this]() { engine_loop(); });
}

void Runtime::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  engine_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  running_ = false;
}

bool Runtime::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

void Runtime::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    CIM_CHECK_MSG(running_ && !stop_requested_,
                  "post() on a stopped runtime");
    injected_.push_back(std::move(fn));
  }
  cv_.notify_all();
}

void Runtime::engine_loop() {
  sim::Simulator& sim = federation_.simulator();
  while (true) {
    // Drain injected calls into the simulator as immediate events.
    {
      std::unique_lock<std::mutex> lock(mutex_);
      while (!injected_.empty()) {
        sim.post(std::move(injected_.front()));
        injected_.pop_front();
      }
      if (sim.empty()) {
        // Idle: wait for new work or a stop request. On stop, remaining
        // simulator work (none, since empty) is done — exit.
        if (stop_requested_) return;
        cv_.wait(lock, [this]() {
          return stop_requested_ || !injected_.empty();
        });
        continue;
      }
    }
    // Execute simulator events without holding the lock; batches keep the
    // locking overhead away from the hot path.
    for (int i = 0; i < 256 && sim.step(); ++i) {
    }
  }
}

Value BlockingClient::read(VarId var) {
  std::promise<Value> promise;
  std::future<Value> future = promise.get_future();
  runtime_.post([this, var, &promise]() {
    app_.read(var, [&promise](Value v) { promise.set_value(v); });
  });
  return future.get();
}

void BlockingClient::write(VarId var, Value value) {
  std::promise<void> promise;
  std::future<void> future = promise.get_future();
  runtime_.post([this, var, value, &promise]() {
    app_.write(var, value, [&promise]() { promise.set_value(); });
  });
  future.get();
}

}  // namespace cim::rt

#include "stats/visibility.h"

#include <algorithm>

namespace cim::stats {

void VisibilityTracker::on_write_issued(ProcId writer, VarId, Value value,
                                        sim::Time t) {
  issues_.emplace(value, Issue{writer, t});
}

void VisibilityTracker::on_apply(ProcId replica, VarId, Value value,
                                 sim::Time t) {
  auto& per_replica = applies_[value];
  per_replica.try_emplace(replica, t);  // keep the first application
}

std::optional<sim::Time> VisibilityTracker::issue_time(Value value) const {
  auto it = issues_.find(value);
  if (it == issues_.end()) return std::nullopt;
  return it->second.time;
}

std::optional<sim::Time> VisibilityTracker::apply_time(Value value,
                                                       ProcId replica) const {
  auto it = applies_.find(value);
  if (it == applies_.end()) return std::nullopt;
  auto jt = it->second.find(replica);
  if (jt == it->second.end()) return std::nullopt;
  return jt->second;
}

std::optional<sim::Duration> VisibilityTracker::visibility(
    Value value, const std::vector<ProcId>& targets) const {
  auto issued = issue_time(value);
  if (!issued) return std::nullopt;
  sim::Time latest = *issued;
  for (ProcId target : targets) {
    auto applied = apply_time(value, target);
    if (!applied) return std::nullopt;
    latest = std::max(latest, *applied);
  }
  return latest - *issued;
}

std::optional<sim::Duration> VisibilityTracker::worst_visibility(
    const std::vector<ProcId>& targets) const {
  std::optional<sim::Duration> worst;
  for (const auto& [value, issue] : issues_) {
    auto vis = visibility(value, targets);
    if (!vis) return std::nullopt;
    if (!worst || *vis > *worst) worst = *vis;
  }
  return worst;
}

std::vector<sim::Duration> VisibilityTracker::all_visibilities(
    const std::vector<ProcId>& targets) const {
  std::vector<sim::Duration> out;
  for (const auto& [value, issue] : issues_) {
    auto vis = visibility(value, targets);
    if (vis) out.push_back(*vis);
  }
  return out;
}

}  // namespace cim::stats

file(REMOVE_RECURSE
  "CMakeFiles/bench_sequential_union.dir/bench_sequential_union.cpp.o"
  "CMakeFiles/bench_sequential_union.dir/bench_sequential_union.cpp.o.d"
  "bench_sequential_union"
  "bench_sequential_union.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sequential_union.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

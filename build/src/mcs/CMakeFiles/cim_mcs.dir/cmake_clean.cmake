file(REMOVE_RECURSE
  "CMakeFiles/cim_mcs.dir/app_process.cpp.o"
  "CMakeFiles/cim_mcs.dir/app_process.cpp.o.d"
  "CMakeFiles/cim_mcs.dir/mcs_process.cpp.o"
  "CMakeFiles/cim_mcs.dir/mcs_process.cpp.o.d"
  "CMakeFiles/cim_mcs.dir/system.cpp.o"
  "CMakeFiles/cim_mcs.dir/system.cpp.o.d"
  "libcim_mcs.a"
  "libcim_mcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cim_mcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

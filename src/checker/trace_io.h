// Plain-text trace format for histories, so executions can be archived and
// the consistency checkers used as standalone tools on traces produced
// elsewhere.
//
// Format: one operation per line, '#' starts a comment, blank lines ignored.
//
//   w <system> <proc> <var> <value> [<invoked_ns> <responded_ns>] [isp]
//   r <system> <proc> <var> <value> [<invoked_ns> <responded_ns>] [isp]
//
// Program order per process is line order. Example:
//
//   # S0.p0 writes x0=1; S1.p0 reads it
//   w 0 0 0 1
//   r 1 0 0 1
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "checker/history.h"

namespace cim::chk {

/// Serialize a history (with timestamps and ISP flags).
void write_trace(const History& history, std::ostream& os);
std::string to_trace(const History& history);

struct ParseResult {
  std::optional<History> history;  // nullopt on error
  std::string error;               // message with line number
};

/// Parse a trace; returns the history or a diagnostic.
ParseResult read_trace(std::istream& is);
ParseResult parse_trace(const std::string& text);

}  // namespace cim::chk

#include "net/epoll_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "net/fault_inject.h"

namespace cim::net {

namespace {

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

EpollLoop::EpollLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  CIM_CHECK_MSG(epoll_fd_ >= 0,
                "epoll_create1 failed: " << std::strerror(errno));
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  CIM_CHECK_MSG(wake_fd_ >= 0, "eventfd failed: " << std::strerror(errno));
  epoll_event ev{};
  ev.events = EPOLLIN;  // level-triggered: drained explicitly each wakeup
  ev.data.fd = wake_fd_;
  CIM_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0);
}

EpollLoop::~EpollLoop() {
  stop();
  ::close(wake_fd_);
  ::close(epoll_fd_);
}

void EpollLoop::add(int fd, FdHandler* handler) {
  CIM_CHECK(fd >= 0 && handler != nullptr);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const bool inserted = handlers_.emplace(fd, handler).second;
    CIM_CHECK_MSG(inserted, "fd registered twice with the epoll loop");
  }
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLOUT | EPOLLET;
  ev.data.fd = fd;
  CIM_CHECK_MSG(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0,
                "epoll_ctl(ADD) failed: " << std::strerror(errno));
}

void EpollLoop::remove(int fd) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    handlers_.erase(fd);
  }
  // The fd may already be closed by the transport's error path; a failed DEL
  // is then expected and harmless (the map erase above is what gates
  // dispatch).
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

void EpollLoop::start() {
  if (running_.exchange(true)) return;
  stop_flag_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { loop(); });
}

void EpollLoop::stop() {
  if (!running_.load(std::memory_order_acquire) || stopped_) return;
  stopped_ = true;
  stop_flag_.store(true, std::memory_order_release);
  wake();
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
}

void EpollLoop::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push_back(std::move(fn));
  }
  wake();
}

void EpollLoop::post_after(int delay_ms, std::function<void()> fn) {
  const std::int64_t deadline =
      steady_ns() + std::int64_t{delay_ms} * 1'000'000;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    timers_.emplace(deadline, std::move(fn));
  }
  // The loop may be sleeping with a longer (or infinite) timeout; recompute.
  wake();
}

void EpollLoop::wake() {
  const std::uint64_t one = 1;
  // A full eventfd counter (EAGAIN) already guarantees a pending wakeup.
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  wakeups_.fetch_add(1, std::memory_order_relaxed);
}

void EpollLoop::drain_wake_fd() {
  std::uint64_t buf;
  while (::read(wake_fd_, &buf, sizeof(buf)) > 0) {
  }
}

void EpollLoop::run_tasks() {
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks.swap(tasks_);
  }
  for (auto& fn : tasks) fn();
}

void EpollLoop::run_due_timers() {
  // Pop everything due, run outside the lock (a timer may re-arm itself).
  std::vector<std::function<void()>> due;
  const std::int64_t now = steady_ns();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = timers_.begin();
    while (it != timers_.end() && it->first <= now) {
      due.push_back(std::move(it->second));
      it = timers_.erase(it);
    }
  }
  for (auto& fn : due) fn();
}

int EpollLoop::next_timer_timeout_ms() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (timers_.empty()) return -1;
  const std::int64_t delta_ns = timers_.begin()->first - steady_ns();
  if (delta_ns <= 0) return 0;
  // Round up so a timer never fires early and re-sleeps in a tight loop.
  return static_cast<int>((delta_ns + 999'999) / 1'000'000);
}

void EpollLoop::loop() {
  loop_thread_id_.store(std::this_thread::get_id(), std::memory_order_release);
  epoll_event events[64];
  while (true) {
    const int n = ::epoll_wait(epoll_fd_, events, 64, next_timer_timeout_ms());
    if (n < 0) {
      if (errno == EINTR) continue;
      CIM_CHECK_MSG(false, "epoll_wait failed: " << std::strerror(errno));
    }
    epoll_waits_.fetch_add(1, std::memory_order_relaxed);
    if (fault_hooks_ != nullptr) {
      const int delay_us =
          fault_hooks_->dispatch_delay_us.load(std::memory_order_relaxed);
      if (delay_us > 0) ::usleep(static_cast<useconds_t>(delay_us));
    }
    // Tasks first: a remove() posted from the loop thread itself must take
    // effect before any event of the same batch dispatches to the handler.
    run_tasks();
    run_due_timers();
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        drain_wake_fd();
        continue;
      }
      FdHandler* handler = nullptr;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = handlers_.find(fd);
        if (it != handlers_.end()) handler = it->second;
      }
      if (handler != nullptr) handler->on_ready(events[i].events);
    }
    // A wake() may have carried only a task (no fd event in this batch).
    run_tasks();
    if (stop_flag_.load(std::memory_order_acquire)) {
      run_tasks();
      break;
    }
  }
  loop_thread_id_.store(std::thread::id{}, std::memory_order_release);
}

}  // namespace cim::net

# Empty dependencies file for consistency_report_card.
# This may be replaced when dependencies are built.

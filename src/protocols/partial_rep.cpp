#include "protocols/partial_rep.h"

#include <memory>
#include <utility>

#include "common/check.h"

namespace cim::proto {

PartialRepProcess::PartialRepProcess(const mcs::McsContext& ctx,
                                     InterestFn interest,
                                     std::uint16_t app_process_count)
    : McsProcess(ctx), interest_(std::move(interest)),
      app_process_count_(app_process_count), clock_(ctx.num_procs) {
  CIM_CHECK_MSG(interest_ != nullptr, "partial-rep needs an interest function");
}

Value PartialRepProcess::replica_value(VarId var) const {
  return store_.get(var);
}

void PartialRepProcess::handle_read(VarId var, mcs::ReadCallback cb) {
  CIM_CHECK_MSG(holds(var), "process " << id() << " reads " << var
                                       << " outside its interest set");
  cb(replica_value(var));
}

void PartialRepProcess::do_write(VarId var, Value value, WriteId wid,
                                 mcs::WriteCallback cb) {
  CIM_CHECK_MSG(holds(var), "process " << id() << " writes " << var
                                       << " outside its interest set");
  clock_.tick(local_index());
  store_.set(var, value);
  note_update_issued(var, value, wid);
  if (observer() != nullptr) {
    observer()->on_write_issued(id(), var, value, simulator().now());
    observer()->on_apply(id(), var, value, simulator().now());
  }
  for (std::uint16_t j = 0; j < num_procs(); ++j) {
    if (j == local_index()) continue;
    auto msg = std::make_unique<PartialUpdate>();
    msg->clock = clock_;
    msg->writer = local_index();
    msg->write_id = wid;
    if (holds(j, var)) {
      msg->var = var;
      msg->value = value;
      msg->has_value = true;
    }  // else: causal marker only — no variable, no payload
    send_to(j, std::move(msg));
  }
  cb();
}

void PartialRepProcess::on_message(net::ChannelId from, net::MessagePtr msg) {
  CIM_DCHECK_MSG(dynamic_cast<PartialUpdate*>(msg.get()) != nullptr,
                 "unexpected message type in partial-rep");
  auto* update = static_cast<PartialUpdate*>(msg.get());
  CIM_DCHECK(update->writer == sender_of(from));
  update->received_at = simulator().now();
  pending_.push_back(std::move(*update));
  note_update_buffered(pending_.size());
  if (!applying_) {
    applying_ = true;
    apply_step();
  }
}

void PartialRepProcess::apply_step() {
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (!it->clock.ready_at(clock_, it->writer)) continue;
    // Unpack scalars before erasing (keeps the apply closure within
    // SmallFn's inline buffer — see anbkh.cpp).
    const bool has_value = it->has_value;
    const VarId var = it->var;
    const Value value = it->value;
    const WriteId wid = it->write_id;
    const sim::Time received_at = it->received_at;
    const std::uint16_t writer = it->writer;
    const std::uint64_t writer_ticks = it->clock[writer];
    pending_.erase(it);

    if (!has_value) {
      // Causal marker: advance knowledge, nothing to store or announce.
      clock_.set(writer, writer_ticks);
      simulator().post([this]() { apply_step(); });
      return;
    }
    apply_with_upcalls(
        var, value, wid, /*own_write=*/false,
        /*apply=*/[this, var, value, wid, received_at, writer,
                   writer_ticks]() {
          clock_.set(writer, writer_ticks);
          store_.set(var, value);
          note_update_applied(var, value, wid, received_at);
          if (observer() != nullptr) {
            observer()->on_apply(id(), var, value, simulator().now());
          }
        },
        /*done=*/[this]() {
          simulator().post([this]() { apply_step(); });
        });
    return;
  }
  applying_ = false;
}

mcs::ProtocolFactory partial_rep_protocol(InterestFn interest,
                                          std::uint16_t app_process_count) {
  return [interest = std::move(interest),
          app_process_count](const mcs::McsContext& ctx) {
    return std::make_unique<PartialRepProcess>(ctx, interest,
                                               app_process_count);
  };
}

mcs::ProtocolFactory partial_rep_protocol_full() {
  return partial_rep_protocol([](std::uint16_t, VarId) { return true; },
                              /*app_process_count=*/0);
}

}  // namespace cim::proto

// Checker performance (supporting infrastructure): wall-clock cost of the
// polynomial bad-pattern checker vs history size and verification level.
// Uses google-benchmark; the other experiment binaries print simulated-time
// tables instead.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "checker/causal_checker.h"

namespace {

using namespace cim;

chk::History make_history(std::size_t ops_per_process, std::uint64_t seed) {
  bench::FedParams params;
  params.num_systems = 2;
  params.procs_per_system = 4;
  params.seed = seed;
  isc::Federation fed(bench::make_config(params));
  wl::UniformConfig wc;
  wc.ops_per_process = ops_per_process;
  wc.num_vars = 8;
  wc.seed = seed + 1;
  auto runners = wl::install_uniform(fed, wc);
  fed.run();
  return fed.federation_history();
}

void BM_CausalCheckCC(benchmark::State& state) {
  const auto history = make_history(static_cast<std::size_t>(state.range(0)), 3);
  chk::CausalChecker checker;
  for (auto _ : state) {
    auto res = checker.check(history, chk::Level::kCC);
    benchmark::DoNotOptimize(res);
  }
  state.SetComplexityN(static_cast<std::int64_t>(history.size()));
}

void BM_CausalCheckCM(benchmark::State& state) {
  const auto history = make_history(static_cast<std::size_t>(state.range(0)), 3);
  chk::CausalChecker checker;
  for (auto _ : state) {
    auto res = checker.check(history, chk::Level::kCM);
    benchmark::DoNotOptimize(res);
  }
  state.SetComplexityN(static_cast<std::int64_t>(history.size()));
}

void BM_CausalOrderOnly(benchmark::State& state) {
  const auto history = make_history(static_cast<std::size_t>(state.range(0)), 3);
  chk::CausalChecker checker;
  for (auto _ : state) {
    auto co = checker.causal_order(history);
    benchmark::DoNotOptimize(co);
  }
}

}  // namespace

BENCHMARK(BM_CausalCheckCC)->Arg(25)->Arg(50)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond)->Complexity();
BENCHMARK(BM_CausalCheckCM)->Arg(25)->Arg(50)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond)->Complexity();
BENCHMARK(BM_CausalOrderOnly)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();

# Empty compiler generated dependencies file for tree_federation.
# This may be replaced when dependencies are built.

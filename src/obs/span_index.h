// Per-write causal spans: reconstructing one write's propagation tree from a
// structured trace.
//
// Every v3 lifecycle event carries the originating write id, so grouping a
// trace by `wid` recovers, for each write: where it was issued, when each
// replica applied it (and how long it waited for causal dependencies), and
// every IS-link hop it took across the federation. The index consumes either
// live TraceEvent records (attach to a TraceSink ring) or ParsedTraceEvent
// records read back from JSONL (the cim_trace CLI), and derives the
// per-stage latency breakdown Section 6 of the paper reasons about:
//
//   origin_apply — write_issue → write_done at the origin process
//   fanout_intra — write_issue → update_applied at replicas of the origin's
//                  own system (origin excluded)
//   causal_wait  — time an update sat buffered waiting for its causal
//                  dependencies (the wait_ns field of update_applied)
//   is_hop       — per-IS-link transfer time (the hop_ns field of pair_in)
//   remote_apply — write_issue → update_applied at replicas of *other*
//                  systems (the end-to-end visibility latency)
//   propagation  — origin IS-propagation → pair_in at each receiving
//                  IS-process; the exact samples of isc.propagation_latency
//
// Bounded only by the trace itself: the ring buffer caps the number of
// events a run retains, so the index inherits that bound.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/value.h"
#include "obs/trace.h"
#include "obs/trace_read.h"
#include "stats/summary.h"

namespace cim::obs {

struct WriteSpan {
  WriteId wid;
  VarId var;
  Value value = kInitValue;
  bool origin_seen = false;      // write_issue observed at wid.origin()
  std::int64_t issue_t = -1;     // write_issue at the origin, ns
  std::int64_t origin_done_t = -1;  // write_done at the origin, ns

  struct Apply {
    ProcId proc;
    std::int64_t t = 0;
    std::int64_t wait_ns = -1;   // -1: no causal wait recorded
  };
  struct PairOut {
    ProcId proc;
    std::int64_t t = 0;
    std::uint64_t link = 0;
  };
  struct PairIn {
    ProcId proc;
    std::int64_t t = 0;
    std::int64_t hop_ns = 0;
    std::int64_t prop_ns = 0;
  };
  std::vector<Apply> applies;
  std::vector<PairOut> pair_outs;
  std::vector<PairIn> pair_ins;

  /// Last time the write was observed anywhere (applies/hops/issue).
  std::int64_t completion_t() const;
};

class SpanIndex {
 public:
  /// Feed one live event (usable as a TraceSink listener).
  void observe(const TraceEvent& ev);
  /// Feed one event read back from JSONL.
  void observe(const ParsedTraceEvent& ev);

  /// Convenience: index everything buffered in `sink` / parsed from a file.
  void index(const TraceSink& sink);
  void index(const std::vector<ParsedTraceEvent>& events);

  const WriteSpan* span(WriteId wid) const;
  /// Write ids in first-seen order.
  const std::vector<WriteId>& wids() const { return order_; }
  std::size_t size() const { return order_.size(); }
  std::uint64_t events_seen() const { return events_seen_; }

  /// Per-stage latency sample sets (see the header comment for stage
  /// definitions). Feed each vector to stats::summarize for percentiles.
  struct StageBreakdown {
    std::vector<sim::Duration> origin_apply;
    std::vector<sim::Duration> fanout_intra;
    std::vector<sim::Duration> causal_wait;
    std::vector<sim::Duration> is_hop;
    std::vector<sim::Duration> remote_apply;
    std::vector<sim::Duration> propagation;
  };
  StageBreakdown stages() const;

  /// One JSON object per write (the `cim_trace spans` output), in
  /// first-seen order.
  void write_spans_jsonl(std::ostream& os) const;

 private:
  WriteSpan& span_for(WriteId wid);
  void on_write_issue(std::int64_t t, ProcId proc, WriteId wid, VarId var,
                      Value value);
  void on_write_done(std::int64_t t, ProcId proc, WriteId wid);
  void on_update_applied(std::int64_t t, ProcId proc, WriteId wid,
                         std::int64_t wait_ns);
  void on_pair_out(std::int64_t t, ProcId proc, WriteId wid,
                   std::uint64_t link);
  void on_pair_in(std::int64_t t, ProcId proc, WriteId wid,
                  std::int64_t hop_ns, std::int64_t prop_ns);

  std::unordered_map<WriteId, std::size_t> by_wid_;
  std::vector<WriteSpan> spans_;
  std::vector<WriteId> order_;
  std::uint64_t events_seen_ = 0;
};

}  // namespace cim::obs

# Empty compiler generated dependencies file for bench_tree_scale.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_causality_check.
# This may be replaced when dependencies are built.

#include "net/fabric.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/check.h"

namespace cim::net {

ChannelId Fabric::add_channel(ChannelConfig config) {
  CIM_CHECK_MSG(config.receiver != nullptr, "channel needs a receiver");
  Channel ch;
  ch.src = config.src;
  ch.dst = config.dst;
  ch.receiver = config.receiver;
  ch.delay = config.delay ? std::move(config.delay)
                          : std::make_unique<FixedDelay>(sim::microseconds(1));
  ch.availability = config.availability ? std::move(config.availability)
                                        : std::make_unique<AlwaysUp>();
  ch.link_class = config.link_class;
  ch.fifo = config.fifo;
  ch.drop_probability = config.drop_probability;
  ch.last_delivery = sim::kTimeZero;
  channels_.push_back(std::move(ch));
  return ChannelId{static_cast<std::uint32_t>(channels_.size() - 1)};
}

void Fabric::send(ChannelId channel, MessagePtr msg) {
  CIM_CHECK(channel.value < channels_.size());
  CIM_CHECK_MSG(msg != nullptr, "cannot send a null message");
  Channel& ch = channels_[channel.value];

  ch.stats.messages += 1;
  ch.stats.bytes += msg->wire_size();

  if (ch.drop_probability > 0 && rng_.chance(ch.drop_probability)) {
    ch.stats.dropped += 1;
    return;  // lost on an unreliable channel
  }

  // Transmission starts when the link is next up (immediately if up now);
  // delivery follows after the sampled delay, but — on a FIFO channel —
  // never before a previously sent message.
  const sim::Time start = ch.availability->next_up(sim_.now());
  CIM_CHECK_MSG(start != sim::kTimeMax,
                "message sent on a link that never comes up again");
  sim::Time delivery = start + ch.delay->sample(rng_);
  if (ch.fifo) {
    delivery = std::max(delivery, ch.last_delivery);
    ch.last_delivery = delivery;
  }

  // Box the unique_ptr in a shared_ptr so the action is copyable (as
  // std::function requires) while the message keeps single ownership.
  auto box = std::make_shared<MessagePtr>(std::move(msg));
  Receiver* receiver = ch.receiver;
  sim_.at(delivery, [receiver, channel, box]() {
    receiver->on_message(channel, std::move(*box));
  });
}

ChannelStats Fabric::class_stats(LinkClass c) const {
  ChannelStats total;
  for (const Channel& ch : channels_) {
    if (ch.link_class == c) {
      total.messages += ch.stats.messages;
      total.bytes += ch.stats.bytes;
      total.dropped += ch.stats.dropped;
    }
  }
  return total;
}

ChannelStats Fabric::cross_system_stats(SystemId a, SystemId b) const {
  ChannelStats total;
  for (const Channel& ch : channels_) {
    const bool ab = ch.src.system == a && ch.dst.system == b;
    const bool ba = ch.src.system == b && ch.dst.system == a;
    if (ab || ba) {
      total.messages += ch.stats.messages;
      total.bytes += ch.stats.bytes;
      total.dropped += ch.stats.dropped;
    }
  }
  return total;
}

ChannelStats Fabric::stats_where(
    const std::function<bool(ProcId src, ProcId dst)>& pred) const {
  ChannelStats total;
  for (const Channel& ch : channels_) {
    if (pred(ch.src, ch.dst)) {
      total.messages += ch.stats.messages;
      total.bytes += ch.stats.bytes;
      total.dropped += ch.stats.dropped;
    }
  }
  return total;
}

std::uint64_t Fabric::total_messages() const {
  std::uint64_t n = 0;
  for (const Channel& ch : channels_) n += ch.stats.messages;
  return n;
}

void Fabric::reset_stats() {
  for (Channel& ch : channels_) ch.stats = ChannelStats{};
}

}  // namespace cim::net

#include "runtime/runtime.h"

#include <atomic>
#include <utility>

#include "common/check.h"

namespace cim::rt {

Runtime::Runtime(isc::Federation& federation) : federation_(federation) {}

Runtime::~Runtime() { stop(); }

void Runtime::start() {
  std::lock_guard<std::mutex> lock(mutex_);
  CIM_CHECK_MSG(!running_, "runtime already started");
  running_ = true;
  stop_requested_ = false;
  engine_ = std::thread([this]() { engine_loop(); });
}

void Runtime::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    stop_requested_ = true;
    stop_flag_.store(true, std::memory_order_release);
  }
  cv_.notify_all();
  engine_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  running_ = false;
}

bool Runtime::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

void Runtime::post(sim::Simulator::Action fn) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    CIM_CHECK_MSG(running_ && !stop_requested_,
                  "post() on a stopped runtime");
    injected_.push_back(std::move(fn));
    has_injected_.store(true, std::memory_order_release);
  }
  // Cheap when the engine is spinning rather than parked: notify_one on a
  // waiter-less condition variable is an atomic check, no syscall.
  cv_.notify_one();
}

void Runtime::engine_loop() {
  sim::Simulator& sim = federation_.simulator();
  while (true) {
    // Drain injected calls into the simulator as immediate events.
    {
      std::unique_lock<std::mutex> lock(mutex_);
      while (!injected_.empty()) {
        sim.post(std::move(injected_.front()));
        injected_.pop_front();
      }
      has_injected_.store(false, std::memory_order_relaxed);
      if (sim.empty()) {
        // Idle: spin briefly off-lock before parking — a blocking client is
        // usually about to post the next operation, and catching it in the
        // spin skips a futex sleep/wake round trip. Yield so the poster gets
        // the core on single-CPU hosts.
        lock.unlock();
        for (int i = 0; i < 4096; ++i) {
          if (has_injected_.load(std::memory_order_acquire) ||
              stop_flag_.load(std::memory_order_acquire)) {
            break;
          }
          if ((i & 15) == 15) std::this_thread::yield();
        }
        lock.lock();
        if (!injected_.empty()) continue;
        // Nothing arrived during the spin: park until work or stop. On
        // stop, remaining simulator work (none, since empty) is done — exit.
        if (stop_requested_) return;
        cv_.wait(lock, [this]() {
          return stop_requested_ || !injected_.empty();
        });
        continue;
      }
    }
    // Execute simulator events without holding the lock; batches keep the
    // locking overhead away from the hot path.
    for (int i = 0; i < 256 && sim.step(); ++i) {
    }
  }
}

namespace {

// One blocking call's rendezvous, on the caller's stack. Replaces
// promise/future, whose shared state costs a heap allocation per operation.
// The caller spins briefly (yielding, so a single-core host lets the engine
// run) before parking on the condition variable.
struct SyncCell {
  std::atomic<bool> ready{false};
  std::mutex m;
  std::condition_variable cv;
  Value value = kInitValue;

  void signal() {
    {
      std::lock_guard<std::mutex> lock(m);
      ready.store(true, std::memory_order_release);
    }
    cv.notify_one();
  }

  void wait() {
    for (int i = 0; i < 1024; ++i) {
      if (ready.load(std::memory_order_acquire)) return;
      if ((i & 15) == 15) std::this_thread::yield();
    }
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock,
            [this]() { return ready.load(std::memory_order_acquire); });
  }
};

}  // namespace

Value BlockingClient::read(VarId var) {
  SyncCell cell;
  runtime_.post([this, var, &cell]() {
    app_.read(var, [&cell](Value v) {
      cell.value = v;
      cell.signal();
    });
  });
  cell.wait();
  return cell.value;
}

void BlockingClient::write(VarId var, Value value) {
  SyncCell cell;
  runtime_.post([this, var, value, &cell]() {
    app_.write(var, value, [&cell]() { cell.signal(); });
  });
  cell.wait();
}

}  // namespace cim::rt
